#include "src/exec/exchange.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "src/exec/batch_pool.h"
#include "src/exec/worker_pool.h"
#include "src/physical/parallel.h"
#include "src/trace/exec_profile.h"

namespace oodb {

namespace {

/// Bounded MPSC queue of TupleBatches. Producers block when full, the
/// consumer blocks when empty; Abort() wakes everyone and makes every
/// subsequent Push/Pop fail, so a dying consumer never strands a producer
/// (and vice versa).
class BatchQueue {
 public:
  BatchQueue(size_t capacity, int producers)
      : capacity_(capacity), producers_(producers) {}

  /// False when the queue was aborted (the batch is dropped).
  ///
  /// Wakeups are lazy: the consumer is only notified once the queue is at
  /// least half full (or by ProducerDone/Abort). Notifying on every push
  /// ping-pongs producer and consumer through the scheduler — on a machine
  /// with fewer cores than workers each notify wake-preempts the producer,
  /// costing a context-switch round trip per batch. Batching the wakeups
  /// keeps everyone correct (a non-empty queue whose producers all exit is
  /// flushed by ProducerDone; a full queue necessarily crossed the
  /// threshold) while letting each side run for several batches per slice.
  bool Push(TupleBatch&& batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return queue_.size() < capacity_ || abort_; });
    if (abort_) return false;
    queue_.push_back(std::move(batch));
    if (queue_.size() * 2 >= capacity_) not_empty_.notify_one();
    return true;
  }

  /// False when every producer finished and the queue is drained, or on
  /// abort. Producers are re-woken once the queue has drained to half —
  /// the consumer never blocks while batches remain, so the threshold is
  /// always reached (see Push on why not per-pop).
  bool Pop(TupleBatch* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(
        lock, [&] { return !queue_.empty() || producers_ == 0 || abort_; });
    if (abort_ || queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    if (queue_.size() * 2 <= capacity_) not_full_.notify_all();
    return true;
  }

  void ProducerDone() {
    std::lock_guard<std::mutex> lock(mu_);
    --producers_;
    not_empty_.notify_all();
  }

  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<TupleBatch> queue_;
  size_t capacity_;
  int producers_;
  bool abort_ = false;
};

class ExchangeExec : public ExecNode {
 public:
  ExchangeExec(ExecEnv env, const PlanNode& plan) : env_(env), plan_(&plan) {}

  ~ExchangeExec() override { Shutdown(); }

  Status Open() override {
    const PlanNode& child = *plan_->children[0];
    const PlanNode* driver = FindPartitionableScan(child);
    int dop = driver != nullptr ? std::max(1, plan_->op.dop) : 1;
    env_.clock().cpu_s +=
        env_.timing().exchange_startup_s * static_cast<double>(dop);
    // Deep (but still bounded) buffering: 16 batches per worker. Producers
    // that never hit the bound run their whole partition without a blocking
    // wait — on a machine with fewer cores than workers that turns the
    // stream into long uninterrupted runs per thread instead of a
    // block/wake ping-pong per batch, and on larger machines the extra
    // depth only relaxes backpressure.
    queue_ = std::make_unique<BatchQueue>(16 * static_cast<size_t>(dop), dop);
    worker_clocks_.assign(dop, SimClock{});
    if (env_.profile != nullptr) {
      // One private profile per worker, merged at join like the clocks.
      // Workers never attribute I/O per node (store-shared counters race
      // while siblings run); their CPU deltas come off the private clock.
      worker_profiles_.clear();
      for (int w = 0; w < dop; ++w) {
        worker_profiles_.push_back(std::make_unique<ExecProfile>());
        worker_profiles_.back()->set_io_timed(false);
      }
    }
    pending_ = dop;
    for (int w = 0; w < dop; ++w) {
      WorkerPool::Instance().Submit([this, w, driver, dop] {
        WorkerMain(w, driver, dop);
        std::lock_guard<std::mutex> lock(pending_mu_);
        if (--pending_ == 0) pending_cv_.notify_all();
      });
    }
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    if (done_) return Finish();
    TupleBatch batch;
    if (!queue_->Pop(&batch)) {
      done_ = true;
      return Finish();
    }
    env_.clock().cpu_s += static_cast<double>(batch.size()) *
                          env_.timing().exchange_flow_tuple_s;
    // The consumed batch the caller still holds (from the previous Next) is
    // a retired arena — park it in the pool instead of freeing it, so
    // steady-state flow allocates nothing.
    BatchPool::Instance().Return(std::move(*out));
    *out = std::move(batch);
    return out->size();
  }

  void Close() override { Shutdown(); }

 private:
  void WorkerMain(int w, const PlanNode* driver, int dop) {
    ExecEnv wenv = env_;
    wenv.cpu_clock = &worker_clocks_[w];
    wenv.profile =
        worker_profiles_.empty() ? nullptr : worker_profiles_[w].get();
    if (driver != nullptr && dop > 1) {
      wenv.partition_node = driver;
      wenv.partition_index = w;
      wenv.partition_count = dop;
    }
    Status status = RunWorker(wenv);
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (first_error_.ok()) first_error_ = status;
      }
      // Wake a consumer blocked on an emptying queue and stop siblings
      // early: with a governor the sticky trip does this anyway; without
      // one the abort is the only cross-worker stop signal.
      queue_->Abort();
    }
    queue_->ProducerDone();
  }

  Status RunWorker(const ExecEnv& wenv) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(wenv, *plan_->children[0]));
    OODB_RETURN_IF_ERROR(node->Open());
    Status status = Status::OK();
    while (true) {
      TupleBatch batch =
          BatchPool::Instance().Take(wenv.num_bindings(), wenv.batch_size);
      Result<size_t> n = node->Next(&batch);
      if (!n.ok()) {
        status = n.status();
        break;
      }
      if (*n == 0) break;
      // Serialization point: a selection-marked batch compacts here, once,
      // before crossing the queue — consumers see contiguous rows and the
      // flow-tuple charge below stays per *live* row.
      batch.Compact();
      if (!queue_->Push(std::move(batch))) break;  // consumer went away
    }
    node->Close();
    return status;
  }

  /// Waits for the workers (once), merges their private clocks, and reports
  /// the first worker error — or a clean end of stream.
  Result<size_t> Finish() {
    JoinWorkers();
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_.ok()) return first_error_;
    return static_cast<size_t>(0);
  }

  void JoinWorkers() {
    if (joined_) return;
    joined_ = true;
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [&] { return pending_ == 0; });
    }
    for (const SimClock& c : worker_clocks_) {
      env_.store->clock().MergeFrom(c);
    }
    if (env_.profile != nullptr) {
      // Workers are joined: their profiles are quiescent and the wait above
      // ordered their writes before these reads. Fold per-node counters
      // into the consumer's profile and record per-worker utilization on
      // this Exchange node.
      const PlanNode* child = plan_->children[0].get();
      for (size_t w = 0; w < worker_profiles_.size(); ++w) {
        const OpProfile* root = worker_profiles_[w]->Find(child);
        WorkerUtilization u;
        u.worker = static_cast<int>(w);
        u.rows = root != nullptr ? root->rows : 0;
        u.cpu_s = worker_clocks_[w].cpu_s;
        env_.profile->AddWorker(plan_, u);
        env_.profile->MergeFrom(*worker_profiles_[w]);
      }
    }
  }

  void Shutdown() {
    if (queue_ != nullptr && !joined_) queue_->Abort();
    JoinWorkers();
  }


  ExecEnv env_;
  const PlanNode* plan_;
  std::unique_ptr<BatchQueue> queue_;
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  int pending_ = 0;
  std::vector<SimClock> worker_clocks_;
  std::vector<std::unique_ptr<ExecProfile>> worker_profiles_;
  std::mutex error_mu_;
  Status first_error_;
  bool done_ = false;
  bool joined_ = false;
};

}  // namespace

Result<std::unique_ptr<ExecNode>> MakeExchangeExec(const ExecEnv& env,
                                                   const PlanNode& plan) {
  if (plan.children.size() != 1) {
    return Status::Internal("exchange requires exactly one child");
  }
  return std::unique_ptr<ExecNode>(new ExchangeExec(env, plan));
}

}  // namespace oodb
