file(REMOVE_RECURSE
  "CMakeFiles/example_analyze_and_tune.dir/analyze_and_tune.cpp.o"
  "CMakeFiles/example_analyze_and_tune.dir/analyze_and_tune.cpp.o.d"
  "example_analyze_and_tune"
  "example_analyze_and_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analyze_and_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
