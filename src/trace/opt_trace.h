// Optimizer search trace: a bounded ring buffer of structured events
// recording what the Volcano search did — which rules fired, which groups
// were costed under which properties, when a cheaper plan displaced the
// running winner, where branch-and-bound cut a branch, where an enforcer
// was inserted, and what the static verifier concluded. Attach an OptTrace
// via OptimizerOptions::trace_sink; the null default costs nothing (a
// single pointer test per would-be event) and leaves plans bit-identical.
//
// The buffer keeps the newest `capacity` events (oldest are overwritten;
// `dropped()` counts the loss) while per-kind counters cover the whole
// search, so a test can assert "N branches pruned" even after overflow.
// Dump with ToText() for humans or ToJson() for tooling.
//
// Thread-compatibility: one optimization writes from one thread; attach a
// distinct OptTrace per concurrent optimization.
#ifndef OODB_TRACE_OPT_TRACE_H_
#define OODB_TRACE_OPT_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oodb {

enum class OptEventKind : uint8_t {
  kRuleFired,        ///< transformation produced a new memo expression
  kGroupExplored,    ///< a (group, required-props) costing goal was entered
  kWinnerReplaced,   ///< a cheaper plan displaced the group's running best
  kBranchPruned,     ///< branch-and-bound cut an alternative over the bound
  kEnforcerInserted, ///< an enforcer operator joined the costed candidates
  kVerifyOutcome,    ///< static verifier verdict on the winning plan
};
inline constexpr int kNumOptEventKinds = 6;

const char* OptEventKindName(OptEventKind kind);

struct OptEvent {
  OptEventKind kind = OptEventKind::kRuleFired;
  /// Rule/enforcer name ("" when not applicable). A borrowed pointer, not a
  /// copy: rule names are static-lifetime strings, and rule firings are the
  /// hot path — recording one must not allocate.
  const char* rule = "";
  int group = -1;     ///< memo group id (-1 when not applicable)
  int mexpr = -1;     ///< memo m-expr id (-1 when not applicable)
  double cost = -1.0; ///< plan cost at the event (-1 when not applicable)
  /// Physical operator kind name ("" when not applicable); borrowed like
  /// `rule` so hot-path events (winner replacements) never allocate.
  const char* op = "";
  std::string detail; ///< properties / diagnostic text (cold paths only)
};

class OptTrace {
 public:
  static constexpr size_t kDefaultCapacity = 4096;
  explicit OptTrace(size_t capacity = kDefaultCapacity);

  void Record(OptEvent event);

  /// Total events recorded (including overwritten ones).
  int64_t recorded() const { return recorded_; }
  /// Events lost to ring overwrite.
  int64_t dropped() const {
    return recorded_ - static_cast<int64_t>(size_);
  }
  /// Whole-search tally per kind (survives ring overflow).
  int64_t count(OptEventKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }

  /// Retained events, oldest first.
  std::vector<OptEvent> Events() const;

  /// Compact one-line-per-event dump:
  ///   rule-fired      mat-to-join g3 #12 Join(...)
  std::string ToText() const;
  /// JSON: {"recorded":N,"dropped":N,"counts":{...},"events":[{...},...]}
  std::string ToJson() const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<OptEvent> ring_;
  size_t next_ = 0;  ///< slot the next event lands in (once size_ == capacity_)
  size_t size_ = 0;
  int64_t recorded_ = 0;
  int64_t counts_[kNumOptEventKinds] = {};
};

}  // namespace oodb

#endif  // OODB_TRACE_OPT_TRACE_H_
