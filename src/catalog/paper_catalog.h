// Constructs the paper's test database description (Table 1 of the paper)
// with every type, set, extent, field statistic, and index the experiments
// in Section 4 rely on. Field ids are exposed so tests and benches can build
// algebra expressions without string lookups.
#ifndef OODB_CATALOG_PAPER_CATALOG_H_
#define OODB_CATALOG_PAPER_CATALOG_H_

#include "src/catalog/catalog.h"

namespace oodb {

/// Names of the indexes registered by MakePaperCatalog (used by benches to
/// model Table 3's index-availability columns).
inline constexpr const char* kIdxCitiesMayorName = "cities_mayor_name";
inline constexpr const char* kIdxTasksTime = "tasks_time";
inline constexpr const char* kIdxEmployeesName = "employees_name";

/// The paper's catalog plus direct handles to every type and field.
struct PaperDb {
  Catalog catalog;

  TypeId person, city, capital, country, plant, department, job, employee,
      information, task;

  // Person
  FieldId person_name, person_age;
  // City (Capital inherits these at the same ids)
  FieldId city_name, city_mayor, city_country, city_population;
  // Country
  FieldId country_name, country_president;
  // Plant
  FieldId plant_name, plant_location, plant_products;
  // Department
  FieldId dept_name, dept_plant, dept_floor;
  // Job
  FieldId job_name;
  // Employee
  FieldId emp_name, emp_age, emp_salary, emp_last_raise, emp_dept, emp_job;
  // Information
  FieldId info_text;
  // Task
  FieldId task_name, task_time, task_team_members;
};

/// Builds the Table-1 database description. Infallible by construction
/// (all registrations are internally consistent); asserts on failure.
///
/// `scale` proportionally shrinks every cardinality, distinct count, and
/// index key count (minimum 1), keeping selectivities — and therefore plan
/// choices — unchanged. Tests and the execution-validation benchmark use
/// scaled-down instances; the paper's Table 1 is scale 1.
PaperDb MakePaperCatalog(double scale = 1.0);

}  // namespace oodb

#endif  // OODB_CATALOG_PAPER_CATALOG_H_
