// Synthetic data generator for the paper's universe (Table 1): Persons,
// Countries, Cities/Capitals, Plants, Departments, Jobs, Employees,
// Information, and Tasks with team members. Value distributions are chosen
// so that actual match counts agree with the catalog's selectivity
// statistics (e.g. exactly ceil(|Cities| / distinct-mayor-names) cities have
// a mayor named "Joe").
#ifndef OODB_STORAGE_DATAGEN_H_
#define OODB_STORAGE_DATAGEN_H_

#include "src/catalog/paper_catalog.h"
#include "src/common/rng.h"
#include "src/storage/object_store.h"

namespace oodb {

struct GenOptions {
  uint64_t seed = 42;
  /// Number of Plant objects (the catalog deliberately has no statistics
  /// for Plant; this is the physical population).
  int64_t num_plants = 100;
  /// Fraction of plants located in "Dallas".
  double dallas_fraction = 0.10;
};

/// Handy OID lists of the generated population.
struct PaperDataset {
  std::vector<Oid> persons, countries, cities, capitals, plants, departments,
      jobs, employees, tasks, infos;
};

/// Populates `store` (which must have been created over `db.catalog`) and
/// builds all registered indexes.
Result<PaperDataset> GeneratePaperData(const PaperDb& db, ObjectStore* store,
                                       GenOptions options = {});

}  // namespace oodb

#endif  // OODB_STORAGE_DATAGEN_H_
