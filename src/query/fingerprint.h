// Canonical query fingerprinting for the plan cache: a structural 128-bit
// hash over a *simplified* logical expression tree plus the signatures of
// the bindings it references. Two queries that simplify to the same
// canonical shape — regardless of alias names or (optionally) comparison
// literal values — share a fingerprint and therefore a plan-cache entry.
//
// Literal parameterization: constants appearing as comparison operands are
// hashed as (parameter marker, selectivity bucket) instead of by value, so
// `age >= 32` and `age >= 40` collide on purpose when the estimator puts
// them in the same selectivity bucket (plan shape is assumed stable within
// a bucket; the bucket is half-octave in log2(selectivity), so literals the
// estimator *can* distinguish — e.g. range predicates after ANALYZE has
// collected [min, max] — naturally key separately). The literal values are
// extracted in canonical preorder so a cached plan can be rebound to a new
// query's literals on a hit.
#ifndef OODB_QUERY_FINGERPRINT_H_
#define OODB_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/algebra/logical_op.h"
#include "src/volcano/rule.h"

namespace oodb {

/// A 128-bit structural hash. Collisions between distinct canonical query
/// shapes are treated as practically impossible; the plan cache additionally
/// verifies structure on every hit (see MatchParameterizedTrees), so a
/// collision degrades to a cache miss, never to a wrong plan.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
};

/// A computed fingerprint plus the parameterized-out literal values in
/// canonical preorder (empty when parameterization is off).
struct QueryFingerprint {
  Fingerprint fp;
  std::vector<Value> literals;
};

/// Fingerprints a simplified logical tree built against `ctx`. When
/// `parameterize_literals` is set, comparison literals are keyed by
/// selectivity bucket instead of exact value (see file comment); otherwise
/// every literal is hashed exactly and `literals` stays empty.
QueryFingerprint FingerprintQuery(const LogicalExpr& tree,
                                  const QueryContext& ctx,
                                  bool parameterize_literals);

/// Buckets a LIMIT row count for plan-cache keying: the bit width
/// (floor(log2(k)) + 1), so limits within a factor of two share a bucket —
/// and a cached plan — and are rebound to the exact k on a hit (see
/// RebindPlanLimit), mirroring comparison-literal parameterization. Plan
/// shape (TopK vs. Sort, merge dop) is assumed stable within an octave of
/// k. Returns 0 for no limit.
int64_t LimitBucket(int64_t limit);

/// Hash of every OptimizerOptions field that can change the chosen plan
/// (rule set, extension toggles, cost-model constants). Part of the
/// plan-cache key so sessions with different configurations never share
/// entries.
uint64_t HashOptimizerOptions(const OptimizerOptions& opts);

/// Maps scalar-expression nodes of a cached query's simplified tree to the
/// corresponding subtrees of a fresh, fingerprint-equal query.
using ExprSubstitution =
    std::unordered_map<const ScalarExpr*, ScalarExprPtr>;

/// Walks `cached` and `fresh` in lockstep, verifying they are structurally
/// identical up to comparison literal values and that their binding tables
/// carry identical signatures (type / origin / derivation — names are
/// display-only and ignored). On success fills `subst` with a node-for-node
/// substitution from `cached`'s scalar expressions to `fresh`'s. Returns
/// false on any structural mismatch (i.e. a fingerprint collision).
bool MatchParameterizedTrees(const LogicalExpr& cached,
                             const BindingTable& cached_bindings,
                             const LogicalExpr& fresh,
                             const BindingTable& fresh_bindings,
                             ExprSubstitution* subst);

/// Rewrites `expr` through `subst`: any node that originated in the cached
/// query's simplified tree is replaced by the fresh query's corresponding
/// subtree; connective structure synthesized by optimizer rules around such
/// nodes is rebuilt. Nodes outside the map (rule-synthesized constants,
/// which are literal-independent) pass through unchanged.
ScalarExprPtr SubstituteExpr(const ScalarExprPtr& expr,
                             const ExprSubstitution& subst);

}  // namespace oodb

#endif  // OODB_QUERY_FINGERPRINT_H_
