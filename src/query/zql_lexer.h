// Lexer for the textual ZQL[C++]-like query syntax.
#ifndef OODB_QUERY_ZQL_LEXER_H_
#define OODB_QUERY_ZQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace oodb {

enum class TokKind {
  kEnd,
  kIdent,    // foo (keywords detected by the parser case-insensitively)
  kInt,      // 42
  kDouble,   // 4.2
  kString,   // "foo" or 'foo'
  kDot,      // .
  kComma,    // ,
  kLParen,   // (
  kRParen,   // )
  kSemi,     // ;
  kEq,       // ==
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kAnd,      // &&
  kOr,       // ||
  kNot,      // !
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident / string contents
  int64_t int_val = 0;
  double dbl_val = 0.0;
  int offset = 0;     // byte offset in the input, for error messages
};

/// Tokenizes the whole input.
Result<std::vector<Token>> LexZql(const std::string& input);

}  // namespace oodb

#endif  // OODB_QUERY_ZQL_LEXER_H_
