file(REMOVE_RECURSE
  "CMakeFiles/bench_query3.dir/bench_query3.cc.o"
  "CMakeFiles/bench_query3.dir/bench_query3.cc.o.d"
  "bench_query3"
  "bench_query3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
