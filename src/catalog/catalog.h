// Catalog: scannable collections (named sets and type extents), indexes, and
// the statistics the optimizer consults. Mirrors the paper's Table 1: a set
// and/or a type extent per type, cardinality kept *only* with extents and set
// instances (types without either — e.g. Plant — have unknown cardinality,
// which is what makes the paper's "w/o commutativity" plan so expensive).
#ifndef OODB_CATALOG_CATALOG_H_
#define OODB_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/result.h"

namespace oodb {

/// Identifies a scannable collection: either a user-defined named set or a
/// type extent.
struct CollectionId {
  enum class Kind { kNamedSet, kExtent };
  Kind kind = Kind::kNamedSet;
  std::string name;           ///< set name for kNamedSet, empty for kExtent
  TypeId type = kInvalidType; ///< element type

  static CollectionId Set(std::string set_name, TypeId elem_type) {
    return CollectionId{Kind::kNamedSet, std::move(set_name), elem_type};
  }
  static CollectionId Extent(TypeId elem_type) {
    return CollectionId{Kind::kExtent, "", elem_type};
  }

  bool operator==(const CollectionId& o) const {
    return kind == o.kind && name == o.name && type == o.type;
  }

  /// "Employees" or "extent(Job)"; needs the schema for extent type names.
  std::string Display(const Schema& schema) const;
};

/// A scannable collection plus its statistics.
struct CollectionInfo {
  CollectionId id;
  int64_t cardinality = 0;
};

/// An index over a collection. `path` is a chain of FieldIds starting at the
/// element type; a chain of length > 1 is a *path index* (e.g. the paper's
/// index on Cities over mayor.name). The final field must be scalar.
struct IndexInfo {
  std::string name;
  CollectionId collection;
  std::vector<FieldId> path;
  int64_t distinct_keys = 0;
  bool clustered = false;
  /// Benchmarks flip availability to model the paper's Table 3 columns.
  bool enabled = true;
};

/// The catalog: schema + collections + indexes.
class Catalog {
 public:
  Catalog() : stats_version_(NextStatsEpoch()) {}
  // Copies and moves reseed `stats_version_` from a process-global epoch
  // counter instead of carrying the source's value. Two catalogs that start
  // as copies and then diverge through separate ANALYZE runs would otherwise
  // count bumps independently and can reach the *same* version number with
  // *different* statistics — a plan cached against one would falsely hit
  // against the other (the cache keys entries by version, not by content).
  // Epochs stride far apart (see NextStatsEpoch), so no two catalogs ever
  // share a version, no matter how many bumps each accumulates.
  Catalog(Catalog&& o) noexcept
      : schema_(std::move(o.schema_)),
        collections_(std::move(o.collections_)),
        indexes_(std::move(o.indexes_)),
        stats_version_(NextStatsEpoch()),
        stats_measured_(o.stats_measured_) {}
  Catalog& operator=(Catalog&& o) noexcept {
    schema_ = std::move(o.schema_);
    collections_ = std::move(o.collections_);
    indexes_ = std::move(o.indexes_);
    stats_version_.store(NextStatsEpoch(), std::memory_order_relaxed);
    stats_measured_ = o.stats_measured_;
    return *this;
  }
  Catalog(const Catalog& o)
      : schema_(o.schema_),
        collections_(o.collections_),
        indexes_(o.indexes_),
        stats_version_(NextStatsEpoch()),
        stats_measured_(o.stats_measured_) {}
  Catalog& operator=(const Catalog& o) {
    if (this == &o) return *this;
    schema_ = o.schema_;
    collections_ = o.collections_;
    indexes_ = o.indexes_;
    stats_version_.store(NextStatsEpoch(), std::memory_order_relaxed);
    stats_measured_ = o.stats_measured_;
    return *this;
  }

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Monotonic statistics/metadata version. Every mutation that can change
  /// an optimizer decision — cardinality updates, index creation or
  /// enable/disable, collection registration, ANALYZE refreshing field
  /// statistics — bumps it; the plan cache keys entries by it so a stale
  /// plan is never served. Code that mutates the schema directly through
  /// the non-const schema() accessor must call BumpStatsVersion() itself
  /// (AnalyzeStore does). Atomic so sessions reading the version while
  /// preparing (the plan-cache probe) never race a concurrent ANALYZE bump;
  /// relaxed order suffices — the cache re-verifies entries structurally.
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_relaxed);
  }
  void BumpStatsVersion() {
    stats_version_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True once field statistics were *measured* from stored data (ANALYZE)
  /// rather than declared with the schema. The selectivity estimator only
  /// trusts per-field distinct counts for un-indexed equality predicates
  /// after measurement; declared-only catalogs keep the paper's 10% default
  /// (§4), preserving the published Figure 6 / Table 2 plans.
  bool stats_measured() const { return stats_measured_; }
  void MarkStatsMeasured() { stats_measured_ = true; }

  /// Registers a named set of `elem_type` with `cardinality` elements.
  Status AddSet(const std::string& name, TypeId elem_type, int64_t cardinality);

  /// Declares that `type` maintains an extent with `cardinality` objects.
  Status AddExtent(TypeId type, int64_t cardinality);

  /// Registers an index; the path is validated against the schema.
  Status AddIndex(IndexInfo info);

  /// Looks up a named set.
  Result<const CollectionInfo*> FindSet(const std::string& name) const;

  /// True if `type` has an extent.
  bool HasExtent(TypeId type) const;

  /// Statistics for a collection (set or extent).
  Result<const CollectionInfo*> FindCollection(const CollectionId& id) const;

  /// Cardinality of `type`'s population if the catalog knows it: the extent
  /// cardinality if an extent exists, otherwise nullopt (paper: cardinality
  /// is kept only with extents and set instances).
  std::optional<int64_t> TypeCardinality(TypeId type) const;

  /// All *enabled* indexes over `coll`.
  std::vector<const IndexInfo*> IndexesOn(const CollectionId& coll) const;

  /// Finds an index by name (enabled or not).
  Result<IndexInfo*> FindIndex(const std::string& name);
  Result<const IndexInfo*> FindIndex(const std::string& name) const;

  /// Enables/disables an index (models dropping/creating it for Table 3).
  Status SetIndexEnabled(const std::string& name, bool enabled);

  /// Updates a collection's cardinality statistic (used by AnalyzeStore).
  Status SetCardinality(const CollectionId& id, int64_t cardinality);

  const std::vector<CollectionInfo>& collections() const { return collections_; }
  const std::vector<IndexInfo>& indexes() const { return indexes_; }

  /// Number of pages `card` densely packed objects of `type` occupy given
  /// `page_size` (paper: "objects ... are assumed to be densely packed").
  int64_t PagesFor(TypeId type, int64_t card, int64_t page_size) const;

  /// Renders the catalog as a table (used by benches to echo Table 1).
  std::string ToTableString() const;

 private:
  /// Issues a fresh, process-unique starting version for a catalog instance.
  /// Consecutive epochs are 2^32 apart, so a catalog would need four billion
  /// ANALYZE bumps before its version range could touch the next epoch's.
  static uint64_t NextStatsEpoch();

  Schema schema_;
  std::vector<CollectionInfo> collections_;
  std::vector<IndexInfo> indexes_;
  std::atomic<uint64_t> stats_version_{0};
  bool stats_measured_ = false;
};

}  // namespace oodb

#endif  // OODB_CATALOG_CATALOG_H_
