// Process-wide Prometheus-style metrics: monotonic counters and gauges
// registered by name in a global registry, snapshot-dumpable in the text
// exposition format. Instruments the long-lived subsystems (Session, plan
// cache, governor, BufferPool, WorkerPool) so tests and benches can observe
// cumulative behavior without threading stats structs through every call.
//
// Hot-path cost: one relaxed atomic add per event. Lookup by name takes a
// mutex, so instrumented call sites resolve their Counter*/Gauge* once (at
// construction or function-local static) and cache the pointer — registered
// metrics are never deallocated, so cached pointers stay valid for the
// process lifetime (ResetForTest zeroes values in place).
#ifndef OODB_COMMON_METRICS_H_
#define OODB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace oodb {

/// A monotonically increasing counter (Prometheus `counter` type).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// A settable instantaneous value (Prometheus `gauge` type).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Name-keyed registry of counters and gauges. All methods are thread-safe.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in subsystem reports into.
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// `help` is recorded on creation (later calls may pass empty).
  Counter* counter(const std::string& name, const std::string& help = "");
  Gauge* gauge(const std::string& name, const std::string& help = "");

  /// Prometheus text exposition format: `# HELP` / `# TYPE` preamble per
  /// metric, then `name value`, in lexicographic name order.
  std::string TextSnapshot() const;

  /// Zeroes every registered metric in place (pointers remain valid).
  /// Intended for tests that assert absolute values.
  void ResetForTest();

 private:
  struct CounterEntry {
    std::string help;
    Counter counter;
  };
  struct GaugeEntry {
    std::string help;
    Gauge gauge;
  };

  /// Guards the registration maps, not the values (those are atomics,
  /// updated lock-free through cached pointers). Highest rank: instrumented
  /// call sites resolve counters while holding their own subsystem lock.
  mutable Mutex mu_{lock_rank::kMetrics};
  std::map<std::string, std::unique_ptr<CounterEntry>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<GaugeEntry>> gauges_ GUARDED_BY(mu_);
};

}  // namespace oodb

#endif  // OODB_COMMON_METRICS_H_
