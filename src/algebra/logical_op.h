// The Open OODB logical algebra (paper §3): Get, Select, Project, Join,
// Unnest, the novel Mat (materialize) operator, and the set operators
// Union / Intersect / Difference. Operator arguments are deliberately
// *simple* — all path traversal is explicit in Mat/Unnest operators.
#ifndef OODB_ALGEBRA_LOGICAL_OP_H_
#define OODB_ALGEBRA_LOGICAL_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/binding.h"
#include "src/algebra/expr.h"
#include "src/catalog/catalog.h"

namespace oodb {

class CardFeedback;

/// Per-query state shared by every algebra expression of the query: the
/// catalog it is compiled against and the binding table.
struct QueryContext {
  const Catalog* catalog = nullptr;
  BindingTable bindings;
  /// Measured cardinality feedback from a prior (possibly drift-aborted)
  /// execution of this query (see trace/card_feedback.h). Null in ordinary
  /// optimization; set by the session's adaptive re-plan path, where
  /// DeriveLogicalProps and SelectivityEstimator prefer observed values
  /// over catalog statistics. Plans costed with feedback are query-local:
  /// the session never admits them to the plan cache.
  const CardFeedback* feedback = nullptr;

  const Schema& schema() const { return catalog->schema(); }
};

enum class LogicalOpKind {
  kGet,        ///< scan a collection, binding its elements
  kSelect,     ///< filter by a predicate over in-scope bindings
  kProject,    ///< emit output expressions, discarding scope
  kMat,        ///< materialize: bring a referenced component into scope
  kUnnest,     ///< reveal the references in a set-valued field
  kJoin,       ///< join two scopes on a predicate
  kUnion,      ///< set union of two inputs with identical scope
  kIntersect,  ///< set intersection
  kDifference, ///< set difference
};

const char* LogicalOpKindName(LogicalOpKind kind);

/// One logical operator (without children — trees and memo m-exprs attach
/// children separately). Value-semantic, hashable, comparable.
struct LogicalOp {
  LogicalOpKind kind = LogicalOpKind::kGet;

  // kGet
  CollectionId coll;
  BindingId binding = kInvalidBinding;

  // kSelect / kJoin
  ScalarExprPtr pred;

  // kProject
  std::vector<ScalarExprPtr> emit;

  // kMat / kUnnest: traverse `source`.`field` producing `target`. A Mat that
  // resolves a bare-reference binding (from Unnest) has field == kInvalidField.
  BindingId source = kInvalidBinding;
  FieldId field = kInvalidField;
  BindingId target = kInvalidBinding;

  static LogicalOp Get(CollectionId coll, BindingId binding);
  static LogicalOp Select(ScalarExprPtr pred);
  static LogicalOp Project(std::vector<ScalarExprPtr> emit);
  static LogicalOp Mat(BindingId source, FieldId field, BindingId target);
  /// Mat resolving a bare reference binding.
  static LogicalOp MatRef(BindingId ref_binding, BindingId target);
  static LogicalOp Unnest(BindingId source, FieldId set_field, BindingId target);
  static LogicalOp Join(ScalarExprPtr pred);
  static LogicalOp SetOp(LogicalOpKind kind);

  /// Number of children this operator takes.
  int Arity() const;

  bool operator==(const LogicalOp& o) const;
  size_t Hash() const;

  /// One-line rendering, e.g. "Mat e.dept" / "Get Employees: e".
  std::string ToString(const QueryContext& ctx) const;

  /// Scope this operator produces given its children's scopes.
  BindingSet OutputBindings(const std::vector<BindingSet>& child_scopes) const;

  /// Checks operator validity against child scopes: predicate references in
  /// scope, Mat source in scope & target fresh, join scopes disjoint, set-op
  /// scopes identical, etc.
  Status Validate(const QueryContext& ctx,
                  const std::vector<BindingSet>& child_scopes) const;
};

struct LogicalExpr;
using LogicalExprPtr = std::shared_ptr<const LogicalExpr>;

/// A standalone logical expression tree — the optimizer's *input* (produced
/// by simplification) and the shape transformation-rule results take before
/// memo insertion.
struct LogicalExpr {
  LogicalOp op;
  std::vector<LogicalExprPtr> children;

  static LogicalExprPtr Make(LogicalOp op,
                             std::vector<LogicalExprPtr> children = {});

  /// Scope of this subtree.
  BindingSet Scope() const;
};

/// Validates an entire tree bottom-up; returns the root scope.
Result<BindingSet> ValidateLogicalTree(const LogicalExpr& expr,
                                       const QueryContext& ctx);

/// Renders the tree in the paper's figure style (one operator per line,
/// children indented below).
std::string PrintLogicalTree(const LogicalExpr& expr, const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_ALGEBRA_LOGICAL_OP_H_
