// E14 — assembly ablations: (a) window-size sweep, showing how the elevator
// pattern's seek savings grow with the open-reference window (paper Table
// 2's "w/o window" row is the window=1 point); (b) the "warm-start"
// assembly variant the paper proposes as future work (Lesson 7), both as
// anticipated costs and as simulated execution.
#include "bench/bench_util.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Assembly window sweep — Query 2 scan+assembly plan, "
                "anticipated cost");
  std::printf("%8s %14s %14s\n", "window", "est. cost [s]", "discount");
  OptimizerOptions base;
  base.disabled_rules = {kImplIndexScan, kRuleMatToJoin};
  for (int window : {1, 2, 4, 8, 16, 32, 64, 128}) {
    OptimizerOptions opts = base;
    opts.cost.assembly_window = window;
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(2, db, &ctx, opts);
    CostModel cm(opts.cost);
    std::printf("%8d %14.1f %14.2f\n", window, q.cost.total(),
                cm.AssemblyDiscount(window));
  }

  bench::Header("Warm-start assembly (paper Lesson 7) — anticipated costs");
  {
    OptimizerOptions chase;
    chase.disabled_rules = {kRuleJoinCommute, kRuleMatToJoin};
    QueryContext c1;
    OptimizedQuery plain = bench::Optimize(1, db, &c1, chase);
    OptimizerOptions warm = chase;
    warm.enable_warm_start_assembly = true;
    QueryContext c2;
    OptimizedQuery warmed = bench::Optimize(1, db, &c2, warm);
    std::printf("Query 1, pointer-chasing configuration:\n");
    std::printf("  faulting assembly : %10.1f s\n", plain.cost.total());
    std::printf("  warm-start allowed: %10.1f s\n", warmed.cost.total());
    std::printf("\nwarm-start plan:\n%s",
                PrintPlan(*warmed.plan, c2, true).c_str());
    std::printf(
        "(dept and job components warm-start from their extents; plants "
        "cannot — no extent to pre-scan.)\n");
  }

  bench::Header("Simulated execution: window sweep on a scaled instance");
  {
    PaperDb sdb = MakePaperCatalog(0.1);
    std::printf("%8s %15s %14s %14s %14s\n", "window", "simulated [s]",
                "random reads", "seq reads", "buffer hits");
    for (int window : {1, 4, 32, 128}) {
      // The executed assembly window comes from the store's timing options;
      // use a small buffer pool so page re-reads are visible.
      StoreOptions store_opts;
      store_opts.timing.assembly_window = window;
      store_opts.buffer_pages = 64;
      ObjectStore store(&sdb.catalog, store_opts);
      auto gen = GeneratePaperData(sdb, &store);
      if (!gen.ok()) {
        std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
        return 1;
      }
      OptimizerOptions opts = base;
      opts.cost.assembly_window = window;
      QueryContext ctx;
      ctx.catalog = &sdb.catalog;
      auto logical = ParseAndSimplify(kQuery2Text, &ctx);
      Optimizer opt(&sdb.catalog, opts);
      auto planned = opt.Optimize(**logical, &ctx);
      if (!planned.ok()) continue;
      auto stats = ExecutePlan(*planned->plan, &store, &ctx);
      if (!stats.ok()) continue;
      std::printf("%8d %15.2f %14lld %14lld %14lld\n", window,
                  stats->sim_total_s(),
                  static_cast<long long>(stats->random_reads),
                  static_cast<long long>(stats->seq_reads),
                  static_cast<long long>(stats->buffer_hits));
    }
    std::printf("(Larger windows sort more references per batch: seeks "
                "shorten and buffer reuse improves.)\n");
  }
  return 0;
}
