// Physical properties (paper §3 "Properties and Property Enforcement").
// The key object-query property is *presence in memory*: which bindings'
// objects an operator's output delivers as loaded objects (vs. bare
// references carried in the tuple). The extension property *sort order*
// demonstrates the framework's extensibility (the paper's relational
// example, §3; merge-join + sort enforcer live in the extension modules).
#ifndef OODB_PHYSICAL_PHYS_PROPS_H_
#define OODB_PHYSICAL_PHYS_PROPS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/algebra/logical_op.h"

namespace oodb {

/// One key of a sort order: an attribute of a binding plus a direction.
struct SortKey {
  BindingId binding = kInvalidBinding;
  FieldId field = kInvalidField;
  bool desc = false;

  bool operator==(const SortKey& o) const {
    return binding == o.binding && field == o.field && desc == o.desc;
  }
  bool operator<(const SortKey& o) const {
    if (binding != o.binding) return binding < o.binding;
    if (field != o.field) return field < o.field;
    return desc < o.desc;
  }
};

/// A sort order: an ordered list of keys, major key first. A requirement of
/// `(a ASC)` is satisfied by a delivery of `(a ASC, b DESC)` — prefix
/// satisfaction — so operators that establish more order than asked never
/// force a redundant re-sort above them.
struct SortSpec {
  std::vector<SortKey> keys;

  SortSpec() = default;
  /// Single ascending (or descending) key — the common case, and the
  /// compatibility constructor for the pre-multi-key `SortSpec{b, f}` form.
  SortSpec(BindingId binding, FieldId field, bool desc = false)
      : keys{{binding, field, desc}} {}
  explicit SortSpec(std::vector<SortKey> k) : keys(std::move(k)) {}

  bool IsSorted() const { return !keys.empty(); }
  size_t size() const { return keys.size(); }

  /// The first `n` keys (n clamped to size).
  SortSpec Prefix(size_t n) const {
    SortSpec p;
    p.keys.assign(keys.begin(),
                  keys.begin() + static_cast<ptrdiff_t>(
                                     n < keys.size() ? n : keys.size()));
    return p;
  }

  /// Does a stream sorted by `*this` satisfy a requirement of `required`?
  /// True iff `required.keys` is a (possibly equal) prefix of `keys`,
  /// direction included. An empty requirement is always satisfied.
  bool Satisfies(const SortSpec& required) const {
    if (required.keys.size() > keys.size()) return false;
    for (size_t i = 0; i < required.keys.size(); ++i) {
      if (!(keys[i] == required.keys[i])) return false;
    }
    return true;
  }

  bool operator==(const SortSpec& o) const { return keys == o.keys; }
  bool operator<(const SortSpec& o) const { return keys < o.keys; }
};

/// A physical property vector: which bindings are present in memory, an
/// optional delivered sort order, and an optional bounded-result limit
/// (delivered means: the stream carries only the first `limit` rows in
/// `sort` order — established by a TopK enforcer or a limit-pushing merge
/// Exchange).
struct PhysProps {
  BindingSet in_memory;
  SortSpec sort;
  /// 0 = unbounded. A required limit k means the consumer needs exactly the
  /// first k rows of the required order; only a delivery truncated to the
  /// same bound satisfies it (a longer stream would make LIMIT a no-op, a
  /// shorter one would drop rows).
  int64_t limit = 0;

  /// Does a delivery of `*this` satisfy a requirement of `required`?
  bool Satisfies(const PhysProps& required) const {
    if (!in_memory.ContainsAll(required.in_memory)) return false;
    if (required.sort.IsSorted() && !sort.Satisfies(required.sort)) {
      return false;
    }
    if (limit != required.limit) return false;
    return true;
  }

  bool operator==(const PhysProps& o) const {
    return in_memory == o.in_memory && sort == o.sort && limit == o.limit;
  }
  bool operator<(const PhysProps& o) const {
    if (!(in_memory == o.in_memory)) return in_memory < o.in_memory;
    if (!(sort == o.sort)) return sort < o.sort;
    return limit < o.limit;
  }

  PhysProps WithMemory(BindingSet mem) const {
    PhysProps p = *this;
    p.in_memory = mem;
    return p;
  }

  std::string ToString(const QueryContext& ctx) const;
};

/// Bindings in `s` that are *loadable objects* — i.e. excluding bare-
/// reference bindings (Unnest targets), which are always carried by value
/// and can never be an in-memory requirement.
BindingSet LoadableBindings(BindingSet s, const QueryContext& ctx);

/// Bindings a predicate/emit-list needs loaded to evaluate: kAttr references
/// (field reads) but not kSelf references (the OID is in the tuple slot).
BindingSet LoadRequirements(const ScalarExprPtr& expr, const QueryContext& ctx);
BindingSet LoadRequirements(const std::vector<ScalarExprPtr>& exprs,
                            const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_PHYSICAL_PHYS_PROPS_H_
