// Annotated mutex wrappers and the debug-build lock-rank registry: the
// concurrency layer's only sanctioned locking primitives.
//
// Every mutex in the engine is an oodb::Mutex or oodb::SharedMutex carrying
// (a) Clang Thread Safety capability annotations, so -Wthread-safety proves
// at compile time that each GUARDED_BY field is only touched with its lock
// held, and (b) a static LockRank from the global acquisition order below,
// so Debug builds (OODB_LOCK_ORDER) detect out-of-rank acquisition — the
// edge that would close a deadlock cycle — at the moment of acquisition,
// on the thread that commits it, whether or not a second thread ever races
// the reverse edge. Release builds compile the registry out; the wrappers
// then inline to the underlying std primitives.
//
// Raw std::mutex / std::lock_guard / std::unique_lock / std::shared_lock /
// std::condition_variable are rejected repo-wide by scripts/lint_locks.py
// outside this header and its .cc, so the discipline cannot erode.
#ifndef OODB_COMMON_MUTEX_H_
#define OODB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/thread_annotations.h"

namespace oodb {

/// A position in the global lock-acquisition order plus a report-friendly
/// name. Locks may only be acquired in strictly increasing rank order per
/// thread; a total order admits no cycles, so enforcing it at every acquire
/// is complete deadlock prevention across ranks.
struct LockRank {
  int order;
  const char* name;
};

namespace lock_rank {

// The global acquisition order (outermost first). A thread holding a lock
// of rank r may only acquire locks of rank strictly greater than r. The
// order mirrors the call graph's nesting today:
//
//   plan_cache.shard  -> metrics                  (miss counters under lock)
//   exchange.part     -> exchange.error           (duplicate-delivery check)
//                     -> exchange.pending         (DispatchLocked)
//                     -> exchange.batch_queue     (terminal Abort)
//                     -> worker_pool              (DispatchLocked -> Submit)
//                     -> governor                 (retry-budget charge)
//   exchange.batch_queue -> batch_pool            (Abort drains to pool)
//   buffer_pool       -> disk_model               (miss reads the disk)
//                     -> storage_fault            (AccessMany fault check)
//   governor / exec_fault / batch_pool / *        -> metrics
//
// Gaps between ranks leave room for future locks without renumbering.

inline constexpr LockRank kPlanCacheShard{10, "plan_cache.shard"};
inline constexpr LockRank kExchangePartition{20, "exchange.part"};
inline constexpr LockRank kExchangeError{30, "exchange.error"};
inline constexpr LockRank kExchangePending{35, "exchange.pending"};
inline constexpr LockRank kBatchQueue{40, "exchange.batch_queue"};
inline constexpr LockRank kWorkerPool{45, "worker_pool"};
inline constexpr LockRank kGovernor{50, "governor"};
inline constexpr LockRank kExecFault{55, "exec_fault"};
inline constexpr LockRank kBufferPool{60, "buffer_pool"};
inline constexpr LockRank kDiskModel{65, "disk_model"};
inline constexpr LockRank kStorageFault{70, "storage_fault"};
inline constexpr LockRank kBatchPool{80, "batch_pool"};
inline constexpr LockRank kStoreColumns{85, "object_store.columns"};
inline constexpr LockRank kMetrics{90, "metrics"};

}  // namespace lock_rank

/// What the rank registry reports: the rank being acquired and the
/// highest-ranked lock already held (the pair whose order is inverted).
struct LockOrderViolation {
  int acquired_order = 0;
  const char* acquired_name = "";
  int held_order = 0;
  const char* held_name = "";

  /// "lock-rank violation: acquiring NAME (rank A) while holding NAME
  /// (rank B)" — the offending rank pair, by name.
  std::string ToString() const;
};

/// Violation sink. The default handler prints the violation and aborts;
/// the lockcheck self-tests install a capturing handler instead. Returns
/// the previous handler; passing nullptr restores the default.
using LockOrderHandler = void (*)(const LockOrderViolation&);
LockOrderHandler SetLockOrderHandler(LockOrderHandler handler);

/// True when this build enforces the lock-rank registry (OODB_LOCK_ORDER,
/// default ON in Debug). The capability annotations are independent of this
/// and always present under Clang.
inline constexpr bool LockOrderCheckingEnabled() {
#if defined(OODB_LOCK_ORDER)
  return true;
#else
  return false;
#endif
}

namespace lock_order {
#if defined(OODB_LOCK_ORDER)
/// Checks `rank` against this thread's held set and records it. Called
/// before the underlying acquire so an inversion is reported even when the
/// acquire would deadlock.
void OnAcquire(const LockRank& rank);
/// Removes the most recent held entry of `rank` from this thread's set.
void OnRelease(const LockRank& rank);
#else
inline void OnAcquire(const LockRank&) {}
inline void OnRelease(const LockRank&) {}
#endif
}  // namespace lock_order

/// Exclusive mutex. Constructed with its static rank; prefer the scoped
/// MutexLock / UniqueLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(rank_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_order::OnRelease(rank_);
  }

  const LockRank& rank() const { return rank_; }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex& native() { return mu_; }

  std::mutex mu_;
  LockRank rank_;
};

/// Reader/writer mutex with the same rank discipline (shared and exclusive
/// acquisitions check the same rank).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(rank_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_order::OnRelease(rank_);
  }
  void LockShared() ACQUIRE_SHARED() {
    lock_order::OnAcquire(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_order::OnRelease(rank_);
  }

  const LockRank& rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_;
};

/// Scoped exclusive lock (the std::lock_guard shape).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock that can be waited on (CondVar) and temporarily
/// released (the std::unique_lock shape). Must be locked at destruction or
/// after an explicit Unlock() with no re-Lock() — the analysis checks the
/// release/acquire pairing along every path.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu)
      : mu_(&mu), lock_(mu.native(), std::defer_lock) {
    lock_order::OnAcquire(mu_->rank());
    lock_.lock();
  }
  ~UniqueLock() RELEASE() {
    if (lock_.owns_lock()) {
      lock_.unlock();
      lock_order::OnRelease(mu_->rank());
    }
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(mu_->rank());
    lock_.lock();
  }
  void Unlock() RELEASE() {
    lock_.unlock();
    lock_order::OnRelease(mu_->rank());
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over a UniqueLock. Waits release and reacquire the
/// underlying mutex internally; the lock is held again when Wait returns,
/// so from the rank registry's view the waiter holds its lock throughout
/// (a blocked thread cannot acquire anything else anyway). Predicate waits
/// are spelled as explicit `while (!cond) cv.Wait(lock);` loops at the call
/// sites so the guarded reads in `cond` stay visible to the analysis.
class CondVar {
 public:
  void Wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  /// Waits until notified (true) or `deadline` passed (false). Callers loop
  /// on their predicate against a fixed deadline, so spurious wakeups cost
  /// one re-check, never extra waiting time.
  template <typename Clock, typename Duration>
  bool WaitUntil(UniqueLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace oodb

#endif  // OODB_COMMON_MUTEX_H_
