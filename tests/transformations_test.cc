// Tests of individual transformation rules: rewrites are validated against
// the algebra's scoping rules, and targeted memo explorations assert the
// expected equivalent expressions appear.
#include <gtest/gtest.h>

#include "src/rules/transformations.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

class TransformationTest : public ::testing::Test {
 protected:
  TransformationTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
  }

  struct Explored {
    std::unique_ptr<Memo> memo;
    GroupId root;
  };

  /// Inserts the tree and applies every default transformation to fixpoint,
  /// honouring `disabled`.
  Explored Explore(const LogicalExprPtr& tree,
                   std::vector<std::string> disabled = {}) {
    opts_ = OptimizerOptions{};
    opts_.disabled_rules = std::move(disabled);
    cost_model_ = CostModel(opts_.cost);
    Explored out;
    out.memo = std::make_unique<Memo>(&ctx_);
    auto root = out.memo->InsertTree(*tree);
    EXPECT_TRUE(root.ok()) << root.status();
    out.root = *root;

    OptContext octx;
    octx.qctx = &ctx_;
    octx.memo = out.memo.get();
    octx.cost_model = &cost_model_;
    octx.opts = &opts_;

    auto rules = MakeDefaultTransformations();
    bool changed = true;
    while (changed) {
      changed = false;
      for (MExprId m = 0; m < static_cast<MExprId>(out.memo->num_mexprs());
           ++m) {
        for (const auto& rule : rules) {
          if (rule->root_kind() != out.memo->mexpr(m).op.kind) continue;
          if (opts_.IsDisabled(rule->name())) continue;
          std::vector<RuleExprPtr> produced;
          Status s = rule->Apply(octx, out.memo->mexpr(m), &produced);
          EXPECT_TRUE(s.ok()) << s;
          GroupId target = out.memo->Find(out.memo->mexpr(m).group);
          for (const RuleExprPtr& e : produced) {
            auto inserted = out.memo->InsertRuleExpr(e, target);
            EXPECT_TRUE(inserted.ok()) << inserted.status();
            if (inserted.ok() && *inserted != kInvalidMExpr) changed = true;
          }
        }
      }
    }
    return out;
  }

  /// Counts m-exprs of `kind` in the root group.
  int CountInRoot(const Explored& e, LogicalOpKind kind) {
    int n = 0;
    for (MExprId m : e.memo->group(e.root).mexprs) {
      if (e.memo->mexpr(m).op.kind == kind) ++n;
    }
    return n;
  }

  /// Counts m-exprs of `kind` anywhere in the memo.
  int CountAll(const Explored& e, LogicalOpKind kind) {
    int n = 0;
    for (MExprId m = 0; m < static_cast<MExprId>(e.memo->num_mexprs()); ++m) {
      if (e.memo->mexpr(m).op.kind == kind) ++n;
    }
    return n;
  }

  PaperDb db_;
  QueryContext ctx_;
  OptimizerOptions opts_;
  CostModel cost_model_{CostModelOptions{}};
};

TEST_F(TransformationTest, CanonicalConjunctionSortsAndDropsTrue) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c, db_.city_population, 1);
  ScalarExprPtr b = ScalarExpr::AttrEqInt(c, db_.city_population, 2);
  ScalarExprPtr t = ScalarExpr::Const(Value::Int(1));
  ScalarExprPtr c1 = CanonicalConjunction({a, b, t});
  ScalarExprPtr c2 = CanonicalConjunction({b, t, a});
  EXPECT_TRUE(c1->Equals(*c2));
  EXPECT_EQ(ScalarExpr::SplitConjuncts(c1).size(), 2u);
  // All-true input keeps a single true.
  ScalarExprPtr all_true = CanonicalConjunction({t});
  EXPECT_EQ(all_true->kind(), ScalarExpr::Kind::kConst);
}

TEST_F(TransformationTest, MatMatCommuteGeneratesBothOrders) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);
  BindingId k = ctx_.bindings.AddMat("c.country", db_.country, c, db_.city_country);
  auto tree = LogicalExpr::Make(
      LogicalOp::Mat(c, db_.city_country, k),
      {LogicalExpr::Make(
          LogicalOp::Mat(c, db_.city_mayor, m),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))})});
  Explored e = Explore(tree, {kRuleMatToJoin});
  // Root group holds Mat(country) over Mat(mayor) and the commuted order.
  EXPECT_EQ(CountInRoot(e, LogicalOpKind::kMat), 2);
}

TEST_F(TransformationTest, DependentMatsDoNotCommute) {
  // c.country must be materialized before c.country.president (paper §3).
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId k = ctx_.bindings.AddMat("c.country", db_.country, c, db_.city_country);
  BindingId p = ctx_.bindings.AddMat("c.country.president", db_.person, k,
                                     db_.country_president);
  auto tree = LogicalExpr::Make(
      LogicalOp::Mat(k, db_.country_president, p),
      {LogicalExpr::Make(
          LogicalOp::Mat(c, db_.city_country, k),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))})});
  Explored e = Explore(tree, {kRuleMatToJoin});
  EXPECT_EQ(CountInRoot(e, LogicalOpKind::kMat), 1);
}

TEST_F(TransformationTest, MatToJoinRequiresExtent) {
  BindingId e_ = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e_, db_.emp_dept);
  auto employees = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Employees", db_.employee), e_));
  auto tree = LogicalExpr::Make(LogicalOp::Mat(e_, db_.emp_dept, d), {employees});
  Explored ex = Explore(tree);
  // Department has an extent: a Join alternative appears in the root group.
  EXPECT_GE(CountInRoot(ex, LogicalOpKind::kJoin), 1);

  // Plant has no extent: Mat d.plant cannot become a join.
  BindingId dd = ctx_.bindings.AddGet("d", db_.department);
  BindingId pl = ctx_.bindings.AddMat("d.plant", db_.plant, dd, db_.dept_plant);
  auto depts = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Extent(db_.department), dd));
  auto tree2 = LogicalExpr::Make(LogicalOp::Mat(dd, db_.dept_plant, pl), {depts});
  Explored ex2 = Explore(tree2);
  EXPECT_EQ(CountInRoot(ex2, LogicalOpKind::kJoin), 0);
}

TEST_F(TransformationTest, MatToJoinDisabledByName) {
  BindingId e_ = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e_, db_.emp_dept);
  auto tree = LogicalExpr::Make(
      LogicalOp::Mat(e_, db_.emp_dept, d),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Employees", db_.employee), e_))});
  Explored ex = Explore(tree, {kRuleMatToJoin});
  EXPECT_EQ(CountInRoot(ex, LogicalOpKind::kJoin), 0);
}

TEST_F(TransformationTest, SelectPushesBelowMat) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);
  // Predicate on the city only: can sink below Mat c.mayor.
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqInt(c, db_.city_population, 5)),
      {LogicalExpr::Make(
          LogicalOp::Mat(c, db_.city_mayor, m),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))})});
  Explored e = Explore(tree, {kRuleMatToJoin});
  // Root group gains a Mat alternative (Mat over the pushed Select).
  EXPECT_GE(CountInRoot(e, LogicalOpKind::kMat), 1);
  // Somewhere a Select directly over the Get exists.
  bool found = false;
  for (MExprId m2 = 0; m2 < static_cast<MExprId>(e.memo->num_mexprs()); ++m2) {
    const LogicalMExpr& me = e.memo->mexpr(m2);
    if (me.op.kind != LogicalOpKind::kSelect) continue;
    for (MExprId cm : e.memo->group(me.children[0]).mexprs) {
      if (e.memo->mexpr(cm).op.kind == LogicalOpKind::kGet) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TransformationTest, SelectOnMatTargetDoesNotPush) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m, db_.person_name, "Joe")),
      {LogicalExpr::Make(
          LogicalOp::Mat(c, db_.city_mayor, m),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))})});
  Explored e = Explore(tree, {kRuleMatToJoin});
  // The predicate reads the mat target: no Mat-over-Select alternative in
  // the root group.
  EXPECT_EQ(CountInRoot(e, LogicalOpKind::kMat), 0);
}

TEST_F(TransformationTest, SelectSplitAndMergeRoundTrip) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  ScalarExprPtr p1 = ScalarExpr::AttrEqInt(c, db_.city_population, 1);
  ScalarExprPtr p2 = ScalarExpr::AttrEqInt(c, db_.city_population, 2);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::And({p1, p2})),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  Explored e = Explore(tree);
  // Split produces single-conjunct selects; merge recovers the conjunction.
  EXPECT_GE(CountAll(e, LogicalOpKind::kSelect), 3);
  EXPECT_GE(CountInRoot(e, LogicalOpKind::kSelect), 2);
}

TEST_F(TransformationTest, JoinCommutativityDoublesJoinExprs) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId n = ctx_.bindings.AddGet("n", db_.country);
  auto tree = LogicalExpr::Make(
      LogicalOp::Join(ScalarExpr::RefEq(c, db_.city_country, n)),
      {LogicalExpr::Make(LogicalOp::Get(CollectionId::Set("Cities", db_.city), c)),
       LogicalExpr::Make(LogicalOp::Get(CollectionId::Extent(db_.country), n))});
  Explored with = Explore(tree);
  EXPECT_EQ(CountInRoot(with, LogicalOpKind::kJoin), 2);
  Explored without = Explore(tree, {kRuleJoinCommute});
  EXPECT_EQ(CountInRoot(without, LogicalOpKind::kJoin), 1);
}

TEST_F(TransformationTest, JoinAssociativityReordersThreeWay) {
  BindingId a = ctx_.bindings.AddGet("a", db_.employee);
  BindingId b = ctx_.bindings.AddGet("b", db_.department);
  BindingId c = ctx_.bindings.AddGet("c", db_.job);
  auto ga = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Employees", db_.employee), a));
  auto gb = LogicalExpr::Make(LogicalOp::Get(CollectionId::Extent(db_.department), b));
  auto gc = LogicalExpr::Make(LogicalOp::Get(CollectionId::Extent(db_.job), c));
  auto inner = LogicalExpr::Make(
      LogicalOp::Join(ScalarExpr::RefEq(a, db_.emp_dept, b)), {ga, gb});
  auto tree = LogicalExpr::Make(
      LogicalOp::Join(ScalarExpr::RefEq(a, db_.emp_job, c)), {inner, gc});
  Explored e = Explore(tree);
  // All join orders explored.
  EXPECT_GE(CountInRoot(e, LogicalOpKind::kJoin), 3);
  Explored without = Explore(tree, {kRuleJoinAssoc, kRuleJoinCommute});
  EXPECT_EQ(CountInRoot(without, LogicalOpKind::kJoin), 1);
}

TEST_F(TransformationTest, SelectUnnestCommute) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r = ctx_.bindings.AddUnnest("r", db_.employee, t, db_.task_team_members);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqInt(t, db_.task_time, 100)),
      {LogicalExpr::Make(
          LogicalOp::Unnest(t, db_.task_team_members, r),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Tasks", db_.task), t))})});
  Explored e = Explore(tree);
  // The select sinks below the unnest: an Unnest m-expr appears in the root.
  EXPECT_GE(CountInRoot(e, LogicalOpKind::kUnnest), 1);
}

TEST_F(TransformationTest, AllRewritesValidate) {
  // Property: every expression generated during exploration of Query 1
  // satisfies the algebra's scoping invariants.
  QueryContext qctx;
  qctx.catalog = &db_.catalog;
  auto logical = BuildPaperQuery(1, db_, &qctx);
  ASSERT_TRUE(logical.ok());
  ctx_ = std::move(qctx);
  Explored e = Explore(*logical);
  for (MExprId m = 0; m < static_cast<MExprId>(e.memo->num_mexprs()); ++m) {
    const LogicalMExpr& me = e.memo->mexpr(m);
    std::vector<BindingSet> child_scopes;
    for (GroupId g : me.children) {
      child_scopes.push_back(e.memo->group(g).props.scope);
    }
    Status s = me.op.Validate(ctx_, child_scopes);
    EXPECT_TRUE(s.ok()) << me.op.ToString(ctx_) << ": " << s;
  }
}

TEST_F(TransformationTest, ExplorationTerminates) {
  QueryContext qctx;
  qctx.catalog = &db_.catalog;
  auto logical = BuildPaperQuery(4, db_, &qctx);
  ASSERT_TRUE(logical.ok());
  ctx_ = std::move(qctx);
  Explored e = Explore(*logical);
  EXPECT_LT(e.memo->num_mexprs(), 4000);
  EXPECT_GT(e.memo->num_mexprs(), 5);
}

TEST_F(TransformationTest, SetOpCommuteAndAssoc) {
  BindingId c = ctx_.bindings.AddGet("c", db_.capital);
  auto caps = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Capitals", db_.capital), c));
  auto u1 = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kIntersect),
                              {caps, caps});
  auto tree = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kIntersect),
                                {u1, caps});
  Explored e = Explore(tree);
  EXPECT_GE(CountInRoot(e, LogicalOpKind::kIntersect), 2);
}

}  // namespace
}  // namespace oodb
