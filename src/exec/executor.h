// Plan executor: runs a physical plan against the simulated store and
// reports simulated time and I/O statistics, enabling end-to-end validation
// of the optimizer's anticipated costs.
#ifndef OODB_EXEC_EXECUTOR_H_
#define OODB_EXEC_EXECUTOR_H_

#include "src/common/governor.h"
#include "src/exec/operators.h"

namespace oodb {

struct ExecStats {
  int64_t rows = 0;
  double sim_io_s = 0.0;
  double sim_cpu_s = 0.0;
  int64_t pages_read = 0;
  int64_t seq_reads = 0;
  int64_t random_reads = 0;
  int64_t buffer_hits = 0;
  /// Rows per batch the pipeline ran with.
  int batch_size = 0;
  /// Degree of parallelism: the maximum Exchange dop in the plan (1 when
  /// the plan is serial).
  int dop = 1;
  /// Governor trip/charge counters (zero when the run was ungoverned).
  GovernorStats governor;

  double sim_total_s() const { return sim_io_s + sim_cpu_s; }

  /// Projected output rows (first `sample_limit` only).
  std::vector<std::vector<Value>> sample_rows;
};

struct ExecOptions {
  /// Reset buffer pool / clock before running (cold start).
  bool cold_start = true;
  /// How many projected rows to retain in the stats.
  int sample_limit = 10;
  /// Rows per execution batch. 0 means the store's timing knob
  /// (exec_batch_size); 1 degenerates to tuple-at-a-time iteration.
  int batch_size = 0;
  /// Per-query resource governor (non-owning; null = ungoverned). Checked
  /// at every operator Next() — i.e. per batch — and charged per output
  /// batch.
  QueryGovernor* governor = nullptr;
};

/// Executes `plan` to completion.
Result<ExecStats> ExecutePlan(const PlanNode& plan, ObjectStore* store,
                              QueryContext* ctx, ExecOptions options = {});

}  // namespace oodb

#endif  // OODB_EXEC_EXECUTOR_H_
