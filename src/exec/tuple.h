// Runtime tuples: one slot per binding, each holding a reference (OID) and,
// when the component is *present in memory*, a pointer to the loaded object.
// The gap between "slot has a ref" and "slot has a loaded object" is the
// physical present-in-memory property at runtime; expression evaluation
// fails loudly if a plan tries to read a field of an unloaded component,
// which makes execution an end-to-end check of the optimizer's property
// machinery.
//
// Batch layout: operators exchange TupleBatch objects — a fixed-capacity
// batch of rows over a single flat Slot arena (row-major, column count =
// number of bindings). The arena is allocated once per operator and rows
// are recycled across Next() calls, so steady-state execution performs no
// per-tuple heap allocation; a row is addressed as a (Slot*, width) view
// and a column of one binding is a strided walk over the arena, which keeps
// the layout friendly to columnar-style per-batch loops.
#ifndef OODB_EXEC_TUPLE_H_
#define OODB_EXEC_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/algebra/expr.h"
#include "src/algebra/logical_op.h"
#include "src/storage/object.h"

namespace oodb {

struct Slot {
  Oid ref = kInvalidOid;
  const ObjectData* obj = nullptr;

  bool present() const { return ref != kInvalidOid; }
  bool loaded() const { return obj != nullptr; }
};

struct Tuple;

/// Read-only view of one row — either an owning Tuple or a TupleBatch row.
/// Passed by value (pointer + width); never outlives the storage it views.
struct TupleRef {
  const Slot* slots = nullptr;
  size_t width = 0;

  TupleRef() = default;
  TupleRef(const Slot* s, size_t w) : slots(s), width(w) {}
  TupleRef(const Tuple& t);  // implicit: Tuple evaluates wherever a row does

  const Slot& slot(BindingId b) const { return slots[b]; }
};

/// Owning row used where tuples must outlive their source batch (hash-join
/// build tables, sort buffers, nested-loops buffers, set-op materialization).
struct Tuple {
  std::vector<Slot> slots;

  explicit Tuple(int num_bindings = 0) : slots(num_bindings) {}
  Slot& slot(BindingId b) { return slots[b]; }
  const Slot& slot(BindingId b) const { return slots[b]; }

  /// Replaces this tuple's contents with a copy of `row`.
  void AssignFrom(TupleRef row) {
    slots.assign(row.slots, row.slots + row.width);
  }

  /// Merges the occupied slots of `other` into this tuple.
  void MergeFrom(TupleRef other);
};

inline TupleRef::TupleRef(const Tuple& t)
    : slots(t.slots.data()), width(t.slots.size()) {}

/// Mutable view of one TupleBatch row. The batch owns the storage; the view
/// is invalidated by Clear()/refill of its batch.
struct TupleRow {
  Slot* slots = nullptr;
  size_t width = 0;

  Slot& slot(BindingId b) { return slots[b]; }
  const Slot& slot(BindingId b) const { return slots[b]; }
  operator TupleRef() const { return TupleRef(slots, width); }

  void Clear() { std::fill(slots, slots + width, Slot{}); }

  /// Copies the first min(width, src.width) slots of `src` into this row.
  void CopyFrom(TupleRef src) {
    std::copy(src.slots, src.slots + std::min(width, src.width), slots);
  }

  /// Merges the occupied slots of `other` into this row.
  void MergeFrom(TupleRef other) {
    size_t n = std::min(width, other.width);
    for (size_t i = 0; i < n; ++i) {
      if (other.slots[i].present()) slots[i] = other.slots[i];
    }
  }
};

/// A fixed-capacity batch of rows over one flat Slot arena. `width` is the
/// number of bindings (columns); row i occupies slots [i*width, (i+1)*width).
class TupleBatch {
 public:
  /// Default rows per batch (the exec_batch_size knob's default).
  static constexpr size_t kDefaultCapacity = 1024;

  TupleBatch() = default;
  TupleBatch(int width, size_t capacity)
      : width_(width),
        capacity_(capacity),
        slots_(static_cast<size_t>(width) * capacity) {}

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  int width() const { return width_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  TupleRow row(size_t i) {
    return TupleRow{slots_.data() + i * width_, static_cast<size_t>(width_)};
  }
  TupleRef ref(size_t i) const {
    return TupleRef(slots_.data() + i * width_, static_cast<size_t>(width_));
  }

  /// Appends a cleared row and returns a view of it. The arena is fixed, so
  /// this never allocates; callers must not append past capacity().
  TupleRow AppendRow() {
    TupleRow r = row(size_++);
    r.Clear();
    return r;
  }

  /// Appends a row WITHOUT clearing it — for emit paths that immediately
  /// overwrite every slot (a full-width CopyFrom). Rows are recycled across
  /// Next() calls, so skipping the clear anywhere else leaks stale slots.
  TupleRow AppendRowRaw() { return row(size_++); }

  /// Overwrites row `dst` with row `src` (filter/compaction step).
  void CopyRow(size_t dst, size_t src) {
    std::copy(slots_.data() + src * width_,
              slots_.data() + (src + 1) * width_, slots_.data() + dst * width_);
  }

  void Clear() { size_ = 0; }
  /// Drops rows past `n` (after in-place compaction).
  void Truncate(size_t n) { size_ = n; }

 private:
  int width_ = 0;
  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<Slot> slots_;
};

/// Evaluates a scalar expression against a row. Booleans are encoded as
/// Value::Int(0/1). Returns Internal if an attribute's component is not
/// loaded (a plan/property bug).
Result<Value> EvalExpr(const ScalarExpr& expr, TupleRef tuple,
                       const QueryContext& ctx);

/// Evaluates a predicate to a boolean.
Result<bool> EvalPredicate(const ScalarExprPtr& pred, TupleRef tuple,
                           const QueryContext& ctx);

/// A predicate specialized for tight-loop batch evaluation. Analyze()
/// recognizes conjunctions of `attr <cmp> const` conjuncts and compiles
/// them to direct slot/field comparisons against the stored Value —
/// no interpreter recursion, no Result/Value copies per conjunct. Any
/// other shape yields specialized() == false and callers fall back to
/// EvalPredicate row by row.
///
/// Analysis walks the expression and allocates the step vector, which
/// costs about as much as interpreting the predicate once — it only pays
/// for itself amortized over a batch. kMinKernelRows is that break-even
/// point: below it (and in particular at batch size 1, the
/// tuple-at-a-time degeneration) interpretation is the faster plan and
/// callers should not analyze at all.
class FilterProgram {
 public:
  static constexpr size_t kMinKernelRows = 8;

  static FilterProgram Analyze(const ScalarExprPtr& pred);

  bool specialized() const { return specialized_; }

  /// True when every compiled step reads binding `b` — the condition for
  /// fusing the program into the scan that produces that binding.
  bool SingleBinding(BindingId b) const;

  /// Evaluates the compiled conjuncts directly against one loaded object —
  /// the scan-fusion path, where rows are filtered before they are ever
  /// materialized into a batch. No error case: the object is in hand.
  bool EvalSteps(const ObjectData& obj) const;

  /// Requests the exact cache lines EvalSteps will read from `obj` — one
  /// per step field. Each object's field array is its own heap block, so
  /// at scan working-set sizes the first touch is a miss; issuing the
  /// request a dozen rows ahead takes it off the critical path.
  void PrefetchFields(const ObjectData& obj) const {
    for (const CmpStep& step : steps_) {
      __builtin_prefetch(&obj.value(step.field));
    }
  }

  /// Evaluates the compiled conjuncts against `row`. Mirrors EvalPredicate
  /// exactly, including the loud Internal error on an unloaded component.
  Result<bool> Eval(TupleRef row, const QueryContext& ctx) const;

  /// Selection over rows [0, n) of `batch`, compacting passing rows in
  /// place and truncating; returns the kept count. One Result for the
  /// whole batch — the inner loop is pure comparisons, which is where the
  /// kernel's speedup over row-at-a-time Eval() calls comes from.
  Result<size_t> EvalBatch(TupleBatch* batch, size_t n,
                           const QueryContext& ctx) const;

 private:
  struct CmpStep {
    BindingId binding = kInvalidBinding;
    FieldId field = kInvalidField;
    CmpOp op = CmpOp::kEq;
    const Value* constant = nullptr;  // points into the (shared) expr tree
  };

  static bool StepPass(const CmpStep& step, const Value& l);

  bool specialized_ = false;
  std::vector<CmpStep> steps_;
};

}  // namespace oodb

#endif  // OODB_EXEC_TUPLE_H_
