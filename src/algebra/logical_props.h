// Logical properties of an algebra expression: the scope (binding set), the
// estimated cardinality, and the estimated bytes of a fully-materialized
// tuple. Logical properties are determined by the logical operators alone,
// before execution algorithms are chosen (paper §3 "Properties").
#ifndef OODB_ALGEBRA_LOGICAL_PROPS_H_
#define OODB_ALGEBRA_LOGICAL_PROPS_H_

#include "src/algebra/logical_op.h"

namespace oodb {

struct LogicalProps {
  BindingSet scope;
  double card = 0.0;
  /// Estimated bytes of one output tuple with every scoped component loaded
  /// (used for hash-table sizing).
  double tuple_bytes = 0.0;
};

/// Derives the logical properties of `op` applied to children with
/// `child_props`. Uses the catalog statistics and the selectivity estimator.
Result<LogicalProps> DeriveLogicalProps(
    const LogicalOp& op, const std::vector<LogicalProps>& child_props,
    const QueryContext& ctx);

/// Derives properties for a whole standalone tree (convenience for tests).
Result<LogicalProps> DeriveTreeProps(const LogicalExpr& expr,
                                     const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_ALGEBRA_LOGICAL_PROPS_H_
