// A thread-safe, invalidation-correct plan cache: the serving-stack answer
// to the paper's §1 performance goal. Repeated queries skip the Volcano
// search entirely — the dominant cost for warm traffic is *not searching at
// all*. Entries are keyed by (canonical query fingerprint, required
// physical properties, optimizer-options hash) and carry the catalog
// stats_version they were optimized under; a version mismatch invalidates
// the entry on contact, so ANALYZE, index creation/toggle, and cardinality
// updates can never leak a stale plan.
//
// Concurrency: a fixed array of shards, each an independently-locked LRU
// (mutex + intrusive recency list + hash index), like the storage layer's
// BufferPool but safe for many sessions at once. Cached plans are immutable
// shared_ptr trees, handed out without copying; literal rebinding happens
// outside the shard lock.
#ifndef OODB_OPTIMIZER_PLAN_CACHE_H_
#define OODB_OPTIMIZER_PLAN_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/optimizer.h"
#include "src/query/fingerprint.h"

namespace oodb {

/// Cache key: what must match *exactly* for a plan to be reusable. The
/// catalog statistics version is deliberately not part of the key — it
/// lives in the entry, so a probe that meets a stale entry reclaims the
/// slot instead of leaving dead versions to age out of the LRU.
struct PlanCacheKey {
  Fingerprint fp;
  PhysProps required;
  uint64_t options_hash = 0;

  bool operator==(const PlanCacheKey& o) const {
    return fp == o.fp && required == o.required &&
           options_hash == o.options_hash;
  }
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& k) const {
    uint64_t h = k.fp.lo ^ (k.fp.hi * 0x9e3779b97f4a7c15ull);
    h ^= k.required.in_memory.bits() * 0xff51afd7ed558ccdull;
    for (const SortKey& sk : k.required.sort.keys) {
      uint64_t kh = (static_cast<uint64_t>(sk.binding) << 33) ^
                    (static_cast<uint64_t>(static_cast<uint32_t>(sk.field))
                     << 1) ^
                    (sk.desc ? 1u : 0u);
      h = (h ^ kh) * 0x100000001b3ull;  // FNV-style fold per key
    }
    h ^= static_cast<uint64_t>(k.required.limit) * 0x2545f4914f6cdd1dull;
    h ^= k.options_hash * 0xc4ceb9fe1a85ec53ull;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

/// Cumulative cache counters (monotonic over the cache's lifetime).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;      ///< LRU capacity evictions
  int64_t invalidations = 0;  ///< entries dropped on stats_version mismatch
  int64_t drift_evictions = 0;  ///< entries dropped for observed exec drift
  int64_t entries = 0;        ///< currently resident
};

/// One immutable cached optimization result, plus what a hit needs to
/// verify structure and rebind literals.
struct CachedPlan {
  PlanNodePtr plan;
  Cost cost;
  SearchStats stats;           ///< effort of the search that built the plan
  uint64_t stats_version = 0;  ///< catalog version the plan was costed under
  LogicalExprPtr tree;         ///< the simplified tree that was optimized
  BindingTable bindings;       ///< its binding signatures (hit verification)
  std::vector<Value> literals; ///< parameterized-out literals, canonical order

  /// Worst MaxDriftRatio observed across executions served from this entry
  /// (bits of a double; 0 bits = never executed with ANALYZE on). Runtime
  /// bookkeeping, not part of the immutable optimization result — mutable
  /// + atomic so RecordDrift can write through the shared const entry
  /// without a shard lock upgrade.
  mutable std::atomic<uint64_t> observed_drift_bits{0};

  double observed_drift() const;
  void UpdateObservedDrift(double drift) const;
};

class PlanCache {
 public:
  /// `capacity` is a target entry count, split evenly (rounded up) across
  /// the shards; small caches collapse to one shard so tiny capacities
  /// still evict strictly.
  explicit PlanCache(size_t capacity);

  /// Probes for `key`. On a hit whose entry matches `stats_version` and
  /// structurally matches the probing query (`tree` / `bindings` — this
  /// verification makes fingerprint collisions a miss, never a wrong
  /// plan), returns the winning plan with comparison literals rebound to
  /// `literals`. Stale entries are dropped and counted as invalidations.
  std::optional<OptimizedQuery> Lookup(const PlanCacheKey& key,
                                       uint64_t stats_version,
                                       const LogicalExpr& tree,
                                       const BindingTable& bindings,
                                       const std::vector<Value>& literals);

  /// Inserts (or replaces) the entry for `key`, evicting the shard's least
  /// recently used entry beyond capacity.
  void Insert(const PlanCacheKey& key,
              std::shared_ptr<const CachedPlan> entry);

  /// Records an execution's observed MaxDriftRatio on `key`'s entry (kept
  /// as the per-entry worst) and, when `evict_threshold` > 0 and the drift
  /// exceeds it, evicts the entry so the next Prepare re-optimizes — the
  /// drift-feedback path that retires misestimated plans even when no
  /// ANALYZE ever bumps the stats version. Returns true when the entry was
  /// evicted. No-op when the key is no longer resident.
  bool RecordDrift(const PlanCacheKey& key, double drift,
                   double evict_threshold);

  /// The per-entry worst observed drift for `key` (1.0 when absent or
  /// never recorded) — test/observability hook.
  double ObservedDrift(const PlanCacheKey& key);

  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Shard {
    /// Hits read under a shared lock (shared_ptr copy only); inserts,
    /// evictions, invalidations, and sampled LRU-recency refreshes take it
    /// exclusively. Without this, a zipfian workload serializes every
    /// thread on the hot entry's recency splice. Shards are never nested, so
    /// they share one rank.
    mutable SharedMutex mu{lock_rank::kPlanCacheShard};
    /// Samples which hits pay for an exclusive recency refresh.
    std::atomic<uint64_t> tick{0};
    /// Front = most recently used (approximately: see `tick`).
    std::list<std::pair<PlanCacheKey, std::shared_ptr<const CachedPlan>>> lru
        GUARDED_BY(mu);
    std::unordered_map<PlanCacheKey,
                       decltype(lru)::iterator, PlanCacheKeyHash>
        index GUARDED_BY(mu);
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return shards_[key.fp.hi % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_;
  std::vector<Shard> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> drift_evictions_{0};
};

}  // namespace oodb

#endif  // OODB_OPTIMIZER_PLAN_CACHE_H_
