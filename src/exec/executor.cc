#include "src/exec/executor.h"

namespace oodb {

namespace {

/// Finds the topmost Alg-Project in the plan (property enforcers — e.g. a
/// Sort satisfying an ORDER BY — may sit above it). Output rows are its
/// emit list evaluated against each final tuple, whose slots survive every
/// order-preserving or -enforcing operator above the projection.
const PhysicalOp* FindProject(const PlanNode& node) {
  if (node.op.kind == PhysOpKind::kAlgProject) return &node.op;
  for (const PlanNodePtr& c : node.children) {
    if (const PhysicalOp* p = FindProject(*c)) return p;
  }
  return nullptr;
}

}  // namespace

Result<ExecStats> ExecutePlan(const PlanNode& plan, ObjectStore* store,
                              QueryContext* ctx, ExecOptions options) {
  if (options.cold_start) store->ResetSimulation();
  OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> root,
                        BuildExecTree(plan, store, ctx, options.governor));
  OODB_RETURN_IF_ERROR(root->Open());
  const PhysicalOp* project = FindProject(plan);

  ExecStats stats;
  Tuple t;
  while (true) {
    OODB_ASSIGN_OR_RETURN(bool more, root->Next(&t));
    if (!more) break;
    ++stats.rows;
    if (options.governor != nullptr) {
      OODB_RETURN_IF_ERROR(options.governor->ChargeRows(1));
    }
    if (project != nullptr &&
        static_cast<int>(stats.sample_rows.size()) < options.sample_limit) {
      std::vector<Value> row;
      for (const ScalarExprPtr& e : project->emit) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, t, *ctx));
        row.push_back(std::move(v));
      }
      stats.sample_rows.push_back(std::move(row));
    }
  }
  root->Close();

  stats.sim_io_s = store->clock().io_s;
  stats.sim_cpu_s = store->clock().cpu_s;
  stats.pages_read = store->disk().reads();
  stats.seq_reads = store->disk().seq_reads();
  stats.random_reads = store->disk().random_reads();
  stats.buffer_hits = store->buffer().hits();
  if (options.governor != nullptr) {
    stats.governor = options.governor->stats();
  }
  return stats;
}

}  // namespace oodb
