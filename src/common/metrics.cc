#include "src/common/metrics.h"

#include <sstream>

namespace oodb {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mu_);
  std::unique_ptr<CounterEntry>& e = counters_[name];
  if (e == nullptr) {
    e = std::make_unique<CounterEntry>();
    e->help = help;
  }
  return &e->counter;
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  std::unique_ptr<GaugeEntry>& e = gauges_[name];
  if (e == nullptr) {
    e = std::make_unique<GaugeEntry>();
    e->help = help;
  }
  return &e->gauge;
}

std::string MetricsRegistry::TextSnapshot() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, e] : counters_) {
    if (!e->help.empty()) os << "# HELP " << name << " " << e->help << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << e->counter.value() << "\n";
  }
  for (const auto& [name, e] : gauges_) {
    if (!e->help.empty()) os << "# HELP " << name << " " << e->help << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << e->gauge.value() << "\n";
  }
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, e] : counters_) {
    e->counter.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, e] : gauges_) {
    e->gauge.value_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace oodb
