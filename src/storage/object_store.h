// The simulated object store: objects placed densely on pages (clustered by
// type in creation order, as the paper assumes), named sets, type extents,
// and an LRU buffer pool over a seek-aware disk model. Reads are charged to
// the simulated clock so executed plans can be compared with the
// optimizer's anticipated costs.
#ifndef OODB_STORAGE_OBJECT_STORE_H_
#define OODB_STORAGE_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/fault.h"
#include "src/storage/index.h"
#include "src/storage/object.h"

namespace oodb {

/// A dense-by-OID typed projection of one scalar field of one type — the
/// columnar side of the store that vectorized execution gathers from.
/// objects_ is an array of structs whose Values live in per-object heap
/// blocks, so a per-batch field gather pays two dependent pointer chases per
/// row; this projection pays them once per field, at first use, and every
/// later gather is a single indexed load into a contiguous typed vector.
/// Built lazily, cached, and invalidated by population writes. Carries no
/// simulation accounting: scans still charge their reads through
/// Read/ReadMany; the projection only replaces the (uncharged) in-memory
/// Value loads.
struct ColumnProjection {
  /// Exactly one of these is populated, both indexed by Oid over the whole
  /// store (entries for OIDs outside the projected type are zero).
  std::vector<int64_t> ints;  ///< kInt and kRef fields (refs as OIDs)
  std::vector<double> reals;  ///< kDouble fields
  bool is_real = false;
  /// True when every object of the projected type stores a value of the
  /// field's declared kind — the datagen invariant. Kernels require it; a
  /// population with nulls or kind drift keeps the per-row fallback.
  bool homogeneous = true;
};

struct StoreOptions {
  CostModelOptions timing;
  /// Buffer pool capacity in pages (default ~4 MB at 4 KiB pages).
  int64_t buffer_pages = 1024;
  /// Deterministic fault injection on charged reads (inert by default).
  FaultPolicy faults;
};

/// The object store.
class ObjectStore {
 public:
  explicit ObjectStore(const Catalog* catalog, StoreOptions options = {});

  const Catalog& catalog() const { return *catalog_; }

  // --- population (no I/O charged) ---

  /// Creates an object of `type`, placing it on the type's current page.
  Oid Create(TypeId type);
  void SetValue(Oid oid, FieldId field, Value v);
  void SetRef(Oid oid, FieldId field, Oid target);
  void AddToRefSet(Oid oid, FieldId field, Oid target);
  /// Adds `oid` to named set `set_name` (must exist in the catalog).
  Status AddToSet(const std::string& set_name, Oid oid);

  /// Builds every index registered in the catalog from the stored data.
  Status BuildIndexes();

  // --- reads (charged to the simulated clock unless charge_io = false) ---

  /// Fetches an object, charging a buffer-pool access of its page. Fails
  /// with kInvalidArgument on a dangling/out-of-range OID and with
  /// kStorageFault when the fault policy trips on a charged read (uncharged
  /// reads bypass the storage path and cannot fault).
  ///
  /// Thread safety (audited for Exchange workers): population (Create /
  /// SetValue / AddToSet / BuildIndexes) must complete before execution
  /// starts; during execution `objects_`, `object_page_`, `sets_`,
  /// `extents_`, and `indexes_` are immutable, so concurrent Read()s only
  /// share the fault injector, the buffer pool, and the disk model — each
  /// internally synchronized with atomic statistics. Returned ObjectData
  /// pointers are stable (no eviction of object memory; the buffer pool
  /// only simulates page residency).
  Result<const ObjectData*> Read(Oid oid, bool charge_io = true);

  /// Batched read of `n` OIDs into `out[0..n)` — the vectorized scan path.
  /// Objects are clustered by type in creation order, so a scan batch
  /// touches long runs of the same page; this charges ONE buffer-pool
  /// access per such run (a page fetch materializes every object on the
  /// page) instead of one per object, taking the pool mutex once per run.
  /// Page-fault sequence — and therefore misses, simulated I/O time, and
  /// pages_read — is identical to n individual Read() calls; only the hit
  /// counter reflects run-granular accesses. When a fault policy is active
  /// the loop degrades to exactly n individual charged reads so the
  /// injector's every-Nth-access and per-OID semantics stay bit-identical
  /// to the tuple-at-a-time era. Thread-safe (same audit as Read).
  Status ReadMany(const Oid* oids, size_t n, const ObjectData** out);

  /// Const access without any simulation accounting (statistics, tests).
  /// Bounds-checked: a dangling OID is kInvalidArgument, never UB.
  Result<const ObjectData*> Peek(Oid oid) const {
    if (!Exists(oid)) {
      return Status::InvalidArgument("peek of invalid oid " +
                                     std::to_string(oid));
    }
    return &objects_[oid];
  }

  PageId PageOf(Oid oid) const;
  /// kInvalidType for a dangling OID.
  TypeId TypeOf(Oid oid) const {
    return Exists(oid) ? objects_[oid].type : kInvalidType;
  }
  bool Exists(Oid oid) const {
    return oid >= 0 && oid < static_cast<Oid>(objects_.size());
  }
  int64_t num_objects() const { return static_cast<Oid>(objects_.size()); }

  /// Members of a collection in storage (page) order.
  Result<const std::vector<Oid>*> CollectionMembers(const CollectionId& id) const;

  /// The dense typed projection of `field` of `type`, built on first use
  /// and cached; null when the field is not projectable (string, ref-set,
  /// or out of range). The returned pointer and its vectors are stable
  /// until the next population write. Thread-safe: Exchange workers race
  /// only on the first use of a column; the build is serialized under a
  /// mutex and later reads see an immutable projection.
  const ColumnProjection* Projection(TypeId type, FieldId field);

  Result<const StoredIndex*> FindIndex(const std::string& name) const;

  // --- simulation accounting ---
  SimClock& clock() { return clock_; }
  DiskModel& disk() { return disk_; }
  BufferPool& buffer() { return buffer_; }
  const CostModelOptions& timing() const { return options_.timing; }

  /// Clears simulated clock, disk stats, buffer contents, and fault-
  /// injector state (cold start; a seeded fault policy replays identically).
  void ResetSimulation();

  /// Replaces the fault policy at runtime (ops/testing hook). The injector
  /// restarts from the new policy's seed.
  void SetFaultPolicy(FaultPolicy policy);
  const FaultPolicy& fault_policy() const { return options_.faults; }

 private:
  struct TypePlacement {
    PageId first_page = kInvalidPage;
    PageId current_page = kInvalidPage;
    int64_t bytes_on_current = 0;
  };

  const Catalog* catalog_;
  StoreOptions options_;
  SimClock clock_;
  DiskModel disk_;
  FaultInjector faults_;
  BufferPool buffer_;

  std::vector<ObjectData> objects_;
  std::vector<PageId> object_page_;
  std::vector<TypePlacement> placement_;  // by type
  PageId next_page_ = 0;

  std::unordered_map<std::string, std::vector<Oid>> sets_;
  std::vector<std::vector<Oid>> extents_;  // by type
  std::vector<StoredIndex> indexes_;

  /// Lazily built column projections, keyed by (type, field). Population
  /// writes clear the cache (projections are rebuilt on next use).
  Mutex columns_mu_{lock_rank::kStoreColumns};
  std::map<std::pair<TypeId, FieldId>, std::unique_ptr<ColumnProjection>>
      columns_ GUARDED_BY(columns_mu_);

  void InvalidateColumns();
};

}  // namespace oodb

#endif  // OODB_STORAGE_OBJECT_STORE_H_
