#include "src/algebra/binding.h"

namespace oodb {

std::vector<BindingId> BindingSet::ToVector() const {
  std::vector<BindingId> out;
  uint64_t bits = bits_;
  while (bits != 0) {
    int b = __builtin_ctzll(bits);
    out.push_back(b);
    bits &= bits - 1;
  }
  return out;
}

BindingId BindingTable::Add(BindingDef def) {
  def.id = static_cast<BindingId>(defs_.size());
  defs_.push_back(std::move(def));
  return defs_.back().id;
}

BindingId BindingTable::AddGet(std::string name, TypeId type) {
  BindingDef d;
  d.name = std::move(name);
  d.type = type;
  d.origin = BindingOrigin::kGet;
  return Add(std::move(d));
}

BindingId BindingTable::AddMat(std::string name, TypeId type, BindingId parent,
                               FieldId field) {
  BindingDef d;
  d.name = std::move(name);
  d.type = type;
  d.origin = BindingOrigin::kMat;
  d.parent = parent;
  d.via_field = field;
  return Add(std::move(d));
}

BindingId BindingTable::AddUnnest(std::string name, TypeId type,
                                  BindingId parent, FieldId set_field) {
  BindingDef d;
  d.name = std::move(name);
  d.type = type;
  d.origin = BindingOrigin::kUnnest;
  d.parent = parent;
  d.via_field = set_field;
  d.is_ref = true;
  return Add(std::move(d));
}

Result<BindingId> BindingTable::ByName(const std::string& name) const {
  for (const BindingDef& d : defs_) {
    if (d.name == name) return d.id;
  }
  return Status::NotFound("no binding named '" + name + "'");
}

}  // namespace oodb
