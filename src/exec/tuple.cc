#include "src/exec/tuple.h"

namespace oodb {

void Tuple::MergeFrom(TupleRef other) {
  if (slots.size() < other.width) slots.resize(other.width);
  for (size_t i = 0; i < other.width; ++i) {
    if (other.slots[i].present()) slots[i] = other.slots[i];
  }
}

Result<Value> EvalExpr(const ScalarExpr& expr, TupleRef tuple,
                       const QueryContext& ctx) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kAttr: {
      const Slot& s = tuple.slot(expr.binding());
      if (!s.loaded()) {
        return Status::Internal(
            "attribute read on component not present in memory: " +
            ctx.bindings.def(expr.binding()).name);
      }
      return s.obj->value(expr.field());
    }
    case ScalarExpr::Kind::kSelf:
      return Value::Int(tuple.slot(expr.binding()).ref);
    case ScalarExpr::Kind::kConst:
      return expr.value();
    case ScalarExpr::Kind::kCmp: {
      OODB_ASSIGN_OR_RETURN(Value l,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      OODB_ASSIGN_OR_RETURN(Value r,
                            EvalExpr(*expr.children()[1], tuple, ctx));
      if (expr.cmp_op() == CmpOp::kEq) return Value::Int(l == r ? 1 : 0);
      if (expr.cmp_op() == CmpOp::kNe) return Value::Int(l == r ? 0 : 1);
      return Value::Int(EvalCmp(expr.cmp_op(), l.Compare(r)) ? 1 : 0);
    }
    case ScalarExpr::Kind::kAnd: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i == 0) return Value::Int(0);
      }
      return Value::Int(1);
    }
    case ScalarExpr::Kind::kOr: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i != 0) return Value::Int(1);
      }
      return Value::Int(0);
    }
    case ScalarExpr::Kind::kNot: {
      OODB_ASSIGN_OR_RETURN(Value v,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      return Value::Int(v.i == 0 ? 1 : 0);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const ScalarExprPtr& pred, TupleRef tuple,
                           const QueryContext& ctx) {
  if (!pred) return true;
  OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, tuple, ctx));
  return v.i != 0;
}

FilterProgram FilterProgram::Analyze(const ScalarExprPtr& pred) {
  FilterProgram prog;
  if (!pred) return prog;
  std::vector<ScalarExprPtr> conjuncts = ScalarExpr::SplitConjuncts(pred);
  prog.steps_.reserve(conjuncts.size());
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() != ScalarExpr::Kind::kCmp) return prog;
    const ScalarExpr& l = *c->children()[0];
    const ScalarExpr& r = *c->children()[1];
    CmpStep step;
    if (l.kind() == ScalarExpr::Kind::kAttr &&
        r.kind() == ScalarExpr::Kind::kConst) {
      step = {l.binding(), l.field(), c->cmp_op(), &r.value()};
    } else if (l.kind() == ScalarExpr::Kind::kConst &&
               r.kind() == ScalarExpr::Kind::kAttr) {
      step = {r.binding(), r.field(), ReverseCmp(c->cmp_op()), &l.value()};
    } else {
      return prog;  // unspecializable conjunct; specialized_ stays false
    }
    prog.steps_.push_back(step);
  }
  prog.specialized_ = true;
  return prog;
}

bool FilterProgram::StepPass(const CmpStep& step, const Value& l) {
  const Value& r = *step.constant;
  if (l.kind == Value::Kind::kInt && r.kind == Value::Kind::kInt) {
    // The common case — integer field vs integer literal — compares
    // without touching Value dispatch at all.
    return EvalCmp(step.op, l.i < r.i ? -1 : (l.i == r.i ? 0 : 1));
  }
  if (step.op == CmpOp::kEq) return l == r;
  if (step.op == CmpOp::kNe) return !(l == r);
  return EvalCmp(step.op, l.Compare(r));
}

bool FilterProgram::SingleBinding(BindingId b) const {
  for (const CmpStep& step : steps_) {
    if (step.binding != b) return false;
  }
  return true;
}

bool FilterProgram::EvalSteps(const ObjectData& obj) const {
  for (const CmpStep& step : steps_) {
    if (!StepPass(step, obj.value(step.field))) return false;
  }
  return true;
}

Result<bool> FilterProgram::Eval(TupleRef row, const QueryContext& ctx) const {
  for (const CmpStep& step : steps_) {
    const Slot& s = row.slot(step.binding);
    if (!s.loaded()) {
      return Status::Internal(
          "attribute read on component not present in memory: " +
          ctx.bindings.def(step.binding).name);
    }
    if (!StepPass(step, s.obj->value(step.field))) return false;
  }
  return true;
}

Result<size_t> FilterProgram::EvalBatch(TupleBatch* batch, size_t n,
                                        const QueryContext& ctx) const {
  const CmpStep* steps = steps_.data();
  size_t num_steps = steps_.size();
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    TupleRef row = batch->ref(i);
    bool pass = true;
    for (size_t s = 0; s < num_steps; ++s) {
      const Slot& slot = row.slot(steps[s].binding);
      if (!slot.loaded()) {
        return Status::Internal(
            "attribute read on component not present in memory: " +
            ctx.bindings.def(steps[s].binding).name);
      }
      if (!StepPass(steps[s], slot.obj->value(steps[s].field))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (i != kept) batch->CopyRow(kept, i);
    ++kept;
  }
  batch->Truncate(kept);
  return kept;
}

}  // namespace oodb
