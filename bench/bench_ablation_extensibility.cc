// E15 — extensibility ablation: the sort-order physical property, its Sort
// enforcer, and the MergeJoin algorithm are added to the framework exactly
// the way the paper's design promises new properties/algorithms can be
// (§3: the optimizer "should be extensible enough to incorporate new
// physical properties and their enforcers"). This bench shows the search
// engine picking them up with no other changes.
#include "bench/bench_util.h"

using namespace oodb;

namespace {

constexpr const char* kValueJoin =
    "SELECT e.name FROM Employee e IN Employees, Country n IN Country "
    "WHERE e.name == n.name;";

double OptimizeText(const PaperDb& db, const char* text, OptimizerOptions opts,
                    bool print) {
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  Optimizer opt(&db.catalog, std::move(opts));
  auto r = opt.Optimize(**logical, &ctx);
  if (!r.ok()) {
    std::printf("  (no plan: %s)\n", r.status().ToString().c_str());
    return -1;
  }
  if (print) std::printf("%s", PrintPlan(*r->plan, ctx, true).c_str());
  return r->cost.total();
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Value-based join (employee.name == country.name)");
  std::printf("%s\n", kValueJoin);

  bench::Header("Baseline configuration (hash join)");
  double hash_cost = OptimizeText(db, kValueJoin, {}, true);
  std::printf("anticipated cost %.1f s\n", hash_cost);

  bench::Header("Merge join + Sort enforcer as the only join implementation");
  {
    OptimizerOptions opts;
    opts.enable_merge_join = true;
    opts.disabled_rules = {kImplHybridHashJoin, kImplPointerJoin};
    double cost = OptimizeText(db, kValueJoin, opts, true);
    std::printf("anticipated cost %.1f s — the Sort enforcer supplies the "
                "sort-order property both inputs require\n",
                cost);
  }

  bench::Header("Both available: cost-based choice");
  {
    OptimizerOptions opts;
    opts.enable_merge_join = true;
    double cost = OptimizeText(db, kValueJoin, opts, true);
    std::printf("anticipated cost %.1f s (never worse than hash-only %.1f s)\n",
                cost, hash_cost);
  }

  bench::Header("ORDER BY: the sort-order property at the plan root");
  {
    PaperDb sdb = MakePaperCatalog();
    auto explain = [&](const char* text) {
      QueryContext ctx;
      ctx.catalog = &sdb.catalog;
      SortSpec order;
      auto logical = ParseAndSimplify(text, &ctx, &order);
      PhysProps required;
      required.sort = order;
      Optimizer opt(&sdb.catalog);
      auto r = opt.Optimize(**logical, &ctx, required);
      std::printf("%s\n%s", text, PrintPlan(*r->plan, ctx).c_str());
    };
    explain("SELECT e.name FROM Employee e IN Employees "
            "WHERE e.age >= 40 ORDER BY e.salary;");
    std::printf("(Sort enforcer supplies the order.)\n\n");
    explain("SELECT t.name FROM Task t IN Tasks "
            "WHERE t.time >= 595 ORDER BY t.time;");
    std::printf("(The key-ordered index scan delivers the order for free — "
                "no Sort operator.)\n");
  }

  bench::Header("Extension impact on the paper's four queries");
  std::printf("%-8s %14s %16s %16s\n", "query", "baseline [s]",
              "merge join [s]", "warm start [s]");
  for (int n = 1; n <= 4; ++n) {
    QueryContext c1, c2, c3;
    OptimizedQuery base = bench::Optimize(n, db, &c1);
    OptimizerOptions mj;
    mj.enable_merge_join = true;
    OptimizedQuery merge = bench::Optimize(n, db, &c2, mj);
    OptimizerOptions ws;
    ws.enable_warm_start_assembly = true;
    OptimizedQuery warm = bench::Optimize(n, db, &c3, ws);
    std::printf("%-8d %14.2f %16.2f %16.2f\n", n, base.cost.total(),
                merge.cost.total(), warm.cost.total());
  }
  std::printf("(Adding alternatives can only improve or preserve plan cost "
              "— exhaustive, cost-based search.)\n");
  return 0;
}
