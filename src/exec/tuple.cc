#include "src/exec/tuple.h"

#include "src/storage/object_store.h"

namespace oodb {

void Tuple::MergeFrom(TupleRef other) {
  if (slots.size() < other.width) slots.resize(other.width);
  for (size_t i = 0; i < other.width; ++i) {
    if (other.slots[i].present()) slots[i] = other.slots[i];
  }
}

TupleBatch::ColumnCache* TupleBatch::FindOrAddColumn(BindingId binding,
                                                     FieldId field,
                                                     bool* fresh) {
  for (std::unique_ptr<ColumnCache>& c : columns_) {
    if (c->binding == binding && c->field == field) {
      *fresh = c->epoch != epoch_;
      c->epoch = epoch_;
      return c.get();
    }
  }
  columns_.push_back(std::make_unique<ColumnCache>());
  ColumnCache* c = columns_.back().get();
  c->binding = binding;
  c->field = field;
  c->epoch = epoch_;
  *fresh = true;
  return c;
}

const ColumnView* TupleBatch::ExtractFieldColumn(BindingId binding,
                                                 FieldId field,
                                                 const ColumnProjection* proj) {
  bool fresh = false;
  ColumnCache* c = FindOrAddColumn(binding, field, &fresh);
  if (!fresh) return c->usable ? &c->view : nullptr;
  const size_t n = size_;
  const size_t w = static_cast<size_t>(width_);
  const Slot* base = slots_.data() + binding;
  c->bits.assign((n + 63) / 64, 0);
  c->usable = false;
  bool all_loaded = true;

  if (proj != nullptr && proj->homogeneous) {
    // Store-projection gather: one indexed load per row, no object chase.
    c->view.is_real = proj->is_real;
    if (proj->is_real) {
      c->reals.resize(n);
      const double* src = proj->reals.data();
      for (size_t i = 0; i < n; ++i) {
        const Slot& s = base[i * w];
        bool ld = s.loaded();
        all_loaded &= ld;
        c->bits[i >> 6] |= static_cast<uint64_t>(ld) << (i & 63);
        c->reals[i] = s.ref >= 0 ? src[s.ref] : 0.0;
      }
      c->view.reals = c->reals.data();
      c->view.ints = nullptr;
    } else {
      c->ints.resize(n);
      const int64_t* src = proj->ints.data();
      for (size_t i = 0; i < n; ++i) {
        const Slot& s = base[i * w];
        bool ld = s.loaded();
        all_loaded &= ld;
        c->bits[i >> 6] |= static_cast<uint64_t>(ld) << (i & 63);
        c->ints[i] = s.ref >= 0 ? src[s.ref] : 0;
      }
      c->view.ints = c->ints.data();
      c->view.reals = nullptr;
    }
  } else {
    // Slot-arena gather: chase each loaded row's object and infer the
    // column's kind from the stored values. A kind mix (or a non-numeric
    // column) cannot be typed — remember that for this epoch.
    Value::Kind kind = Value::Kind::kNull;
    for (size_t i = 0; i < n; ++i) {
      const Slot& s = base[i * w];
      if (!s.loaded()) continue;
      kind = s.obj->value(field).kind;
      break;
    }
    if (kind != Value::Kind::kInt && kind != Value::Kind::kDouble) {
      return nullptr;
    }
    bool is_real = kind == Value::Kind::kDouble;
    c->view.is_real = is_real;
    if (is_real) {
      c->reals.resize(n);
    } else {
      c->ints.resize(n);
    }
    for (size_t i = 0; i < n; ++i) {
      const Slot& s = base[i * w];
      bool ld = s.loaded();
      all_loaded &= ld;
      c->bits[i >> 6] |= static_cast<uint64_t>(ld) << (i & 63);
      if (!ld) {
        if (is_real) {
          c->reals[i] = 0.0;
        } else {
          c->ints[i] = 0;
        }
        continue;
      }
      const Value& v = s.obj->value(field);
      if (v.kind != kind) return nullptr;  // mixed kinds: untypeable
      if (is_real) {
        c->reals[i] = v.d;
      } else {
        c->ints[i] = v.i;
      }
    }
    c->view.ints = is_real ? nullptr : c->ints.data();
    c->view.reals = is_real ? c->reals.data() : nullptr;
  }
  c->view.all_loaded = all_loaded;
  c->view.loaded = c->bits.data();
  c->usable = true;
  return &c->view;
}

const ColumnView* TupleBatch::ExtractOidColumn(BindingId binding) {
  bool fresh = false;
  ColumnCache* c = FindOrAddColumn(binding, kInvalidField, &fresh);
  if (!fresh) return c->usable ? &c->view : nullptr;
  const size_t n = size_;
  const size_t w = static_cast<size_t>(width_);
  const Slot* base = slots_.data() + binding;
  c->ints.resize(n);
  c->bits.assign((n + 63) / 64, 0);
  bool all_present = true;
  for (size_t i = 0; i < n; ++i) {
    const Slot& s = base[i * w];
    bool present = s.present();
    all_present &= present;
    c->bits[i >> 6] |= static_cast<uint64_t>(present) << (i & 63);
    c->ints[i] = s.ref;
  }
  c->view.ints = c->ints.data();
  c->view.reals = nullptr;
  c->view.is_real = false;
  c->view.all_loaded = all_present;
  c->view.loaded = c->bits.data();
  c->usable = true;
  return &c->view;
}

Result<Value> EvalExpr(const ScalarExpr& expr, TupleRef tuple,
                       const QueryContext& ctx) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kAttr: {
      const Slot& s = tuple.slot(expr.binding());
      if (!s.loaded()) {
        return Status::Internal(
            "attribute read on component not present in memory: " +
            ctx.bindings.def(expr.binding()).name);
      }
      return s.obj->value(expr.field());
    }
    case ScalarExpr::Kind::kSelf:
      return Value::Int(tuple.slot(expr.binding()).ref);
    case ScalarExpr::Kind::kConst:
      return expr.value();
    case ScalarExpr::Kind::kCmp: {
      OODB_ASSIGN_OR_RETURN(Value l,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      OODB_ASSIGN_OR_RETURN(Value r,
                            EvalExpr(*expr.children()[1], tuple, ctx));
      if (expr.cmp_op() == CmpOp::kEq) return Value::Int(l == r ? 1 : 0);
      if (expr.cmp_op() == CmpOp::kNe) return Value::Int(l == r ? 0 : 1);
      return Value::Int(EvalCmp(expr.cmp_op(), l.Compare(r)) ? 1 : 0);
    }
    case ScalarExpr::Kind::kAnd: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i == 0) return Value::Int(0);
      }
      return Value::Int(1);
    }
    case ScalarExpr::Kind::kOr: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i != 0) return Value::Int(1);
      }
      return Value::Int(0);
    }
    case ScalarExpr::Kind::kNot: {
      OODB_ASSIGN_OR_RETURN(Value v,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      return Value::Int(v.i == 0 ? 1 : 0);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const ScalarExprPtr& pred, TupleRef tuple,
                           const QueryContext& ctx) {
  if (!pred) return true;
  OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, tuple, ctx));
  return v.i != 0;
}

FilterProgram FilterProgram::Analyze(const ScalarExprPtr& pred) {
  FilterProgram prog;
  if (!pred) return prog;
  std::vector<ScalarExprPtr> conjuncts = ScalarExpr::SplitConjuncts(pred);
  prog.steps_.reserve(conjuncts.size());
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() != ScalarExpr::Kind::kCmp) return prog;
    const ScalarExpr& l = *c->children()[0];
    const ScalarExpr& r = *c->children()[1];
    CmpStep step;
    if (l.kind() == ScalarExpr::Kind::kAttr &&
        r.kind() == ScalarExpr::Kind::kConst) {
      step = {l.binding(), l.field(), c->cmp_op(), &r.value(), false};
    } else if (l.kind() == ScalarExpr::Kind::kConst &&
               r.kind() == ScalarExpr::Kind::kAttr) {
      step = {r.binding(), r.field(), ReverseCmp(c->cmp_op()), &l.value(),
              true};
    } else {
      return prog;  // unspecializable conjunct; specialized_ stays false
    }
    prog.steps_.push_back(step);
  }
  prog.specialized_ = true;
  return prog;
}

ScalarExprPtr FilterProgram::ReconstructedPredicate() const {
  if (!specialized_) return nullptr;
  std::vector<ScalarExprPtr> conjuncts;
  conjuncts.reserve(steps_.size());
  for (const CmpStep& step : steps_) {
    ScalarExprPtr attr = ScalarExpr::Attr(step.binding, step.field);
    ScalarExprPtr constant = ScalarExpr::Const(*step.constant);
    conjuncts.push_back(
        step.reversed
            ? ScalarExpr::Cmp(ReverseCmp(step.op), std::move(constant),
                              std::move(attr))
            : ScalarExpr::Cmp(step.op, std::move(attr), std::move(constant)));
  }
  return ScalarExpr::CombineConjuncts(std::move(conjuncts));
}

bool FilterProgram::StepPass(const CmpStep& step, const Value& l) {
  const Value& r = *step.constant;
  if (l.kind == Value::Kind::kInt && r.kind == Value::Kind::kInt) {
    // The common case — integer field vs integer literal — compares
    // without touching Value dispatch at all.
    return EvalCmp(step.op, l.i < r.i ? -1 : (l.i == r.i ? 0 : 1));
  }
  if (step.op == CmpOp::kEq) return l == r;
  if (step.op == CmpOp::kNe) return !(l == r);
  return EvalCmp(step.op, l.Compare(r));
}

bool FilterProgram::SingleBinding(BindingId b) const {
  for (const CmpStep& step : steps_) {
    if (step.binding != b) return false;
  }
  return true;
}

bool FilterProgram::EvalSteps(const ObjectData& obj) const {
  for (const CmpStep& step : steps_) {
    if (!StepPass(step, obj.value(step.field))) return false;
  }
  return true;
}

Result<bool> FilterProgram::Eval(TupleRef row, const QueryContext& ctx) const {
  for (const CmpStep& step : steps_) {
    const Slot& s = row.slot(step.binding);
    if (!s.loaded()) {
      return Status::Internal(
          "attribute read on component not present in memory: " +
          ctx.bindings.def(step.binding).name);
    }
    if (!StepPass(step, s.obj->value(step.field))) return false;
  }
  return true;
}

Result<size_t> FilterProgram::EvalBatch(TupleBatch* batch, size_t n,
                                        const QueryContext& ctx) const {
  const CmpStep* steps = steps_.data();
  size_t num_steps = steps_.size();
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    TupleRef row = batch->ref(i);
    bool pass = true;
    for (size_t s = 0; s < num_steps; ++s) {
      const Slot& slot = row.slot(steps[s].binding);
      if (!slot.loaded()) {
        return Status::Internal(
            "attribute read on component not present in memory: " +
            ctx.bindings.def(steps[s].binding).name);
      }
      if (!StepPass(steps[s], slot.obj->value(steps[s].field))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (i != kept) batch->CopyRow(kept, i);
    ++kept;
  }
  batch->Truncate(kept);
  return kept;
}

// ---------------------------------------------------------------------------
// Columnar kernels
// ---------------------------------------------------------------------------
namespace {

/// The comparison a step performs when lowered onto a typed column,
/// reproducing StepPass/Value::Compare semantics exactly:
///   - int column vs int constant: pure int64 three-way (kI64);
///   - any other numeric pairing: both sides promoted to double (kF64),
///     which is what Value::Compare and cross-kind operator== do;
///   - non-numeric constant (string/null): Eq can never hold against a
///     numeric column (kNone), Ne always holds (kAll), and ordering
///     compares against the constant's numeric view (its `d`, 0.0).
struct StepKernel {
  enum class Mode { kI64, kF64, kNone, kAll };
  Mode mode = Mode::kF64;
  CmpOp op = CmpOp::kEq;
  int64_t ci = 0;
  double cd = 0.0;
};

StepKernel MakeKernel(bool col_is_real, CmpOp op, const Value& c) {
  StepKernel k;
  k.op = op;
  if (!col_is_real && c.kind == Value::Kind::kInt) {
    k.mode = StepKernel::Mode::kI64;
    k.ci = c.i;
    return k;
  }
  if (c.kind == Value::Kind::kInt || c.kind == Value::Kind::kDouble) {
    k.mode = StepKernel::Mode::kF64;
    k.cd = c.kind == Value::Kind::kInt ? static_cast<double>(c.i) : c.d;
    return k;
  }
  if (op == CmpOp::kEq) {
    k.mode = StepKernel::Mode::kNone;
  } else if (op == CmpOp::kNe) {
    k.mode = StepKernel::Mode::kAll;
  } else {
    k.mode = StepKernel::Mode::kF64;
    k.cd = c.d;
  }
  return k;
}

/// One branchless compare-and-select pass: writes to sel_out the indices
/// (drawn from sel_in, or the identity [0, n) when sel_in is null) whose
/// value passes `cmp`. The index is stored unconditionally and the output
/// cursor advances by the predicate, so the loop body carries no
/// data-dependent branch and auto-vectorizes.
template <typename Get, typename Cmp>
size_t SelectPass(size_t n, const uint16_t* sel_in, uint16_t* sel_out,
                  const Get& get, const Cmp& cmp) {
  size_t out = 0;
  if (sel_in == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      sel_out[out] = static_cast<uint16_t>(i);
      out += cmp(get(i)) ? 1 : 0;
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      uint16_t i = sel_in[k];
      sel_out[out] = i;
      out += cmp(get(i)) ? 1 : 0;
    }
  }
  return out;
}

template <typename T, typename Get>
size_t SelectCmp(CmpOp op, T c, size_t n, const uint16_t* sel_in,
                 uint16_t* sel_out, const Get& get) {
  switch (op) {
    case CmpOp::kEq:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v == c; });
    case CmpOp::kNe:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v != c; });
    case CmpOp::kLt:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v < c; });
    case CmpOp::kLe:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v <= c; });
    case CmpOp::kGt:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v > c; });
    case CmpOp::kGe:
      return SelectPass(n, sel_in, sel_out, get, [c](T v) { return v >= c; });
  }
  return 0;
}

/// Runs one step kernel over `n` candidates. `geti`/`getr` fetch the value
/// at a physical row index from the int/real column respectively (only the
/// one matching the column's type is called).
template <typename GetI, typename GetR>
size_t RunKernel(const StepKernel& k, size_t n, const uint16_t* sel_in,
                 uint16_t* sel_out, const GetI& geti, const GetR& getr) {
  switch (k.mode) {
    case StepKernel::Mode::kNone:
      return 0;
    case StepKernel::Mode::kAll:
      if (sel_in == nullptr) {
        for (size_t i = 0; i < n; ++i) sel_out[i] = static_cast<uint16_t>(i);
      }  // else: in-place, already there
      return n;
    case StepKernel::Mode::kI64:
      return SelectCmp<int64_t>(k.op, k.ci, n, sel_in, sel_out, geti);
    case StepKernel::Mode::kF64:
      return SelectCmp<double>(k.op, k.cd, n, sel_in, sel_out, getr);
  }
  return 0;
}

}  // namespace

std::vector<const ColumnProjection*> FilterProgram::StepProjections(
    ObjectStore* store, const QueryContext& ctx) const {
  std::vector<const ColumnProjection*> projs;
  if (!specialized_) return projs;
  projs.resize(steps_.size(), nullptr);
  for (size_t s = 0; s < steps_.size(); ++s) {
    TypeId type = ctx.bindings.def(steps_[s].binding).type;
    projs[s] = store->Projection(type, steps_[s].field);
  }
  return projs;
}

bool FilterProgram::Vectorizable(
    const std::vector<const ColumnProjection*>& projs) const {
  if (!specialized_ || projs.size() != steps_.size()) return false;
  for (const ColumnProjection* p : projs) {
    if (p == nullptr || !p->homogeneous) return false;
  }
  return true;
}

size_t FilterProgram::ScanSelect(
    const Oid* oids, size_t n,
    const std::vector<const ColumnProjection*>& projs, uint16_t* sel) const {
  size_t cnt = n;
  const uint16_t* in = nullptr;
  for (size_t s = 0; s < steps_.size() && cnt > 0; ++s) {
    const ColumnProjection& p = *projs[s];
    StepKernel kern = MakeKernel(p.is_real, steps_[s].op, *steps_[s].constant);
    const int64_t* pi = p.ints.data();
    const double* pd = p.reals.data();
    // Values come straight out of the dense by-OID projection — the gather
    // is part of the kernel loop, so rejected rows cost one load and one
    // compare and are never materialized into slots.
    cnt = RunKernel(
        kern, cnt, in, sel,
        [pi, oids](size_t i) { return pi[oids[i]]; },
        [pd, oids](size_t i) { return pd[oids[i]]; });
    in = sel;
  }
  return cnt;
}

Result<bool> FilterProgram::EvalBatchColumnar(
    TupleBatch* batch, const std::vector<const ColumnProjection*>& projs,
    const QueryContext& ctx) const {
  if (!specialized_) return false;
  const size_t num_steps = steps_.size();
  // Extract every referenced column before touching the selection, so a
  // fallback (some column untypeable) leaves the batch exactly as it was.
  const ColumnView* cols[16];
  std::vector<const ColumnView*> cols_big;
  const ColumnView** colp = cols;
  if (num_steps > 16) {
    cols_big.resize(num_steps);
    colp = cols_big.data();
  }
  for (size_t s = 0; s < num_steps; ++s) {
    const ColumnProjection* proj = s < projs.size() ? projs[s] : nullptr;
    colp[s] =
        batch->ExtractFieldColumn(steps_[s].binding, steps_[s].field, proj);
    if (colp[s] == nullptr) return false;
  }
  const bool had_sel = batch->has_selection();
  uint16_t* sel = batch->MutableSelection();
  size_t cnt = had_sel ? batch->active() : batch->size();
  for (size_t s = 0; s < num_steps && cnt > 0; ++s) {
    const ColumnView& col = *colp[s];
    const uint16_t* in = (s == 0 && !had_sel) ? nullptr : sel;
    if (!col.all_loaded) {
      // Mirror the row loop's error discipline: only rows still alive when
      // this conjunct runs may trip the present-in-memory check.
      for (size_t k = 0; k < cnt; ++k) {
        size_t i = in == nullptr ? k : in[k];
        if (!col.loaded_at(i)) {
          return Status::Internal(
              "attribute read on component not present in memory: " +
              ctx.bindings.def(steps_[s].binding).name);
        }
      }
    }
    StepKernel kern =
        MakeKernel(col.is_real, steps_[s].op, *steps_[s].constant);
    const int64_t* ints = col.ints;
    const double* reals = col.reals;
    cnt = RunKernel(
        kern, cnt, in, sel, [ints](size_t i) { return ints[i]; },
        [reals](size_t i) { return reals[i]; });
  }
  batch->SetSelection(cnt);
  return true;
}

}  // namespace oodb
