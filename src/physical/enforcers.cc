#include "src/physical/enforcers.h"

#include <algorithm>

#include "src/physical/algorithms.h"

namespace oodb {

std::vector<MatStep> PlanAssemblySteps(BindingSet missing,
                                       const QueryContext& ctx,
                                       BindingSet* below) {
  // Order steps so that a step's source, if itself being assembled, comes
  // first; sources not being assembled are required of the input.
  std::vector<BindingId> ids = missing.ToVector();
  auto depth = [&](BindingId b) {
    int d = 0;
    while (ctx.bindings.def(b).parent != kInvalidBinding) {
      b = ctx.bindings.def(b).parent;
      ++d;
    }
    return d;
  };
  std::sort(ids.begin(), ids.end(),
            [&](BindingId a, BindingId b) { return depth(a) < depth(b); });
  std::vector<MatStep> steps;
  BindingSet need_below;
  for (BindingId b : ids) {
    const BindingDef& def = ctx.bindings.def(b);
    MatStep step;
    step.target = b;
    if (def.origin == BindingOrigin::kMat && def.via_field != kInvalidField) {
      step.source = def.parent;
      step.field = def.via_field;
      if (!missing.Contains(def.parent) && !ctx.bindings.def(def.parent).is_ref) {
        need_below.Add(def.parent);
      }
    } else if (def.origin == BindingOrigin::kMat) {
      step.source = def.parent;  // bare-reference materialization
      step.field = kInvalidField;
    } else {
      // Get/Unnest-origin bindings cannot be assembled from references.
      return {};
    }
    steps.push_back(step);
  }
  if (below != nullptr) *below = need_below;
  return steps;
}

namespace {

/// Assembly as the enforcer of the present-in-memory property.
class AssemblyEnforcer : public Enforcer {
 public:
  const char* name() const override { return kEnforcerAssembly; }

  Status Apply(OptContext& ctx, GroupId group, const PhysProps& required,
               std::vector<EnforcerAlt>* out) const override {
    // Enforce the Mat-derived bindings among the requirements.
    BindingSet enforceable;
    for (BindingId b : required.in_memory.ToVector()) {
      if (ctx.qctx->bindings.def(b).origin == BindingOrigin::kMat) {
        enforceable.Add(b);
      }
    }
    if (enforceable.Empty()) return Status::OK();
    if (required.sort.IsSorted()) return Status::OK();  // assembly reorders

    BindingSet below;
    std::vector<MatStep> steps =
        PlanAssemblySteps(enforceable, *ctx.qctx, &below);
    if (steps.empty()) return Status::OK();

    PhysProps child_req;
    child_req.in_memory =
        required.in_memory.Minus(enforceable).Union(below);
    child_req.in_memory = LoadableBindings(
        child_req.in_memory.Intersect(ctx.memo->group(group).props.scope),
        *ctx.qctx);

    double in_card = ctx.memo->group(group).props.card;
    auto emit = [&](bool warm) {
      EnforcerAlt alt;
      alt.op.kind = PhysOpKind::kAssembly;
      alt.op.mats = steps;
      alt.op.window = ctx.cost_model->opts().assembly_window;
      alt.op.warm_start = warm;
      alt.child_required = child_req;
      alt.delivered = child_req;
      alt.delivered.in_memory = alt.delivered.in_memory.Union(enforceable);
      alt.local_cost =
          AssemblyCost(*ctx.cost_model, *ctx.qctx->catalog, ctx.qctx->bindings,
                       in_card, steps, /*window=*/0, warm);
      out->push_back(std::move(alt));
    };
    emit(false);
    if (ctx.opts->enable_warm_start_assembly) {
      bool any_extent = false;
      for (const MatStep& s : steps) {
        if (ctx.qctx->catalog
                ->TypeCardinality(ctx.qctx->bindings.def(s.target).type)
                .has_value()) {
          any_extent = true;
        }
      }
      if (any_extent) emit(true);
    }
    return Status::OK();
  }
};

/// Sort as the enforcer of the sort-order property (extension).
class SortEnforcer : public Enforcer {
 public:
  const char* name() const override { return kEnforcerSort; }

  Status Apply(OptContext& ctx, GroupId group, const PhysProps& required,
               std::vector<EnforcerAlt>* out) const override {
    if (!required.sort.IsSorted()) return Status::OK();
    // The sort key must be readable in this group's scope.
    if (!ctx.memo->group(group).props.scope.Contains(required.sort.binding)) {
      return Status::OK();
    }
    EnforcerAlt alt;
    alt.op.kind = PhysOpKind::kSort;
    alt.op.sort = required.sort;
    alt.child_required = required;
    alt.child_required.sort = SortSpec{};
    // Sorting on an attribute requires that attribute's binding loaded.
    alt.child_required.in_memory.Add(required.sort.binding);
    alt.child_required.in_memory = LoadableBindings(
        alt.child_required.in_memory.Intersect(
            ctx.memo->group(group).props.scope),
        *ctx.qctx);
    alt.delivered = alt.child_required;
    alt.delivered.sort = required.sort;
    const LogicalProps& props = ctx.memo->group(group).props;
    alt.local_cost = SortCost(*ctx.cost_model, props.card, props.tuple_bytes);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

}  // namespace

std::vector<std::unique_ptr<Enforcer>> MakeDefaultEnforcers() {
  std::vector<std::unique_ptr<Enforcer>> enforcers;
  enforcers.push_back(std::make_unique<AssemblyEnforcer>());
  enforcers.push_back(std::make_unique<SortEnforcer>());
  return enforcers;
}

}  // namespace oodb
