#include <gtest/gtest.h>

#include "src/query/simplify.h"
#include "src/query/builder.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  SimplifyTest() : db_(MakePaperCatalog()) {}

  LogicalExprPtr Simplify(const std::string& text) {
    ctx_ = QueryContext{};
    ctx_.catalog = &db_.catalog;
    auto r = ParseAndSimplify(text, &ctx_);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : nullptr;
  }

  PaperDb db_;
  QueryContext ctx_;
};

TEST_F(SimplifyTest, SingleValuedPathBecomesMatChain) {
  // Paper Figure 2: each path link becomes a Mat.
  LogicalExprPtr q = Simplify(
      "SELECT c FROM City c IN Cities "
      "WHERE c.mayor.name == c.country.president.name");
  ASSERT_NE(q, nullptr);
  std::string printed = PrintLogicalTree(*q, ctx_);
  EXPECT_NE(printed.find("Mat c.mayor"), std::string::npos);
  EXPECT_NE(printed.find("Mat c.country"), std::string::npos);
  EXPECT_NE(printed.find("Mat c.country.president"), std::string::npos);
  EXPECT_NE(printed.find("Get Cities: c"), std::string::npos);
  // "name" instance variables are record fields: no Mat for them.
  EXPECT_EQ(printed.find("Mat c.mayor.name"), std::string::npos);
}

TEST_F(SimplifyTest, SetValuedPathBecomesUnnestPlusMat) {
  // Paper Figure 3.
  LogicalExprPtr q = Simplify(
      "SELECT m FROM Task t IN Tasks, Employee m IN t.team_members");
  ASSERT_NE(q, nullptr);
  std::string printed = PrintLogicalTree(*q, ctx_);
  EXPECT_NE(printed.find("Unnest t.team_members"), std::string::npos);
  EXPECT_NE(printed.find("Mat m_ref: m"), std::string::npos);
}

TEST_F(SimplifyTest, CommonPathSubexpressionsShareBindings) {
  // e.dept appears twice; only one Mat is created.
  LogicalExprPtr q = Simplify(
      "SELECT e.dept.name FROM Employee e IN Employees "
      "WHERE e.dept.floor == 3");
  ASSERT_NE(q, nullptr);
  int mats = 0;
  std::function<void(const LogicalExpr&)> count = [&](const LogicalExpr& n) {
    if (n.op.kind == LogicalOpKind::kMat) ++mats;
    for (const auto& c : n.children) count(*c);
  };
  count(*q);
  EXPECT_EQ(mats, 1);
}

TEST_F(SimplifyTest, MultipleRangesJoinedWithTruePredicate) {
  LogicalExprPtr q = Simplify(
      "SELECT e.name, d.name "
      "FROM Employee e IN Employees, Department d IN Department "
      "WHERE e.dept == d && d.floor == 3");
  ASSERT_NE(q, nullptr);
  bool has_join = false;
  std::function<void(const LogicalExpr&)> walk = [&](const LogicalExpr& n) {
    if (n.op.kind == LogicalOpKind::kJoin) has_join = true;
    for (const auto& c : n.children) walk(*c);
  };
  walk(*q);
  EXPECT_TRUE(has_join);
}

TEST_F(SimplifyTest, RangeOverExtentByTypeName) {
  // "Departments" is not a named set; the extent serves the range.
  LogicalExprPtr q = Simplify("SELECT d.name FROM Department d IN Department");
  ASSERT_NE(q, nullptr);
  std::string printed = PrintLogicalTree(*q, ctx_);
  EXPECT_NE(printed.find("Get extent(Department): d"), std::string::npos);
}

TEST_F(SimplifyTest, ExistsUnnestsIntoPipeline) {
  LogicalExprPtr q = Simplify(
      "SELECT t FROM Task t IN Tasks WHERE t.time == 100 && "
      "EXISTS (SELECT m FROM Employee m IN t.team_members "
      "WHERE m.name == \"Fred\")");
  ASSERT_NE(q, nullptr);
  std::string printed = PrintLogicalTree(*q, ctx_);
  EXPECT_NE(printed.find("Unnest t.team_members"), std::string::npos);
  EXPECT_NE(printed.find("m.name == \"Fred\""), std::string::npos);
  EXPECT_NE(printed.find("t.time == 100"), std::string::npos);
}

TEST_F(SimplifyTest, RefComparisonCompilesToRefEqSelf) {
  LogicalExprPtr q = Simplify(
      "SELECT e FROM Employee e IN Employees, Department d IN Department "
      "WHERE e.dept == d");
  ASSERT_NE(q, nullptr);
  std::string printed = PrintLogicalTree(*q, ctx_);
  EXPECT_NE(printed.find("e.dept == d.self"), std::string::npos);
}

TEST_F(SimplifyTest, ProjectEmitsSelectedExpressions) {
  LogicalExprPtr q = Simplify(
      "SELECT e.name, e.salary FROM Employee e IN Employees");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->op.kind, LogicalOpKind::kProject);
  EXPECT_EQ(q->op.emit.size(), 2u);
}

TEST_F(SimplifyTest, ValidatedAgainstAlgebraRules) {
  for (int n = 1; n <= 4; ++n) {
    QueryContext ctx;
    auto q = BuildPaperQuery(n, db_, &ctx);
    ASSERT_TRUE(q.ok()) << "query " << n << ": " << q.status();
    EXPECT_TRUE(ValidateLogicalTree(**q, ctx).ok());
  }
}

TEST_F(SimplifyTest, BuilderQueriesSimplifyIdentically) {
  QueryContext ctx1;
  ctx1.catalog = &db_.catalog;
  auto parsed = ParseAndSimplify(kQuery2Text, &ctx1);
  ASSERT_TRUE(parsed.ok());

  QueryContext ctx2;
  ctx2.catalog = &db_.catalog;
  ZqlQuery built = QueryBuilder()
                       .Select(zql::Path("c"))
                       .From("City", "c", "Cities")
                       .Where(zql::Eq(zql::Path("c.mayor.name"), zql::Lit("Joe")))
                       .Build();
  auto simplified = SimplifyQuery(built, &ctx2);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_EQ(PrintLogicalTree(**parsed, ctx1),
            PrintLogicalTree(**simplified, ctx2));
}

// --- Error cases ---

TEST_F(SimplifyTest, UnknownCollectionRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(
      ParseAndSimplify("SELECT x FROM Widget x IN Widgets", &ctx).ok());
}

TEST_F(SimplifyTest, TypeMismatchRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  // Cities is a set of City, not Employee.
  EXPECT_FALSE(
      ParseAndSimplify("SELECT e FROM Employee e IN Cities", &ctx).ok());
}

TEST_F(SimplifyTest, DuplicateRangeVariableRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(ParseAndSimplify(
                   "SELECT e FROM Employee e IN Employees, City e IN Cities",
                   &ctx)
                   .ok());
}

TEST_F(SimplifyTest, SetValuedPathAsScalarRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(ParseAndSimplify(
                   "SELECT t FROM Task t IN Tasks WHERE t.team_members == 3",
                   &ctx)
                   .ok());
}

TEST_F(SimplifyTest, DereferencingScalarRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(ParseAndSimplify(
                   "SELECT e FROM Employee e IN Employees "
                   "WHERE e.name.length == 3",
                   &ctx)
                   .ok());
}

TEST_F(SimplifyTest, ExistsInsideOrRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(
      ParseAndSimplify(
          "SELECT t FROM Task t IN Tasks WHERE t.time == 1 || "
          "EXISTS (SELECT m FROM Employee m IN t.team_members)",
          &ctx)
          .ok());
}

TEST_F(SimplifyTest, NoRangesRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  ZqlQuery empty;
  EXPECT_FALSE(SimplifyQuery(empty, &ctx).ok());
}

TEST_F(SimplifyTest, SubtypeRangeOverCapitals) {
  // A City-typed variable may range over the Capitals set (Capital <: City).
  LogicalExprPtr q =
      Simplify("SELECT k.name FROM City k IN Capitals WHERE k.population >= 5");
  ASSERT_NE(q, nullptr);
}

}  // namespace
}  // namespace oodb
