// Programmatic query construction — the "well-integrated with C++" face of
// ZQL[C++]: build the same user-level AST the text parser produces, without
// string parsing.
//
//   ZqlQuery q = QueryBuilder()
//       .Select(zql::Path("e.name"))
//       .From("Employee", "e", "Employees")
//       .Where(zql::Eq(zql::Path("e.dept.plant.location"), zql::Lit("Dallas")))
//       .Build();
#ifndef OODB_QUERY_BUILDER_H_
#define OODB_QUERY_BUILDER_H_

#include "src/query/zql_ast.h"

namespace oodb {
namespace zql {

/// Dotted path: "e.dept.name".
ZqlExprPtr Path(const std::string& dotted);
ZqlExprPtr Lit(int64_t v);
ZqlExprPtr Lit(double v);
ZqlExprPtr Lit(const char* v);
ZqlExprPtr Lit(std::string v);
ZqlExprPtr Cmp(CmpOp op, ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Eq(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Ne(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Lt(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Le(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Gt(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr Ge(ZqlExprPtr l, ZqlExprPtr r);
ZqlExprPtr And(std::vector<ZqlExprPtr> parts);
ZqlExprPtr Or(std::vector<ZqlExprPtr> parts);
ZqlExprPtr Not(ZqlExprPtr inner);
ZqlExprPtr Exists(ZqlQueryPtr subquery);

}  // namespace zql

/// Fluent builder for ZqlQuery.
class QueryBuilder {
 public:
  /// Adds an output expression.
  QueryBuilder& Select(ZqlExprPtr e);
  /// Range over a named set (or a type extent when `collection` is a type
  /// name with no matching set).
  QueryBuilder& From(std::string type_name, std::string var,
                     std::string collection);
  /// Range over a set-valued path: FromPath("Employee", "m", "t.team_members").
  QueryBuilder& FromPath(std::string type_name, std::string var,
                         const std::string& dotted_path);
  /// Sets (or ANDs onto) the WHERE clause.
  QueryBuilder& Where(ZqlExprPtr e);
  /// Appends a result-order key: a (dotted) path, ascending by default.
  /// Call repeatedly for a multi-key order (major key first).
  QueryBuilder& OrderBy(const std::string& dotted_path, bool desc = false);
  /// Keeps only the first `n` rows in ORDER BY order (n >= 1).
  QueryBuilder& Limit(int64_t n);

  ZqlQuery Build() const { return query_; }
  ZqlQueryPtr BuildPtr() const { return std::make_shared<ZqlQuery>(query_); }

 private:
  ZqlQuery query_;
};

}  // namespace oodb

#endif  // OODB_QUERY_BUILDER_H_
