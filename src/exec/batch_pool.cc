#include "src/exec/batch_pool.h"

#include <utility>

namespace oodb {

BatchPool& BatchPool::Instance() {
  static BatchPool pool;
  return pool;
}

TupleBatch BatchPool::Take(int width, size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Newest-first: the most recently returned arena is the most likely to
    // match the running query's shape (and to still be cache-warm).
    for (size_t i = pool_.size(); i > 0; --i) {
      TupleBatch& b = pool_[i - 1];
      if (b.width() == width && b.capacity() == capacity) {
        TupleBatch out = std::move(b);
        pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(i - 1));
        out.Clear();
        return out;
      }
    }
  }
  return TupleBatch(width, capacity);
}

void BatchPool::Return(TupleBatch&& batch) {
  if (batch.capacity() == 0) return;  // nothing worth pooling
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(batch));
}

}  // namespace oodb
