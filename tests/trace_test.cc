// Observability suite (`ctest -L trace`; CI repeats it under TSan for the
// dop=4 ANALYZE run): the optimizer search trace, the metrics registry, and
// EXPLAIN ANALYZE — including the two invariants the layer exists to
// protect: instrumentation never changes results (parity test), and the
// estimate/actual drift it exposes actually shrinks once the offending
// estimator is fed measured statistics (the satellite regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/catalog/analyze.h"
#include "src/common/metrics.h"
#include "src/physical/parallel.h"
#include "src/trace/exec_profile.h"
#include "src/trace/opt_trace.h"
#include "src/workloads/oo7.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

using oodb::testing::StatusOf;

// ---------------------------------------------------------------------------
// OptTrace ring buffer unit tests.

TEST(OptTraceTest, RingKeepsNewestEventsAndCountsAll) {
  OptTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    OptEvent e;
    e.kind = OptEventKind::kRuleFired;
    e.detail = std::to_string(i);
    trace.Record(std::move(e));
  }
  EXPECT_EQ(trace.recorded(), 10);
  EXPECT_EQ(trace.dropped(), 6);
  EXPECT_EQ(trace.count(OptEventKind::kRuleFired), 10);
  std::vector<OptEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].detail, "6");  // oldest retained
  EXPECT_EQ(events[3].detail, "9");  // newest
}

TEST(OptTraceTest, PerKindCountsSurviveOverflow) {
  OptTrace trace(2);
  for (int i = 0; i < 5; ++i) {
    trace.Record({OptEventKind::kBranchPruned, "r", 1, -1, 2.0, "", "cut"});
  }
  trace.Record({OptEventKind::kWinnerReplaced, "", 1, -1, 1.5, "scan", ""});
  EXPECT_EQ(trace.count(OptEventKind::kBranchPruned), 5);
  EXPECT_EQ(trace.count(OptEventKind::kWinnerReplaced), 1);
  EXPECT_EQ(trace.count(OptEventKind::kEnforcerInserted), 0);
  EXPECT_EQ(trace.Events().size(), 2u);
}

TEST(OptTraceTest, TextAndJsonDumps) {
  OptTrace trace;
  trace.Record({OptEventKind::kRuleFired, "get-to-scan", 3, 12, -1.0,
                "file-scan", ""});
  trace.Record({OptEventKind::kWinnerReplaced, "", 3, -1, 41.5, "sort", "winner"});
  std::string text = trace.ToText();
  EXPECT_NE(text.find("optimizer trace: 2 events"), std::string::npos) << text;
  EXPECT_NE(text.find("rule-fired"), std::string::npos);
  EXPECT_NE(text.find("winner-replaced"), std::string::npos);
  EXPECT_NE(text.find("get-to-scan"), std::string::npos);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"rule-fired\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"get-to-scan\""), std::string::npos);
}

TEST(OptTraceTest, JsonEscapesSpecialCharacters) {
  OptTrace trace;
  trace.Record({OptEventKind::kVerifyOutcome, "", -1, -1, -1.0, "",
                "bad \"plan\"\nline2"});
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("bad \\\"plan\\\"\\nline2"), std::string::npos) << json;
}

TEST(OptTraceTest, ClearResetsEverything) {
  OptTrace trace(4);
  trace.Record({OptEventKind::kRuleFired, "r", 0, 0, 0.0, "", "x"});
  trace.Clear();
  EXPECT_EQ(trace.recorded(), 0);
  EXPECT_EQ(trace.dropped(), 0);
  EXPECT_EQ(trace.count(OptEventKind::kRuleFired), 0);
  EXPECT_TRUE(trace.Events().empty());
}

// ---------------------------------------------------------------------------
// Metrics registry unit tests.

TEST(MetricsTest, CountersGaugesAndSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("oodb_trace_test_total", "test counter");
  Gauge* g = reg.gauge("oodb_trace_test_gauge", "test gauge");
  int64_t base = c->value();
  c->Increment();
  c->Increment(2);
  EXPECT_EQ(c->value(), base + 3);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  std::string snap = reg.TextSnapshot();
  EXPECT_NE(snap.find("# HELP oodb_trace_test_total test counter"),
            std::string::npos);
  EXPECT_NE(snap.find("# TYPE oodb_trace_test_total counter"),
            std::string::npos);
  EXPECT_NE(snap.find("# TYPE oodb_trace_test_gauge gauge"),
            std::string::npos);
  // Same name returns the same instance.
  EXPECT_EQ(reg.counter("oodb_trace_test_total"), c);
}

TEST(MetricsTest, ResetForTestKeepsCachedPointersValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("oodb_trace_reset_total");
  c->Increment(7);
  reg.ResetForTest();
  // The registry zeroes in place: call sites caching the pointer (the
  // static-local metric structs in session/cache/governor/storage) keep
  // writing to live counters.
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  EXPECT_EQ(reg.counter("oodb_trace_reset_total")->value(), 1);
}

// ---------------------------------------------------------------------------
// DriftRatio semantics.

TEST(DriftRatioTest, SymmetricAndClampedAtOneRow) {
  EXPECT_DOUBLE_EQ(DriftRatio(10.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(DriftRatio(1.0, 100), 100.0);   // under-estimate
  EXPECT_DOUBLE_EQ(DriftRatio(100.0, 1), 100.0);   // over-estimate
  // Sub-row estimates and empty results clamp to one row: "estimated 0.3,
  // saw 0" is not a division artifact.
  EXPECT_DOUBLE_EQ(DriftRatio(0.3, 0), 1.0);
  EXPECT_DOUBLE_EQ(DriftRatio(0.0, 0), 1.0);
}

TEST(DriftRatioTest, ZeroEstimatesAndSymmetry) {
  // A hard-zero estimate against real rows clamps to one row, not infinity.
  EXPECT_DOUBLE_EQ(DriftRatio(0.0, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(DriftRatio(0.25, 50), 50.0);
  // Fractional estimates at or above one row divide normally.
  EXPECT_DOUBLE_EQ(DriftRatio(2.5, 5), 2.0);
  // k-fold over and k-fold under read as the same factor.
  EXPECT_DOUBLE_EQ(DriftRatio(7.0, 49), DriftRatio(49.0, 7));
  // A sub-row estimate against one actual row is no drift at all.
  EXPECT_DOUBLE_EQ(DriftRatio(0.01, 1), 1.0);
}

// ---------------------------------------------------------------------------
// Optimizer search trace integration over OO7.

Oo7Options TraceConfig() {
  Oo7Options o;
  o.complex_per_module = 3;
  o.base_per_complex = 4;
  o.components_per_base = 2;
  o.num_composite_parts = 20;
  o.atomic_per_composite = 8;
  o.num_build_dates = 20;
  o.num_doc_titles = 5;
  return o;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    auto r = MakeOo7(TraceConfig());
    EXPECT_TRUE(r.ok()) << r.status();
    instance_ = std::move(r).value();
  }

  Oo7Db& db() { return *instance_.db; }
  ObjectStore& store() { return *instance_.store; }

  struct Planned {
    QueryContext ctx;
    LogicalExprPtr logical;
    PlanNodePtr plan;
    Cost cost;
  };

  Planned Plan(const std::string& text, OptimizerOptions opts = {}) {
    Planned out;
    out.ctx.catalog = &db().catalog;
    SortSpec order;
    int64_t limit = 0;
    auto logical = ParseAndSimplify(text, &out.ctx, &order, &limit);
    EXPECT_TRUE(logical.ok()) << logical.status() << "\n" << text;
    out.logical = *logical;
    opts.verify_plans = true;
    PhysProps required;
    required.sort = order;
    required.limit = limit;
    Optimizer opt(&db().catalog, std::move(opts));
    auto planned = opt.Optimize(*out.logical, &out.ctx, required);
    EXPECT_TRUE(planned.ok()) << planned.status() << "\n" << text;
    EXPECT_TRUE(planned->stats.verify_error.empty())
        << text << "\n" << planned->stats.verify_error;
    out.plan = planned->plan;
    out.cost = planned->cost;
    return out;
  }

  Result<ExecStats> Analyze(Planned& p, int batch_size = 0) {
    ExecOptions eo;
    eo.sample_limit = 1 << 22;
    eo.batch_size = batch_size;
    eo.analyze = true;
    return ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  }

  static const PlanNode* FindExchange(const PlanNode& node) {
    if (node.op.kind == PhysOpKind::kExchange) return &node;
    for (const PlanNodePtr& c : node.children) {
      if (const PlanNode* e = FindExchange(*c)) return e;
    }
    return nullptr;
  }

  Oo7Instance instance_;
};

TEST_F(TraceTest, SearchTraceRecordsRuleAndWinnerEvents) {
  OptTrace trace;
  OptimizerOptions opts;
  opts.trace_sink = &trace;
  Plan(kOo7QueryTraversal, opts);
  EXPECT_GT(trace.count(OptEventKind::kRuleFired), 0);
  EXPECT_GT(trace.count(OptEventKind::kGroupExplored), 0);
  EXPECT_GT(trace.count(OptEventKind::kWinnerReplaced), 0);
  // verify_plans is forced on by Plan(): exactly one verdict per search.
  EXPECT_EQ(trace.count(OptEventKind::kVerifyOutcome), 1);
  bool saw_ok_verdict = false;
  for (const OptEvent& e : trace.Events()) {
    if (e.kind == OptEventKind::kVerifyOutcome && e.detail == "ok") {
      saw_ok_verdict = true;
    }
  }
  EXPECT_TRUE(saw_ok_verdict) << trace.ToText();
  EXPECT_NE(trace.ToJson().find("\"counts\""), std::string::npos);
}

// MaxDriftRatio over partial profiles — the FAILED/governor-tripped run
// shape, where only a subset of operators recorded actuals before the
// abort. Unprofiled nodes contribute nothing; the worst profiled node wins.
TEST_F(TraceTest, MaxDriftRatioOverPartialProfiles) {
  Planned p = Plan(kOo7QueryTraversal);
  ExecProfile empty;
  EXPECT_DOUBLE_EQ(MaxDriftRatio(*p.plan, empty), 1.0);

  ExecProfile partial;
  const int64_t seen = llround(p.plan->logical.card) * 8 + 8;
  partial.Register(p.plan.get())->rows = seen;
  const double root_drift = DriftRatio(p.plan->logical.card, seen);
  ASSERT_GT(root_drift, 1.0);
  EXPECT_DOUBLE_EQ(MaxDriftRatio(*p.plan, partial), root_drift);

  // Profiling a second, near-exact node must not mask the drifted root.
  ASSERT_FALSE(p.plan->children.empty());
  const PlanNode* child = p.plan->children[0].get();
  const int64_t child_seen =
      std::max<int64_t>(1, llround(child->logical.card));
  partial.Register(child)->rows = child_seen;
  const double expected =
      std::max(root_drift, DriftRatio(child->logical.card, child_seen));
  EXPECT_DOUBLE_EQ(MaxDriftRatio(*p.plan, partial), expected);
}

// The Exchange worker-merge discipline: each worker records into a private
// profile, merged into the consumer's at join. Per-node rows sum across
// workers, so drift is judged against the query's *total* actuals — and
// recovery events accumulate rather than overwrite.
TEST_F(TraceTest, WorkerMergeAggregatesRowsBeforeDriftJudgment) {
  Planned p = Plan(kOo7QueryTraversal);
  const PlanNode* root = p.plan.get();
  ExecProfile consumer;
  ExecProfile worker1;
  ExecProfile worker2;
  worker1.Register(root)->rows = 30;
  worker1.AddRecovery(/*retried=*/1, /*speculated=*/0);
  worker2.Register(root)->rows = 70;
  worker2.AddRecovery(/*retried=*/0, /*speculated=*/2);
  consumer.MergeFrom(worker1);
  consumer.MergeFrom(worker2);
  ASSERT_NE(consumer.Find(root), nullptr);
  EXPECT_EQ(consumer.Find(root)->rows, 100);
  EXPECT_EQ(consumer.partitions_retried(), 1);
  EXPECT_EQ(consumer.partitions_speculated(), 2);
  // Judged per worker, 30 or 70 rows could under- or over-state drift;
  // the merged judgment sees the full 100.
  EXPECT_DOUBLE_EQ(MaxDriftRatio(*p.plan, consumer),
                   DriftRatio(root->logical.card, 100));
}

TEST_F(TraceTest, PruningEmitsBranchPrunedEvents) {
  OptTrace trace;
  OptimizerOptions opts;
  opts.trace_sink = &trace;
  opts.enable_pruning = true;
  Plan(kOo7QueryTraversal, opts);
  EXPECT_GT(trace.count(OptEventKind::kBranchPruned), 0) << trace.ToText();
}

TEST_F(TraceTest, EnforcerInsertionTraced) {
  OptTrace trace;
  OptimizerOptions opts;
  opts.trace_sink = &trace;
  Plan("SELECT b.id, b.buildDate FROM BaseAssembly b IN BaseAssemblies "
       "WHERE b.buildDate >= 3 ORDER BY b.buildDate;",
       opts);
  EXPECT_GT(trace.count(OptEventKind::kEnforcerInserted), 0)
      << trace.ToText();
}

TEST_F(TraceTest, TraceSinkDoesNotChangeThePlan) {
  Planned plain = Plan(kOo7QueryNewerComponents);
  OptTrace trace;
  OptimizerOptions opts;
  opts.trace_sink = &trace;
  Planned traced = Plan(kOo7QueryNewerComponents, opts);
  EXPECT_GT(trace.recorded(), 0);
  EXPECT_EQ(PrintPlan(*plain.plan, plain.ctx, /*with_costs=*/true),
            PrintPlan(*traced.plan, traced.ctx, /*with_costs=*/true));
  EXPECT_DOUBLE_EQ(plain.cost.total(), traced.cost.total());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE execution profiles.

TEST_F(TraceTest, AnalyzeRendersPerOperatorCounters) {
  Planned p = Plan(Oo7QueryExactMatch(42));
  auto stats = Analyze(p);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_NE(stats->profile, nullptr);
  EXPECT_TRUE(stats->profile->io_timed());
  const OpProfile* root = stats->profile->Find(p.plan.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows, stats->rows);
  std::string render = RenderAnalyzedPlan(*p.plan, p.ctx, *stats->profile);
  EXPECT_NE(render.find("[est "), std::string::npos) << render;
  EXPECT_NE(render.find("-> act "), std::string::npos) << render;
  EXPECT_NE(render.find("drift "), std::string::npos) << render;
  EXPECT_NE(render.find(", cpu "), std::string::npos) << render;
  EXPECT_NE(render.find(", io "), std::string::npos) << render;
  EXPECT_NE(render.find(", pages "), std::string::npos) << render;
  EXPECT_NE(render.find(", buf "), std::string::npos) << render;
}

TEST_F(TraceTest, FusedFilterChainAnnotated) {
  Planned p = Plan(Oo7QueryByDocTitle("Doc1"));
  auto stats = Analyze(p);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_NE(stats->profile, nullptr);
  std::string render = RenderAnalyzedPlan(*p.plan, p.ctx, *stats->profile);
  EXPECT_NE(render.find("(fused)"), std::string::npos) << render;
}

TEST_F(TraceTest, OrderedOperatorCountersRenderedGolden) {
  // The three order-as-a-property counters, each deterministic for a fixed
  // dataset: TopK renders its max heap occupancy (bounded at k), a partial
  // Sort renders its presorted prefix and flushed runs, and a merging
  // Exchange renders the streams it interleaved.
  Planned topk = Plan(
      "SELECT a.id, a.buildDate FROM AtomicPart a IN AtomicParts "
      "WHERE a.x >= 0 ORDER BY a.buildDate, a.id LIMIT 5;");
  ASSERT_EQ(CountOps(*topk.plan, PhysOpKind::kTopK), 1)
      << PrintPlan(*topk.plan, topk.ctx);
  auto tstats = Analyze(topk);
  ASSERT_TRUE(tstats.ok()) << tstats.status();
  std::string render =
      RenderAnalyzedPlan(*topk.plan, topk.ctx, *tstats->profile);
  EXPECT_NE(render.find("[limit 5]"), std::string::npos) << render;
  EXPECT_NE(render.find(", heap 5"), std::string::npos) << render;

  // The buildDate index delivers the leading key sorted; only the id
  // tie-break is enforced, run by run — the prefix must not be re-sorted
  // (file-scan rule disabled so the ordered index path wins on this tiny
  // dataset too).
  OptimizerOptions idx;
  idx.disabled_rules = {kImplFileScan};
  Planned partial = Plan(
      "SELECT b.buildDate, b.id FROM BaseAssembly b IN BaseAssemblies "
      "WHERE b.buildDate >= 3 ORDER BY b.buildDate, b.id;",
      idx);
  const PlanNode* psort = nullptr;
  for (const PlanNode* n = partial.plan.get(); n != nullptr;
       n = n->children.empty() ? nullptr : n->children[0].get()) {
    if (n->op.kind == PhysOpKind::kSort) psort = n;
  }
  ASSERT_NE(psort, nullptr) << PrintPlan(*partial.plan, partial.ctx);
  ASSERT_EQ(psort->op.sort_prefix, 1) << PrintPlan(*partial.plan, partial.ctx);
  auto pstats = Analyze(partial);
  ASSERT_TRUE(pstats.ok()) << pstats.status();
  render = RenderAnalyzedPlan(*partial.plan, partial.ctx, *pstats->profile);
  EXPECT_NE(render.find("[presorted 1]"), std::string::npos) << render;
  EXPECT_NE(render.find(", runs "), std::string::npos) << render;

  OptimizerOptions par;
  par.max_dop = 4;
  Planned merged = Plan(
      "SELECT a.buildDate, a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.x >= 0 ORDER BY a.buildDate, a.id;",
      par);
  ASSERT_NE(FindExchange(*merged.plan), nullptr)
      << PrintPlan(*merged.plan, merged.ctx);
  auto mstats = Analyze(merged);
  ASSERT_TRUE(mstats.ok()) << mstats.status();
  render = RenderAnalyzedPlan(*merged.plan, merged.ctx, *mstats->profile);
  EXPECT_NE(render.find(", merge 4"), std::string::npos) << render;
}

// Instrumentation must be observationally free: the analyzed run produces
// exactly the rows and simulated time/I/O of the plain run.
TEST_F(TraceTest, AnalyzeParityWithPlainExecution) {
  Planned p = Plan(kOo7QueryTraversal);
  ExecOptions plain_eo;
  plain_eo.sample_limit = 1 << 22;
  auto plain = ExecutePlan(*p.plan, &store(), &p.ctx, plain_eo);
  ASSERT_TRUE(plain.ok()) << plain.status();
  if (std::getenv("OODB_FORCE_ANALYZE") == nullptr) {
    EXPECT_EQ(plain->profile, nullptr);
  }
  auto analyzed = Analyze(p);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  ASSERT_NE(analyzed->profile, nullptr);
  EXPECT_EQ(analyzed->rows, plain->rows);
  EXPECT_EQ(analyzed->pages_read, plain->pages_read);
  EXPECT_EQ(analyzed->buffer_hits, plain->buffer_hits);
  EXPECT_DOUBLE_EQ(analyzed->sim_io_s, plain->sim_io_s);
  EXPECT_DOUBLE_EQ(analyzed->sim_cpu_s, plain->sim_cpu_s);
  EXPECT_EQ(analyzed->sample_rows, plain->sample_rows);
}

TEST_F(TraceTest, ExchangeAnalyzeMergesWorkerProfiles) {
  OptimizerOptions opts;
  opts.max_dop = 4;
  Planned p = Plan(
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;", opts);
  const PlanNode* exchange = FindExchange(*p.plan);
  ASSERT_NE(exchange, nullptr) << PrintPlan(*p.plan, p.ctx);
  auto stats = Analyze(p, /*batch_size=*/64);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_NE(stats->profile, nullptr);
  // Per-node io/pages/buffer attribution is serial-only.
  EXPECT_FALSE(stats->profile->io_timed());
  const std::vector<WorkerUtilization>* workers =
      stats->profile->workers(exchange);
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(static_cast<int>(workers->size()), exchange->op.dop);
  int64_t worker_rows = 0;
  for (const WorkerUtilization& w : *workers) worker_rows += w.rows;
  // Every row crossing the exchange was produced by exactly one worker.
  const OpProfile* below = stats->profile->Find(exchange->children[0].get());
  ASSERT_NE(below, nullptr);
  EXPECT_EQ(worker_rows, below->rows);
  std::string render = RenderAnalyzedPlan(*p.plan, p.ctx, *stats->profile);
  EXPECT_NE(render.find("worker 0:"), std::string::npos) << render;
  EXPECT_EQ(render.find(", io "), std::string::npos) << render;
}

TEST_F(TraceTest, RecoveredAnalyzeCountsRetriedPartitionsOnce) {
  // A transient worker kill under recovery: the retried partition's winning
  // attempt is the only one whose profile merges, so ANALYZE row counts
  // reflect delivered rows exactly once, and the recovery line reports the
  // re-execution.
  OptimizerOptions opts;
  opts.max_dop = 4;
  Planned p = Plan(
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;", opts);
  const PlanNode* exchange = FindExchange(*p.plan);
  ASSERT_NE(exchange, nullptr) << PrintPlan(*p.plan, p.ctx);

  ExecOptions clean_eo;
  clean_eo.sample_limit = 1 << 22;
  auto clean = ExecutePlan(*p.plan, &store(), &p.ctx, clean_eo);
  ASSERT_TRUE(clean.ok()) << clean.status();

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.analyze = true;
  eo.batch_size = 64;
  eo.exec_faults.fail_worker = 1;
  eo.exec_faults.fail_after_batches = 1;
  eo.exec_faults.fail_attempts = 1;
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, clean->rows);
  EXPECT_GE(stats->partitions_retried, 1);
  ASSERT_NE(stats->profile, nullptr);
  EXPECT_EQ(stats->profile->partitions_retried(), stats->partitions_retried);
  // Exactly-once accounting survives the retry: rows below the exchange
  // equal the delivered total, not delivered + the killed attempt's rows.
  const OpProfile* below = stats->profile->Find(exchange->children[0].get());
  ASSERT_NE(below, nullptr);
  EXPECT_EQ(below->rows, clean->rows);
  std::string render = RenderAnalyzedPlan(*p.plan, p.ctx, *stats->profile);
  EXPECT_NE(render.find("recovery: partitions retried"), std::string::npos)
      << render;
}

// ---------------------------------------------------------------------------
// The satellite estimator regression: EXPLAIN ANALYZE exposed 16x drift on
// un-indexed equality over a 1000-distinct-value field (est = 10% of 160
// atomic parts = 16; actual 0). After ANALYZE measures the field, the
// equality estimate switches to 1/distinct and the drift collapses.

TEST_F(TraceTest, MeasuredStatsCollapseUnindexedEqualityDrift) {
  const std::string q =
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x == 123;";
  Planned before = Plan(q);
  auto before_stats = Analyze(before);
  ASSERT_TRUE(before_stats.ok()) << before_stats.status();
  double before_drift = MaxDriftRatio(*before.plan, *before_stats->profile);
  EXPECT_GE(before_drift, 10.0);

  ASSERT_OK(AnalyzeStore(store(), &db().catalog));
  ASSERT_TRUE(db().catalog.stats_measured());

  store().ResetSimulation();
  Planned after = Plan(q);
  auto after_stats = Analyze(after);
  ASSERT_TRUE(after_stats.ok()) << after_stats.status();
  double after_drift = MaxDriftRatio(*after.plan, *after_stats->profile);
  EXPECT_LE(after_drift, 2.0)
      << RenderAnalyzedPlan(*after.plan, after.ctx, *after_stats->profile);
  EXPECT_LT(after_drift, before_drift);
}

// Declared-only catalogs (no ANALYZE) must keep the paper's 10% default: the
// estimate for the same query is unchanged from the seed.
TEST_F(TraceTest, DeclaredOnlyCatalogKeepsPaperDefaultSelectivity) {
  ASSERT_FALSE(db().catalog.stats_measured());
  Planned p =
      Plan("SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x == 123;");
  // 10% of the 160 atomic parts.
  EXPECT_DOUBLE_EQ(p.plan->logical.card, 16.0);
}

// ---------------------------------------------------------------------------
// Session::ExplainAnalyze end-to-end, including failed runs.

class SessionTraceTest : public ::testing::Test {
 protected:
  SessionTraceTest() : db_(MakePaperCatalog(0.02)) {}

  static Session::Options BaseOptions() { return {}; }

  void Populate(Session* session) {
    GenOptions gen;
    gen.num_plants = 20;
    ASSERT_OK(GeneratePaperData(db_, &session->store(), gen));
  }

  PaperDb db_;
};

TEST_F(SessionTraceTest, ExplainAnalyzeReportsPerOperatorAndSummary) {
  Session session(&db_.catalog);
  Populate(&session);
  auto out = session.ExplainAnalyze(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("[est "), std::string::npos) << *out;
  EXPECT_NE(out->find("-> act "), std::string::npos) << *out;
  EXPECT_NE(out->find("drift "), std::string::npos) << *out;
  EXPECT_NE(out->find("analyzed: rows="), std::string::npos) << *out;
  EXPECT_NE(out->find("max_drift="), std::string::npos) << *out;
  EXPECT_EQ(out->find("exec: FAILED"), std::string::npos) << *out;
}

TEST_F(SessionTraceTest, GovernorTrippedAnalyzeRendersPartialProfile) {
  Session::Options opts;
  opts.governor.max_exec_rows = 1;
  Session session(&db_.catalog, opts);
  Populate(&session);
  auto out = session.ExplainAnalyze(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 0;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("exec: FAILED("), std::string::npos) << *out;
  // The partial profile is still rendered per operator.
  EXPECT_NE(out->find("[est "), std::string::npos) << *out;
  EXPECT_NE(out->find("governor_rows="), std::string::npos) << *out;
}

TEST_F(SessionTraceTest, FaultedAnalyzeRendersPartialProfile) {
  Session session(&db_.catalog);
  Populate(&session);
  FaultPolicy policy;
  policy.fail_every_nth_read = 7;
  session.store().SetFaultPolicy(policy);
  auto out = session.ExplainAnalyze(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 0;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("exec: FAILED("), std::string::npos) << *out;
  EXPECT_NE(out->find("[est "), std::string::npos) << *out;
  session.store().SetFaultPolicy(FaultPolicy{});
}

TEST_F(SessionTraceTest, AnalyzeRendersRetryTrailGolden) {
  // Deterministic transient fault: attempt 0's pipeline root dies at its
  // first batch boundary; attempt 1 runs with attempt number 1 >=
  // fail_attempts and succeeds on the ladder's "row" rung. The rendered
  // trail is fully deterministic, so match it exactly.
  Session::Options opts;
  opts.exec.exec_faults.fail_worker = 0;
  opts.exec.exec_faults.fail_after_batches = 1;
  opts.exec.exec_faults.fail_attempts = 1;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_s = 0.25;
  Session session(&db_.catalog, opts);
  Populate(&session);
  auto out = session.ExplainAnalyze(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("retry: attempt 0 step=vectorized "
                      "status=WorkerFault: injected worker fault "
                      "(worker 0, batch #1, attempt 0) backoff=0.25s"),
            std::string::npos)
      << *out;
  EXPECT_NE(out->find("retry: attempt 1 step=row status=OK"),
            std::string::npos)
      << *out;
  EXPECT_NE(out->find("retry_backoff=0.25s"), std::string::npos) << *out;
  EXPECT_EQ(out->find("exec: FAILED"), std::string::npos) << *out;
  EXPECT_NE(out->find("analyzed: rows="), std::string::npos) << *out;
}

TEST_F(SessionTraceTest, CleanRunRendersNoRetryTrail) {
  // The trail must not pollute ANALYZE output when nothing went wrong,
  // even with retry armed.
  Session::Options opts;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_s = 0.25;
  Session session(&db_.catalog, opts);
  Populate(&session);
  auto out = session.ExplainAnalyze(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->find("retry:"), std::string::npos) << *out;
  EXPECT_EQ(out->find("retry_backoff="), std::string::npos) << *out;
}

TEST_F(SessionTraceTest, MetricsRegistrySnapshotCoversSubsystems) {
  MetricsRegistry::Global().ResetForTest();
  Session::Options opts;
  opts.optimizer.plan_cache_capacity = 8;
  Session session(&db_.catalog, opts);
  Populate(&session);
  const std::string q =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  ASSERT_OK(session.Query(q));
  ASSERT_OK(session.Query(q));
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_GE(reg.counter("oodb_session_queries_total")->value(), 2);
  EXPECT_GE(reg.counter("oodb_session_prepares_total")->value(), 2);
  EXPECT_GE(reg.counter("oodb_plan_cache_misses_total")->value(), 1);
  EXPECT_GE(reg.counter("oodb_plan_cache_hits_total")->value(), 1);
  // Cold-start runs over a small table miss every page; misses prove the
  // buffer-pool metrics are wired (hits stay 0 here).
  EXPECT_GE(reg.counter("oodb_buffer_pool_misses_total")->value(), 1);
  std::string snap = reg.TextSnapshot();
  EXPECT_NE(snap.find("oodb_session_queries_total"), std::string::npos);
  EXPECT_NE(snap.find("oodb_plan_cache_hits_total"), std::string::npos);
  EXPECT_NE(snap.find("oodb_buffer_pool_misses_total"), std::string::npos);
}

}  // namespace
}  // namespace oodb
