// End-to-end optimizer tests reproducing the paper's Section 4 experiments:
// plan shapes and cost relationships for Queries 1-4 under the paper's rule
// configurations.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

using testing::MustOptimize;
using testing::PlanContains;
using testing::PlanKinds;

class PaperQueriesTest : public ::testing::Test {
 protected:
  PaperQueriesTest() : db_(MakePaperCatalog()) {}
  PaperDb db_;
};

// --- Query 1 (Figures 5-7, Table 2) ---

TEST_F(PaperQueriesTest, Query1SimplifiedShapeMatchesFigure5) {
  QueryContext ctx;
  auto logical = BuildPaperQuery(1, db_, &ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();
  std::string printed = PrintLogicalTree(**logical, ctx);
  // Figure 5: Project over Select over three Mats over Get Employees.
  EXPECT_NE(printed.find("Project e.name, e.job.name, e.dept.name"),
            std::string::npos);
  EXPECT_NE(printed.find("Select e.dept.plant.location == \"Dallas\""),
            std::string::npos);
  EXPECT_NE(printed.find("Mat e.dept.plant"), std::string::npos);
  EXPECT_NE(printed.find("Mat e.dept"), std::string::npos);
  EXPECT_NE(printed.find("Mat e.job"), std::string::npos);
  EXPECT_NE(printed.find("Get Employees: e"), std::string::npos);
}

TEST_F(PaperQueriesTest, Query1OptimalPlanMatchesFigure6) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(1, db_, &ctx);
  // Two hash joins (job and dept links traversed in the reverse, value-based
  // direction) and exactly one assembly (d.plant, below the filter).
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 2);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kAssembly), 1);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Assembly e.dept.plant"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "File Scan extent(Department)"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "File Scan extent(Job)"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "File Scan Employees"));
  // The filter runs over the 1000 departments, not the 50000 employees: the
  // assembly below it must see department-level cardinality.
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Filter e.dept.plant.location"));
}

TEST_F(PaperQueriesTest, Query1WithoutCommutativityIsPointerChasing) {
  QueryContext ctx;
  OptimizerOptions opts;
  opts.disabled_rules = {kRuleJoinCommute};
  OptimizedQuery q = MustOptimize(1, db_, &ctx, opts);
  // Figure 7: no joins at all — pure assembly pipeline over the Employees
  // scan.
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 0);
  EXPECT_GE(CountOps(*q.plan, PhysOpKind::kAssembly), 2);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "File Scan Employees"));
}

TEST_F(PaperQueriesTest, Query1Table2CostOrdering) {
  QueryContext ctx1, ctx2, ctx3;
  OptimizedQuery all = MustOptimize(1, db_, &ctx1);

  OptimizerOptions no_comm;
  no_comm.disabled_rules = {kRuleJoinCommute};
  OptimizedQuery wo_comm = MustOptimize(1, db_, &ctx2, no_comm);

  OptimizerOptions no_window = no_comm;
  no_window.cost.assembly_window = 1;
  OptimizedQuery wo_window = MustOptimize(1, db_, &ctx3, no_window);

  // Table 2 shape: optimal < w/o commutativity < w/o window, with the
  // paper's ratios (~4.2x and ~7.4x) preserved within a factor of ~2.
  double r_comm = wo_comm.cost.total() / all.cost.total();
  double r_window = wo_window.cost.total() / all.cost.total();
  EXPECT_GT(r_comm, 2.5);
  EXPECT_LT(r_comm, 9.0);
  EXPECT_GT(r_window, 5.0);
  EXPECT_LT(r_window, 16.0);
  EXPECT_GT(r_window, r_comm);
}

TEST_F(PaperQueriesTest, Query1SearchShrinksAsRulesDisabled) {
  QueryContext ctx1, ctx2;
  OptimizedQuery all = MustOptimize(1, db_, &ctx1);
  OptimizerOptions no_comm;
  no_comm.disabled_rules = {kRuleJoinCommute};
  OptimizedQuery wo_comm = MustOptimize(1, db_, &ctx2, no_comm);
  // Table 2's "% of Exh. Search" column: fewer expressions generated.
  EXPECT_LT(wo_comm.stats.expressions(), all.stats.expressions());
  EXPECT_LT(wo_comm.stats.logical_mexprs, all.stats.logical_mexprs);
}

// --- Query 2 (Figures 8-9) ---

TEST_F(PaperQueriesTest, Query2CollapsesToIndexScan) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(2, db_, &ctx);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 1);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kAssembly), 0);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Index Scan Cities"));
  // Paper: estimated cost 0.08 s; ours should be within a small factor.
  EXPECT_LT(q.cost.total(), 0.2);
}

TEST_F(PaperQueriesTest, Query2WithoutCollapseRuleMatchesFigure9) {
  QueryContext ctx;
  OptimizerOptions opts;
  opts.disabled_rules = {kImplIndexScan};
  OptimizedQuery q = MustOptimize(2, db_, &ctx, opts);
  // Figure 9: filter over assembly over a full file scan of Cities.
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Filter c.mayor.name"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Assembly c.mayor"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "File Scan Cities"));
  // ~3 orders of magnitude more expensive (paper: 0.08 s vs 119.6 s).
  QueryContext ctx2;
  OptimizedQuery fast = MustOptimize(2, db_, &ctx2);
  EXPECT_GT(q.cost.total() / fast.cost.total(), 500);
}

TEST_F(PaperQueriesTest, Query2WithoutIndexSameAsWithoutRule) {
  // "If the collapse-to-index-scan rule is disabled (or no index on this
  // path exists), the optimizer returns the plan shown in Figure 9."
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxCitiesMayorName, false).ok());
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(2, db_, &ctx);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 0);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Assembly c.mayor"));
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxCitiesMayorName, true).ok());
}

// --- Query 3 (Figures 10-11): the present-in-memory property ---

TEST_F(PaperQueriesTest, Query3UsesIndexScanPlusAssemblyEnforcer) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(3, db_, &ctx);
  // Figure 10: Alg-Project over Assembly (enforcer) over Index Scan.
  std::vector<PhysOpKind> kinds = PlanKinds(*q.plan);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], PhysOpKind::kAlgProject);
  EXPECT_EQ(kinds[1], PhysOpKind::kAssembly);
  EXPECT_EQ(kinds[2], PhysOpKind::kIndexScan);
}

TEST_F(PaperQueriesTest, Query3SlightlyCostlierThanQuery2) {
  // The mayor components of the 2 qualifying cities must be fetched:
  // paper 0.12 s vs 0.08 s.
  QueryContext ctx2, ctx3;
  OptimizedQuery q2 = MustOptimize(2, db_, &ctx2);
  OptimizedQuery q3 = MustOptimize(3, db_, &ctx3);
  EXPECT_GT(q3.cost.total(), q2.cost.total());
  EXPECT_LT(q3.cost.total(), q2.cost.total() * 3);
}

TEST_F(PaperQueriesTest, Query3ThreeOrdersBetterThanFilterPlan) {
  QueryContext ctx, ctx2;
  OptimizedQuery fast = MustOptimize(3, db_, &ctx);
  OptimizerOptions opts;
  opts.disabled_rules = {kImplIndexScan};
  OptimizedQuery slow = MustOptimize(3, db_, &ctx2, opts);
  EXPECT_GT(slow.cost.total() / fast.cost.total(), 500);
}

TEST_F(PaperQueriesTest, Query3WithoutEnforcerFallsBackToFilterPlan) {
  QueryContext ctx;
  OptimizerOptions opts;
  opts.disabled_rules = {kEnforcerAssembly};
  OptimizedQuery q = MustOptimize(3, db_, &ctx, opts);
  // Without the enforcer the index scan cannot deliver the mayor in memory,
  // so Mat must be implemented directly (assembly-as-implementation over a
  // scan) — far more expensive.
  QueryContext ctx2;
  OptimizedQuery fast = MustOptimize(3, db_, &ctx2);
  EXPECT_GT(q.cost.total(), fast.cost.total() * 100);
}

// --- Query 4 (Figures 12-13, Table 3) ---

TEST_F(PaperQueriesTest, Query4OptimalUsesOnlyTimeIndex) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(4, db_, &ctx);
  // Figure 12: Filter(name) over Assembly over Alg-Unnest over Index Scan
  // Tasks — the name index is NOT used even though it exists.
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 1);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Index Scan Tasks"));
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 0);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kAlgUnnest), 1);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kAssembly), 1);
}

TEST_F(PaperQueriesTest, Query4Table3CostOrdering) {
  auto optimize_with = [&](bool time_idx, bool name_idx) {
    EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, time_idx).ok());
    EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, name_idx).ok());
    QueryContext ctx;
    OptimizedQuery q = MustOptimize(4, db_, &ctx);
    return q.cost.total();
  };
  double none = optimize_with(false, false);
  double time_only = optimize_with(true, false);
  double name_only = optimize_with(false, true);
  double both = optimize_with(true, true);
  EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, true).ok());

  // Table 3's "All rules" row: 108 > 28.4 > 1.73 == 1.73.
  EXPECT_GT(none, name_only);
  EXPECT_GT(name_only, time_only);
  // "Both" matches "time only" up to the tiny cardinality effect the name
  // index has on the final filter's selectivity estimate.
  EXPECT_NEAR(both, time_only, 0.05 * time_only);
  EXPECT_GT(none / time_only, 20);
}

TEST_F(PaperQueriesTest, Query4NameOnlyUsesReverseJoin) {
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, false).ok());
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(4, db_, &ctx);
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  // With only the name index, the winning plan joins the Fred employees
  // (via the extent index) against the unnested team members — traversing
  // the membership reference in the reverse direction.
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 1);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Index Scan extent(Employee)"));
}

// --- General optimizer behaviour ---

TEST_F(PaperQueriesTest, OptimizationIsFast) {
  // Paper: "moderately complex queries should be optimized ... in less than
  // 1 sec" on a 1993 workstation; we expect far less.
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(1, db_, &ctx);
  EXPECT_LT(q.stats.optimize_seconds, 1.0);
}

TEST_F(PaperQueriesTest, StatsPopulated) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(1, db_, &ctx);
  EXPECT_GT(q.stats.groups, 0);
  EXPECT_GT(q.stats.logical_mexprs, 0);
  EXPECT_GT(q.stats.phys_alternatives, 0);
  EXPECT_GT(q.stats.transformation_firings, 0);
  EXPECT_GT(q.stats.impl_firings, 0);
}

TEST_F(PaperQueriesTest, PlanCostsAreConsistent) {
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(1, db_, &ctx);
  // total = local + sum(children totals), recursively.
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    Cost sum = n.local_cost;
    for (const PlanNodePtr& c : n.children) sum += c->total_cost;
    EXPECT_NEAR(sum.total(), n.total_cost.total(), 1e-9);
    for (const PlanNodePtr& c : n.children) check(*c);
  };
  check(*q.plan);
}

TEST_F(PaperQueriesTest, DeliveredPropertiesSatisfyPredicates) {
  // Every Filter's predicate load requirements are delivered by its child —
  // the invariant the property machinery must maintain.
  QueryContext ctx;
  OptimizedQuery q = MustOptimize(1, db_, &ctx);
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    if (n.op.kind == PhysOpKind::kFilter) {
      BindingSet needs = LoadRequirements(n.op.pred, ctx);
      EXPECT_TRUE(n.children[0]->delivered.in_memory.ContainsAll(needs));
    }
    for (const PlanNodePtr& c : n.children) check(*c);
  };
  check(*q.plan);
}

TEST_F(PaperQueriesTest, MismatchedCatalogRejected) {
  PaperDb other = MakePaperCatalog();
  QueryContext ctx;
  auto logical = BuildPaperQuery(2, db_, &ctx);
  ASSERT_TRUE(logical.ok());
  Optimizer opt(&other.catalog);
  EXPECT_FALSE(opt.Optimize(**logical, &ctx).ok());
}

TEST_F(PaperQueriesTest, DisablingFileScanBreaksPlanning) {
  QueryContext ctx;
  auto logical = BuildPaperQuery(1, db_, &ctx);
  ASSERT_TRUE(logical.ok());
  OptimizerOptions opts;
  opts.disabled_rules = {kImplFileScan, kImplIndexScan};
  Optimizer opt(&db_.catalog, opts);
  EXPECT_FALSE(opt.Optimize(**logical, &ctx).ok());
}

// Parameterized sweep: disabling any single transformation rule never makes
// the plan *cheaper* than the all-rules optimum (search-space monotonicity).
class RuleAblationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleAblationTest, DisablingARuleNeverImprovesCost) {
  PaperDb db = MakePaperCatalog();
  for (int query : {1, 2, 3, 4}) {
    QueryContext ctx_all, ctx_abl;
    OptimizedQuery all = testing::MustOptimize(query, db, &ctx_all);
    OptimizerOptions opts;
    opts.disabled_rules = {GetParam()};
    auto logical = BuildPaperQuery(query, db, &ctx_abl);
    ASSERT_TRUE(logical.ok());
    Optimizer opt(&db.catalog, opts);
    auto r = opt.Optimize(**logical, &ctx_abl);
    if (!r.ok()) continue;  // some ablations make a query unplannable
    EXPECT_GE(r->cost.total(), all.cost.total() - 1e-9)
        << "query " << query << " rule " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleAblationTest,
    ::testing::Values(kRuleJoinCommute, kRuleJoinAssoc, kRuleMatToJoin,
                      kRuleMatMatCommute, kRuleSelectMatCommute,
                      kRuleMatSelectCommute, kRuleSelectSplit, kRuleSelectMerge,
                      kRuleSelectUnnestCommute, kRuleMatUnnestCommute,
                      kRuleUnnestMatCommute, kRuleSelectJoinPush,
                      kRuleSelectJoinAbsorb, kRuleMatJoinPush, kRuleMatJoinPull,
                      kImplIndexScan, kImplPointerJoin, kImplHybridHashJoin,
                      kEnforcerAssembly));

}  // namespace
}  // namespace oodb
