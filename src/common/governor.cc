#include "src/common/governor.h"

namespace oodb {

QueryGovernor::QueryGovernor(GovernorOptions options)
    : options_(std::move(options)), armed_at_(std::chrono::steady_clock::now()) {
  if (options_.deadline_ms > 0.0) {
    deadline_ = armed_at_ + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    options_.deadline_ms));
  }
}

Status QueryGovernor::Trip(Status status) {
  if (trip_.ok()) {
    trip_ = std::move(status);
    switch (trip_.code()) {
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_trips;
        break;
      case StatusCode::kCancelled:
        ++stats_.cancel_trips;
        break;
      default:
        ++stats_.budget_trips;
        break;
    }
  }
  return trip_;
}

Status QueryGovernor::CheckCancelAndDeadline(const char* where) {
  if (!trip_.ok()) return trip_;
  if (options_.cancel != nullptr && options_.cancel->cancel_requested()) {
    return Trip(Status::Cancelled(std::string("query cancelled (") + where +
                                  ")"));
  }
  if (options_.deadline_ms > 0.0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::DeadlineExceeded(
        "deadline of " + std::to_string(options_.deadline_ms) +
        " ms exceeded (" + where + ")"));
  }
  return Status::OK();
}

Status QueryGovernor::CheckSearch(int64_t memo_groups, int64_t memo_mexprs) {
  OODB_RETURN_IF_ERROR(CheckCancelAndDeadline("explore"));
  if (options_.max_memo_groups > 0 && memo_groups > options_.max_memo_groups) {
    return Trip(Status::BudgetExhausted(
        "memo group budget exhausted: " + std::to_string(memo_groups) + " > " +
        std::to_string(options_.max_memo_groups)));
  }
  if (options_.max_memo_mexprs > 0 && memo_mexprs > options_.max_memo_mexprs) {
    return Trip(Status::BudgetExhausted(
        "memo m-expr budget exhausted: " + std::to_string(memo_mexprs) +
        " > " + std::to_string(options_.max_memo_mexprs)));
  }
  return Status::OK();
}

Status QueryGovernor::CheckOptimizeEntry() {
  return CheckCancelAndDeadline("optimize");
}

Status QueryGovernor::ChargeAlternative() {
  if (!trip_.ok()) return trip_;
  ++alternatives_;
  stats_.alternatives_charged = alternatives_;
  if (options_.max_phys_alternatives > 0 &&
      alternatives_ > options_.max_phys_alternatives) {
    return Trip(Status::BudgetExhausted(
        "physical-alternative budget exhausted: " +
        std::to_string(alternatives_) + " > " +
        std::to_string(options_.max_phys_alternatives)));
  }
  return Status::OK();
}

Status QueryGovernor::CheckExec(int64_t pages_read) {
  OODB_RETURN_IF_ERROR(CheckCancelAndDeadline("execute"));
  stats_.pages_charged = pages_read;
  if (options_.max_exec_pages > 0 && pages_read > options_.max_exec_pages) {
    return Trip(Status::BudgetExhausted(
        "simulated I/O budget exhausted: " + std::to_string(pages_read) +
        " pages > " + std::to_string(options_.max_exec_pages)));
  }
  return Status::OK();
}

Status QueryGovernor::ChargeRows(int64_t n) {
  if (!trip_.ok()) return trip_;
  rows_ += n;
  stats_.rows_charged = rows_;
  if (options_.max_exec_rows > 0 && rows_ > options_.max_exec_rows) {
    return Trip(Status::BudgetExhausted(
        "row budget exhausted: " + std::to_string(rows_) + " > " +
        std::to_string(options_.max_exec_rows)));
  }
  return Status::OK();
}

Status QueryGovernor::ChargeTrackedBytes(int64_t bytes) {
  if (!trip_.ok()) return trip_;
  tracked_bytes_ += bytes;
  if (tracked_bytes_ > stats_.tracked_bytes_peak) {
    stats_.tracked_bytes_peak = tracked_bytes_;
  }
  if (options_.max_tracked_bytes > 0 &&
      tracked_bytes_ > options_.max_tracked_bytes) {
    return Trip(Status::BudgetExhausted(
        "tracked memory budget exhausted: " + std::to_string(tracked_bytes_) +
        " bytes > " + std::to_string(options_.max_tracked_bytes)));
  }
  return Status::OK();
}

}  // namespace oodb
