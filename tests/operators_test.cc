// Per-operator execution tests over hand-built plans: edge cases that
// whole-query tests reach only incidentally — empty inputs, duplicate join
// keys, multi-step assembly, dangling references, warm-start pinning,
// merge-join equal-key runs.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() : db_(MakePaperCatalog(0.02)), store_(&db_.catalog) {
    ctx_.catalog = &db_.catalog;
  }

  /// Leaf plan node scanning a collection into `binding`.
  PlanNodePtr Scan(const CollectionId& coll, BindingId binding) {
    PhysicalOp op;
    op.kind = PhysOpKind::kFileScan;
    op.coll = coll;
    op.binding = binding;
    LogicalProps props;
    props.scope = BindingSet::Of(binding);
    PhysProps delivered;
    delivered.in_memory = BindingSet::Of(binding);
    return PlanNode::Make(op, {}, props, delivered, Cost{});
  }

  PlanNodePtr Node(PhysicalOp op, std::vector<PlanNodePtr> children,
                   BindingSet scope) {
    LogicalProps props;
    props.scope = scope;
    PhysProps delivered;
    delivered.in_memory = scope;
    return PlanNode::Make(std::move(op), std::move(children), props, delivered,
                          Cost{});
  }

  Result<ExecStats> Run(const PlanNodePtr& plan) {
    return ExecutePlan(*plan, &store_, &ctx_);
  }

  PaperDb db_;
  QueryContext ctx_;
  ObjectStore store_;
};

TEST_F(OperatorTest, FileScanOverEmptyCollection) {
  // Registered set with no members.
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  // Populate nothing; CollectionMembers fails for an unpopulated set, so
  // add one member elsewhere to create the sets map? Simpler: an empty
  // extent (Country registered, no objects created).
  BindingId n = ctx_.bindings.AddGet("n", db_.country);
  (void)c;
  auto stats = Run(Scan(CollectionId::Extent(db_.country), n));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 0);
}

TEST_F(OperatorTest, HashJoinDuplicateBuildKeys) {
  // Two departments share a floor; join employees on floor value via a
  // value join between two scans.
  Oid d1 = store_.Create(db_.department);
  store_.SetValue(d1, db_.dept_floor, Value::Int(3));
  store_.SetValue(d1, db_.dept_name, Value::Str("A"));
  Oid d2 = store_.Create(db_.department);
  store_.SetValue(d2, db_.dept_floor, Value::Int(3));
  store_.SetValue(d2, db_.dept_name, Value::Str("B"));
  Oid d3 = store_.Create(db_.department);
  store_.SetValue(d3, db_.dept_floor, Value::Int(5));
  store_.SetValue(d3, db_.dept_name, Value::Str("C"));

  BindingId a = ctx_.bindings.AddGet("a", db_.department);
  BindingId b = ctx_.bindings.AddGet("b", db_.department);
  PhysicalOp join;
  join.kind = PhysOpKind::kHybridHashJoin;
  join.pred = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Attr(a, db_.dept_floor),
                              ScalarExpr::Attr(b, db_.dept_floor));
  BindingSet scope = BindingSet::Of(a);
  scope.Add(b);
  PlanNodePtr plan =
      Node(join,
           {Scan(CollectionId::Extent(db_.department), a),
            Scan(CollectionId::Extent(db_.department), b)},
           scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Floor 3: 2x2 pairs; floor 5: 1x1.
  EXPECT_EQ(stats->rows, 5);
}

TEST_F(OperatorTest, HashJoinEmptyBuildSide) {
  BindingId n = ctx_.bindings.AddGet("n", db_.country);  // empty extent
  Oid d = store_.Create(db_.department);
  store_.SetValue(d, db_.dept_floor, Value::Int(1));
  BindingId b = ctx_.bindings.AddGet("b", db_.department);
  PhysicalOp join;
  join.kind = PhysOpKind::kHybridHashJoin;
  join.pred = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Attr(n, db_.country_name),
                              ScalarExpr::Attr(b, db_.dept_name));
  BindingSet scope = BindingSet::Of(n);
  scope.Add(b);
  PlanNodePtr plan = Node(join,
                          {Scan(CollectionId::Extent(db_.country), n),
                           Scan(CollectionId::Extent(db_.department), b)},
                          scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 0);
}

TEST_F(OperatorTest, MultiStepAssemblyLoadsChain) {
  // employee -> dept -> plant in ONE assembly operator (Figure 7 shape).
  Oid plant = store_.Create(db_.plant);
  store_.SetValue(plant, db_.plant_location, Value::Str("Dallas"));
  Oid dept = store_.Create(db_.department);
  store_.SetRef(dept, db_.dept_plant, plant);
  Oid emp = store_.Create(db_.employee);
  store_.SetRef(emp, db_.emp_dept, dept);

  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  BindingId p = ctx_.bindings.AddMat("e.dept.plant", db_.plant, d, db_.dept_plant);

  PhysicalOp assembly;
  assembly.kind = PhysOpKind::kAssembly;
  assembly.mats = {MatStep{e, db_.emp_dept, d}, MatStep{d, db_.dept_plant, p}};
  BindingSet scope = BindingSet::Of(e);
  scope.Add(d);
  scope.Add(p);
  PlanNodePtr asm_node =
      Node(assembly, {Scan(CollectionId::Extent(db_.employee), e)}, scope);

  PhysicalOp filter;
  filter.kind = PhysOpKind::kFilter;
  filter.pred = ScalarExpr::AttrEqStr(p, db_.plant_location, "Dallas");
  PlanNodePtr plan = Node(filter, {asm_node}, scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 1);
}

TEST_F(OperatorTest, AssemblyDropsDanglingReferences) {
  Oid dept = store_.Create(db_.department);
  Oid good = store_.Create(db_.employee);
  store_.SetRef(good, db_.emp_dept, dept);
  Oid dangling = store_.Create(db_.employee);
  store_.SetRef(dangling, db_.emp_dept, kInvalidOid);

  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  PhysicalOp assembly;
  assembly.kind = PhysOpKind::kAssembly;
  assembly.mats = {MatStep{e, db_.emp_dept, d}};
  BindingSet scope = BindingSet::Of(e);
  scope.Add(d);
  PlanNodePtr plan =
      Node(assembly, {Scan(CollectionId::Extent(db_.employee), e)}, scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 1);  // the dangling tuple is dropped (join semantics)
}

TEST_F(OperatorTest, PointerJoinDropsDanglingReferences) {
  Oid dept = store_.Create(db_.department);
  Oid good = store_.Create(db_.employee);
  store_.SetRef(good, db_.emp_dept, dept);
  Oid dangling = store_.Create(db_.employee);
  store_.SetRef(dangling, db_.emp_dept, kInvalidOid);

  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  PhysicalOp pj;
  pj.kind = PhysOpKind::kPointerJoin;
  pj.pred = ScalarExpr::RefEq(e, db_.emp_dept, d);
  pj.mats = {MatStep{e, db_.emp_dept, d}};
  BindingSet scope = BindingSet::Of(e);
  scope.Add(d);
  PlanNodePtr plan =
      Node(pj, {Scan(CollectionId::Extent(db_.employee), e)}, scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 1);
}

TEST_F(OperatorTest, WarmStartAssemblyMatchesPlain) {
  for (int i = 0; i < 30; ++i) {
    Oid dept = store_.Create(db_.department);
    Oid emp = store_.Create(db_.employee);
    store_.SetRef(emp, db_.emp_dept, dept);
  }
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  BindingSet scope = BindingSet::Of(e);
  scope.Add(d);
  auto run = [&](bool warm) {
    PhysicalOp assembly;
    assembly.kind = PhysOpKind::kAssembly;
    assembly.mats = {MatStep{e, db_.emp_dept, d}};
    assembly.warm_start = warm;
    PlanNodePtr plan =
        Node(assembly, {Scan(CollectionId::Extent(db_.employee), e)}, scope);
    auto stats = Run(plan);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows : -1;
  };
  EXPECT_EQ(run(false), 30);
  EXPECT_EQ(run(true), 30);
}

TEST_F(OperatorTest, NestedLoopsCartesianCount) {
  for (int i = 0; i < 3; ++i) store_.Create(db_.department);
  for (int i = 0; i < 4; ++i) store_.Create(db_.job);
  BindingId a = ctx_.bindings.AddGet("a", db_.department);
  BindingId b = ctx_.bindings.AddGet("b", db_.job);
  PhysicalOp nl;
  nl.kind = PhysOpKind::kNestedLoops;
  nl.pred = ScalarExpr::Const(Value::Int(1));
  BindingSet scope = BindingSet::Of(a);
  scope.Add(b);
  PlanNodePtr plan = Node(nl,
                          {Scan(CollectionId::Extent(db_.department), a),
                           Scan(CollectionId::Extent(db_.job), b)},
                          scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 12);
}

TEST_F(OperatorTest, SortStableAndOrdered) {
  int64_t ages[] = {40, 20, 30, 20, 50};
  for (int64_t age : ages) {
    Oid p = store_.Create(db_.person);
    store_.SetValue(p, db_.person_age, Value::Int(age));
  }
  BindingId p = ctx_.bindings.AddGet("p", db_.person);
  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec{p, db_.person_age};
  PlanNodePtr plan =
      Node(sort, {Scan(CollectionId::Extent(db_.person), p)},
           BindingSet::Of(p));
  // Wrap with a projection so rows are extracted.
  PhysicalOp proj;
  proj.kind = PhysOpKind::kAlgProject;
  proj.emit = {ScalarExpr::Attr(p, db_.person_age)};
  PlanNodePtr root = Node(proj, {plan}, BindingSet::Of(p));
  auto stats = Run(root);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->rows, 5);
  std::vector<int64_t> got;
  for (const auto& row : stats->sample_rows) got.push_back(row[0].i);
  EXPECT_EQ(got, (std::vector<int64_t>{20, 20, 30, 40, 50}));
}

TEST_F(OperatorTest, MergeJoinEqualKeyRuns) {
  // Left: ages {20, 20, 30}; Right: ages {20, 30, 30}. Join on equality:
  // 2*1 + 1*2 = 4 matches. Inputs pre-sorted via Sort operators.
  int64_t left_ages[] = {20, 20, 30};
  for (int64_t age : left_ages) {
    Oid p = store_.Create(db_.person);
    store_.SetValue(p, db_.person_age, Value::Int(age));
  }
  int64_t right_ages[] = {20, 30, 30};
  for (int64_t age : right_ages) {
    Oid e = store_.Create(db_.employee);
    store_.SetValue(e, db_.emp_age, Value::Int(age));
  }
  BindingId p = ctx_.bindings.AddGet("p", db_.person);
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);

  PhysicalOp sort_left;
  sort_left.kind = PhysOpKind::kSort;
  sort_left.sort = SortSpec{p, db_.person_age};
  PlanNodePtr left = Node(sort_left, {Scan(CollectionId::Extent(db_.person), p)},
                          BindingSet::Of(p));
  PhysicalOp sort_right;
  sort_right.kind = PhysOpKind::kSort;
  sort_right.sort = SortSpec{e, db_.emp_age};
  PlanNodePtr right = Node(
      sort_right, {Scan(CollectionId::Extent(db_.employee), e)},
      BindingSet::Of(e));

  PhysicalOp merge;
  merge.kind = PhysOpKind::kMergeJoin;
  merge.pred = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Attr(p, db_.person_age),
                               ScalarExpr::Attr(e, db_.emp_age));
  BindingSet scope = BindingSet::Of(p);
  scope.Add(e);
  PlanNodePtr plan = Node(merge, {left, right}, scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 4);
}

TEST_F(OperatorTest, HashUnionDeduplicates) {
  for (int i = 0; i < 4; ++i) store_.Create(db_.job);
  BindingId j = ctx_.bindings.AddGet("j", db_.job);
  PlanNodePtr scan1 = Scan(CollectionId::Extent(db_.job), j);
  PlanNodePtr scan2 = Scan(CollectionId::Extent(db_.job), j);
  PhysicalOp u;
  u.kind = PhysOpKind::kHashUnion;
  PlanNodePtr plan = Node(u, {scan1, scan2}, BindingSet::Of(j));
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 4);  // identical inputs: union is a set
}

TEST_F(OperatorTest, UnnestEmptySetProducesNothing) {
  Oid t = store_.Create(db_.task);  // no team members added
  (void)t;
  BindingId tb = ctx_.bindings.AddGet("t", db_.task);
  BindingId m = ctx_.bindings.AddUnnest("m", db_.employee, tb,
                                        db_.task_team_members);
  PhysicalOp unnest;
  unnest.kind = PhysOpKind::kAlgUnnest;
  unnest.source = tb;
  unnest.field = db_.task_team_members;
  unnest.target = m;
  BindingSet scope = BindingSet::Of(tb);
  scope.Add(m);
  PlanNodePtr plan =
      Node(unnest, {Scan(CollectionId::Extent(db_.task), tb)}, scope);
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 0);
}

TEST_F(OperatorTest, IndexScanResidualFilters) {
  for (int i = 0; i < 10; ++i) {
    Oid t = store_.Create(db_.task);
    store_.SetValue(t, db_.task_time, Value::Int(5));
    store_.SetValue(t, db_.task_name,
                    Value::Str(i % 2 == 0 ? "keep" : "drop"));
    ASSERT_TRUE(store_.AddToSet("Tasks", t).ok());
  }
  ASSERT_TRUE(store_.AddToSet("Cities", store_.Create(db_.city)).ok());
  ASSERT_TRUE(store_.BuildIndexes().ok());

  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  PhysicalOp scan;
  scan.kind = PhysOpKind::kIndexScan;
  scan.coll = CollectionId::Set("Tasks", db_.task);
  scan.binding = t;
  scan.index_name = kIdxTasksTime;
  scan.index_pred = ScalarExpr::AttrEqInt(t, db_.task_time, 5);
  scan.pred = ScalarExpr::AttrEqStr(t, db_.task_name, "keep");
  LogicalProps props;
  props.scope = BindingSet::Of(t);
  PhysProps delivered;
  delivered.in_memory = BindingSet::Of(t);
  PlanNodePtr plan = PlanNode::Make(scan, {}, props, delivered, Cost{});
  auto stats = Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 5);
}

}  // namespace
}  // namespace oodb
