#include "src/session.h"

#include <algorithm>

#include "src/baseline/greedy.h"
#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/query/fingerprint.h"
#include "src/trace/exec_profile.h"
#include "src/verify/verify.h"

namespace oodb {

namespace {

/// Session counters, resolved once (registered metrics are never
/// deallocated, so the cached pointers outlive every session).
struct SessionMetrics {
  Counter* prepares;
  Counter* queries;
  Counter* analyzes;
  Counter* degraded;
  Counter* cache_served;

  static const SessionMetrics& Get() {
    static const SessionMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SessionMetrics m;
      m.prepares = r.counter("oodb_session_prepares_total",
                             "Statements parsed and optimized.");
      m.queries = r.counter("oodb_session_queries_total",
                            "Statements executed to completion.");
      m.analyzes = r.counter("oodb_session_analyze_total",
                             "EXPLAIN ANALYZE renderings.");
      m.degraded = r.counter(
          "oodb_session_degraded_total",
          "Governor-tripped searches answered by the greedy baseline.");
      m.cache_served = r.counter("oodb_session_plan_cache_served_total",
                                 "Prepares answered from the plan cache.");
      return m;
    }();
    return m;
  }
};

/// True when a governor trip during *planning* may be answered with the
/// greedy baseline instead of an error: the search ran out of budget or
/// time, but the query itself is fine. Cancellation and storage faults are
/// never degraded — the caller asked to stop, or the data is unreadable.
bool DegradableTrip(StatusCode code) {
  return code == StatusCode::kBudgetExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// Maximum Exchange degree of parallelism anywhere in the plan (1 = serial).
int PlanMaxDop(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
  for (const PlanNodePtr& c : node.children) {
    dop = std::max(dop, PlanMaxDop(*c));
  }
  return dop;
}

}  // namespace

PlanCache* Session::plan_cache() {
  if (options_.plan_cache != nullptr) return options_.plan_cache.get();
  if (options_.optimizer.plan_cache_capacity == 0) return nullptr;
  if (own_cache_ == nullptr) {
    own_cache_ =
        std::make_shared<PlanCache>(options_.optimizer.plan_cache_capacity);
  }
  return own_cache_.get();
}

Result<OptimizedQuery> Session::RunOptimizer(const LogicalExpr& input,
                                             QueryContext* ctx,
                                             const PhysProps& required) {
  OptimizerOptions opts = options_.optimizer;
  opts.governor = governor_.get();
  Optimizer optimizer(catalog_, std::move(opts));
  Result<OptimizedQuery> optimized = optimizer.Optimize(input, ctx, required);
  if (optimized.ok() || governor_ == nullptr) return optimized;
  const Status& err = optimized.status();
  if (!DegradableTrip(err.code()) || !options_.governor.degrade_to_greedy) {
    return optimized;
  }
  // Graceful degradation: answer with the greedy baseline plan. If even the
  // greedy planner cannot handle the query (explicit joins, its own error),
  // surface the original governor trip, not the fallback's complaint.
  GreedyOptimizer greedy(catalog_, options_.optimizer.cost);
  Result<OptimizedQuery> fallback = greedy.Optimize(input, ctx);
  if (!fallback.ok()) return err;
  fallback->stats.degraded = true;
  fallback->stats.degrade_reason = err.message();
  fallback->stats.governor = governor_->stats();
  if (options_.optimizer.verify_plans && fallback->plan != nullptr) {
    // The greedy path bypasses the optimizer's verification hook; hold its
    // plan to the same standard (this is exactly how the greedy planner's
    // projection-scope bug was found).
    fallback->stats.verified = true;
    fallback->stats.verify_error =
        VerifyPlanReport(*fallback->plan, *ctx).ToString();
  }
  // The tripped governor is sticky; re-arm a fresh one (fresh deadline and
  // budgets) so the degraded plan gets a real chance to execute.
  governor_ = std::make_unique<QueryGovernor>(options_.governor);
  return fallback;
}

Result<SessionResult> Session::Prepare(const std::string& zql) {
  SessionMetrics::Get().prepares->Increment();
  if (options_.governor.enabled()) {
    // Arm a fresh governor per query; the deadline spans optimization and,
    // when called from Query, execution of this statement.
    governor_ = std::make_unique<QueryGovernor>(options_.governor);
  } else {
    governor_.reset();
  }

  SessionResult out;
  out.ctx.catalog = catalog_;
  SortSpec order;
  OODB_ASSIGN_OR_RETURN(out.logical, ParseAndSimplify(zql, &out.ctx, &order));
  PhysProps required;
  required.sort = order;

  PlanCache* cache = plan_cache();
  if (cache == nullptr) {
    // Cache off: exactly the seed optimization path.
    OODB_ASSIGN_OR_RETURN(out.optimized,
                          RunOptimizer(*out.logical, &out.ctx, required));
    if (out.optimized.stats.degraded) {
      SessionMetrics::Get().degraded->Increment();
    }
    return out;
  }

  // Snapshot the version *before* optimizing: if statistics move while we
  // search, the entry is stored under the old version and can never be
  // served after the bump.
  const uint64_t version = catalog_->stats_version();
  QueryFingerprint qfp =
      FingerprintQuery(*out.logical, out.ctx,
                       options_.optimizer.plan_cache_parameterize);
  PlanCacheKey key{qfp.fp, required,
                   HashOptimizerOptions(options_.optimizer)};

  if (std::optional<OptimizedQuery> hit = cache->Lookup(
          key, version, *out.logical, out.ctx.bindings, qfp.literals)) {
    out.optimized = std::move(*hit);
    out.optimized.stats.plan_cached = true;
  } else {
    OODB_ASSIGN_OR_RETURN(out.optimized,
                          RunOptimizer(*out.logical, &out.ctx, required));
    if (!out.optimized.stats.degraded &&
        out.optimized.stats.verify_error.empty()) {
      // Degraded plans are a stopgap for *this* statement's exhausted
      // budget; caching one would keep serving the inferior plan to
      // fully-budgeted callers. Plans the verifier flagged are never
      // cached either: a corrupt plan served from cache would outlive the
      // statement that exposed the bug.
      auto entry = std::make_shared<CachedPlan>();
      entry->plan = out.optimized.plan;
      entry->cost = out.optimized.cost;
      entry->stats = out.optimized.stats;
      entry->stats_version = version;
      entry->tree = out.logical;
      entry->bindings = out.ctx.bindings;
      entry->literals = std::move(qfp.literals);
      cache->Insert(key, std::move(entry));
    }
  }
  PlanCacheStats cs = cache->stats();
  out.optimized.stats.cache_hits = cs.hits;
  out.optimized.stats.cache_misses = cs.misses;
  out.optimized.stats.cache_evictions = cs.evictions;
  out.optimized.stats.cache_invalidations = cs.invalidations;
  if (out.optimized.stats.plan_cached) {
    SessionMetrics::Get().cache_served->Increment();
  }
  if (out.optimized.stats.degraded) {
    SessionMetrics::Get().degraded->Increment();
  }
  return out;
}

Result<SessionResult> Session::Query(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult out, Prepare(zql));
  SessionMetrics::Get().queries->Increment();
  ExecOptions exec = options_.exec;
  exec.governor = governor_.get();  // same governor: deadline spans both
  OODB_ASSIGN_OR_RETURN(
      out.exec, ExecutePlan(*out.optimized.plan, &store_, &out.ctx, exec));
  return out;
}

std::string Session::ExplainHeader(const SessionResult& r) {
  std::string out;
  const SearchStats& st = r.optimized.stats;
  if (st.degraded) {
    out += "plan: degraded(greedy, reason=" + st.degrade_reason + ")\n";
  }
  if (st.plan_cached) out += "plan: cached\n";
  if (!st.verify_error.empty()) {
    out += "verify: FAILED\n" + st.verify_error + "\n";
  }
  if (plan_cache() != nullptr) {
    out += "plan cache: hits=" + std::to_string(st.cache_hits) +
           " misses=" + std::to_string(st.cache_misses) +
           " evictions=" + std::to_string(st.cache_evictions) +
           " invalidations=" + std::to_string(st.cache_invalidations) + "\n";
  }
  if (governor_ != nullptr) {
    const GovernorStats& g = st.governor;
    out += "governor: trips=" + std::to_string(g.trips()) +
           " deadline=" + std::to_string(g.deadline_trips) +
           " budget=" + std::to_string(g.budget_trips) +
           " cancel=" + std::to_string(g.cancel_trips) +
           " alternatives=" + std::to_string(g.alternatives_charged) + "\n";
  }
  int dop = PlanMaxDop(*r.optimized.plan);
  if (dop > 1) {
    int batch = options_.exec.batch_size > 0
                    ? options_.exec.batch_size
                    : std::max(1, store_.timing().exec_batch_size);
    out += "exec: batch=" + std::to_string(batch) +
           " dop=" + std::to_string(dop) + "\n";
  }
  return out;
}

Result<std::string> Session::Explain(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult r, Prepare(zql));
  return ExplainHeader(r) +
         PrintPlan(*r.optimized.plan, r.ctx, /*with_costs=*/true);
}

Result<std::string> Session::ExplainAnalyze(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult r, Prepare(zql));
  SessionMetrics::Get().analyzes->Increment();
  // Caller-owned profile: if execution fails mid-plan (governor trip,
  // injected fault), ExecutePlan returns only the error Status, but the
  // operators already recorded into this collector — render what ran.
  ExecProfile profile;
  ExecOptions exec = options_.exec;
  exec.governor = governor_.get();
  exec.profile = &profile;
  Result<ExecStats> stats =
      ExecutePlan(*r.optimized.plan, &store_, &r.ctx, exec);

  std::string out = ExplainHeader(r);
  if (!stats.ok()) {
    out += "exec: FAILED(" + stats.status().ToString() + ")";
    if (governor_ != nullptr) {
      // ExecutePlan only returns a Status on failure; the live governor
      // still knows what the partial run charged.
      const GovernorStats g = governor_->stats();
      out += " governor_rows=" + std::to_string(g.rows_charged) +
             " governor_pages=" + std::to_string(g.pages_charged);
    }
    out += "\n";
  }
  out += RenderAnalyzedPlan(*r.optimized.plan, r.ctx, profile);
  if (stats.ok()) {
    out += "analyzed: rows=" + std::to_string(stats->rows) +
           " sim_io=" + FormatDouble(stats->sim_io_s, 6) +
           "s sim_cpu=" + FormatDouble(stats->sim_cpu_s, 6) +
           "s pages=" + std::to_string(stats->pages_read) +
           " max_drift=" +
           FormatDouble(MaxDriftRatio(*r.optimized.plan, profile), 2) + "x";
    if (governor_ != nullptr) {
      out += " governor_rows=" + std::to_string(stats->governor.rows_charged) +
             " governor_pages=" +
             std::to_string(stats->governor.pages_charged);
    }
    out += "\n";
  }
  return out;
}

}  // namespace oodb
