file(REMOVE_RECURSE
  "CMakeFiles/example_extend_optimizer.dir/extend_optimizer.cpp.o"
  "CMakeFiles/example_extend_optimizer.dir/extend_optimizer.cpp.o.d"
  "example_extend_optimizer"
  "example_extend_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_extend_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
