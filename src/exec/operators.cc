#include "src/exec/operators.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/exec/exchange.h"
#include "src/trace/exec_profile.h"
#include "src/verify/verify.h"

namespace oodb {

namespace {

// ---------------------------------------------------------------------------
// File Scan
// ---------------------------------------------------------------------------
class FileScanExec : public ExecNode {
 public:
  /// A specialized `filter` (with `fused_pred` keeping its constants alive
  /// and `conjuncts` counting its terms for cost charging) runs inside the
  /// scan loop: objects are tested straight off the storage pointer and
  /// rejected rows are never materialized into the batch — no slot writes,
  /// no separate filter pass, no compaction. Sim-clock charges are the same
  /// as a scan feeding a FilterExec, so only wall time changes.
  FileScanExec(ExecEnv env, const PhysicalOp& op, bool partitioned,
               FilterProgram filter = FilterProgram(),
               ScalarExprPtr fused_pred = nullptr, double conjuncts = 0)
      : env_(env), op_(op), partitioned_(partitioned),
        filter_(std::move(filter)), fused_pred_(std::move(fused_pred)),
        conjuncts_(conjuncts) {}

  Status Open() override {
    OODB_ASSIGN_OR_RETURN(members_, env_.store->CollectionMembers(op_.coll));
    // Contiguous chunk per worker: members are in page order, so chunking
    // preserves the long same-page runs ReadMany batches into single
    // buffer accesses (a round-robin stride would cut every run by the
    // worker count).
    pos_ = 0;
    end_ = members_->size();
    if (partitioned_) {
      size_t w = static_cast<size_t>(env_.partition_index);
      size_t k = static_cast<size_t>(env_.partition_count);
      pos_ = end_ * w / k;
      end_ = end_ * (w + 1) / k;
    }
    // Columnar lowering of the fused filter: each conjunct runs as one
    // branchless compare-and-select pass over the store's dense by-OID
    // projection of its field, so rejected rows cost one indexed load + one
    // compare instead of a per-object pointer chase through EvalSteps.
    // I/O is untouched — the batch still reads every member through
    // ReadMany, charging the same page runs — and survivors append exactly
    // as before, so vectorize on/off differ in wall clock only.
    if (env_.vectorize && filter_.specialized()) {
      projs_ = filter_.StepProjections(env_.store, *env_.ctx);
      vectorized_ = filter_.Vectorizable(projs_);
    }
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    const bool fused = filter_.specialized();
    double cpu = 0.0;
    // Resolve OIDs in scan order with one batched storage call per chunk:
    // the chunk is a contiguous slice of the member vector (no gather
    // copy), and members are in page order, so ReadMany charges one buffer
    // access per page run instead of one per object. With a fused filter
    // the loop keeps refilling until the batch is full or the chunk ends,
    // so callers never see a pre-EOS empty batch.
    while (!out->full() && pos_ < end_) {
      size_t want = out->capacity() - out->size();
      size_t n = std::min(want, end_ - pos_);
      const Oid* oids = members_->data() + pos_;
      pos_ += n;
      scratch_objs_.resize(n);
      OODB_RETURN_IF_ERROR(env_.store->ReadMany(oids, n, scratch_objs_.data()));
      cpu += static_cast<double>(n) *
             (env_.timing().cpu_scan_tuple_s +
              conjuncts_ * env_.timing().cpu_pred_s);
      if (vectorized_) {
        scratch_sel_.resize(n);
        size_t cnt =
            filter_.ScanSelect(oids, n, projs_,
                               scratch_sel_.data());
        for (size_t k = 0; k < cnt; ++k) {
          size_t i = scratch_sel_[k];
          out->AppendRow().slot(op_.binding) = {oids[i], scratch_objs_[i]};
        }
        continue;
      }
      for (size_t i = 0; i < n; ++i) {
        if (fused) {
          // The batch gather exposes upcoming objects' pointers well in
          // advance; request row i+16's predicate fields now so their miss
          // resolves before its conjuncts run.
          if (i + 16 < n) filter_.PrefetchFields(*scratch_objs_[i + 16]);
          if (!filter_.EvalSteps(*scratch_objs_[i])) continue;
        }
        out->AppendRow().slot(op_.binding) = {oids[i], scratch_objs_[i]};
      }
    }
    env_.clock().cpu_s += cpu;
    return out->size();
  }

  void Close() override {}

 private:
  ExecEnv env_;
  PhysicalOp op_;
  bool partitioned_;
  FilterProgram filter_;
  ScalarExprPtr fused_pred_;
  double conjuncts_;
  const std::vector<Oid>* members_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;
  std::vector<const ObjectData*> scratch_objs_;
  // Columnar fused-filter state (vectorize on, every step projectable).
  bool vectorized_ = false;
  std::vector<const ColumnProjection*> projs_;
  std::vector<uint16_t> scratch_sel_;
};

// ---------------------------------------------------------------------------
// Index Scan
// ---------------------------------------------------------------------------
class IndexScanExec : public ExecNode {
 public:
  IndexScanExec(ExecEnv env, const PhysicalOp& op, bool partitioned)
      : env_(env), op_(op), partitioned_(partitioned) {}

  Status Open() override {
    OODB_ASSIGN_OR_RETURN(const StoredIndex* idx,
                          env_.store->FindIndex(op_.index_name));
    // Extract the comparison and key constant from the key conjunct,
    // normalizing to attr-op-constant orientation.
    const ScalarExpr& key = *op_.index_pred;
    const ScalarExprPtr& l = key.children()[0];
    const ScalarExprPtr& r = key.children()[1];
    bool const_on_left = l->kind() == ScalarExpr::Kind::kConst;
    const Value& v = const_on_left ? l->value() : r->value();
    CmpOp cmp = const_on_left ? ReverseCmp(key.cmp_op()) : key.cmp_op();
    matches_ = idx->Scan(cmp, v);
    pos_ = 0;
    end_ = matches_.size();
    if (partitioned_) {
      size_t w = static_cast<size_t>(env_.partition_index);
      size_t k = static_cast<size_t>(env_.partition_count);
      pos_ = end_ * w / k;
      end_ = end_ * (w + 1) / k;
    }
    // Charge leaf traversal for this scan's slice only: under Exchange each
    // of the k workers opens its own copy of the index scan, and charging
    // the full match count from every worker would bill the leaf CPU k
    // times for the same logical index read once the private clocks merge
    // at join. The per-worker probe (root descent) is real work each worker
    // does; the disjoint [pos_, end_) slices sum to exactly the serial leaf
    // charge.
    env_.clock().cpu_s += env_.timing().index_probe_s +
                          static_cast<double>(end_ - pos_) *
                              env_.timing().index_leaf_s;
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    double cpu = 0.0;
    while (!out->full() && pos_ < end_) {
      Oid oid = matches_[pos_++];
      OODB_ASSIGN_OR_RETURN(const ObjectData* obj, env_.store->Read(oid));
      TupleRow row = out->AppendRow();
      row.slot(op_.binding) = {oid, obj};
      if (op_.pred) {
        cpu += env_.timing().cpu_pred_s;
        OODB_ASSIGN_OR_RETURN(bool pass,
                              EvalPredicate(op_.pred, row, *env_.ctx));
        if (!pass) out->Truncate(out->size() - 1);
      }
    }
    env_.clock().cpu_s += cpu;
    // A fully filtered batch must not read as EOS: keep pulling.
    if (out->empty() && pos_ < end_) return Next(out);
    return out->size();
  }

  void Close() override {}

 private:
  ExecEnv env_;
  PhysicalOp op_;
  bool partitioned_;
  std::vector<Oid> matches_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

// ---------------------------------------------------------------------------
// Filter: pulls child batches into `out` and compacts passing rows in place.
// ---------------------------------------------------------------------------
class FilterExec : public ExecNode {
 public:
  FilterExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)),
        conjuncts_(static_cast<double>(
            ScalarExpr::SplitConjuncts(op_.pred).size())) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    // Kernel path: batches big enough to amortize predicate analysis run
    // the compiled attr-cmp-const steps; small batches (and predicates the
    // analyzer can't specialize) stay on the interpreter.
    bool kernel = out->capacity() >= FilterProgram::kMinKernelRows;
    if (kernel && !analyzed_) {
      program_ = FilterProgram::Analyze(op_.pred);
      analyzed_ = true;
    }
    kernel = kernel && program_.specialized();
    if (env_.vectorize) return NextVectorized(out, kernel);
    while (true) {
      OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(out));
      if (n == 0) return 0;
      env_.clock().cpu_s +=
          conjuncts_ * env_.timing().cpu_pred_s * static_cast<double>(n);
      size_t kept = 0;
      if (kernel) {
        OODB_ASSIGN_OR_RETURN(kept, program_.EvalBatch(out, n, *env_.ctx));
      } else {
        for (size_t i = 0; i < n; ++i) {
          OODB_ASSIGN_OR_RETURN(
              bool pass, EvalPredicate(op_.pred, out->ref(i), *env_.ctx));
          if (!pass) continue;
          if (i != kept) out->CopyRow(kept, i);
          ++kept;
        }
        out->Truncate(kept);
      }
      if (kept > 0) return kept;  // never a pre-EOS empty batch
    }
  }

  /// Columnar mode: survivors are *marked* in the batch's selection vector
  /// instead of being moved — each conjunct is one branchless kernel pass
  /// over an extracted typed column, and physical compaction is deferred to
  /// whoever actually needs contiguous rows (pipeline breakers, Exchange).
  /// Falls back to per-row evaluation — still selection-marking, so
  /// downstream sees one shape — when the batch is too small to amortize
  /// extraction (vector_extract_min_rows), when a column can't be typed, or
  /// when the predicate didn't specialize.
  Result<size_t> NextVectorized(TupleBatch* out, bool kernel) {
    if (kernel && !projs_ready_) {
      projs_ = program_.StepProjections(env_.store, *env_.ctx);
      projs_ready_ = true;
    }
    const size_t min_rows = static_cast<size_t>(
        std::max(1, env_.timing().vector_extract_min_rows));
    while (true) {
      OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(out));
      if (n == 0) return 0;
      env_.clock().cpu_s +=
          conjuncts_ * env_.timing().cpu_pred_s * static_cast<double>(n);
      if (kernel && n >= min_rows) {
        OODB_ASSIGN_OR_RETURN(
            bool ran, program_.EvalBatchColumnar(out, projs_, *env_.ctx));
        if (ran) {
          if (out->active() > 0) return out->active();
          continue;  // all rows filtered: pull the next child batch
        }
      }
      // Per-row fallback, refining the selection in place (writes trail
      // reads, and surviving indices stay ascending).
      const bool had_sel = out->has_selection();
      uint16_t* sel = out->MutableSelection();
      size_t kept = 0;
      for (size_t k = 0; k < n; ++k) {
        size_t i = had_sel ? sel[k] : k;
        bool pass;
        if (kernel) {
          OODB_ASSIGN_OR_RETURN(pass, program_.Eval(out->ref(i), *env_.ctx));
        } else {
          OODB_ASSIGN_OR_RETURN(
              pass, EvalPredicate(op_.pred, out->ref(i), *env_.ctx));
        }
        if (pass) sel[kept++] = static_cast<uint16_t>(i);
      }
      out->SetSelection(kept);
      if (kept > 0) return kept;
    }
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  double conjuncts_;
  FilterProgram program_;
  bool analyzed_ = false;
  // Columnar mode: per-step store projections, resolved once (lazily, so
  // non-vectorized runs never touch the projection cache).
  bool projs_ready_ = false;
  std::vector<const ColumnProjection*> projs_;
};

// ---------------------------------------------------------------------------
// Hybrid Hash Join (build on the left input)
// ---------------------------------------------------------------------------
class HashJoinExec : public ExecNode {
 public:
  HashJoinExec(ExecEnv env, const PhysicalOp& op, BindingSet left_scope,
               std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_scope_(left_scope), left_(std::move(left)),
        right_(std::move(right)),
        probe_batch_(env_.num_bindings(), env_.batch_size) {
    // Split each equality conjunct into (build-side expr, probe-side expr).
    for (const ScalarExprPtr& c : ScalarExpr::SplitConjuncts(op_.pred)) {
      const ScalarExprPtr& l = c->children()[0];
      const ScalarExprPtr& r = c->children()[1];
      if (left_scope_.ContainsAll(l->ReferencedBindings())) {
        build_keys_.push_back(l);
        probe_keys_.push_back(r);
      } else {
        build_keys_.push_back(r);
        probe_keys_.push_back(l);
      }
    }
    // Single-key joins get a direct probe extractor: the two shapes the
    // simplified algebra produces are b.f (attr) and b (identity).
    if (probe_keys_.size() == 1) {
      const ScalarExpr& p = *probe_keys_[0];
      if (p.kind() == ScalarExpr::Kind::kAttr) {
        probe_kind_ = ProbeKind::kAttrField;
        probe_binding_ = p.binding();
        probe_field_ = p.field();
      } else if (p.kind() == ScalarExpr::Kind::kSelf) {
        probe_kind_ = ProbeKind::kSelfRef;
        probe_binding_ = p.binding();
      }
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    BatchReader reader(left_.get(), env_.num_bindings(), env_.batch_size);
    TupleRef t;
    // Single-key build sides are buffered with their key Values first; if
    // every key is numerically integral the table is rebuilt as an
    // open-addressing int64 map (no per-probe string materialization).
    // KeyString() gives ints and integral doubles the same encoding and
    // null/string keys distinct prefixes, so the int table preserves the
    // string table's match semantics exactly.
    bool single = build_keys_.size() == 1;
    bool all_int = single;
    build_width_ = static_cast<size_t>(env_.num_bindings());
    std::vector<Value> vals;
    while (true) {
      // Single-key rows are buffered straight off the child batch view into
      // one contiguous slot arena — one width-sized copy, zero per-row
      // allocations (an owning Tuple per row costs a heap block each; see
      // DESIGN "Columnar execution" for the measured build-side effect).
      OODB_ASSIGN_OR_RETURN(bool more, reader.NextRef(&t));
      if (!more) break;
      if (single) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*build_keys_[0], t, *env_.ctx));
        env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
        OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
        int64_t unused;
        all_int = all_int && AsIntKey(v, &unused);
        vals.push_back(std::move(v));
        build_slots_.insert(build_slots_.end(), t.slots,
                            t.slots + build_width_);
      } else {
        OODB_ASSIGN_OR_RETURN(std::string key, KeyOf(build_keys_, t));
        env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
        OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
        table_[key].emplace_back(t);
      }
    }
    left_->Close();
    if (single) {
      const size_t nrows = vals.size();
      if (all_int) {
        size_t cap = 16;
        while (cap * 7 < nrows * 10 + 10) cap <<= 1;  // load <= ~0.7
        int_keys_.assign(cap, 0);
        int_slot_.assign(cap, -1);
        int_mask_ = cap - 1;
        build_next_.assign(nrows, -1);
        // Rows of one key form a head/next chain through the arena instead
        // of a per-bucket vector. Inserting in reverse build order makes
        // each head-prepend leave the chain in forward build order, so the
        // drain emits matches in exactly the old bucket order.
        for (size_t r = nrows; r > 0; --r) {
          size_t i = r - 1;
          int64_t k = 0;
          AsIntKey(vals[i], &k);
          size_t pos = IntHash(k) & int_mask_;
          while (int_slot_[pos] != -1 && int_keys_[pos] != k) {
            pos = (pos + 1) & int_mask_;
          }
          build_next_[i] = int_slot_[pos];
          int_slot_[pos] = static_cast<int32_t>(i);
          int_keys_[pos] = k;
        }
        int_mode_ = true;
      } else {
        for (size_t r = 0; r < nrows; ++r) {
          table_[vals[r].KeyString() + "|"].push_back(
              Tuple(ArenaRef(static_cast<int32_t>(r))));
        }
      }
    }
    // Vectorized probe: per refilled batch, gather the key column, hash
    // every live probe row, and resolve its bucket up front — the march
    // loop then walks a precomputed pointer array. Direct-extractor shapes
    // only; the generic evaluator stays per-row.
    if (env_.vectorize && int_mode_ && probe_kind_ != ProbeKind::kGeneric) {
      vectorized_probe_ = true;
      if (probe_kind_ == ProbeKind::kAttrField) {
        probe_proj_ = env_.store->Projection(
            env_.ctx->bindings.def(probe_binding_).type, probe_field_);
      }
    }
    return right_->Open();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    double cpu = 0.0;
    const size_t out_width = static_cast<size_t>(out->width());
    while (!out->full()) {
      // Drain pending matches of the current probe row first — also the
      // resume point when the previous call filled up mid-bucket.
      if (build_row_ >= 0) {
        // Int mode: walk the arena chain. Arena rows span every binding,
        // so the CopyFrom overwrites the whole row and the AppendRow clear
        // is redundant.
        while (build_row_ >= 0 && !out->full()) {
          TupleRef bt = ArenaRef(build_row_);
          TupleRow row = bt.width >= out_width ? out->AppendRowRaw()
                                               : out->AppendRow();
          row.CopyFrom(bt);
          row.MergeFrom(probe_batch_.active_ref(probe_pos_));
          build_row_ = build_next_[static_cast<size_t>(build_row_)];
        }
        if (build_row_ >= 0) break;  // out is full, chain not yet done
        ++probe_pos_;
      } else if (bucket_ != nullptr) {
        const size_t bn = bucket_->size();
        while (bucket_pos_ < bn && !out->full()) {
          const Tuple& bt = (*bucket_)[bucket_pos_++];
          TupleRow row = bt.slots.size() >= out_width ? out->AppendRowRaw()
                                                      : out->AppendRow();
          row.CopyFrom(bt);
          row.MergeFrom(probe_batch_.active_ref(probe_pos_));
        }
        if (bucket_pos_ < bn) break;  // out is full, bucket not yet done
        bucket_ = nullptr;
        ++probe_pos_;
      }
      // probe_pos_ walks the batch's *live* rows (the right child may hand
      // over a selection-marked batch in columnar mode).
      if (probe_pos_ >= probe_batch_.active()) {
        if (probe_eos_) break;
        OODB_ASSIGN_OR_RETURN(size_t n, right_->Next(&probe_batch_));
        probe_pos_ = 0;
        if (n == 0) {
          probe_eos_ = true;
          break;
        }
        if (vectorized_probe_) {
          Status precomputed = PrecomputeBuckets();
          if (!precomputed.ok()) {
            env_.clock().cpu_s += cpu;
            return precomputed;
          }
        }
      }
      // March probe rows until one matches; a miss costs only the probe.
      const size_t pn = probe_batch_.active();
      if (have_buckets_) {
        // Vectorized: chain heads were resolved in one batch pass at
        // refill; the per-row probe charge still lands here, as each row
        // marches.
        while (probe_pos_ < pn) {
          cpu += env_.timing().cpu_hash_probe_s;
          build_row_ = probe_buckets_[probe_pos_];
          if (build_row_ >= 0) break;
          ++probe_pos_;
        }
        continue;
      }
      while (probe_pos_ < pn) {
        cpu += env_.timing().cpu_hash_probe_s;
        if (int_mode_) {
          int64_t k = 0;
          bool have_key = false;
          TupleRef pr = probe_batch_.active_ref(probe_pos_);
          switch (probe_kind_) {
            case ProbeKind::kAttrField: {
              // Same pointer-chase pattern as the fused scan filter: the
              // key field lives in the probe object's own heap block, so
              // request a row 8 ahead before reading this one.
              if (probe_pos_ + 8 < pn) {
                const Slot& pf =
                    probe_batch_.active_ref(probe_pos_ + 8).slot(probe_binding_);
                if (pf.obj != nullptr) {
                  __builtin_prefetch(&pf.obj->value(probe_field_));
                }
              }
              const Slot& s = pr.slot(probe_binding_);
              if (!s.loaded()) {
                env_.clock().cpu_s += cpu;
                return Status::Internal(
                    "attribute read on component not present in memory: " +
                    env_.ctx->bindings.def(probe_binding_).name);
              }
              have_key = AsIntKey(s.obj->value(probe_field_), &k);
              break;
            }
            case ProbeKind::kSelfRef:
              k = pr.slot(probe_binding_).ref;
              have_key = true;
              break;
            case ProbeKind::kGeneric: {
              OODB_ASSIGN_OR_RETURN(Value v,
                                    EvalExpr(*probe_keys_[0], pr, *env_.ctx));
              have_key = AsIntKey(v, &k);
              break;
            }
          }
          build_row_ = have_key ? IntProbe(k) : -1;
          if (build_row_ >= 0) break;
        } else {
          OODB_ASSIGN_OR_RETURN(
              std::string key,
              KeyOf(probe_keys_, probe_batch_.active_ref(probe_pos_)));
          auto it = table_.find(key);
          bucket_ = it == table_.end() ? nullptr : &it->second;
          if (bucket_ != nullptr) {
            bucket_pos_ = 0;
            break;
          }
        }
        ++probe_pos_;
      }
    }
    env_.clock().cpu_s += cpu;
    return out->size();
  }

  void Close() override { right_->Close(); }

 private:
  enum class ProbeKind { kGeneric, kAttrField, kSelfRef };

  Result<std::string> KeyOf(const std::vector<ScalarExprPtr>& exprs,
                            TupleRef t) {
    std::string key;
    for (const ScalarExprPtr& e : exprs) {
      OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, t, *env_.ctx));
      key += v.KeyString();
      key += '|';
    }
    return key;
  }

  /// Numeric join-key normalization: true for ints and integral doubles
  /// (the same values KeyString() encodes as "i<n>").
  static bool AsIntKey(const Value& v, int64_t* out) {
    if (v.kind == Value::Kind::kInt) {
      *out = v.i;
      return true;
    }
    if (v.kind == Value::Kind::kDouble &&
        v.d == static_cast<double>(static_cast<int64_t>(v.d))) {
      *out = static_cast<int64_t>(v.d);
      return true;
    }
    return false;
  }

  static size_t IntHash(int64_t k) {
    uint64_t h = static_cast<uint64_t>(k) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h ^ (h >> 32));
  }

  /// Head row index of key `k`'s chain, or -1 on a miss.
  int32_t IntProbe(int64_t k) const {
    size_t pos = IntHash(k) & int_mask_;
    while (int_slot_[pos] != -1) {
      if (int_keys_[pos] == k) return int_slot_[pos];
      pos = (pos + 1) & int_mask_;
    }
    return -1;
  }

  /// View of arena row `r` (always full binding width).
  TupleRef ArenaRef(int32_t r) const {
    return TupleRef(
        build_slots_.data() + static_cast<size_t>(r) * build_width_,
        build_width_);
  }

  /// Vectorized probe setup, once per refilled probe batch: extract the key
  /// column (one gather pass), then hash and bucket-resolve every live row
  /// with the next lookups' table lines prefetched — the classic
  /// batch-hash + gather-probe split, which overlaps the table's cache
  /// misses instead of serializing them row by row. Leaves have_buckets_
  /// false (per-row march takes over) when the column can't be typed.
  /// Errors on an unloaded key component among live rows, exactly as the
  /// per-row march would when it reached that row.
  Status PrecomputeBuckets() {
    have_buckets_ = false;
    const size_t pn = probe_batch_.active();
    const ColumnView* col =
        probe_kind_ == ProbeKind::kAttrField
            ? probe_batch_.ExtractFieldColumn(probe_binding_, probe_field_,
                                              probe_proj_)
            : probe_batch_.ExtractOidColumn(probe_binding_);
    if (col == nullptr) return Status::OK();
    if (probe_kind_ == ProbeKind::kAttrField && !col->all_loaded) {
      for (size_t k = 0; k < pn; ++k) {
        if (!col->loaded_at(probe_batch_.active_index(k))) {
          return Status::Internal(
              "attribute read on component not present in memory: " +
              env_.ctx->bindings.def(probe_binding_).name);
        }
      }
    }
    probe_buckets_.resize(pn);
    if (!col->is_real) {
      const int64_t* keys = col->ints;
      for (size_t k = 0; k < pn; ++k) {
        if (k + 8 < pn) {
          size_t pos =
              IntHash(keys[probe_batch_.active_index(k + 8)]) & int_mask_;
          __builtin_prefetch(&int_slot_[pos]);
          __builtin_prefetch(&int_keys_[pos]);
        }
        probe_buckets_[k] = IntProbe(keys[probe_batch_.active_index(k)]);
      }
    } else {
      // Real-valued key column: only integral doubles can match an
      // all-integer build side (AsIntKey semantics).
      const double* keys = col->reals;
      for (size_t k = 0; k < pn; ++k) {
        double d = keys[probe_batch_.active_index(k)];
        int64_t v = static_cast<int64_t>(d);
        probe_buckets_[k] = d == static_cast<double>(v) ? IntProbe(v) : -1;
      }
    }
    have_buckets_ = true;
    return Status::OK();
  }

  ExecEnv env_;
  PhysicalOp op_;
  BindingSet left_scope_;
  std::unique_ptr<ExecNode> left_, right_;
  std::vector<ScalarExprPtr> build_keys_, probe_keys_;
  std::unordered_map<std::string, std::vector<Tuple>> table_;
  // Int64 fast path (single all-integer build key): build rows live in one
  // contiguous slot arena (build_width_ slots per row, zero per-row
  // allocations); the open-addressing table maps key -> head row index and
  // build_next_ chains same-key rows in build order.
  bool int_mode_ = false;
  std::vector<int64_t> int_keys_;
  std::vector<int32_t> int_slot_;
  size_t int_mask_ = 0;
  std::vector<Slot> build_slots_;
  size_t build_width_ = 0;
  std::vector<int32_t> build_next_;
  ProbeKind probe_kind_ = ProbeKind::kGeneric;
  BindingId probe_binding_ = kInvalidBinding;
  FieldId probe_field_ = kInvalidField;
  TupleBatch probe_batch_;
  size_t probe_pos_ = 0;
  bool probe_eos_ = false;
  const std::vector<Tuple>* bucket_ = nullptr;  // generic-path drain state
  size_t bucket_pos_ = 0;
  int32_t build_row_ = -1;  // int-mode drain cursor (arena chain)
  // Vectorized probe (vectorize on + int table + direct key extractor):
  // probe_buckets_[k] is the resolved chain head of the k-th live row.
  bool vectorized_probe_ = false;
  bool have_buckets_ = false;
  const ColumnProjection* probe_proj_ = nullptr;
  std::vector<int32_t> probe_buckets_;
};

// ---------------------------------------------------------------------------
// Assembly: windowed complex-object assembly. Pulls up to `window` input
// tuples, gathers their unresolved references, sorts them by physical page
// (the elevator pattern), fetches, and emits — step by step for
// multi-component assemblies.
// ---------------------------------------------------------------------------
class AssemblyExec : public ExecNode {
 public:
  AssemblyExec(ExecEnv env, const PhysicalOp& op,
               std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {
    window_ = op_.window > 0 ? op_.window : env_.timing().assembly_window;
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(child_->Open());
    reader_.emplace(child_.get(), env_.num_bindings(), env_.batch_size);
    if (op_.warm_start) OODB_RETURN_IF_ERROR(WarmStart());
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    while (!out->full()) {
      if (pos_ >= window_rows_.size()) {
        OODB_RETURN_IF_ERROR(FillWindow());
        if (window_rows_.empty()) break;
      }
      size_t i = pos_++;
      if (dropped_[i]) continue;  // dangling reference: no match
      out->AppendRow().CopyFrom(window_rows_[i]);
    }
    return out->size();
  }

  void Close() override { child_->Close(); }

 private:
  Status WarmStart() {
    for (const MatStep& step : op_.mats) {
      TypeId t = env_.ctx->bindings.def(step.target).type;
      if (!env_.store->catalog().HasExtent(t)) continue;
      OODB_ASSIGN_OR_RETURN(
          const std::vector<Oid>* members,
          env_.store->CollectionMembers(CollectionId::Extent(t)));
      for (Oid oid : *members) {
        OODB_ASSIGN_OR_RETURN(const ObjectData* obj,
                              env_.store->Read(oid));  // sequential scan
        pinned_[oid] = obj;
        env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
      }
    }
    return Status::OK();
  }

  Status FillWindow() {
    window_rows_.clear();
    pos_ = 0;
    TupleRef t;
    while (static_cast<int>(window_rows_.size()) < window_) {
      OODB_ASSIGN_OR_RETURN(bool more, reader_->NextRef(&t));
      if (!more) break;
      window_rows_.emplace_back(t);
    }
    dropped_.assign(window_rows_.size(), false);
    if (window_rows_.empty()) return Status::OK();

    for (const MatStep& step : op_.mats) {
      // Gather the references of this step across the window.
      std::vector<std::pair<PageId, std::pair<size_t, Oid>>> pending;
      for (size_t i = 0; i < window_rows_.size(); ++i) {
        if (dropped_[i]) continue;
        Oid target;
        if (step.field == kInvalidField) {
          target = window_rows_[i].slot(step.source).ref;
        } else {
          const Slot& src = window_rows_[i].slot(step.source);
          if (!src.loaded()) {
            return Status::Internal(
                "assembly source not present in memory: " +
                env_.ctx->bindings.def(step.source).name);
          }
          target = src.obj->ref(step.field);
        }
        env_.clock().cpu_s += env_.timing().cpu_deref_s;
        if (target == kInvalidOid || !env_.store->Exists(target)) {
          dropped_[i] = true;  // dangling reference: no match
          continue;
        }
        pending.push_back({env_.store->PageOf(target), {i, target}});
      }
      // Elevator: resolve in page order.
      std::sort(pending.begin(), pending.end());
      for (const auto& [page, work] : pending) {
        (void)page;
        auto [i, target] = work;
        auto pin = pinned_.find(target);
        const ObjectData* obj;
        if (pin != pinned_.end()) {
          obj = pin->second;
        } else {
          OODB_ASSIGN_OR_RETURN(obj, env_.store->Read(target));
        }
        window_rows_[i].slot(step.target) = {target, obj};
      }
    }
    return Status::OK();
  }

  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  std::optional<BatchReader> reader_;
  int window_;
  std::vector<Tuple> window_rows_;
  std::vector<bool> dropped_;
  size_t pos_ = 0;
  std::unordered_map<Oid, const ObjectData*> pinned_;
};

// ---------------------------------------------------------------------------
// Pointer Join: dereferences in place over the child's batch, compacting
// away dangling references (no-match, matching Mat == Join semantics and
// the reference evaluator).
// ---------------------------------------------------------------------------
class PointerJoinExec : public ExecNode {
 public:
  PointerJoinExec(ExecEnv env, const PhysicalOp& op,
                  std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    const MatStep& step = op_.mats[0];
    while (true) {
      OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(out));
      if (n == 0) return 0;
      env_.clock().cpu_s +=
          static_cast<double>(n) * env_.timing().cpu_deref_s;
      // The deref writes each surviving row's target slot anyway, so this
      // is a natural compaction point: live rows (under a selection-marked
      // batch, n counts only those) compact to the front as they resolve.
      const bool had_sel = out->has_selection();
      size_t kept = 0;
      for (size_t k = 0; k < n; ++k) {
        size_t i = had_sel ? out->active_index(k) : k;
        TupleRow row = out->row(i);
        Oid target;
        if (step.field == kInvalidField) {
          target = row.slot(step.source).ref;
        } else {
          const Slot& src = row.slot(step.source);
          if (!src.loaded()) {
            return Status::Internal("pointer join source not in memory");
          }
          target = src.obj->ref(step.field);
        }
        if (target == kInvalidOid || !env_.store->Exists(target)) continue;
        OODB_ASSIGN_OR_RETURN(const ObjectData* obj, env_.store->Read(target));
        if (i != kept) out->CopyRow(kept, i);
        out->row(kept).slot(step.target) = {target, obj};
        ++kept;
      }
      out->ClearSelection();
      out->Truncate(kept);
      if (kept > 0) return kept;
    }
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
};

// ---------------------------------------------------------------------------
// Nested Loops: buffers the left input, loops it per right tuple.
// ---------------------------------------------------------------------------
class NestedLoopsExec : public ExecNode {
 public:
  NestedLoopsExec(ExecEnv env, const PhysicalOp& op,
                  std::unique_ptr<ExecNode> left,
                  std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_(std::move(left)), right_(std::move(right)),
        right_batch_(env_.num_bindings(), env_.batch_size) {}

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    BatchReader reader(left_.get(), env_.num_bindings(), env_.batch_size);
    TupleRef t;
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, reader.NextRef(&t));
      if (!more) break;
      env_.clock().cpu_s += env_.timing().cpu_scan_tuple_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      buffered_.emplace_back(t);
    }
    left_->Close();
    left_pos_ = buffered_.size();  // no right tuple yet
    return right_->Open();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    double cpu = 0.0;
    while (!out->full()) {
      if (!have_right_ || left_pos_ >= buffered_.size()) {
        if (have_right_) ++right_pos_;
        // right_pos_ walks the batch's live rows (selection-aware).
        if (right_pos_ >= right_batch_.active()) {
          if (right_eos_) break;
          have_right_ = false;
          OODB_ASSIGN_OR_RETURN(size_t n, right_->Next(&right_batch_));
          right_pos_ = 0;
          if (n == 0) {
            right_eos_ = true;
            break;
          }
        }
        have_right_ = true;
        left_pos_ = 0;
        continue;
      }
      // Speculative append: materialize the candidate, keep it if it passes.
      TupleRow row = out->AppendRow();
      row.CopyFrom(buffered_[left_pos_++]);
      row.MergeFrom(right_batch_.active_ref(right_pos_));
      cpu += env_.timing().cpu_pred_s;
      OODB_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred, row, *env_.ctx));
      if (!pass) out->Truncate(out->size() - 1);
    }
    env_.clock().cpu_s += cpu;
    // All candidates failed but inputs remain: keep pulling.
    if (out->empty() && !right_eos_) return Next(out);
    return out->size();
  }

  void Close() override { right_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> left_, right_;
  std::vector<Tuple> buffered_;
  size_t left_pos_ = 0;
  TupleBatch right_batch_;
  size_t right_pos_ = 0;
  bool have_right_ = false;
  bool right_eos_ = false;
};

// ---------------------------------------------------------------------------
// Alg-Unnest
// ---------------------------------------------------------------------------
class UnnestExec : public ExecNode {
 public:
  UnnestExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)),
        in_batch_(env_.num_bindings(), env_.batch_size) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    double cpu = 0.0;
    while (!out->full()) {
      if (members_ != nullptr && member_pos_ < members_->size()) {
        TupleRow row = out->AppendRow();
        row.CopyFrom(in_batch_.active_ref(in_pos_));
        row.slot(op_.target) = {(*members_)[member_pos_++], nullptr};
        cpu += env_.timing().cpu_unnest_s;
        continue;
      }
      members_ = nullptr;
      if (have_in_) ++in_pos_;
      // in_pos_ walks the batch's live rows (selection-aware).
      if (in_pos_ >= in_batch_.active()) {
        if (in_eos_) break;
        have_in_ = false;
        OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&in_batch_));
        in_pos_ = 0;
        if (n == 0) {
          in_eos_ = true;
          break;
        }
      }
      have_in_ = true;
      const Slot& src = in_batch_.active_ref(in_pos_).slot(op_.source);
      if (!src.loaded()) {
        return Status::Internal("unnest source not present in memory");
      }
      const TypeDef& td = env_.ctx->schema().type(src.obj->type);
      int slot = 0;
      for (FieldId f = 0; f < op_.field; ++f) {
        if (td.field(f).kind == FieldKind::kRefSet) ++slot;
      }
      members_ = &src.obj->ref_sets[slot];
      member_pos_ = 0;
    }
    env_.clock().cpu_s += cpu;
    // Every input row had an empty set but inputs remain: keep pulling.
    if (out->empty() && !in_eos_) return Next(out);
    return out->size();
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  TupleBatch in_batch_;
  size_t in_pos_ = 0;
  bool have_in_ = false;
  bool in_eos_ = false;
  const std::vector<Oid>* members_ = nullptr;
  size_t member_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Alg-Project
// ---------------------------------------------------------------------------
class ProjectExec : public ExecNode {
 public:
  ProjectExec(ExecEnv env, const PhysicalOp& op,
              std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {
    // Batch kernel: when every emit expression is a plain attribute or
    // identity, validation reduces to "is the attribute's component
    // loaded" — no per-row expression interpretation or Value copies.
    specialized_ = true;
    for (const ScalarExprPtr& e : op_.emit) {
      if (e->kind() == ScalarExpr::Kind::kAttr) {
        check_loaded_.push_back(e->binding());
      } else if (e->kind() != ScalarExpr::Kind::kSelf) {
        specialized_ = false;
        check_loaded_.clear();
        break;
      }
    }
    std::sort(check_loaded_.begin(), check_loaded_.end());
    check_loaded_.erase(
        std::unique(check_loaded_.begin(), check_loaded_.end()),
        check_loaded_.end());
  }

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(out));
    if (n == 0) return 0;
    env_.clock().cpu_s +=
        static_cast<double>(n) * env_.timing().cpu_scan_tuple_s;
    // Validate that every emitted attribute's component is loaded — the
    // executor evaluates the emit list from the final tuples (a Sort
    // enforcer may sit above), but the property violation should surface
    // here, at the operator that required the loads.
    // Validation walks live rows only; the selection (if any) passes
    // through untouched — projection changes no slots.
    if (specialized_ && out->capacity() >= FilterProgram::kMinKernelRows) {
      for (size_t i = 0; i < n; ++i) {
        TupleRef r = out->active_ref(i);
        for (BindingId b : check_loaded_) {
          if (!r.slot(b).loaded()) {
            return Status::Internal(
                "attribute read on component not present in memory: " +
                env_.ctx->bindings.def(b).name);
          }
        }
      }
      return n;
    }
    for (size_t i = 0; i < n; ++i) {
      for (const ScalarExprPtr& e : op_.emit) {
        OODB_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*e, out->active_ref(i), *env_.ctx));
        (void)v;
      }
    }
    return n;
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  bool specialized_ = false;
  std::vector<BindingId> check_loaded_;
};

// ---------------------------------------------------------------------------
// Hash-based set operations over whole-tuple identity (the slot refs).
// ---------------------------------------------------------------------------
class HashSetOpExec : public ExecNode {
 public:
  HashSetOpExec(ExecEnv env, const PhysicalOp& op, BindingSet scope,
                std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), scope_(scope), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    OODB_RETURN_IF_ERROR(right_->Open());
    BatchReader left_reader(left_.get(), env_.num_bindings(), env_.batch_size);
    BatchReader right_reader(right_.get(), env_.num_bindings(),
                             env_.batch_size);
    TupleRef t;
    // Materialize the left side keyed by identity.
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, left_reader.NextRef(&t));
      if (!more) break;
      env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      left_table_.emplace(KeyOf(t), Tuple(t));
    }
    left_->Close();

    switch (op_.kind) {
      case PhysOpKind::kHashUnion: {
        for (auto& [key, tuple] : left_table_) {
          (void)key;
          out_.push_back(tuple);
        }
        std::map<std::string, Tuple> seen;
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_reader.NextRef(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          std::string k = KeyOf(t);
          if (left_table_.count(k) == 0 && seen.count(k) == 0) {
            seen.emplace(k, Tuple(t));
            out_.emplace_back(t);
          }
        }
        break;
      }
      case PhysOpKind::kHashIntersect: {
        std::map<std::string, Tuple> seen;
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_reader.NextRef(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          std::string k = KeyOf(t);
          if (left_table_.count(k) != 0 && seen.count(k) == 0) {
            seen.emplace(k, Tuple(t));
            out_.emplace_back(t);
          }
        }
        break;
      }
      default: {  // difference
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_reader.NextRef(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          left_table_.erase(KeyOf(t));
        }
        for (auto& [key, tuple] : left_table_) {
          (void)key;
          out_.push_back(tuple);
        }
        break;
      }
    }
    right_->Close();
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    while (!out->full() && pos_ < out_.size()) {
      out->AppendRow().CopyFrom(out_[pos_++]);
    }
    return out->size();
  }

  void Close() override {}

 private:
  std::string KeyOf(TupleRef t) {
    std::string key;
    for (BindingId b : scope_.ToVector()) {
      key += std::to_string(t.slot(b).ref);
      key += '|';
    }
    return key;
  }

  ExecEnv env_;
  PhysicalOp op_;
  BindingSet scope_;
  std::unique_ptr<ExecNode> left_, right_;
  std::map<std::string, Tuple> left_table_;
  std::vector<Tuple> out_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Sort (enforcer, extension): multi-key stable sort with per-key direction.
// A row carries its evaluated key vector so comparisons never re-chase
// object pointers. When op.sort_prefix > 0 the child already delivers the
// first `prefix` keys in order (a partial sort): rows are buffered one
// equal-prefix run at a time and only the run is sorted on the remaining
// keys, so simulated CPU scales with n*log(run) instead of n*log(n) — the
// saving PartialSortCost anticipates. Flushed runs are counted on the
// operator's profile (sort_runs) for EXPLAIN ANALYZE.
// ---------------------------------------------------------------------------
class SortExec : public ExecNode {
 public:
  SortExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child,
           OpProfile* prof = nullptr)
      : env_(env), op_(op), child_(std::move(child)), prof_(prof) {
    for (const SortKey& k : op_.sort.keys) {
      key_exprs_.push_back(ScalarExpr::Attr(k.binding, k.field));
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(child_->Open());
    BatchReader reader(child_.get(), env_.num_bindings(), env_.batch_size);
    TupleRef t;
    const size_t nkeys = key_exprs_.size();
    const size_t prefix =
        std::min(nkeys, static_cast<size_t>(std::max(op_.sort_prefix, 0)));
    std::vector<Keyed> run;
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, reader.NextRef(&t));
      if (!more) break;
      Keyed row;
      row.keys.reserve(nkeys);
      for (const ScalarExprPtr& e : key_exprs_) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, t, *env_.ctx));
        row.keys.push_back(std::move(v));
      }
      env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      if (prefix > 0 && !run.empty() &&
          !PrefixEqual(run.front().keys, row.keys, prefix)) {
        FlushRun(&run, prefix);
      }
      row.tuple = Tuple(t);
      run.push_back(std::move(row));
    }
    child_->Close();
    FlushRun(&run, prefix);
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    while (!out->full() && pos_ < out_.size()) {
      out->AppendRow().CopyFrom(out_[pos_++]);
    }
    return out->size();
  }

  void Close() override {}

 private:
  struct Keyed {
    std::vector<Value> keys;
    Tuple tuple;
  };

  static bool PrefixEqual(const std::vector<Value>& a,
                          const std::vector<Value>& b, size_t prefix) {
    for (size_t i = 0; i < prefix; ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }

  /// Stable-sorts the buffered run on keys [prefix, nkeys) and appends it
  /// to the output. With prefix == 0 the run is the whole input.
  void FlushRun(std::vector<Keyed>* run, size_t prefix) {
    if (run->empty()) return;
    const std::vector<SortKey>& keys = op_.sort.keys;
    std::stable_sort(run->begin(), run->end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = prefix; i < keys.size(); ++i) {
                         int c = a.keys[i].Compare(b.keys[i]);
                         if (c != 0) return keys[i].desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    // Comparison-count model: n*ceil(log2(run)) probes, so a partial sort's
    // shorter runs genuinely cost less simulated time than one global sort.
    double log_run = 1.0;
    while ((1ull << static_cast<unsigned>(log_run)) < run->size()) {
      log_run += 1.0;
    }
    env_.clock().cpu_s += static_cast<double>(run->size()) * log_run *
                          env_.timing().cpu_hash_probe_s;
    out_.reserve(out_.size() + run->size());
    for (Keyed& row : *run) out_.push_back(std::move(row.tuple));
    run->clear();
    if (prefix > 0 && prof_ != nullptr) ++prof_->sort_runs;
  }

  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  OpProfile* prof_;
  std::vector<ScalarExprPtr> key_exprs_;
  std::vector<Tuple> out_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// TopK (enforcer, extension): ORDER BY ... LIMIT k without a full sort.
// Three regimes, chosen by the optimizer through op.sort_prefix:
//   - sort_prefix == nkeys (or no sort keys at all): the child already
//     delivers the full order — stream the first k rows and stop pulling,
//     so a limited query never drains its input.
//   - otherwise: a bounded max-heap of k rows keyed on the sort columns;
//     the heap root is the worst survivor, and an incoming row replaces it
//     only when strictly better. Ties keep the earlier row (insertion
//     sequence numbers make the result the stable top-k, matching what
//     stable_sort + truncate produces).
// With vectorize on, batches whose key column extracts as a typed int/real
// vector are pre-screened against the heap root's leading key so rows that
// cannot qualify skip Value materialization; simulated charges are
// identical either way.
// ---------------------------------------------------------------------------
class TopKExec : public ExecNode {
 public:
  TopKExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child,
           OpProfile* prof = nullptr)
      : env_(env), op_(op), child_(std::move(child)), prof_(prof) {
    for (const SortKey& k : op_.sort.keys) {
      key_exprs_.push_back(ScalarExpr::Attr(k.binding, k.field));
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(child_->Open());
    const size_t nkeys = key_exprs_.size();
    const size_t k =
        static_cast<size_t>(std::max<int64_t>(op_.limit, 0));
    // exec.topk == false: the oracle strategy — buffer everything (the
    // absorb cap never evicts), stable-sort, truncate below. Identical
    // rows, naive charges.
    const bool oracle = !env_.topk;
    const bool streaming =
        !oracle &&
        (nkeys == 0 || static_cast<size_t>(op_.sort_prefix) >= nkeys);
    const size_t cap = oracle ? std::numeric_limits<size_t>::max() : k;
    if (k == 0) return Status::OK();  // LIMIT 0: empty result, no pulls
    TupleBatch batch(env_.num_bindings(), env_.batch_size);
    bool done = false;
    while (!done) {
      OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch));
      if (n == 0) break;
      if (streaming) {
        for (size_t i = 0; i < batch.active() && !done; ++i) {
          env_.clock().cpu_s += env_.timing().cpu_pred_s;
          OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
          out_.emplace_back(batch.active_ref(i));
          done = out_.size() >= k;
        }
        continue;
      }
      OODB_RETURN_IF_ERROR(AbsorbBatch(&batch, cap));
    }
    child_->Close();
    if (!streaming) {
      // Heap order is "worst first"; the result is ascending sort order
      // with insertion sequence breaking ties (stability).
      std::sort(heap_.begin(), heap_.end(),
                [this](const Entry& a, const Entry& b) {
                  int c = CompareKeys(a.keys, b.keys);
                  if (c != 0) return c < 0;
                  return a.seq < b.seq;
                });
      out_.reserve(std::min(heap_.size(), k));
      for (Entry& e : heap_) {
        if (out_.size() >= k) break;
        out_.push_back(std::move(e.tuple));
      }
      heap_.clear();
    }
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    while (!out->full() && pos_ < out_.size()) {
      out->AppendRow().CopyFrom(out_[pos_++]);
    }
    return out->size();
  }

  void Close() override {}

 private:
  struct Entry {
    std::vector<Value> keys;
    int64_t seq = 0;
    Tuple tuple;
  };

  /// Lexicographic three-way comparison honoring per-key direction.
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const std::vector<SortKey>& keys = op_.sort.keys;
    for (size_t i = 0; i < keys.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return keys[i].desc ? -c : c;
    }
    return 0;
  }

  /// True when entry `a` is worse than `b` (comes later in sort order, or
  /// equal but inserted later) — the max-heap ordering: the root is the
  /// worst survivor, the first to be evicted.
  bool Worse(const Entry& a, const Entry& b) const {
    int c = CompareKeys(a.keys, b.keys);
    if (c != 0) return c > 0;
    return a.seq > b.seq;
  }

  Status AbsorbBatch(TupleBatch* batch, size_t k) {
    // Columnar pre-screen: once the heap is full, a row strictly worse than
    // the root on the *leading* key alone can never enter. One typed
    // compare rejects it without evaluating the remaining keys or building
    // Values. (Rows with an unloaded leading slot fall through to the row
    // path, which raises the proper error.)
    const ColumnView* lead = nullptr;
    if (env_.vectorize && heap_.size() >= k && !heap_.empty() &&
        heap_.front().keys[0].kind != Value::Kind::kString) {
      const SortKey& k0 = op_.sort.keys[0];
      lead = batch->ExtractFieldColumn(k0.binding, k0.field, nullptr);
    }
    for (size_t i = 0; i < batch->active(); ++i) {
      env_.clock().cpu_s += env_.timing().cpu_pred_s;
      if (lead != nullptr) {
        size_t phys = batch->active_index(i);
        if (lead->loaded_at(phys)) {
          const Value& worst = heap_.front().keys[0];
          double v = lead->is_real ? lead->reals[phys]
                                   : static_cast<double>(lead->ints[phys]);
          double w = worst.kind == Value::Kind::kDouble
                         ? worst.d
                         : static_cast<double>(worst.i);
          bool rejected = op_.sort.keys[0].desc ? v < w : v > w;
          if (rejected) continue;
        }
      }
      TupleRef t = batch->active_ref(i);
      Entry e;
      e.keys.reserve(key_exprs_.size());
      for (const ScalarExprPtr& expr : key_exprs_) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, t, *env_.ctx));
        e.keys.push_back(std::move(v));
      }
      e.seq = seq_++;
      if (heap_.size() >= k) {
        if (!Worse(heap_.front(), e)) continue;  // not better than the worst
      }
      e.tuple = Tuple(t);
      // One heap operation: ~log2(k+1) comparisons.
      double log_k = 1.0;
      while ((1ull << static_cast<unsigned>(log_k)) < k + 1) log_k += 1.0;
      env_.clock().cpu_s += log_k * env_.timing().cpu_hash_probe_s;
      auto worse = [this](const Entry& a, const Entry& b) {
        return Worse(b, a);  // std heap: "less" puts the max at the root
      };
      if (heap_.size() >= k) {
        std::pop_heap(heap_.begin(), heap_.end(), worse);
        heap_.pop_back();
      } else {
        OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      }
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), worse);
      if (prof_ != nullptr) {
        prof_->topk_heap =
            std::max(prof_->topk_heap, static_cast<int64_t>(heap_.size()));
      }
    }
    return Status::OK();
  }

  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  OpProfile* prof_;
  std::vector<ScalarExprPtr> key_exprs_;
  std::vector<Entry> heap_;
  int64_t seq_ = 0;
  std::vector<Tuple> out_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Merge Join (extension): inputs sorted on the join attributes. Streams
// both children through tuple cursors; run-replay state survives across
// output batches.
// ---------------------------------------------------------------------------
class MergeJoinExec : public ExecNode {
 public:
  MergeJoinExec(ExecEnv env, const PhysicalOp& op, BindingSet left_scope,
                std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_(std::move(left)), right_(std::move(right)) {
    ScalarExprPtr c = ScalarExpr::SplitConjuncts(op_.pred)[0];
    ScalarExprPtr l = c->children()[0];
    ScalarExprPtr r = c->children()[1];
    if (left_scope.ContainsAll(l->ReferencedBindings())) {
      left_key_ = l;
      right_key_ = r;
    } else {
      left_key_ = r;
      right_key_ = l;
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    OODB_RETURN_IF_ERROR(right_->Open());
    left_reader_.emplace(left_.get(), env_.num_bindings(), env_.batch_size);
    right_reader_.emplace(right_.get(), env_.num_bindings(), env_.batch_size);
    OODB_ASSIGN_OR_RETURN(left_valid_, left_reader_->Next(&left_tuple_));
    OODB_ASSIGN_OR_RETURN(right_valid_, right_reader_->Next(&right_tuple_));
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    while (!out->full()) {
      if (run_pos_ < run_.size()) {
        TupleRow row = out->AppendRow();
        row.CopyFrom(run_[run_pos_++]);
        row.MergeFrom(left_tuple_for_run_);
        if (run_pos_ >= run_.size()) {
          // Advance left; if its key equals the run key, replay the run.
          OODB_ASSIGN_OR_RETURN(left_valid_, left_reader_->Next(&left_tuple_));
          if (left_valid_) {
            OODB_ASSIGN_OR_RETURN(Value lk,
                                  EvalExpr(*left_key_, left_tuple_, *env_.ctx));
            if (lk == run_key_) {
              left_tuple_for_run_ = left_tuple_;
              run_pos_ = 0;
            }
          }
        }
        continue;
      }
      if (!left_valid_ || !right_valid_) break;
      OODB_ASSIGN_OR_RETURN(Value lk,
                            EvalExpr(*left_key_, left_tuple_, *env_.ctx));
      OODB_ASSIGN_OR_RETURN(Value rk,
                            EvalExpr(*right_key_, right_tuple_, *env_.ctx));
      env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
      int cmp = lk.Compare(rk);
      if (cmp < 0) {
        OODB_ASSIGN_OR_RETURN(left_valid_, left_reader_->Next(&left_tuple_));
      } else if (cmp > 0) {
        OODB_ASSIGN_OR_RETURN(right_valid_, right_reader_->Next(&right_tuple_));
      } else {
        // Collect the right-side run with this key.
        run_.clear();
        run_pos_ = 0;
        run_key_ = rk;
        left_tuple_for_run_ = left_tuple_;
        while (right_valid_) {
          OODB_ASSIGN_OR_RETURN(
              Value k, EvalExpr(*right_key_, right_tuple_, *env_.ctx));
          if (!(k == run_key_)) break;
          run_.push_back(right_tuple_);
          OODB_ASSIGN_OR_RETURN(right_valid_,
                                right_reader_->Next(&right_tuple_));
        }
      }
    }
    return out->size();
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> left_, right_;
  std::optional<BatchReader> left_reader_, right_reader_;
  ScalarExprPtr left_key_, right_key_;
  Tuple left_tuple_, right_tuple_, left_tuple_for_run_;
  bool left_valid_ = false, right_valid_ = false;
  std::vector<Tuple> run_;
  size_t run_pos_ = 0;
  Value run_key_;
};

// ---------------------------------------------------------------------------
// Stats decorator (EXPLAIN ANALYZE): transparently wraps any operator and
// records rows/batches plus simulated-time deltas into the ExecEnv's
// profile, keyed by the plan node the operator was built from. Counters are
// inclusive of the subtree (the deltas span the inner call, children
// included); the wrapped profile is thread-private (see exec_profile.h), so
// recording is plain stores. I/O-side deltas read store-shared state and
// are only taken when the profile is io_timed() — i.e. on serial plans,
// where no worker can be mutating the disk/buffer counters concurrently.
// ---------------------------------------------------------------------------
class StatsExec : public ExecNode {
 public:
  StatsExec(const ExecEnv& env, const PlanNode* node,
            std::unique_ptr<ExecNode> inner)
      : env_(env), inner_(std::move(inner)),
        prof_(env.profile->Register(node)) {}

  Status Open() override {
    // Blocking operators (hash build, sort, set ops) do their heavy work in
    // Open — span it so their time lands on the right node.
    Snapshot before = Take();
    Status status = inner_->Open();
    Record(before);
    return status;
  }

  Result<size_t> Next(TupleBatch* out) override {
    Snapshot before = Take();
    Result<size_t> n = inner_->Next(out);
    Record(before);
    if (n.ok() && *n > 0) {
      prof_->rows += static_cast<int64_t>(*n);
      // Physical rows in the produced batch: equals `rows` for compact
      // batches; exceeds it when the operator marked survivors in a
      // selection vector. The ratio is the operator's selection density.
      prof_->phys_rows += static_cast<int64_t>(out->size());
      ++prof_->batches;
    }
    return n;
  }

  void Close() override { inner_->Close(); }

 private:
  struct Snapshot {
    double cpu_s = 0.0;
    double io_s = 0.0;
    int64_t pages = 0;
    int64_t hits = 0;
    int64_t misses = 0;
  };

  Snapshot Take() const {
    Snapshot s;
    s.cpu_s = env_.clock().cpu_s;
    if (env_.profile->io_timed()) {
      s.io_s = env_.store->clock().io_s;
      s.pages = env_.store->disk().reads();
      s.hits = env_.store->buffer().hits();
      s.misses = env_.store->buffer().misses();
    }
    return s;
  }

  void Record(const Snapshot& before) {
    prof_->cpu_s += env_.clock().cpu_s - before.cpu_s;
    if (env_.profile->io_timed()) {
      prof_->io_s += env_.store->clock().io_s - before.io_s;
      prof_->pages_read += env_.store->disk().reads() - before.pages;
      prof_->buffer_hits += env_.store->buffer().hits() - before.hits;
      prof_->buffer_misses += env_.store->buffer().misses() - before.misses;
    }
  }

  ExecEnv env_;
  std::unique_ptr<ExecNode> inner_;
  OpProfile* prof_;
};

// ---------------------------------------------------------------------------
// Drift-check decorator (adaptive re-optimization): wraps the input of a
// pipeline breaker and compares the running actual row count against the
// optimizer's estimate for that input. Underestimates fire the moment the
// count crosses est * threshold — before the breaker buffers yet more rows
// and before the plan's unexecuted suffix runs. Overestimates fire at end
// of stream (for a hash-join build or sort, that is build completion, the
// last point where switching strategy upstream is still free). Either way
// the query fails with kPlanDrift, which is deliberately not in
// IsRetryableExecFault: re-running the same plan would hit the same drift,
// so the Session replan path — not the retry ladder's same-plan rungs —
// must handle it by re-optimizing with measured cardinality feedback.
// ---------------------------------------------------------------------------
class DriftCheckExec : public ExecNode {
 public:
  /// Both-sides row floor: a drift check never fires unless the larger of
  /// estimate and actual is at least this many rows. Re-planning a query
  /// whose worst absolute error is a handful of rows cannot pay for the
  /// second optimizer pass.
  static constexpr int64_t kMinDriftRows = 32;

  DriftCheckExec(const ExecEnv& env, const PlanNode* input,
                 const char* breaker, std::unique_ptr<ExecNode> inner)
      : env_(env), input_(input), breaker_(breaker), inner_(std::move(inner)) {}

  Status Open() override { return inner_->Open(); }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_ASSIGN_OR_RETURN(size_t n, inner_->Next(out));
    const double est = std::max(1.0, input_->logical.card);
    const double threshold = env_.replan_drift_threshold;
    if (n == 0) {
      double act = std::max<double>(1.0, static_cast<double>(rows_));
      if (est / act > threshold &&
          est >= static_cast<double>(kMinDriftRows)) {
        return Drift(est, "over");
      }
      return n;
    }
    rows_ += static_cast<int64_t>(n);
    if (static_cast<double>(rows_) > est * threshold &&
        rows_ >= kMinDriftRows) {
      return Drift(est, "under");
    }
    return n;
  }

  void Close() override { inner_->Close(); }

 private:
  Status Drift(double est, const char* direction) const {
    std::string msg = breaker_;
    msg += " input ";
    msg += direction;
    msg += "-estimated: est ";
    msg += std::to_string(static_cast<int64_t>(est + 0.5));
    msg += " rows, saw ";
    msg += std::to_string(rows_);
    return Status::PlanDrift(std::move(msg));
  }

  ExecEnv env_;
  const PlanNode* input_;
  const char* breaker_;
  std::unique_ptr<ExecNode> inner_;
  int64_t rows_ = 0;
};

/// Wraps a pipeline breaker's input in a drift check when mid-query
/// re-planning is armed. Suppressed inside Exchange workers: a partition's
/// row count cannot be compared against the whole-input estimate.
std::unique_ptr<ExecNode> MaybeDriftCheck(const ExecEnv& env,
                                          const PlanNode* input,
                                          const char* breaker,
                                          std::unique_ptr<ExecNode> inner) {
  if (env.replan_drift_threshold <= 0.0 || env.partition_count > 1) {
    return inner;
  }
  return std::make_unique<DriftCheckExec>(env, input, breaker,
                                          std::move(inner));
}

/// The real operator factory. Recursive construction goes through
/// BuildExecNode so children get their own stats decorators when profiling.
Result<std::unique_ptr<ExecNode>> BuildExecNodeImpl(const ExecEnv& env,
                                                    const PlanNode& plan) {
  // The optimizer cascades one Filter node per pushed-down conjunct; running
  // them as separate operators costs a full batch pass (and a virtual Next
  // per batch) per conjunct. Execution collapses a chain of consecutive
  // Filters into one combined conjunction, then either fuses it into the
  // file scan below (when the batch kernel applies and every conjunct reads
  // the scan's binding) or runs it as a single FilterExec pass. The chain's
  // input is built from the first non-Filter descendant, so a
  // partition_node match on the scan below still fires.
  // Degradation-ladder "serial" step: an Exchange that keeps faulting is
  // bypassed entirely — its child runs unpartitioned on the consumer
  // thread, no worker pool, no cross-thread queue.
  if (plan.op.kind == PhysOpKind::kExchange && env.no_exchange) {
    return BuildExecNode(env, *plan.children[0]);
  }
  if (plan.op.kind == PhysOpKind::kFilter && plan.op.pred != nullptr) {
    std::vector<ScalarExprPtr> conjuncts;
    std::vector<ScalarExprPtr> chain_preds;
    const PlanNode* node = &plan;
    while (node->op.kind == PhysOpKind::kFilter && node->op.pred != nullptr) {
      chain_preds.push_back(node->op.pred);
      std::vector<ScalarExprPtr> cs = ScalarExpr::SplitConjuncts(node->op.pred);
      conjuncts.insert(conjuncts.end(), cs.begin(), cs.end());
      node = node->children[0].get();
    }
    double ncon = static_cast<double>(conjuncts.size());
    ScalarExprPtr combined = ScalarExpr::CombineConjuncts(std::move(conjuncts));
    // The fusion must preserve the chain's conjunct multiset exactly: a
    // dropped or rewritten term silently changes query results.
    OODB_RETURN_IF_ERROR(VerifyFusedConjuncts(chain_preds, combined));
    if (node->op.kind == PhysOpKind::kFileScan &&
        env.batch_size >= FilterProgram::kMinKernelRows) {
      FilterProgram prog = FilterProgram::Analyze(combined);
      if (prog.specialized() && prog.SingleBinding(node->op.binding)) {
        // Second leg of the fusion invariant: the *compiled* steps (which
        // the kernels and EvalSteps actually execute — possibly with
        // operands re-oriented during analysis) must still reconstruct the
        // chain's conjunct multiset. Catches compile-side drift the
        // combined-predicate check above cannot see.
        OODB_RETURN_IF_ERROR(
            VerifyFusedConjuncts(chain_preds, prog.ReconstructedPredicate()));
        bool part = env.partition_node == node && env.partition_count > 1;
        return std::unique_ptr<ExecNode>(new FileScanExec(
            env, node->op, part, std::move(prog), combined, ncon));
      }
    }
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> input,
                          BuildExecNode(env, *node));
    PhysicalOp merged = plan.op;
    merged.pred = combined;
    return std::unique_ptr<ExecNode>(
        new FilterExec(env, merged, std::move(input)));
  }
  std::vector<std::unique_ptr<ExecNode>> children;
  for (const PlanNodePtr& c : plan.children) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(env, *c));
    children.push_back(std::move(node));
  }
  bool partitioned = env.partition_node == &plan && env.partition_count > 1;
  switch (plan.op.kind) {
    case PhysOpKind::kFileScan:
      return std::unique_ptr<ExecNode>(
          new FileScanExec(env, plan.op, partitioned));
    case PhysOpKind::kIndexScan:
      return std::unique_ptr<ExecNode>(
          new IndexScanExec(env, plan.op, partitioned));
    case PhysOpKind::kFilter:
      return std::unique_ptr<ExecNode>(
          new FilterExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kHybridHashJoin:
      return std::unique_ptr<ExecNode>(new HashJoinExec(
          env, plan.op, plan.children[0]->logical.scope,
          MaybeDriftCheck(env, plan.children[0].get(), "hash-join build",
                          std::move(children[0])),
          std::move(children[1])));
    case PhysOpKind::kPointerJoin:
      return std::unique_ptr<ExecNode>(
          new PointerJoinExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAssembly:
      return std::unique_ptr<ExecNode>(
          new AssemblyExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAlgProject:
      return std::unique_ptr<ExecNode>(
          new ProjectExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAlgUnnest:
      return std::unique_ptr<ExecNode>(
          new UnnestExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
      return std::unique_ptr<ExecNode>(new HashSetOpExec(
          env, plan.op, plan.logical.scope, std::move(children[0]),
          std::move(children[1])));
    case PhysOpKind::kSort:
      // The operator shares the decorator's OpProfile slot (Register is
      // idempotent per node) to record its run/heap counters.
      return std::unique_ptr<ExecNode>(new SortExec(
          env, plan.op,
          MaybeDriftCheck(env, plan.children[0].get(), "sort",
                          std::move(children[0])),
          env.profile != nullptr ? env.profile->Register(&plan) : nullptr));
    case PhysOpKind::kTopK:
      return std::unique_ptr<ExecNode>(new TopKExec(
          env, plan.op,
          MaybeDriftCheck(env, plan.children[0].get(), "top-k",
                          std::move(children[0])),
          env.profile != nullptr ? env.profile->Register(&plan) : nullptr));
    case PhysOpKind::kMergeJoin:
      return std::unique_ptr<ExecNode>(new MergeJoinExec(
          env, plan.op, plan.children[0]->logical.scope, std::move(children[0]),
          std::move(children[1])));
    case PhysOpKind::kNestedLoops:
      return std::unique_ptr<ExecNode>(new NestedLoopsExec(
          env, plan.op, std::move(children[0]), std::move(children[1])));
    case PhysOpKind::kExchange:
      return MakeExchangeExec(env, plan);
  }
  return Status::Unimplemented("no executor for operator");
}

}  // namespace

Result<std::unique_ptr<ExecNode>> BuildExecNode(const ExecEnv& env,
                                                const PlanNode& plan) {
  OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                        BuildExecNodeImpl(env, plan));
  if (env.profile != nullptr) {
    // Keyed by &plan: a fused filter chain records under the chain's top
    // node (the nodes it absorbed have no operator of their own and render
    // as "(fused)" in the ANALYZE tree).
    node = std::make_unique<StatsExec>(env, &plan, std::move(node));
  }
  return node;
}

Result<std::unique_ptr<ExecNode>> BuildExecTree(const PlanNode& plan,
                                                ObjectStore* store,
                                                QueryContext* ctx,
                                                QueryGovernor* governor) {
  ExecEnv env;
  env.store = store;
  env.ctx = ctx;
  env.governor = governor;
  return BuildExecNode(env, plan);
}

}  // namespace oodb
