// Execution-engine tests: optimized plans run against generated data and
// their results are checked against brute-force evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "src/common/metrics.h"
#include "src/exec/batch_pool.h"
#include "src/exec/tuple.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

constexpr double kScale = 0.02;

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : db_(MakePaperCatalog(kScale)), store_(&db_.catalog) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &store_, gen);
    EXPECT_TRUE(r.ok()) << r.status();
    data_ = *std::move(r);
  }

  ExecStats Run(const std::string& text, OptimizerOptions opts = {},
                QueryContext* ctx_out = nullptr,
                OptimizedQuery* plan_out = nullptr) {
    QueryContext local;
    QueryContext& ctx = ctx_out != nullptr ? *ctx_out : local;
    ctx.catalog = &db_.catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    Optimizer opt(&db_.catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    if (plan_out != nullptr) *plan_out = *planned;
    auto stats = ExecutePlan(*planned->plan, &store_, &ctx);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return *std::move(stats);
  }

  /// Run() with explicit execution options (vectorize, batch size, ...).
  ExecStats RunExec(const std::string& text, const ExecOptions& eo) {
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    Optimizer opt(&db_.catalog);
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    auto stats = ExecutePlan(*planned->plan, &store_, &ctx, eo);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return *std::move(stats);
  }

  const ObjectData& Obj(Oid o) {
    Result<const ObjectData*> r = store_.Read(o, /*charge_io=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status();
      std::abort();
    }
    return **r;
  }

  PaperDb db_;
  ObjectStore store_;
  PaperDataset data_;
};

TEST_F(ExecTest, Query2RowsMatchBruteForce) {
  int expected = 0;
  for (Oid c : data_.cities) {
    Oid mayor = Obj(c).ref(db_.city_mayor);
    if (Obj(mayor).value(db_.person_name).s == "Joe") ++expected;
  }
  ASSERT_GT(expected, 0);
  ExecStats stats = Run(kQuery2Text);
  EXPECT_EQ(stats.rows, expected);
}

TEST_F(ExecTest, Query2PlansAgreeAcrossConfigurations) {
  ExecStats fast = Run(kQuery2Text);
  OptimizerOptions opts;
  opts.disabled_rules = {kImplIndexScan};
  ExecStats slow = Run(kQuery2Text, opts);
  EXPECT_EQ(fast.rows, slow.rows);
  // The index plan does far less simulated I/O than the scan+assembly plan.
  EXPECT_LT(fast.pages_read, slow.pages_read / 4);
  EXPECT_LT(fast.sim_io_s, slow.sim_io_s);
}

TEST_F(ExecTest, Query3ProjectsMayorAges) {
  QueryContext ctx;
  ExecStats stats = Run(kQuery3Text, {}, &ctx);
  ASSERT_GT(stats.rows, 0);
  ASSERT_FALSE(stats.sample_rows.empty());
  // Validate one projected row against the data.
  std::set<std::pair<int64_t, std::string>> expected;
  for (Oid c : data_.cities) {
    Oid mayor = Obj(c).ref(db_.city_mayor);
    if (Obj(mayor).value(db_.person_name).s == "Joe") {
      expected.insert({Obj(mayor).value(db_.person_age).i,
                       Obj(c).value(db_.city_name).s});
    }
  }
  for (const std::vector<Value>& row : stats.sample_rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_TRUE(expected.count({row[0].i, row[1].s}) > 0)
        << row[0].ToString() << ", " << row[1].ToString();
  }
}

TEST_F(ExecTest, Query1RowsMatchBruteForce) {
  auto employees_set =
      store_.CollectionMembers(CollectionId::Set("Employees", db_.employee));
  ASSERT_TRUE(employees_set.ok());
  int expected = 0;
  for (Oid e : **employees_set) {
    Oid d = Obj(e).ref(db_.emp_dept);
    Oid p = Obj(d).ref(db_.dept_plant);
    if (Obj(p).value(db_.plant_location).s == "Dallas") ++expected;
  }
  ASSERT_GT(expected, 0);
  ExecStats stats = Run(kQuery1Text);
  EXPECT_EQ(stats.rows, expected);
}

TEST_F(ExecTest, Query1ProjectedRowsAreCorrect) {
  QueryContext ctx;
  ExecStats stats = Run(kQuery1Text, {}, &ctx);
  ASSERT_FALSE(stats.sample_rows.empty());
  // Each row is (e.name, e.job.name, e.dept.name); cross-check one pattern:
  // the department named in the row must have a Dallas plant.
  std::set<std::string> dallas_depts;
  for (Oid d : data_.departments) {
    Oid p = Obj(d).ref(db_.dept_plant);
    if (Obj(p).value(db_.plant_location).s == "Dallas") {
      dallas_depts.insert(Obj(d).value(db_.dept_name).s);
    }
  }
  for (const std::vector<Value>& row : stats.sample_rows) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_TRUE(dallas_depts.count(row[2].s) > 0) << row[2].s;
  }
}

TEST_F(ExecTest, Query4VariantMatchesBruteForce) {
  // The scaled catalog has 12 distinct completion times; use one that exists.
  const char* text =
      "SELECT t FROM Task t IN Tasks, Employee e IN t.team_members "
      "WHERE e.name == \"Fred\" && t.time == 5;";
  auto tasks_set = store_.CollectionMembers(CollectionId::Set("Tasks", db_.task));
  ASSERT_TRUE(tasks_set.ok());
  int expected = 0;
  for (Oid t : **tasks_set) {
    if (Obj(t).value(db_.task_time).i != 5) continue;
    for (Oid m : Obj(t).ref_sets[0]) {
      if (Obj(m).value(db_.emp_name).s == "Fred") ++expected;
    }
  }
  ExecStats stats = Run(text);
  EXPECT_EQ(stats.rows, expected);
}

TEST_F(ExecTest, JoinQueryMatchesBruteForce) {
  const char* text =
      "SELECT e.name, d.name "
      "FROM Employee e IN Employees, Department d IN Department "
      "WHERE e.dept == d && d.floor == 3;";
  auto employees_set =
      store_.CollectionMembers(CollectionId::Set("Employees", db_.employee));
  ASSERT_TRUE(employees_set.ok());
  int expected = 0;
  for (Oid e : **employees_set) {
    Oid d = Obj(e).ref(db_.emp_dept);
    if (Obj(d).value(db_.dept_floor).i == 3) ++expected;
  }
  ExecStats stats = Run(text);
  EXPECT_EQ(stats.rows, expected);
}

TEST_F(ExecTest, AssemblyElevatorReducesSimTimeVsWindowOne) {
  OptimizerOptions base;
  base.disabled_rules = {kImplIndexScan, kRuleMatToJoin};
  OptimizedQuery planned;
  QueryContext ctx;
  ExecStats windowed = Run(kQuery2Text, base, &ctx, &planned);
  // Same plan shape but window 1 (no elevator batching).
  OptimizerOptions w1 = base;
  w1.cost.assembly_window = 1;
  ExecStats narrow = Run(kQuery2Text, w1);
  EXPECT_EQ(windowed.rows, narrow.rows);
  // The windowed assembly sorts each batch's references by page: fewer
  // random-cost seeks, lower simulated I/O time.
  EXPECT_LE(windowed.sim_io_s, narrow.sim_io_s);
}

TEST_F(ExecTest, SimulatedTimeTracksEstimateShape) {
  // Absolute agreement is not required, but the *ordering* of plans by the
  // optimizer's estimate must match the ordering by simulated execution.
  QueryContext c1, c2;
  OptimizedQuery fast_plan, slow_plan;
  ExecStats fast = Run(kQuery2Text, {}, &c1, &fast_plan);
  OptimizerOptions opts;
  opts.disabled_rules = {kImplIndexScan};
  ExecStats slow = Run(kQuery2Text, opts, &c2, &slow_plan);
  ASSERT_LT(fast_plan.cost.total(), slow_plan.cost.total());
  EXPECT_LT(fast.sim_total_s(), slow.sim_total_s());
}

TEST_F(ExecTest, ReadingUnloadedComponentFails) {
  // Hand-build an invalid plan: Filter on the mayor's name directly over a
  // city scan (mayor never loaded). The executor must fail loudly.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  BindingId c = ctx.bindings.AddGet("c", db_.city);
  BindingId m = ctx.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);

  PhysicalOp scan;
  scan.kind = PhysOpKind::kFileScan;
  scan.coll = CollectionId::Set("Cities", db_.city);
  scan.binding = c;
  LogicalProps props;
  props.scope = BindingSet::Of(c);
  PlanNodePtr scan_node =
      PlanNode::Make(scan, {}, props, PhysProps{BindingSet::Of(c), {}}, Cost{});

  PhysicalOp filter;
  filter.kind = PhysOpKind::kFilter;
  filter.pred = ScalarExpr::AttrEqStr(m, db_.person_name, "Joe");
  PlanNodePtr bad = PlanNode::Make(filter, {scan_node}, props,
                                   PhysProps{BindingSet::Of(c), {}}, Cost{});

  auto stats = ExecutePlan(*bad, &store_, &ctx);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

TEST_F(ExecTest, ColdStartResetsAccounting) {
  ExecStats first = Run(kQuery2Text);
  ExecStats second = Run(kQuery2Text);
  // Each run is cold by default: identical accounting.
  EXPECT_EQ(first.pages_read, second.pages_read);
  EXPECT_DOUBLE_EQ(first.sim_io_s, second.sim_io_s);
}

TEST_F(ExecTest, WarmRunUsesBuffer) {
  ExecStats cold = Run(kQuery2Text);
  // Re-run without resetting: the buffer retains pages.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto logical = ParseAndSimplify(kQuery2Text, &ctx);
  ASSERT_TRUE(logical.ok());
  Optimizer opt(&db_.catalog);
  auto planned = opt.Optimize(**logical, &ctx);
  ASSERT_TRUE(planned.ok());
  ExecOptions warm;
  warm.cold_start = false;
  auto stats = ExecutePlan(*planned->plan, &store_, &ctx, warm);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->buffer_hits, cold.buffer_hits);
}

TEST_F(ExecTest, SelectionVectorEdgeCases) {
  TupleBatch batch(/*width=*/2, /*capacity=*/8);

  // Empty batch: nothing active, and Compact is a no-op.
  EXPECT_EQ(batch.active(), 0u);
  batch.Compact();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_FALSE(batch.has_selection());

  // All rows filtered: an empty selection hides every row; compaction
  // leaves an empty batch with the selection dropped.
  for (Oid o = 0; o < 5; ++o) batch.AppendRow().slot(0).ref = 100 + o;
  EXPECT_EQ(batch.active(), 5u);
  batch.MutableSelection();
  batch.SetSelection(0);
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.active(), 0u);
  batch.Compact();
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.size(), 0u);

  // Single survivor in the middle: active views index through the
  // selection, and compaction moves exactly that row to the front.
  batch.Clear();
  for (Oid o = 0; o < 5; ++o) batch.AppendRow().slot(0).ref = 200 + o;
  uint16_t* sel = batch.MutableSelection();
  sel[0] = 3;
  batch.SetSelection(1);
  EXPECT_EQ(batch.active(), 1u);
  EXPECT_EQ(batch.active_index(0), 3u);
  EXPECT_EQ(batch.active_ref(0).slot(0).ref, Oid(203));
  batch.Compact();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.ref(0).slot(0).ref, Oid(203));
}

TEST_F(ExecTest, VectorizedAllRowsFilteredMatchesRowEngine) {
  // No employee is that old: every scan chunk's select kernel produces zero
  // survivors. Results and simulated accounting must match the row engine
  // exactly — vectorization is a wall-clock-only change.
  const char* text =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age > 100000;";
  ExecOptions row_eo;
  row_eo.vectorize = 0;
  ExecOptions vec_eo;
  vec_eo.vectorize = 1;
  ExecStats row = RunExec(text, row_eo);
  ExecStats vec = RunExec(text, vec_eo);
  EXPECT_EQ(row.rows, 0);
  EXPECT_EQ(vec.rows, 0);
  EXPECT_TRUE(vec.sample_rows.empty());
  EXPECT_DOUBLE_EQ(row.sim_cpu_s, vec.sim_cpu_s);
  EXPECT_DOUBLE_EQ(row.sim_io_s, vec.sim_io_s);
  EXPECT_EQ(row.pages_read, vec.pages_read);
}

TEST_F(ExecTest, VectorizedSingleSurvivorMatchesRowEngine) {
  // Pin the predicate to a population value exactly one city has, so the
  // whole two-step kernel chain leaves a single survivor across every batch
  // of the scan.
  std::map<int64_t, int> freq;
  for (Oid c : data_.cities) ++freq[Obj(c).value(db_.city_population).i];
  int64_t unique_pop = -1;
  for (const auto& [pop, n] : freq) {
    if (n == 1) {
      unique_pop = pop;
      break;
    }
  }
  ASSERT_NE(unique_pop, -1) << "dataset has no unique city population";
  std::string text = "SELECT c.name FROM City c IN Cities WHERE c.population >= " +
                     std::to_string(unique_pop) + " && c.population <= " +
                     std::to_string(unique_pop) + ";";
  ExecOptions row_eo;
  row_eo.vectorize = 0;
  ExecOptions vec_eo;
  vec_eo.vectorize = 1;
  ExecStats row = RunExec(text, row_eo);
  ExecStats vec = RunExec(text, vec_eo);
  EXPECT_EQ(row.rows, 1);
  EXPECT_EQ(vec.rows, 1);
  ASSERT_EQ(vec.sample_rows.size(), 1u);
  ASSERT_EQ(row.sample_rows.size(), 1u);
  EXPECT_EQ(row.sample_rows[0][0].s, vec.sample_rows[0][0].s);
  EXPECT_DOUBLE_EQ(row.sim_cpu_s, vec.sim_cpu_s);
  EXPECT_DOUBLE_EQ(row.sim_io_s, vec.sim_io_s);
}

TEST_F(ExecTest, BatchPoolSteadyStateAllocatesNothing) {
  // The executor's drain batch comes from the process-wide BatchPool. After
  // a warm-up run has parked an arena of this query's shape, repeat
  // executions must be served entirely from the pool: the miss counter
  // (fresh arena allocations) stays flat while hits and recycles climb —
  // the steady-state zero-alloc invariant.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* hits = reg.counter("oodb_batch_pool_hits_total");
  Counter* misses = reg.counter("oodb_batch_pool_misses_total");
  Counter* recycled = reg.counter("oodb_batch_pool_recycled_total");
  Run(kQuery2Text);
  Run(kQuery2Text);
  int64_t hits_before = hits->value();
  int64_t misses_before = misses->value();
  int64_t recycled_before = recycled->value();
  Run(kQuery2Text);
  EXPECT_EQ(misses->value(), misses_before)
      << "steady-state execution allocated a fresh batch arena";
  EXPECT_GT(hits->value(), hits_before);
  EXPECT_GT(recycled->value(), recycled_before);
}

TEST_F(ExecTest, BatchPoolSteadyStateHoldsUnderCancelAndFault) {
  // Error paths must return every in-flight arena to the pool: a cancelled
  // or worker-faulted execution that leaks its drain/queue batches would
  // deplete the pool and show up here as fresh allocations (misses) on
  // repeat runs. Same protocol as the clean-path test: warm up twice, then
  // assert the miss counter stays flat.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* misses = reg.counter("oodb_batch_pool_misses_total");

  // Pre-cancelled governor: the pipeline dies at its first checkpoint.
  auto run_cancelled = [&] {
    GovernorOptions gopts;
    gopts.cancel = std::make_shared<CancelToken>();
    gopts.cancel->RequestCancel();
    QueryGovernor governor(gopts);
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    auto logical = ParseAndSimplify(kQuery2Text, &ctx);
    ASSERT_TRUE(logical.ok()) << logical.status();
    Optimizer opt(&db_.catalog);
    auto planned = opt.Optimize(**logical, &ctx);
    ASSERT_TRUE(planned.ok()) << planned.status();
    ExecOptions eo;
    eo.governor = &governor;
    auto stats = ExecutePlan(*planned->plan, &store_, &ctx, eo);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);
  };
  // Deterministic worker kill at the first root batch boundary.
  auto run_faulted = [&] {
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    auto logical = ParseAndSimplify(kQuery2Text, &ctx);
    ASSERT_TRUE(logical.ok()) << logical.status();
    Optimizer opt(&db_.catalog);
    auto planned = opt.Optimize(**logical, &ctx);
    ASSERT_TRUE(planned.ok()) << planned.status();
    ExecOptions eo;
    eo.exec_faults.fail_worker = 0;
    eo.exec_faults.fail_after_batches = 1;
    auto stats = ExecutePlan(*planned->plan, &store_, &ctx, eo);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kWorkerFault);
  };

  run_cancelled();
  run_faulted();
  run_cancelled();
  run_faulted();
  int64_t misses_before = misses->value();
  run_cancelled();
  run_faulted();
  EXPECT_EQ(misses->value(), misses_before)
      << "a cancelled or faulted execution leaked a pooled batch arena";
}

TEST_F(ExecTest, SetOperationExecution) {
  // Intersection of Cities with itself (via two ranges is not expressible;
  // build the set-op tree directly): |Cities ∩ Cities| = |Cities|.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  BindingId c = ctx.bindings.AddGet("c", db_.city);
  auto cities = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), c));
  auto tree = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kIntersect),
                                {cities, cities});
  Optimizer opt(&db_.catalog);
  auto planned = opt.Optimize(*tree, &ctx);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto stats = ExecutePlan(*planned->plan, &store_, &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows,
            static_cast<int64_t>(data_.cities.size()));
}

TEST_F(ExecTest, DifferenceOfSelfIsEmpty) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  BindingId c = ctx.bindings.AddGet("c", db_.city);
  auto cities = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), c));
  auto tree = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kDifference),
                                {cities, cities});
  Optimizer opt(&db_.catalog);
  auto planned = opt.Optimize(*tree, &ctx);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto stats = ExecutePlan(*planned->plan, &store_, &ctx);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 0);
}

}  // namespace
}  // namespace oodb
