// Bindings and scopes. A query's scope is a set of *bindings*: `Get S:c`
// binds c, `Mat c.mayor:m` binds m, `Unnest t.members:r` binds r. The paper's
// scoping rule (§3, "Logical Algebra"): a component gets into scope by being
// scanned (Get) or referenced (Mat); components remain in scope until a
// projection discards them. Tuples at runtime carry one slot per binding.
#ifndef OODB_ALGEBRA_BINDING_H_
#define OODB_ALGEBRA_BINDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/result.h"

namespace oodb {

using BindingId = int32_t;
inline constexpr BindingId kInvalidBinding = -1;

/// A set of bindings, as a bitmask. Queries are limited to 64 bindings,
/// far beyond the paper's examples.
class BindingSet {
 public:
  BindingSet() = default;
  static BindingSet Of(BindingId b) { return BindingSet(1ull << b); }

  bool Contains(BindingId b) const { return (bits_ >> b) & 1; }
  bool ContainsAll(BindingSet s) const { return (bits_ & s.bits_) == s.bits_; }
  bool Intersects(BindingSet s) const { return (bits_ & s.bits_) != 0; }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }

  void Add(BindingId b) { bits_ |= (1ull << b); }
  void Remove(BindingId b) { bits_ &= ~(1ull << b); }

  BindingSet Union(BindingSet s) const { return BindingSet(bits_ | s.bits_); }
  BindingSet Intersect(BindingSet s) const { return BindingSet(bits_ & s.bits_); }
  BindingSet Minus(BindingSet s) const { return BindingSet(bits_ & ~s.bits_); }

  bool operator==(const BindingSet& o) const { return bits_ == o.bits_; }
  bool operator!=(const BindingSet& o) const { return bits_ != o.bits_; }
  bool operator<(const BindingSet& o) const { return bits_ < o.bits_; }

  uint64_t bits() const { return bits_; }

  /// Iterates set members in increasing id order.
  std::vector<BindingId> ToVector() const;

 private:
  explicit BindingSet(uint64_t bits) : bits_(bits) {}
  uint64_t bits_ = 0;
};

/// How a binding entered scope.
enum class BindingOrigin {
  kGet,     ///< scanned from a collection
  kMat,     ///< materialized via an inter-object reference
  kUnnest,  ///< revealed from a set-valued field (holds a bare reference)
};

/// One binding definition.
struct BindingDef {
  BindingId id = kInvalidBinding;
  std::string name;  ///< display name, e.g. "c" or "c.mayor"
  TypeId type = kInvalidType;
  BindingOrigin origin = BindingOrigin::kGet;
  /// For kMat/kUnnest: the binding this one was derived from.
  BindingId parent = kInvalidBinding;
  /// For kMat (from a field) / kUnnest: the traversed field of `parent`.
  /// kInvalidField for a Mat that resolves an unnested bare reference.
  FieldId via_field = kInvalidField;
  /// True for kUnnest bindings: the slot holds a reference value only; the
  /// referenced object is not (yet) an independent in-memory component.
  bool is_ref = false;
};

/// Per-query table of bindings. Owned by the QueryContext; all algebra
/// expressions for one query share it.
class BindingTable {
 public:
  /// Binds the result of scanning a collection of `type`.
  BindingId AddGet(std::string name, TypeId type);

  /// Binds the object materialized from `parent`.`field` (field must be a
  /// kRef field of parent's type) or from a bare-reference binding when
  /// `field` == kInvalidField.
  BindingId AddMat(std::string name, TypeId type, BindingId parent,
                   FieldId field);

  /// Binds the references revealed by unnesting `parent`.`set_field`.
  BindingId AddUnnest(std::string name, TypeId type, BindingId parent,
                      FieldId set_field);

  const BindingDef& def(BindingId id) const { return defs_[id]; }
  int size() const { return static_cast<int>(defs_.size()); }
  bool has(BindingId id) const {
    return id >= 0 && id < static_cast<BindingId>(defs_.size());
  }

  Result<BindingId> ByName(const std::string& name) const;

 private:
  BindingId Add(BindingDef def);
  std::vector<BindingDef> defs_;
};

}  // namespace oodb

#endif  // OODB_ALGEBRA_BINDING_H_
