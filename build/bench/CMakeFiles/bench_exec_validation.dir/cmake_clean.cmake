file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_validation.dir/bench_exec_validation.cc.o"
  "CMakeFiles/bench_exec_validation.dir/bench_exec_validation.cc.o.d"
  "bench_exec_validation"
  "bench_exec_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
