#include "src/query/builder.h"

#include "src/common/strings.h"

namespace oodb {
namespace zql {

ZqlExprPtr Path(const std::string& dotted) {
  return ZqlExpr::MakePathDotted(dotted);
}
ZqlExprPtr Lit(int64_t v) { return ZqlExpr::MakeLiteral(Value::Int(v)); }
ZqlExprPtr Lit(double v) { return ZqlExpr::MakeLiteral(Value::Double(v)); }
ZqlExprPtr Lit(const char* v) {
  return ZqlExpr::MakeLiteral(Value::Str(std::string(v)));
}
ZqlExprPtr Lit(std::string v) {
  return ZqlExpr::MakeLiteral(Value::Str(std::move(v)));
}
ZqlExprPtr Cmp(CmpOp op, ZqlExprPtr l, ZqlExprPtr r) {
  return ZqlExpr::MakeCmp(op, std::move(l), std::move(r));
}
ZqlExprPtr Eq(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kEq, std::move(l), std::move(r));
}
ZqlExprPtr Ne(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kNe, std::move(l), std::move(r));
}
ZqlExprPtr Lt(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kLt, std::move(l), std::move(r));
}
ZqlExprPtr Le(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kLe, std::move(l), std::move(r));
}
ZqlExprPtr Gt(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kGt, std::move(l), std::move(r));
}
ZqlExprPtr Ge(ZqlExprPtr l, ZqlExprPtr r) {
  return Cmp(CmpOp::kGe, std::move(l), std::move(r));
}
ZqlExprPtr And(std::vector<ZqlExprPtr> parts) {
  return ZqlExpr::MakeAnd(std::move(parts));
}
ZqlExprPtr Or(std::vector<ZqlExprPtr> parts) {
  return ZqlExpr::MakeOr(std::move(parts));
}
ZqlExprPtr Not(ZqlExprPtr inner) { return ZqlExpr::MakeNot(std::move(inner)); }
ZqlExprPtr Exists(ZqlQueryPtr subquery) {
  return ZqlExpr::MakeExists(std::move(subquery));
}

}  // namespace zql

QueryBuilder& QueryBuilder::Select(ZqlExprPtr e) {
  query_.select.push_back(std::move(e));
  return *this;
}

QueryBuilder& QueryBuilder::From(std::string type_name, std::string var,
                                 std::string collection) {
  ZqlRange r;
  r.type_name = std::move(type_name);
  r.var = std::move(var);
  r.collection = std::move(collection);
  query_.from.push_back(std::move(r));
  return *this;
}

QueryBuilder& QueryBuilder::FromPath(std::string type_name, std::string var,
                                     const std::string& dotted_path) {
  ZqlRange r;
  r.type_name = std::move(type_name);
  r.var = std::move(var);
  r.from_path = true;
  r.path = Split(dotted_path, '.');
  query_.from.push_back(std::move(r));
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& dotted_path,
                                    bool desc) {
  ZqlOrderKey key;
  key.path = ZqlExpr::MakePathDotted(dotted_path);
  key.desc = desc;
  query_.order_by.push_back(std::move(key));
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t n) {
  query_.limit = n;
  return *this;
}

QueryBuilder& QueryBuilder::Where(ZqlExprPtr e) {
  if (!query_.where) {
    query_.where = std::move(e);
  } else {
    query_.where = ZqlExpr::MakeAnd({query_.where, std::move(e)});
  }
  return *this;
}

}  // namespace oodb
