// Physical properties (paper §3 "Properties and Property Enforcement").
// The key object-query property is *presence in memory*: which bindings'
// objects an operator's output delivers as loaded objects (vs. bare
// references carried in the tuple). The extension property *sort order*
// demonstrates the framework's extensibility (the paper's relational
// example, §3; merge-join + sort enforcer live in the extension modules).
#ifndef OODB_PHYSICAL_PHYS_PROPS_H_
#define OODB_PHYSICAL_PHYS_PROPS_H_

#include <string>

#include "src/algebra/logical_op.h"

namespace oodb {

/// A sort order on one attribute of one binding (ascending).
struct SortSpec {
  BindingId binding = kInvalidBinding;
  FieldId field = kInvalidField;

  bool IsSorted() const { return binding != kInvalidBinding; }
  bool operator==(const SortSpec& o) const {
    return binding == o.binding && field == o.field;
  }
  bool operator<(const SortSpec& o) const {
    return binding != o.binding ? binding < o.binding : field < o.field;
  }
};

/// A physical property vector: which bindings are present in memory, and
/// (optionally) a delivered sort order.
struct PhysProps {
  BindingSet in_memory;
  SortSpec sort;

  /// Does a delivery of `*this` satisfy a requirement of `required`?
  bool Satisfies(const PhysProps& required) const {
    if (!in_memory.ContainsAll(required.in_memory)) return false;
    if (required.sort.IsSorted() && !(sort == required.sort)) return false;
    return true;
  }

  bool operator==(const PhysProps& o) const {
    return in_memory == o.in_memory && sort == o.sort;
  }
  bool operator<(const PhysProps& o) const {
    if (!(in_memory == o.in_memory)) return in_memory < o.in_memory;
    return sort < o.sort;
  }

  PhysProps WithMemory(BindingSet mem) const {
    PhysProps p = *this;
    p.in_memory = mem;
    return p;
  }

  std::string ToString(const QueryContext& ctx) const;
};

/// Bindings in `s` that are *loadable objects* — i.e. excluding bare-
/// reference bindings (Unnest targets), which are always carried by value
/// and can never be an in-memory requirement.
BindingSet LoadableBindings(BindingSet s, const QueryContext& ctx);

/// Bindings a predicate/emit-list needs loaded to evaluate: kAttr references
/// (field reads) but not kSelf references (the OID is in the tuple slot).
BindingSet LoadRequirements(const ScalarExprPtr& expr, const QueryContext& ctx);
BindingSet LoadRequirements(const std::vector<ScalarExprPtr>& exprs,
                            const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_PHYSICAL_PHYS_PROPS_H_
