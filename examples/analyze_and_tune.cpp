// DBA workflow: run queries through the Session facade, inspect plans with
// Explain, refresh statistics with Analyze, and keep applications running
// across index changes with dynamic plan selection.
#include <cstdio>

#include "src/oodb.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog(/*scale=*/0.05);
  Session session(&db.catalog);
  GenOptions gen;
  gen.num_plants = 30;
  if (auto r = GeneratePaperData(db, &session.store(), gen); !r.ok()) {
    std::fprintf(stderr, "datagen: %s\n", r.status().ToString().c_str());
    return 1;
  }

  const char* query =
      "SELECT t.name FROM Task t IN Tasks, Employee e IN t.team_members "
      "WHERE e.name == \"Fred\" && t.time == 5;";

  std::printf("==== EXPLAIN before statistics refresh ====\n");
  if (auto plan = session.Explain(query); plan.ok()) {
    std::printf("%s", plan->c_str());
  }

  // The catalog's statistics were estimates; measure the real population.
  std::printf("\n==== ANALYZE ====\n");
  if (Status s = session.Analyze(); !s.ok()) {
    std::fprintf(stderr, "analyze: %s\n", s.ToString().c_str());
    return 1;
  }
  const FieldDef& time = db.catalog.schema().type(db.task).field(db.task_time);
  std::printf("measured: task.time has %lld distinct values in [%lld, %lld]\n",
              static_cast<long long>(time.distinct_values),
              static_cast<long long>(time.min_value),
              static_cast<long long>(time.max_value));

  std::printf("\n==== Run the query ====\n");
  auto result = session.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s-> %lld rows, simulated %.3f s\n",
              result->PlanText(true).c_str(),
              static_cast<long long>(result->exec.rows),
              result->exec.sim_total_s());

  // Compile once, survive index drops at run time (ObjectStore-style
  // dynamic plans, but each variant is the cost-based optimum).
  std::printf("\n==== Dynamic plans across index availability ====\n");
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(query, &ctx);
  auto compiled = DynamicPlan::Compile(**logical, &ctx, &db.catalog);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  for (bool drop_time_index : {false, true}) {
    (void)db.catalog.SetIndexEnabled(kIdxTasksTime, !drop_time_index);
    auto variant = compiled->Select(db.catalog);
    if (!variant.ok()) continue;
    auto stats = ExecutePlan(*(*variant)->plan, &session.store(), &ctx);
    std::printf("time index %s: root %-12s est %.2f s, simulated %.3f s, "
                "%lld rows\n",
                drop_time_index ? "DROPPED" : "present",
                PhysOpKindName((*variant)->plan->op.kind),
                (*variant)->cost.total(),
                stats.ok() ? stats->sim_total_s() : -1.0,
                stats.ok() ? static_cast<long long>(stats->rows) : -1);
  }
  (void)db.catalog.SetIndexEnabled(kIdxTasksTime, true);
  return 0;
}
