#include "src/physical/parallel.h"

#include <cmath>
#include <memory>
#include <utility>

#include "src/physical/algorithms.h"

namespace oodb {

namespace {

/// CPU of the driver chain from `node` down to (and including) `driver` —
/// the work each Exchange worker performs on its own partition slice.
/// Everything off this chain (hash builds, nested-loops buffers) is
/// replicated per worker and therefore not divided by dop.
double DriverChainCpu(const PlanNode& node, const PlanNode* driver) {
  double cpu = node.local_cost.cpu_s;
  if (&node == driver) return cpu;
  switch (node.op.kind) {
    case PhysOpKind::kFilter:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
      return cpu + DriverChainCpu(*node.children[0], driver);
    case PhysOpKind::kHybridHashJoin:
    case PhysOpKind::kNestedLoops:
      return cpu + DriverChainCpu(*node.children[1], driver);
    default:
      return cpu;  // unreachable when `driver` was found below `node`
  }
}

}  // namespace

const PlanNode* FindPartitionableScan(const PlanNode& plan) {
  switch (plan.op.kind) {
    case PhysOpKind::kFileScan:
    case PhysOpKind::kIndexScan:
      return &plan;
    case PhysOpKind::kFilter:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
      return FindPartitionableScan(*plan.children[0]);
    case PhysOpKind::kHybridHashJoin:  // build replicated, probe partitioned
    case PhysOpKind::kNestedLoops:     // buffer replicated, right partitioned
      return FindPartitionableScan(*plan.children[1]);
    default:
      // Sort, merge join, and set ops depend on seeing the whole (ordered)
      // input; a nested exchange partitions for itself.
      return nullptr;
  }
}

PlanNodePtr PlantExchanges(PlanNodePtr plan, const CostModel& cm,
                           int max_dop) {
  if (max_dop <= 1 || plan == nullptr) return plan;

  // Descend through a root Sort enforcer: it consumes its whole input
  // before emitting, so unordered (exchanged) input below it is harmless.
  if (plan->op.kind == PhysOpKind::kSort) {
    PlanNodePtr child = PlantExchanges(plan->children[0], cm, max_dop);
    if (child == plan->children[0]) return plan;
    return PlanNode::Make(plan->op, {std::move(child)}, plan->logical,
                          plan->delivered, plan->local_cost);
  }

  // An ordered delivery reaching the consumer (e.g. an index scan
  // satisfying ORDER BY with no Sort above) must not be shuffled away.
  if (plan->delivered.sort.IsSorted()) return plan;

  const PlanNode* driver = FindPartitionableScan(*plan);
  if (driver == nullptr) return plan;

  double total_cpu = plan->total_cost.cpu_s;
  double chain_cpu = DriverChainCpu(*plan, driver);
  double out_card = plan->logical.card;
  double best_cpu = total_cpu;  // est(1): the serial plan
  int best_dop = 1;
  for (int dop = 2; dop <= max_dop; ++dop) {
    double est = (total_cpu - chain_cpu) +
                 chain_cpu / static_cast<double>(dop) +
                 ExchangeCost(cm, out_card, dop).cpu_s;
    if (est < best_cpu) {
      best_cpu = est;
      best_dop = dop;
    }
  }
  if (best_dop <= 1) return plan;

  // Built by hand (not PlanNode::Make): the Exchange's total cost is the
  // anticipated *response time* est(best_dop), which is less than the
  // child's summed work — its local cost is the (negative) speedup net of
  // startup and flow overhead.
  auto ex = std::make_shared<PlanNode>();
  ex->op.kind = PhysOpKind::kExchange;
  ex->op.dop = best_dop;
  ex->op.partition_binding = driver->op.binding;
  ex->logical = plan->logical;
  ex->delivered = plan->delivered;
  ex->delivered.sort = SortSpec{};  // workers interleave: order is lost
  ex->total_cost = Cost{plan->total_cost.io_s, best_cpu};
  ex->local_cost = Cost{0.0, best_cpu - total_cpu};
  ex->children.push_back(std::move(plan));
  return ex;
}

}  // namespace oodb
