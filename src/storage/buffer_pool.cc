#include "src/storage/buffer_pool.h"

namespace oodb {

Status BufferPool::Access(PageId page) {
  if (faults_ != nullptr) OODB_RETURN_IF_ERROR(faults_->OnPageAccess(page));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(page);
  if (it != index_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // The disk read stays inside the critical section so that the miss, its
  // arm movement, and the eviction are one atomic event — concurrent
  // workers observe a consistent LRU and a serializable read sequence.
  disk_->Read(page);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return Status::OK();
}

void BufferPool::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace oodb
