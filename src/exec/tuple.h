// Runtime tuples: one slot per binding, each holding a reference (OID) and,
// when the component is *present in memory*, a pointer to the loaded object.
// The gap between "slot has a ref" and "slot has a loaded object" is the
// physical present-in-memory property at runtime; expression evaluation
// fails loudly if a plan tries to read a field of an unloaded component,
// which makes execution an end-to-end check of the optimizer's property
// machinery.
//
// Batch layout: operators exchange TupleBatch objects — a fixed-capacity
// batch of rows over a single flat Slot arena (row-major, column count =
// number of bindings). The arena is allocated once per operator and rows
// are recycled across Next() calls, so steady-state execution performs no
// per-tuple heap allocation.
//
// Columnar view: a batch optionally carries (a) a *selection vector* — a
// uint16_t index list marking which rows are alive, so filters mark
// survivors instead of moving Slot rows, with physical compaction deferred
// to pipeline breakers and Exchange serialization points — and (b) cached
// *typed column views*: per (binding, field), the column's values gathered
// once per batch into a contiguous int64/double vector with a presence
// bitmap, which is what the branchless filter kernels and the vectorized
// hash-join probe loop over. Both are invisible to row-at-a-time consumers
// (active()/active_ref() degrade to size()/ref() when no selection is set).
#ifndef OODB_EXEC_TUPLE_H_
#define OODB_EXEC_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/algebra/expr.h"
#include "src/algebra/logical_op.h"
#include "src/storage/object.h"

namespace oodb {

struct ColumnProjection;
class ObjectStore;

struct Slot {
  Oid ref = kInvalidOid;
  const ObjectData* obj = nullptr;

  bool present() const { return ref != kInvalidOid; }
  bool loaded() const { return obj != nullptr; }
};

struct Tuple;

/// Read-only view of one row — either an owning Tuple or a TupleBatch row.
/// Passed by value (pointer + width); never outlives the storage it views.
struct TupleRef {
  const Slot* slots = nullptr;
  size_t width = 0;

  TupleRef() = default;
  TupleRef(const Slot* s, size_t w) : slots(s), width(w) {}
  TupleRef(const Tuple& t);  // implicit: Tuple evaluates wherever a row does

  const Slot& slot(BindingId b) const { return slots[b]; }
};

/// Owning row used where tuples must outlive their source batch (hash-join
/// build tables, sort buffers, nested-loops buffers, set-op materialization).
struct Tuple {
  std::vector<Slot> slots;

  explicit Tuple(int num_bindings = 0) : slots(num_bindings) {}
  /// Copy-constructs straight from a batch row — one copy, one allocation.
  /// (The buffering pattern of reading into a reused Tuple and then pushing
  /// it into a vector costs a second full-width copy per row; see DESIGN
  /// "Columnar execution" for the measured build-side effect.)
  explicit Tuple(TupleRef row) : slots(row.slots, row.slots + row.width) {}
  Slot& slot(BindingId b) { return slots[b]; }
  const Slot& slot(BindingId b) const { return slots[b]; }

  /// Replaces this tuple's contents with a copy of `row`.
  void AssignFrom(TupleRef row) {
    slots.assign(row.slots, row.slots + row.width);
  }

  /// Merges the occupied slots of `other` into this tuple.
  void MergeFrom(TupleRef other);
};

inline TupleRef::TupleRef(const Tuple& t)
    : slots(t.slots.data()), width(t.slots.size()) {}

/// Mutable view of one TupleBatch row. The batch owns the storage; the view
/// is invalidated by Clear()/refill of its batch.
struct TupleRow {
  Slot* slots = nullptr;
  size_t width = 0;

  Slot& slot(BindingId b) { return slots[b]; }
  const Slot& slot(BindingId b) const { return slots[b]; }
  operator TupleRef() const { return TupleRef(slots, width); }

  void Clear() { std::fill(slots, slots + width, Slot{}); }

  /// Copies the first min(width, src.width) slots of `src` into this row.
  void CopyFrom(TupleRef src) {
    std::copy(src.slots, src.slots + std::min(width, src.width), slots);
  }

  /// Merges the occupied slots of `other` into this row.
  void MergeFrom(TupleRef other) {
    size_t n = std::min(width, other.width);
    for (size_t i = 0; i < n; ++i) {
      if (other.slots[i].present()) slots[i] = other.slots[i];
    }
  }
};

/// One typed column of a batch: values of (binding, field) over the batch's
/// physical rows [0, size), gathered into a contiguous vector. Exactly one
/// of ints/reals is set. `loaded` is a presence bitmap (bit i: row i's slot
/// holds a loaded component); kernels take the all_loaded fast path and
/// only walk the bitmap to attribute an error.
struct ColumnView {
  const int64_t* ints = nullptr;
  const double* reals = nullptr;
  bool is_real = false;
  bool all_loaded = false;
  const uint64_t* loaded = nullptr;

  bool loaded_at(size_t i) const {
    return all_loaded || ((loaded[i >> 6] >> (i & 63)) & 1) != 0;
  }
};

/// A fixed-capacity batch of rows over one flat Slot arena. `width` is the
/// number of bindings (columns); row i occupies slots [i*width, (i+1)*width).
class TupleBatch {
 public:
  /// Default rows per batch (the exec_batch_size knob's default).
  static constexpr size_t kDefaultCapacity = 1024;
  /// Selection-vector entries are uint16_t row indices; batch capacity is
  /// clamped here (the executor never asks for more).
  static constexpr size_t kMaxCapacity = 65535;

  TupleBatch() = default;
  TupleBatch(int width, size_t capacity)
      : width_(width),
        capacity_(std::min(capacity, kMaxCapacity)),
        slots_(static_cast<size_t>(width) * std::min(capacity, kMaxCapacity)) {}

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  int width() const { return width_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  TupleRow row(size_t i) {
    ++epoch_;
    return TupleRow{slots_.data() + i * width_, static_cast<size_t>(width_)};
  }
  TupleRef ref(size_t i) const {
    return TupleRef(slots_.data() + i * width_, static_cast<size_t>(width_));
  }

  // --- selection vector ---
  // When set, sel()[0..active()) lists the ascending physical indices of
  // the rows that are alive; the arena itself is untouched. When unset,
  // every row [0, size) is alive.

  bool has_selection() const { return has_sel_; }
  /// Rows alive in this batch — what Next() returns and consumers iterate.
  size_t active() const { return has_sel_ ? sel_size_ : size_; }
  /// Physical index of the k-th alive row.
  size_t active_index(size_t k) const { return has_sel_ ? sel_[k] : k; }
  TupleRef active_ref(size_t k) const { return ref(active_index(k)); }
  TupleRow active_row(size_t k) { return row(active_index(k)); }
  const uint16_t* sel() const { return sel_.data(); }

  /// The capacity-sized selection buffer for kernels to fill (in-place
  /// refinement of the current selection is safe: writes trail reads).
  /// Does not mark the selection active — call SetSelection after filling.
  uint16_t* MutableSelection() {
    if (sel_.size() < capacity_) sel_.resize(capacity_);
    return sel_.data();
  }
  /// Marks the first `n` entries of the selection buffer as the live set.
  void SetSelection(size_t n) {
    has_sel_ = true;
    sel_size_ = n;
  }
  void ClearSelection() {
    has_sel_ = false;
    sel_size_ = 0;
  }

  /// Physically compacts the alive rows to the front and drops the
  /// selection — the lazy compaction at pipeline breakers and Exchange
  /// serialization points. No-op without a selection.
  void Compact() {
    if (!has_sel_) return;
    for (size_t k = 0; k < sel_size_; ++k) {
      size_t i = sel_[k];
      if (i != k) CopyRow(k, i);
    }
    size_ = sel_size_;
    has_sel_ = false;
    sel_size_ = 0;
    ++epoch_;
  }

  // --- typed column views ---

  /// The typed column of (binding, field) over rows [0, size), gathering it
  /// on first use and caching until the batch's rows change. With a store
  /// projection the gather is one indexed load per row; without one it
  /// chases each row's object pointer and infers the column kind from the
  /// values (returning null — per-row fallback — on a kind mix or a
  /// non-numeric column).
  const ColumnView* ExtractFieldColumn(BindingId binding, FieldId field,
                                       const ColumnProjection* proj);

  /// The OID (self/identity) column of `binding`: ints[i] = slot ref, with
  /// the presence bitmap tracking present() rather than loaded().
  const ColumnView* ExtractOidColumn(BindingId binding);

  /// Appends a cleared row and returns a view of it. The arena is fixed, so
  /// this never allocates; callers must not append past capacity().
  TupleRow AppendRow() {
    TupleRow r = row(size_++);
    r.Clear();
    return r;
  }

  /// Appends a row WITHOUT clearing it — for emit paths that immediately
  /// overwrite every slot (a full-width CopyFrom). Rows are recycled across
  /// Next() calls, so skipping the clear anywhere else leaks stale slots.
  TupleRow AppendRowRaw() { return row(size_++); }

  /// Overwrites row `dst` with row `src` (filter/compaction step).
  void CopyRow(size_t dst, size_t src) {
    ++epoch_;
    std::copy(slots_.data() + src * width_,
              slots_.data() + (src + 1) * width_, slots_.data() + dst * width_);
  }

  void Clear() {
    size_ = 0;
    has_sel_ = false;
    sel_size_ = 0;
    ++epoch_;
  }
  /// Drops rows past `n` (after in-place compaction).
  void Truncate(size_t n) {
    size_ = n;
    ++epoch_;
  }

 private:
  /// One cached column gather; valid while epoch matches the batch's.
  struct ColumnCache {
    BindingId binding = kInvalidBinding;
    FieldId field = kInvalidField;  // kInvalidField = OID column
    uint64_t epoch = 0;
    bool usable = false;  // false: remembered as un-typeable this epoch
    ColumnView view;
    std::vector<int64_t> ints;
    std::vector<double> reals;
    std::vector<uint64_t> bits;
  };

  ColumnCache* FindOrAddColumn(BindingId binding, FieldId field, bool* fresh);

  int width_ = 0;
  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<Slot> slots_;

  std::vector<uint16_t> sel_;
  size_t sel_size_ = 0;
  bool has_sel_ = false;

  /// Bumped on every row mutation (not on selection changes); column
  /// caches self-invalidate by comparing epochs. unique_ptr keeps returned
  /// ColumnView pointers stable while further columns are extracted.
  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<ColumnCache>> columns_;
};

/// Evaluates a scalar expression against a row. Booleans are encoded as
/// Value::Int(0/1). Returns Internal if an attribute's component is not
/// loaded (a plan/property bug).
Result<Value> EvalExpr(const ScalarExpr& expr, TupleRef tuple,
                       const QueryContext& ctx);

/// Evaluates a predicate to a boolean.
Result<bool> EvalPredicate(const ScalarExprPtr& pred, TupleRef tuple,
                           const QueryContext& ctx);

/// A predicate specialized for tight-loop batch evaluation. Analyze()
/// recognizes conjunctions of `attr <cmp> const` conjuncts and compiles
/// them to direct slot/field comparisons against the stored Value —
/// no interpreter recursion, no Result/Value copies per conjunct. Any
/// other shape yields specialized() == false and callers fall back to
/// EvalPredicate row by row.
///
/// Analysis walks the expression and allocates the step vector, which
/// costs about as much as interpreting the predicate once — it only pays
/// for itself amortized over a batch. kMinKernelRows is that break-even
/// point: below it (and in particular at batch size 1, the
/// tuple-at-a-time degeneration) interpretation is the faster plan and
/// callers should not analyze at all.
///
/// On top of the per-row paths, a specialized program can run *columnar*:
/// each conjunct becomes one branchless compare-and-select pass over a
/// typed column, chained by refining the batch's selection vector
/// (ScanSelect for the fused-scan case, EvalBatchColumnar for batches).
/// Per-conjunct refinement does exactly the comparisons per row that the
/// short-circuiting row loop does, so simulated CPU charges are unchanged;
/// only wall-clock time differs.
class FilterProgram {
 public:
  static constexpr size_t kMinKernelRows = 8;

  static FilterProgram Analyze(const ScalarExprPtr& pred);

  bool specialized() const { return specialized_; }

  /// True when every compiled step reads binding `b` — the condition for
  /// fusing the program into the scan that produces that binding.
  bool SingleBinding(BindingId b) const;

  /// Rebuilds the conjunction the compiled steps implement, preserving each
  /// source conjunct's operand orientation, so the result is structurally
  /// comparable (VerifyFusedConjuncts) with the predicate that was
  /// analyzed. Null when not specialized.
  ScalarExprPtr ReconstructedPredicate() const;

  /// Evaluates the compiled conjuncts directly against one loaded object —
  /// the scan-fusion path, where rows are filtered before they are ever
  /// materialized into a batch. No error case: the object is in hand.
  bool EvalSteps(const ObjectData& obj) const;

  /// Requests the exact cache lines EvalSteps will read from `obj` — one
  /// per step field. Each object's field array is its own heap block, so
  /// at scan working-set sizes the first touch is a miss; issuing the
  /// request a dozen rows ahead takes it off the critical path.
  void PrefetchFields(const ObjectData& obj) const {
    for (const CmpStep& step : steps_) {
      __builtin_prefetch(&obj.value(step.field));
    }
  }

  /// Evaluates the compiled conjuncts against `row`. Mirrors EvalPredicate
  /// exactly, including the loud Internal error on an unloaded component.
  Result<bool> Eval(TupleRef row, const QueryContext& ctx) const;

  /// Selection over rows [0, n) of `batch`, compacting passing rows in
  /// place and truncating; returns the kept count. One Result for the
  /// whole batch — the inner loop is pure comparisons, which is where the
  /// kernel's speedup over row-at-a-time Eval() calls comes from.
  Result<size_t> EvalBatch(TupleBatch* batch, size_t n,
                           const QueryContext& ctx) const;

  /// Resolves each step's dense store projection (null entries where the
  /// field isn't projectable), aligned with the compiled steps — the input
  /// to Vectorizable/ScanSelect/EvalBatchColumnar. Empty if unspecialized.
  std::vector<const ColumnProjection*> StepProjections(
      ObjectStore* store, const QueryContext& ctx) const;

  /// True when every step can run as a columnar kernel over the given
  /// per-step store projections (projs[s] for steps_[s]): the projection
  /// exists and is homogeneous. The precondition of ScanSelect.
  bool Vectorizable(const std::vector<const ColumnProjection*>& projs) const;

  /// Fused-scan columnar selection: fills sel[0..count) with the ascending
  /// indices in [0, n) of `oids` whose projected field values pass every
  /// step, reading values straight out of the dense by-OID projections —
  /// rejected rows are never materialized, matching EvalSteps semantics
  /// bit for bit. Requires Vectorizable(projs).
  size_t ScanSelect(const Oid* oids, size_t n,
                    const std::vector<const ColumnProjection*>& projs,
                    uint16_t* sel) const;

  /// Columnar selection over a batch: extracts each step's typed column
  /// (once per batch) and refines the batch's selection vector with one
  /// branchless kernel pass per conjunct. Returns false — batch untouched —
  /// when some column cannot be typed (caller falls back to the per-row
  /// path); errors exactly where the row loop would (an unloaded component
  /// among rows still alive when its conjunct runs).
  Result<bool> EvalBatchColumnar(
      TupleBatch* batch, const std::vector<const ColumnProjection*>& projs,
      const QueryContext& ctx) const;

 private:
  struct CmpStep {
    BindingId binding = kInvalidBinding;
    FieldId field = kInvalidField;
    CmpOp op = CmpOp::kEq;
    const Value* constant = nullptr;  // points into the (shared) expr tree
    /// True when the source conjunct was written const-cmp-attr (op was
    /// reversed during analysis); ReconstructedPredicate restores it.
    bool reversed = false;
  };

  static bool StepPass(const CmpStep& step, const Value& l);

  bool specialized_ = false;
  std::vector<CmpStep> steps_;
};

}  // namespace oodb

#endif  // OODB_EXEC_TUPLE_H_
