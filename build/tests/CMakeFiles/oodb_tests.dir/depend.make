# Empty dependencies file for oodb_tests.
# This may be replaced when dependencies are built.
