#include "src/exec/batch_pool.h"

#include <utility>

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Recycling effectiveness for the metrics snapshot: Take() hits (arena
/// reused) vs misses (fresh allocation), and arenas parked by Return().
/// Steady-state execution should show hits climbing and misses flat — the
/// zero-alloc invariant exec_test asserts. Resolved once; never freed.
struct BatchPoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* recycled;

  static const BatchPoolMetrics& Get() {
    static const BatchPoolMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      BatchPoolMetrics m;
      m.hits = r.counter("oodb_batch_pool_hits_total",
                         "Take() calls served by a pooled arena.");
      m.misses = r.counter("oodb_batch_pool_misses_total",
                           "Take() calls that allocated a fresh arena.");
      m.recycled = r.counter("oodb_batch_pool_recycled_total",
                             "Arenas parked for reuse by Return().");
      return m;
    }();
    return m;
  }
};

}  // namespace

BatchPool& BatchPool::Instance() {
  static BatchPool pool;
  return pool;
}

TupleBatch BatchPool::Take(int width, size_t capacity) {
  {
    MutexLock lock(mu_);
    // Newest-first: the most recently returned arena is the most likely to
    // match the running query's shape (and to still be cache-warm).
    for (size_t i = pool_.size(); i > 0; --i) {
      TupleBatch& b = pool_[i - 1];
      if (b.width() == width && b.capacity() == capacity) {
        TupleBatch out = std::move(b);
        pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(i - 1));
        out.Clear();
        BatchPoolMetrics::Get().hits->Increment();
        return out;
      }
    }
  }
  BatchPoolMetrics::Get().misses->Increment();
  return TupleBatch(width, capacity);
}

void BatchPool::Return(TupleBatch&& batch) {
  if (batch.capacity() == 0) return;  // nothing worth pooling
  MutexLock lock(mu_);
  if (pool_.size() < kMaxPooled) {
    pool_.push_back(std::move(batch));
    BatchPoolMetrics::Get().recycled->Increment();
  }
}

}  // namespace oodb
