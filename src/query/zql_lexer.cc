#include "src/query/zql_lexer.h"

#include <cctype>
#include <cstdlib>

namespace oodb {

namespace {
Status LexError(const std::string& msg, int offset) {
  return Status::ParseError(msg + " at offset " + std::to_string(offset));
}
}  // namespace

Result<std::vector<Token>> LexZql(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t k) { return i + k < n ? input[i + k] : '\0'; };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.kind = TokKind::kIdent;
      tok.text = input.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        // A dot followed by a non-digit ends the number (path syntax like
        // `3.foo` cannot occur; numbers are never dereferenced).
        if (input[i] == '.') {
          if (i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            is_double = true;
          } else {
            break;
          }
        }
        ++i;
      }
      std::string text = input.substr(start, i - start);
      if (is_double) {
        tok.kind = TokKind::kDouble;
        tok.dbl_val = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokKind::kInt;
        tok.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = ++i;
      while (i < n && input[i] != quote) ++i;
      if (i >= n) return LexError("unterminated string literal", tok.offset);
      tok.kind = TokKind::kString;
      tok.text = input.substr(start, i - start);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '.':
        tok.kind = TokKind::kDot;
        ++i;
        break;
      case ',':
        tok.kind = TokKind::kComma;
        ++i;
        break;
      case '(':
        tok.kind = TokKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokKind::kRParen;
        ++i;
        break;
      case ';':
        tok.kind = TokKind::kSemi;
        ++i;
        break;
      case '=':
        if (peek(1) != '=') return LexError("expected '=='", tok.offset);
        tok.kind = TokKind::kEq;
        i += 2;
        break;
      case '!':
        if (peek(1) == '=') {
          tok.kind = TokKind::kNe;
          i += 2;
        } else {
          tok.kind = TokKind::kNot;
          ++i;
        }
        break;
      case '<':
        if (peek(1) == '=') {
          tok.kind = TokKind::kLe;
          i += 2;
        } else {
          tok.kind = TokKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (peek(1) == '=') {
          tok.kind = TokKind::kGe;
          i += 2;
        } else {
          tok.kind = TokKind::kGt;
          ++i;
        }
        break;
      case '&':
        if (peek(1) != '&') return LexError("expected '&&'", tok.offset);
        tok.kind = TokKind::kAnd;
        i += 2;
        break;
      case '|':
        if (peek(1) != '|') return LexError("expected '||'", tok.offset);
        tok.kind = TokKind::kOr;
        i += 2;
        break;
      default:
        return LexError(std::string("unexpected character '") + c + "'",
                        tok.offset);
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = static_cast<int>(n);
  out.push_back(std::move(end));
  return out;
}

}  // namespace oodb
