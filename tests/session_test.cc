// Session facade + ANALYZE statistics collection.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : db_(MakePaperCatalog(0.02)), session_(&db_.catalog) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &session_.store(), gen);
    EXPECT_TRUE(r.ok()) << r.status();
  }

  PaperDb db_;
  Session session_;
};

TEST_F(SessionTest, QueryEndToEnd) {
  auto r = session_.Query(
      "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->exec.rows, 0);
  EXPECT_EQ(static_cast<int64_t>(r->rows().size()), r->exec.rows);
  EXPECT_NE(r->PlanText().find("Index Scan"), std::string::npos);
}

TEST_F(SessionTest, ExplainDoesNotExecute) {
  auto before = session_.store().disk().reads();
  auto plan = session_.Explain(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("cost"), std::string::npos);
  EXPECT_EQ(session_.store().disk().reads(), before);
}

TEST_F(SessionTest, QueryErrorsSurface) {
  EXPECT_FALSE(session_.Query("SELECT nonsense").ok());
  EXPECT_FALSE(session_.Query("SELECT x FROM Widget x IN Widgets;").ok());
}

TEST_F(SessionTest, OptimizerOptionsApply) {
  Session::Options opts;
  opts.optimizer.disabled_rules = {kImplIndexScan};
  Session ablated(&db_.catalog, opts);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db_, &ablated.store(), gen).ok());
  auto r = ablated.Query(
      "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->PlanText().find("Index Scan"), std::string::npos);
}

// --- ANALYZE ---

class AnalyzeTest : public SessionTest {};

TEST_F(AnalyzeTest, CardinalitiesBecomeExact) {
  // Perturb a statistic, then re-analyze.
  CollectionId cities = CollectionId::Set("Cities", db_.city);
  int64_t truth = (*db_.catalog.FindCollection(cities))->cardinality;
  ASSERT_TRUE(db_.catalog.SetCardinality(cities, 7).ok());
  ASSERT_TRUE(session_.Analyze().ok());
  EXPECT_EQ((*db_.catalog.FindCollection(cities))->cardinality, truth);
}

TEST_F(AnalyzeTest, FieldRangesMeasured) {
  ASSERT_TRUE(session_.Analyze().ok());
  const FieldDef& time =
      db_.catalog.schema().type(db_.task).field(db_.task_time);
  // Datagen assigns times 1..distinct.
  EXPECT_EQ(time.min_value, 1);
  EXPECT_GT(time.max_value, 1);
  EXPECT_EQ(time.distinct_values, time.max_value);
}

TEST_F(AnalyzeTest, DistinctCountsMeasured) {
  ASSERT_TRUE(session_.Analyze().ok());
  const FieldDef& name =
      db_.catalog.schema().type(db_.employee).field(db_.emp_name);
  // Class-based names: ~10 distinct at scale 0.02 over 4000 employees.
  EXPECT_GT(name.distinct_values, 1);
  EXPECT_LT(name.distinct_values, 50);
}

TEST_F(AnalyzeTest, SetFanoutMeasured) {
  ASSERT_TRUE(session_.Analyze().ok());
  const FieldDef& members =
      db_.catalog.schema().type(db_.task).field(db_.task_team_members);
  EXPECT_DOUBLE_EQ(members.avg_set_card, 5.0);
}

TEST_F(AnalyzeTest, IndexDistinctKeysMeasured) {
  // Perturb, re-analyze, verify measured key count.
  ASSERT_TRUE(session_.Analyze().ok());
  auto idx = db_.catalog.FindIndex(kIdxTasksTime);
  ASSERT_TRUE(idx.ok());
  auto stored = session_.store().FindIndex(kIdxTasksTime);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*idx)->distinct_keys, (*stored)->num_keys());
}

TEST_F(AnalyzeTest, EstimatesMatchRealityAfterAnalyze) {
  // After ANALYZE, the optimizer's match estimate for an indexed equality
  // equals the true average bucket size (class-based data is uniform).
  ASSERT_TRUE(session_.Analyze().ok());
  auto r = session_.Query(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;");
  ASSERT_TRUE(r.ok()) << r.status();
  double estimated = r->optimized.plan->logical.card;
  EXPECT_NEAR(estimated, static_cast<double>(r->exec.rows),
              estimated * 0.25 + 1);
}

// A governed ANALYZE charges the statistics scan (one row per stored
// object) *before* mutating anything: when the budget cannot cover it, the
// catalog is left entirely untouched — no bump, no cardinality change.
TEST_F(AnalyzeTest, GovernedAnalyzeChargesBeforeMutating) {
  CollectionId cities = CollectionId::Set("Cities", db_.city);
  int64_t truth = (*db_.catalog.FindCollection(cities))->cardinality;
  ASSERT_TRUE(db_.catalog.SetCardinality(cities, 7).ok());
  const uint64_t version = db_.catalog.stats_version();

  GovernorOptions tight;
  tight.max_exec_rows = session_.store().num_objects() - 1;
  QueryGovernor governor(tight);
  AnalyzeOptions opts;
  opts.governor = &governor;
  Status st = AnalyzeStore(session_.store(), &db_.catalog, opts);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(db_.catalog.stats_version(), version);
  EXPECT_EQ((*db_.catalog.FindCollection(cities))->cardinality, 7);

  // With an ample budget the refresh goes through and the scan was charged.
  GovernorOptions ample;
  ample.max_exec_rows = session_.store().num_objects() * 2;
  QueryGovernor ok_governor(ample);
  opts.governor = &ok_governor;
  ASSERT_TRUE(AnalyzeStore(session_.store(), &db_.catalog, opts).ok());
  EXPECT_GE(db_.catalog.stats_version(), version + 2);
  EXPECT_EQ((*db_.catalog.FindCollection(cities))->cardinality, truth);
  EXPECT_EQ(ok_governor.stats().rows_charged,
            session_.store().num_objects());
}

TEST_F(AnalyzeTest, SelectiveOptions) {
  CollectionId cities = CollectionId::Set("Cities", db_.city);
  ASSERT_TRUE(db_.catalog.SetCardinality(cities, 7).ok());
  AnalyzeOptions opts;
  opts.cardinalities = false;
  ASSERT_TRUE(session_.Analyze(opts).ok());
  // Cardinalities untouched when disabled.
  EXPECT_EQ((*db_.catalog.FindCollection(cities))->cardinality, 7);
  ASSERT_TRUE(session_.Analyze().ok());
}

}  // namespace
}  // namespace oodb
