file(REMOVE_RECURSE
  "liboodb.a"
)
