#include "src/catalog/schema.h"

namespace oodb {

const char* FieldKindName(FieldKind kind) {
  switch (kind) {
    case FieldKind::kInt:
      return "int";
    case FieldKind::kDouble:
      return "double";
    case FieldKind::kString:
      return "string";
    case FieldKind::kRef:
      return "ref";
    case FieldKind::kRefSet:
      return "set<ref>";
  }
  return "?";
}

FieldId TypeDef::AddField(FieldDef field) {
  fields_.push_back(std::move(field));
  return static_cast<FieldId>(fields_.size() - 1);
}

Result<FieldId> TypeDef::FieldByName(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<FieldId>(i);
  }
  return Status::NotFound("no field '" + name + "' in type '" + name_ + "'");
}

TypeId Schema::AddType(std::string name, int32_t object_size) {
  TypeId id = static_cast<TypeId>(types_.size());
  types_.emplace_back(id, std::move(name), object_size);
  return id;
}

Result<TypeId> Schema::TypeByName(const std::string& name) const {
  for (const TypeDef& t : types_) {
    if (t.name() == name) return t.id();
  }
  return Status::NotFound("no type named '" + name + "'");
}

Result<FieldId> Schema::ResolveField(TypeId type, const std::string& field) const {
  if (!has_type(type)) {
    return Status::InvalidArgument("invalid type id in ResolveField");
  }
  return types_[type].FieldByName(field);
}

Status Schema::InheritFields(TypeId subtype, TypeId supertype) {
  if (!has_type(subtype) || !has_type(supertype)) {
    return Status::InvalidArgument("invalid type id in InheritFields");
  }
  if (!types_[subtype].fields().empty()) {
    return Status::InvalidArgument(
        "InheritFields must be called before adding fields to the subtype");
  }
  types_[subtype].set_supertype(supertype);
  for (const FieldDef& f : types_[supertype].fields()) {
    types_[subtype].AddField(f);
  }
  return Status::OK();
}

bool Schema::IsSubtypeOf(TypeId sub, TypeId super) const {
  while (sub != kInvalidType) {
    if (sub == super) return true;
    sub = types_[sub].supertype();
  }
  return false;
}

}  // namespace oodb
