// Runtime objects: typed field values addressed by OID.
#ifndef OODB_STORAGE_OBJECT_H_
#define OODB_STORAGE_OBJECT_H_

#include <vector>

#include "src/algebra/expr.h"
#include "src/catalog/schema.h"

namespace oodb {

using Oid = int64_t;
inline constexpr Oid kInvalidOid = -1;

/// One stored object. Scalar and single-reference fields live in `values`
/// (references encoded as Value::Int(oid)); set-valued reference fields live
/// in `ref_sets`, keyed by the field's position among the type's kRefSet
/// fields (see ObjectStore::RefSetSlot).
struct ObjectData {
  Oid oid = kInvalidOid;
  TypeId type = kInvalidType;
  std::vector<Value> values;
  std::vector<std::vector<Oid>> ref_sets;

  const Value& value(FieldId f) const { return values[f]; }
  Oid ref(FieldId f) const { return values[f].i; }
};

}  // namespace oodb

#endif  // OODB_STORAGE_OBJECT_H_
