// The transformation rule set (paper §3 "Transformation Rules"): the known
// relational transformations plus the new rules pertaining to the
// materialize operator — Mat/Mat commutativity, Mat through Select / Unnest
// / Join, and the Mat -> Join rewrite that lets set-matching algorithms
// (and reverse-direction link traversal) compete with pointer chasing.
#ifndef OODB_RULES_TRANSFORMATIONS_H_
#define OODB_RULES_TRANSFORMATIONS_H_

#include <memory>
#include <vector>

#include "src/volcano/rule.h"

namespace oodb {

/// Builds the full default transformation rule set.
std::vector<std::unique_ptr<TransformationRule>> MakeDefaultTransformations();

/// Canonical conjunction: conjuncts sorted by hash so equivalent predicates
/// hash identically in the memo.
ScalarExprPtr CanonicalConjunction(std::vector<ScalarExprPtr> conjuncts);

}  // namespace oodb

#endif  // OODB_RULES_TRANSFORMATIONS_H_
