#include "src/workloads/paper_queries.h"

namespace oodb {

Result<LogicalExprPtr> BuildPaperQuery(int n, const PaperDb& db,
                                       QueryContext* ctx) {
  ctx->catalog = &db.catalog;
  const char* text;
  switch (n) {
    case 1:
      text = kQuery1Text;
      break;
    case 2:
      text = kQuery2Text;
      break;
    case 3:
      text = kQuery3Text;
      break;
    case 4:
      text = kQuery4Text;
      break;
    default:
      return Status::InvalidArgument("paper query number must be 1-4");
  }
  return ParseAndSimplify(text, ctx);
}

}  // namespace oodb
