// Iterator-model (open/next/close) execution operators over the simulated
// object store — one per physical algebra operator. The module transfers
// "query execution concepts and algorithms from the Volcano query execution
// module" (the paper's future-work item 5), closing the loop so optimized
// plans can actually run.
#ifndef OODB_EXEC_OPERATORS_H_
#define OODB_EXEC_OPERATORS_H_

#include <memory>

#include "src/common/governor.h"
#include "src/exec/tuple.h"
#include "src/storage/object_store.h"
#include "src/volcano/plan.h"

namespace oodb {

/// The iterator interface.
class ExecNode {
 public:
  virtual ~ExecNode() = default;
  virtual Status Open() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual Result<bool> Next(Tuple* out) = 0;
  virtual void Close() = 0;
};

/// Builds an executable iterator tree from a physical plan. A non-null
/// `governor` is checked cooperatively at every operator Next() (including
/// inside blocking Open() phases, which drain their children through
/// Next()), so cancellation and deadline/budget trips surface mid-pipeline.
Result<std::unique_ptr<ExecNode>> BuildExecTree(const PlanNode& plan,
                                                ObjectStore* store,
                                                QueryContext* ctx,
                                                QueryGovernor* governor = nullptr);

}  // namespace oodb

#endif  // OODB_EXEC_OPERATORS_H_
