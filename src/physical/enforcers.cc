#include "src/physical/enforcers.h"

#include <algorithm>

#include "src/physical/algorithms.h"

namespace oodb {

std::vector<MatStep> PlanAssemblySteps(BindingSet missing,
                                       const QueryContext& ctx,
                                       BindingSet* below) {
  // Order steps so that a step's source, if itself being assembled, comes
  // first; sources not being assembled are required of the input.
  std::vector<BindingId> ids = missing.ToVector();
  auto depth = [&](BindingId b) {
    int d = 0;
    while (ctx.bindings.def(b).parent != kInvalidBinding) {
      b = ctx.bindings.def(b).parent;
      ++d;
    }
    return d;
  };
  std::sort(ids.begin(), ids.end(),
            [&](BindingId a, BindingId b) { return depth(a) < depth(b); });
  std::vector<MatStep> steps;
  BindingSet need_below;
  for (BindingId b : ids) {
    const BindingDef& def = ctx.bindings.def(b);
    MatStep step;
    step.target = b;
    if (def.origin == BindingOrigin::kMat && def.via_field != kInvalidField) {
      step.source = def.parent;
      step.field = def.via_field;
      if (!missing.Contains(def.parent) && !ctx.bindings.def(def.parent).is_ref) {
        need_below.Add(def.parent);
      }
    } else if (def.origin == BindingOrigin::kMat) {
      step.source = def.parent;  // bare-reference materialization
      step.field = kInvalidField;
    } else {
      // Get/Unnest-origin bindings cannot be assembled from references.
      return {};
    }
    steps.push_back(step);
  }
  if (below != nullptr) *below = need_below;
  return steps;
}

namespace {

/// Assembly as the enforcer of the present-in-memory property.
class AssemblyEnforcer : public Enforcer {
 public:
  const char* name() const override { return kEnforcerAssembly; }

  Status Apply(OptContext& ctx, GroupId group, const PhysProps& required,
               std::vector<EnforcerAlt>* out) const override {
    // Enforce the Mat-derived bindings among the requirements.
    BindingSet enforceable;
    for (BindingId b : required.in_memory.ToVector()) {
      if (ctx.qctx->bindings.def(b).origin == BindingOrigin::kMat) {
        enforceable.Add(b);
      }
    }
    if (enforceable.Empty()) return Status::OK();
    // A required limit can only be delivered by a truncating operator
    // (TopK / merging Exchange); the TopK enforcer re-requires the
    // in-memory set of its child, where this enforcer applies instead.
    if (required.limit > 0) return Status::OK();

    BindingSet below;
    std::vector<MatStep> steps =
        PlanAssemblySteps(enforceable, *ctx.qctx, &below);
    if (steps.empty()) return Status::OK();

    PhysProps child_req;
    child_req.in_memory =
        required.in_memory.Minus(enforceable).Union(below);
    child_req.in_memory = LoadableBindings(
        child_req.in_memory.Intersect(ctx.memo->group(group).props.scope),
        *ctx.qctx);
    // Assembly preserves row order: the windowed elevator reorders its
    // *fetches* by page, never the emitted rows (AssemblyExec emits window
    // rows in arrival order). A required sort therefore passes straight
    // through to the child and is re-delivered above.
    child_req.sort = required.sort;

    double in_card = ctx.memo->group(group).props.card;
    auto emit = [&](bool warm) {
      EnforcerAlt alt;
      alt.op.kind = PhysOpKind::kAssembly;
      alt.op.mats = steps;
      alt.op.window = ctx.cost_model->opts().assembly_window;
      alt.op.warm_start = warm;
      alt.child_required = child_req;
      alt.delivered = child_req;
      alt.delivered.in_memory = alt.delivered.in_memory.Union(enforceable);
      alt.local_cost =
          AssemblyCost(*ctx.cost_model, *ctx.qctx->catalog, ctx.qctx->bindings,
                       in_card, steps, /*window=*/0, warm);
      out->push_back(std::move(alt));
    };
    emit(false);
    if (ctx.opts->enable_warm_start_assembly) {
      bool any_extent = false;
      for (const MatStep& s : steps) {
        if (ctx.qctx->catalog
                ->TypeCardinality(ctx.qctx->bindings.def(s.target).type)
                .has_value()) {
          any_extent = true;
        }
      }
      if (any_extent) emit(true);
    }
    return Status::OK();
  }
};

/// Estimated number of distinct values of the leading `prefix` sort keys:
/// the product of per-field distinct counts from the schema, with unknown
/// fields (distinct_values == 0) defaulting to 10% of the input, capped at
/// the input cardinality.
double DistinctPrefix(const QueryContext& ctx, const SortSpec& sort,
                      size_t prefix, double card) {
  double d = 1.0;
  for (size_t i = 0; i < prefix && i < sort.keys.size(); ++i) {
    const SortKey& k = sort.keys[i];
    int64_t dv =
        ctx.schema().type(ctx.bindings.def(k.binding).type).field(k.field)
            .distinct_values;
    d *= dv > 0 ? static_cast<double>(dv) : std::max(1.0, 0.1 * card);
    if (d >= card) return std::max(card, 1.0);
  }
  return std::min(d, std::max(card, 1.0));
}

/// Sort / TopK as the enforcer of the sort-order and limit properties
/// (extension). Beyond the full sort it emits prefix-aware alternatives:
/// when the child can deliver a leading-key prefix of the required order
/// (e.g. an ordered index scan), only runs of equal prefix values need
/// re-ordering. A required limit is enforced by a bounded-heap TopK instead
/// of a full sort.
class SortEnforcer : public Enforcer {
 public:
  const char* name() const override { return kEnforcerSort; }

  Status Apply(OptContext& ctx, GroupId group, const PhysProps& required,
               std::vector<EnforcerAlt>* out) const override {
    if (!required.sort.IsSorted() && required.limit <= 0) return Status::OK();
    const LogicalProps& props = ctx.memo->group(group).props;
    // Every sort key must be readable in this group's scope.
    for (const SortKey& k : required.sort.keys) {
      if (!props.scope.Contains(k.binding)) return Status::OK();
    }

    // Base child requirement: the order and limit are what this enforcer
    // provides; sorting on an attribute requires its binding loaded.
    PhysProps child_base = required;
    child_base.sort = SortSpec{};
    child_base.limit = 0;
    for (const SortKey& k : required.sort.keys) {
      child_base.in_memory.Add(k.binding);
    }
    child_base.in_memory = LoadableBindings(
        child_base.in_memory.Intersect(props.scope), *ctx.qctx);

    const size_t nkeys = required.sort.size();
    auto emit = [&](PhysOpKind kind, size_t prefix, Cost cost) {
      EnforcerAlt alt;
      alt.op.kind = kind;
      alt.op.sort = required.sort;
      alt.op.sort_prefix = static_cast<int>(prefix);
      alt.op.limit = required.limit;
      alt.child_required = child_base;
      alt.child_required.sort = required.sort.Prefix(prefix);
      alt.delivered = alt.child_required;
      alt.delivered.sort = required.sort;
      alt.delivered.limit = required.limit;
      alt.local_cost = cost;
      out->push_back(std::move(alt));
    };

    if (required.limit > 0) {
      // Bounded heap over an unsorted child. With no required order the
      // heap degenerates to a streaming first-k cutoff (presorted cost).
      emit(PhysOpKind::kTopK, 0,
           TopKCost(*ctx.cost_model, props.card, required.limit,
                    nkeys == 0 ? 1.0 : 0.0));
      if (nkeys > 0) {
        // Streaming cutoff over a child that already delivers the order.
        emit(PhysOpKind::kTopK, nkeys,
             TopKCost(*ctx.cost_model, props.card, required.limit, 1.0));
      }
      return Status::OK();
    }

    // Full sort from an unsorted child.
    emit(PhysOpKind::kSort, 0,
         SortCost(*ctx.cost_model, props.card, props.tuple_bytes));
    // Partial sorts: require each proper leading-key prefix of the child
    // and only re-order rows within runs of equal prefix values.
    for (size_t j = 1; j < nkeys; ++j) {
      double distinct = DistinctPrefix(*ctx.qctx, required.sort, j, props.card);
      emit(PhysOpKind::kSort, j,
           PartialSortCost(*ctx.cost_model, props.card, props.tuple_bytes,
                           distinct));
    }
    return Status::OK();
  }
};

}  // namespace

std::vector<std::unique_ptr<Enforcer>> MakeDefaultEnforcers() {
  std::vector<std::unique_ptr<Enforcer>> enforcers;
  enforcers.push_back(std::make_unique<AssemblyEnforcer>());
  enforcers.push_back(std::make_unique<SortEnforcer>());
  return enforcers;
}

}  // namespace oodb
