// Clang Thread Safety Analysis annotations.
//
// These macros attach compile-time lock discipline to the concurrency layer:
// which mutex guards which field (GUARDED_BY), which methods must be called
// with a capability held (REQUIRES) or not held (EXCLUDES), and which
// functions acquire or release one (ACQUIRE / RELEASE). Under Clang with
// -Wthread-safety the analysis proves every annotated access is protected —
// a static complement to the TSan CI jobs, which only see the interleavings
// the tests happen to hit. A dedicated CI job builds all of src/ with
// -Wthread-safety -Wthread-safety-analysis promoted to errors.
//
// On compilers without the attribute (GCC builds everything here) the macros
// expand to nothing, so the annotations are free documentation. The runtime
// counterpart — the debug-build lock-rank registry — lives in
// src/common/mutex.h and works on every compiler.
//
// Naming follows the LLVM/abseil convention so the annotations read the same
// as in the upstream documentation:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef OODB_COMMON_THREAD_ANNOTATIONS_H_
#define OODB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define OODB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define OODB_THREAD_ANNOTATION__(x)  // no-op on non-Clang
#endif

/// Declares a class to be a capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) OODB_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY OODB_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated field may only be accessed while holding `x`.
#define GUARDED_BY(x) OODB_THREAD_ANNOTATION__(guarded_by(x))

/// The pointee of the annotated pointer may only be accessed holding `x`
/// (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) OODB_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held
/// exclusively; they are held on return (caller locks, callee relies).
#define REQUIRES(...) \
  OODB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Shared-mode variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  OODB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (held on return).
#define ACQUIRE(...) OODB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Shared-mode variant of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  OODB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define RELEASE(...) OODB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Shared-mode variant of RELEASE.
#define RELEASE_SHARED(...) \
  OODB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Releases a capability regardless of acquisition mode.
#define RELEASE_GENERIC(...) \
  OODB_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  OODB_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// The function may only be called with the listed capabilities NOT held
/// (deadlock prevention for non-reentrant locks).
#define EXCLUDES(...) OODB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) OODB_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must carry a
/// comment explaining why the analysis cannot see the invariant (e.g. locks
/// handed across threads, quiescence established by joining workers).
#define NO_THREAD_SAFETY_ANALYSIS \
  OODB_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // OODB_COMMON_THREAD_ANNOTATIONS_H_
