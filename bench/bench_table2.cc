// E2-E5 — Query 1 (Figures 5, 6, 7) and Table 2 of the paper: optimization
// effort and anticipated execution time with all rules, without join
// commutativity, and without the assembly window.
#include "bench/bench_util.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Query 1 (ZQL)");
  std::printf("%s\n", kQuery1Text);

  bench::Header("Figure 5: Query 1 after simplification");
  {
    QueryContext ctx;
    auto logical = BuildPaperQuery(1, db, &ctx);
    std::printf("%s", PrintLogicalTree(**logical, ctx).c_str());
  }

  struct Row {
    const char* label;
    OptimizerOptions opts;
    double paper_opt_time;
    double paper_pct_search;
    double paper_exec_time;
    double paper_pct_optimal;
  };
  OptimizerOptions all;
  OptimizerOptions no_comm;
  no_comm.disabled_rules = {kRuleJoinCommute};
  OptimizerOptions no_window = no_comm;
  no_window.cost.assembly_window = 1;
  Row rows[] = {
      {"All Rules", all, 0.21, 103, 161, 100},
      {"W/o Comm.", no_comm, 0.12, 57, 681, 422},
      {"W/o Window", no_window, 0.11, 52, 1188, 737},
  };

  bench::Header("Figure 6: Optimal Execution Plan for Query 1 (all rules)");
  double optimal_cost = 0;
  int all_expressions = 1;
  {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(1, db, &ctx, all);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    optimal_cost = q.cost.total();
    all_expressions = q.stats.expressions();
  }

  bench::Header("Figure 7: Query 1 plan w/o join commutativity");
  {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(1, db, &ctx, no_comm);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
  }

  bench::Header("Table 2: Optimization Results for Query 1");
  std::printf(
      "%-12s  %14s  %12s  %14s  %12s   |  paper: %9s %7s %9s %7s\n", "",
      "Optim.Time[ms]", "%of Exh.Srch", "Est.Exec.T[s]", "%of Optimal",
      "opt[s]", "%srch", "exec[s]", "%opt");
  for (const Row& row : rows) {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(1, db, &ctx, row.opts);
    double opt_ms = bench::OptimizeTime(1, db, row.opts) * 1000.0;
    double pct_search = 100.0 * q.stats.expressions() / all_expressions;
    double pct_optimal = 100.0 * q.cost.total() / optimal_cost;
    std::printf(
        "%-12s  %14.3f  %12.0f  %14.1f  %12.0f   |  %9.2f %7.0f %9.0f %7.0f\n",
        row.label, opt_ms, pct_search, q.cost.total(), pct_optimal,
        row.paper_opt_time, row.paper_pct_search, row.paper_exec_time,
        row.paper_pct_optimal);
  }
  std::printf(
      "\n(Optim. time is measured on this machine; the paper's DECstation "
      "5000/125 was ~1000x slower.\n Estimated execution times come from the "
      "calibrated cost model; shapes and ratios are the\n reproduction "
      "target, not absolute equality.)\n");
  return 0;
}
