// Quickstart: build a database, write a query, optimize it, look at the
// plan, and run it.
//
//   $ ./example_quickstart
#include <cstdio>

#include "src/oodb.h"

using namespace oodb;

int main() {
  // 1. A catalog. MakePaperCatalog builds the schema and statistics of the
  //    paper's Table 1; the scale factor shrinks every cardinality so the
  //    example runs instantly.
  PaperDb db = MakePaperCatalog(/*scale=*/0.05);

  // 2. A populated object store (synthetic but statistically faithful).
  ObjectStore store(&db.catalog);
  auto data = GeneratePaperData(db, &store);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %lld objects on %s pages\n\n",
              static_cast<long long>(store.num_objects()), "simulated");

  // 3. A query, in ZQL[C++]-style text. (See QueryBuilder in
  //    src/query/builder.h for the programmatic equivalent.)
  const char* text =
      "SELECT c.name, c.mayor.age "
      "FROM City c IN Cities "
      "WHERE c.mayor.name == \"Joe\";";
  std::printf("query:\n  %s\n\n", text);

  // 4. Simplification: user algebra -> optimizer algebra. Path expressions
  //    become explicit Mat (materialize) operators.
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  if (!logical.ok()) {
    std::fprintf(stderr, "simplify: %s\n", logical.status().ToString().c_str());
    return 1;
  }
  std::printf("simplified logical algebra:\n%s\n",
              PrintLogicalTree(**logical, ctx).c_str());

  // 5. Optimization: exhaustive, cost-based, property-driven search.
  Optimizer optimizer(&db.catalog);
  auto optimized = optimizer.Optimize(**logical, &ctx);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("optimal plan (anticipated cost %s):\n%s\n",
              optimized->cost.ToString().c_str(),
              PrintPlan(*optimized->plan, ctx, /*with_costs=*/true).c_str());
  std::printf("search effort: %d logical expressions, %d physical "
              "alternatives, %.2f ms\n\n",
              optimized->stats.logical_mexprs,
              optimized->stats.phys_alternatives,
              optimized->stats.optimize_seconds * 1000);

  // 6. Execution on the simulated store.
  auto stats = ExecutePlan(*optimized->plan, &store, &ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "execute: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("executed: %lld rows, %lld pages read, simulated time %.3f s\n",
              static_cast<long long>(stats->rows),
              static_cast<long long>(stats->pages_read),
              stats->sim_total_s());
  for (const auto& row : stats->sample_rows) {
    std::printf("  %s is run by a Joe aged %s\n", row[0].s.c_str(),
                row[1].ToString().c_str());
  }
  return 0;
}
