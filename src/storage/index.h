// Stored (path-)indexes: ordered key -> OID-list maps built from the data.
// A path index on collection C over path f1...fn maps the value reached by
// dereferencing f1..fn-1 and reading fn to the *root* objects of C — the
// paper's "index on Cities over mayor.name" (§4).
#ifndef OODB_STORAGE_INDEX_H_
#define OODB_STORAGE_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/catalog/catalog.h"
#include "src/storage/object.h"

namespace oodb {

/// Ordering for index keys (kind first, then value).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// One built index.
class StoredIndex {
 public:
  explicit StoredIndex(const IndexInfo* info) : info_(info) {}

  const IndexInfo& info() const { return *info_; }

  void Insert(const Value& key, Oid root);

  /// Root OIDs whose path value equals `key` (empty vector if none).
  const std::vector<Oid>& Lookup(const Value& key) const;

  /// Root OIDs with key in [lo, hi] (inclusive).
  std::vector<Oid> Range(const Value& lo, const Value& hi) const;

  /// Root OIDs whose key satisfies `key_op v` (==, !=, <, <=, >, >=).
  std::vector<Oid> Scan(CmpOp op, const Value& v) const;

  int64_t num_keys() const { return static_cast<int64_t>(entries_.size()); }
  int64_t num_entries() const { return num_entries_; }

 private:
  const IndexInfo* info_;
  std::map<Value, std::vector<Oid>, ValueLess> entries_;
  int64_t num_entries_ = 0;
};

}  // namespace oodb

#endif  // OODB_STORAGE_INDEX_H_
