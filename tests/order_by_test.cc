// ORDER BY: the sort-order physical property end-to-end — required of the
// plan root, supplied by the Sort enforcer or by an order-delivering
// algorithm (a simple index scan emits key order for free).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

TEST(OrderByParseTest, ParserAndBuilderAgree) {
  auto q = ParseZqlForTest("SELECT e.name FROM Employee e IN Employees "
                           "WHERE e.age >= 30 "
                           "ORDER BY e.salary DESC, e.name LIMIT 5;");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_EQ(q->order_by[0].path->path,
            (std::vector<std::string>{"e", "salary"}));
  EXPECT_TRUE(q->order_by[0].desc);
  EXPECT_EQ(q->order_by[1].path->path, (std::vector<std::string>{"e", "name"}));
  EXPECT_FALSE(q->order_by[1].desc);
  EXPECT_EQ(q->limit, 5);

  ZqlQuery built = QueryBuilder()
                       .Select(zql::Path("e.name"))
                       .From("Employee", "e", "Employees")
                       .Where(zql::Ge(zql::Path("e.age"), zql::Lit(int64_t{30})))
                       .OrderBy("e.salary", /*desc=*/true)
                       .OrderBy("e.name")
                       .Limit(5)
                       .Build();
  EXPECT_EQ(built.ToString(), q->ToString());
}

TEST(OrderByParseTest, LimitDiagnostics) {
  EXPECT_FALSE(ParseZql("SELECT e.name FROM Employee e IN Employees "
                        "ORDER BY e.name LIMIT 0;")
                   .ok());
  EXPECT_FALSE(ParseZql("SELECT e.name FROM Employee e IN Employees "
                        "ORDER BY e.name LIMIT;")
                   .ok());
  EXPECT_FALSE(ParseZql("SELECT e.name FROM Employee e IN Employees "
                        "ORDER BY;")
                   .ok());
}

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() : db_(MakePaperCatalog(0.05)), session_(&db_.catalog) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &session_.store(), gen);
    EXPECT_TRUE(r.ok()) << r.status();
  }

  /// Checks column `col` of the result rows is non-decreasing (or
  /// non-increasing when `desc`).
  static void ExpectSorted(const SessionResult& r, size_t col,
                           bool desc = false) {
    for (size_t i = 1; i < r.rows().size(); ++i) {
      int c = r.rows()[i - 1][col].Compare(r.rows()[i][col]);
      if (desc) {
        EXPECT_GE(c, 0) << "row " << i;
      } else {
        EXPECT_LE(c, 0) << "row " << i;
      }
    }
  }

  /// First plan node of `kind` in preorder, or null.
  static const PlanNode* FindOp(const PlanNode& plan, PhysOpKind kind) {
    if (plan.op.kind == kind) return &plan;
    for (const PlanNodePtr& c : plan.children) {
      if (const PlanNode* f = FindOp(*c, kind)) return f;
    }
    return nullptr;
  }

  PaperDb db_;
  Session session_;
};

TEST_F(OrderByTest, SortEnforcerProducesOrderedRows) {
  auto r = session_.Query(
      "SELECT e.age, e.name FROM Employee e IN Employees "
      "WHERE e.age >= 40 ORDER BY e.age;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 1);
  ExpectSorted(*r, 0);
}

TEST_F(OrderByTest, OrderByUnprojectedColumnWorks) {
  // The sort key (salary) is not in the SELECT list: the sort must happen
  // below the projection, where the binding is still in scope.
  auto r = session_.Query(
      "SELECT e.name FROM Employee e IN Employees "
      "WHERE e.age >= 60 ORDER BY e.salary;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 1);
  EXPECT_GT(r->exec.rows, 0);
}

TEST_F(OrderByTest, OrderByPathLoadsComponent) {
  auto r = session_.Query(
      "SELECT c.name, c.mayor.age FROM City c IN Cities "
      "WHERE c.population >= 500000 ORDER BY c.mayor.age;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  ExpectSorted(*r, 1);
}

TEST_F(OrderByTest, IndexScanDeliversOrderWithoutSort) {
  // A narrow range on the indexed key, ordered by that key: the simple
  // index scan already emits key order — no Sort operator needed.
  auto r = session_.Query(
      "SELECT t.time, t.name FROM Task t IN Tasks "
      "WHERE t.time >= 29 ORDER BY t.time;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 1);
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kIndexScan), 1)
      << r->PlanText();
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 0)
      << r->PlanText();
  ExpectSorted(*r, 0);
}

TEST_F(OrderByTest, DescendingOrderDelivered) {
  auto r = session_.Query(
      "SELECT e.age, e.name FROM Employee e IN Employees "
      "WHERE e.age >= 40 ORDER BY e.age DESC;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  ExpectSorted(*r, 0, /*desc=*/true);
}

TEST_F(OrderByTest, MultiKeyOrderIsLexicographic) {
  auto r = session_.Query(
      "SELECT e.age, e.salary FROM Employee e IN Employees "
      "WHERE e.age >= 30 ORDER BY e.age, e.salary DESC;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  for (size_t i = 1; i < r->rows().size(); ++i) {
    int major = r->rows()[i - 1][0].Compare(r->rows()[i][0]);
    EXPECT_LE(major, 0) << "row " << i;
    if (major == 0) {
      EXPECT_GE(r->rows()[i - 1][1].Compare(r->rows()[i][1]), 0)
          << "row " << i;
    }
  }
}

TEST_F(OrderByTest, TopKMatchesSortedPrefix) {
  const std::string base =
      "SELECT e.age, e.name FROM Employee e IN Employees "
      "WHERE e.age >= 30 ORDER BY e.age, e.name";
  auto full = session_.Query(base + ";");
  auto topk = session_.Query(base + " LIMIT 5;");
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(topk.ok()) << topk.status();
  ASSERT_GT(full->exec.rows, 5);
  EXPECT_EQ(CountOps(*topk->optimized.plan, PhysOpKind::kTopK), 1)
      << topk->PlanText();
  EXPECT_EQ(CountOps(*topk->optimized.plan, PhysOpKind::kSort), 0)
      << topk->PlanText();
  // The bounded heap must deliver exactly the stable full-sort prefix.
  ASSERT_EQ(topk->rows().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(full->rows()[i][c].Compare(topk->rows()[i][c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(OrderByTest, StreamingTopKOverIndexOrder) {
  // The index already delivers t.time order: top-k degenerates to a
  // streaming first-k cutoff (sort_prefix covers every key, heap unused).
  auto r = session_.Query(
      "SELECT t.time, t.name FROM Task t IN Tasks "
      "WHERE t.time >= 29 ORDER BY t.time LIMIT 3;");
  ASSERT_TRUE(r.ok()) << r.status();
  const PlanNode* tk = FindOp(*r->optimized.plan, PhysOpKind::kTopK);
  ASSERT_NE(tk, nullptr) << r->PlanText();
  EXPECT_EQ(static_cast<size_t>(tk->op.sort_prefix), tk->op.sort.size())
      << r->PlanText();
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 0)
      << r->PlanText();
  EXPECT_LE(r->rows().size(), 3u);
  ExpectSorted(*r, 0);
}

TEST_F(OrderByTest, PartialSortReusesIndexPrefix) {
  // Leading key t.time arrives sorted from the index; only the tie-break
  // key t.name needs sorting, per run of equal times.
  auto r = session_.Query(
      "SELECT t.time, t.name FROM Task t IN Tasks "
      "WHERE t.time >= 29 ORDER BY t.time, t.name;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  ASSERT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kIndexScan), 1)
      << r->PlanText();
  const PlanNode* sort = FindOp(*r->optimized.plan, PhysOpKind::kSort);
  ASSERT_NE(sort, nullptr) << r->PlanText();
  EXPECT_EQ(sort->op.sort_prefix, 1) << r->PlanText();
  for (size_t i = 1; i < r->rows().size(); ++i) {
    int major = r->rows()[i - 1][0].Compare(r->rows()[i][0]);
    EXPECT_LE(major, 0) << "row " << i;
    if (major == 0) {
      EXPECT_LE(r->rows()[i - 1][1].Compare(r->rows()[i][1]), 0)
          << "row " << i;
    }
  }
}

TEST_F(OrderByTest, CachedPlanReboundToNewLimit) {
  // Same query shape, different LIMIT: the cached plan is k-parameterized
  // (bucketed fingerprint) and must be rebound to the new row count.
  const std::string base =
      "SELECT e.age, e.name FROM Employee e IN Employees "
      "WHERE e.age >= 30 ORDER BY e.age, e.name LIMIT ";
  auto r3 = session_.Query(base + "3;");
  auto r5 = session_.Query(base + "5;");
  ASSERT_TRUE(r3.ok()) << r3.status();
  ASSERT_TRUE(r5.ok()) << r5.status();
  EXPECT_EQ(r3->rows().size(), 3u);
  EXPECT_EQ(r5->rows().size(), 5u);
  // The shorter result is the longer one's prefix.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r3->rows()[i][0].Compare(r5->rows()[i][0]), 0) << "row " << i;
    EXPECT_EQ(r3->rows()[i][1].Compare(r5->rows()[i][1]), 0) << "row " << i;
  }
}

TEST_F(OrderByTest, SortedPlanCostsMoreThanUnsorted) {
  auto unsorted = session_.Query(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  auto sorted = session_.Query(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40 "
      "ORDER BY e.name;");
  ASSERT_TRUE(unsorted.ok());
  ASSERT_TRUE(sorted.ok());
  EXPECT_GT(sorted->optimized.cost.total(), unsorted->optimized.cost.total());
  EXPECT_EQ(sorted->exec.rows, unsorted->exec.rows);
}

TEST_F(OrderByTest, BareVariableOrderByRejected) {
  EXPECT_FALSE(session_.Query(
                           "SELECT e.name FROM Employee e IN Employees "
                           "ORDER BY e;")
                   .ok());
}

TEST_F(OrderByTest, SimplifyWithoutOrderOutputRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(ParseAndSimplify(
                   "SELECT e.name FROM Employee e IN Employees "
                   "ORDER BY e.age;",
                   &ctx, /*order=*/nullptr)
                   .ok());
}

}  // namespace
}  // namespace oodb
