#include <gtest/gtest.h>

#include "src/query/builder.h"
#include "src/query/zql_lexer.h"
#include "src/query/zql_parser.h"

namespace oodb {
namespace {

// --- Lexer ---

TEST(ZqlLexerTest, BasicTokens) {
  auto toks = LexZql("SELECT e.name, 42 4.5 \"str\" == != <= >= < > && || ! ;");
  ASSERT_TRUE(toks.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokKind>{
                TokKind::kIdent, TokKind::kIdent, TokKind::kDot, TokKind::kIdent,
                TokKind::kComma, TokKind::kInt, TokKind::kDouble,
                TokKind::kString, TokKind::kEq, TokKind::kNe, TokKind::kLe,
                TokKind::kGe, TokKind::kLt, TokKind::kGt, TokKind::kAnd,
                TokKind::kOr, TokKind::kNot, TokKind::kSemi, TokKind::kEnd}));
}

TEST(ZqlLexerTest, NumbersAndStrings) {
  auto toks = LexZql("123 45.25 'single' \"double\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_val, 123);
  EXPECT_DOUBLE_EQ((*toks)[1].dbl_val, 45.25);
  EXPECT_EQ((*toks)[2].text, "single");
  EXPECT_EQ((*toks)[3].text, "double");
}

TEST(ZqlLexerTest, IntFollowedByDotIdent) {
  // `3.foo` must not lex as a double.
  auto toks = LexZql("3.x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kInt);
  EXPECT_EQ((*toks)[1].kind, TokKind::kDot);
}

TEST(ZqlLexerTest, Errors) {
  EXPECT_FALSE(LexZql("\"unterminated").ok());
  EXPECT_FALSE(LexZql("a = b").ok());   // single '='
  EXPECT_FALSE(LexZql("a & b").ok());   // single '&'
  EXPECT_FALSE(LexZql("a # b").ok());   // unknown char
}

// --- Parser ---

TEST(ZqlParserTest, PaperQuery1Shape) {
  auto q = ParseZql(
      "SELECT e.name, e.dept.name FROM Employee e IN Employees "
      "WHERE e.dept.plant.location == \"Dallas\";");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->select.size(), 2u);
  ASSERT_EQ((*q)->from.size(), 1u);
  EXPECT_EQ((*q)->from[0].type_name, "Employee");
  EXPECT_EQ((*q)->from[0].var, "e");
  EXPECT_EQ((*q)->from[0].collection, "Employees");
  ASSERT_NE((*q)->where, nullptr);
  EXPECT_EQ((*q)->where->kind, ZqlExpr::Kind::kCmp);
}

TEST(ZqlParserTest, MultipleRangesAndConjuncts) {
  auto q = ParseZql(
      "SELECT e.name, d.name "
      "FROM Employee e IN Employees, Department d IN Departments "
      "WHERE d.floor == 3 && e.age >= 32 && e.dept == d");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->from.size(), 2u);
  EXPECT_EQ((*q)->where->kind, ZqlExpr::Kind::kAnd);
  EXPECT_EQ((*q)->where->children.size(), 3u);
}

TEST(ZqlParserTest, PathRange) {
  auto q = ParseZql(
      "SELECT t FROM Task t IN Tasks, Employee m IN t.team_members "
      "WHERE m.name == \"Fred\"");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ((*q)->from.size(), 2u);
  EXPECT_TRUE((*q)->from[1].from_path);
  EXPECT_EQ((*q)->from[1].path,
            (std::vector<std::string>{"t", "team_members"}));
}

TEST(ZqlParserTest, MethodCallParensAccepted) {
  // ZQL[C++] accessor style: e.nameo / e.name().
  auto q = ParseZql("SELECT e.name() FROM Employee e IN Employees "
                    "WHERE e.dept().name() == \"R&D\"");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->select[0]->path, (std::vector<std::string>{"e", "name"}));
}

TEST(ZqlParserTest, OrNotPrecedence) {
  auto q = ParseZql(
      "SELECT e FROM Employee e IN Employees "
      "WHERE e.age == 1 || e.age == 2 && !(e.age == 3)");
  ASSERT_TRUE(q.ok()) << q.status();
  // || binds loosest: top is an OR of [cmp, AND[cmp, NOT]].
  EXPECT_EQ((*q)->where->kind, ZqlExpr::Kind::kOr);
  ASSERT_EQ((*q)->where->children.size(), 2u);
  EXPECT_EQ((*q)->where->children[1]->kind, ZqlExpr::Kind::kAnd);
}

TEST(ZqlParserTest, ExistsSubquery) {
  auto q = ParseZql(
      "SELECT t FROM Task t IN Tasks "
      "WHERE t.time == 100 && EXISTS (SELECT m FROM Employee m IN "
      "t.team_members WHERE m.name == \"Fred\")");
  ASSERT_TRUE(q.ok()) << q.status();
  const ZqlExprPtr& ex = (*q)->where->children[1];
  ASSERT_EQ(ex->kind, ZqlExpr::Kind::kExists);
  ASSERT_NE(ex->subquery, nullptr);
  EXPECT_EQ(ex->subquery->from.size(), 1u);
}

TEST(ZqlParserTest, KeywordsCaseInsensitive) {
  auto q = ParseZql("select e from Employee e in Employees where e.age == 1");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(ZqlParserTest, Errors) {
  EXPECT_FALSE(ParseZql("FROM Employee e IN Employees").ok());
  EXPECT_FALSE(ParseZql("SELECT e").ok());                 // missing FROM
  EXPECT_FALSE(ParseZql("SELECT e FROM e").ok());          // bad range
  EXPECT_FALSE(ParseZql("SELECT e FROM Employee e Employees").ok());
  EXPECT_FALSE(
      ParseZql("SELECT e FROM Employee e IN Employees WHERE").ok());
  EXPECT_FALSE(
      ParseZql("SELECT e FROM Employee e IN Employees; trailing").ok());
  EXPECT_FALSE(ParseZql("SELECT e FROM Employee e IN Employees WHERE (e.age "
                        "== 1").ok());  // unclosed paren
}

TEST(ZqlParserTest, ToStringRoundTrips) {
  auto q = ParseZql(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 32");
  ASSERT_TRUE(q.ok());
  std::string text = (*q)->ToString();
  auto q2 = ParseZql(text);
  ASSERT_TRUE(q2.ok()) << text;
  EXPECT_EQ((*q2)->ToString(), text);
}

// --- Builder ---

TEST(BuilderTest, EquivalentToParsedQuery) {
  ZqlQuery built = QueryBuilder()
                       .Select(zql::Path("e.name"))
                       .From("Employee", "e", "Employees")
                       .Where(zql::Ge(zql::Path("e.age"), zql::Lit(int64_t{32})))
                       .Build();
  auto parsed = ParseZql(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 32");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(built.ToString(), (*parsed)->ToString());
}

TEST(BuilderTest, WhereAccumulatesWithAnd) {
  ZqlQuery q = QueryBuilder()
                   .Select(zql::Path("e"))
                   .From("Employee", "e", "Employees")
                   .Where(zql::Eq(zql::Path("e.age"), zql::Lit(int64_t{30})))
                   .Where(zql::Eq(zql::Path("e.name"), zql::Lit("Fred")))
                   .Build();
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, ZqlExpr::Kind::kAnd);
}

TEST(BuilderTest, FromPath) {
  ZqlQuery q = QueryBuilder()
                   .Select(zql::Path("t"))
                   .From("Task", "t", "Tasks")
                   .FromPath("Employee", "m", "t.team_members")
                   .Build();
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_TRUE(q.from[1].from_path);
  EXPECT_EQ(q.from[1].path, (std::vector<std::string>{"t", "team_members"}));
}

TEST(BuilderTest, ExprHelpers) {
  EXPECT_EQ(zql::Lit(int64_t{5})->literal.i, 5);
  EXPECT_EQ(zql::Lit(2.5)->literal.d, 2.5);
  EXPECT_EQ(zql::Lit("x")->literal.s, "x");
  EXPECT_EQ(zql::Not(zql::Lit(int64_t{1}))->kind, ZqlExpr::Kind::kNot);
  EXPECT_EQ(zql::Or({zql::Lit(int64_t{1}), zql::Lit(int64_t{2})})->kind,
            ZqlExpr::Kind::kOr);
  EXPECT_EQ(zql::Lt(zql::Path("a.b"), zql::Lit(int64_t{1}))->cmp, CmpOp::kLt);
}

}  // namespace
}  // namespace oodb
