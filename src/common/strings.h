// Small string helpers shared across modules.
#ifndef OODB_COMMON_STRINGS_H_
#define OODB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace oodb {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` at every occurrence of `sep`; never returns empty vector.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double trimming trailing zeros ("1.5", "120", "0.08").
std::string FormatDouble(double v, int max_decimals = 4);

/// Repeats `s` `n` times.
std::string Repeat(std::string_view s, int n);

}  // namespace oodb

#endif  // OODB_COMMON_STRINGS_H_
