#include "src/rules/transformations.h"

#include <algorithm>

namespace oodb {

namespace {

BindingSet GroupScope(OptContext& ctx, GroupId g) {
  return ctx.memo->group(g).props.scope;
}

/// Iterates the logical m-exprs of `g` having kind `kind`.
std::vector<const LogicalMExpr*> ChildMExprs(OptContext& ctx, GroupId g,
                                             LogicalOpKind kind) {
  std::vector<const LogicalMExpr*> out;
  for (MExprId id : ctx.memo->group(g).mexprs) {
    const LogicalMExpr& m = ctx.memo->mexpr(id);
    if (m.op.kind == kind) out.push_back(&m);
  }
  return out;
}

}  // namespace

ScalarExprPtr CanonicalConjunction(std::vector<ScalarExprPtr> conjuncts) {
  // Drop constant-true conjuncts (simplification uses them as the predicate
  // of cartesian FROM combinations) as soon as a real conjunct is present.
  std::vector<ScalarExprPtr> kept;
  for (ScalarExprPtr& c : conjuncts) {
    bool const_true = c->kind() == ScalarExpr::Kind::kConst &&
                      c->value().kind == Value::Kind::kInt && c->value().i != 0;
    if (!const_true) kept.push_back(std::move(c));
  }
  if (kept.empty()) kept.push_back(ScalarExpr::Const(Value::Int(1)));
  std::sort(kept.begin(), kept.end(),
            [](const ScalarExprPtr& a, const ScalarExprPtr& b) {
              return a->Hash() < b->Hash();
            });
  return ScalarExpr::CombineConjuncts(std::move(kept));
}

namespace {

// ---------------------------------------------------------------------------
// Mat_a(Mat_b(X)) -> Mat_b(Mat_a(X))   [if a's source is in X's scope]
// ---------------------------------------------------------------------------
class MatMatCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatMatCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* b : ChildMExprs(ctx, child, LogicalOpKind::kMat)) {
      GroupId x = ctx.memo->Find(b->children[0]);
      if (!GroupScope(ctx, x).Contains(mexpr.op.source)) continue;
      out->push_back(RuleExpr::Op(
          b->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_p(Mat_b(X)) -> Mat_b(Select_p(X))   [if p does not read b's target]
// ---------------------------------------------------------------------------
class SelectMatCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectMatCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    BindingSet refs = mexpr.op.pred->ReferencedBindings();
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* b : ChildMExprs(ctx, child, LogicalOpKind::kMat)) {
      if (refs.Contains(b->op.target)) continue;
      GroupId x = ctx.memo->Find(b->children[0]);
      out->push_back(RuleExpr::Op(
          b->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Mat_a(Select_p(X)) -> Select_p(Mat_a(X))
// ---------------------------------------------------------------------------
class MatSelectCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatSelectCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* s :
         ChildMExprs(ctx, child, LogicalOpKind::kSelect)) {
      GroupId x = ctx.memo->Find(s->children[0]);
      if (!GroupScope(ctx, x).Contains(mexpr.op.source)) continue;
      out->push_back(RuleExpr::Op(
          s->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_{c1 and ... and cn}(X) -> Select_{ci}(Select_{rest}(X))
// ---------------------------------------------------------------------------
class SelectSplit : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectSplit; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    (void)ctx;
    std::vector<ScalarExprPtr> conjuncts =
        ScalarExpr::SplitConjuncts(mexpr.op.pred);
    if (conjuncts.size() < 2) return Status::OK();
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::vector<ScalarExprPtr> rest;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (j != i) rest.push_back(conjuncts[j]);
      }
      out->push_back(RuleExpr::Op(
          LogicalOp::Select(conjuncts[i]),
          {RuleExpr::Op(LogicalOp::Select(CanonicalConjunction(std::move(rest))),
                        {RuleExpr::GroupLeaf(mexpr.children[0])})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_p(Select_q(X)) -> Select_{p and q}(X)
// ---------------------------------------------------------------------------
class SelectMerge : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectMerge; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* s :
         ChildMExprs(ctx, child, LogicalOpKind::kSelect)) {
      std::vector<ScalarExprPtr> conjuncts =
          ScalarExpr::SplitConjuncts(mexpr.op.pred);
      std::vector<ScalarExprPtr> qs = ScalarExpr::SplitConjuncts(s->op.pred);
      conjuncts.insert(conjuncts.end(), qs.begin(), qs.end());
      out->push_back(RuleExpr::Op(
          LogicalOp::Select(CanonicalConjunction(std::move(conjuncts))),
          {RuleExpr::GroupLeaf(ctx.memo->Find(s->children[0]))}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_p(Unnest_u(X)) -> Unnest_u(Select_p(X))  [if p does not read u's
// target]
// ---------------------------------------------------------------------------
class SelectUnnestCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectUnnestCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    BindingSet refs = mexpr.op.pred->ReferencedBindings();
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* u :
         ChildMExprs(ctx, child, LogicalOpKind::kUnnest)) {
      if (refs.Contains(u->op.target)) continue;
      GroupId x = ctx.memo->Find(u->children[0]);
      out->push_back(RuleExpr::Op(
          u->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Unnest_u(Select_p(X)) -> Select_p(Unnest_u(X))
// ---------------------------------------------------------------------------
class UnnestSelectCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectUnnestCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kUnnest; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* s :
         ChildMExprs(ctx, child, LogicalOpKind::kSelect)) {
      GroupId x = ctx.memo->Find(s->children[0]);
      if (!GroupScope(ctx, x).Contains(mexpr.op.source)) continue;
      out->push_back(RuleExpr::Op(
          s->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Mat_a(Unnest_u(X)) -> Unnest_u(Mat_a(X))  [if a's source is in X's scope]
// ---------------------------------------------------------------------------
class MatUnnestCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatUnnestCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* u :
         ChildMExprs(ctx, child, LogicalOpKind::kUnnest)) {
      GroupId x = ctx.memo->Find(u->children[0]);
      if (!GroupScope(ctx, x).Contains(mexpr.op.source)) continue;
      out->push_back(RuleExpr::Op(
          u->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Unnest_u(Mat_a(X)) -> Mat_a(Unnest_u(X))  [if u's source is in X's scope]
// ---------------------------------------------------------------------------
class UnnestMatCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleUnnestMatCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kUnnest; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* a : ChildMExprs(ctx, child, LogicalOpKind::kMat)) {
      GroupId x = ctx.memo->Find(a->children[0]);
      if (!GroupScope(ctx, x).Contains(mexpr.op.source)) continue;
      out->push_back(RuleExpr::Op(
          a->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Mat(s.f -> t)(X) -> Join_{s.f == t.self}(X, Get extent(T): t)
// The paper's key new rule: "if the scope introduced by a materialize
// operator is actually a scannable object, the materialize operator can be
// transformed into a join" (Figure 4).
// ---------------------------------------------------------------------------
class MatToJoin : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatToJoin; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    TypeId t = ctx.qctx->bindings.def(mexpr.op.target).type;
    if (!ctx.qctx->catalog->HasExtent(t)) return Status::OK();
    ScalarExprPtr pred;
    if (mexpr.op.field == kInvalidField) {
      pred = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Self(mexpr.op.source),
                             ScalarExpr::Self(mexpr.op.target));
    } else {
      pred = ScalarExpr::RefEq(mexpr.op.source, mexpr.op.field, mexpr.op.target);
    }
    out->push_back(RuleExpr::Op(
        LogicalOp::Join(pred),
        {RuleExpr::GroupLeaf(mexpr.children[0]),
         RuleExpr::Op(
             LogicalOp::Get(CollectionId::Extent(t), mexpr.op.target))}));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join_p(A, B) -> Join_p(B, A)
// ---------------------------------------------------------------------------
class JoinCommute : public TransformationRule {
 public:
  const char* name() const override { return kRuleJoinCommute; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    (void)ctx;
    out->push_back(RuleExpr::Op(mexpr.op,
                                {RuleExpr::GroupLeaf(mexpr.children[1]),
                                 RuleExpr::GroupLeaf(mexpr.children[0])}));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join_p(Join_q(A, B), C) -> Join_{outer}(A, Join_{inner}(B, C))
// ---------------------------------------------------------------------------
class JoinAssoc : public TransformationRule {
 public:
  const char* name() const override { return kRuleJoinAssoc; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId c = ctx.memo->Find(mexpr.children[1]);
    for (const LogicalMExpr* lower :
         ChildMExprs(ctx, left, LogicalOpKind::kJoin)) {
      GroupId a = ctx.memo->Find(lower->children[0]);
      GroupId b = ctx.memo->Find(lower->children[1]);
      BindingSet inner_scope = GroupScope(ctx, b).Union(GroupScope(ctx, c));
      std::vector<ScalarExprPtr> conjuncts =
          ScalarExpr::SplitConjuncts(mexpr.op.pred);
      std::vector<ScalarExprPtr> qs = ScalarExpr::SplitConjuncts(lower->op.pred);
      conjuncts.insert(conjuncts.end(), qs.begin(), qs.end());
      std::vector<ScalarExprPtr> inner, outer;
      for (const ScalarExprPtr& cj : conjuncts) {
        if (inner_scope.ContainsAll(cj->ReferencedBindings())) {
          inner.push_back(cj);
        } else {
          outer.push_back(cj);
        }
      }
      if (inner.empty() || outer.empty()) continue;
      out->push_back(RuleExpr::Op(
          LogicalOp::Join(CanonicalConjunction(std::move(outer))),
          {RuleExpr::GroupLeaf(a),
           RuleExpr::Op(LogicalOp::Join(CanonicalConjunction(std::move(inner))),
                        {RuleExpr::GroupLeaf(b), RuleExpr::GroupLeaf(c)})}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_p(Join_q(A, B)) -> push single-side conjuncts of p below the join
// ---------------------------------------------------------------------------
class SelectJoinPush : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectJoinPush; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* j : ChildMExprs(ctx, child, LogicalOpKind::kJoin)) {
      GroupId a = ctx.memo->Find(j->children[0]);
      GroupId b = ctx.memo->Find(j->children[1]);
      BindingSet sa = GroupScope(ctx, a), sb = GroupScope(ctx, b);
      std::vector<ScalarExprPtr> pa, pb, rest;
      for (const ScalarExprPtr& cj :
           ScalarExpr::SplitConjuncts(mexpr.op.pred)) {
        BindingSet refs = cj->ReferencedBindings();
        if (sa.ContainsAll(refs)) {
          pa.push_back(cj);
        } else if (sb.ContainsAll(refs)) {
          pb.push_back(cj);
        } else {
          rest.push_back(cj);
        }
      }
      if (pa.empty() && pb.empty()) continue;
      RuleExprPtr left = RuleExpr::GroupLeaf(a);
      if (!pa.empty()) {
        left = RuleExpr::Op(
            LogicalOp::Select(CanonicalConjunction(std::move(pa))), {left});
      }
      RuleExprPtr right = RuleExpr::GroupLeaf(b);
      if (!pb.empty()) {
        right = RuleExpr::Op(
            LogicalOp::Select(CanonicalConjunction(std::move(pb))), {right});
      }
      RuleExprPtr join = RuleExpr::Op(j->op, {left, right});
      if (!rest.empty()) {
        join = RuleExpr::Op(
            LogicalOp::Select(CanonicalConjunction(std::move(rest))), {join});
      }
      out->push_back(join);
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select_p(Join_q(A, B)) -> Join_{p and q}(A, B)
// ---------------------------------------------------------------------------
class SelectJoinAbsorb : public TransformationRule {
 public:
  const char* name() const override { return kRuleSelectJoinAbsorb; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* j : ChildMExprs(ctx, child, LogicalOpKind::kJoin)) {
      std::vector<ScalarExprPtr> conjuncts =
          ScalarExpr::SplitConjuncts(mexpr.op.pred);
      std::vector<ScalarExprPtr> qs = ScalarExpr::SplitConjuncts(j->op.pred);
      conjuncts.insert(conjuncts.end(), qs.begin(), qs.end());
      out->push_back(RuleExpr::Op(
          LogicalOp::Join(CanonicalConjunction(std::move(conjuncts))),
          {RuleExpr::GroupLeaf(ctx.memo->Find(j->children[0])),
           RuleExpr::GroupLeaf(ctx.memo->Find(j->children[1]))}));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Mat_a(Join_q(A, B)) -> Join_q(Mat_a(A), B) or Join_q(A, Mat_a(B))
// ---------------------------------------------------------------------------
class MatJoinPush : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatJoinPush; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    for (const LogicalMExpr* j : ChildMExprs(ctx, child, LogicalOpKind::kJoin)) {
      GroupId a = ctx.memo->Find(j->children[0]);
      GroupId b = ctx.memo->Find(j->children[1]);
      if (GroupScope(ctx, a).Contains(mexpr.op.source)) {
        out->push_back(RuleExpr::Op(
            j->op, {RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(a)}),
                    RuleExpr::GroupLeaf(b)}));
      }
      if (GroupScope(ctx, b).Contains(mexpr.op.source)) {
        out->push_back(RuleExpr::Op(
            j->op, {RuleExpr::GroupLeaf(a),
                    RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(b)})}));
      }
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join_q(Mat_a(X), B) -> Mat_a(Join_q(X, B))   [if q does not read a's
// target; symmetric for the right child]
// ---------------------------------------------------------------------------
class MatJoinPull : public TransformationRule {
 public:
  const char* name() const override { return kRuleMatJoinPull; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    BindingSet refs = mexpr.op.pred->ReferencedBindings();
    for (int side = 0; side < 2; ++side) {
      GroupId g = ctx.memo->Find(mexpr.children[side]);
      GroupId other = ctx.memo->Find(mexpr.children[1 - side]);
      for (const LogicalMExpr* a : ChildMExprs(ctx, g, LogicalOpKind::kMat)) {
        if (refs.Contains(a->op.target)) continue;
        GroupId x = ctx.memo->Find(a->children[0]);
        RuleExprPtr join =
            side == 0
                ? RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(x),
                                          RuleExpr::GroupLeaf(other)})
                : RuleExpr::Op(mexpr.op, {RuleExpr::GroupLeaf(other),
                                          RuleExpr::GroupLeaf(x)});
        out->push_back(RuleExpr::Op(a->op, {join}));
      }
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Set-operator commutativity / associativity (Union, Intersect)
// ---------------------------------------------------------------------------
class SetOpCommute : public TransformationRule {
 public:
  explicit SetOpCommute(LogicalOpKind kind) : kind_(kind) {}
  const char* name() const override { return kRuleSetOpCommute; }
  LogicalOpKind root_kind() const override { return kind_; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    (void)ctx;
    out->push_back(RuleExpr::Op(mexpr.op,
                                {RuleExpr::GroupLeaf(mexpr.children[1]),
                                 RuleExpr::GroupLeaf(mexpr.children[0])}));
    return Status::OK();
  }

 private:
  LogicalOpKind kind_;
};

class SetOpAssoc : public TransformationRule {
 public:
  explicit SetOpAssoc(LogicalOpKind kind) : kind_(kind) {}
  const char* name() const override { return kRuleSetOpAssoc; }
  LogicalOpKind root_kind() const override { return kind_; }
  bool matches_children() const override { return true; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               std::vector<RuleExprPtr>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId c = ctx.memo->Find(mexpr.children[1]);
    for (const LogicalMExpr* lower : ChildMExprs(ctx, left, kind_)) {
      out->push_back(RuleExpr::Op(
          LogicalOp::SetOp(kind_),
          {RuleExpr::GroupLeaf(ctx.memo->Find(lower->children[0])),
           RuleExpr::Op(LogicalOp::SetOp(kind_),
                        {RuleExpr::GroupLeaf(ctx.memo->Find(lower->children[1])),
                         RuleExpr::GroupLeaf(c)})}));
    }
    return Status::OK();
  }

 private:
  LogicalOpKind kind_;
};

}  // namespace

std::vector<std::unique_ptr<TransformationRule>> MakeDefaultTransformations() {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(std::make_unique<MatMatCommute>());
  rules.push_back(std::make_unique<SelectMatCommute>());
  rules.push_back(std::make_unique<MatSelectCommute>());
  rules.push_back(std::make_unique<SelectSplit>());
  rules.push_back(std::make_unique<SelectMerge>());
  rules.push_back(std::make_unique<SelectUnnestCommute>());
  rules.push_back(std::make_unique<UnnestSelectCommute>());
  rules.push_back(std::make_unique<MatUnnestCommute>());
  rules.push_back(std::make_unique<UnnestMatCommute>());
  rules.push_back(std::make_unique<MatToJoin>());
  rules.push_back(std::make_unique<JoinCommute>());
  rules.push_back(std::make_unique<JoinAssoc>());
  rules.push_back(std::make_unique<SelectJoinPush>());
  rules.push_back(std::make_unique<SelectJoinAbsorb>());
  rules.push_back(std::make_unique<MatJoinPush>());
  rules.push_back(std::make_unique<MatJoinPull>());
  rules.push_back(std::make_unique<SetOpCommute>(LogicalOpKind::kUnion));
  rules.push_back(std::make_unique<SetOpCommute>(LogicalOpKind::kIntersect));
  rules.push_back(std::make_unique<SetOpAssoc>(LogicalOpKind::kUnion));
  rules.push_back(std::make_unique<SetOpAssoc>(LogicalOpKind::kIntersect));
  return rules;
}

}  // namespace oodb
