#include "src/exec/tuple.h"

namespace oodb {

void Tuple::MergeFrom(const Tuple& other) {
  if (slots.size() < other.slots.size()) slots.resize(other.slots.size());
  for (size_t i = 0; i < other.slots.size(); ++i) {
    if (other.slots[i].present()) slots[i] = other.slots[i];
  }
}

Result<Value> EvalExpr(const ScalarExpr& expr, const Tuple& tuple,
                       const QueryContext& ctx) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kAttr: {
      const Slot& s = tuple.slot(expr.binding());
      if (!s.loaded()) {
        return Status::Internal(
            "attribute read on component not present in memory: " +
            ctx.bindings.def(expr.binding()).name);
      }
      return s.obj->value(expr.field());
    }
    case ScalarExpr::Kind::kSelf:
      return Value::Int(tuple.slot(expr.binding()).ref);
    case ScalarExpr::Kind::kConst:
      return expr.value();
    case ScalarExpr::Kind::kCmp: {
      OODB_ASSIGN_OR_RETURN(Value l,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      OODB_ASSIGN_OR_RETURN(Value r,
                            EvalExpr(*expr.children()[1], tuple, ctx));
      if (expr.cmp_op() == CmpOp::kEq) return Value::Int(l == r ? 1 : 0);
      if (expr.cmp_op() == CmpOp::kNe) return Value::Int(l == r ? 0 : 1);
      return Value::Int(EvalCmp(expr.cmp_op(), l.Compare(r)) ? 1 : 0);
    }
    case ScalarExpr::Kind::kAnd: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i == 0) return Value::Int(0);
      }
      return Value::Int(1);
    }
    case ScalarExpr::Kind::kOr: {
      for (const ScalarExprPtr& c : expr.children()) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, tuple, ctx));
        if (v.i != 0) return Value::Int(1);
      }
      return Value::Int(0);
    }
    case ScalarExpr::Kind::kNot: {
      OODB_ASSIGN_OR_RETURN(Value v,
                            EvalExpr(*expr.children()[0], tuple, ctx));
      return Value::Int(v.i == 0 ? 1 : 0);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const ScalarExprPtr& pred, const Tuple& tuple,
                           const QueryContext& ctx) {
  if (!pred) return true;
  OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, tuple, ctx));
  return v.i != 0;
}

}  // namespace oodb
