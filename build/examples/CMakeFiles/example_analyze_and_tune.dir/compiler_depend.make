# Empty compiler generated dependencies file for example_analyze_and_tune.
# This may be replaced when dependencies are built.
