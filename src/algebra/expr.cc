#include "src/algebra/expr.h"

#include <cstdio>
#include <functional>

#include "src/common/strings.h"

namespace oodb {

namespace {
size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}
}  // namespace

bool Value::operator==(const Value& o) const {
  if (kind != o.kind) {
    // Allow int/double cross-comparison for equality.
    if ((kind == Kind::kInt && o.kind == Kind::kDouble) ||
        (kind == Kind::kDouble && o.kind == Kind::kInt)) {
      return Compare(o) == 0;
    }
    return false;
  }
  switch (kind) {
    case Kind::kNull:
      return true;
    case Kind::kInt:
      return i == o.i;
    case Kind::kDouble:
      return d == o.d;
    case Kind::kString:
      return s == o.s;
  }
  return false;
}

int Value::Compare(const Value& o) const {
  auto num = [](const Value& v) {
    return v.kind == Kind::kInt ? static_cast<double>(v.i) : v.d;
  };
  if (kind == Kind::kString && o.kind == Kind::kString) {
    return s.compare(o.s) < 0 ? -1 : (s == o.s ? 0 : 1);
  }
  double a = num(*this), b = num(o);
  return a < b ? -1 : (a == b ? 0 : 1);
}

std::string Value::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kDouble:
      return FormatDouble(d);
    case Kind::kString:
      return "\"" + s + "\"";
  }
  return "?";
}

std::string Value::KeyString() const {
  switch (kind) {
    case Kind::kNull:
      return "n";
    case Kind::kInt:
      return "i" + std::to_string(i);
    case Kind::kDouble: {
      // Integral doubles key like ints so 3 == 3.0 joins correctly.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return "i" + std::to_string(static_cast<int64_t>(d));
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d%.17g", d);
      return buf;
    }
    case Kind::kString:
      return "s" + s;
  }
  return "?";
}

size_t Value::Hash() const {
  switch (kind) {
    case Kind::kNull:
      return 0x77;
    case Kind::kInt:
      return std::hash<int64_t>()(i);
    case Kind::kDouble:
      return std::hash<double>()(d);
    case Kind::kString:
      return std::hash<std::string>()(s);
  }
  return 0;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp ReverseCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

bool EvalCmp(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::kEq:
      return three_way == 0;
    case CmpOp::kNe:
      return three_way != 0;
    case CmpOp::kLt:
      return three_way < 0;
    case CmpOp::kLe:
      return three_way <= 0;
    case CmpOp::kGt:
      return three_way > 0;
    case CmpOp::kGe:
      return three_way >= 0;
  }
  return false;
}

ScalarExprPtr ScalarExpr::Attr(BindingId binding, FieldId field) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kAttr;
  e->binding_ = binding;
  e->field_ = field;
  return e;
}

ScalarExprPtr ScalarExpr::Self(BindingId binding) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kSelf;
  e->binding_ = binding;
  return e;
}

ScalarExprPtr ScalarExpr::Const(Value v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kConst;
  e->value_ = std::move(v);
  return e;
}

ScalarExprPtr ScalarExpr::Cmp(CmpOp op, ScalarExprPtr l, ScalarExprPtr r) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kCmp;
  e->cmp_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ScalarExprPtr ScalarExpr::And(std::vector<ScalarExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ScalarExprPtr ScalarExpr::Or(std::vector<ScalarExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kOr;
  e->children_ = std::move(children);
  return e;
}

ScalarExprPtr ScalarExpr::Not(ScalarExprPtr child) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ScalarExprPtr ScalarExpr::AttrEqStr(BindingId b, FieldId f, std::string s) {
  return Cmp(CmpOp::kEq, Attr(b, f), Const(Value::Str(std::move(s))));
}

ScalarExprPtr ScalarExpr::AttrEqInt(BindingId b, FieldId f, int64_t v) {
  return Cmp(CmpOp::kEq, Attr(b, f), Const(Value::Int(v)));
}

ScalarExprPtr ScalarExpr::AttrCmpInt(BindingId b, FieldId f, CmpOp op,
                                     int64_t v) {
  return Cmp(op, Attr(b, f), Const(Value::Int(v)));
}

ScalarExprPtr ScalarExpr::RefEq(BindingId b1, FieldId f, BindingId b2) {
  return Cmp(CmpOp::kEq, Attr(b1, f), Self(b2));
}

BindingSet ScalarExpr::ReferencedBindings() const {
  BindingSet out;
  switch (kind_) {
    case Kind::kAttr:
    case Kind::kSelf:
      out.Add(binding_);
      break;
    case Kind::kConst:
      break;
    default:
      for (const ScalarExprPtr& c : children_) {
        out = out.Union(c->ReferencedBindings());
      }
  }
  return out;
}

bool ScalarExpr::Equals(const ScalarExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kAttr:
      return binding_ == other.binding_ && field_ == other.field_;
    case Kind::kSelf:
      return binding_ == other.binding_;
    case Kind::kConst:
      return value_ == other.value_;
    case Kind::kCmp:
      if (cmp_op_ != other.cmp_op_) return false;
      [[fallthrough]];
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      if (children_.size() != other.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->Equals(*other.children_[i])) return false;
      }
      return true;
  }
  return false;
}

size_t ScalarExpr::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b9;
  switch (kind_) {
    case Kind::kAttr:
      h = HashCombine(h, static_cast<size_t>(binding_) * 31 + field_);
      break;
    case Kind::kSelf:
      h = HashCombine(h, static_cast<size_t>(binding_));
      break;
    case Kind::kConst:
      h = HashCombine(h, value_.Hash());
      break;
    case Kind::kCmp:
      h = HashCombine(h, static_cast<size_t>(cmp_op_));
      [[fallthrough]];
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const ScalarExprPtr& c : children_) h = HashCombine(h, c->Hash());
      break;
  }
  return h;
}

std::string ScalarExpr::ToString(const BindingTable& bindings,
                                 const Schema& schema) const {
  switch (kind_) {
    case Kind::kAttr: {
      const BindingDef& b = bindings.def(binding_);
      if (field_ == kInvalidField) return b.name;
      return b.name + "." + schema.type(b.type).field(field_).name;
    }
    case Kind::kSelf:
      return bindings.def(binding_).name + ".self";
    case Kind::kConst:
      return value_.ToString();
    case Kind::kCmp:
      return children_[0]->ToString(bindings, schema) + " " +
             CmpOpName(cmp_op_) + " " +
             children_[1]->ToString(bindings, schema);
    case Kind::kAnd: {
      std::vector<std::string> parts;
      for (const ScalarExprPtr& c : children_) {
        parts.push_back(c->ToString(bindings, schema));
      }
      return Join(parts, " and ");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const ScalarExprPtr& c : children_) {
        parts.push_back("(" + c->ToString(bindings, schema) + ")");
      }
      return Join(parts, " or ");
    }
    case Kind::kNot:
      return "not (" + children_[0]->ToString(bindings, schema) + ")";
  }
  return "?";
}

std::vector<ScalarExprPtr> ScalarExpr::SplitConjuncts(const ScalarExprPtr& e) {
  std::vector<ScalarExprPtr> out;
  if (!e) return out;
  if (e->kind() == Kind::kAnd) {
    for (const ScalarExprPtr& c : e->children()) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(e);
  }
  return out;
}

ScalarExprPtr ScalarExpr::CombineConjuncts(
    std::vector<ScalarExprPtr> conjuncts) {
  return And(std::move(conjuncts));
}

size_t HashExprPtr(const ScalarExprPtr& e) { return e ? e->Hash() : 0x5f; }

bool ExprPtrEquals(const ScalarExprPtr& a, const ScalarExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

}  // namespace oodb
