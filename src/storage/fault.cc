#include "src/storage/fault.h"

#include <algorithm>

namespace oodb {

Status FaultInjector::OnPageAccess(PageId page) {
  MutexLock lock(mu_);
  ++accesses_;
  if (policy_.fail_every_nth_read > 0 &&
      accesses_ % policy_.fail_every_nth_read == 0) {
    return Status::StorageFault(
        "injected fault on page " + std::to_string(page) + " (read #" +
        std::to_string(accesses_) + ", every-nth policy)");
  }
  if (policy_.fail_probability > 0.0 &&
      rng_.Bernoulli(policy_.fail_probability)) {
    return Status::StorageFault(
        "injected fault on page " + std::to_string(page) + " (read #" +
        std::to_string(accesses_) + ", probabilistic policy)");
  }
  return Status::OK();
}

Status FaultInjector::OnObjectRead(Oid oid) {
  if (std::find(policy_.fail_oids.begin(), policy_.fail_oids.end(), oid) !=
      policy_.fail_oids.end()) {
    return Status::StorageFault("injected fault reading oid " +
                                std::to_string(oid) + " (oid policy)");
  }
  return Status::OK();
}

}  // namespace oodb
