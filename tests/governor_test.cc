// QueryGovernor: deadlines, budgets, cancellation, and graceful degradation
// to the greedy baseline planner.
#include <gtest/gtest.h>

#include <thread>

#include "src/baseline/greedy.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

constexpr const char* kJoeQuery =
    "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";";
constexpr const char* kAllEmployeesQuery =
    "SELECT e.name FROM Employee e IN Employees;";

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : db_(MakePaperCatalog(0.02)) {}

  // Heap-allocated: ObjectStore wires internal pointers (buffer pool ->
  // disk model) at construction and must never be moved.
  std::unique_ptr<Session> MakeSession(Session::Options opts = {}) {
    auto s = std::make_unique<Session>(&db_.catalog, std::move(opts));
    GenOptions gen;
    gen.num_plants = 20;
    EXPECT_TRUE(GeneratePaperData(db_, &s->store(), gen).ok());
    return s;
  }

  PaperDb db_;
};

TEST_F(GovernorTest, UngovernedByDefault) {
  std::unique_ptr<Session> sp = MakeSession();
  Session& s = *sp;
  auto r = s.Query(kJoeQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->optimized.stats.degraded);
  EXPECT_EQ(r->optimized.stats.governor.trips(), 0);
  EXPECT_EQ(r->exec.governor.trips(), 0);
}

TEST_F(GovernorTest, GovernedQueryWithinBudgetsSucceeds) {
  Session::Options opts;
  opts.governor.deadline_ms = 60000.0;
  opts.governor.max_memo_mexprs = 100000;
  opts.governor.max_exec_rows = 1000000;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Query(kJoeQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->optimized.stats.degraded);
  EXPECT_EQ(r->exec.governor.trips(), 0);
  EXPECT_EQ(r->exec.governor.rows_charged, r->exec.rows);
}

TEST_F(GovernorTest, DeadlineTripsMidSearch) {
  Session::Options opts;
  opts.governor.deadline_ms = 1e-7;  // expires before the first checkpoint
  opts.governor.degrade_to_greedy = false;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(kJoeQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
}

TEST_F(GovernorTest, MemoBudgetTripErrorsWhenDegradationOff) {
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  opts.governor.degrade_to_greedy = false;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(kJoeQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted) << r.status();
}

TEST_F(GovernorTest, MemoBudgetDegradesToGreedyIdenticalPlan) {
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(kJoeQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->optimized.stats.degraded);
  EXPECT_FALSE(r->optimized.stats.degrade_reason.empty());
  EXPECT_GE(r->optimized.stats.governor.budget_trips, 1);

  // The fallback plan is exactly what the greedy baseline planner produces
  // when invoked directly on the same query and catalog.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto logical = ParseAndSimplify(kJoeQuery, &ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();
  GreedyOptimizer greedy(&db_.catalog, opts.optimizer.cost);
  auto direct = greedy.Optimize(**logical, &ctx);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(r->PlanText(), PrintPlan(*direct->plan, ctx));
}

TEST_F(GovernorTest, DegradedPlanStillExecutes) {
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Query(kJoeQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->optimized.stats.degraded);
  EXPECT_GT(r->exec.rows, 0);
}

TEST_F(GovernorTest, DegradedPlanNeverCached) {
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  opts.optimizer.plan_cache_capacity = 16;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto first = s.Prepare(kJoeQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->optimized.stats.degraded);
  ASSERT_NE(s.plan_cache(), nullptr);
  EXPECT_EQ(s.plan_cache()->stats().entries, 0);
  // A repeat is re-degraded, never served from the cache.
  auto second = s.Prepare(kJoeQuery);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->optimized.stats.degraded);
  EXPECT_FALSE(second->optimized.stats.plan_cached);
  EXPECT_EQ(s.plan_cache()->stats().hits, 0);
}

TEST_F(GovernorTest, JoinQueryBudgetTripSurfacesWhenGreedyCannotHelp) {
  // The greedy baseline rejects explicit joins, so degradation falls back
  // to reporting the original governor trip.
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(
      "SELECT e.name FROM Employee e IN Employees, Task t IN Tasks "
      "WHERE e.age == t.time;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted) << r.status();
}

TEST_F(GovernorTest, ExecutorRowBudgetTripsMidPipeline) {
  Session::Options opts;
  opts.governor.max_exec_rows = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Query(kAllEmployeesQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted) << r.status();
}

TEST_F(GovernorTest, ExecutorPageBudgetTripsMidPipeline) {
  Session::Options opts;
  opts.governor.max_exec_pages = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Query(kAllEmployeesQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted) << r.status();
}

TEST_F(GovernorTest, TrackedMemoryBudgetTripsInBlockingOperator) {
  Session::Options opts;
  opts.governor.max_tracked_bytes = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  // Forces a sort enforcer, whose Open() buffers the whole input.
  auto r = s.Query(
      "SELECT e.name FROM Employee e IN Employees ORDER BY e.age;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted) << r.status();
}

TEST_F(GovernorTest, CancellationObservedDuringSearch) {
  Session::Options opts;
  opts.governor.cancel = std::make_shared<CancelToken>();
  opts.governor.cancel->RequestCancel();
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(kJoeQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status();
}

TEST_F(GovernorTest, CancellationNeverDegrades) {
  Session::Options opts;
  opts.governor.cancel = std::make_shared<CancelToken>();
  opts.governor.cancel->RequestCancel();
  opts.governor.degrade_to_greedy = true;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto r = s.Prepare(kJoeQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status();
}

TEST_F(GovernorTest, CrossThreadCancellationBetweenOperators) {
  // The token is flipped from another thread; the executing query observes
  // it at its next per-Next() checkpoint. (Run under TSan in CI.)
  auto token = std::make_shared<CancelToken>();
  Session::Options opts;
  opts.governor.cancel = token;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;

  auto ok = s.Query(kJoeQuery);  // not yet cancelled: runs normally
  ASSERT_TRUE(ok.ok()) << ok.status();

  std::thread canceller([token] { token->RequestCancel(); });
  canceller.join();
  auto r = s.Query(kJoeQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status();
}

TEST_F(GovernorTest, ExplainAnnotatesDegradedPlan) {
  Session::Options opts;
  opts.governor.max_memo_mexprs = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  auto text = s.Explain(kJoeQuery);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("plan: degraded(greedy, reason="), std::string::npos)
      << *text;
  EXPECT_NE(text->find("governor: trips="), std::string::npos) << *text;
}

TEST_F(GovernorTest, SessionSurvivesTripsAndRecovers) {
  Session::Options opts;
  opts.governor.max_exec_rows = 1;
  std::unique_ptr<Session> sp = MakeSession(opts);
  Session& s = *sp;
  ASSERT_FALSE(s.Query(kAllEmployeesQuery).ok());
  // Relax the budget: the next statement arms a fresh governor and works.
  s.options().governor.max_exec_rows = 1000000;
  auto r = s.Query(kAllEmployeesQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->exec.rows, 1);
}

// --- ObjectStore dangling-reference hardening (regression) ---

TEST_F(GovernorTest, ReadOfDanglingOidIsErrorNotUndefinedBehavior) {
  std::unique_ptr<Session> sp = MakeSession();
  Session& s = *sp;
  ObjectStore& store = s.store();
  Oid bogus = store.num_objects() + 1000;
  auto read = store.Read(bogus);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  auto peek = store.Peek(bogus);
  ASSERT_FALSE(peek.ok());
  EXPECT_EQ(store.TypeOf(bogus), kInvalidType);
  EXPECT_EQ(store.TypeOf(kInvalidOid), kInvalidType);
}

}  // namespace
}  // namespace oodb
