#include "src/physical/parallel.h"

#include <cmath>
#include <memory>
#include <utility>

#include "src/physical/algorithms.h"

namespace oodb {

namespace {

/// CPU of the driver chain from `node` down to (and including) `driver` —
/// the work each Exchange worker performs on its own partition slice.
/// Everything off this chain (hash builds, nested-loops buffers) is
/// replicated per worker and therefore not divided by dop.
double DriverChainCpu(const PlanNode& node, const PlanNode* driver) {
  double cpu = node.local_cost.cpu_s;
  if (&node == driver) return cpu;
  switch (node.op.kind) {
    case PhysOpKind::kFilter:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK:
      return cpu + DriverChainCpu(*node.children[0], driver);
    case PhysOpKind::kHybridHashJoin:
    case PhysOpKind::kNestedLoops:
      return cpu + DriverChainCpu(*node.children[1], driver);
    default:
      return cpu;  // unreachable when `driver` was found below `node`
  }
}

/// Degree-of-parallelism choice: the best dop in [2, max_dop] and its
/// estimated response-time CPU, or dop == 1 (cpu == the serial total) when
/// no degree beats serial execution.
struct ExchangeChoice {
  int dop = 1;
  double cpu = 0.0;
};

ExchangeChoice ChooseDop(const PlanNode& plan, const PlanNode* driver,
                         const CostModel& cm, int max_dop, bool merge) {
  double total_cpu = plan.total_cost.cpu_s;
  double chain_cpu = DriverChainCpu(plan, driver);
  double out_card = plan.logical.card;
  ExchangeChoice best{1, total_cpu};
  for (int dop = 2; dop <= max_dop; ++dop) {
    Cost ex = merge ? MergeExchangeCost(cm, out_card, dop)
                    : ExchangeCost(cm, out_card, dop);
    double est = (total_cpu - chain_cpu) +
                 chain_cpu / static_cast<double>(dop) + ex.cpu_s;
    if (est < best.cpu) best = ExchangeChoice{dop, est};
  }
  return best;
}

/// Builds the Exchange node by hand (not PlanNode::Make): its total cost is
/// the anticipated *response time* est(dop), which is less than the child's
/// summed work — its local cost is the (negative) speedup net of startup,
/// flow, and (for merge) loser-tree overhead.
PlanNodePtr MakeExchangeNode(PlanNodePtr child, const PlanNode* driver,
                             const ExchangeChoice& choice, bool merge) {
  double child_cpu = child->total_cost.cpu_s;
  auto ex = std::make_shared<PlanNode>();
  ex->op.kind = PhysOpKind::kExchange;
  ex->op.dop = choice.dop;
  ex->op.partition_binding = driver->op.binding;
  ex->logical = child->logical;
  ex->delivered = child->delivered;
  if (merge) {
    // Order-preserving: every worker's contiguous partition slice arrives
    // sorted; the consumer's loser tree merges them, and any limit is both
    // pushed to each producer and re-applied at the merge.
    ex->op.merge = true;
    ex->op.sort = child->delivered.sort;
    ex->op.limit = child->delivered.limit;
  } else {
    ex->delivered.sort = SortSpec{};  // workers interleave: order is lost
    ex->delivered.limit = 0;
  }
  ex->total_cost = Cost{child->total_cost.io_s, choice.cpu};
  ex->local_cost = Cost{0.0, choice.cpu - child_cpu};
  ex->children.push_back(std::move(child));
  return ex;
}

/// Order-preserving parallelization of an ordered (or limited) subtree:
/// wrap the whole thing in a merging Exchange so each worker produces its
/// partition's sorted run. Returns nullptr when no partitionable driver
/// exists or no dop beats serial execution.
PlanNodePtr TryMergeExchange(PlanNodePtr plan, const CostModel& cm,
                             int max_dop) {
  const PlanNode* driver = FindPartitionableScan(*plan);
  if (driver == nullptr) return nullptr;
  ExchangeChoice choice = ChooseDop(*plan, driver, cm, max_dop, /*merge=*/true);
  if (choice.dop <= 1) return nullptr;
  return MakeExchangeNode(std::move(plan), driver, choice, /*merge=*/true);
}

}  // namespace

const PlanNode* FindPartitionableScan(const PlanNode& plan) {
  switch (plan.op.kind) {
    case PhysOpKind::kFileScan:
    case PhysOpKind::kIndexScan:
      return &plan;
    case PhysOpKind::kFilter:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
      return FindPartitionableScan(*plan.children[0]);
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK:
      // A per-worker sort / top-k over a *contiguous* partition slice is
      // sound: slices of a (prefix-)sorted stream are themselves
      // (prefix-)sorted, and the merging Exchange restores global order.
      return FindPartitionableScan(*plan.children[0]);
    case PhysOpKind::kHybridHashJoin:  // build replicated, probe partitioned
    case PhysOpKind::kNestedLoops:     // buffer replicated, right partitioned
      return FindPartitionableScan(*plan.children[1]);
    default:
      // Merge join and set ops depend on seeing the whole input; a nested
      // exchange partitions for itself.
      return nullptr;
  }
}

PlanNodePtr PlantExchanges(PlanNodePtr plan, const CostModel& cm,
                           int max_dop) {
  if (max_dop <= 1 || plan == nullptr) return plan;

  // Descend through a root Alg-Project that relays an ordered or limited
  // delivery: the interesting choice (merge vs. enforcer-above) sits at the
  // Sort/TopK or ordered scan below it.
  if (plan->op.kind == PhysOpKind::kAlgProject &&
      (plan->delivered.sort.IsSorted() || plan->delivered.limit > 0)) {
    PlanNodePtr child = PlantExchanges(plan->children[0], cm, max_dop);
    if (child == plan->children[0]) return plan;
    return PlanNode::Make(plan->op, {std::move(child)}, plan->logical,
                          plan->delivered, plan->local_cost);
  }

  if (plan->op.kind == PhysOpKind::kSort ||
      plan->op.kind == PhysOpKind::kTopK) {
    // Only the merging variant parallelizes an ordered root. The tempting
    // alternative — the enforcer above a plain Exchange — is multiset-
    // correct but *nondeterministic*: a stable sort's tie order inherits
    // its input sequence, and worker interleaving scrambles that sequence
    // differently on every run. A merging Exchange over contiguous slices
    // (ties toward the lower partition index) reproduces the serial stable
    // sort bit for bit, so ordered parallel plans are merge plans or stay
    // serial.
    PlanNodePtr merged = TryMergeExchange(plan, cm, max_dop);
    return merged != nullptr ? merged : plan;
  }

  // An ordered delivery reaching the consumer with no enforcer above (an
  // index scan satisfying ORDER BY directly): contiguous partition slices
  // of the ordered driver are each sorted, so a merging Exchange keeps the
  // order that a plain Exchange would shuffle away.
  if (plan->delivered.sort.IsSorted()) {
    PlanNodePtr merged = TryMergeExchange(plan, cm, max_dop);
    return merged != nullptr ? merged : plan;
  }
  // A limited delivery is produced only by TopK / Alg-Project roots, both
  // handled above; never interleave it.
  if (plan->delivered.limit > 0) return plan;

  const PlanNode* driver = FindPartitionableScan(*plan);
  if (driver == nullptr) return plan;
  ExchangeChoice choice =
      ChooseDop(*plan, driver, cm, max_dop, /*merge=*/false);
  if (choice.dop <= 1) return plan;
  return MakeExchangeNode(std::move(plan), driver, choice, /*merge=*/false);
}

}  // namespace oodb
