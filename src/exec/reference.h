// Reference evaluator: executes a *logical* algebra expression directly,
// by its naive denotational semantics, with no optimization, no properties,
// and no I/O accounting. Used as the ground truth for differential testing:
// every optimized physical plan must produce exactly the same multiset of
// results as the reference evaluation of its logical input.
#ifndef OODB_EXEC_REFERENCE_H_
#define OODB_EXEC_REFERENCE_H_

#include "src/exec/tuple.h"
#include "src/storage/object_store.h"

namespace oodb {

/// Result of a reference evaluation: the output tuples (for Project roots,
/// the projected rows).
struct ReferenceResult {
  std::vector<Tuple> tuples;
  /// Rows evaluated from a root Project's emit list (empty otherwise).
  std::vector<std::vector<Value>> rows;
};

/// Evaluates `expr` against `store` by direct interpretation. Reads do not
/// charge the simulated clock.
Result<ReferenceResult> EvaluateReference(const LogicalExpr& expr,
                                          ObjectStore* store,
                                          const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_EXEC_REFERENCE_H_
