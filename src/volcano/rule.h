// Rule interfaces of the optimizer generator: transformation rules
// (logical -> logical), implementation rules (logical -> physical algorithm),
// and property enforcers. Rules are registered with the search engine and
// individually switchable by name — the mechanism behind the paper's
// "simulated other optimizers by disabling various rules" methodology (§4).
#ifndef OODB_VOLCANO_RULE_H_
#define OODB_VOLCANO_RULE_H_

#include <string>
#include <vector>

#include "src/common/governor.h"
#include "src/cost/cost_model.h"
#include "src/volcano/memo.h"

namespace oodb {

class OptTrace;

/// Build-configured default for OptimizerOptions::verify_plans (the
/// OODB_VERIFY_PLANS CMake option; on by default in Debug builds).
#ifdef OODB_VERIFY_PLANS_DEFAULT
inline constexpr bool kVerifyPlansDefault = true;
#else
inline constexpr bool kVerifyPlansDefault = false;
#endif

/// Search statistics reported per optimization (Table 2's "Optim. Time" and
/// "% of Exh. Search" columns derive from these).
struct SearchStats {
  int groups = 0;
  int logical_mexprs = 0;
  int phys_alternatives = 0;     ///< physical alternatives costed
  int transformation_firings = 0;
  int impl_firings = 0;
  int enforcer_firings = 0;
  /// Wall-clock (steady_clock) time spent inside the search engine — the
  /// quantity the paper's "<1 sec on today's workstations" goal bounds.
  double optimize_seconds = 0.0;

  /// True when this result was served from the plan cache instead of a
  /// fresh search (the firing/expression counters then describe the search
  /// that originally produced the cached plan).
  bool plan_cached = false;
  /// Snapshot of the serving cache's cumulative counters at answer time
  /// (all zero when no cache is configured).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;

  /// True when this plan came from a mid-query re-optimization under
  /// observed-cardinality feedback (see Session's adaptive path). Such
  /// plans are query-local and never cached.
  bool replanned = false;
  /// True when the cost-based search tripped the resource governor and the
  /// plan is the greedy baseline's instead (see Session); `degrade_reason`
  /// carries the trip message. Degraded plans are never cached.
  bool degraded = false;
  std::string degrade_reason;
  /// Governor trip/charge counters for this query (zero when ungoverned).
  GovernorStats governor;

  /// True when the static verifier (src/verify/) ran over the memo and the
  /// winning plan after this optimization.
  bool verified = false;
  /// Non-empty when verification found violations: one diagnostic per line,
  /// each "[invariant] at operator/path: detail". A non-empty value marks
  /// the plan as suspect — the Session refuses to cache it and Explain
  /// surfaces the diagnostics.
  std::string verify_error;

  /// Total expressions generated — the exhaustive-search denominator.
  int expressions() const { return logical_mexprs + phys_alternatives; }
};

/// Optimizer configuration.
struct OptimizerOptions {
  CostModelOptions cost;
  /// Names of rules/enforcers to disable (see rule name constants below).
  std::vector<std::string> disabled_rules;
  /// Extensions, off by default to match the paper's configuration:
  /// warm-start assembly (Lesson 7) and merge join + sort enforcer.
  bool enable_warm_start_assembly = false;
  bool enable_merge_join = false;
  /// Branch-and-bound cost-limit pruning during the costing phase (the
  /// paper's unevaluated "mechanisms for heuristic guidance and pruning").
  /// Plans remain optimal; only search effort shrinks.
  bool enable_pruning = false;
  /// Maximum Exchange degree of parallelism the post-optimization
  /// parallelization pass (src/physical/parallel.h) may plant. 1 (the
  /// default) skips the pass entirely, preserving the seed's serial plans
  /// bit for bit; the pass picks the cheapest dop in [1, max_dop] per plan.
  int max_dop = 1;
  /// Emit rule-firing trace to stderr.
  bool trace = false;
  /// Structured search-trace sink (src/trace/opt_trace.h): rule firings,
  /// group exploration, winner replacements, pruned branches, enforcer
  /// insertions, and the verifier outcome, ring-buffered with text/JSON
  /// dumps. Non-owning; null (the default) records nothing and keeps the
  /// search bit-identical. Like `trace`, `governor`, and `verify_plans`,
  /// deliberately excluded from HashOptimizerOptions: observability never
  /// changes which plan wins.
  OptTrace* trace_sink = nullptr;
  /// Plan-cache capacity in entries for caches the Session creates on
  /// demand; 0 (the default) disables caching entirely, preserving the
  /// seed optimizer's behavior bit for bit.
  size_t plan_cache_capacity = 0;
  /// Parameterize comparison literals out of plan-cache keys (selectivity-
  /// bucketed sharing; see src/query/fingerprint.h). When false every
  /// literal keys exactly.
  bool plan_cache_parameterize = true;
  /// Run the static verifier (src/verify/) over the memo and winning plan
  /// after every optimization, recording violations in
  /// SearchStats::verify_error. Like `governor`, deliberately excluded from
  /// HashOptimizerOptions: verification never changes which plan wins.
  bool verify_plans = kVerifyPlansDefault;
  /// Per-query resource governor (non-owning; null = ungoverned). Set by
  /// Session for each governed query. Deliberately excluded from
  /// HashOptimizerOptions: a governor never changes which plan wins, it
  /// only bounds how long the search may run before tripping.
  QueryGovernor* governor = nullptr;

  bool IsDisabled(const std::string& name) const {
    for (const std::string& d : disabled_rules) {
      if (d == name) return true;
    }
    return false;
  }
};

// Rule name constants (used with OptimizerOptions::disabled_rules).
inline constexpr const char* kRuleJoinCommute = "join-commutativity";
inline constexpr const char* kRuleJoinAssoc = "join-associativity";
inline constexpr const char* kRuleMatToJoin = "mat-to-join";
inline constexpr const char* kRuleMatMatCommute = "mat-mat-commute";
inline constexpr const char* kRuleSelectMatCommute = "select-mat-commute";
inline constexpr const char* kRuleMatSelectCommute = "mat-select-commute";
inline constexpr const char* kRuleSelectSplit = "select-split";
inline constexpr const char* kRuleSelectMerge = "select-merge";
inline constexpr const char* kRuleSelectUnnestCommute = "select-unnest-commute";
inline constexpr const char* kRuleMatUnnestCommute = "mat-unnest-commute";
inline constexpr const char* kRuleUnnestMatCommute = "unnest-mat-commute";
inline constexpr const char* kRuleSelectJoinPush = "select-join-pushdown";
inline constexpr const char* kRuleSelectJoinAbsorb = "select-join-absorb";
inline constexpr const char* kRuleMatJoinPush = "mat-join-pushdown";
inline constexpr const char* kRuleMatJoinPull = "mat-join-pullup";
inline constexpr const char* kRuleSetOpCommute = "setop-commutativity";
inline constexpr const char* kRuleSetOpAssoc = "setop-associativity";
inline constexpr const char* kImplFileScan = "file-scan";
inline constexpr const char* kImplIndexScan = "collapse-to-index-scan";
inline constexpr const char* kImplFilter = "filter";
inline constexpr const char* kImplHybridHashJoin = "hybrid-hash-join";
inline constexpr const char* kImplPointerJoin = "pointer-join";
inline constexpr const char* kImplAssembly = "assembly";
inline constexpr const char* kImplAlgProject = "alg-project";
inline constexpr const char* kImplAlgUnnest = "alg-unnest";
inline constexpr const char* kImplHashSetOps = "hash-set-ops";
inline constexpr const char* kImplMergeJoin = "merge-join";
inline constexpr const char* kImplNestedLoops = "nested-loops";
inline constexpr const char* kEnforcerAssembly = "assembly-enforcer";
inline constexpr const char* kEnforcerSort = "sort-enforcer";

/// Shared state handed to rules.
struct OptContext {
  QueryContext* qctx = nullptr;
  Memo* memo = nullptr;
  const CostModel* cost_model = nullptr;
  const OptimizerOptions* opts = nullptr;
  SearchStats* stats = nullptr;
};

/// A logical-to-logical transformation rule.
class TransformationRule {
 public:
  virtual ~TransformationRule() = default;
  virtual const char* name() const = 0;
  /// Operator kind of the m-exprs this rule matches.
  virtual LogicalOpKind root_kind() const = 0;
  /// True if the rule also inspects child-group contents (such rules are
  /// re-fired when a child group gains expressions).
  virtual bool matches_children() const { return false; }
  /// Appends substitute expressions for `mexpr` to `out`.
  virtual Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
                       std::vector<RuleExprPtr>* out) const = 0;
};

/// One physical alternative proposed by an implementation rule.
struct PhysInput {
  GroupId group = kInvalidGroup;
  PhysProps required;
};
struct PhysAlternative {
  PhysicalOp op;
  std::vector<PhysInput> inputs;
  /// Properties the algorithm delivers given inputs delivering theirs.
  PhysProps delivered;
  Cost local_cost;
};

/// A logical-to-physical implementation rule. May match multi-level
/// patterns by inspecting child groups (e.g. collapse-to-index-scan).
class ImplRule {
 public:
  virtual ~ImplRule() = default;
  virtual const char* name() const = 0;
  virtual LogicalOpKind root_kind() const = 0;
  /// Appends physical alternatives that implement `mexpr` and can deliver
  /// `required` (alternatives that cannot are filtered by the caller, so
  /// rules may emit optimistically).
  virtual Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
                       const PhysProps& required,
                       std::vector<PhysAlternative>* out) const = 0;
};

/// An enforcer alternative: a property-enforcing operator over the *same*
/// group optimized under weaker requirements.
struct EnforcerAlt {
  PhysicalOp op;
  PhysProps child_required;
  PhysProps delivered;
  Cost local_cost;
};

/// A physical property enforcer.
class Enforcer {
 public:
  virtual ~Enforcer() = default;
  virtual const char* name() const = 0;
  virtual Status Apply(OptContext& ctx, GroupId group,
                       const PhysProps& required,
                       std::vector<EnforcerAlt>* out) const = 0;
};

}  // namespace oodb

#endif  // OODB_VOLCANO_RULE_H_
