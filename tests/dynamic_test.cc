// Dynamic plan selection: compile once per index configuration, select at
// run time (the ObjectStore capability of paper §2, rebuilt cost-based).
#include <gtest/gtest.h>

#include "src/dynamic/dynamic_plans.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

class DynamicPlanTest : public ::testing::Test {
 protected:
  DynamicPlanTest() : db_(MakePaperCatalog()) {}

  DynamicPlan CompileQuery4(QueryContext* ctx) {
    auto logical = BuildPaperQuery(4, db_, ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    auto compiled = DynamicPlan::Compile(**logical, ctx, &db_.catalog);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return *std::move(compiled);
  }

  PaperDb db_;
};

TEST_F(DynamicPlanTest, CompilesOneVariantPerConfiguration) {
  QueryContext ctx;
  DynamicPlan dp = CompileQuery4(&ctx);
  // Query 4 touches Task and Employee: the time index and the name index
  // are relevant (the Cities path index is not).
  EXPECT_EQ(dp.relevant_indexes().size(), 2u);
  EXPECT_EQ(dp.variants().size(), 4u);
}

TEST_F(DynamicPlanTest, CompilationRestoresCatalogState) {
  QueryContext ctx;
  CompileQuery4(&ctx);
  EXPECT_TRUE((*db_.catalog.FindIndex(kIdxTasksTime))->enabled);
  EXPECT_TRUE((*db_.catalog.FindIndex(kIdxEmployeesName))->enabled);
}

TEST_F(DynamicPlanTest, SelectionTracksIndexAvailability) {
  QueryContext ctx;
  DynamicPlan dp = CompileQuery4(&ctx);

  // All indexes on: the Figure-12 plan (time index only used).
  auto all = dp.Select(db_.catalog);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(CountOps(*(*all)->plan, PhysOpKind::kIndexScan), 1);

  // Drop the time index at "run time": selection switches plans without
  // recompilation.
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, false).ok());
  auto name_only = dp.Select(db_.catalog);
  ASSERT_TRUE(name_only.ok());
  EXPECT_NE((*name_only)->plan.get(), (*all)->plan.get());
  EXPECT_GT((*name_only)->cost.total(), (*all)->cost.total());

  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, false).ok());
  auto none = dp.Select(db_.catalog);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(CountOps(*(*none)->plan, PhysOpKind::kIndexScan), 0);

  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, true).ok());
}

TEST_F(DynamicPlanTest, VariantsMatchDirectOptimization) {
  QueryContext ctx;
  DynamicPlan dp = CompileQuery4(&ctx);
  struct Cfg {
    bool time, name;
  };
  for (Cfg cfg : {Cfg{false, false}, Cfg{true, false}, Cfg{false, true},
                  Cfg{true, true}}) {
    ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, cfg.time).ok());
    ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, cfg.name).ok());
    QueryContext direct_ctx;
    OptimizedQuery direct = testing::MustOptimize(4, db_, &direct_ctx);
    auto selected = dp.Select(db_.catalog);
    ASSERT_TRUE(selected.ok());
    EXPECT_DOUBLE_EQ((*selected)->cost.total(), direct.cost.total());
  }
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, true).ok());
}

TEST_F(DynamicPlanTest, SelectedPlanExecutes) {
  PaperDb db = MakePaperCatalog(0.05);
  ObjectStore store(&db.catalog);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db, &store, gen).ok());

  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(
      "SELECT t.name FROM Task t IN Tasks, Employee e IN t.team_members "
      "WHERE e.name == \"Fred\" && t.time == 5;",
      &ctx);
  ASSERT_TRUE(logical.ok());
  auto compiled = DynamicPlan::Compile(**logical, &ctx, &db.catalog);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  // Run under two different configurations; results must agree.
  auto run = [&]() -> int64_t {
    auto variant = compiled->Select(db.catalog);
    EXPECT_TRUE(variant.ok());
    auto stats = ExecutePlan(*(*variant)->plan, &store, &ctx);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows : -1;
  };
  int64_t with_index = run();
  ASSERT_TRUE(db.catalog.SetIndexEnabled(kIdxTasksTime, false).ok());
  int64_t without_index = run();
  EXPECT_EQ(with_index, without_index);
  ASSERT_TRUE(db.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
}

TEST_F(DynamicPlanTest, MismatchedContextRejected) {
  PaperDb other = MakePaperCatalog();
  QueryContext ctx;
  auto logical = BuildPaperQuery(4, db_, &ctx);
  ASSERT_TRUE(logical.ok());
  EXPECT_FALSE(DynamicPlan::Compile(**logical, &ctx, &other.catalog).ok());
}

}  // namespace
}  // namespace oodb
