// Observability overhead gates: the EXPLAIN ANALYZE / optimizer-trace layer
// must be effectively free when off and cheap when on.
//
// With tracing off the instrumented paths ARE the seed paths — a null
// trace_sink records nothing (one pointer test per would-be event) and an
// un-analyzed execution never wraps an operator — so the "off" gate is
// structural. What this bench measures and gates is the *on* cost:
//
//   1. optimizer search with an OptTrace sink attached vs. null sink:
//      best-of-N optimize time ratio must stay under 1.03 (<3%);
//   2. the OO7 scan-filter-join pipeline executed with ANALYZE on vs. off:
//      best-of-N wall time ratio must stay under 1.10 (<10%).
//
// Results go to BENCH_trace.json; the process also dumps the metrics
// registry to metrics_snapshot.txt (the CI artifact proving the registry is
// wired end-to-end). Nonzero exit when a gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/common/metrics.h"
#include "src/oodb.h"
#include "src/trace/opt_trace.h"
#include "src/workloads/oo7.h"

namespace oodb {
namespace {

Oo7Options BenchConfig() {
  Oo7Options o;
  o.num_composite_parts = 400;
  o.atomic_per_composite = 120;  // 48000 atomic parts through the pipeline
  o.complex_per_module = 4;
  o.base_per_complex = 8;
  o.num_build_dates = 10;
  return o;
}

constexpr const char* kPipeline =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 100 && a.y < 900 && p.buildDate >= 2;";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall seconds of one optimization of the pipeline query under `sink`.
double OneOptimizeSeconds(const Catalog& catalog, OptTrace* sink) {
  QueryContext ctx;
  ctx.catalog = &catalog;
  auto logical = ParseAndSimplify(kPipeline, &ctx);
  if (!logical.ok()) {
    std::fprintf(stderr, "parse: %s\n", logical.status().ToString().c_str());
    std::exit(1);
  }
  OptimizerOptions opts;
  opts.trace_sink = sink;
  Optimizer opt(&catalog, std::move(opts));
  if (sink != nullptr) sink->Clear();
  double t0 = Now();
  auto planned = opt.Optimize(**logical, &ctx);
  double t1 = Now();
  if (!planned.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 planned.status().ToString().c_str());
    std::exit(1);
  }
  return t1 - t0;
}

/// Wall seconds of one execution of `plan`.
double OneExecuteSeconds(const PlanNode& plan, ObjectStore* store,
                         QueryContext* ctx, bool analyze) {
  ExecOptions eo;
  eo.batch_size = 1024;
  eo.sample_limit = 0;
  eo.analyze = analyze;
  double t0 = Now();
  auto r = ExecutePlan(plan, store, ctx, eo);
  double t1 = Now();
  if (!r.ok()) {
    std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return t1 - t0;
}

}  // namespace

int Main() {
  auto made = MakeOo7(BenchConfig());
  if (!made.ok()) {
    std::fprintf(stderr, "oo7 setup: %s\n", made.status().ToString().c_str());
    return 1;
  }
  Oo7Instance instance = std::move(made).value();
  ObjectStore& store = *instance.store;
  Catalog& catalog = instance.db->catalog;

  // Gate 1: optimizer search trace. Interleave off/on samples so CPU
  // frequency drift hits both sides equally, and gate on best-of-each
  // (the floor is the intrinsic cost; everything above it is noise).
  constexpr int kOptReps = 120;
  OptTrace sink;
  double opt_off = 1e30, opt_on = 1e30;
  for (int i = 0; i < kOptReps; ++i) {
    opt_off = std::min(opt_off, OneOptimizeSeconds(catalog, nullptr));
    opt_on = std::min(opt_on, OneOptimizeSeconds(catalog, &sink));
  }
  double opt_overhead = opt_on / opt_off;
  std::printf("optimize: trace off %.6fs, trace on %.6fs  (%.3fx, %lld events)\n",
              opt_off, opt_on, opt_overhead,
              static_cast<long long>(sink.recorded()));
  std::printf("  events: rule-fired %lld, group-explored %lld, "
              "winner-replaced %lld, enforcer %lld\n",
              static_cast<long long>(sink.count(OptEventKind::kRuleFired)),
              static_cast<long long>(sink.count(OptEventKind::kGroupExplored)),
              static_cast<long long>(
                  sink.count(OptEventKind::kWinnerReplaced)),
              static_cast<long long>(
                  sink.count(OptEventKind::kEnforcerInserted)));

  // Gate 2: EXPLAIN ANALYZE execution profile.
  QueryContext ctx;
  ctx.catalog = &catalog;
  auto logical = ParseAndSimplify(kPipeline, &ctx);
  if (!logical.ok()) {
    std::fprintf(stderr, "parse: %s\n", logical.status().ToString().c_str());
    return 1;
  }
  Optimizer opt(&catalog);
  auto planned = opt.Optimize(**logical, &ctx);
  if (!planned.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  constexpr int kExecReps = 40;
  double exec_off = 1e30, exec_on = 1e30;
  for (int i = 0; i < kExecReps; ++i) {
    exec_off = std::min(exec_off,
                        OneExecuteSeconds(*planned->plan, &store, &ctx, false));
    exec_on = std::min(exec_on,
                       OneExecuteSeconds(*planned->plan, &store, &ctx, true));
  }
  double exec_overhead = exec_on / exec_off;
  std::printf("execute: analyze off %.6fs, analyze on %.6fs  (%.3fx)\n",
              exec_off, exec_on, exec_overhead);

  constexpr double kOptGate = 1.03;
  constexpr double kExecGate = 1.10;
  bool opt_ok = opt_overhead < kOptGate;
  bool exec_ok = exec_overhead < kExecGate;
  std::printf("gates: trace %.3fx < %.2fx %s, analyze %.3fx < %.2fx %s\n",
              opt_overhead, kOptGate, opt_ok ? "PASS" : "FAIL",
              exec_overhead, kExecGate, exec_ok ? "PASS" : "FAIL");

  std::FILE* json = std::fopen("BENCH_trace.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_trace.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"opt_seconds_trace_off\": %.6f,\n", opt_off);
  std::fprintf(json, "  \"opt_seconds_trace_on\": %.6f,\n", opt_on);
  std::fprintf(json, "  \"opt_trace_overhead\": %.4f,\n", opt_overhead);
  std::fprintf(json, "  \"opt_trace_events\": %lld,\n",
               static_cast<long long>(sink.recorded()));
  std::fprintf(json, "  \"exec_seconds_analyze_off\": %.6f,\n", exec_off);
  std::fprintf(json, "  \"exec_seconds_analyze_on\": %.6f,\n", exec_on);
  std::fprintf(json, "  \"analyze_overhead\": %.4f,\n", exec_overhead);
  std::fprintf(json, "  \"gates\": {\"opt_trace\": %.2f, \"analyze\": %.2f},\n",
               kOptGate, kExecGate);
  std::fprintf(json, "  \"pass\": %s\n", opt_ok && exec_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_trace.json\n");

  // The metrics snapshot artifact: everything the process touched.
  std::FILE* snap = std::fopen("metrics_snapshot.txt", "w");
  if (snap != nullptr) {
    std::string text = MetricsRegistry::Global().TextSnapshot();
    std::fwrite(text.data(), 1, text.size(), snap);
    std::fclose(snap);
    std::printf("wrote metrics_snapshot.txt\n");
  }

  return opt_ok && exec_ok ? 0 : 2;
}

}  // namespace oodb

int main() { return oodb::Main(); }
