// Batch-execution throughput: real (wall-clock) rows/sec of a deep
// scan -> filter -> hash-join -> project -> sort pipeline over the OO7
// workload, across the batch-size x DOP grid {1, 64, 1024} x {1, 2, 4}.
//
// batch=1 / dop=1 reproduces the tuple-at-a-time era exactly (one virtual
// Next per operator per row, per-row clock and governor charges); larger
// batches amortize that per-call overhead across up to 1024 rows, and
// Exchange adds worker-pool parallelism on top. The acceptance claim under
// test: batch 1024 / DOP 4 sustains >= 3x the rows/sec of batch 1 / DOP 1.
//
// A second phase runs a highly selective variant of the same pipeline
// (~1% of atomic parts survive the scan filter) with the columnar engine
// toggled off and on, batch 1024, at DOP 1 and DOP 4. The claim under
// test: vectorized kernels sustain >= 3x the rows/sec of the row engine at
// DOP 1 on selective filters, without losing the DOP-4 parallel speedup.
//
// A third phase exercises order as a physical property: a full ORDER BY
// over the atomic parts (serial Sort vs. order-preserving merging Exchange
// at DOP 4) and the same query with LIMIT 10 (TopK vs. full Sort). Both
// claims are gated on *deterministic* simulated seconds, not wall clock:
// the merging Exchange's costed response time must be >= 2x better than the
// serial sorted plan's, and the executed simulated time of the TopK plan
// must be >= 5x better than the full Sort's at k=10. (Executed simulated
// seconds sum per-worker clocks — total work, not response time — so the
// DOP-4 claim uses the response-time cost the Exchange node advertises,
// which the executed totals then keep honest via the regression gate.)
//
// Results are printed as a table and written to BENCH_exec.json in the
// current directory ({"grid": [...], "speedup_batch1024_dop4": S,
// "selective": [...], "speedup_vectorized_dop1": V, "ordered": [...],
// "speedup_merge_costed_dop4": M, "speedup_topk_vs_sort_sim": T}).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/oodb.h"
#include "src/workloads/oo7.h"

namespace oodb {
namespace {

Oo7Options BenchConfig() {
  Oo7Options o;
  o.num_composite_parts = 400;
  o.atomic_per_composite = 120;  // 48000 atomic parts through the pipeline
  o.complex_per_module = 4;
  o.base_per_complex = 8;
  o.num_build_dates = 10;
  return o;
}

/// The measured pipeline: FileScan(AtomicParts) -> Filter -> HybridHashJoin
/// (build CompositeParts) -> Project -> Sort.
constexpr const char* kPipeline =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 100 && a.y < 900 && p.buildDate >= 2;";

/// The selective variant: the same shape, but the scan filter keeps ~1 in
/// 10^4 of the x/y grid, so nearly all filter work is rejection — the case
/// selection-vector kernels are built for.
constexpr const char* kSelective =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 990 && a.y < 10 && p.buildDate >= 2;";

/// The ordered phase: every atomic part, totally ordered by a non-unique
/// key with the unique id as tie-break, so serial and merged plans must
/// agree on the exact sequence. The LIMIT 10 variant turns the Sort
/// enforcer into a bounded-heap TopK.
constexpr const char* kOrderedSort =
    "SELECT a.id, a.buildDate FROM AtomicPart a IN AtomicParts "
    "WHERE a.x >= 0 ORDER BY a.buildDate, a.id;";
constexpr const char* kOrderedTopK =
    "SELECT a.id, a.buildDate FROM AtomicPart a IN AtomicParts "
    "WHERE a.x >= 0 ORDER BY a.buildDate, a.id LIMIT 10;";

struct Measured {
  int batch;
  int dop;
  int64_t rows;
  double rows_per_sec;
};

int MaxDopOf(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
  for (const PlanNodePtr& c : node.children) {
    dop = std::max(dop, MaxDopOf(*c));
  }
  return dop;
}

const PlanNode* FindMergeExchange(const PlanNode& node) {
  if (node.op.kind == PhysOpKind::kExchange && node.op.merge) return &node;
  for (const PlanNodePtr& c : node.children) {
    if (const PlanNode* found = FindMergeExchange(*c)) return found;
  }
  return nullptr;
}

/// A parsed + optimized ordered query; the context owns the bindings the
/// plan references, so both travel together.
struct OrderedPlan {
  QueryContext ctx;
  LogicalExprPtr logical;
  PlanNodePtr plan;
};

bool PlanOrdered(const char* text, Catalog* catalog, int max_dop,
                 OrderedPlan* out) {
  out->ctx.catalog = catalog;
  SortSpec order;
  int64_t limit = 0;
  auto logical = ParseAndSimplify(text, &out->ctx, &order, &limit);
  if (!logical.ok()) {
    std::fprintf(stderr, "parse: %s\n", logical.status().ToString().c_str());
    return false;
  }
  out->logical = *logical;
  OptimizerOptions opts;
  opts.max_dop = max_dop;
  PhysProps required;
  required.sort = order;
  required.limit = limit;
  Optimizer opt(catalog, std::move(opts));
  auto planned = opt.Optimize(*out->logical, &out->ctx, required);
  if (!planned.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 planned.status().ToString().c_str());
    return false;
  }
  out->plan = planned->plan;
  return true;
}

/// Warm up once, then repeat until enough wall time has elapsed for a
/// stable rate (each run cold-starts the buffer pool, so repetitions are
/// identical work). Two measurement passes, best rate kept: on a shared
/// host the minimum time is the signal and the excursions are scheduler
/// noise. Returns rows/sec, or a negative value on failure.
double MeasureRate(const PlanNode& plan, ObjectStore* store, QueryContext* ctx,
                   const ExecOptions& eo, int64_t* rows_out) {
  auto warm = ExecutePlan(plan, store, ctx, eo);
  if (!warm.ok()) {
    std::fprintf(stderr, "execute: %s\n", warm.status().ToString().c_str());
    return -1.0;
  }
  *rows_out = warm->rows;
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    int reps = 0;
    double elapsed = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    do {
      auto r = ExecutePlan(plan, store, ctx, eo);
      if (!r.ok()) {
        std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
        return -1.0;
      }
      ++reps;
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } while (elapsed < 0.5 || reps < 3);
    best = std::max(best, static_cast<double>(*rows_out) * reps / elapsed);
  }
  return best;
}

/// Measures two configurations of the same plan in alternating short
/// slices, so both see the same thermal/scheduler environment — the fair
/// way to form a ratio on a busy host (back-to-back blocks bias whichever
/// runs second on a heat-soaked core). Returns rows/sec per configuration.
bool MeasurePair(const PlanNode& plan, ObjectStore* store, QueryContext* ctx,
                 const ExecOptions& eo_a, const ExecOptions& eo_b,
                 int64_t* rows_out, double* rate_a, double* rate_b) {
  const ExecOptions* eos[2] = {&eo_a, &eo_b};
  int reps[2] = {0, 0};
  double elapsed[2] = {0.0, 0.0};
  for (int m = 0; m < 2; ++m) {  // warm both
    auto warm = ExecutePlan(plan, store, ctx, *eos[m]);
    if (!warm.ok()) {
      std::fprintf(stderr, "execute: %s\n", warm.status().ToString().c_str());
      return false;
    }
    *rows_out = warm->rows;
  }
  for (int slice = 0; slice < 12; ++slice) {
    int m = slice % 2;
    double sliced = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    do {
      auto r = ExecutePlan(plan, store, ctx, *eos[m]);
      if (!r.ok()) {
        std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
        return false;
      }
      ++reps[m];
      sliced =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } while (sliced < 0.1);
    elapsed[m] += sliced;
  }
  *rate_a = static_cast<double>(*rows_out) * reps[0] / elapsed[0];
  *rate_b = static_cast<double>(*rows_out) * reps[1] / elapsed[1];
  return true;
}

}  // namespace

int Main() {
  auto made = MakeOo7(BenchConfig());
  if (!made.ok()) {
    std::fprintf(stderr, "oo7 setup: %s\n", made.status().ToString().c_str());
    return 1;
  }
  Oo7Instance instance = std::move(made).value();
  ObjectStore& store = *instance.store;
  Catalog& catalog = instance.db->catalog;

  std::vector<Measured> grid;
  for (int dop : {1, 2, 4}) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    SortSpec order;
    auto logical = ParseAndSimplify(kPipeline, &ctx, &order);
    if (!logical.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   logical.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions opts;
    opts.max_dop = dop;
    PhysProps required;
    required.sort = order;
    Optimizer opt(&catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx, required);
    if (!planned.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }
    int planted = MaxDopOf(*planned->plan);

    for (int batch : {1, 64, 1024}) {
      ExecOptions eo;
      eo.batch_size = batch;
      eo.sample_limit = 0;  // measure the pipeline, not result retention
      eo.vectorize = 0;     // the row-engine baseline grid

      int64_t rows = 0;
      double rate = MeasureRate(*planned->plan, &store, &ctx, eo, &rows);
      if (rate < 0.0) return 1;
      grid.push_back({batch, dop, rows, rate});
      std::printf("batch=%-5d dop=%d (planted %d)  rows=%-6lld  %12.0f rows/sec\n",
                  batch, dop, planted, static_cast<long long>(rows), rate);
      std::fflush(stdout);
    }
  }

  double base = 0.0, best = 0.0;
  for (const Measured& m : grid) {
    if (m.batch == 1 && m.dop == 1) base = m.rows_per_sec;
    if (m.batch == 1024 && m.dop == 4) best = m.rows_per_sec;
  }
  double speedup = base > 0.0 ? best / base : 0.0;
  std::printf("\nspeedup batch1024/dop4 vs batch1/dop1: %.2fx\n\n", speedup);

  // --- Selective phase: row engine vs columnar kernels, batch 1024. ---
  struct SelMeasured {
    int dop;
    int vectorize;
    int64_t rows;
    double rows_per_sec;
  };
  std::vector<SelMeasured> sel;
  for (int dop : {1, 4}) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    SortSpec order;
    auto logical = ParseAndSimplify(kSelective, &ctx, &order);
    if (!logical.ok()) {
      std::fprintf(stderr, "parse: %s\n", logical.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions opts;
    opts.max_dop = dop;
    PhysProps required;
    required.sort = order;
    Optimizer opt(&catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx, required);
    if (!planned.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }
    ExecOptions eo_row;
    eo_row.batch_size = 1024;
    eo_row.sample_limit = 0;
    eo_row.vectorize = 0;
    ExecOptions eo_vec = eo_row;
    eo_vec.vectorize = 1;
    int64_t rows = 0;
    double rate_row = 0.0, rate_vec = 0.0;
    if (!MeasurePair(*planned->plan, &store, &ctx, eo_row, eo_vec, &rows,
                     &rate_row, &rate_vec)) {
      return 1;
    }
    sel.push_back({dop, 0, rows, rate_row});
    sel.push_back({dop, 1, rows, rate_vec});
    std::printf("selective dop=%d row         rows=%-6lld  %12.0f rows/sec\n",
                dop, static_cast<long long>(rows), rate_row);
    std::printf("selective dop=%d vectorized  rows=%-6lld  %12.0f rows/sec\n",
                dop, static_cast<long long>(rows), rate_vec);
    std::fflush(stdout);
  }

  auto sel_rate = [&sel](int dop, int vectorize) {
    for (const auto& m : sel) {
      if (m.dop == dop && m.vectorize == vectorize) return m.rows_per_sec;
    }
    return 0.0;
  };
  double vec1 = sel_rate(1, 0) > 0.0 ? sel_rate(1, 1) / sel_rate(1, 0) : 0.0;
  double vec4 = sel_rate(4, 0) > 0.0 ? sel_rate(4, 1) / sel_rate(4, 0) : 0.0;
  std::printf("\nspeedup vectorized vs row (selective, dop 1): %.2fx\n", vec1);
  std::printf("speedup vectorized vs row (selective, dop 4): %.2fx\n", vec4);

  // --- Ordered phase: order as a physical property. Both claims are gated
  // on deterministic simulated seconds (see the file comment), so these
  // points never flake on a busy host. ---
  struct OrdMeasured {
    const char* phase;
    int dop;
    int64_t rows;
    double sim_s;     // executed simulated seconds: total work
    double costed_s;  // optimizer's anticipated response time
  };
  std::vector<OrdMeasured> ordered;
  for (const char* phase : {"sort", "topk"}) {
    const char* text =
        std::string(phase) == "sort" ? kOrderedSort : kOrderedTopK;
    for (int dop : {1, 4}) {
      OrderedPlan op;
      if (!PlanOrdered(text, &catalog, dop, &op)) return 1;
      if (std::string(phase) == "sort" && dop == 1 &&
          CountOps(*op.plan, PhysOpKind::kSort) == 0) {
        std::fprintf(stderr, "ordered: serial plan lost its Sort enforcer\n");
        return 1;
      }
      if (std::string(phase) == "topk" &&
          CountOps(*op.plan, PhysOpKind::kTopK) != 1) {
        std::fprintf(stderr, "ordered: LIMIT plan did not plant a TopK\n");
        return 1;
      }
      if (dop == 4 && FindMergeExchange(*op.plan) == nullptr) {
        std::fprintf(stderr,
                     "ordered: dop-4 plan did not plant a merging Exchange\n");
        return 1;
      }
      ExecOptions eo;
      eo.batch_size = 1024;
      eo.sample_limit = 0;
      eo.vectorize = 0;
      auto run = ExecutePlan(*op.plan, &store, &op.ctx, eo);
      if (!run.ok()) {
        std::fprintf(stderr, "execute: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      double costed = op.plan->total_cost.io_s + op.plan->total_cost.cpu_s;
      ordered.push_back({phase, dop, run->rows, run->sim_total_s(), costed});
      std::printf(
          "ordered %-4s dop=%d  rows=%-6lld  sim %10.3fs  costed %10.3fs\n",
          phase, dop, static_cast<long long>(run->rows), run->sim_total_s(),
          costed);
      std::fflush(stdout);
    }
  }
  auto ord_point = [&ordered](const char* phase, int dop) -> const OrdMeasured& {
    for (const OrdMeasured& m : ordered) {
      if (std::string(m.phase) == phase && m.dop == dop) return m;
    }
    static OrdMeasured none{"", 0, 0, 0.0, 0.0};
    return none;
  };
  const OrdMeasured& sort1 = ord_point("sort", 1);
  const OrdMeasured& sort4 = ord_point("sort", 4);
  const OrdMeasured& topk1 = ord_point("topk", 1);
  double merge_costed =
      sort4.costed_s > 0.0 ? sort1.costed_s / sort4.costed_s : 0.0;
  double topk_sim = topk1.sim_s > 0.0 ? sort1.sim_s / topk1.sim_s : 0.0;
  std::printf("\nspeedup merge-Exchange vs serial sort (costed, dop 4): %.2fx\n",
              merge_costed);
  std::printf("speedup TopK k=10 vs full Sort (simulated, dop 1): %.2fx\n",
              topk_sim);

  std::FILE* json = std::fopen("BENCH_exec.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_exec.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"pipeline\": \"scan-filter-hashjoin-project-sort\",\n");
  std::fprintf(json, "  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const Measured& m = grid[i];
    std::fprintf(json,
                 "    {\"batch\": %d, \"dop\": %d, \"rows\": %lld, "
                 "\"rows_per_sec\": %.0f}%s\n",
                 m.batch, m.dop, static_cast<long long>(m.rows),
                 m.rows_per_sec, i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_batch1024_dop4\": %.2f,\n", speedup);
  std::fprintf(json, "  \"selective\": [\n");
  for (size_t i = 0; i < sel.size(); ++i) {
    const SelMeasured& m = sel[i];
    std::fprintf(json,
                 "    {\"dop\": %d, \"vectorize\": %d, \"rows\": %lld, "
                 "\"rows_per_sec\": %.0f}%s\n",
                 m.dop, m.vectorize, static_cast<long long>(m.rows),
                 m.rows_per_sec, i + 1 < sel.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_vectorized_dop1\": %.2f,\n", vec1);
  std::fprintf(json, "  \"speedup_vectorized_dop4\": %.2f,\n", vec4);
  std::fprintf(json, "  \"ordered\": [\n");
  for (size_t i = 0; i < ordered.size(); ++i) {
    const OrdMeasured& m = ordered[i];
    std::fprintf(json,
                 "    {\"phase\": \"%s\", \"dop\": %d, \"rows\": %lld, "
                 "\"sim_s\": %.6f, \"costed_s\": %.6f}%s\n",
                 m.phase, m.dop, static_cast<long long>(m.rows), m.sim_s,
                 m.costed_s, i + 1 < ordered.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_merge_costed_dop4\": %.2f,\n", merge_costed);
  std::fprintf(json, "  \"speedup_topk_vs_sort_sim\": %.2f\n}\n", topk_sim);
  std::fclose(json);
  std::printf("wrote BENCH_exec.json\n");
  if (speedup < 3.0) return 2;
  if (vec1 < 3.0) return 2;
  if (merge_costed < 2.0) return 2;
  if (topk_sim < 5.0) return 2;
  return 0;
}

}  // namespace oodb

int main() { return oodb::Main(); }
