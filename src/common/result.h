// Result<T>: a value-or-Status holder, the return type of fallible functions
// that produce a value (Arrow idiom).
#ifndef OODB_COMMON_RESULT_H_
#define OODB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace oodb {

/// Holds either a T or a non-OK Status. Construct from either implicitly.
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// silently ignored failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors for the contained value.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace oodb

/// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define OODB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define OODB_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define OODB_ASSIGN_OR_RETURN_CONCAT(a, b) OODB_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define OODB_ASSIGN_OR_RETURN(lhs, expr) \
  OODB_ASSIGN_OR_RETURN_IMPL(            \
      OODB_ASSIGN_OR_RETURN_CONCAT(_oodb_result_, __LINE__), lhs, expr)

#endif  // OODB_COMMON_RESULT_H_
