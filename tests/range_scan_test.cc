// Range-predicate index scans and range selectivity: an index can answer
// <, <=, >, >= key comparisons, and the optimizer chooses the scan only
// when the range is narrow enough to beat a sequential scan.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

using testing::PlanContains;

class RangeScanTest : public ::testing::Test {
 protected:
  RangeScanTest() : db_(MakePaperCatalog()) {}

  OptimizedQuery Optimize(const std::string& text, QueryContext* ctx) {
    ctx->catalog = &db_.catalog;
    auto logical = ParseAndSimplify(text, ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    Optimizer opt(&db_.catalog);
    auto r = opt.Optimize(**logical, ctx);
    EXPECT_TRUE(r.ok()) << r.status();
    return *std::move(r);
  }

  PaperDb db_;
};

TEST_F(RangeScanTest, NarrowRangeUsesIndexScan) {
  // time >= 595 keeps ~0.8% of tasks: an unclustered index scan beats the
  // 300-page sequential scan.
  QueryContext ctx;
  OptimizedQuery q = Optimize(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 595;", &ctx);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 1);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "t.time >= 595"));
}

TEST_F(RangeScanTest, WideRangePrefersFileScan) {
  // time >= 100 keeps ~83% of tasks: fetching them through an unclustered
  // index would cost thousands of random reads.
  QueryContext ctx;
  OptimizedQuery q = Optimize(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 100;", &ctx);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 0);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kFileScan), 1);
}

TEST_F(RangeScanTest, EqualityPreferredOverRangeForTheKey) {
  QueryContext ctx;
  OptimizedQuery q = Optimize(
      "SELECT t.name FROM Task t IN Tasks "
      "WHERE t.time == 100 && t.time >= 50;",
      &ctx);
  ASSERT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 1);
  // The index answers the equality; the range becomes a residual.
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "t.time == 100"));
}

TEST_F(RangeScanTest, RangeCostBetweenEqualityAndScan) {
  QueryContext c1, c2, c3;
  OptimizedQuery eq = Optimize(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 595;", &c1);
  OptimizedQuery range = Optimize(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 595;", &c2);
  OptimizedQuery wide = Optimize(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 2;", &c3);
  EXPECT_LT(eq.cost.total(), range.cost.total());
  EXPECT_LT(range.cost.total(), wide.cost.total());
}

TEST_F(RangeScanTest, ExecutionMatchesBruteForce) {
  PaperDb db = MakePaperCatalog(0.2);
  ObjectStore store(&db.catalog);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db, &store, gen).ok());

  // At scale 0.2 tasks have times 1..120; time >= 119 is narrow enough
  // for the unclustered index scan to beat the sequential scan.
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 119;", &ctx);
  ASSERT_TRUE(logical.ok());
  Optimizer opt(&db.catalog);
  auto planned = opt.Optimize(**logical, &ctx);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(CountOps(*planned->plan, PhysOpKind::kIndexScan), 1)
      << PrintPlan(*planned->plan, ctx);

  auto stats = ExecutePlan(*planned->plan, &store, &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();

  int64_t expected = 0;
  auto members = store.CollectionMembers(CollectionId::Set("Tasks", db.task));
  ASSERT_TRUE(members.ok());
  for (Oid t : **members) {
    Result<const ObjectData*> obj = store.Read(t, false);
    ASSERT_TRUE(obj.ok());
    if ((*obj)->value(db.task_time).i >= 119) ++expected;
  }
  EXPECT_EQ(stats->rows, expected);
  EXPECT_GT(expected, 0);
}

TEST_F(RangeScanTest, StoredIndexScanOperators) {
  PaperDb db = MakePaperCatalog(0.02);
  ObjectStore store(&db.catalog);
  for (int i = 1; i <= 10; ++i) {
    Oid t = store.Create(db.task);
    store.SetValue(t, db.task_time, Value::Int(i));
    ASSERT_TRUE(store.AddToSet("Tasks", t).ok());
  }
  ASSERT_TRUE(store.AddToSet("Cities", store.Create(db.city)).ok());
  ASSERT_TRUE(store.BuildIndexes().ok());
  auto idx = store.FindIndex(kIdxTasksTime);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->Scan(CmpOp::kEq, Value::Int(3)).size(), 1u);
  EXPECT_EQ((*idx)->Scan(CmpOp::kLt, Value::Int(3)).size(), 2u);
  EXPECT_EQ((*idx)->Scan(CmpOp::kLe, Value::Int(3)).size(), 3u);
  EXPECT_EQ((*idx)->Scan(CmpOp::kGt, Value::Int(8)).size(), 2u);
  EXPECT_EQ((*idx)->Scan(CmpOp::kGe, Value::Int(8)).size(), 3u);
  EXPECT_EQ((*idx)->Scan(CmpOp::kNe, Value::Int(5)).size(), 9u);
}

}  // namespace
}  // namespace oodb
