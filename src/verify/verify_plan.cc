// The physical-plan layer of the verifier: a bottom-up walk proving that
// each operator's *claimed* delivered properties are justified by what the
// subtree below it actually establishes — presence-in-memory by scans,
// assembly/pointer-join materialization steps, sort orders by Sort /
// key-ordered index scans / merge joins and preserved only through
// order-preserving operators, Exchange placement by the parallel.cc
// planting rules — and that cost bookkeeping is additive.
#include "src/verify/verify.h"

#include <algorithm>
#include <cmath>

#include "src/physical/parallel.h"

namespace oodb {

namespace {

int PhysArity(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kFileScan:
    case PhysOpKind::kIndexScan:
      return 0;
    case PhysOpKind::kFilter:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK:
    case PhysOpKind::kExchange:
      return 1;
    case PhysOpKind::kHybridHashJoin:
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
    case PhysOpKind::kMergeJoin:
    case PhysOpKind::kNestedLoops:
      return 2;
  }
  return 0;
}

/// Does this operator emit its (single, driving) input's rows in input
/// order, so a child-delivered sort survives it? The hash operators
/// reorder; a plain Exchange interleaves worker output (the merging
/// variant is justified separately in CheckSort). Assembly preserves
/// order: its windowed elevator reorders *fetches*, never emitted rows.
bool PreservesOrder(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kFilter:
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kAlgUnnest:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kAssembly:
      return true;
    default:
      return false;
  }
}

class PlanChecker {
 public:
  PlanChecker(const QueryContext& ctx, const VerifyOptions& opts,
              VerifyReport* report)
      : ctx_(ctx), opts_(opts), report_(report) {}

  /// Returns the bindings provably loaded in the subtree's output tuples.
  BindingSet Check(const PlanNode& node, const std::string& path,
                   const PlanNode* parent);

 private:
  void Add(const char* inv, const std::string& path, std::string detail) {
    if (static_cast<int>(report_->violations().size()) <
        opts_.max_violations) {
      report_->Add(inv, path, std::move(detail));
    }
  }

  bool ValidBinding(BindingId b, const char* what, const std::string& path,
                    const char* inv) {
    if (ctx_.bindings.has(b)) return true;
    Add(inv, path,
        std::string(what) + " references unknown binding id " +
            std::to_string(b));
    return false;
  }

  std::string Name(BindingId b) const { return ctx_.bindings.def(b).name; }

  void CheckCosts(const PlanNode& node, const std::string& path);
  void CheckScope(const PlanNode& node, const std::string& path,
                  const std::vector<BindingSet>& child_scopes);
  void CheckSort(const PlanNode& node, const std::string& path);
  void CheckLimit(const PlanNode& node, const std::string& path);
  /// Per-step materialization discipline shared by Assembly / PointerJoin:
  /// sources readable when the step runs, targets consistent with the
  /// binding table's derivation records. Returns bindings added.
  BindingSet CheckMatSteps(const PlanNode& node, const std::string& path,
                           BindingSet child_loaded, bool strict_derivation);
  void CheckIndexScan(const PlanNode& node, const std::string& path);
  void CheckHashJoinPred(const PlanNode& node, const std::string& path);
  void CheckExchange(const PlanNode& node, const std::string& path,
                     const PlanNode* parent);
  /// Predicate well-formedness in boolean position over `scope`, plus its
  /// load requirements against `loaded`.
  void CheckPred(const ScalarExprPtr& pred, BindingSet scope,
                 BindingSet loaded, const std::string& path);

  const QueryContext& ctx_;
  const VerifyOptions& opts_;
  VerifyReport* report_;
};

void PlanChecker::CheckCosts(const PlanNode& node, const std::string& path) {
  if (!opts_.check_costs) return;
  if (!std::isfinite(node.local_cost.io_s) ||
      !std::isfinite(node.local_cost.cpu_s) ||
      !std::isfinite(node.total_cost.io_s) ||
      !std::isfinite(node.total_cost.cpu_s)) {
    Add(invariant::kPlanCostFinite, path, "operator cost is not finite");
    return;
  }
  // Exchange is the one operator allowed a negative local cost: its local
  // cost is the parallel speedup net of startup/flow overhead.
  if (node.op.kind != PhysOpKind::kExchange &&
      (node.local_cost.io_s < 0.0 || node.local_cost.cpu_s < 0.0)) {
    Add(invariant::kPlanCostNegative, path,
        "operator has negative local cost");
  }
  double io = node.local_cost.io_s;
  double cpu = node.local_cost.cpu_s;
  for (const PlanNodePtr& c : node.children) {
    io += c->total_cost.io_s;
    cpu += c->total_cost.cpu_s;
  }
  double tol = opts_.cost_rel_tolerance;
  auto close = [tol](double a, double b) {
    return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  if (!close(io, node.total_cost.io_s) ||
      !close(cpu, node.total_cost.cpu_s)) {
    Add(invariant::kPlanCostTotal, path,
        "total cost is not local + sum of child totals");
  }
}

void PlanChecker::CheckScope(const PlanNode& node, const std::string& path,
                             const std::vector<BindingSet>& child_scopes) {
  BindingSet expected;
  switch (node.op.kind) {
    case PhysOpKind::kFileScan:
      expected = BindingSet::Of(node.op.binding);
      break;
    case PhysOpKind::kIndexScan: {
      // A collapsed index scan implements Select(Mat*(Get)): its scope is
      // the root binding plus any Mat-derived bindings of the collapsed
      // chain (the chain objects are *in scope* though not delivered).
      expected = node.logical.scope;  // checked member-wise below
      if (!node.logical.scope.Contains(node.op.binding)) {
        Add(invariant::kPlanScope, path,
            "index scan scope does not contain its root binding");
      }
      for (BindingId b : node.logical.scope.ToVector()) {
        if (b == node.op.binding) continue;
        if (!ctx_.bindings.has(b) ||
            ctx_.bindings.def(b).origin != BindingOrigin::kMat) {
          Add(invariant::kPlanScope, path,
              "index scan scope carries non-Mat-derived binding '" +
                  (ctx_.bindings.has(b) ? Name(b) : std::to_string(b)) + "'");
        }
      }
      break;
    }
    case PhysOpKind::kFilter:
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK:
    case PhysOpKind::kExchange:
      expected = child_scopes[0];
      break;
    case PhysOpKind::kAssembly:
    case PhysOpKind::kPointerJoin: {
      expected = child_scopes[0];
      for (const MatStep& s : node.op.mats) {
        if (s.target != kInvalidBinding) expected.Add(s.target);
      }
      break;
    }
    case PhysOpKind::kAlgUnnest:
      expected = child_scopes[0];
      if (node.op.target != kInvalidBinding) expected.Add(node.op.target);
      break;
    case PhysOpKind::kAlgProject: {
      for (const ScalarExprPtr& e : node.op.emit) {
        if (e != nullptr) expected = expected.Union(e->ReferencedBindings());
      }
      break;
    }
    case PhysOpKind::kHybridHashJoin:
    case PhysOpKind::kNestedLoops:
    case PhysOpKind::kMergeJoin:
      expected = child_scopes[0].Union(child_scopes[1]);
      if (child_scopes[0].Intersects(child_scopes[1])) {
        Add(invariant::kPlanJoinOverlap, path,
            "join children's scopes overlap");
      }
      break;
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
      expected = child_scopes[0];
      if (!(child_scopes[0] == child_scopes[1])) {
        Add(invariant::kPlanSetOpScope, path,
            "set-operator children's scopes differ");
      }
      break;
  }
  if (!(node.logical.scope == expected)) {
    Add(invariant::kPlanScope, path,
        "operator's logical scope does not match what its inputs and "
        "operator arguments compose to");
  }
  if (!std::isfinite(node.logical.card) || node.logical.card < 0.0) {
    Add(invariant::kPlanScope, path,
        "operator carries a non-finite or negative cardinality estimate");
  }
}

void PlanChecker::CheckSort(const PlanNode& node, const std::string& path) {
  const SortSpec& claimed = node.delivered.sort;
  if (!claimed.IsSorted()) {
    // Claiming less than the subtree establishes is always safe.
    return;
  }
  for (const SortKey& k : claimed.keys) {
    if (!ValidBinding(k.binding, "delivered sort order", path,
                      invariant::kPlanSort)) {
      return;
    }
  }
  bool justified = false;
  std::string why;
  switch (node.op.kind) {
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK:
      // The enforcer sorts on exactly op.sort; a shorter claim is a prefix
      // of it (Satisfies), and the prefix it *skips* sorting must really
      // come in sorted — checked where the operator's keys are validated.
      justified = node.op.sort.Satisfies(claimed);
      why = "operator's keys do not cover the order it claims";
      break;
    case PhysOpKind::kIndexScan: {
      // Only a *simple* (single-field) index scans in an order that is an
      // attribute of the delivered root; path indexes order by the path
      // value. CheckIndexScan validates the key field itself.
      Result<const IndexInfo*> idx = ctx_.catalog->FindIndex(node.op.index_name);
      justified = idx.ok() && (*idx)->path.size() == 1 &&
                  SortSpec(node.op.binding, (*idx)->path[0])
                      .Satisfies(claimed);
      why = "index scan claims an order its index does not establish";
      break;
    }
    case PhysOpKind::kMergeJoin:
      justified = node.op.sort.Satisfies(claimed) &&
                  node.children[0]->delivered.sort.Satisfies(node.op.sort);
      why = "merge join claims an order that is not its (left-preserved) key";
      break;
    case PhysOpKind::kExchange:
      // Only the merging variant carries an order through; its legality
      // (worker plans actually deliver op.sort) is checked in
      // CheckExchange.
      justified = node.op.merge && node.op.sort.Satisfies(claimed);
      why = node.op.merge
                ? "merging exchange claims an order beyond its merge keys"
                : "non-merging exchange interleaves workers and cannot "
                  "deliver an order";
      break;
    default:
      if (PreservesOrder(node.op.kind)) {
        justified = node.children[0]->delivered.sort.Satisfies(claimed);
        why = "order-preserving operator claims an order its input does not "
              "deliver";
      } else {
        why = std::string(PhysOpKindName(node.op.kind)) +
              " does not establish or preserve any order";
      }
      break;
  }
  if (!justified) {
    Add(invariant::kPlanSort, path,
        "claimed sort on " + Name(claimed.keys[0].binding) + ": " + why);
  }
}

/// Row-limit discipline: a delivered limit must be *produced* here (TopK,
/// or a merging Exchange relaying its limited worker streams) or relayed
/// unchanged through a 1:1 operator (Alg-Project). Anything else claiming
/// a limit — or a producer claiming a different count than its operator
/// argument — would let a plan promise a truncation nothing performs.
void PlanChecker::CheckLimit(const PlanNode& node, const std::string& path) {
  const int64_t claimed = node.delivered.limit;
  if (claimed <= 0) return;
  bool justified = false;
  std::string why;
  switch (node.op.kind) {
    case PhysOpKind::kTopK:
      justified = node.op.limit == claimed;
      why = "top-k's row limit differs from the limit it claims";
      break;
    case PhysOpKind::kExchange:
      justified = node.op.merge && node.op.limit == claimed &&
                  node.children[0]->delivered.limit == claimed;
      why = node.op.merge
                ? "merging exchange claims a limit its worker plan does not "
                  "deliver"
                : "non-merging exchange cannot deliver a row limit";
      break;
    case PhysOpKind::kAlgProject:
      justified = node.children[0]->delivered.limit == claimed;
      why = "projection claims a limit its input does not deliver";
      break;
    default:
      why = std::string(PhysOpKindName(node.op.kind)) +
            " neither truncates nor relays a row limit 1:1";
      break;
  }
  if (!justified) {
    Add(invariant::kPlanTopK, path,
        "claimed limit " + std::to_string(claimed) + ": " + why);
  }
}

BindingSet PlanChecker::CheckMatSteps(const PlanNode& node,
                                      const std::string& path,
                                      BindingSet child_loaded,
                                      bool strict_derivation) {
  BindingSet added;
  if (node.op.mats.empty()) {
    Add(invariant::kPlanOpField, path, "materializing operator has no steps");
    return added;
  }
  BindingSet avail = child_loaded;
  const BindingTable& bindings = ctx_.bindings;
  for (const MatStep& step : node.op.mats) {
    if (!ValidBinding(step.target, "materialization target", path,
                      invariant::kPlanMatStep) ||
        !ValidBinding(step.source, "materialization source", path,
                      invariant::kPlanMatStep)) {
      continue;
    }
    const BindingDef& target = bindings.def(step.target);
    const BindingDef& source = bindings.def(step.source);
    if (step.field != kInvalidField) {
      // Dereference of a single-ref field of a loaded source object.
      const TypeDef& st = ctx_.schema().type(source.type);
      if (!st.has_field(step.field) ||
          st.field(step.field).kind != FieldKind::kRef) {
        Add(invariant::kPlanMatStep, path,
            "step loads '" + target.name + "' via a field of '" +
                source.name + "' that is not a single reference");
      } else {
        TypeId ft = st.field(step.field).target_type;
        if (!ctx_.schema().IsSubtypeOf(target.type, ft) &&
            !ctx_.schema().IsSubtypeOf(ft, target.type)) {
          Add(invariant::kPlanMatStep, path,
              "step loads '" + target.name +
                  "' whose type does not match the reference field's "
                  "target type");
        }
      }
      if (!avail.Contains(step.source)) {
        Add(invariant::kPlanMatSource, path,
            "step reads a reference field of '" + source.name +
                "' which is not loaded at that point");
      }
    } else {
      // Resolution of a bare-reference (Unnest output) binding: the value
      // is carried in the tuple slot, no load of the source needed.
      if (!source.is_ref) {
        Add(invariant::kPlanMatStep, path,
            "bare-reference step from '" + source.name +
                "' which is not a reference binding");
      }
      if (!node.logical.scope.Contains(step.source)) {
        Add(invariant::kPlanMatSource, path,
            "bare-reference step from '" + source.name +
                "' which is not in scope");
      }
    }
    if (strict_derivation) {
      // Assembly implements Mat: its targets must be exactly the binding
      // table's recorded derivations (catches rebound steps).
      if (target.origin != BindingOrigin::kMat ||
          target.parent != step.source || target.via_field != step.field) {
        Add(invariant::kPlanMatStep, path,
            "step loads '" + target.name +
                "' by a different derivation than the binding table "
                "records for it");
      }
    }
    added.Add(step.target);
    avail.Add(step.target);
  }
  return added;
}

void PlanChecker::CheckIndexScan(const PlanNode& node,
                                 const std::string& path) {
  if (!ValidBinding(node.op.binding, "index scan", path, invariant::kPlanScan))
    return;
  Result<const CollectionInfo*> coll = ctx_.catalog->FindCollection(node.op.coll);
  if (!coll.ok()) {
    Add(invariant::kPlanScan, path,
        "index scan over unknown collection " +
            node.op.coll.Display(ctx_.schema()));
  }
  Result<const IndexInfo*> found = ctx_.catalog->FindIndex(node.op.index_name);
  if (!found.ok()) {
    Add(invariant::kPlanIndex, path,
        "index '" + node.op.index_name + "' does not exist");
    return;
  }
  const IndexInfo& idx = **found;
  if (!(idx.collection == node.op.coll)) {
    Add(invariant::kPlanIndex, path,
        "index '" + idx.name + "' is over a different collection than the "
        "scan reads");
  }
  if (node.op.index_pred == nullptr) {
    Add(invariant::kPlanOpField, path, "index scan has no key predicate");
    return;
  }
  // The key predicate must be a constant comparison on the index's key
  // attribute: <chain-end binding>.<path.back()> cmp const, where the
  // chain-end binding's Mat derivation walks exactly the index path back
  // to the scanned root binding.
  const ScalarExpr& key = *node.op.index_pred;
  const ScalarExpr* attr = nullptr;
  if (key.kind() == ScalarExpr::Kind::kCmp && key.cmp_op() != CmpOp::kNe &&
      key.children().size() == 2) {
    const ScalarExpr* l = key.children()[0].get();
    const ScalarExpr* r = key.children()[1].get();
    if (l->kind() == ScalarExpr::Kind::kAttr &&
        r->kind() == ScalarExpr::Kind::kConst) {
      attr = l;
    } else if (r->kind() == ScalarExpr::Kind::kAttr &&
               l->kind() == ScalarExpr::Kind::kConst) {
      attr = r;
    }
  }
  if (attr == nullptr) {
    Add(invariant::kPlanIndex, path,
        "index key predicate is not an attribute-vs-constant comparison");
    return;
  }
  if (attr->field() != idx.path.back()) {
    Add(invariant::kPlanIndex, path,
        "index key predicate compares a different field than the index "
        "key '" + std::to_string(idx.path.back()) + "'");
    return;
  }
  // Walk the chain-end binding's derivation up the reference steps of the
  // index path; it must terminate at the scanned root.
  BindingId cur = attr->binding();
  bool chain_ok = ValidBinding(cur, "index key", path, invariant::kPlanIndex);
  for (size_t i = idx.path.size() - 1; chain_ok && i > 0; --i) {
    const BindingDef& def = ctx_.bindings.def(cur);
    if (def.origin != BindingOrigin::kMat ||
        def.via_field != idx.path[i - 1] ||
        !ctx_.bindings.has(def.parent)) {
      chain_ok = false;
      break;
    }
    cur = def.parent;
  }
  if (chain_ok && cur != node.op.binding) chain_ok = false;
  if (!chain_ok) {
    Add(invariant::kPlanIndex, path,
        "index key predicate's binding does not derive from the scanned "
        "root along the index path");
  }
  // Residual conjuncts run on the fetched roots only.
  if (node.op.pred != nullptr &&
      !BindingSet::Of(node.op.binding)
           .ContainsAll(node.op.pred->ReferencedBindings())) {
    Add(invariant::kPlanIndex, path,
        "index scan residual predicate reads bindings other than the "
        "delivered root");
  }
}

void PlanChecker::CheckHashJoinPred(const PlanNode& node,
                                    const std::string& path) {
  BindingSet ls = node.children[0]->logical.scope;
  BindingSet rs = node.children[1]->logical.scope;
  for (const ScalarExprPtr& c : ScalarExpr::SplitConjuncts(node.op.pred)) {
    if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq ||
        c->children().size() != 2) {
      Add(invariant::kPlanHashJoinPred, path,
          "hash join conjunct is not an equality");
      continue;
    }
    BindingSet lrefs = c->children()[0]->ReferencedBindings();
    BindingSet rrefs = c->children()[1]->ReferencedBindings();
    if (lrefs.Empty() || rrefs.Empty()) {
      Add(invariant::kPlanHashJoinPred, path,
          "hash join conjunct has a constant side");
      continue;
    }
    bool straight = ls.ContainsAll(lrefs) && rs.ContainsAll(rrefs);
    bool swapped = rs.ContainsAll(lrefs) && ls.ContainsAll(rrefs);
    if (!straight && !swapped) {
      Add(invariant::kPlanHashJoinPred, path,
          "hash join conjunct does not separate into one expression per "
          "side");
      continue;
    }
    const ScalarExpr* build_side =
        straight ? c->children()[0].get() : c->children()[1].get();
    const ScalarExpr* probe_side =
        straight ? c->children()[1].get() : c->children()[0].get();
    auto is_oid = [this](const ScalarExpr* e) {
      return e->kind() == ScalarExpr::Kind::kSelf &&
             ctx_.bindings.has(e->binding()) &&
             !ctx_.bindings.def(e->binding()).is_ref;
    };
    // The algorithm supports reference-vs-identifier conjuncts only with
    // the identified (OID) population on the build (left) side; join
    // commutativity is what makes the other orientation reachable.
    if (is_oid(probe_side) && !is_oid(build_side)) {
      Add(invariant::kPlanHashJoinOrientation, path,
          "object-identifier side of a reference-equality conjunct is on "
          "the probe side; the identified population must be the build "
          "(left) input");
    }
  }
}

void PlanChecker::CheckExchange(const PlanNode& node, const std::string& path,
                                const PlanNode* parent) {
  if (node.op.dop < 2) {
    Add(invariant::kPlanExchange, path,
        "exchange with degree of parallelism " + std::to_string(node.op.dop) +
            " (want >= 2)");
  }
  // Placement: at the root, under a root sort/top-k enforcer chain, or —
  // for the merging variant only — directly under the root projection
  // (ordered delivery flows through the 1:1 projection unharmed).
  const bool parent_ok =
      parent == nullptr || parent->op.kind == PhysOpKind::kSort ||
      parent->op.kind == PhysOpKind::kTopK ||
      (parent->op.kind == PhysOpKind::kAlgProject && node.op.merge);
  if (!parent_ok) {
    Add(invariant::kPlanExchange, path,
        "exchange below a " + std::string(PhysOpKindName(parent->op.kind)) +
            "; it may only sit at the plan root or under a root sort "
            "enforcer chain");
  }
  const PlanNode& child = *node.children[0];
  if (node.op.merge) {
    // Merging variant: each worker sorts its slice; the consumer k-way
    // merge only reproduces the global order if the worker plan really
    // delivers the merge keys.
    if (!node.op.sort.IsSorted()) {
      Add(invariant::kPlanExchange, path,
          "merging exchange has no merge keys");
    } else if (!child.delivered.sort.Satisfies(node.op.sort)) {
      Add(invariant::kPlanExchange, path,
          "merging exchange's worker plan does not deliver the merge keys "
          "sorted");
    }
  } else {
    if (child.delivered.sort.IsSorted()) {
      Add(invariant::kPlanExchange, path,
          "exchange over an ordered input: worker interleaving would "
          "destroy a delivery the plan paid for");
    }
    if (node.delivered.sort.IsSorted()) {
      Add(invariant::kPlanExchange, path,
          "exchange claims a sort order; worker interleaving cannot "
          "deliver one");
    }
    if (child.delivered.limit > 0 || node.delivered.limit > 0) {
      Add(invariant::kPlanExchange, path,
          "non-merging exchange cannot carry a row limit: interleaving "
          "k per-worker prefixes is not the global prefix");
    }
  }
  const PlanNode* driver = FindPartitionableScan(child);
  if (driver == nullptr) {
    Add(invariant::kPlanExchange, path,
        "exchange child has no partitionable driver scan on its probe "
        "spine");
  } else if (driver->op.binding != node.op.partition_binding) {
    Add(invariant::kPlanExchange, path,
        "exchange partition binding '" +
            (ctx_.bindings.has(node.op.partition_binding)
                 ? Name(node.op.partition_binding)
                 : std::to_string(node.op.partition_binding)) +
            "' is not the driver scan's binding '" +
            Name(driver->op.binding) + "'");
  }
}

void PlanChecker::CheckPred(const ScalarExprPtr& pred, BindingSet scope,
                            BindingSet loaded, const std::string& path) {
  if (pred == nullptr) return;
  ScalarType t = CheckScalarExpr(*pred, scope, ctx_, path, report_);
  if (t != ScalarType::kBool && t != ScalarType::kUnknown &&
      !IsTruthyConstant(*pred)) {
    report_->Add(invariant::kExprPredBool, path,
                 std::string("predicate of type ") + ScalarTypeName(t) +
                     " (want bool)");
  }
  BindingSet needs = LoadRequirements(pred, ctx_);
  if (!loaded.ContainsAll(needs)) {
    for (BindingId b : needs.Minus(loaded).ToVector()) {
      Add(invariant::kPlanLoad, path,
          "predicate reads fields of '" +
              (ctx_.bindings.has(b) ? Name(b) : std::to_string(b)) +
              "' which is not loaded at this operator");
    }
  }
}

BindingSet PlanChecker::Check(const PlanNode& node, const std::string& path,
                              const PlanNode* parent) {
  const int arity = PhysArity(node.op.kind);
  if (static_cast<int>(node.children.size()) != arity) {
    Add(invariant::kPlanArity, path,
        std::string(PhysOpKindName(node.op.kind)) + " has " +
            std::to_string(node.children.size()) + " children (want " +
            std::to_string(arity) + ")");
    return BindingSet();
  }

  // Children first: the walk is a bottom-up proof.
  std::vector<BindingSet> child_loaded;
  std::vector<BindingSet> child_scopes;
  child_loaded.reserve(node.children.size());
  child_scopes.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    const PlanNode& c = *node.children[i];
    std::string child_path = path + "/";
    if (arity > 1) child_path += std::to_string(i) + ":";
    child_path += PhysOpKindName(c.op.kind);
    child_loaded.push_back(Check(c, child_path, &node));
    child_scopes.push_back(c.logical.scope);
  }

  CheckCosts(node, path);
  CheckScope(node, path, child_scopes);

  // Compute what this operator's output actually has loaded, checking the
  // per-operator discipline along the way.
  BindingSet loaded;
  switch (node.op.kind) {
    case PhysOpKind::kFileScan: {
      if (ValidBinding(node.op.binding, "file scan", path,
                       invariant::kPlanScan)) {
        Result<const CollectionInfo*> coll =
            ctx_.catalog->FindCollection(node.op.coll);
        if (!coll.ok()) {
          Add(invariant::kPlanScan, path,
              "file scan over unknown collection " +
                  node.op.coll.Display(ctx_.schema()));
        } else {
          TypeId bt = ctx_.bindings.def(node.op.binding).type;
          if (!ctx_.schema().IsSubtypeOf((*coll)->id.type, bt) &&
              !ctx_.schema().IsSubtypeOf(bt, (*coll)->id.type)) {
            Add(invariant::kPlanScan, path,
                "file scan binding type does not match the collection's "
                "element type");
          }
        }
        loaded = BindingSet::Of(node.op.binding);
      }
      break;
    }
    case PhysOpKind::kIndexScan: {
      CheckIndexScan(node, path);
      if (ctx_.bindings.has(node.op.binding)) {
        loaded = BindingSet::Of(node.op.binding);
        CheckPred(node.op.pred, node.logical.scope, loaded, path);
      }
      break;
    }
    case PhysOpKind::kFilter: {
      if (node.op.pred == nullptr) {
        Add(invariant::kPlanOpField, path, "filter has no predicate");
      }
      loaded = child_loaded[0];
      CheckPred(node.op.pred, child_scopes[0], loaded, path);
      break;
    }
    case PhysOpKind::kAssembly:
      loaded = child_loaded[0].Union(CheckMatSteps(
          node, path, child_loaded[0], /*strict_derivation=*/true));
      break;
    case PhysOpKind::kPointerJoin: {
      if (node.op.pred == nullptr) {
        Add(invariant::kPlanOpField, path, "pointer join has no predicate");
      }
      BindingSet added = CheckMatSteps(node, path, child_loaded[0],
                                       /*strict_derivation=*/false);
      loaded = child_loaded[0].Union(added);
      CheckPred(node.op.pred, node.logical.scope, loaded, path);
      break;
    }
    case PhysOpKind::kAlgProject: {
      if (node.op.emit.empty()) {
        Add(invariant::kPlanOpField, path, "projection emits nothing");
      }
      for (const ScalarExprPtr& e : node.op.emit) {
        if (e == nullptr) continue;
        CheckScalarExpr(*e, child_scopes[0], ctx_, path, report_);
      }
      BindingSet needs = LoadRequirements(node.op.emit, ctx_);
      if (!child_loaded[0].ContainsAll(needs)) {
        for (BindingId b : needs.Minus(child_loaded[0]).ToVector()) {
          Add(invariant::kPlanLoad, path,
              "emit list reads fields of '" +
                  (ctx_.bindings.has(b) ? Name(b) : std::to_string(b)) +
                  "' which is not loaded below the projection");
        }
      }
      // Output objects are freshly constructed; the projection is a
      // delivery boundary and its claim is what the parent may rely on.
      loaded = node.delivered.in_memory;
      break;
    }
    case PhysOpKind::kAlgUnnest: {
      if (ValidBinding(node.op.source, "unnest", path, invariant::kPlanUnnest) &&
          ValidBinding(node.op.target, "unnest", path,
                       invariant::kPlanUnnest)) {
        const BindingDef& target = ctx_.bindings.def(node.op.target);
        const BindingDef& source = ctx_.bindings.def(node.op.source);
        if (target.origin != BindingOrigin::kUnnest || !target.is_ref ||
            target.parent != node.op.source ||
            target.via_field != node.op.field) {
          Add(invariant::kPlanUnnest, path,
              "unnest target '" + target.name +
                  "' is not the binding table's recorded unnest of '" +
                  source.name + "' via that field");
        }
        const TypeDef& st = ctx_.schema().type(source.type);
        if (!st.has_field(node.op.field) ||
            st.field(node.op.field).kind != FieldKind::kRefSet) {
          Add(invariant::kPlanUnnest, path,
              "unnest field of '" + source.name +
                  "' is not a set of references");
        }
        if (!source.is_ref && !child_loaded[0].Contains(node.op.source)) {
          Add(invariant::kPlanLoad, path,
              "unnest reads the set field of '" + source.name +
                  "' which is not loaded below it");
        }
      }
      loaded = child_loaded[0];  // the revealed target is a bare reference
      break;
    }
    case PhysOpKind::kHybridHashJoin: {
      if (node.op.pred == nullptr) {
        Add(invariant::kPlanOpField, path, "hash join has no predicate");
      } else {
        CheckHashJoinPred(node, path);
      }
      loaded = child_loaded[0].Union(child_loaded[1]);
      CheckPred(node.op.pred, node.logical.scope, loaded, path);
      break;
    }
    case PhysOpKind::kNestedLoops: {
      if (node.op.pred == nullptr) {
        Add(invariant::kPlanOpField, path, "nested loops has no predicate");
      }
      loaded = child_loaded[0].Union(child_loaded[1]);
      CheckPred(node.op.pred, node.logical.scope, loaded, path);
      break;
    }
    case PhysOpKind::kMergeJoin: {
      loaded = child_loaded[0].Union(child_loaded[1]);
      CheckPred(node.op.pred, node.logical.scope, loaded, path);
      std::vector<ScalarExprPtr> conjuncts =
          ScalarExpr::SplitConjuncts(node.op.pred);
      const ScalarExpr* la = nullptr;
      const ScalarExpr* ra = nullptr;
      if (conjuncts.size() == 1 &&
          conjuncts[0]->kind() == ScalarExpr::Kind::kCmp &&
          conjuncts[0]->cmp_op() == CmpOp::kEq &&
          conjuncts[0]->children().size() == 2 &&
          conjuncts[0]->children()[0]->kind() == ScalarExpr::Kind::kAttr &&
          conjuncts[0]->children()[1]->kind() == ScalarExpr::Kind::kAttr) {
        la = conjuncts[0]->children()[0].get();
        ra = conjuncts[0]->children()[1].get();
        if (child_scopes[1].Contains(la->binding())) std::swap(la, ra);
      }
      if (la == nullptr || !child_scopes[0].Contains(la->binding()) ||
          !child_scopes[1].Contains(ra->binding())) {
        Add(invariant::kPlanSort, path,
            "merge join predicate is not a single attribute equality "
            "across its inputs");
      } else {
        SortSpec lkey(la->binding(), la->field());
        SortSpec rkey(ra->binding(), ra->field());
        if (!(node.op.sort == lkey)) {
          Add(invariant::kPlanSort, path,
              "merge join's recorded key is not the left attribute of its "
              "predicate");
        }
        if (!node.children[0]->delivered.sort.Satisfies(lkey) ||
            !node.children[1]->delivered.sort.Satisfies(rkey)) {
          Add(invariant::kPlanSort, path,
              "merge join inputs are not delivered sorted on the join "
              "keys");
        }
      }
      break;
    }
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
      // Either input may produce the surviving tuple: only bindings loaded
      // on *both* sides are reliably loaded in the output.
      loaded = child_loaded[0].Intersect(child_loaded[1]);
      break;
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK: {
      const bool topk = node.op.kind == PhysOpKind::kTopK;
      // TopK with no key is a pure first-k cutoff; a keyless plain Sort is
      // a no-op the optimizer must never emit.
      if (!node.op.sort.IsSorted() && !topk) {
        Add(invariant::kPlanOpField, path, "sort has no key");
      }
      for (const SortKey& k : node.op.sort.keys) {
        if (!ValidBinding(k.binding, "sort key", path, invariant::kPlanSort)) {
          continue;
        }
        const BindingDef& def = ctx_.bindings.def(k.binding);
        const TypeDef& type = ctx_.schema().type(def.type);
        if (!node.logical.scope.Contains(k.binding)) {
          Add(invariant::kPlanSort, path,
              "sort key binding '" + def.name + "' is not in scope");
        }
        if (!type.has_field(k.field)) {
          Add(invariant::kPlanSort, path,
              "sort key field does not exist on '" + def.name + "'");
        }
        if (!def.is_ref && !child_loaded[0].Contains(k.binding)) {
          Add(invariant::kPlanLoad, path,
              "sort reads the key attribute of '" + def.name +
                  "' which is not loaded below it");
        }
      }
      if (topk && node.op.limit <= 0) {
        Add(invariant::kPlanTopK, path,
            "top-k operator carries no positive row limit");
      }
      // A partial sort (sort_prefix > 0) only reorders within runs of equal
      // leading keys; the leading keys themselves must arrive sorted.
      const size_t prefix = static_cast<size_t>(node.op.sort_prefix);
      if (prefix > node.op.sort.size()) {
        Add(invariant::kPlanSort, path,
            "sort prefix length exceeds the operator's key count");
      } else if (prefix > 0 &&
                 !node.children[0]->delivered.sort.Satisfies(
                     node.op.sort.Prefix(prefix))) {
        Add(invariant::kPlanSort, path,
            "partial sort assumes a key prefix its input does not deliver "
            "sorted");
      }
      loaded = child_loaded[0];
      break;
    }
    case PhysOpKind::kExchange:
      CheckExchange(node, path, parent);
      loaded = child_loaded[0];
      break;
  }

  // The universal delivered-property checks: claims must be justified.
  BindingSet claimed = node.delivered.in_memory;
  if (node.op.kind != PhysOpKind::kAlgProject &&
      !loaded.ContainsAll(claimed)) {
    for (BindingId b : claimed.Minus(loaded).ToVector()) {
      Add(invariant::kPlanMemory, path,
          "operator claims '" +
              (ctx_.bindings.has(b) ? Name(b) : std::to_string(b)) +
              "' delivered in memory but nothing below loads it");
    }
  }
  BindingSet loadable = LoadableBindings(node.logical.scope, ctx_);
  if (!loadable.ContainsAll(claimed)) {
    for (BindingId b : claimed.Minus(loadable).ToVector()) {
      Add(invariant::kPlanMemoryScope, path,
          "operator claims '" +
              (ctx_.bindings.has(b) ? Name(b) : std::to_string(b)) +
              "' in memory, which is not a loadable binding of its scope");
    }
  }
  CheckSort(node, path);
  CheckLimit(node, path);
  return loaded;
}

}  // namespace

VerifyReport VerifyPlanReport(const PlanNode& plan, const QueryContext& ctx,
                              const VerifyOptions& opts) {
  VerifyReport report;
  if (ctx.catalog == nullptr) {
    report.Add(invariant::kPlanScope, PhysOpKindName(plan.op.kind),
               "query context has no catalog");
    return report;
  }
  PlanChecker checker(ctx, opts, &report);
  checker.Check(plan, PhysOpKindName(plan.op.kind), /*parent=*/nullptr);
  return report;
}

Status VerifyPlan(const PlanNode& plan, const QueryContext& ctx,
                  const VerifyOptions& opts) {
  return VerifyPlanReport(plan, ctx, opts).ToStatus();
}

}  // namespace oodb
