// Argument-transformation rules (paper Lesson 9): predicate normalization.
#include <gtest/gtest.h>

#include "src/rules/expr_rewrites.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

class ExprRewriteTest : public ::testing::Test {
 protected:
  ExprRewriteTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
  }

  std::string Str(const ScalarExprPtr& e) {
    return e->ToString(ctx_.bindings, ctx_.schema());
  }
  ScalarExprPtr Pop(CmpOp op, int64_t v) {
    return ScalarExpr::AttrCmpInt(c_, db_.city_population, op, v);
  }

  PaperDb db_;
  QueryContext ctx_;
  BindingId c_;
};

TEST_F(ExprRewriteTest, NullPassesThrough) {
  EXPECT_EQ(NormalizeExpr(nullptr), nullptr);
}

TEST_F(ExprRewriteTest, ConstantsFold) {
  auto eq = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Const(Value::Int(3)),
                            ScalarExpr::Const(Value::Int(3)));
  EXPECT_TRUE(IsConstTrue(NormalizeExpr(eq)));
  auto lt = ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Const(Value::Int(5)),
                            ScalarExpr::Const(Value::Int(3)));
  EXPECT_TRUE(IsConstFalse(NormalizeExpr(lt)));
  auto strs = ScalarExpr::Cmp(CmpOp::kNe, ScalarExpr::Const(Value::Str("a")),
                              ScalarExpr::Const(Value::Str("b")));
  EXPECT_TRUE(IsConstTrue(NormalizeExpr(strs)));
}

TEST_F(ExprRewriteTest, ConstMovesRight) {
  auto flipped = ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Const(Value::Int(40)),
                                 ScalarExpr::Attr(c_, db_.city_population));
  ScalarExprPtr norm = NormalizeExpr(flipped);
  // 40 < pop  ==  pop > 40.
  EXPECT_EQ(Str(norm), "c.population > 40");
}

TEST_F(ExprRewriteTest, DoubleNegationCancels) {
  ScalarExprPtr e = ScalarExpr::Not(ScalarExpr::Not(Pop(CmpOp::kEq, 7)));
  EXPECT_TRUE(NormalizeExpr(e)->Equals(*Pop(CmpOp::kEq, 7)));
}

TEST_F(ExprRewriteTest, NotFlipsComparisons) {
  EXPECT_EQ(Str(NormalizeExpr(ScalarExpr::Not(Pop(CmpOp::kLt, 9)))),
            "c.population >= 9");
  EXPECT_EQ(Str(NormalizeExpr(ScalarExpr::Not(Pop(CmpOp::kEq, 9)))),
            "c.population != 9");
  EXPECT_EQ(Str(NormalizeExpr(ScalarExpr::Not(Pop(CmpOp::kGe, 9)))),
            "c.population < 9");
}

TEST_F(ExprRewriteTest, DeMorgan) {
  ScalarExprPtr e = ScalarExpr::Not(
      ScalarExpr::And({Pop(CmpOp::kLt, 1), Pop(CmpOp::kGt, 2)}));
  ScalarExprPtr norm = NormalizeExpr(e);
  ASSERT_EQ(norm->kind(), ScalarExpr::Kind::kOr);
  EXPECT_EQ(Str(norm), "(c.population >= 1) or (c.population <= 2)");
}

TEST_F(ExprRewriteTest, ConnectiveIdentityAndZero) {
  auto t = ScalarExpr::Const(Value::Int(1));
  auto f = ScalarExpr::Const(Value::Int(0));
  // AND absorbs true, collapses on false.
  EXPECT_TRUE(NormalizeExpr(ScalarExpr::And({t, Pop(CmpOp::kEq, 5)}))
                  ->Equals(*Pop(CmpOp::kEq, 5)));
  EXPECT_TRUE(IsConstFalse(
      NormalizeExpr(ScalarExpr::And({Pop(CmpOp::kEq, 5), f}))));
  // OR absorbs false, collapses on true.
  EXPECT_TRUE(NormalizeExpr(ScalarExpr::Or({f, Pop(CmpOp::kEq, 5)}))
                  ->Equals(*Pop(CmpOp::kEq, 5)));
  EXPECT_TRUE(
      IsConstTrue(NormalizeExpr(ScalarExpr::Or({t, Pop(CmpOp::kEq, 5)}))));
}

TEST_F(ExprRewriteTest, FlattensNestedConnectives) {
  ScalarExprPtr nested = ScalarExpr::And(
      {ScalarExpr::And({Pop(CmpOp::kEq, 1), Pop(CmpOp::kEq, 2)}),
       Pop(CmpOp::kEq, 3)});
  ScalarExprPtr norm = NormalizeExpr(nested);
  ASSERT_EQ(norm->kind(), ScalarExpr::Kind::kAnd);
  EXPECT_EQ(norm->children().size(), 3u);
}

TEST_F(ExprRewriteTest, Idempotent) {
  ScalarExprPtr e = ScalarExpr::Not(ScalarExpr::Or(
      {Pop(CmpOp::kLt, 1),
       ScalarExpr::And({Pop(CmpOp::kGt, 2), ScalarExpr::Const(Value::Int(1))})}));
  ScalarExprPtr once = NormalizeExpr(e);
  ScalarExprPtr twice = NormalizeExpr(once);
  EXPECT_TRUE(once->Equals(*twice));
}

TEST_F(ExprRewriteTest, SimplificationAppliesNormalization) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto q = ParseAndSimplify(
      "SELECT c.name FROM City c IN Cities "
      "WHERE !(c.population < 100 || c.population > 900) && 1 == 1;",
      &ctx);
  ASSERT_TRUE(q.ok()) << q.status();
  std::string printed = PrintLogicalTree(**q, ctx);
  // De Morgan applied, tautology folded away.
  EXPECT_NE(printed.find("c.population >= 100"), std::string::npos);
  EXPECT_NE(printed.find("c.population <= 900"), std::string::npos);
  EXPECT_EQ(printed.find("1 == 1"), std::string::npos);
  EXPECT_EQ(printed.find("not"), std::string::npos);
}

TEST_F(ExprRewriteTest, VacuousWhereDropsSelect) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto q = ParseAndSimplify(
      "SELECT c.name FROM City c IN Cities WHERE 1 == 1;", &ctx);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(PrintLogicalTree(**q, ctx).find("Select"), std::string::npos);
}

TEST_F(ExprRewriteTest, ContradictionStillPlansAndReturnsEmpty) {
  PaperDb db = MakePaperCatalog(0.02);
  ObjectStore store(&db.catalog);
  GenOptions gen;
  gen.num_plants = 10;
  ASSERT_TRUE(GeneratePaperData(db, &store, gen).ok());
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto q = ParseAndSimplify(
      "SELECT c.name FROM City c IN Cities WHERE 1 == 2;", &ctx);
  ASSERT_TRUE(q.ok()) << q.status();
  Optimizer opt(&db.catalog);
  auto planned = opt.Optimize(**q, &ctx);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto stats = ExecutePlan(*planned->plan, &store, &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 0);
}

}  // namespace
}  // namespace oodb
