#!/usr/bin/env python3
"""Lint: no discarded Status / Result return values.

Clang-tidy's bugprone-unused-return-value covers this only where the
[[nodiscard]] attribute is present; this script enforces the convention
repo-wide without needing a compiler. It harvests every function and method
in src/ whose declared return type is `Status` or `Result<...>`, then flags
statements that invoke one of them and ignore the value.

A call is "consumed" when the statement assigns it, returns it, feeds it to
another call, tests it in a condition, or routes it through one of the
project idioms (OODB_RETURN_IF_ERROR / OODB_ASSIGN_OR_RETURN / ASSERT_OK /
EXPECT_OK / an explicit (void) cast).

Usage: scripts/lint_status.py [--root DIR]
Exit 0 = clean, 1 = violations (printed as file:line: message).
"""

import argparse
import pathlib
import re
import sys

DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|inline\s+|constexpr\s+|\[\[nodiscard\]\]\s+)*"
    r"(?:Status|Result<[^;=]*>)\s+"
    r"(?:[A-Za-z_]\w*::)*"          # optional class qualification (defs)
    r"([A-Za-z_]\w*)\s*\("
)

# Any declaration shape, to spot names that are *also* declared with a
# non-Status return type somewhere (DiskModel::Read vs ObjectStore::Read).
# A grep-level lint cannot resolve which overload a call hits, so ambiguous
# names are excluded from checking rather than risking false positives.
ANY_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|inline\s+|constexpr\s+|explicit\s+"
    r"|\[\[nodiscard\]\]\s+)*"
    r"([A-Za-z_][\w:]*(?:<[^;()]*>)?)[\s*&]+"
    r"([A-Za-z_]\w*)\s*\("
)
KEYWORDS = {"return", "co_return", "throw", "new", "delete", "else", "case",
            "using", "typedef", "goto"}

# Status's named constructors (and similar factories) produce a value from
# nothing; a bare call would be dead code, not a dropped error, and they are
# matched by DECL_RE inside class Status. Keep the harvest honest but skip
# names that never carry an error produced *by the callee's work*.
FACTORY_NAMES = {"OK"}

# Statement openers that consume or legitimately discard the value.
CONSUMED_RE = re.compile(
    r"^\s*(?:return\b|co_return\b|\(void\)|"
    r"OODB_RETURN_IF_ERROR|OODB_ASSIGN_OR_RETURN|"
    r"ASSERT_OK|EXPECT_OK|ASSERT_TRUE|EXPECT_TRUE|ASSERT_FALSE|EXPECT_FALSE|"
    r"if\b|while\b|for\b|switch\b|case\b|else\b|do\b)"
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
            out.append("~")  # keep the token non-empty
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def harvest_names(root: pathlib.Path) -> set:
    names = set()
    ambiguous = set()
    for path in sorted((root / "src").rglob("*.h")):
        text = strip_comments_and_strings(path.read_text())
        for line in text.splitlines():
            m = DECL_RE.match(line)
            if m:
                if m.group(1) not in FACTORY_NAMES:
                    names.add(m.group(1))
                continue
            m = ANY_DECL_RE.match(line)
            if m and m.group(1) not in KEYWORDS:
                ambiguous.add(m.group(2))
    return names - ambiguous


def statements(text: str):
    """Yields (line_number, statement_text) split on ; { }."""
    line = 1
    start_line = 1
    buf = []
    seen_content = False
    for ch in text:
        if not seen_content and not ch.isspace():
            start_line = line
            seen_content = True
        if ch == "\n":
            line += 1
        if ch in ";{}":
            yield start_line, "".join(buf)
            buf = []
            seen_content = False
        else:
            buf.append(ch)
    if buf:
        yield start_line, "".join(buf)


def check_file(path: pathlib.Path, names: set) -> list:
    text = strip_comments_and_strings(path.read_text())
    call_re = re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(" +
        "|".join(sorted(re.escape(n) for n in names)) + r")\s*\($"
    )
    bad = []
    for lineno, stmt in statements(text):
        stmt = stmt.strip()
        if not stmt or CONSUMED_RE.match(stmt):
            continue
        # Truncate at the first '(' so chained/nested arguments don't hide
        # the callee; a consumed value always has something *before* the
        # call (lvalue =, return, macro) which the regex rejects.
        paren = stmt.find("(")
        if paren < 0 or "=" in stmt[:paren]:
            continue
        head = stmt[: paren + 1]
        m = call_re.match(head)
        if m:
            bad.append((lineno, m.group(1)))
    return bad


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()
    root = pathlib.Path(args.root)

    names = harvest_names(root)
    if not names:
        print("lint_status: no Status/Result declarations found", file=sys.stderr)
        return 2

    violations = 0
    scan_dirs = [root / "src", root / "tests", root / "bench"]
    for d in scan_dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.cc")) + sorted(d.rglob("*.h")):
            for lineno, name in check_file(path, names):
                print(f"{path.relative_to(root)}:{lineno}: "
                      f"result of '{name}(...)' (Status/Result) is discarded")
                violations += 1

    if violations:
        print(f"lint_status: {violations} discarded Status/Result call(s)",
              file=sys.stderr)
        return 1
    print(f"lint_status: clean ({len(names)} Status/Result-returning "
          f"functions checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
