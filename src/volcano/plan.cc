#include "src/volcano/plan.h"

#include <sstream>

#include "src/common/strings.h"

namespace oodb {

PlanNodePtr PlanNode::Make(PhysicalOp op, std::vector<PlanNodePtr> children,
                           LogicalProps logical, PhysProps delivered,
                           Cost local_cost) {
  auto node = std::make_shared<PlanNode>();
  node->op = std::move(op);
  node->children = std::move(children);
  node->logical = logical;
  node->delivered = delivered;
  node->local_cost = local_cost;
  node->total_cost = local_cost;
  for (const PlanNodePtr& c : node->children) {
    node->total_cost += c->total_cost;
  }
  return node;
}

namespace {
void PrintRec(const PlanNode& node, const QueryContext& ctx, bool with_costs,
              int depth, std::ostringstream& os) {
  os << Repeat("    ", depth) << node.op.ToString(ctx);
  if (with_costs) {
    os << "   [card " << FormatDouble(node.logical.card, 1) << ", cost "
       << FormatDouble(node.total_cost.total(), 3) << "s]";
  }
  os << "\n";
  for (const PlanNodePtr& c : node.children) {
    PrintRec(*c, ctx, with_costs, depth + 1, os);
  }
}

void CollectOps(const PlanNode& node, const QueryContext& ctx,
                std::vector<std::string>* out) {
  out->push_back(node.op.ToString(ctx));
  for (const PlanNodePtr& c : node.children) CollectOps(*c, ctx, out);
}
}  // namespace

std::string PrintPlan(const PlanNode& plan, const QueryContext& ctx,
                      bool with_costs) {
  std::ostringstream os;
  PrintRec(plan, ctx, with_costs, 0, os);
  return os.str();
}

std::vector<std::string> PlanOpStrings(const PlanNode& plan,
                                       const QueryContext& ctx) {
  std::vector<std::string> out;
  CollectOps(plan, ctx, &out);
  return out;
}

int CountOps(const PlanNode& plan, PhysOpKind kind) {
  int n = plan.op.kind == kind ? 1 : 0;
  for (const PlanNodePtr& c : plan.children) n += CountOps(*c, kind);
  return n;
}

PlanNodePtr RebindPlanLimit(PlanNodePtr plan, int64_t limit) {
  if (plan == nullptr || limit <= 0) return plan;
  if (plan->delivered.limit == 0 && plan->op.limit == 0) return plan;
  if (plan->delivered.limit == limit && plan->op.limit == limit) return plan;
  // Limit lives only on the root spine: TopK / merging Exchange produce it,
  // Alg-Project relays it. Clone just those nodes; subtrees below the
  // producing operator are limit-free and stay shared.
  switch (plan->op.kind) {
    case PhysOpKind::kAlgProject:
    case PhysOpKind::kTopK:
    case PhysOpKind::kExchange: {
      auto node = std::make_shared<PlanNode>(*plan);
      if (node->op.limit > 0) node->op.limit = limit;
      if (node->delivered.limit > 0) node->delivered.limit = limit;
      if (!node->children.empty()) {
        node->children[0] = RebindPlanLimit(node->children[0], limit);
      }
      return node;
    }
    default:
      return plan;
  }
}

}  // namespace oodb
