#include "src/physical/impl_rules.h"

#include <algorithm>

#include "src/cost/selectivity.h"
#include "src/physical/algorithms.h"

namespace oodb {

namespace {

BindingSet GroupScope(OptContext& ctx, GroupId g) {
  return ctx.memo->group(g).props.scope;
}

double GroupCard(OptContext& ctx, GroupId g) {
  return ctx.memo->group(g).props.card;
}

// ---------------------------------------------------------------------------
// Get -> File Scan
// ---------------------------------------------------------------------------
class GetToFileScan : public ImplRule {
 public:
  const char* name() const override { return kImplFileScan; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kGet; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    (void)required;
    Result<const CollectionInfo*> coll =
        ctx.qctx->catalog->FindCollection(mexpr.op.coll);
    if (!coll.ok()) return Status::OK();
    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kFileScan;
    alt.op.coll = mexpr.op.coll;
    alt.op.binding = mexpr.op.binding;
    alt.delivered.in_memory = BindingSet::Of(mexpr.op.binding);
    alt.local_cost = FileScanCost(*ctx.cost_model, *ctx.qctx->catalog, **coll);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select -> Filter
// ---------------------------------------------------------------------------
class SelectToFilter : public ImplRule {
 public:
  const char* name() const override { return kImplFilter; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    PhysProps child_req = required;
    child_req.in_memory = child_req.in_memory.Union(
        LoadRequirements(mexpr.op.pred, *ctx.qctx));
    // Filter preserves order but discards rows: a required limit cannot be
    // pushed below it (the first k input rows are not the first k outputs).
    child_req.limit = 0;
    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kFilter;
    alt.op.pred = mexpr.op.pred;
    alt.inputs = {{child, child_req}};
    alt.delivered = child_req;
    double conjuncts =
        static_cast<double>(ScalarExpr::SplitConjuncts(mexpr.op.pred).size());
    alt.local_cost = FilterCost(*ctx.cost_model, GroupCard(ctx, child), conjuncts);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Select(Mat*(Get)) -> Index Scan  (collapse-to-index-scan, paper Fig. 8)
// ---------------------------------------------------------------------------
class CollapseToIndexScan : public ImplRule {
 public:
  const char* name() const override { return kImplIndexScan; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kSelect; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    (void)required;
    std::vector<Chain> chains;
    Chain cur;
    Descend(ctx, ctx.memo->Find(mexpr.children[0]), &cur, 0, &chains);
    std::vector<ScalarExprPtr> conjuncts =
        ScalarExpr::SplitConjuncts(mexpr.op.pred);

    for (const Chain& chain : chains) {
      for (const IndexInfo* idx :
           ctx.qctx->catalog->IndexesOn(chain.get_op.coll)) {
        TryIndex(ctx, chain, *idx, conjuncts, out);
      }
    }
    return Status::OK();
  }

 private:
  struct Chain {
    std::vector<MatStep> steps;  // innermost (nearest Get) first
    LogicalOp get_op;
  };

  static void Descend(OptContext& ctx, GroupId g, Chain* cur, int depth,
                      std::vector<Chain>* out) {
    if (depth > 4) return;
    for (MExprId id : ctx.memo->group(g).mexprs) {
      const LogicalMExpr& m = ctx.memo->mexpr(id);
      if (m.op.kind == LogicalOpKind::kGet) {
        Chain done = *cur;
        std::reverse(done.steps.begin(), done.steps.end());
        done.get_op = m.op;
        out->push_back(std::move(done));
      } else if (m.op.kind == LogicalOpKind::kMat &&
                 m.op.field != kInvalidField) {
        cur->steps.push_back({m.op.source, m.op.field, m.op.target});
        Descend(ctx, ctx.memo->Find(m.children[0]), cur, depth + 1, out);
        cur->steps.pop_back();
      }
    }
  }

  void TryIndex(OptContext& ctx, const Chain& chain, const IndexInfo& idx,
                const std::vector<ScalarExprPtr>& conjuncts,
                std::vector<PhysAlternative>* out) const {
    // The chain must consist of exactly the index path's reference steps.
    size_t ref_steps = idx.path.size() - 1;
    if (chain.steps.size() != ref_steps) return;
    BindingId root = chain.get_op.binding;
    BindingId cur = root;
    for (size_t i = 0; i < ref_steps; ++i) {
      if (chain.steps[i].source != cur || chain.steps[i].field != idx.path[i]) {
        return;
      }
      cur = chain.steps[i].target;
    }
    FieldId key_field = idx.path.back();

    // Find the key conjunct (equality preferred, then a range comparison);
    // remaining conjuncts become a residual evaluated on the fetched roots.
    ScalarExprPtr key_conjunct;
    std::vector<ScalarExprPtr> residual;
    for (const ScalarExprPtr& c : conjuncts) {
      bool is_key = IsKeyComparison(*c, cur, key_field);
      bool better = is_key && (!key_conjunct ||
                               (key_conjunct->cmp_op() != CmpOp::kEq &&
                                c->cmp_op() == CmpOp::kEq));
      if (better) {
        if (key_conjunct) residual.push_back(key_conjunct);
        key_conjunct = c;
        continue;
      }
      residual.push_back(c);
    }
    if (!key_conjunct) return;
    for (const ScalarExprPtr& r : residual) {
      if (!BindingSet::Of(root).ContainsAll(r->ReferencedBindings())) return;
    }

    Result<const CollectionInfo*> coll =
        ctx.qctx->catalog->FindCollection(chain.get_op.coll);
    if (!coll.ok()) return;
    SelectivityEstimator sel(ctx.qctx);
    double matches =
        static_cast<double>((*coll)->cardinality) * sel.Estimate(key_conjunct);

    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kIndexScan;
    alt.op.coll = chain.get_op.coll;
    alt.op.binding = root;
    alt.op.index_name = idx.name;
    alt.op.index_pred = key_conjunct;
    if (!residual.empty()) {
      alt.op.pred = ScalarExpr::CombineConjuncts(std::move(residual));
    }
    alt.delivered.in_memory = BindingSet::Of(root);
    if (ref_steps == 0) {
      // A simple index scans its entries in key order: the output is
      // sorted on the key attribute (path indexes order by the *path*
      // value, which is not an attribute of the delivered root).
      alt.delivered.sort = SortSpec{root, key_field};
    }
    double residual_count = alt.op.pred
        ? static_cast<double>(ScalarExpr::SplitConjuncts(alt.op.pred).size())
        : 0.0;
    alt.local_cost =
        IndexScanCost(*ctx.cost_model, matches, idx.clustered, residual_count,
                      *ctx.qctx->catalog, chain.get_op.coll.type);
    out->push_back(std::move(alt));
  }

  /// Key comparisons the index can answer: attr (==|<|<=|>|>=) const.
  static bool IsKeyComparison(const ScalarExpr& e, BindingId binding,
                              FieldId field) {
    if (e.kind() != ScalarExpr::Kind::kCmp || e.cmp_op() == CmpOp::kNe) {
      return false;
    }
    const ScalarExprPtr& l = e.children()[0];
    const ScalarExprPtr& r = e.children()[1];
    auto is_attr = [&](const ScalarExprPtr& a) {
      return a->kind() == ScalarExpr::Kind::kAttr && a->binding() == binding &&
             a->field() == field;
    };
    auto is_const = [](const ScalarExprPtr& a) {
      return a->kind() == ScalarExpr::Kind::kConst;
    };
    return (is_attr(l) && is_const(r)) || (is_attr(r) && is_const(l));
  }
};

// ---------------------------------------------------------------------------
// Mat -> Assembly (assembly *implements* materialize; it also acts as the
// present-in-memory enforcer, see enforcers.cc)
// ---------------------------------------------------------------------------
class MatToAssembly : public ImplRule {
 public:
  const char* name() const override { return kImplAssembly; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kMat; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    MatStep step{mexpr.op.source, mexpr.op.field, mexpr.op.target};
    PhysProps child_req = required;
    child_req.in_memory.Remove(mexpr.op.target);
    if (step.field != kInvalidField) {
      child_req.in_memory.Add(step.source);
    }
    child_req.in_memory = LoadableBindings(child_req.in_memory, *ctx.qctx);
    // Assembly preserves row order — the windowed elevator reorders its
    // *fetches* by page, never the emitted rows — so a required sort passes
    // through. It can drop dangling-reference rows, though, so a required
    // limit cannot.
    child_req.limit = 0;

    double in_card = GroupCard(ctx, child);
    auto emit = [&](bool warm) {
      PhysAlternative alt;
      alt.op.kind = PhysOpKind::kAssembly;
      alt.op.mats = {step};
      alt.op.window = ctx.cost_model->opts().assembly_window;
      alt.op.warm_start = warm;
      alt.inputs = {{child, child_req}};
      alt.delivered = child_req;
      alt.delivered.in_memory.Add(mexpr.op.target);
      alt.local_cost =
          AssemblyCost(*ctx.cost_model, *ctx.qctx->catalog, ctx.qctx->bindings,
                       in_card, alt.op.mats, /*window=*/0, warm);
      out->push_back(std::move(alt));
    };
    emit(false);
    if (ctx.opts->enable_warm_start_assembly &&
        ctx.qctx->catalog
            ->TypeCardinality(ctx.qctx->bindings.def(mexpr.op.target).type)
            .has_value()) {
      emit(true);
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join -> Hybrid Hash Join (build on the left input)
// ---------------------------------------------------------------------------
class JoinToHybridHashJoin : public ImplRule {
 public:
  const char* name() const override { return kImplHybridHashJoin; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId right = ctx.memo->Find(mexpr.children[1]);
    BindingSet ls = GroupScope(ctx, left), rs = GroupScope(ctx, right);
    // Every conjunct must be an equality across the two sides. The algorithm
    // builds its hash table on the left input; for reference-equality
    // conjuncts (ref == self) the *referenced* (OID) side must be the build
    // side — the orientation the paper's algorithm supports ("equality of a
    // reference attribute on one side and object identifiers on the other").
    // Join commutativity is what makes the other orientation reachable, so
    // disabling it forces pointer-chasing plans (paper Figure 7).
    for (const ScalarExprPtr& c : ScalarExpr::SplitConjuncts(mexpr.op.pred)) {
      if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq) {
        return Status::OK();
      }
      BindingSet lrefs = c->children()[0]->ReferencedBindings();
      BindingSet rrefs = c->children()[1]->ReferencedBindings();
      if (lrefs.Empty() || rrefs.Empty()) return Status::OK();
      bool straight = ls.ContainsAll(lrefs) && rs.ContainsAll(rrefs);
      bool swapped = rs.ContainsAll(lrefs) && ls.ContainsAll(rrefs);
      if (!straight && !swapped) return Status::OK();
      const ScalarExpr* left_side =
          straight ? c->children()[0].get() : c->children()[1].get();
      const ScalarExpr* right_side =
          straight ? c->children()[1].get() : c->children()[0].get();
      bool left_is_ref_binding =
          left_side->kind() == ScalarExpr::Kind::kSelf &&
          ctx.qctx->bindings.def(left_side->binding()).is_ref;
      bool right_is_ref_binding =
          right_side->kind() == ScalarExpr::Kind::kSelf &&
          ctx.qctx->bindings.def(right_side->binding()).is_ref;
      // A "self" of an object binding is the OID side; a "self" of a bare
      // reference binding (unnest output) is a reference value.
      bool left_is_oid = left_side->kind() == ScalarExpr::Kind::kSelf &&
                         !left_is_ref_binding;
      bool right_is_oid = right_side->kind() == ScalarExpr::Kind::kSelf &&
                          !right_is_ref_binding;
      if (right_is_oid && !left_is_oid) {
        return Status::OK();  // referenced side must be the build (left) side
      }
    }
    BindingSet pred_loads = LoadRequirements(mexpr.op.pred, *ctx.qctx);
    PhysProps lreq, rreq;
    lreq.in_memory = required.in_memory.Union(pred_loads).Intersect(ls);
    rreq.in_memory = required.in_memory.Union(pred_loads).Intersect(rs);

    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kHybridHashJoin;
    alt.op.pred = mexpr.op.pred;
    alt.inputs = {{left, lreq}, {right, rreq}};
    alt.delivered.in_memory = lreq.in_memory.Union(rreq.in_memory);
    const LogicalProps& lp = ctx.memo->group(left).props;
    const LogicalProps& rp = ctx.memo->group(right).props;
    alt.local_cost = HybridHashJoinCost(*ctx.cost_model, lp.card,
                                        lp.tuple_bytes, rp.card, rp.tuple_bytes);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join -> Pointer Join: when the predicate is a single reference-equality
// (s.f == t.self) and the right side is (an extent scan of) the referenced
// population, dereference each left tuple's pointer directly.
// ---------------------------------------------------------------------------
class JoinToPointerJoin : public ImplRule {
 public:
  const char* name() const override { return kImplPointerJoin; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId right = ctx.memo->Find(mexpr.children[1]);
    std::vector<ScalarExprPtr> conjuncts =
        ScalarExpr::SplitConjuncts(mexpr.op.pred);
    if (conjuncts.size() != 1) return Status::OK();
    const ScalarExprPtr& c = conjuncts[0];
    if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq) {
      return Status::OK();
    }
    // One side must be <ref expr on left scope>, the other t.self where the
    // right side is exactly an extent scan of t.
    const ScalarExpr* ref_side = nullptr;
    const ScalarExpr* self_side = nullptr;
    for (int i = 0; i < 2; ++i) {
      const ScalarExprPtr& a = c->children()[i];
      const ScalarExprPtr& b = c->children()[1 - i];
      if (b->kind() == ScalarExpr::Kind::kSelf &&
          GroupScope(ctx, right).Contains(b->binding()) &&
          GroupScope(ctx, left).ContainsAll(a->ReferencedBindings())) {
        ref_side = a.get();
        self_side = b.get();
        break;
      }
    }
    if (ref_side == nullptr) return Status::OK();
    BindingId t = self_side->binding();
    // The right group must be a bare extent scan of t's whole population.
    bool right_is_extent_get = false;
    for (MExprId id : ctx.memo->group(right).mexprs) {
      const LogicalMExpr& m = ctx.memo->mexpr(id);
      if (m.op.kind == LogicalOpKind::kGet && m.op.binding == t &&
          m.op.coll.kind == CollectionId::Kind::kExtent) {
        right_is_extent_get = true;
        break;
      }
    }
    if (!right_is_extent_get) return Status::OK();

    MatStep step;
    step.target = t;
    if (ref_side->kind() == ScalarExpr::Kind::kAttr) {
      step.source = ref_side->binding();
      step.field = ref_side->field();
    } else if (ref_side->kind() == ScalarExpr::Kind::kSelf &&
               ctx.qctx->bindings.def(ref_side->binding()).is_ref) {
      step.source = ref_side->binding();
      step.field = kInvalidField;
    } else {
      return Status::OK();
    }

    PhysProps lreq;
    lreq.in_memory = required.in_memory.Intersect(GroupScope(ctx, left));
    if (step.field != kInvalidField) lreq.in_memory.Add(step.source);
    lreq.in_memory = LoadableBindings(lreq.in_memory, *ctx.qctx);

    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kPointerJoin;
    alt.op.pred = mexpr.op.pred;
    alt.op.mats = {step};
    alt.inputs = {{left, lreq}};
    alt.delivered = lreq;
    alt.delivered.in_memory.Add(t);
    alt.local_cost =
        PointerJoinCost(*ctx.cost_model, *ctx.qctx->catalog,
                        GroupCard(ctx, left), ctx.qctx->bindings.def(t).type);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Join -> Nested Loops: the always-applicable fallback — any predicate,
// including the constant-true predicate of a cartesian FROM combination.
// ---------------------------------------------------------------------------
class JoinToNestedLoops : public ImplRule {
 public:
  const char* name() const override { return kImplNestedLoops; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId right = ctx.memo->Find(mexpr.children[1]);
    BindingSet pred_loads = LoadRequirements(mexpr.op.pred, *ctx.qctx);
    PhysProps lreq, rreq;
    lreq.in_memory =
        required.in_memory.Union(pred_loads).Intersect(GroupScope(ctx, left));
    rreq.in_memory =
        required.in_memory.Union(pred_loads).Intersect(GroupScope(ctx, right));

    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kNestedLoops;
    alt.op.pred = mexpr.op.pred;
    alt.inputs = {{left, lreq}, {right, rreq}};
    alt.delivered.in_memory = lreq.in_memory.Union(rreq.in_memory);
    const LogicalProps& lp = ctx.memo->group(left).props;
    const LogicalProps& rp = ctx.memo->group(right).props;
    alt.local_cost =
        NestedLoopsCost(*ctx.cost_model, lp.card, lp.tuple_bytes, rp.card);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Project -> Alg-Project
// ---------------------------------------------------------------------------
class ProjectToAlgProject : public ImplRule {
 public:
  const char* name() const override { return kImplAlgProject; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kProject; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    PhysProps child_req;
    child_req.in_memory = LoadRequirements(mexpr.op.emit, *ctx.qctx);
    // Alg-Project preserves input order and is 1:1: a required sort order
    // and limit flow down to the (wider-scoped) input, where they can
    // actually be produced.
    child_req.sort = required.sort;
    child_req.limit = required.limit;
    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kAlgProject;
    alt.op.emit = mexpr.op.emit;
    alt.inputs = {{child, child_req}};
    alt.delivered = required;  // output objects are freshly constructed
    const LogicalProps& props = ctx.memo->group(ctx.memo->Find(mexpr.group)).props;
    alt.local_cost = AlgProjectCost(*ctx.cost_model, props.card, props.tuple_bytes);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Unnest -> Alg-Unnest
// ---------------------------------------------------------------------------
class UnnestToAlgUnnest : public ImplRule {
 public:
  const char* name() const override { return kImplAlgUnnest; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kUnnest; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId child = ctx.memo->Find(mexpr.children[0]);
    PhysProps child_req = required;
    child_req.in_memory.Add(mexpr.op.source);
    child_req.in_memory =
        LoadableBindings(child_req.in_memory.Intersect(GroupScope(ctx, child)),
                         *ctx.qctx);
    // Unnest preserves input order but is 1:many: a limit on the expanded
    // output says nothing about how many input rows are needed.
    child_req.limit = 0;
    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kAlgUnnest;
    alt.op.source = mexpr.op.source;
    alt.op.field = mexpr.op.field;
    alt.op.target = mexpr.op.target;
    alt.inputs = {{child, child_req}};
    alt.delivered = child_req;
    double out_card = ctx.memo->group(ctx.memo->Find(mexpr.group)).props.card;
    alt.local_cost = AlgUnnestCost(*ctx.cost_model, out_card);
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Union/Intersect/Difference -> hash-based set matching
// ---------------------------------------------------------------------------
class SetOpToHash : public ImplRule {
 public:
  explicit SetOpToHash(LogicalOpKind kind) : kind_(kind) {}
  const char* name() const override { return kImplHashSetOps; }
  LogicalOpKind root_kind() const override { return kind_; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId right = ctx.memo->Find(mexpr.children[1]);
    PhysAlternative alt;
    switch (kind_) {
      case LogicalOpKind::kUnion:
        alt.op.kind = PhysOpKind::kHashUnion;
        break;
      case LogicalOpKind::kIntersect:
        alt.op.kind = PhysOpKind::kHashIntersect;
        break;
      default:
        alt.op.kind = PhysOpKind::kHashDifference;
        break;
    }
    PhysProps child_req = required;
    child_req.sort = SortSpec{};  // hash set-matching scrambles order
    child_req.limit = 0;
    alt.inputs = {{left, child_req}, {right, child_req}};
    alt.delivered = child_req;
    const LogicalProps& lp = ctx.memo->group(left).props;
    const LogicalProps& rp = ctx.memo->group(right).props;
    alt.local_cost = HashSetOpCost(*ctx.cost_model, lp.card, lp.tuple_bytes,
                                   rp.card, rp.tuple_bytes);
    out->push_back(std::move(alt));
    return Status::OK();
  }

 private:
  LogicalOpKind kind_;
};

// ---------------------------------------------------------------------------
// Join -> Merge Join (extension; requires sorted inputs via the Sort
// enforcer, demonstrating sort-order as a physical property)
// ---------------------------------------------------------------------------
class JoinToMergeJoin : public ImplRule {
 public:
  const char* name() const override { return kImplMergeJoin; }
  LogicalOpKind root_kind() const override { return LogicalOpKind::kJoin; }

  Status Apply(OptContext& ctx, const LogicalMExpr& mexpr,
               const PhysProps& required,
               std::vector<PhysAlternative>* out) const override {
    if (!ctx.opts->enable_merge_join) return Status::OK();
    std::vector<ScalarExprPtr> conjuncts =
        ScalarExpr::SplitConjuncts(mexpr.op.pred);
    if (conjuncts.size() != 1) return Status::OK();
    const ScalarExprPtr& c = conjuncts[0];
    if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq) {
      return Status::OK();
    }
    const ScalarExprPtr& a = c->children()[0];
    const ScalarExprPtr& b = c->children()[1];
    if (a->kind() != ScalarExpr::Kind::kAttr ||
        b->kind() != ScalarExpr::Kind::kAttr) {
      return Status::OK();
    }
    GroupId left = ctx.memo->Find(mexpr.children[0]);
    GroupId right = ctx.memo->Find(mexpr.children[1]);
    const ScalarExpr* la = a.get();
    const ScalarExpr* ra = b.get();
    if (GroupScope(ctx, right).Contains(la->binding())) std::swap(la, ra);
    if (!GroupScope(ctx, left).Contains(la->binding()) ||
        !GroupScope(ctx, right).Contains(ra->binding())) {
      return Status::OK();
    }
    PhysProps lreq, rreq;
    lreq.in_memory = required.in_memory.Intersect(GroupScope(ctx, left));
    lreq.in_memory.Add(la->binding());
    lreq.sort = SortSpec{la->binding(), la->field()};
    rreq.in_memory = required.in_memory.Intersect(GroupScope(ctx, right));
    rreq.in_memory.Add(ra->binding());
    rreq.sort = SortSpec{ra->binding(), ra->field()};

    PhysAlternative alt;
    alt.op.kind = PhysOpKind::kMergeJoin;
    alt.op.pred = mexpr.op.pred;
    alt.op.sort = lreq.sort;
    alt.inputs = {{left, lreq}, {right, rreq}};
    alt.delivered.in_memory = lreq.in_memory.Union(rreq.in_memory);
    alt.delivered.sort = lreq.sort;  // merge join preserves left order
    alt.local_cost = MergeJoinCost(*ctx.cost_model, GroupCard(ctx, left),
                                   GroupCard(ctx, right));
    out->push_back(std::move(alt));
    return Status::OK();
  }
};

}  // namespace

std::vector<std::unique_ptr<ImplRule>> MakeDefaultImplRules() {
  std::vector<std::unique_ptr<ImplRule>> rules;
  rules.push_back(std::make_unique<GetToFileScan>());
  rules.push_back(std::make_unique<SelectToFilter>());
  rules.push_back(std::make_unique<CollapseToIndexScan>());
  rules.push_back(std::make_unique<MatToAssembly>());
  rules.push_back(std::make_unique<JoinToHybridHashJoin>());
  rules.push_back(std::make_unique<JoinToPointerJoin>());
  rules.push_back(std::make_unique<JoinToNestedLoops>());
  rules.push_back(std::make_unique<ProjectToAlgProject>());
  rules.push_back(std::make_unique<UnnestToAlgUnnest>());
  rules.push_back(std::make_unique<SetOpToHash>(LogicalOpKind::kUnion));
  rules.push_back(std::make_unique<SetOpToHash>(LogicalOpKind::kIntersect));
  rules.push_back(std::make_unique<SetOpToHash>(LogicalOpKind::kDifference));
  rules.push_back(std::make_unique<JoinToMergeJoin>());
  return rules;
}

}  // namespace oodb
