// Self-tests for the Debug-build lock-rank registry (src/common/mutex.h):
// each test seeds one concrete out-of-rank acquisition using the engine's
// real rank constants and asserts the registry reports exactly the
// offending rank pair, by name, at acquire time — on the single thread that
// commits the inversion, with no second thread racing the reverse edge.
// A Release build (OODB_LOCK_ORDER off) skips the whole suite.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/mutex.h"

namespace oodb {
namespace {

/// Captures every violation the registry reports while in scope, instead of
/// aborting. The handler is a plain function pointer, so captures travel
/// through a static; tests in this binary run sequentially.
class ViolationCapture {
 public:
  ViolationCapture() {
    captured().clear();
    prev_ = SetLockOrderHandler(&Record);
  }
  ~ViolationCapture() { SetLockOrderHandler(prev_); }

  static std::vector<LockOrderViolation>& captured() {
    static std::vector<LockOrderViolation> v;
    return v;
  }

 private:
  static void Record(const LockOrderViolation& v) {
    captured().push_back(v);
  }

  LockOrderHandler prev_;
};

class LockCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!LockOrderCheckingEnabled()) {
      GTEST_SKIP() << "lock-rank registry compiled out (OODB_LOCK_ORDER off)";
    }
  }
};

/// Acquires `outer` then `inner` in nested scopes and returns the
/// violations the registry reported.
std::vector<LockOrderViolation> AcquirePair(Mutex& outer, Mutex& inner) {
  ViolationCapture capture;
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  return ViolationCapture::captured();
}

void ExpectViolation(const std::vector<LockOrderViolation>& violations,
                     const LockRank& acquired, const LockRank& held) {
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].acquired_order, acquired.order);
  EXPECT_STREQ(violations[0].acquired_name, acquired.name);
  EXPECT_EQ(violations[0].held_order, held.order);
  EXPECT_STREQ(violations[0].held_name, held.name);
  // The report names the offending pair: "acquiring <inner> ... holding
  // <outer>" is the edge a reader greps the rank table for.
  EXPECT_NE(violations[0].ToString().find(acquired.name), std::string::npos);
  EXPECT_NE(violations[0].ToString().find(held.name), std::string::npos);
}

// --- seeded inversions over the engine's real rank pairs ---

TEST_F(LockCheckTest, MetricsThenBufferPoolIsCaught) {
  // Correct order is buffer_pool -> metrics (statistics resolve under the
  // subsystem lock); the reverse edge would deadlock against AccessMany.
  Mutex metrics(lock_rank::kMetrics);
  Mutex buffer(lock_rank::kBufferPool);
  ExpectViolation(AcquirePair(metrics, buffer), lock_rank::kBufferPool,
                  lock_rank::kMetrics);
}

TEST_F(LockCheckTest, PendingThenPartitionIsCaught) {
  // DispatchLocked holds exchange.part while bumping the pending count; a
  // path that took pending first would invert it.
  Mutex pending(lock_rank::kExchangePending);
  Mutex part(lock_rank::kExchangePartition);
  ExpectViolation(AcquirePair(pending, part), lock_rank::kExchangePartition,
                  lock_rank::kExchangePending);
}

TEST_F(LockCheckTest, BatchPoolThenBatchQueueIsCaught) {
  // BatchQueue::Abort drains to the BatchPool under the queue lock
  // (batch_queue -> batch_pool); a pool path that re-entered a queue would
  // close a cycle.
  Mutex pool(lock_rank::kBatchPool);
  Mutex queue(lock_rank::kBatchQueue);
  ExpectViolation(AcquirePair(pool, queue), lock_rank::kBatchQueue,
                  lock_rank::kBatchPool);
}

TEST_F(LockCheckTest, DiskModelThenBufferPoolIsCaught) {
  // A buffer-pool miss reads the disk under the pool lock (buffer_pool ->
  // disk_model); the reverse is the textbook two-lock deadlock.
  Mutex disk(lock_rank::kDiskModel);
  Mutex buffer(lock_rank::kBufferPool);
  ExpectViolation(AcquirePair(disk, buffer), lock_rank::kBufferPool,
                  lock_rank::kDiskModel);
}

TEST_F(LockCheckTest, GovernorThenPlanCacheShardIsCaught) {
  Mutex governor(lock_rank::kGovernor);
  Mutex shard(lock_rank::kPlanCacheShard);
  ExpectViolation(AcquirePair(governor, shard), lock_rank::kPlanCacheShard,
                  lock_rank::kGovernor);
}

TEST_F(LockCheckTest, StorageFaultThenBufferPoolIsCaught) {
  // AccessMany consults the fault injector under the pool lock
  // (buffer_pool -> storage_fault); an injector callback that touched the
  // pool would invert it.
  Mutex fault(lock_rank::kStorageFault);
  Mutex buffer(lock_rank::kBufferPool);
  ExpectViolation(AcquirePair(fault, buffer), lock_rank::kBufferPool,
                  lock_rank::kStorageFault);
}

TEST_F(LockCheckTest, ExchangeErrorThenPartitionIsCaught) {
  Mutex error(lock_rank::kExchangeError);
  Mutex part(lock_rank::kExchangePartition);
  ExpectViolation(AcquirePair(error, part), lock_rank::kExchangePartition,
                  lock_rank::kExchangeError);
}

// --- shapes beyond a simple reversed pair ---

TEST_F(LockCheckTest, RecursiveSelfLockIsCaught) {
  // Strict ordering (held >= acquiring is a violation) makes a recursive
  // acquisition of one mutex — guaranteed UB-or-deadlock on std::mutex —
  // a reported violation rather than a hang. Manual Lock/Unlock because a
  // scoped lock cannot express the bug, and the underlying std::mutex must
  // not actually be taken twice.
  ViolationCapture capture;
  Mutex governor(lock_rank::kGovernor);
  governor.Lock();
  lock_order::OnAcquire(governor.rank());  // the re-acquisition, registry-only
  lock_order::OnRelease(governor.rank());
  governor.Unlock();
  ExpectViolation(ViolationCapture::captured(), lock_rank::kGovernor,
                  lock_rank::kGovernor);
}

TEST_F(LockCheckTest, SameRankTwoInstancesIsCaught) {
  // Two plan-cache shards share one rank because no code path nests them;
  // nesting two instances is therefore a violation by design (an ABBA
  // deadlock between shards needs no rank inversion).
  Mutex shard_a(lock_rank::kPlanCacheShard);
  Mutex shard_b(lock_rank::kPlanCacheShard);
  ExpectViolation(AcquirePair(shard_a, shard_b), lock_rank::kPlanCacheShard,
                  lock_rank::kPlanCacheShard);
}

TEST_F(LockCheckTest, ThreeLockChainReportsHighestHeldRank) {
  // part(20) -> metrics(90) is legal; then acquiring governor(50) violates
  // against metrics (the highest held rank is the witness named, not the
  // merely-lower part lock).
  ViolationCapture capture;
  Mutex part(lock_rank::kExchangePartition);
  Mutex metrics(lock_rank::kMetrics);
  Mutex governor(lock_rank::kGovernor);
  {
    MutexLock a(part);
    MutexLock b(metrics);
    MutexLock c(governor);
  }
  ExpectViolation(ViolationCapture::captured(), lock_rank::kGovernor,
                  lock_rank::kMetrics);
}

TEST_F(LockCheckTest, SharedReaderThenLowerWriterIsCaught) {
  // Rank checking is mode-blind: holding a metrics *read* lock while
  // acquiring a lower-ranked writer is the same deadlock edge as the
  // exclusive case (a pending writer on the shared mutex blocks new
  // readers, closing the cycle).
  ViolationCapture capture;
  SharedMutex metrics(lock_rank::kMetrics);
  SharedMutex shard(lock_rank::kPlanCacheShard);
  {
    ReaderMutexLock r(metrics);
    WriterMutexLock w(shard);
  }
  ExpectViolation(ViolationCapture::captured(), lock_rank::kPlanCacheShard,
                  lock_rank::kMetrics);
}

TEST_F(LockCheckTest, UniqueLockRelockIsChecked) {
  // UniqueLock's manual Unlock/Lock cycle (the WorkerPool task-execution
  // shape) re-checks rank on every re-acquisition: dropping the pool lock,
  // taking a higher lock, then re-locking the pool inverts the order.
  ViolationCapture capture;
  Mutex worker(lock_rank::kWorkerPool);
  Mutex buffer(lock_rank::kBufferPool);
  {
    UniqueLock lock(worker);
    lock.Unlock();
    MutexLock task(buffer);
    lock.Lock();  // re-acquiring worker_pool(45) while holding buffer(60)
  }
  ExpectViolation(ViolationCapture::captured(), lock_rank::kWorkerPool,
                  lock_rank::kBufferPool);
}

// --- negative cases: rank-legal nesting stays silent ---

TEST_F(LockCheckTest, InOrderNestingReportsNothing) {
  ViolationCapture capture;
  Mutex part(lock_rank::kExchangePartition);
  Mutex error(lock_rank::kExchangeError);
  Mutex queue(lock_rank::kBatchQueue);
  Mutex pool(lock_rank::kBatchPool);
  Mutex metrics(lock_rank::kMetrics);
  {
    // The deepest real chain in the engine: RunAttempt's deliver path.
    MutexLock a(part);
    MutexLock b(error);
    MutexLock c(queue);
    MutexLock d(pool);
    MutexLock e(metrics);
  }
  EXPECT_TRUE(ViolationCapture::captured().empty());
}

TEST_F(LockCheckTest, SequentialReacquisitionReportsNothing) {
  // Dropping back to rank 0 between acquisitions is the legal way to touch
  // many same-rank instances (plan-cache stats() iterates shards this way).
  ViolationCapture capture;
  Mutex shard_a(lock_rank::kPlanCacheShard);
  Mutex shard_b(lock_rank::kPlanCacheShard);
  { MutexLock a(shard_a); }
  { MutexLock b(shard_b); }
  EXPECT_TRUE(ViolationCapture::captured().empty());
}

TEST_F(LockCheckTest, CondVarWaitKeepsHeldSetBalanced) {
  // A CondVar wait releases and reacquires the mutex internally without
  // touching the registry; afterwards the held set must still be balanced
  // (no phantom entry, no lost entry).
  ViolationCapture capture;
  Mutex worker(lock_rank::kWorkerPool);
  CondVar cv;
  {
    UniqueLock lock(worker);
    cv.NotifyAll();  // nothing waits; just exercise the pair
    MutexLock metrics_ok(*[] {
      static Mutex m(lock_rank::kMetrics);
      return &m;
    }());
  }
  {
    // After the scope the held set is empty again: a fresh in-order pair
    // reports nothing.
    MutexLock a(worker);
  }
  EXPECT_TRUE(ViolationCapture::captured().empty());
}

}  // namespace
}  // namespace oodb
