// Batch-execution throughput: real (wall-clock) rows/sec of a deep
// scan -> filter -> hash-join -> project -> sort pipeline over the OO7
// workload, across the batch-size x DOP grid {1, 64, 1024} x {1, 2, 4}.
//
// batch=1 / dop=1 reproduces the tuple-at-a-time era exactly (one virtual
// Next per operator per row, per-row clock and governor charges); larger
// batches amortize that per-call overhead across up to 1024 rows, and
// Exchange adds worker-pool parallelism on top. The acceptance claim under
// test: batch 1024 / DOP 4 sustains >= 3x the rows/sec of batch 1 / DOP 1.
//
// Results are printed as a table and written to BENCH_exec.json in the
// current directory ({"grid": [...], "speedup_batch1024_dop4": S}).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/oodb.h"
#include "src/workloads/oo7.h"

namespace oodb {
namespace {

Oo7Options BenchConfig() {
  Oo7Options o;
  o.num_composite_parts = 400;
  o.atomic_per_composite = 120;  // 48000 atomic parts through the pipeline
  o.complex_per_module = 4;
  o.base_per_complex = 8;
  o.num_build_dates = 10;
  return o;
}

/// The measured pipeline: FileScan(AtomicParts) -> Filter -> HybridHashJoin
/// (build CompositeParts) -> Project -> Sort.
constexpr const char* kPipeline =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 100 && a.y < 900 && p.buildDate >= 2;";

struct Measured {
  int batch;
  int dop;
  int64_t rows;
  double rows_per_sec;
};

int MaxDopOf(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
  for (const PlanNodePtr& c : node.children) {
    dop = std::max(dop, MaxDopOf(*c));
  }
  return dop;
}

}  // namespace

int Main() {
  auto made = MakeOo7(BenchConfig());
  if (!made.ok()) {
    std::fprintf(stderr, "oo7 setup: %s\n", made.status().ToString().c_str());
    return 1;
  }
  Oo7Instance instance = std::move(made).value();
  ObjectStore& store = *instance.store;
  Catalog& catalog = instance.db->catalog;

  std::vector<Measured> grid;
  for (int dop : {1, 2, 4}) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    SortSpec order;
    auto logical = ParseAndSimplify(kPipeline, &ctx, &order);
    if (!logical.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   logical.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions opts;
    opts.max_dop = dop;
    PhysProps required;
    required.sort = order;
    Optimizer opt(&catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx, required);
    if (!planned.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }
    int planted = MaxDopOf(*planned->plan);

    for (int batch : {1, 64, 1024}) {
      ExecOptions eo;
      eo.batch_size = batch;
      eo.sample_limit = 0;  // measure the pipeline, not result retention

      // Warm up once, then repeat until enough wall time has elapsed for a
      // stable rate (each run cold-starts the buffer pool, so repetitions
      // are identical work).
      auto warm = ExecutePlan(*planned->plan, &store, &ctx, eo);
      if (!warm.ok()) {
        std::fprintf(stderr, "execute: %s\n",
                     warm.status().ToString().c_str());
        return 1;
      }
      int64_t rows = warm->rows;
      int reps = 0;
      double elapsed = 0.0;
      auto t0 = std::chrono::steady_clock::now();
      do {
        auto r = ExecutePlan(*planned->plan, &store, &ctx, eo);
        if (!r.ok()) {
          std::fprintf(stderr, "execute: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        ++reps;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      } while (elapsed < 0.5 || reps < 3);

      double rate = static_cast<double>(rows) * reps / elapsed;
      grid.push_back({batch, dop, rows, rate});
      std::printf("batch=%-5d dop=%d (planted %d)  rows=%-6lld  %12.0f rows/sec\n",
                  batch, dop, planted, static_cast<long long>(rows), rate);
      std::fflush(stdout);
    }
  }

  double base = 0.0, best = 0.0;
  for (const Measured& m : grid) {
    if (m.batch == 1 && m.dop == 1) base = m.rows_per_sec;
    if (m.batch == 1024 && m.dop == 4) best = m.rows_per_sec;
  }
  double speedup = base > 0.0 ? best / base : 0.0;
  std::printf("\nspeedup batch1024/dop4 vs batch1/dop1: %.2fx\n", speedup);

  std::FILE* json = std::fopen("BENCH_exec.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_exec.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"pipeline\": \"scan-filter-hashjoin-project-sort\",\n");
  std::fprintf(json, "  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const Measured& m = grid[i];
    std::fprintf(json,
                 "    {\"batch\": %d, \"dop\": %d, \"rows\": %lld, "
                 "\"rows_per_sec\": %.0f}%s\n",
                 m.batch, m.dop, static_cast<long long>(m.rows),
                 m.rows_per_sec, i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_batch1024_dop4\": %.2f\n}\n", speedup);
  std::fclose(json);
  std::printf("wrote BENCH_exec.json\n");
  return speedup >= 3.0 ? 0 : 2;
}

}  // namespace oodb

int main() { return oodb::Main(); }
