#include "src/query/simplify.h"

#include "src/query/zql_parser.h"
#include "src/rules/expr_rewrites.h"

namespace oodb {

namespace {

/// Renders a source position for diagnostics; builder-made queries carry no
/// offsets and get none.
std::string AtOffset(size_t offset) {
  return offset > 0 ? " (at offset " + std::to_string(offset) + ")" : "";
}

class Simplifier {
 public:
  explicit Simplifier(QueryContext* ctx) : ctx_(ctx) {}

  Result<LogicalExprPtr> Run(const ZqlQuery& query, SortSpec* order,
                             int64_t* limit) {
    OODB_RETURN_IF_ERROR(ProcessRanges(query.from));

    // Convert the select list and WHERE clause; path resolution appends the
    // Mat operators each path needs to mats_ (dependency order).
    std::vector<ScalarExprPtr> emit;
    for (const ZqlExprPtr& e : query.select) {
      OODB_ASSIGN_OR_RETURN(ScalarExprPtr s, ConvertExpr(*e));
      emit.push_back(std::move(s));
    }
    std::vector<ScalarExprPtr> conjuncts;
    if (query.where) {
      OODB_RETURN_IF_ERROR(ConvertWhere(*query.where, &conjuncts));
    }
    // Argument transformations (paper Lesson 9): normalize the predicate —
    // negation normal form, constant folding, connective flattening —
    // before the algebraic optimizer sees it.
    ScalarExprPtr pred;
    if (!conjuncts.empty()) {
      pred = NormalizeExpr(ScalarExpr::CombineConjuncts(std::move(conjuncts)));
      if (IsConstTrue(pred)) pred = nullptr;  // vacuous WHERE clause
    }

    // ORDER BY: resolve each key to an attribute of an in-scope binding —
    // resolution may create Mats, so this precedes chain assembly. The sort
    // requirement is physical (returned to the caller), not logical.
    if (!query.order_by.empty()) {
      if (order == nullptr) {
        return Status::InvalidArgument(
            "query has ORDER BY but the caller requested no sort order; "
            "pass a SortSpec out-parameter or drop the clause" +
            AtOffset(query.order_by_offset));
      }
      std::vector<SortKey> keys;
      for (const ZqlOrderKey& k : query.order_by) {
        if (k.path == nullptr || k.path->kind != ZqlExpr::Kind::kPath ||
            k.path->path.size() < 2) {
          return Status::InvalidArgument(
              "ORDER BY key must be a var.field path" +
              AtOffset(query.order_by_offset));
        }
        OODB_ASSIGN_OR_RETURN(ScalarExprPtr key, ConvertPath(k.path->path));
        if (key->kind() != ScalarExpr::Kind::kAttr) {
          return Status::TypeError("ORDER BY path must reach a field" +
                                   AtOffset(query.order_by_offset));
        }
        keys.push_back(SortKey{key->binding(), key->field(), k.desc});
      }
      *order = SortSpec{std::move(keys)};
    }

    // LIMIT: like the order, a physical property of the plan root.
    if (query.limit > 0) {
      if (limit == nullptr) {
        return Status::InvalidArgument(
            "query has LIMIT but the caller requested no row limit; pass a "
            "limit out-parameter or drop the clause" +
            AtOffset(query.limit_offset));
      }
      *limit = query.limit;
    }

    // Assemble: ranges -> mats -> select -> project (paper Figure 5 shape).
    LogicalExprPtr chain = pipeline_;
    for (const LogicalOp& mat : mats_) {
      chain = LogicalExpr::Make(mat, {chain});
    }
    if (pred) {
      chain = LogicalExpr::Make(LogicalOp::Select(std::move(pred)), {chain});
    }

    if (!emit.empty()) {
      chain = LogicalExpr::Make(LogicalOp::Project(std::move(emit)), {chain});
    }
    OODB_RETURN_IF_ERROR(ValidateLogicalTree(*chain, *ctx_).status());
    return chain;
  }

 private:
  Status ProcessRanges(const std::vector<ZqlRange>& ranges) {
    for (const ZqlRange& r : ranges) {
      OODB_RETURN_IF_ERROR(ProcessRange(r));
    }
    return Status::OK();
  }

  Status ProcessRange(const ZqlRange& r) {
    OODB_ASSIGN_OR_RETURN(TypeId declared,
                          ctx_->schema().TypeByName(r.type_name));
    if (ctx_->bindings.ByName(r.var).ok()) {
      return Status::InvalidArgument("duplicate range variable '" + r.var + "'");
    }
    if (!r.from_path) {
      // Range over a named set, or over a type extent when no set matches.
      CollectionId coll;
      Result<const CollectionInfo*> set = ctx_->catalog->FindSet(r.collection);
      if (set.ok()) {
        coll = (*set)->id;
      } else {
        OODB_ASSIGN_OR_RETURN(TypeId t,
                              ctx_->schema().TypeByName(r.collection));
        if (!ctx_->catalog->HasExtent(t)) {
          return Status::NotFound("no set or extent named '" + r.collection +
                                  "'");
        }
        coll = CollectionId::Extent(t);
      }
      if (!ctx_->schema().IsSubtypeOf(coll.type, declared)) {
        return Status::TypeError("collection '" + r.collection +
                                 "' does not contain " + r.type_name);
      }
      BindingId b = ctx_->bindings.AddGet(r.var, coll.type);
      LogicalExprPtr get = LogicalExpr::Make(LogicalOp::Get(coll, b));
      if (!pipeline_) {
        pipeline_ = get;
      } else {
        pipeline_ = LogicalExpr::Make(
            LogicalOp::Join(ScalarExpr::Const(Value::Int(1))),
            {pipeline_, get});
      }
      return Status::OK();
    }

    // Range over a set-valued path: resolve the prefix (creating Mats),
    // unnest the set field, and materialize the revealed references.
    OODB_ASSIGN_OR_RETURN(PathEnd end, ResolvePrefix(r.path));
    const FieldDef& f = ctx_->schema().type(end.type).field(end.last_field);
    if (f.kind != FieldKind::kRefSet) {
      return Status::TypeError("range path must end in a set-valued field");
    }
    if (!ctx_->schema().IsSubtypeOf(f.target_type, declared)) {
      return Status::TypeError("set elements are not " + r.type_name);
    }
    BindingId ref = ctx_->bindings.AddUnnest(r.var + "_ref", f.target_type,
                                             end.binding, end.last_field);
    mats_.push_back(LogicalOp::Unnest(end.binding, end.last_field, ref));
    BindingId obj =
        ctx_->bindings.AddMat(r.var, f.target_type, ref, kInvalidField);
    mats_.push_back(LogicalOp::MatRef(ref, obj));
    return Status::OK();
  }

  struct PathEnd {
    BindingId binding;   ///< binding of the object owning the last field
    TypeId type;         ///< its type
    FieldId last_field;  ///< the final field (not yet dereferenced)
  };

  /// Resolves all but the last step of `path`, creating Mat bindings for
  /// interior reference links.
  Result<PathEnd> ResolvePrefix(const std::vector<std::string>& path) {
    if (path.size() < 2) {
      return Status::InvalidArgument("path must have at least var.field");
    }
    OODB_ASSIGN_OR_RETURN(BindingId cur, ctx_->bindings.ByName(path[0]));
    std::string name = path[0];
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      OODB_ASSIGN_OR_RETURN(cur, Traverse(cur, name, path[i]));
      name += "." + path[i];
    }
    TypeId t = ctx_->bindings.def(cur).type;
    OODB_ASSIGN_OR_RETURN(FieldId last,
                          ctx_->schema().ResolveField(t, path.back()));
    return PathEnd{cur, t, last};
  }

  /// Dereferences `parent`.`field_name`, reusing an existing Mat binding for
  /// the same link if one exists (common path-subexpression factorization).
  Result<BindingId> Traverse(BindingId parent, const std::string& parent_name,
                             const std::string& field_name) {
    const BindingDef& pd = ctx_->bindings.def(parent);
    if (pd.is_ref) {
      return Status::TypeError("cannot dereference unresolved reference '" +
                               parent_name + "'");
    }
    OODB_ASSIGN_OR_RETURN(FieldId f,
                          ctx_->schema().ResolveField(pd.type, field_name));
    const FieldDef& fd = ctx_->schema().type(pd.type).field(f);
    if (fd.kind != FieldKind::kRef) {
      return Status::TypeError("path step '" + field_name +
                               "' is not a single reference");
    }
    std::string name = parent_name + "." + field_name;
    if (Result<BindingId> existing = ctx_->bindings.ByName(name);
        existing.ok()) {
      return *existing;
    }
    BindingId target = ctx_->bindings.AddMat(name, fd.target_type, parent, f);
    mats_.push_back(LogicalOp::Mat(parent, f, target));
    return target;
  }

  /// Splits the WHERE clause at top-level ANDs; EXISTS conjuncts are merged
  /// into the outer pipeline, everything else converts to a scalar conjunct.
  Status ConvertWhere(const ZqlExpr& e, std::vector<ScalarExprPtr>* out) {
    if (e.kind == ZqlExpr::Kind::kAnd) {
      for (const ZqlExprPtr& c : e.children) {
        OODB_RETURN_IF_ERROR(ConvertWhere(*c, out));
      }
      return Status::OK();
    }
    if (e.kind == ZqlExpr::Kind::kExists) {
      OODB_RETURN_IF_ERROR(ProcessRanges(e.subquery->from));
      if (e.subquery->where) {
        OODB_RETURN_IF_ERROR(ConvertWhere(*e.subquery->where, out));
      }
      return Status::OK();
    }
    OODB_ASSIGN_OR_RETURN(ScalarExprPtr s, ConvertExpr(e));
    out->push_back(std::move(s));
    return Status::OK();
  }

  Result<ScalarExprPtr> ConvertExpr(const ZqlExpr& e) {
    switch (e.kind) {
      case ZqlExpr::Kind::kPath:
        return ConvertPath(e.path);
      case ZqlExpr::Kind::kLiteral:
        return ScalarExpr::Const(e.literal);
      case ZqlExpr::Kind::kCmp: {
        OODB_ASSIGN_OR_RETURN(ScalarExprPtr l, ConvertExpr(*e.children[0]));
        OODB_ASSIGN_OR_RETURN(ScalarExprPtr r, ConvertExpr(*e.children[1]));
        return ScalarExpr::Cmp(e.cmp, std::move(l), std::move(r));
      }
      case ZqlExpr::Kind::kAnd:
      case ZqlExpr::Kind::kOr: {
        std::vector<ScalarExprPtr> parts;
        for (const ZqlExprPtr& c : e.children) {
          OODB_ASSIGN_OR_RETURN(ScalarExprPtr s, ConvertExpr(*c));
          parts.push_back(std::move(s));
        }
        return e.kind == ZqlExpr::Kind::kAnd
                   ? ScalarExpr::And(std::move(parts))
                   : ScalarExpr::Or(std::move(parts));
      }
      case ZqlExpr::Kind::kNot: {
        OODB_ASSIGN_OR_RETURN(ScalarExprPtr inner, ConvertExpr(*e.children[0]));
        return ScalarExpr::Not(std::move(inner));
      }
      case ZqlExpr::Kind::kExists:
        return Status::Unimplemented(
            "EXISTS is only supported as a top-level WHERE conjunct");
    }
    return Status::Internal("unhandled ZQL expression kind");
  }

  /// A bare variable denotes object identity; `x.f1...fn` resolves interior
  /// links as Mats and reads the final field. A path ending in a reference
  /// field yields the reference value (an Attr of ref kind), so
  /// `e.department == d` compiles to Attr(e, dept) == Self(d).
  Result<ScalarExprPtr> ConvertPath(const std::vector<std::string>& path) {
    OODB_ASSIGN_OR_RETURN(BindingId root, ctx_->bindings.ByName(path[0]));
    if (path.size() == 1) {
      return ScalarExpr::Self(root);
    }
    OODB_ASSIGN_OR_RETURN(PathEnd end, ResolvePrefix(path));
    const FieldDef& f = ctx_->schema().type(end.type).field(end.last_field);
    if (f.kind == FieldKind::kRefSet) {
      return Status::TypeError(
          "set-valued path used as a scalar; bind it with a FROM range or "
          "EXISTS instead");
    }
    return ScalarExpr::Attr(end.binding, end.last_field);
  }

  QueryContext* ctx_;
  LogicalExprPtr pipeline_;       // the Get/Join/(nothing yet) base
  std::vector<LogicalOp> mats_;   // Unnest/Mat ops in dependency order
};

}  // namespace

Result<LogicalExprPtr> SimplifyQuery(const ZqlQuery& query, QueryContext* ctx,
                                     SortSpec* order, int64_t* limit) {
  if (query.from.empty()) {
    return Status::InvalidArgument("query has no FROM ranges");
  }
  Simplifier s(ctx);
  return s.Run(query, order, limit);
}

Result<LogicalExprPtr> ParseAndSimplify(const std::string& text,
                                        QueryContext* ctx, SortSpec* order,
                                        int64_t* limit) {
  OODB_ASSIGN_OR_RETURN(ZqlQueryPtr q, ParseZql(text));
  return SimplifyQuery(*q, ctx, order, limit);
}

}  // namespace oodb
