// Batch-execution throughput: real (wall-clock) rows/sec of a deep
// scan -> filter -> hash-join -> project -> sort pipeline over the OO7
// workload, across the batch-size x DOP grid {1, 64, 1024} x {1, 2, 4}.
//
// batch=1 / dop=1 reproduces the tuple-at-a-time era exactly (one virtual
// Next per operator per row, per-row clock and governor charges); larger
// batches amortize that per-call overhead across up to 1024 rows, and
// Exchange adds worker-pool parallelism on top. The acceptance claim under
// test: batch 1024 / DOP 4 sustains >= 3x the rows/sec of batch 1 / DOP 1.
//
// A second phase runs a highly selective variant of the same pipeline
// (~1% of atomic parts survive the scan filter) with the columnar engine
// toggled off and on, batch 1024, at DOP 1 and DOP 4. The claim under
// test: vectorized kernels sustain >= 3x the rows/sec of the row engine at
// DOP 1 on selective filters, without losing the DOP-4 parallel speedup.
//
// Results are printed as a table and written to BENCH_exec.json in the
// current directory ({"grid": [...], "speedup_batch1024_dop4": S,
// "selective": [...], "speedup_vectorized_dop1": V}).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/oodb.h"
#include "src/workloads/oo7.h"

namespace oodb {
namespace {

Oo7Options BenchConfig() {
  Oo7Options o;
  o.num_composite_parts = 400;
  o.atomic_per_composite = 120;  // 48000 atomic parts through the pipeline
  o.complex_per_module = 4;
  o.base_per_complex = 8;
  o.num_build_dates = 10;
  return o;
}

/// The measured pipeline: FileScan(AtomicParts) -> Filter -> HybridHashJoin
/// (build CompositeParts) -> Project -> Sort.
constexpr const char* kPipeline =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 100 && a.y < 900 && p.buildDate >= 2;";

/// The selective variant: the same shape, but the scan filter keeps ~1 in
/// 10^4 of the x/y grid, so nearly all filter work is rejection — the case
/// selection-vector kernels are built for.
constexpr const char* kSelective =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 990 && a.y < 10 && p.buildDate >= 2;";

struct Measured {
  int batch;
  int dop;
  int64_t rows;
  double rows_per_sec;
};

int MaxDopOf(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
  for (const PlanNodePtr& c : node.children) {
    dop = std::max(dop, MaxDopOf(*c));
  }
  return dop;
}

/// Warm up once, then repeat until enough wall time has elapsed for a
/// stable rate (each run cold-starts the buffer pool, so repetitions are
/// identical work). Two measurement passes, best rate kept: on a shared
/// host the minimum time is the signal and the excursions are scheduler
/// noise. Returns rows/sec, or a negative value on failure.
double MeasureRate(const PlanNode& plan, ObjectStore* store, QueryContext* ctx,
                   const ExecOptions& eo, int64_t* rows_out) {
  auto warm = ExecutePlan(plan, store, ctx, eo);
  if (!warm.ok()) {
    std::fprintf(stderr, "execute: %s\n", warm.status().ToString().c_str());
    return -1.0;
  }
  *rows_out = warm->rows;
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    int reps = 0;
    double elapsed = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    do {
      auto r = ExecutePlan(plan, store, ctx, eo);
      if (!r.ok()) {
        std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
        return -1.0;
      }
      ++reps;
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } while (elapsed < 0.5 || reps < 3);
    best = std::max(best, static_cast<double>(*rows_out) * reps / elapsed);
  }
  return best;
}

/// Measures two configurations of the same plan in alternating short
/// slices, so both see the same thermal/scheduler environment — the fair
/// way to form a ratio on a busy host (back-to-back blocks bias whichever
/// runs second on a heat-soaked core). Returns rows/sec per configuration.
bool MeasurePair(const PlanNode& plan, ObjectStore* store, QueryContext* ctx,
                 const ExecOptions& eo_a, const ExecOptions& eo_b,
                 int64_t* rows_out, double* rate_a, double* rate_b) {
  const ExecOptions* eos[2] = {&eo_a, &eo_b};
  int reps[2] = {0, 0};
  double elapsed[2] = {0.0, 0.0};
  for (int m = 0; m < 2; ++m) {  // warm both
    auto warm = ExecutePlan(plan, store, ctx, *eos[m]);
    if (!warm.ok()) {
      std::fprintf(stderr, "execute: %s\n", warm.status().ToString().c_str());
      return false;
    }
    *rows_out = warm->rows;
  }
  for (int slice = 0; slice < 12; ++slice) {
    int m = slice % 2;
    double sliced = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    do {
      auto r = ExecutePlan(plan, store, ctx, *eos[m]);
      if (!r.ok()) {
        std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
        return false;
      }
      ++reps[m];
      sliced =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } while (sliced < 0.1);
    elapsed[m] += sliced;
  }
  *rate_a = static_cast<double>(*rows_out) * reps[0] / elapsed[0];
  *rate_b = static_cast<double>(*rows_out) * reps[1] / elapsed[1];
  return true;
}

}  // namespace

int Main() {
  auto made = MakeOo7(BenchConfig());
  if (!made.ok()) {
    std::fprintf(stderr, "oo7 setup: %s\n", made.status().ToString().c_str());
    return 1;
  }
  Oo7Instance instance = std::move(made).value();
  ObjectStore& store = *instance.store;
  Catalog& catalog = instance.db->catalog;

  std::vector<Measured> grid;
  for (int dop : {1, 2, 4}) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    SortSpec order;
    auto logical = ParseAndSimplify(kPipeline, &ctx, &order);
    if (!logical.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   logical.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions opts;
    opts.max_dop = dop;
    PhysProps required;
    required.sort = order;
    Optimizer opt(&catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx, required);
    if (!planned.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }
    int planted = MaxDopOf(*planned->plan);

    for (int batch : {1, 64, 1024}) {
      ExecOptions eo;
      eo.batch_size = batch;
      eo.sample_limit = 0;  // measure the pipeline, not result retention
      eo.vectorize = 0;     // the row-engine baseline grid

      int64_t rows = 0;
      double rate = MeasureRate(*planned->plan, &store, &ctx, eo, &rows);
      if (rate < 0.0) return 1;
      grid.push_back({batch, dop, rows, rate});
      std::printf("batch=%-5d dop=%d (planted %d)  rows=%-6lld  %12.0f rows/sec\n",
                  batch, dop, planted, static_cast<long long>(rows), rate);
      std::fflush(stdout);
    }
  }

  double base = 0.0, best = 0.0;
  for (const Measured& m : grid) {
    if (m.batch == 1 && m.dop == 1) base = m.rows_per_sec;
    if (m.batch == 1024 && m.dop == 4) best = m.rows_per_sec;
  }
  double speedup = base > 0.0 ? best / base : 0.0;
  std::printf("\nspeedup batch1024/dop4 vs batch1/dop1: %.2fx\n\n", speedup);

  // --- Selective phase: row engine vs columnar kernels, batch 1024. ---
  struct SelMeasured {
    int dop;
    int vectorize;
    int64_t rows;
    double rows_per_sec;
  };
  std::vector<SelMeasured> sel;
  for (int dop : {1, 4}) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    SortSpec order;
    auto logical = ParseAndSimplify(kSelective, &ctx, &order);
    if (!logical.ok()) {
      std::fprintf(stderr, "parse: %s\n", logical.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions opts;
    opts.max_dop = dop;
    PhysProps required;
    required.sort = order;
    Optimizer opt(&catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx, required);
    if (!planned.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   planned.status().ToString().c_str());
      return 1;
    }
    ExecOptions eo_row;
    eo_row.batch_size = 1024;
    eo_row.sample_limit = 0;
    eo_row.vectorize = 0;
    ExecOptions eo_vec = eo_row;
    eo_vec.vectorize = 1;
    int64_t rows = 0;
    double rate_row = 0.0, rate_vec = 0.0;
    if (!MeasurePair(*planned->plan, &store, &ctx, eo_row, eo_vec, &rows,
                     &rate_row, &rate_vec)) {
      return 1;
    }
    sel.push_back({dop, 0, rows, rate_row});
    sel.push_back({dop, 1, rows, rate_vec});
    std::printf("selective dop=%d row         rows=%-6lld  %12.0f rows/sec\n",
                dop, static_cast<long long>(rows), rate_row);
    std::printf("selective dop=%d vectorized  rows=%-6lld  %12.0f rows/sec\n",
                dop, static_cast<long long>(rows), rate_vec);
    std::fflush(stdout);
  }

  auto sel_rate = [&sel](int dop, int vectorize) {
    for (const auto& m : sel) {
      if (m.dop == dop && m.vectorize == vectorize) return m.rows_per_sec;
    }
    return 0.0;
  };
  double vec1 = sel_rate(1, 0) > 0.0 ? sel_rate(1, 1) / sel_rate(1, 0) : 0.0;
  double vec4 = sel_rate(4, 0) > 0.0 ? sel_rate(4, 1) / sel_rate(4, 0) : 0.0;
  std::printf("\nspeedup vectorized vs row (selective, dop 1): %.2fx\n", vec1);
  std::printf("speedup vectorized vs row (selective, dop 4): %.2fx\n", vec4);

  std::FILE* json = std::fopen("BENCH_exec.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_exec.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"pipeline\": \"scan-filter-hashjoin-project-sort\",\n");
  std::fprintf(json, "  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const Measured& m = grid[i];
    std::fprintf(json,
                 "    {\"batch\": %d, \"dop\": %d, \"rows\": %lld, "
                 "\"rows_per_sec\": %.0f}%s\n",
                 m.batch, m.dop, static_cast<long long>(m.rows),
                 m.rows_per_sec, i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_batch1024_dop4\": %.2f,\n", speedup);
  std::fprintf(json, "  \"selective\": [\n");
  for (size_t i = 0; i < sel.size(); ++i) {
    const SelMeasured& m = sel[i];
    std::fprintf(json,
                 "    {\"dop\": %d, \"vectorize\": %d, \"rows\": %lld, "
                 "\"rows_per_sec\": %.0f}%s\n",
                 m.dop, m.vectorize, static_cast<long long>(m.rows),
                 m.rows_per_sec, i + 1 < sel.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_vectorized_dop1\": %.2f,\n", vec1);
  std::fprintf(json, "  \"speedup_vectorized_dop4\": %.2f\n}\n", vec4);
  std::fclose(json);
  std::printf("wrote BENCH_exec.json\n");
  if (speedup < 3.0) return 2;
  if (vec1 < 3.0) return 2;
  return 0;
}

}  // namespace oodb

int main() { return oodb::Main(); }
