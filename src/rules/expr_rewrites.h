// Logical *argument* transformations (paper Lesson 9: "we found it
// sometimes necessary to transform logical operator arguments in a way that
// is similar to the algebraic operator transformations. These logical
// argument transformations may be subject to rules completely different
// than the algebraic operator transformations").
//
// This module is that separate rule group: a normalizing rewriter for
// predicate expressions, applied by simplification before the algebraic
// optimizer ever sees the query:
//
//   * constant folding: comparisons/connectives over literals evaluate away,
//   * identity elimination: AND/OR absorb their units and zeros,
//   * negation normal form: NOT pushed through connectives (De Morgan) and
//     into comparisons (flipping the operator),
//   * flattening: nested ANDs/ORs merge into their parent,
//   * canonical operand order: constant-vs-attribute comparisons are turned
//     to attr-op-const form.
#ifndef OODB_RULES_EXPR_REWRITES_H_
#define OODB_RULES_EXPR_REWRITES_H_

#include "src/algebra/expr.h"

namespace oodb {

/// Rewrites `expr` to normal form. Idempotent; never fails (unknown shapes
/// pass through unchanged). Null stays null.
ScalarExprPtr NormalizeExpr(const ScalarExprPtr& expr);

/// True if the expression is the literal constant true/false.
bool IsConstTrue(const ScalarExprPtr& expr);
bool IsConstFalse(const ScalarExprPtr& expr);

}  // namespace oodb

#endif  // OODB_RULES_EXPR_REWRITES_H_
