#include "src/storage/disk_model.h"

#include <algorithm>
#include <cmath>

namespace oodb {

void DiskModel::Read(PageId page) {
  MutexLock lock(mu_);
  bool sequential = position_ != kInvalidPage &&
                    (page == position_ || page == position_ + 1);
  if (sequential) {
    seq_reads_.fetch_add(1, std::memory_order_relaxed);
    clock_->io_s += timing_->seq_io_s;
  } else {
    random_reads_.fetch_add(1, std::memory_order_relaxed);
    // Short forward seeks (the elevator pattern) cost less than full random
    // repositioning: interpolate between sequential and random cost on a
    // log scale of the seek distance.
    double cost = timing_->random_io_s;
    if (position_ != kInvalidPage && page > position_) {
      double distance = static_cast<double>(page - position_);
      double t = std::min(1.0, std::log2(distance + 1.0) / 16.0);
      cost = timing_->seq_io_s +
             t * (timing_->random_io_s - timing_->seq_io_s);
    }
    clock_->io_s += cost;
  }
  position_ = page;
}

}  // namespace oodb
