// The Volcano Exchange operator: encapsulated intra-query parallelism
// behind the unchanged iterator facade (Graefe's "operator model" — the
// paper's future-work item 5 transfers Volcano's execution concepts, and
// exchange is the one operator Volcano adds to parallelize all the others
// without changing them). Open() spawns `dop` worker threads, each running
// a private copy of the child operator tree; the driver scan of each copy
// reads a disjoint *contiguous* slice of its collection (see
// ExecEnv::partition_node), while build sides of hash/nested-loops joins
// are replicated per worker. Workers push full TupleBatches into a bounded
// multi-producer single-consumer queue; Next() pops one batch at a time,
// so the parent cannot tell an Exchange from any other operator.
//
// Order-preserving variant (op.merge): when the worker plan sorts (or
// top-k's) its slice locally, each worker gets a private FIFO and the
// consumer k-way-merges the sorted stream heads, ties broken toward the
// lower partition index — which, over contiguous slices and stable local
// sorts, reproduces the global stable sort order exactly.
//
// Accounting: each worker charges CPU to a private SimClock merged into the
// store's clock after the join (I/O is charged by the shared disk model
// under its own mutex). A governor trip on any worker is sticky in the
// shared QueryGovernor, so every other worker trips at its next checkpoint
// and the whole pipeline drains; the first error is reported from Next().
#ifndef OODB_EXEC_EXCHANGE_H_
#define OODB_EXEC_EXCHANGE_H_

#include <memory>

#include "src/exec/operators.h"

namespace oodb {

/// Builds the Exchange executor for plan node `plan` (op.kind == kExchange,
/// one child: the worker plan template). Falls back to a single
/// unpartitioned worker when no partitionable driver scan exists in the
/// child (the result stays correct; it just is not parallel).
Result<std::unique_ptr<ExecNode>> MakeExchangeExec(const ExecEnv& env,
                                                   const PlanNode& plan);

}  // namespace oodb

#endif  // OODB_EXEC_EXCHANGE_H_
