#include "src/cost/selectivity.h"

#include <algorithm>
#include <vector>

#include "src/trace/card_feedback.h"

namespace oodb {

double SelectivityEstimator::Estimate(const ScalarExprPtr& pred) const {
  if (!pred) return 1.0;
  switch (pred->kind()) {
    case ScalarExpr::Kind::kAnd: {
      double s = 1.0;
      for (const ScalarExprPtr& c : pred->children()) s *= Estimate(c);
      return s;
    }
    case ScalarExpr::Kind::kOr: {
      double keep = 1.0;
      for (const ScalarExprPtr& c : pred->children()) keep *= 1.0 - Estimate(c);
      return 1.0 - keep;
    }
    case ScalarExpr::Kind::kNot:
      return 1.0 - Estimate(pred->children()[0]);
    default:
      return EstimateConjunct(pred);
  }
}

double SelectivityEstimator::EstimateConjunct(const ScalarExprPtr& e) const {
  // Measured feedback from a prior execution of this query wins over any
  // statistic: the structural hash includes literal values, so an observed
  // selectivity for `x == 7` is consulted only for that exact conjunct —
  // which is precisely what statistics-free skew detection needs.
  if (ctx_->feedback != nullptr) {
    if (std::optional<double> sel = ctx_->feedback->Selectivity(e->Hash())) {
      return *sel;
    }
  }
  if (e->kind() != ScalarExpr::Kind::kCmp) return kDefaultSelectivity;
  const ScalarExprPtr& l = e->children()[0];
  const ScalarExprPtr& r = e->children()[1];
  // Normalize to attr-vs-const if possible.
  const ScalarExpr* attr = nullptr;
  if (l->kind() == ScalarExpr::Kind::kAttr &&
      r->kind() == ScalarExpr::Kind::kConst) {
    attr = l.get();
  } else if (r->kind() == ScalarExpr::Kind::kAttr &&
             l->kind() == ScalarExpr::Kind::kConst) {
    attr = r.get();
  }
  switch (e->cmp_op()) {
    case CmpOp::kEq: {
      if (attr != nullptr) {
        const IndexInfo* idx = FindAssistingIndex(attr->binding(), attr->field());
        if (idx != nullptr && idx->distinct_keys > 0) {
          return 1.0 / static_cast<double>(idx->distinct_keys);
        }
        // No assisting index, but ANALYZE may have measured the field's key
        // population: 1/distinct is the textbook equality estimate. The
        // blanket 10% default over-estimated high-cardinality equality
        // predicates by orders of magnitude (EXPLAIN ANALYZE showed 16x
        // drift on OO7's `a.x == c` — x has 1000 distinct values). Gated on
        // measurement: declared-only catalogs keep the paper's §4 default,
        // preserving the published Figure 6 / Table 2 plan shapes.
        if (ctx_->catalog->stats_measured() && attr->field() != kInvalidField) {
          const BindingDef& b = ctx_->bindings.def(attr->binding());
          const FieldDef& f = ctx_->schema().type(b.type).field(attr->field());
          if (f.distinct_values > 0) {
            return 1.0 / static_cast<double>(f.distinct_values);
          }
        }
      }
      return kDefaultSelectivity;
    }
    case CmpOp::kNe:
      return 1.0 - kDefaultSelectivity;
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe: {
      // Interpolate within the field's [min, max] statistics if the catalog
      // has them (uniform-distribution assumption); else the naive third.
      if (attr == nullptr) return kDefaultRangeSelectivity;
      const ScalarExpr* lit = attr == l.get() ? r.get() : l.get();
      if (lit->value().kind != Value::Kind::kInt) {
        return kDefaultRangeSelectivity;
      }
      const BindingDef& b = ctx_->bindings.def(attr->binding());
      const FieldDef& f = ctx_->schema().type(b.type).field(attr->field());
      if (!f.has_range_stats()) return kDefaultRangeSelectivity;
      // Normalize to attr-op-literal orientation.
      CmpOp op = e->cmp_op();
      if (attr == r.get()) op = ReverseCmp(op);
      double v = static_cast<double>(lit->value().i);
      double lo = static_cast<double>(f.min_value);
      double hi = static_cast<double>(f.max_value);
      double below = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
      double sel = (op == CmpOp::kLt || op == CmpOp::kLe) ? below : 1.0 - below;
      return std::clamp(sel, 0.001, 1.0);
    }
  }
  return kDefaultSelectivity;
}

double SelectivityEstimator::JoinSelectivity(const ScalarExprPtr& pred,
                                             double left_card,
                                             double right_card) const {
  if (!pred) return 1.0;
  if (ctx_->feedback != nullptr) {
    if (std::optional<double> sel =
            ctx_->feedback->JoinSelectivity(pred->Hash())) {
      return *sel;
    }
  }
  std::vector<ScalarExprPtr> conjuncts = ScalarExpr::SplitConjuncts(pred);
  double sel = 1.0;
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq) {
      sel *= kDefaultSelectivity;
      continue;
    }
    const ScalarExprPtr& l = c->children()[0];
    const ScalarExprPtr& r = c->children()[1];
    // ref == self: each referencing tuple matches exactly one object of the
    // referenced population.
    const ScalarExpr* self = nullptr;
    if (l->kind() == ScalarExpr::Kind::kSelf) self = l.get();
    if (r->kind() == ScalarExpr::Kind::kSelf) self = r.get();
    if (self != nullptr) {
      TypeId t = ctx_->bindings.def(self->binding()).type;
      if (std::optional<int64_t> population = ctx_->catalog->TypeCardinality(t)) {
        sel *= 1.0 / std::max<double>(1.0, static_cast<double>(*population));
        continue;
      }
      sel *= 1.0 / std::max(1.0, std::max(left_card, right_card));
      continue;
    }
    // Value equality between two attributes: 1 / max(distinct).
    if (l->kind() == ScalarExpr::Kind::kAttr &&
        r->kind() == ScalarExpr::Kind::kAttr) {
      auto distinct = [&](const ScalarExpr* a) -> double {
        const BindingDef& b = ctx_->bindings.def(a->binding());
        const FieldDef& f = ctx_->schema().type(b.type).field(a->field());
        return f.distinct_values > 0 ? static_cast<double>(f.distinct_values)
                                     : 10.0;
      };
      sel *= 1.0 / std::max(distinct(l.get()), distinct(r.get()));
      continue;
    }
    sel *= kDefaultSelectivity;
  }
  return sel;
}

const IndexInfo* SelectivityEstimator::FindAssistingIndex(BindingId binding,
                                                          FieldId field) const {
  if (field == kInvalidField) return nullptr;
  // Reconstruct the reference path from the binding's derivation chain back
  // to a scanned (Get) binding: b = root.f1.f2...; key field appended.
  std::vector<FieldId> chain = {field};
  BindingId cur = binding;
  const BindingTable& bt = ctx_->bindings;
  bool extent_only = false;
  while (bt.def(cur).origin == BindingOrigin::kMat) {
    const BindingDef& d = bt.def(cur);
    if (d.via_field == kInvalidField) {
      // Materialized from a bare reference (unnest output): the binding
      // ranges over the type's whole population, so only an index on the
      // type's extent can assist.
      extent_only = true;
      break;
    }
    chain.push_back(d.via_field);
    cur = d.parent;
  }
  if (!extent_only && bt.def(cur).origin != BindingOrigin::kGet) return nullptr;
  std::reverse(chain.begin(), chain.end());
  TypeId root_type = bt.def(cur).type;
  for (const IndexInfo& idx : ctx_->catalog->indexes()) {
    if (!idx.enabled) continue;
    if (idx.collection.type != root_type) continue;
    if (extent_only && idx.collection.kind != CollectionId::Kind::kExtent) {
      continue;
    }
    if (idx.path == chain) return &idx;
  }
  return nullptr;
}

}  // namespace oodb
