#include <gtest/gtest.h>

#include <cstdlib>

#include "src/storage/datagen.h"

namespace oodb {
namespace {

class DatagenTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.02;

  DatagenTest() : db_(MakePaperCatalog(kScale)), store_(&db_.catalog) {
    auto r = GeneratePaperData(db_, &store_);
    EXPECT_TRUE(r.ok()) << r.status();
    data_ = *std::move(r);
  }

  int64_t SetCard(const char* name) {
    return (*db_.catalog.FindSet(name))->cardinality;
  }

  /// Uncharged read of a known-valid oid (fails the test on error).
  static const ObjectData& Obj(ObjectStore& store, Oid oid) {
    Result<const ObjectData*> r = store.Read(oid, /*charge_io=*/false);
    if (!r.ok()) {
      ADD_FAILURE() << r.status();
      std::abort();
    }
    return **r;
  }
  const ObjectData& Obj(Oid oid) { return Obj(store_, oid); }

  PaperDb db_;
  ObjectStore store_;
  PaperDataset data_;
};

TEST_F(DatagenTest, PopulationsMatchCatalog) {
  EXPECT_EQ(static_cast<int64_t>(data_.persons.size()),
            db_.catalog.TypeCardinality(db_.person).value());
  EXPECT_EQ(static_cast<int64_t>(data_.countries.size()),
            db_.catalog.TypeCardinality(db_.country).value());
  EXPECT_EQ(static_cast<int64_t>(data_.employees.size()),
            db_.catalog.TypeCardinality(db_.employee).value());
  EXPECT_EQ(static_cast<int64_t>(data_.cities.size()), SetCard("Cities"));
  EXPECT_EQ(static_cast<int64_t>(data_.capitals.size()), SetCard("Capitals"));
  EXPECT_EQ(static_cast<int64_t>(data_.tasks.size()),
            db_.catalog.TypeCardinality(db_.task).value());
}

TEST_F(DatagenTest, SetsAreSubsetsOfExtents) {
  auto employees_set =
      store_.CollectionMembers(CollectionId::Set("Employees", db_.employee));
  ASSERT_TRUE(employees_set.ok());
  EXPECT_EQ(static_cast<int64_t>((*employees_set)->size()),
            SetCard("Employees"));
  auto tasks_set =
      store_.CollectionMembers(CollectionId::Set("Tasks", db_.task));
  ASSERT_TRUE(tasks_set.ok());
  EXPECT_EQ(static_cast<int64_t>((*tasks_set)->size()), SetCard("Tasks"));
}

TEST_F(DatagenTest, JoeMayorCountMatchesSelectivity) {
  // The catalog predicts |Cities| / distinct-mayor-names qualifying cities.
  int64_t distinct =
      db_.catalog.schema().type(db_.person).field(db_.person_name).distinct_values;
  int64_t expected = (SetCard("Cities") + distinct - 1) / distinct;
  int joes = 0;
  for (Oid c : data_.cities) {
    Oid mayor = Obj(c).ref(db_.city_mayor);
    if (Obj(mayor).value(db_.person_name).s == "Joe") ++joes;
  }
  EXPECT_EQ(joes, expected);
}

TEST_F(DatagenTest, TaskTimesCoverDistinctValues) {
  int64_t times =
      db_.catalog.schema().type(db_.task).field(db_.task_time).distinct_values;
  int with_time_1 = 0;
  auto tasks_set = store_.CollectionMembers(CollectionId::Set("Tasks", db_.task));
  ASSERT_TRUE(tasks_set.ok());
  for (Oid t : **tasks_set) {
    int64_t v = Obj(t).value(db_.task_time).i;
    EXPECT_GE(v, 1);
    EXPECT_LE(v, times);
    if (v == 1) ++with_time_1;
  }
  // Class-based assignment: |Tasks| / times tasks per value.
  EXPECT_NEAR(with_time_1, SetCard("Tasks") / times, 1);
}

TEST_F(DatagenTest, TeamMembersHaveExpectedFanout) {
  double avg = db_.catalog.schema()
                   .type(db_.task)
                   .field(db_.task_team_members)
                   .avg_set_card;
  const ObjectData& t = Obj(data_.tasks[0]);
  ASSERT_EQ(t.ref_sets.size(), 1u);
  EXPECT_EQ(static_cast<double>(t.ref_sets[0].size()), avg);
  for (Oid m : t.ref_sets[0]) {
    EXPECT_EQ(store_.TypeOf(m), db_.employee);
  }
}

TEST_F(DatagenTest, ReferencesAreValid) {
  for (Oid c : data_.cities) {
    const ObjectData& city = Obj(c);
    EXPECT_EQ(store_.TypeOf(city.ref(db_.city_mayor)), db_.person);
    EXPECT_EQ(store_.TypeOf(city.ref(db_.city_country)), db_.country);
  }
  for (Oid d : data_.departments) {
    EXPECT_EQ(store_.TypeOf(Obj(d).ref(db_.dept_plant)), db_.plant);
  }
}

TEST_F(DatagenTest, IndexesBuilt) {
  ASSERT_TRUE(store_.FindIndex(kIdxCitiesMayorName).ok());
  ASSERT_TRUE(store_.FindIndex(kIdxTasksTime).ok());
  ASSERT_TRUE(store_.FindIndex(kIdxEmployeesName).ok());
  auto time_idx = store_.FindIndex(kIdxTasksTime);
  EXPECT_EQ((*time_idx)->num_entries(), SetCard("Tasks"));
}

TEST_F(DatagenTest, DallasFractionApproximatelyRespected) {
  int dallas = 0;
  for (Oid p : data_.plants) {
    if (Obj(p).value(db_.plant_location).s == "Dallas") {
      ++dallas;
    }
  }
  EXPECT_GT(dallas, 0);
  EXPECT_LT(dallas, static_cast<int>(data_.plants.size()) / 3);
}

TEST_F(DatagenTest, DeterministicForSameSeed) {
  ObjectStore store2(&db_.catalog);
  auto r = GeneratePaperData(db_, &store2);
  ASSERT_TRUE(r.ok());
  // Compare a sample of employees field-by-field.
  for (int i = 0; i < 50; ++i) {
    Oid e = data_.employees[i];
    const ObjectData& a = Obj(e);
    const ObjectData& b = Obj(store2, e);
    EXPECT_EQ(a.value(db_.emp_name).s, b.value(db_.emp_name).s);
    EXPECT_EQ(a.ref(db_.emp_dept), b.ref(db_.emp_dept));
  }
}

TEST_F(DatagenTest, FredEmployeesExist) {
  int freds = 0;
  for (Oid e : data_.employees) {
    if (Obj(e).value(db_.emp_name).s == "Fred") ++freds;
  }
  int64_t distinct =
      db_.catalog.schema().type(db_.employee).field(db_.emp_name).distinct_values;
  EXPECT_NEAR(freds,
              static_cast<int>(data_.employees.size() / distinct), 1);
}

}  // namespace
}  // namespace oodb
