// Plan-cache throughput: K concurrent sessions replaying a zipfian mix of
// the paper's queries (plus literal variants) over one shared catalog and
// one shared plan cache. The claim under test: warm repeated-query planning
// is >= 10x the throughput of cold optimization, because the dominant lever
// for repeated traffic is not a faster search but *not searching at all*.
//
// BM_PlanColdVsWarm reports the single-thread speedup directly as the
// `warm_speedup` counter; the threaded benchmarks show the concurrent
// scaling of the sharded cache vs. per-call optimization.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/oodb.h"
#include "src/workloads/paper_queries.h"

namespace oodb {
namespace {

PaperDb& Db() {
  static PaperDb db = MakePaperCatalog();
  return db;
}

/// The replay mix: the four paper queries plus parameterized literal
/// variants (which share cache entries through fingerprint
/// parameterization) and the wider join from bench_opt_perf.
const std::vector<std::string>& WorkloadQueries() {
  static const std::vector<std::string> queries = [] {
    std::vector<std::string> q = {kQuery1Text, kQuery2Text, kQuery3Text,
                                  kQuery4Text};
    for (int age : {30, 35, 40, 45}) {
      q.push_back(
          "SELECT e.name FROM Employee e IN Employees WHERE e.age >= " +
          std::to_string(age) + ";");
    }
    for (int t : {50, 100, 150}) {
      q.push_back(
          "SELECT t.name FROM Task t IN Tasks WHERE t.time == " +
          std::to_string(t) + ";");
    }
    q.push_back(
        "SELECT e.name, d.name, t.name "
        "FROM Employee e IN Employees, Department d IN Department, "
        "     Task t IN Tasks, Employee m IN t.team_members "
        "WHERE e.dept == d && d.floor == 3 && e.age >= 32 && "
        "      t.time == 100 && m.name == e.name;");
    return q;
  }();
  return queries;
}

/// Zipf(s=1) rank weights over the workload: query 0 dominates, the tail
/// still recurs — the shape of real repeated traffic.
int ZipfPick(Rng& rng, int n) {
  static const std::vector<double>& cdf = *[] {
    auto* c = new std::vector<double>;
    double total = 0.0;
    for (int i = 0; i < 64; ++i) {
      total += 1.0 / (i + 1);
      c->push_back(total);
    }
    for (double& v : *c) v /= total;
    return c;
  }();
  double u = rng.NextDouble() * cdf[n - 1];
  for (int i = 0; i < n; ++i) {
    if (u <= cdf[i]) return i;
  }
  return n - 1;
}

Session::Options CacheOptions(std::shared_ptr<PlanCache> cache) {
  Session::Options opts;
  opts.plan_cache = std::move(cache);
  return opts;
}

void ReplayMix(benchmark::State& state, std::shared_ptr<PlanCache> cache) {
  Session session(&Db().catalog, CacheOptions(std::move(cache)));
  const std::vector<std::string>& queries = WorkloadQueries();
  Rng rng(0xbadc0ffee0ddf00dull + state.thread_index());
  int64_t prepared = 0;
  for (auto _ : state) {
    const std::string& q =
        queries[ZipfPick(rng, static_cast<int>(queries.size()))];
    auto r = session.Prepare(q);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    ++prepared;
  }
  state.SetItemsProcessed(prepared);
}

/// Cold path: no cache — every Prepare runs the full Volcano search (the
/// seed behavior, bit-identical plans).
void BM_ZipfMixCold(benchmark::State& state) { ReplayMix(state, nullptr); }
BENCHMARK(BM_ZipfMixCold)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

/// Warm path: all threads share one sharded cache; after the first pass the
/// mix is served from it.
void BM_ZipfMixWarm(benchmark::State& state) {
  static std::shared_ptr<PlanCache> cache =
      std::make_shared<PlanCache>(256);
  ReplayMix(state, cache);
  if (state.thread_index() == 0) {
    PlanCacheStats s = cache->stats();
    state.counters["hit_rate"] =
        s.hits + s.misses == 0
            ? 0.0
            : static_cast<double>(s.hits) /
                  static_cast<double>(s.hits + s.misses);
  }
}
BENCHMARK(BM_ZipfMixWarm)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

/// The acceptance claim, measured in one place: time N warm repeats of each
/// paper query against N cold optimizations and report the ratio.
void BM_PlanColdVsWarm(benchmark::State& state) {
  auto cache = std::make_shared<PlanCache>(64);
  Session warm(&Db().catalog, CacheOptions(cache));
  Session cold(&Db().catalog, CacheOptions(nullptr));
  const std::vector<std::string>& queries = WorkloadQueries();
  // Populate the cache outside the timed region.
  for (const std::string& q : queries) {
    auto r = warm.Prepare(q);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  double cold_s = 0.0, warm_s = 0.0;
  for (auto _ : state) {
    for (const std::string& q : queries) {
      auto t0 = std::chrono::steady_clock::now();
      auto rc = cold.Prepare(q);
      auto t1 = std::chrono::steady_clock::now();
      auto rw = warm.Prepare(q);
      auto t2 = std::chrono::steady_clock::now();
      if (!rc.ok() || !rw.ok()) state.SkipWithError("prepare failed");
      if (!rw->optimized.stats.plan_cached) {
        state.SkipWithError("warm prepare missed the cache");
      }
      cold_s += std::chrono::duration<double>(t1 - t0).count();
      warm_s += std::chrono::duration<double>(t2 - t1).count();
      benchmark::DoNotOptimize(rc);
      benchmark::DoNotOptimize(rw);
    }
  }
  state.counters["warm_speedup"] = warm_s > 0 ? cold_s / warm_s : 0.0;
}
BENCHMARK(BM_PlanColdVsWarm);

}  // namespace
}  // namespace oodb

BENCHMARK_MAIN();
