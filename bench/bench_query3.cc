// E8 — Query 3 (Figures 10 and 11): physical properties and goal-directed
// search. The projection needs the mayor component *present in memory*, so
// the index-scan plan of Query 2 no longer suffices by itself; the search
// engine discovers index scan + assembly *enforcer*, a plan unreachable by
// purely logical-algebra optimization.
#include "bench/bench_util.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Query 3 (ZQL)");
  std::printf("%s\n", kQuery3Text);

  bench::Header("Query 3 after simplification (paper Figure 10, top)");
  QueryContext show_ctx;
  {
    auto logical = BuildPaperQuery(3, db, &show_ctx);
    std::printf("%s", PrintLogicalTree(**logical, show_ctx).c_str());
  }

  std::printf(
      "\nSearch state while optimizing (paper Figure 11): Alg-Project\n"
      "requires its input to deliver the physical property\n"
      "    mem{c, c.mayor}   (city and mayor components present in memory)\n"
      "The collapse-to-index-scan plan delivers only mem{c}; the search\n"
      "engine therefore considers (1) Filter over an assembly-file-scan\n"
      "pipeline, and (2) the assembly ENFORCER over the index scan.\n");

  double fast;
  bench::Header("Figure 10: optimal plan (enforcer wins)");
  {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(3, db, &ctx);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    fast = q.cost.total();
    std::printf("estimated execution %.3f s (paper: 0.12 s)\n", fast);
  }

  bench::Header("Alternative (1): filter over assembly over file scan");
  {
    OptimizerOptions opts;
    opts.disabled_rules = {kImplIndexScan};
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(3, db, &ctx, opts);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    std::printf("estimated execution %.1f s (paper: 119.6 s)\n",
                q.cost.total());
    std::printf("\nProperty-driven search gain: %.0fx (paper: \"three orders "
                "of magnitude\")\n",
                q.cost.total() / fast);
  }

  bench::Header("W/o the assembly enforcer (exclusively algebraic search)");
  {
    OptimizerOptions opts;
    opts.disabled_rules = {kEnforcerAssembly};
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(3, db, &ctx, opts);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    std::printf("estimated execution %.1f s — the index-scan plan is "
                "unreachable without property enforcement (paper Lesson 5)\n",
                q.cost.total());
  }
  return 0;
}
