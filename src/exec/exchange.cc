#include "src/exec/exchange.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/exec/batch_pool.h"
#include "src/exec/worker_pool.h"
#include "src/physical/parallel.h"
#include "src/trace/exec_profile.h"

namespace oodb {

namespace {

/// Process-wide recovery counters (per-execution counts travel on
/// ExecFaultStats). Resolved once; never freed.
struct RecoveryMetrics {
  Counter* partitions_retried;
  Counter* partitions_speculated;
  Counter* duplicate_suppressed;

  static const RecoveryMetrics& Get() {
    static const RecoveryMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      RecoveryMetrics m;
      m.partitions_retried = r.counter(
          "oodb_exec_partitions_retried_total",
          "Exchange partitions re-executed after a retryable fault.");
      m.partitions_speculated = r.counter(
          "oodb_exec_partitions_speculated_total",
          "Straggling partitions speculatively re-dispatched.");
      m.duplicate_suppressed = r.counter(
          "oodb_exec_duplicate_attempts_suppressed_total",
          "Losing partition attempts whose staged output was discarded.");
      return m;
    }();
    return m;
  }
};

/// Bounded MPSC queue of TupleBatches. Producers block when full, the
/// consumer blocks when empty; Abort() wakes everyone and makes every
/// subsequent Push/Pop fail, so a dying consumer never strands a producer
/// (and vice versa). Batches stranded in the queue by an abort are parked
/// back in the BatchPool, never leaked — the pooled-arena invariant holds
/// across cancelled and faulted queries.
class BatchQueue {
 public:
  BatchQueue(size_t capacity, int producers)
      : capacity_(capacity), producers_(producers) {}

  ~BatchQueue() {
    MutexLock lock(mu_);
    DrainToPoolLocked();
  }

  /// False when the queue was aborted; the batch is then left untouched in
  /// the caller's hands (so the caller can pool it).
  ///
  /// Wakeups are lazy: the consumer is only notified once the queue is at
  /// least half full (or by ProducerDone/Abort/Kick). Notifying on every
  /// push ping-pongs producer and consumer through the scheduler — on a
  /// machine with fewer cores than workers each notify wake-preempts the
  /// producer, costing a context-switch round trip per batch. Batching the
  /// wakeups keeps everyone correct (a non-empty queue whose producers all
  /// exit is flushed by ProducerDone; a full queue necessarily crossed the
  /// threshold) while letting each side run for several batches per slice.
  bool Push(TupleBatch&& batch) {
    UniqueLock lock(mu_);
    while (queue_.size() >= capacity_ && !abort_) not_full_.Wait(lock);
    if (abort_) return false;
    queue_.push_back(std::move(batch));
    if (queue_.size() * 2 >= capacity_) not_empty_.NotifyOne();
    return true;
  }

  /// False when every producer finished and the queue is drained, or on
  /// abort. Producers are re-woken once the queue has drained to half —
  /// the consumer never blocks while batches remain, so the threshold is
  /// always reached (see Push on why not per-pop).
  bool Pop(TupleBatch* out) {
    UniqueLock lock(mu_);
    while (queue_.empty() && producers_ != 0 && !abort_) not_empty_.Wait(lock);
    return PopLocked(out);
  }

  enum class PopResult { kBatch, kTimeout, kClosed };

  /// Pop with a bounded wait — the recovery-mode consumer loop, which must
  /// wake periodically to run straggler checks and governor ticks even
  /// when no producer has delivered anything (a hung worker must never
  /// hang the consumer past its deadline).
  PopResult PopFor(TupleBatch* out, double timeout_ms) {
    UniqueLock lock(mu_);
    // A fixed deadline (not a per-wait timeout) so spurious wakeups re-check
    // the predicate without extending the bounded wait.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    while (queue_.empty() && producers_ != 0 && !abort_) {
      if (!not_empty_.WaitUntil(lock, deadline) && queue_.empty() &&
          producers_ != 0 && !abort_) {
        return PopResult::kTimeout;
      }
    }
    return PopLocked(out) ? PopResult::kBatch : PopResult::kClosed;
  }

  void ProducerDone() {
    MutexLock lock(mu_);
    --producers_;
    not_empty_.NotifyAll();
  }

  /// Recovery-mode end of stream: every partition delivered. Any batches
  /// still queued are drained by subsequent Pop calls, then Pop reports
  /// closed.
  void AllProducersDone() {
    MutexLock lock(mu_);
    producers_ = 0;
    not_empty_.NotifyAll();
  }

  /// Wakes the consumer regardless of the lazy-notify threshold (a small
  /// partition-atomic delivery may never half-fill the queue).
  void Kick() {
    MutexLock lock(mu_);
    not_empty_.NotifyAll();
  }

  void Abort() {
    MutexLock lock(mu_);
    abort_ = true;
    DrainToPoolLocked();
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

 private:
  bool PopLocked(TupleBatch* out) REQUIRES(mu_) {
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    if (queue_.size() * 2 <= capacity_) not_full_.NotifyAll();
    return true;
  }

  /// Returns every queued batch to the BatchPool. In-flight arenas must
  /// survive a mid-pipeline abort as pooled arenas, or every
  /// cancelled/faulted query leaks its queue depth in allocations. Takes the
  /// BatchPool lock under mu_ (batch_queue -> batch_pool, in rank order).
  void DrainToPoolLocked() REQUIRES(mu_) {
    while (!queue_.empty()) {
      BatchPool::Instance().Return(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  Mutex mu_{lock_rank::kBatchQueue};
  CondVar not_full_, not_empty_;
  std::deque<TupleBatch> queue_ GUARDED_BY(mu_);
  size_t capacity_;
  int producers_ GUARDED_BY(mu_);
  bool abort_ GUARDED_BY(mu_) = false;
};

class ExchangeExec : public ExecNode {
 public:
  ExchangeExec(ExecEnv env, const PlanNode& plan) : env_(env), plan_(&plan) {}

  ~ExchangeExec() override { Shutdown(); }

  Status Open() override {
    const PlanNode& child = *plan_->children[0];
    driver_ = FindPartitionableScan(child);
    dop_ = driver_ != nullptr ? std::max(1, plan_->op.dop) : 1;
    env_.clock().cpu_s +=
        env_.timing().exchange_startup_s * static_cast<double>(dop_);
    recover_ = env_.recovery != nullptr && env_.recovery->enabled;
    merge_ = plan_->op.merge;
    if (merge_) return OpenMerge();
    // Deep (but still bounded) buffering: 16 batches per worker. Producers
    // that never hit the bound run their whole partition without a blocking
    // wait — on a machine with fewer cores than workers that turns the
    // stream into long uninterrupted runs per thread instead of a
    // block/wake ping-pong per batch, and on larger machines the extra
    // depth only relaxes backpressure.
    //
    // In recovery mode the producer count is not the end-of-stream signal
    // (attempts are dynamic: retries and speculative re-dispatches); the
    // consumer closes the queue itself once every partition has delivered.
    queue_ = std::make_unique<BatchQueue>(
        16 * static_cast<size_t>(dop_),
        recover_ ? std::numeric_limits<int>::max() : dop_);
    if (recover_) {
      OpenRecovery();
      return Status::OK();
    }
    worker_clocks_.assign(dop_, SimClock{});
    if (env_.profile != nullptr) {
      // One private profile per worker, merged at join like the clocks.
      // Workers never attribute I/O per node (store-shared counters race
      // while siblings run); their CPU deltas come off the private clock.
      worker_profiles_.clear();
      for (int w = 0; w < dop_; ++w) {
        worker_profiles_.push_back(std::make_unique<ExecProfile>());
        worker_profiles_.back()->set_io_timed(false);
      }
    }
    pending_ = dop_;
    for (int w = 0; w < dop_; ++w) {
      WorkerPool::Instance().Submit([this, w] {
        WorkerMain(w);
        MutexLock lock(pending_mu_);
        if (--pending_ == 0) pending_cv_.NotifyAll();
      });
    }
    return Status::OK();
  }

  Result<size_t> Next(TupleBatch* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    out->Clear();
    if (done_) return Finish();
    if (merge_) return NextMerge(out);
    if (recover_) return NextRecovery(out);
    TupleBatch batch;
    if (!queue_->Pop(&batch)) {
      done_ = true;
      return Finish();
    }
    return Deliver(out, std::move(batch));
  }

  void Close() override { Shutdown(); }

 private:
  // ------------------------- shared plumbing -------------------------

  /// Hands `batch` to the caller, pooling the arena the caller still holds
  /// from the previous Next — steady-state flow allocates nothing.
  Result<size_t> Deliver(TupleBatch* out, TupleBatch&& batch) {
    env_.clock().cpu_s += static_cast<double>(batch.size()) *
                          env_.timing().exchange_flow_tuple_s;
    BatchPool::Instance().Return(std::move(*out));
    *out = std::move(batch);
    return out->size();
  }

  ExecEnv MakeWorkerEnv(SimClock* clock, ExecProfile* profile, int partition,
                        int attempt) {
    ExecEnv wenv = env_;
    wenv.cpu_clock = clock;
    wenv.profile = profile;
    if (driver_ != nullptr && dop_ > 1) {
      wenv.partition_node = driver_;
      wenv.partition_index = partition;
      wenv.partition_count = dop_;
    }
    wenv.fault_worker = partition;
    wenv.fault_attempt = env_.fault_attempt + attempt;
    return wenv;
  }

  /// Applies an injector action to a worker pipeline: charges the simulated
  /// straggler delay to the worker's private clock, sleeps the real
  /// component, and surfaces the injected kill.
  static Status ApplyFault(const ExecFaultInjector::Action& act,
                           SimClock* clock) {
    clock->cpu_s += act.sim_delay_s;
    if (act.sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(act.sleep_ms));
    }
    return act.status;
  }

  // ----------------------- streaming fast path -----------------------

  void WorkerMain(int w) {
    ExecEnv wenv = MakeWorkerEnv(
        &worker_clocks_[w],
        worker_profiles_.empty() ? nullptr : worker_profiles_[w].get(), w,
        /*attempt=*/0);
    Status status = RunWorker(wenv, w);
    if (!status.ok()) {
      {
        MutexLock lock(error_mu_);
        if (first_error_.ok()) first_error_ = status;
      }
      // Wake a consumer blocked on an emptying queue and stop siblings
      // early: with a governor the sticky trip does this anyway; without
      // one the abort is the only cross-worker stop signal.
      queue_->Abort();
    }
    queue_->ProducerDone();
  }

  Status RunWorker(const ExecEnv& wenv, int w) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(wenv, *plan_->children[0]));
    OODB_RETURN_IF_ERROR(node->Open());
    Status status = Status::OK();
    while (true) {
      TupleBatch batch =
          BatchPool::Instance().Take(wenv.num_bindings(), wenv.batch_size);
      Result<size_t> n = node->Next(&batch);
      if (!n.ok()) {
        status = n.status();
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      if (*n == 0) {
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      // Serialization point: a selection-marked batch compacts here, once,
      // before crossing the queue — consumers see contiguous rows and the
      // flow-tuple charge below stays per *live* row.
      batch.Compact();
      if (wenv.exec_faults != nullptr) {
        status = ApplyFault(
            wenv.exec_faults->OnBatchBoundary(w, wenv.fault_attempt),
            wenv.cpu_clock);
        if (status.ok()) {
          status = ApplyFault(
              wenv.exec_faults->OnPush(w, wenv.fault_attempt), wenv.cpu_clock);
        }
        if (!status.ok()) {
          BatchPool::Instance().Return(std::move(batch));
          break;
        }
      }
      if (!queue_->Push(std::move(batch))) {
        // Consumer went away (abort): the push left the batch with us.
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
    }
    node->Close();
    return status;
  }

  // --------------------- order-preserving merge ----------------------
  //
  // op.merge: each worker's partition is a contiguous chunk of the driver
  // scan and the child plan sorts it (or top-k's it) locally, so every
  // per-worker stream arrives in op.sort order. Instead of the shared
  // interleaving queue, each worker pushes into its own FIFO and the
  // consumer runs a k-way merge over the stream heads — ties go to the
  // lower partition index, which together with contiguous partitioning and
  // stable per-partition sorts reproduces the *global* stable sort order
  // exactly. op.limit > 0 stops the merge after k rows (each producer was
  // already limited to k by its local TopK; the merge re-truncates the
  // union).
  //
  // Fault recovery composes differently here: staged partition-atomic
  // delivery into a shared queue would lose stream identity, so a merge
  // worker retries its own partition inline (fresh pipeline per attempt,
  // staging batches until the attempt succeeds) and only then publishes to
  // its queue. Straggler speculation is not applied to merge exchanges.

  struct MergeCursor {
    TupleBatch batch;
    size_t pos = 0;
    bool open = false;       ///< batch holds rows (pos < batch.size())
    bool exhausted = false;  ///< stream closed and drained
    std::vector<Value> keys; ///< sort keys of the current row
  };

  Status OpenMerge() {
    for (const SortKey& k : plan_->op.sort.keys) {
      key_exprs_.push_back(ScalarExpr::Attr(k.binding, k.field));
    }
    queues_.clear();
    for (int w = 0; w < dop_; ++w) {
      queues_.push_back(std::make_unique<BatchQueue>(16, /*producers=*/1));
    }
    cursors_ = std::vector<MergeCursor>(static_cast<size_t>(dop_));
    worker_clocks_.assign(dop_, SimClock{});
    if (env_.profile != nullptr) {
      worker_profiles_.clear();
      for (int w = 0; w < dop_; ++w) {
        worker_profiles_.push_back(std::make_unique<ExecProfile>());
        worker_profiles_.back()->set_io_timed(false);
      }
      env_.profile->Register(plan_)->merge_streams = dop_;
    }
    pending_ = dop_;
    for (int w = 0; w < dop_; ++w) {
      WorkerPool::Instance().Submit([this, w] {
        MergeWorkerMain(w);
        MutexLock lock(pending_mu_);
        if (--pending_ == 0) pending_cv_.NotifyAll();
      });
    }
    return Status::OK();
  }

  void MergeWorkerMain(int w) {
    BatchQueue* queue = queues_[static_cast<size_t>(w)].get();
    Status status;
    int attempt = 0;
    while (true) {
      ExecEnv wenv = MakeWorkerEnv(
          &worker_clocks_[w],
          worker_profiles_.empty() ? nullptr : worker_profiles_[w].get(), w,
          attempt);
      if (!worker_profiles_.empty() && attempt > 0) {
        // Fresh profile per attempt: only the successful attempt's counters
        // survive, so ANALYZE reflects delivered rows, not failed tries.
        worker_profiles_[w] = std::make_unique<ExecProfile>();
        worker_profiles_[w]->set_io_timed(false);
        wenv.profile = worker_profiles_[w].get();
      }
      status = recover_ ? RunMergeWorkerStaged(wenv, w, queue)
                        : RunMergeWorkerStreaming(wenv, w, queue);
      if (status.ok()) break;
      if (recover_ && IsRetryableExecFault(status.code()) &&
          attempt + 1 < env_.recovery->max_partition_attempts &&
          ChargeRetryBudget().ok()) {
        ++attempt;
        if (env_.fault_stats != nullptr) {
          env_.fault_stats->partitions_retried.fetch_add(
              1, std::memory_order_relaxed);
        }
        RecoveryMetrics::Get().partitions_retried->Increment();
        continue;
      }
      {
        MutexLock lock(error_mu_);
        if (first_error_.ok()) first_error_ = status;
      }
      AbortAllQueues();
      break;
    }
    queue->ProducerDone();
  }

  /// One streaming pass over the worker's partition into its own queue
  /// (recovery off: a fault surfaces to the consumer, as on the fast path).
  Status RunMergeWorkerStreaming(const ExecEnv& wenv, int w,
                                 BatchQueue* queue) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(wenv, *plan_->children[0]));
    OODB_RETURN_IF_ERROR(node->Open());
    Status status = Status::OK();
    while (true) {
      TupleBatch batch =
          BatchPool::Instance().Take(wenv.num_bindings(), wenv.batch_size);
      Result<size_t> n = node->Next(&batch);
      if (!n.ok() || *n == 0) {
        if (!n.ok()) status = n.status();
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      batch.Compact();
      if (wenv.exec_faults != nullptr) {
        status = ApplyFault(
            wenv.exec_faults->OnBatchBoundary(w, wenv.fault_attempt),
            wenv.cpu_clock);
        if (status.ok()) {
          status = ApplyFault(wenv.exec_faults->OnPush(w, wenv.fault_attempt),
                              wenv.cpu_clock);
        }
        if (!status.ok()) {
          BatchPool::Instance().Return(std::move(batch));
          break;
        }
      }
      if (!queue->Push(std::move(batch))) {
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
    }
    node->Close();
    return status;
  }

  /// One attempt of the worker's partition, staged: batches publish to the
  /// queue only after the whole partition succeeded, so an inline retry
  /// after a mid-stream fault cannot duplicate rows in the stream.
  Status RunMergeWorkerStaged(const ExecEnv& wenv, int w, BatchQueue* queue) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(wenv, *plan_->children[0]));
    Status status = node->Open();
    std::vector<TupleBatch> staged;
    while (status.ok()) {
      TupleBatch batch =
          BatchPool::Instance().Take(wenv.num_bindings(), wenv.batch_size);
      Result<size_t> n = node->Next(&batch);
      if (!n.ok() || *n == 0) {
        if (!n.ok()) status = n.status();
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      batch.Compact();
      if (wenv.exec_faults != nullptr) {
        status = ApplyFault(
            wenv.exec_faults->OnBatchBoundary(w, wenv.fault_attempt),
            wenv.cpu_clock);
        if (status.ok()) {
          status = ApplyFault(wenv.exec_faults->OnPush(w, wenv.fault_attempt),
                              wenv.cpu_clock);
        }
        if (!status.ok()) {
          BatchPool::Instance().Return(std::move(batch));
          break;
        }
      }
      staged.push_back(std::move(batch));
    }
    node->Close();
    if (status.ok()) {
      for (TupleBatch& b : staged) {
        if (!queue->Push(std::move(b))) {
          BatchPool::Instance().Return(std::move(b));
        }
      }
    } else {
      for (TupleBatch& b : staged) BatchPool::Instance().Return(std::move(b));
    }
    return status;
  }

  /// Advances cursor `w` to its next row, blocking on the worker's queue at
  /// batch boundaries; refreshes the cached sort keys.
  Status AdvanceCursor(int w) {
    MergeCursor& c = cursors_[static_cast<size_t>(w)];
    if (c.open) ++c.pos;
    while (!c.exhausted && (!c.open || c.pos >= c.batch.size())) {
      TupleBatch next;
      if (queues_[static_cast<size_t>(w)]->Pop(&next)) {
        if (c.open) BatchPool::Instance().Return(std::move(c.batch));
        c.batch = std::move(next);
        c.pos = 0;
        c.open = c.batch.size() > 0;
      } else {
        if (c.open) BatchPool::Instance().Return(std::move(c.batch));
        c.open = false;
        c.exhausted = true;
      }
    }
    if (c.exhausted) return Status::OK();
    TupleRef row = c.batch.ref(c.pos);
    c.keys.clear();
    for (const ScalarExprPtr& e : key_exprs_) {
      OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row, *env_.ctx));
      c.keys.push_back(std::move(v));
    }
    return Status::OK();
  }

  Result<size_t> NextMerge(TupleBatch* out) {
    if (!merge_primed_) {
      merge_primed_ = true;
      for (int w = 0; w < dop_; ++w) {
        cursors_[static_cast<size_t>(w)].pos = 0;
        OODB_RETURN_IF_ERROR(AdvanceCursor(w));
      }
    }
    const std::vector<SortKey>& keys = plan_->op.sort.keys;
    const int64_t limit = plan_->op.limit;
    const double row_cpu_s =
        env_.timing().exchange_flow_tuple_s +
        Log2Ceil(dop_) * env_.timing().cpu_pred_s;
    while (!out->full()) {
      if (limit > 0 && merge_emitted_ >= limit) break;
      // Linear tournament over the stream heads: strictly-less replaces the
      // running best, so equal keys keep the lowest partition index.
      int best = -1;
      for (int w = 0; w < dop_; ++w) {
        const MergeCursor& c = cursors_[static_cast<size_t>(w)];
        if (c.exhausted) continue;
        if (best < 0) {
          best = w;
          continue;
        }
        const MergeCursor& b = cursors_[static_cast<size_t>(best)];
        for (size_t i = 0; i < keys.size(); ++i) {
          int cmp = c.keys[i].Compare(b.keys[i]);
          if (cmp == 0) continue;
          if (keys[i].desc ? cmp > 0 : cmp < 0) best = w;
          break;
        }
      }
      if (best < 0) break;  // every stream drained
      MergeCursor& c = cursors_[static_cast<size_t>(best)];
      out->AppendRowRaw().CopyFrom(c.batch.ref(c.pos));
      env_.clock().cpu_s += row_cpu_s;
      ++merge_emitted_;
      OODB_RETURN_IF_ERROR(AdvanceCursor(best));
    }
    if (out->size() > 0) return out->size();
    // End of stream: the limit was reached or every stream drained. Workers
    // still producing past a reached limit are cut loose by the abort.
    if (limit > 0 && merge_emitted_ >= limit) AbortAllQueues();
    done_ = true;
    return Finish();
  }

  static double Log2Ceil(int n) {
    double log = 1.0;
    while ((1 << static_cast<int>(log)) < std::max(n, 2)) log += 1.0;
    return log;
  }

  void AbortAllQueues() {
    for (std::unique_ptr<BatchQueue>& q : queues_) q->Abort();
  }

  // ------------------------- recovery mode ---------------------------
  //
  // Partition-atomic delivery: each attempt stages its whole chunk's
  // batches locally and publishes them only after the chunk succeeded,
  // under a per-partition winner claim. A failed attempt therefore
  // contributed nothing downstream — re-executing its chunk (legal because
  // scan partitions are side-effect-free over the read-only store) cannot
  // duplicate or lose rows. Stragglers are speculatively re-dispatched
  // (first result wins); the loser's staged output is discarded, and the
  // winner-claim asserts exactly-once delivery per partition.

  struct PartitionState {
    int attempts_started = 0;
    bool winner_claimed = false;
    bool delivered = false;
    bool speculated = false;
    Status last_error;
    std::chrono::steady_clock::time_point dispatched_at;
  };

  struct Attempt {
    int partition = 0;
    int attempt = 0;
    bool won = false;
    SimClock clock;
    std::unique_ptr<ExecProfile> profile;
  };

  void OpenRecovery() {
    MutexLock lock(part_mu_);
    parts_.assign(static_cast<size_t>(dop_), PartitionState{});
    for (int p = 0; p < dop_; ++p) DispatchLocked(p, /*speculative=*/false);
  }

  /// Launches the next attempt of partition `p`.
  void DispatchLocked(int p, bool speculative) REQUIRES(part_mu_) {
    PartitionState& ps = parts_[static_cast<size_t>(p)];
    int attempt = ps.attempts_started++;
    ps.dispatched_at = std::chrono::steady_clock::now();
    attempts_.emplace_back();
    Attempt* at = &attempts_.back();  // deque: stable across later growth
    at->partition = p;
    at->attempt = attempt;
    if (env_.profile != nullptr) {
      at->profile = std::make_unique<ExecProfile>();
      at->profile->set_io_timed(false);
    }
    if (speculative) {
      ps.speculated = true;
      if (env_.fault_stats != nullptr) {
        env_.fault_stats->partitions_speculated.fetch_add(
            1, std::memory_order_relaxed);
      }
      RecoveryMetrics::Get().partitions_speculated->Increment();
    }
    {
      MutexLock plock(pending_mu_);
      ++pending_;
    }
    WorkerPool::Instance().Submit([this, at] {
      RunAttempt(*at);
      MutexLock plock(pending_mu_);
      if (--pending_ == 0) pending_cv_.NotifyAll();
    });
  }

  void RunAttempt(Attempt& at) {
    ExecEnv wenv =
        MakeWorkerEnv(&at.clock, at.profile.get(), at.partition, at.attempt);
    std::vector<TupleBatch> staged;
    Status status = RunPartition(wenv, at, &staged);

    bool deliver = false;
    if (status.ok()) {
      MutexLock lock(part_mu_);
      PartitionState& ps = parts_[static_cast<size_t>(at.partition)];
      // The winner claim is the exactly-once gate: the first successful
      // attempt of a partition delivers, every other one (a speculative
      // rival, a retry racing a slow original) is suppressed wholesale.
      if (!ps.winner_claimed && !shutdown_) {
        ps.winner_claimed = true;
        at.won = true;
        deliver = true;
      }
    }

    if (deliver) {
      bool pushed = true;
      for (TupleBatch& b : staged) {
        if (pushed && queue_->Push(std::move(b))) continue;
        pushed = false;
        BatchPool::Instance().Return(std::move(b));
      }
      staged.clear();
      bool duplicate = false;
      {
        MutexLock lock(part_mu_);
        PartitionState& ps = parts_[static_cast<size_t>(at.partition)];
        // Delivery invariant (duplicate suppression): a partition is
        // delivered at most once. A second delivery would mean duplicated
        // rows downstream — surface it as a hard internal error rather than
        // silently corrupt results.
        if (ps.delivered) {
          duplicate = true;
        } else {
          ps.delivered = true;
          ++delivered_count_;
        }
      }
      if (duplicate) {
        // Record the error and abort with no lock held across the queue /
        // pool acquisitions the abort makes.
        {
          MutexLock elock(error_mu_);
          if (first_error_.ok()) {
            first_error_ = Status::Internal(
                "exchange recovery: partition " +
                std::to_string(at.partition) + " delivered twice");
          }
        }
        queue_->Abort();
        return;
      }
      queue_->Kick();
      return;
    }

    // Losing or failed attempt: its staged output is suppressed entirely.
    if (!staged.empty()) {
      RecoveryMetrics::Get().duplicate_suppressed->Increment();
    }
    for (TupleBatch& b : staged) BatchPool::Instance().Return(std::move(b));
    staged.clear();
    if (status.ok()) return;  // lost the race; the winner delivered

    MutexLock lock(part_mu_);
    PartitionState& ps = parts_[static_cast<size_t>(at.partition)];
    ps.last_error = status;
    if (ps.winner_claimed || shutdown_) return;
    if (IsRetryableExecFault(status.code()) &&
        ps.attempts_started < env_.recovery->max_partition_attempts &&
        ChargeRetryBudget().ok()) {
      if (env_.fault_stats != nullptr) {
        env_.fault_stats->partitions_retried.fetch_add(
            1, std::memory_order_relaxed);
      }
      RecoveryMetrics::Get().partitions_retried->Increment();
      DispatchLocked(at.partition, /*speculative=*/false);
      return;
    }
    // Terminal: no recovery path left for this partition. Surface the
    // first error and drain the pipeline.
    {
      MutexLock elock(error_mu_);
      if (first_error_.ok()) first_error_ = status;
    }
    queue_->Abort();
  }

  Status ChargeRetryBudget() {
    if (env_.governor == nullptr) return Status::OK();
    return env_.governor->ChargeRetry();
  }

  Status RunPartition(const ExecEnv& wenv, const Attempt& at,
                      std::vector<TupleBatch>* staged) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecNode(wenv, *plan_->children[0]));
    Status status = node->Open();
    while (status.ok()) {
      // A rival attempt already won this partition, or the exchange is
      // shutting down: stop early and discard. Keeps a superseded
      // straggler from burning a pool thread for the rest of its chunk.
      {
        MutexLock lock(part_mu_);
        const PartitionState& ps = parts_[static_cast<size_t>(at.partition)];
        if (shutdown_ || ps.winner_claimed) {
          status = Status::Cancelled("partition attempt superseded");
          break;
        }
      }
      TupleBatch batch =
          BatchPool::Instance().Take(wenv.num_bindings(), wenv.batch_size);
      Result<size_t> n = node->Next(&batch);
      if (!n.ok()) {
        status = n.status();
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      if (*n == 0) {
        BatchPool::Instance().Return(std::move(batch));
        break;
      }
      batch.Compact();
      if (wenv.exec_faults != nullptr) {
        status = ApplyFault(wenv.exec_faults->OnBatchBoundary(
                                at.partition, wenv.fault_attempt),
                            wenv.cpu_clock);
        if (status.ok()) {
          status =
              ApplyFault(wenv.exec_faults->OnPush(at.partition,
                                                  wenv.fault_attempt),
                         wenv.cpu_clock);
        }
        if (!status.ok()) {
          BatchPool::Instance().Return(std::move(batch));
          break;
        }
      }
      staged->push_back(std::move(batch));
    }
    node->Close();
    return status;
  }

  Result<size_t> NextRecovery(TupleBatch* out) {
    const double interval =
        env_.recovery->check_interval_ms > 0.0
            ? env_.recovery->check_interval_ms
            : 10.0;
    while (true) {
      TupleBatch batch;
      BatchQueue::PopResult r = queue_->PopFor(&batch, interval);
      if (r == BatchQueue::PopResult::kBatch) {
        return Deliver(out, std::move(batch));
      }
      if (r == BatchQueue::PopResult::kClosed) {
        done_ = true;
        return Finish();
      }
      // Timeout tick: bound a hung pipeline by the governor deadline, then
      // check for end of stream and stragglers.
      OODB_RETURN_IF_ERROR(env_.Tick());
      bool all_delivered = false;
      {
        MutexLock lock(part_mu_);
        all_delivered = delivered_count_ == dop_;
        if (!all_delivered) CheckStragglersLocked();
      }
      if (all_delivered) {
        // Winners set `delivered` only after their last push, so once every
        // partition reports delivered the queue holds the complete residue;
        // closing it lets Pop drain then report end of stream.
        queue_->AllProducersDone();
      }
    }
  }

  /// Speculative re-dispatch of straggling partitions: a partition not
  /// delivered within straggler_threshold * governor-deadline of its last
  /// dispatch gets one rival attempt of the same chunk (first result wins).
  void CheckStragglersLocked() REQUIRES(part_mu_) {
    if (env_.recovery->straggler_threshold <= 0.0 ||
        env_.governor == nullptr) {
      return;
    }
    double deadline_ms = env_.governor->options().deadline_ms;
    if (deadline_ms <= 0.0) return;
    double threshold_ms = env_.recovery->straggler_threshold * deadline_ms;
    auto now = std::chrono::steady_clock::now();
    for (int p = 0; p < dop_; ++p) {
      PartitionState& ps = parts_[static_cast<size_t>(p)];
      if (ps.winner_claimed || ps.speculated ||
          ps.attempts_started >= env_.recovery->max_partition_attempts) {
        continue;
      }
      double waited_ms =
          std::chrono::duration<double, std::milli>(now - ps.dispatched_at)
              .count();
      if (waited_ms < threshold_ms) continue;
      if (!ChargeRetryBudget().ok()) return;
      DispatchLocked(p, /*speculative=*/true);
    }
  }

  // --------------------------- join/close ----------------------------

  /// Waits for the workers (once), merges their private clocks, and reports
  /// the first worker error — or a clean end of stream.
  Result<size_t> Finish() {
    JoinWorkers();
    MutexLock lock(error_mu_);
    if (!first_error_.ok()) return first_error_;
    return static_cast<size_t>(0);
  }

  void JoinWorkers() {
    if (joined_) return;
    joined_ = true;
    {
      UniqueLock lock(pending_mu_);
      while (pending_ != 0) pending_cv_.Wait(lock);
    }
    if (recover_ && !merge_) {
      JoinRecovery();
      return;
    }
    for (const SimClock& c : worker_clocks_) {
      env_.store->clock().MergeFrom(c);
    }
    if (env_.profile != nullptr) {
      // Workers are joined: their profiles are quiescent and the wait above
      // ordered their writes before these reads. Fold per-node counters
      // into the consumer's profile and record per-worker utilization on
      // this Exchange node.
      const PlanNode* child = plan_->children[0].get();
      for (size_t w = 0; w < worker_profiles_.size(); ++w) {
        const OpProfile* root = worker_profiles_[w]->Find(child);
        WorkerUtilization u;
        u.worker = static_cast<int>(w);
        u.rows = root != nullptr ? root->rows : 0;
        u.cpu_s = worker_clocks_[w].cpu_s;
        env_.profile->AddWorker(plan_, u);
        env_.profile->MergeFrom(*worker_profiles_[w]);
      }
    }
  }

  void JoinRecovery() {
    // All attempts joined (pending_ == 0): attempts_ and parts_ are
    // quiescent. The lock is uncontended here and keeps the reads visible
    // to the analysis instead of relying on the quiescence argument alone.
    // Every attempt's clock merges — work done by losing speculative rivals
    // and failed attempts was really done — while only winning attempts
    // contribute profiles, so ANALYZE row counts reflect delivered results,
    // not suppressed duplicates.
    MutexLock lock(part_mu_);
    const PlanNode* child = plan_->children[0].get();
    for (const Attempt& at : attempts_) {
      env_.store->clock().MergeFrom(at.clock);
      if (!at.won || env_.profile == nullptr || at.profile == nullptr) {
        continue;
      }
      const OpProfile* root = at.profile->Find(child);
      WorkerUtilization u;
      u.worker = at.partition;
      u.rows = root != nullptr ? root->rows : 0;
      u.cpu_s = at.clock.cpu_s;
      env_.profile->AddWorker(plan_, u);
      env_.profile->MergeFrom(*at.profile);
    }
    if (env_.profile != nullptr && env_.fault_stats != nullptr) {
      env_.profile->AddRecovery(
          env_.fault_stats->partitions_retried.load(std::memory_order_relaxed),
          env_.fault_stats->partitions_speculated.load(
              std::memory_order_relaxed));
    }
  }

  void Shutdown() {
    if (recover_ && !merge_) {
      MutexLock lock(part_mu_);
      shutdown_ = true;  // running attempts exit at their next boundary
    }
    if (!joined_) {
      if (queue_ != nullptr) queue_->Abort();
      AbortAllQueues();
    }
    JoinWorkers();
  }

  ExecEnv env_;
  const PlanNode* plan_;
  const PlanNode* driver_ = nullptr;
  int dop_ = 1;
  bool recover_ = false;
  bool merge_ = false;
  std::unique_ptr<BatchQueue> queue_;
  // Merge-mode state (consumer thread only, except the queues):
  std::vector<std::unique_ptr<BatchQueue>> queues_;  ///< one FIFO per worker
  std::vector<MergeCursor> cursors_;
  std::vector<ScalarExprPtr> key_exprs_;
  bool merge_primed_ = false;
  int64_t merge_emitted_ = 0;
  Mutex pending_mu_{lock_rank::kExchangePending};
  CondVar pending_cv_;
  int pending_ GUARDED_BY(pending_mu_) = 0;
  std::vector<SimClock> worker_clocks_;
  std::vector<std::unique_ptr<ExecProfile>> worker_profiles_;
  /// Acquired before error_mu_ / pending_mu_ / the queue's lock (rank
  /// kExchangePartition is the outermost of the exchange's three).
  Mutex part_mu_{lock_rank::kExchangePartition};
  std::vector<PartitionState> parts_ GUARDED_BY(part_mu_);
  std::deque<Attempt> attempts_ GUARDED_BY(part_mu_);
  int delivered_count_ GUARDED_BY(part_mu_) = 0;
  bool shutdown_ GUARDED_BY(part_mu_) = false;
  Mutex error_mu_{lock_rank::kExchangeError};
  Status first_error_ GUARDED_BY(error_mu_);
  bool done_ = false;
  bool joined_ = false;
};

}  // namespace

Result<std::unique_ptr<ExecNode>> MakeExchangeExec(const ExecEnv& env,
                                                   const PlanNode& plan) {
  if (plan.children.size() != 1) {
    return Status::Internal("exchange requires exactly one child");
  }
  return std::unique_ptr<ExecNode>(new ExchangeExec(env, plan));
}

}  // namespace oodb
