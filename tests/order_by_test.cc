// ORDER BY: the sort-order physical property end-to-end — required of the
// plan root, supplied by the Sort enforcer or by an order-delivering
// algorithm (a simple index scan emits key order for free).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

TEST(OrderByParseTest, ParserAndBuilderAgree) {
  auto q = ParseZqlForTest("SELECT e.name FROM Employee e IN Employees "
                           "WHERE e.age >= 30 ORDER BY e.salary;");
  ASSERT_NE(q, nullptr);
  ASSERT_NE(q->order_by, nullptr);
  EXPECT_EQ(q->order_by->path, (std::vector<std::string>{"e", "salary"}));

  ZqlQuery built = QueryBuilder()
                       .Select(zql::Path("e.name"))
                       .From("Employee", "e", "Employees")
                       .Where(zql::Ge(zql::Path("e.age"), zql::Lit(int64_t{30})))
                       .OrderBy("e.salary")
                       .Build();
  EXPECT_EQ(built.ToString(), q->ToString());
}

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() : db_(MakePaperCatalog(0.05)), session_(&db_.catalog) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &session_.store(), gen);
    EXPECT_TRUE(r.ok()) << r.status();
  }

  /// Checks column `col` of the result rows is non-decreasing.
  static void ExpectSorted(const SessionResult& r, size_t col) {
    for (size_t i = 1; i < r.rows().size(); ++i) {
      EXPECT_LE(r.rows()[i - 1][col].Compare(r.rows()[i][col]), 0)
          << "row " << i;
    }
  }

  PaperDb db_;
  Session session_;
};

TEST_F(OrderByTest, SortEnforcerProducesOrderedRows) {
  auto r = session_.Query(
      "SELECT e.age, e.name FROM Employee e IN Employees "
      "WHERE e.age >= 40 ORDER BY e.age;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 1);
  ExpectSorted(*r, 0);
}

TEST_F(OrderByTest, OrderByUnprojectedColumnWorks) {
  // The sort key (salary) is not in the SELECT list: the sort must happen
  // below the projection, where the binding is still in scope.
  auto r = session_.Query(
      "SELECT e.name FROM Employee e IN Employees "
      "WHERE e.age >= 60 ORDER BY e.salary;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 1);
  EXPECT_GT(r->exec.rows, 0);
}

TEST_F(OrderByTest, OrderByPathLoadsComponent) {
  auto r = session_.Query(
      "SELECT c.name, c.mayor.age FROM City c IN Cities "
      "WHERE c.population >= 500000 ORDER BY c.mayor.age;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 2);
  ExpectSorted(*r, 1);
}

TEST_F(OrderByTest, IndexScanDeliversOrderWithoutSort) {
  // A narrow range on the indexed key, ordered by that key: the simple
  // index scan already emits key order — no Sort operator needed.
  auto r = session_.Query(
      "SELECT t.time, t.name FROM Task t IN Tasks "
      "WHERE t.time >= 29 ORDER BY t.time;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->exec.rows, 1);
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kIndexScan), 1)
      << r->PlanText();
  EXPECT_EQ(CountOps(*r->optimized.plan, PhysOpKind::kSort), 0)
      << r->PlanText();
  ExpectSorted(*r, 0);
}

TEST_F(OrderByTest, SortedPlanCostsMoreThanUnsorted) {
  auto unsorted = session_.Query(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  auto sorted = session_.Query(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40 "
      "ORDER BY e.name;");
  ASSERT_TRUE(unsorted.ok());
  ASSERT_TRUE(sorted.ok());
  EXPECT_GT(sorted->optimized.cost.total(), unsorted->optimized.cost.total());
  EXPECT_EQ(sorted->exec.rows, unsorted->exec.rows);
}

TEST_F(OrderByTest, BareVariableOrderByRejected) {
  EXPECT_FALSE(session_.Query(
                           "SELECT e.name FROM Employee e IN Employees "
                           "ORDER BY e;")
                   .ok());
}

TEST_F(OrderByTest, SimplifyWithoutOrderOutputRejected) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  EXPECT_FALSE(ParseAndSimplify(
                   "SELECT e.name FROM Employee e IN Employees "
                   "ORDER BY e.age;",
                   &ctx, /*order=*/nullptr)
                   .ok());
}

}  // namespace
}  // namespace oodb
