// QueryGovernor: per-query resource governance — a steady-clock deadline, a
// cooperative cancellation token, and hard budgets for optimizer search
// effort (memo groups / m-exprs / costed physical alternatives) and
// execution effort (output rows, simulated page reads, tracked buffered
// bytes). The paper concedes that full Volcano search cost grows with query
// complexity ("<1 sec on today's workstations" is a goal, not a guarantee);
// a production optimizer must bound planning and execution time and degrade
// gracefully instead of stalling. The governor is checked at the search
// engine's Explore fixpoint loop, at every OptimizeGroup entry, and at every
// executor Next() call; a trip returns a typed Status (kDeadlineExceeded,
// kBudgetExhausted, kCancelled) instead of unbounded work. A null governor
// pointer disables every check, preserving the seed behavior bit for bit.
#ifndef OODB_COMMON_GOVERNOR_H_
#define OODB_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace oodb {

/// Cross-thread cancellation handle. The issuing side calls RequestCancel();
/// the governed query observes it at its next governor check and fails with
/// kCancelled. Shareable between the controller and any number of queries.
struct CancelToken {
  std::atomic<bool> cancelled{false};

  void RequestCancel() { cancelled.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled.load(std::memory_order_relaxed);
  }
};

/// Governor configuration. Every limit defaults to "unlimited" (0), so a
/// default-constructed GovernorOptions is inert and Session takes the exact
/// seed code path.
struct GovernorOptions {
  /// Wall-clock (steady_clock) deadline for the whole query, optimization
  /// and execution combined. <= 0 disables.
  double deadline_ms = 0.0;
  /// Optimizer budgets: memo size and costed physical alternatives. 0
  /// disables each.
  int64_t max_memo_groups = 0;
  int64_t max_memo_mexprs = 0;
  int64_t max_phys_alternatives = 0;
  /// Executor budgets: output rows, simulated page reads, and bytes of
  /// tuples buffered by blocking operators (hash build / sort / nested
  /// loops / set ops). 0 disables each.
  int64_t max_exec_rows = 0;
  int64_t max_exec_pages = 0;
  int64_t max_tracked_bytes = 0;
  /// Retry budget: execution re-attempts (Session retry ladder) and
  /// partition re-executions (Exchange recovery) each charge one retry.
  /// Exceeding the budget is a terminal kBudgetExhausted. 0 disables the
  /// budget (retries are then bounded by RetryPolicy / recovery attempt
  /// caps and the deadline alone).
  int64_t max_retries = 0;
  /// Optional external cancellation; observed at every governor check.
  std::shared_ptr<CancelToken> cancel;
  /// When an *optimizer* budget or the deadline trips during planning,
  /// Session falls back to the greedy baseline planner and annotates the
  /// plan as degraded instead of failing the query. Execution-phase trips
  /// and cancellation always surface as errors.
  bool degrade_to_greedy = true;

  /// True when any limit or a cancel token is configured — i.e. when a
  /// QueryGovernor must be constructed at all.
  bool enabled() const {
    return deadline_ms > 0.0 || max_memo_groups > 0 || max_memo_mexprs > 0 ||
           max_phys_alternatives > 0 || max_exec_rows > 0 ||
           max_exec_pages > 0 || max_tracked_bytes > 0 || max_retries > 0 ||
           cancel != nullptr;
  }
};

/// Trip counters and charged-work counters, exposed on SearchStats /
/// ExecStats so callers can see why and how hard a query was throttled.
struct GovernorStats {
  int64_t deadline_trips = 0;
  int64_t budget_trips = 0;
  int64_t cancel_trips = 0;
  int64_t rows_charged = 0;
  int64_t pages_charged = 0;
  int64_t alternatives_charged = 0;
  int64_t tracked_bytes_peak = 0;
  int64_t retries_charged = 0;

  int64_t trips() const {
    return deadline_trips + budget_trips + cancel_trips;
  }
};

/// True for the status codes a governor (or fault injector) produces. Used
/// by the search engine to propagate trips out of branch-and-bound recovery
/// paths that swallow ordinary "no plan here" errors.
inline bool IsGovernorStatus(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kBudgetExhausted ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kStorageFault ||
         code == StatusCode::kWorkerFault;
}

/// One query's governor. Armed (deadline anchored) at construction; checked
/// cooperatively from the search engine and executor. Trips are sticky: once
/// a limit is exceeded every later check returns the same typed Status, so a
/// trip swallowed by an intermediate recovery path resurfaces at the next
/// checkpoint. Thread-safe: Exchange workers share one governor, so a trip
/// on any worker is observed by every other worker (and the consumer) at
/// its next checkpoint — the sticky trip drains the whole pipeline.
class QueryGovernor {
 public:
  explicit QueryGovernor(GovernorOptions options);

  // --- optimizer-side checkpoints ---

  /// Explore fixpoint checkpoint: cancellation, deadline, memo budgets.
  Status CheckSearch(int64_t memo_groups, int64_t memo_mexprs);
  /// OptimizeGroup entry checkpoint: cancellation and deadline.
  Status CheckOptimizeEntry();
  /// Charges one costed physical alternative against its budget.
  Status ChargeAlternative();

  // --- executor-side checkpoints ---

  /// Per-batch checkpoint: cancellation, deadline, simulated-page budget.
  /// `pages_read` is the store's cumulative disk-read counter.
  Status CheckExec(int64_t pages_read);
  /// Charges `n` output rows against the row budget.
  Status ChargeRows(int64_t n);
  /// Charges `bytes` of tuples buffered by a blocking operator against the
  /// tracked-memory budget (a high-water mark; buffers are not credited
  /// back on release).
  Status ChargeTrackedBytes(int64_t bytes);
  /// Charges one execution re-attempt (Session retry) or partition
  /// re-execution (Exchange recovery) against the retry budget.
  Status ChargeRetry();

  const GovernorOptions& options() const { return options_; }
  /// Snapshot of the trip/charge counters (copied under the lock).
  GovernorStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  /// Non-OK after the first trip (the sticky trip status).
  Status trip_status() const {
    MutexLock lock(mu_);
    return trip_;
  }

 private:
  /// Returns the sticky trip, or records `status` as the trip and counts
  /// it.
  Status TripLocked(Status status) REQUIRES(mu_);
  Status CheckCancelAndDeadlineLocked(const char* where) REQUIRES(mu_);

  GovernorOptions options_;
  std::chrono::steady_clock::time_point armed_at_;
  std::chrono::steady_clock::time_point deadline_;
  mutable Mutex mu_{lock_rank::kGovernor};  ///< guards everything below
  Status trip_ GUARDED_BY(mu_);  // OK until the first trip, then sticky
  int64_t rows_ GUARDED_BY(mu_) = 0;
  int64_t alternatives_ GUARDED_BY(mu_) = 0;
  int64_t tracked_bytes_ GUARDED_BY(mu_) = 0;
  int64_t retries_ GUARDED_BY(mu_) = 0;
  GovernorStats stats_ GUARDED_BY(mu_);
};

}  // namespace oodb

#endif  // OODB_COMMON_GOVERNOR_H_
