// Report plumbing + the logical-expression layer of the verifier: scalar
// type discipline, binding scoping, and operator validity over whole trees.
#include "src/verify/verify.h"

#include <sstream>

#include "src/common/strings.h"

namespace oodb {

std::string VerifyViolation::ToString() const {
  return "[" + invariant + "] at " + path + ": " + detail;
}

void VerifyReport::Add(const char* invariant_id, std::string path,
                       std::string detail) {
  violations_.push_back(
      VerifyViolation{invariant_id, std::move(path), std::move(detail)});
}

bool VerifyReport::Has(const char* invariant_id) const {
  for (const VerifyViolation& v : violations_) {
    if (v.invariant == invariant_id) return true;
  }
  return false;
}

Status VerifyReport::ToStatus() const {
  if (ok()) return Status::OK();
  std::string msg = violations_[0].ToString();
  if (violations_.size() > 1) {
    msg += " (+" + std::to_string(violations_.size() - 1) + " more)";
  }
  return Status::PlanError(std::move(msg));
}

std::string VerifyReport::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(violations_.size());
  for (const VerifyViolation& v : violations_) lines.push_back(v.ToString());
  return Join(lines, "\n");
}

const char* ScalarTypeName(ScalarType t) {
  switch (t) {
    case ScalarType::kBool:
      return "bool";
    case ScalarType::kInt:
      return "int";
    case ScalarType::kDouble:
      return "double";
    case ScalarType::kString:
      return "string";
    case ScalarType::kRef:
      return "ref";
    case ScalarType::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

bool IsNumeric(ScalarType t) {
  return t == ScalarType::kInt || t == ScalarType::kDouble;
}

}  // namespace

bool IsTruthyConstant(const ScalarExpr& expr) {
  return expr.kind() == ScalarExpr::Kind::kConst &&
         expr.value().kind == Value::Kind::kInt;
}

namespace {

/// Are two operand types comparable with `op`? kUnknown compares with
/// anything (a violation already fired where it arose, or it is a typed
/// null, which compares false at runtime rather than erring).
bool Comparable(ScalarType l, ScalarType r, CmpOp op) {
  if (l == ScalarType::kUnknown || r == ScalarType::kUnknown) return true;
  if (l == ScalarType::kBool || r == ScalarType::kBool) return false;
  if (IsNumeric(l) && IsNumeric(r)) return true;
  if (l != r) return false;
  // Same kind: strings order fine; references only support (in)equality.
  if (l == ScalarType::kRef) return op == CmpOp::kEq || op == CmpOp::kNe;
  return true;
}

}  // namespace

ScalarType CheckScalarExpr(const ScalarExpr& expr, BindingSet scope,
                           const QueryContext& ctx, const std::string& path,
                           VerifyReport* report) {
  const BindingTable& bindings = ctx.bindings;
  switch (expr.kind()) {
    case ScalarExpr::Kind::kAttr: {
      if (!bindings.has(expr.binding())) {
        report->Add(invariant::kExprBinding, path,
                    "attribute read of unknown binding id " +
                        std::to_string(expr.binding()));
        return ScalarType::kUnknown;
      }
      const BindingDef& def = bindings.def(expr.binding());
      if (!scope.Contains(expr.binding())) {
        report->Add(invariant::kExprScope, path,
                    "attribute read of binding '" + def.name +
                        "' which is not in scope");
        return ScalarType::kUnknown;
      }
      const TypeDef& type = ctx.schema().type(def.type);
      if (!type.has_field(expr.field())) {
        report->Add(invariant::kExprField, path,
                    "binding '" + def.name + "' of type " + type.name() +
                        " has no field id " + std::to_string(expr.field()));
        return ScalarType::kUnknown;
      }
      switch (type.field(expr.field()).kind) {
        case FieldKind::kInt:
          return ScalarType::kInt;
        case FieldKind::kDouble:
          return ScalarType::kDouble;
        case FieldKind::kString:
          return ScalarType::kString;
        case FieldKind::kRef:
          return ScalarType::kRef;
        case FieldKind::kRefSet:
          report->Add(invariant::kExprSetField, path,
                      "set-valued field '" + type.field(expr.field()).name +
                          "' of '" + def.name +
                          "' used in scalar position (must be Unnest-ed)");
          return ScalarType::kUnknown;
      }
      return ScalarType::kUnknown;
    }
    case ScalarExpr::Kind::kSelf: {
      if (!bindings.has(expr.binding())) {
        report->Add(invariant::kExprBinding, path,
                    "self reference to unknown binding id " +
                        std::to_string(expr.binding()));
        return ScalarType::kUnknown;
      }
      if (!scope.Contains(expr.binding())) {
        report->Add(invariant::kExprScope, path,
                    "self reference to binding '" +
                        bindings.def(expr.binding()).name +
                        "' which is not in scope");
        return ScalarType::kUnknown;
      }
      return ScalarType::kRef;
    }
    case ScalarExpr::Kind::kConst:
      switch (expr.value().kind) {
        case Value::Kind::kInt:
          return ScalarType::kInt;
        case Value::Kind::kDouble:
          return ScalarType::kDouble;
        case Value::Kind::kString:
          return ScalarType::kString;
        case Value::Kind::kNull:
          return ScalarType::kUnknown;  // typed null: comparable to anything
      }
      return ScalarType::kUnknown;
    case ScalarExpr::Kind::kCmp: {
      if (expr.children().size() != 2) {
        report->Add(invariant::kExprShape, path,
                    "comparison with " +
                        std::to_string(expr.children().size()) +
                        " operands (want 2)");
        return ScalarType::kBool;
      }
      ScalarType l =
          CheckScalarExpr(*expr.children()[0], scope, ctx, path, report);
      ScalarType r =
          CheckScalarExpr(*expr.children()[1], scope, ctx, path, report);
      if (!Comparable(l, r, expr.cmp_op())) {
        report->Add(invariant::kExprCmpType, path,
                    std::string("comparison '") + CmpOpName(expr.cmp_op()) +
                        "' of incompatible operand types " +
                        ScalarTypeName(l) + " vs " + ScalarTypeName(r));
      }
      return ScalarType::kBool;
    }
    case ScalarExpr::Kind::kAnd:
    case ScalarExpr::Kind::kOr: {
      const char* name = expr.kind() == ScalarExpr::Kind::kAnd ? "and" : "or";
      if (expr.children().empty()) {
        report->Add(invariant::kExprShape, path,
                    std::string("empty '") + name + "' expression");
      }
      for (const ScalarExprPtr& c : expr.children()) {
        ScalarType t = CheckScalarExpr(*c, scope, ctx, path, report);
        if (t != ScalarType::kBool && t != ScalarType::kUnknown &&
            !IsTruthyConstant(*c)) {
          report->Add(invariant::kExprBoolOperand, path,
                      std::string("'") + name + "' operand of type " +
                          ScalarTypeName(t) + " (want bool)");
        }
      }
      return ScalarType::kBool;
    }
    case ScalarExpr::Kind::kNot: {
      if (expr.children().size() != 1) {
        report->Add(invariant::kExprShape, path,
                    "negation with " + std::to_string(expr.children().size()) +
                        " operands (want 1)");
        return ScalarType::kBool;
      }
      ScalarType t =
          CheckScalarExpr(*expr.children()[0], scope, ctx, path, report);
      if (t != ScalarType::kBool && t != ScalarType::kUnknown) {
        report->Add(invariant::kExprBoolOperand, path,
                    std::string("'not' operand of type ") + ScalarTypeName(t) +
                        " (want bool)");
      }
      return ScalarType::kBool;
    }
  }
  return ScalarType::kUnknown;
}

namespace {

/// Checks a predicate in boolean position: well-typed and boolean-rooted.
void CheckPredicate(const ScalarExprPtr& pred, BindingSet scope,
                    const QueryContext& ctx, const std::string& path,
                    VerifyReport* report) {
  if (pred == nullptr) return;  // the op-level check reports missing preds
  ScalarType t = CheckScalarExpr(*pred, scope, ctx, path, report);
  if (t != ScalarType::kBool && t != ScalarType::kUnknown &&
      !IsTruthyConstant(*pred)) {
    report->Add(invariant::kExprPredBool, path,
                std::string("predicate of type ") + ScalarTypeName(t) +
                    " (want bool)");
  }
}

/// Bottom-up walk: validates each operator against its children's scopes
/// (LogicalOp::Validate covers scoping, Mat/Unnest catalog types, join
/// disjointness) and type-checks the operator's expressions. Returns the
/// subtree scope, best-effort even after violations.
BindingSet WalkLogical(const LogicalExpr& expr, const QueryContext& ctx,
                       const std::string& path, VerifyReport* report) {
  std::vector<BindingSet> child_scopes;
  child_scopes.reserve(expr.children.size());
  for (size_t i = 0; i < expr.children.size(); ++i) {
    std::string child_path = path + "/";
    if (expr.children.size() > 1) child_path += std::to_string(i) + ":";
    child_path += LogicalOpKindName(expr.children[i]->op.kind);
    child_scopes.push_back(
        WalkLogical(*expr.children[i], ctx, child_path, report));
  }

  if (static_cast<int>(expr.children.size()) != expr.op.Arity()) {
    report->Add(invariant::kLogicalOp, path,
                std::string(LogicalOpKindName(expr.op.kind)) + " has " +
                    std::to_string(expr.children.size()) +
                    " children (want " + std::to_string(expr.op.Arity()) +
                    ")");
    return BindingSet();
  }
  if (Status st = expr.op.Validate(ctx, child_scopes); !st.ok()) {
    report->Add(invariant::kLogicalOp, path, st.message());
  }

  BindingSet scope;
  for (const BindingSet& s : child_scopes) scope = scope.Union(s);
  switch (expr.op.kind) {
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kJoin:
      CheckPredicate(expr.op.pred, scope, ctx, path, report);
      break;
    case LogicalOpKind::kProject:
      for (const ScalarExprPtr& e : expr.op.emit) {
        if (e != nullptr) CheckScalarExpr(*e, scope, ctx, path, report);
      }
      break;
    default:
      break;
  }
  return expr.op.OutputBindings(child_scopes);
}

}  // namespace

VerifyReport VerifyExprReport(const LogicalExpr& expr,
                              const QueryContext& ctx) {
  VerifyReport report;
  WalkLogical(expr, ctx, LogicalOpKindName(expr.op.kind), &report);
  return report;
}

Status VerifyExpr(const LogicalExpr& expr, const QueryContext& ctx) {
  return VerifyExprReport(expr, ctx).ToStatus();
}

Status VerifyFusedConjuncts(const std::vector<ScalarExprPtr>& chain_preds,
                            const ScalarExprPtr& fused) {
  std::vector<ScalarExprPtr> want;
  for (const ScalarExprPtr& p : chain_preds) {
    for (ScalarExprPtr& c : ScalarExpr::SplitConjuncts(p)) {
      want.push_back(std::move(c));
    }
  }
  std::vector<ScalarExprPtr> got = ScalarExpr::SplitConjuncts(fused);
  if (want.size() != got.size()) {
    return Status::PlanError(
        std::string("[") + invariant::kPlanFusion +
        "] at Filter: fused predicate has " + std::to_string(got.size()) +
        " conjuncts, the collapsed chain had " + std::to_string(want.size()));
  }
  // Order-insensitive multiset match: every chain conjunct must appear in
  // the fused predicate exactly as many times as in the chain.
  std::vector<bool> used(got.size(), false);
  for (const ScalarExprPtr& w : want) {
    bool matched = false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (!used[i] && ExprPtrEquals(w, got[i])) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::PlanError(std::string("[") + invariant::kPlanFusion +
                               "] at Filter: fused predicate dropped or "
                               "rewrote a conjunct of the collapsed chain");
    }
  }
  return Status::OK();
}

}  // namespace oodb
