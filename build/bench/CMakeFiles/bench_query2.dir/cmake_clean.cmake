file(REMOVE_RECURSE
  "CMakeFiles/bench_query2.dir/bench_query2.cc.o"
  "CMakeFiles/bench_query2.dir/bench_query2.cc.o.d"
  "bench_query2"
  "bench_query2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
