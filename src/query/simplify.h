// Query simplification (paper §3 "Query Simplification"): translates a
// user-level ZQL query — complex arguments, path expressions, set-valued
// paths, existentially quantified nested subqueries — into an equivalent
// logical-algebra expression with *simple* operator arguments suitable as
// optimizer input:
//
//   * every single-valued path link becomes an explicit Mat operator,
//   * every set-valued path becomes Unnest followed by a Mat resolving the
//     revealed references (paper Figure 3),
//   * existential subqueries are unnested into the outer query's pipeline
//     (Muralikrishna-style; multiset semantics — an outer element joined
//     with k witnesses appears k times, as in the paper's algebra, which
//     has no duplicate-elimination operator),
//   * multiple FROM ranges are combined with constant-true joins whose real
//     predicates arrive from the WHERE clause during optimization.
#ifndef OODB_QUERY_SIMPLIFY_H_
#define OODB_QUERY_SIMPLIFY_H_

#include "src/algebra/logical_op.h"
#include "src/physical/phys_props.h"
#include "src/query/zql_ast.h"

namespace oodb {

/// Simplifies `query` into the optimizer's input algebra, creating bindings
/// in `ctx` (which must be fresh for this query). ORDER BY and LIMIT
/// clauses do not become logical operators: they are returned through
/// `order` / `limit` as the physical properties the plan root must deliver.
/// A query carrying either clause fails with a positioned diagnostic when
/// the corresponding out-parameter is null — the caller would silently drop
/// query semantics otherwise.
Result<LogicalExprPtr> SimplifyQuery(const ZqlQuery& query, QueryContext* ctx,
                                     SortSpec* order = nullptr,
                                     int64_t* limit = nullptr);

/// Parses and simplifies a textual query.
Result<LogicalExprPtr> ParseAndSimplify(const std::string& text,
                                        QueryContext* ctx,
                                        SortSpec* order = nullptr,
                                        int64_t* limit = nullptr);

}  // namespace oodb

#endif  // OODB_QUERY_SIMPLIFY_H_
