#include "src/query/zql_parser.h"

#include <algorithm>

#include "src/query/zql_lexer.h"

namespace oodb {

namespace {

bool IsKeyword(const Token& t, const char* kw) {
  if (t.kind != TokKind::kIdent) return false;
  if (t.text.size() != std::string(kw).size()) return false;
  for (size_t i = 0; i < t.text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != kw[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ZqlQueryPtr> ParseQuery() {
    OODB_ASSIGN_OR_RETURN(ZqlQueryPtr q, ParseQueryBody());
    if (Peek().kind == TokKind::kSemi) Advance();
    if (Peek().kind != TokKind::kEnd) {
      return Error("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek(int k = 0) const {
    size_t i = std::min(pos_ + k, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<ZqlQueryPtr> ParseQueryBody() {
    if (!IsKeyword(Peek(), "SELECT")) return Error("expected SELECT");
    Advance();
    auto q = std::make_shared<ZqlQuery>();
    while (true) {
      OODB_ASSIGN_OR_RETURN(ZqlExprPtr e, ParseExpr());
      q->select.push_back(std::move(e));
      if (Peek().kind != TokKind::kComma) break;
      Advance();
    }
    if (!IsKeyword(Peek(), "FROM")) return Error("expected FROM");
    Advance();
    while (true) {
      OODB_ASSIGN_OR_RETURN(ZqlRange r, ParseRange());
      q->from.push_back(std::move(r));
      if (Peek().kind != TokKind::kComma) break;
      Advance();
    }
    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      OODB_ASSIGN_OR_RETURN(q->where, ParseExpr());
    }
    if (IsKeyword(Peek(), "ORDER")) {
      q->order_by_offset = Peek().offset;
      Advance();
      if (!IsKeyword(Peek(), "BY")) return Error("expected BY after ORDER");
      Advance();
      while (true) {
        OODB_ASSIGN_OR_RETURN(std::vector<std::string> path, ParsePathSteps());
        ZqlOrderKey key;
        key.path = ZqlExpr::MakePath(std::move(path));
        if (IsKeyword(Peek(), "ASC")) {
          Advance();
        } else if (IsKeyword(Peek(), "DESC")) {
          key.desc = true;
          Advance();
        }
        q->order_by.push_back(std::move(key));
        if (Peek().kind != TokKind::kComma) break;
        Advance();
      }
    }
    if (IsKeyword(Peek(), "LIMIT")) {
      q->limit_offset = Peek().offset;
      Advance();
      if (Peek().kind != TokKind::kInt) {
        return Error("expected row count after LIMIT");
      }
      if (Peek().int_val < 1) return Error("LIMIT must be at least 1");
      q->limit = Advance().int_val;
    }
    return q;
  }

  Result<ZqlRange> ParseRange() {
    ZqlRange r;
    if (Peek().kind != TokKind::kIdent) return Error("expected type name");
    r.type_name = Advance().text;
    if (Peek().kind != TokKind::kIdent) return Error("expected range variable");
    r.var = Advance().text;
    if (!IsKeyword(Peek(), "IN")) return Error("expected IN");
    Advance();
    OODB_ASSIGN_OR_RETURN(std::vector<std::string> path, ParsePathSteps());
    if (path.size() == 1) {
      r.collection = path[0];
    } else {
      r.from_path = true;
      r.path = std::move(path);
    }
    return r;
  }

  /// ident ('(' ')')? ('.' ident ('(' ')')?)*
  Result<std::vector<std::string>> ParsePathSteps() {
    std::vector<std::string> steps;
    if (Peek().kind != TokKind::kIdent) return Error("expected identifier");
    steps.push_back(Advance().text);
    MaybeEmptyParens();
    while (Peek().kind == TokKind::kDot) {
      Advance();
      if (Peek().kind != TokKind::kIdent) {
        return Error("expected identifier after '.'");
      }
      steps.push_back(Advance().text);
      MaybeEmptyParens();
    }
    return steps;
  }

  void MaybeEmptyParens() {
    if (Peek().kind == TokKind::kLParen && Peek(1).kind == TokKind::kRParen) {
      Advance();
      Advance();
    }
  }

  Result<ZqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<ZqlExprPtr> ParseOr() {
    OODB_ASSIGN_OR_RETURN(ZqlExprPtr first, ParseAnd());
    std::vector<ZqlExprPtr> parts = {std::move(first)};
    while (Peek().kind == TokKind::kOr) {
      Advance();
      OODB_ASSIGN_OR_RETURN(ZqlExprPtr next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return ZqlExpr::MakeOr(std::move(parts));
  }

  Result<ZqlExprPtr> ParseAnd() {
    OODB_ASSIGN_OR_RETURN(ZqlExprPtr first, ParseUnary());
    std::vector<ZqlExprPtr> parts = {std::move(first)};
    while (Peek().kind == TokKind::kAnd) {
      Advance();
      OODB_ASSIGN_OR_RETURN(ZqlExprPtr next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return ZqlExpr::MakeAnd(std::move(parts));
  }

  Result<ZqlExprPtr> ParseUnary() {
    if (Peek().kind == TokKind::kNot) {
      Advance();
      OODB_ASSIGN_OR_RETURN(ZqlExprPtr inner, ParseUnary());
      return ZqlExpr::MakeNot(std::move(inner));
    }
    return ParseComparison();
  }

  Result<ZqlExprPtr> ParseComparison() {
    OODB_ASSIGN_OR_RETURN(ZqlExprPtr left, ParsePrimary());
    CmpOp op;
    switch (Peek().kind) {
      case TokKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return left;
    }
    Advance();
    OODB_ASSIGN_OR_RETURN(ZqlExprPtr right, ParsePrimary());
    return ZqlExpr::MakeCmp(op, std::move(left), std::move(right));
  }

  Result<ZqlExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kLParen: {
        Advance();
        OODB_ASSIGN_OR_RETURN(ZqlExprPtr inner, ParseExpr());
        if (Peek().kind != TokKind::kRParen) return Error("expected ')'");
        Advance();
        return inner;
      }
      case TokKind::kInt: {
        int64_t v = Advance().int_val;
        return ZqlExpr::MakeLiteral(Value::Int(v));
      }
      case TokKind::kDouble: {
        double v = Advance().dbl_val;
        return ZqlExpr::MakeLiteral(Value::Double(v));
      }
      case TokKind::kString: {
        std::string v = Advance().text;
        return ZqlExpr::MakeLiteral(Value::Str(std::move(v)));
      }
      case TokKind::kIdent: {
        if (IsKeyword(t, "EXISTS")) {
          Advance();
          if (Peek().kind != TokKind::kLParen) {
            return Error("expected '(' after EXISTS");
          }
          Advance();
          OODB_ASSIGN_OR_RETURN(ZqlQueryPtr sub, ParseQueryBody());
          if (Peek().kind != TokKind::kRParen) {
            return Error("expected ')' after subquery");
          }
          Advance();
          return ZqlExpr::MakeExists(std::move(sub));
        }
        OODB_ASSIGN_OR_RETURN(std::vector<std::string> steps, ParsePathSteps());
        return ZqlExpr::MakePath(std::move(steps));
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ZqlQueryPtr> ParseZql(const std::string& input) {
  OODB_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexZql(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace oodb
