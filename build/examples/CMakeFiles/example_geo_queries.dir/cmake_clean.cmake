file(REMOVE_RECURSE
  "CMakeFiles/example_geo_queries.dir/geo_queries.cpp.o"
  "CMakeFiles/example_geo_queries.dir/geo_queries.cpp.o.d"
  "example_geo_queries"
  "example_geo_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
