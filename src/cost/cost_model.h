// Cost ADT and cost-model constants (paper §3 "Cost Model"): CPU and I/O
// costs, with sequential I/O charged less than random I/O and assembly's
// I/O discounted because its elevator pattern minimizes seek distances.
// All constants live in one options struct so that tuning a formula is "a
// very localized change", as the paper puts it.
#ifndef OODB_COST_COST_MODEL_H_
#define OODB_COST_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "src/catalog/catalog.h"

namespace oodb {

/// Tunable constants of the cost model. Defaults are calibrated so that the
/// paper's plan-choice crossovers are preserved (EXPERIMENTS.md records the
/// resulting estimates next to the paper's numbers).
struct CostModelOptions {
  int64_t page_size = 4096;

  // --- I/O ---
  double random_io_s = 0.020;  ///< one random page fault
  double seq_io_s = 0.004;     ///< one page of a sequential scan

  // --- CPU (1993-workstation scale: ~25 MHz, interpreted predicate
  // evaluation and function-call-heavy tuple handling) ---
  double cpu_scan_tuple_s = 5.0e-4; ///< produce one tuple from a scan
  double cpu_pred_s = 5.0e-4;       ///< evaluate one predicate on one tuple
  double cpu_hash_build_s = 1.5e-3; ///< insert one tuple into a hash table
  double cpu_hash_probe_s = 1.5e-3; ///< probe one tuple
  double cpu_unnest_s = 2.0e-4;     ///< per produced set element
  double cpu_copy_byte_s = 4.0e-8;  ///< copy/construct output bytes
  double cpu_deref_s = 2.0e-4;      ///< swizzle/resolve one reference

  // --- Index scans ---
  double index_probe_s = 0.040;  ///< B-tree descent (a couple of random I/Os)
  double index_leaf_s = 2.0e-4;  ///< per matching leaf entry

  // --- Assembly ---
  /// Large-window seek-cost discount factor: with an unbounded window the
  /// elevator pattern reduces a fault to this fraction of a random I/O.
  double assembly_window_discount_floor = 0.55;
  /// Default open-reference window size (paper's w/o-window ablation sets 1).
  int assembly_window = 32;
  /// Estimate assembly faults with Yao's distinct-page formula instead of
  /// the paper's simple population bound (future-work refinement: "more
  /// accurate cost estimation" from clustering statistics). Off by default
  /// to match the paper's model.
  bool yao_page_faults = false;

  /// Memory available to hash tables; hybrid hash join spills beyond this.
  double memory_bytes = 8.0 * 1024 * 1024;

  // --- Batch execution and Exchange (Volcano-style parallelism) ---
  /// Rows per execution batch (the exec_batch_size knob). Operators amortize
  /// per-call dispatch, clock updates, and governor checkpoints over this
  /// many rows.
  int exec_batch_size = 1024;
  /// Per-batch overhead of one operator Next() call (virtual dispatch plus
  /// batch bookkeeping); divided by exec_batch_size it yields the per-tuple
  /// iteration overhead the batch refactor amortizes away.
  double cpu_batch_overhead_s = 2.0e-4;
  /// Spawning/joining one Exchange worker thread (plan startup term).
  double exchange_startup_s = 2.0e-3;
  /// Moving one tuple through an Exchange cross-thread batch queue.
  double exchange_flow_tuple_s = 1.0e-5;
  /// Columnar execution: smallest batch (live rows) worth extracting typed
  /// column views for; smaller batches take the per-row filter path.
  /// Wall-clock tuning only — simulated charges don't depend on it.
  int vector_extract_min_rows = 16;
};

/// A query-plan cost: I/O seconds + CPU seconds. Compared by total.
struct Cost {
  double io_s = 0.0;
  double cpu_s = 0.0;

  double total() const { return io_s + cpu_s; }

  Cost operator+(const Cost& o) const { return {io_s + o.io_s, cpu_s + o.cpu_s}; }
  Cost& operator+=(const Cost& o) {
    io_s += o.io_s;
    cpu_s += o.cpu_s;
    return *this;
  }
  bool operator<(const Cost& o) const { return total() < o.total(); }

  static Cost Io(double s) { return {s, 0.0}; }
  static Cost Cpu(double s) { return {0.0, s}; }
  static Cost Infinite();

  std::string ToString() const;
};

/// Cost-formula helpers shared by the algorithm cost functions.
class CostModel {
 public:
  explicit CostModel(CostModelOptions opts = {}) : opts_(opts) {}

  const CostModelOptions& opts() const { return opts_; }
  CostModelOptions& mutable_opts() { return opts_; }

  /// Pages occupied by `card` objects of `type`, densely packed.
  double PagesFor(const Catalog& catalog, TypeId type, double card) const;

  /// Sequentially scanning `pages` pages.
  Cost SeqRead(double pages) const { return Cost::Io(pages * opts_.seq_io_s); }

  /// `faults` random page faults.
  Cost RandomRead(double faults) const {
    return Cost::Io(faults * opts_.random_io_s);
  }

  /// Seek-discount factor for an assembly window of `window` open
  /// references: 1.0 at window 1 (degenerates to naive pointer lookups),
  /// approaching the floor as the window grows (elevator pattern).
  double AssemblyDiscount(int window) const;

  /// I/O cost of assembling `n_refs` references to objects of `type`. When
  /// the catalog knows the type's population (an extent exists), the number
  /// of faults is bounded by the extent's pages (every page is read at most
  /// once under the elevator pattern); otherwise every reference may fault —
  /// the paper's Plant situation.
  Cost AssemblyIo(const Catalog& catalog, TypeId type, double n_refs,
                  int window) const;

  /// CPU cost of building and probing a hash table.
  Cost HashJoinCpu(double build_tuples, double probe_tuples) const;

  /// I/O overflow cost of hybrid hash join when the build side exceeds
  /// memory: spilled fraction is written and re-read sequentially.
  Cost HashJoinOverflowIo(double build_bytes, double probe_bytes) const;

 private:
  CostModelOptions opts_;
};

}  // namespace oodb

#endif  // OODB_COST_COST_MODEL_H_
