#include "src/catalog/paper_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oodb {

namespace {

void Check(const Status& s) {
  assert(s.ok());
  (void)s;
}

FieldDef Scalar(std::string name, FieldKind kind, int32_t size,
                int64_t distinct, int64_t min_value = 0,
                int64_t max_value = 0) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = kind;
  f.avg_size = size;
  f.distinct_values = distinct;
  f.min_value = min_value;
  f.max_value = max_value;
  return f;
}

FieldDef Ref(std::string name, TypeId target) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kRef;
  f.target_type = target;
  f.avg_size = 8;
  return f;
}

FieldDef RefSet(std::string name, TypeId target, double avg_card) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kRefSet;
  f.target_type = target;
  f.avg_size = static_cast<int32_t>(8 * avg_card);
  f.avg_set_card = avg_card;
  return f;
}

}  // namespace

PaperDb MakePaperCatalog(double scale) {
  assert(scale > 0);
  auto n = [scale](int64_t full) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(full * scale)));
  };

  PaperDb db;
  Schema& s = db.catalog.schema();

  // --- Types, with object sizes from Table 1. ---
  db.person = s.AddType("Person", 100);
  db.country = s.AddType("Country", 300);
  db.city = s.AddType("City", 200);
  db.capital = s.AddType("Capital", 400);
  db.plant = s.AddType("Plant", 1000);
  db.department = s.AddType("Department", 400);
  db.job = s.AddType("Job", 250);
  db.employee = s.AddType("Employee", 250);
  db.information = s.AddType("Information", 400);
  db.task = s.AddType("Task", 100);

  // --- Fields. Distinct counts drive index-assisted selectivity:
  // 10000 Cities / 5000 distinct mayor names -> the paper's "only 2 cities
  // have mayors named Joe"; 12000 Tasks / 600 distinct completion times ->
  // 20 tasks with time == 100.
  TypeDef& person = s.mutable_type(db.person);
  db.person_name =
      person.AddField(Scalar("name", FieldKind::kString, 24, n(5000)));
  db.person_age = person.AddField(Scalar("age", FieldKind::kInt, 8, 70, 20, 90));

  TypeDef& country = s.mutable_type(db.country);
  db.country_name =
      country.AddField(Scalar("name", FieldKind::kString, 24, n(160)));
  db.country_president = country.AddField(Ref("president", db.person));

  TypeDef& city = s.mutable_type(db.city);
  db.city_name = city.AddField(Scalar("name", FieldKind::kString, 24, n(9000)));
  db.city_mayor = city.AddField(Ref("mayor", db.person));
  db.city_country = city.AddField(Ref("country", db.country));
  db.city_population =
      city.AddField(
      Scalar("population", FieldKind::kInt, 8, n(8000), 10000, 1010000));

  Check(s.InheritFields(db.capital, db.city));

  TypeDef& plant = s.mutable_type(db.plant);
  db.plant_name = plant.AddField(Scalar("name", FieldKind::kString, 24, n(100)));
  db.plant_location =
      plant.AddField(Scalar("location", FieldKind::kString, 16, 50));
  db.plant_products =
      plant.AddField(Scalar("products", FieldKind::kString, 900, 0));

  TypeDef& dept = s.mutable_type(db.department);
  db.dept_name = dept.AddField(Scalar("name", FieldKind::kString, 24, n(1000)));
  db.dept_plant = dept.AddField(Ref("plant", db.plant));
  db.dept_floor = dept.AddField(Scalar("floor", FieldKind::kInt, 8, 10, 1, 10));

  TypeDef& job = s.mutable_type(db.job);
  db.job_name = job.AddField(Scalar("name", FieldKind::kString, 24, n(5000)));

  TypeDef& emp = s.mutable_type(db.employee);
  db.emp_name = emp.AddField(Scalar("name", FieldKind::kString, 24, n(475)));
  db.emp_age = emp.AddField(Scalar("age", FieldKind::kInt, 8, 50, 20, 70));
  db.emp_salary =
      emp.AddField(Scalar("salary", FieldKind::kDouble, 8, n(2000)));
  db.emp_last_raise =
      emp.AddField(Scalar("last_raise", FieldKind::kInt, 8, n(1500), 0, 1500));
  db.emp_dept = emp.AddField(Ref("dept", db.department));
  db.emp_job = emp.AddField(Ref("job", db.job));

  TypeDef& info = s.mutable_type(db.information);
  db.info_text = info.AddField(Scalar("text", FieldKind::kString, 380, 0));

  TypeDef& task = s.mutable_type(db.task);
  db.task_name = task.AddField(Scalar("name", FieldKind::kString, 24, n(12000)));
  db.task_time = task.AddField(Scalar("time", FieldKind::kInt, 8, n(600), 1, n(600)));
  db.task_team_members =
      task.AddField(RefSet("team_members", db.employee, 5.0));

  // --- Collections (Table 1). ---
  Check(db.catalog.AddSet("Capitals", db.capital, n(160)));
  Check(db.catalog.AddSet("Cities", db.city, n(10000)));
  Check(db.catalog.AddExtent(db.country, n(160)));
  Check(db.catalog.AddExtent(db.department, n(1000)));
  Check(db.catalog.AddSet("Employees", db.employee, n(50000)));
  Check(db.catalog.AddExtent(db.employee, n(200000)));
  Check(db.catalog.AddExtent(db.information, n(1000)));
  Check(db.catalog.AddExtent(db.job, n(5000)));
  Check(db.catalog.AddExtent(db.person, n(100000)));
  // Plant: no set, no extent -> TypeCardinality(plant) is unknown, exactly
  // the situation that blows up the naive Query 1 plan in the paper.
  Check(db.catalog.AddSet("Tasks", db.task, n(12000)));
  Check(db.catalog.AddExtent(db.task, n(100000)));

  // --- Indexes used by the Section 4 experiments. ---
  {
    IndexInfo idx;
    idx.name = kIdxCitiesMayorName;
    idx.collection = CollectionId::Set("Cities", db.city);
    idx.path = {db.city_mayor, db.person_name};
    idx.distinct_keys = n(5000);
    Check(db.catalog.AddIndex(idx));
  }
  {
    IndexInfo idx;
    idx.name = kIdxTasksTime;
    idx.collection = CollectionId::Set("Tasks", db.task);
    idx.path = {db.task_time};
    idx.distinct_keys = n(600);
    Check(db.catalog.AddIndex(idx));
  }
  {
    // Registered over the Employee extent: references revealed by unnesting
    // task.team_members resolve against the type's whole population, so the
    // Mat -> Join rewrite joins the extent and this is the index that can
    // serve it (paper Figure 13's "Index Scan Employees").
    IndexInfo idx;
    idx.name = kIdxEmployeesName;
    idx.collection = CollectionId::Extent(db.employee);
    idx.path = {db.emp_name};
    idx.distinct_keys = n(475);
    Check(db.catalog.AddIndex(idx));
  }

  return db;
}

}  // namespace oodb
