// Simulated disk: tracks page reads, classifies them as sequential or
// random by arm position, and accumulates simulated elapsed time using the
// same timing constants as the optimizer's cost model — so optimizer
// estimates can be validated against "measured" execution behaviour.
#ifndef OODB_STORAGE_DISK_MODEL_H_
#define OODB_STORAGE_DISK_MODEL_H_

#include <cstdint>

#include "src/cost/cost_model.h"

namespace oodb {

using PageId = int64_t;
inline constexpr PageId kInvalidPage = -1;

/// Accumulates simulated I/O and CPU time during execution.
struct SimClock {
  double io_s = 0.0;
  double cpu_s = 0.0;

  double total() const { return io_s + cpu_s; }
  void Reset() { io_s = cpu_s = 0.0; }
};

/// The disk-arm model. A read of page p is *sequential* if p immediately
/// follows the previous read (or re-reads it), otherwise *random*. Assembly's
/// elevator pattern benefits automatically: refs sorted by page produce
/// short forward seeks which are charged an interpolated cost.
class DiskModel {
 public:
  DiskModel(const CostModelOptions* timing, SimClock* clock)
      : timing_(timing), clock_(clock) {}

  /// Records a physical read of `page`.
  void Read(PageId page);

  int64_t reads() const { return seq_reads_ + random_reads_; }
  int64_t seq_reads() const { return seq_reads_; }
  int64_t random_reads() const { return random_reads_; }
  PageId position() const { return position_; }

  void Reset() {
    seq_reads_ = random_reads_ = 0;
    position_ = kInvalidPage;
  }

 private:
  const CostModelOptions* timing_;
  SimClock* clock_;
  PageId position_ = kInvalidPage;
  int64_t seq_reads_ = 0;
  int64_t random_reads_ = 0;
};

}  // namespace oodb

#endif  // OODB_STORAGE_DISK_MODEL_H_
