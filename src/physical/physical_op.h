// The physical algebra: the execution algorithms of the Open OODB engine
// (paper §3 "Execution Algorithms"): file and index scans, filter, hybrid
// hash join, pointer-based join, complex-object assembly (also the enforcer
// of presence-in-memory), Alg-Project, Alg-Unnest, hash-based set matching,
// plus Sort and MergeJoin extension algorithms.
#ifndef OODB_PHYSICAL_PHYSICAL_OP_H_
#define OODB_PHYSICAL_PHYSICAL_OP_H_

#include <string>
#include <vector>

#include "src/physical/phys_props.h"

namespace oodb {

enum class PhysOpKind {
  kFileScan,       ///< sequential scan of a set/extent
  kIndexScan,      ///< (path-)index scan with a key predicate + residual
  kFilter,         ///< predicate evaluation on loaded components
  kHybridHashJoin, ///< value-based set matching
  kPointerJoin,    ///< per-tuple pointer dereference join (Shekita/Carey)
  kAssembly,       ///< windowed complex-object assembly (Keller et al.)
  kAlgProject,     ///< output construction
  kAlgUnnest,      ///< set-valued field expansion
  kHashUnion,      ///< hash-based duplicate-eliminating union
  kHashIntersect,  ///< hash-based intersection
  kHashDifference, ///< hash-based difference
  kSort,           ///< sort enforcer (extension)
  kTopK,           ///< bounded-heap top-k: ORDER BY ... LIMIT enforcer
  kMergeJoin,      ///< merge join on sorted inputs (extension)
  kNestedLoops,    ///< nested-loops join (cartesian-capable fallback)
  kExchange,       ///< Volcano exchange: intra-query parallelism (extension)
};

const char* PhysOpKindName(PhysOpKind kind);

/// One component-materialization step performed by Assembly / PointerJoin:
/// load the object referenced by `source`.`field` (or by the bare-reference
/// binding `source` when field == kInvalidField) as `target`.
struct MatStep {
  BindingId source = kInvalidBinding;
  FieldId field = kInvalidField;
  BindingId target = kInvalidBinding;

  bool operator==(const MatStep& o) const {
    return source == o.source && field == o.field && target == o.target;
  }
};

/// A physical operator (without children). Fields are a union over operator
/// kinds, mirroring LogicalOp.
struct PhysicalOp {
  PhysOpKind kind = PhysOpKind::kFileScan;

  // kFileScan / kIndexScan
  CollectionId coll;
  BindingId binding = kInvalidBinding;

  // kIndexScan
  std::string index_name;
  ScalarExprPtr index_pred;  ///< the key-equality conjunct the index answers

  // kFilter residual / join predicates (kHybridHashJoin, kPointerJoin,
  // kMergeJoin); also the residual predicate of kIndexScan.
  ScalarExprPtr pred;

  // kAssembly / kPointerJoin: component steps to materialize.
  std::vector<MatStep> mats;
  /// Assembly window (0 = cost-model default). The paper's "w/o window"
  /// ablation forces 1.
  int window = 0;
  /// Warm-start assembly (paper Lesson 7 extension): pre-scan the referenced
  /// population sequentially into memory before assembling.
  bool warm_start = false;

  // kAlgProject
  std::vector<ScalarExprPtr> emit;

  // kAlgUnnest
  BindingId source = kInvalidBinding;
  FieldId field = kInvalidField;
  BindingId target = kInvalidBinding;

  // kSort / kTopK / kMergeJoin; also the merge order of an order-preserving
  // kExchange (op.merge below).
  SortSpec sort;
  /// kSort / kTopK: leading keys of `sort` the input already arrives sorted
  /// by. A partial sort only orders within runs of equal prefix values; a
  /// TopK with sort_prefix == sort.size() degenerates to a streaming cutoff.
  int sort_prefix = 0;
  /// kTopK / kExchange: keep only the first `limit` rows in `sort` order
  /// (0 = unbounded). On a merging Exchange the bound is also pushed down
  /// to each producer via the TopK in the worker template.
  int64_t limit = 0;

  // kExchange: degree of parallelism (worker count) and, within the child
  // template, which descendant scan each worker partitions round-robin.
  int dop = 1;
  /// Binding of the partitioned driver scan (display/fingerprint only; the
  /// planner re-locates the scan node when building workers).
  BindingId partition_binding = kInvalidBinding;
  /// Order-preserving Exchange: each worker's partition stream arrives
  /// sorted (per-partition sorted runs) and the consumer merges them with a
  /// loser tree instead of interleaving, preserving `sort`.
  bool merge = false;

  std::string ToString(const QueryContext& ctx) const;
};

}  // namespace oodb

#endif  // OODB_PHYSICAL_PHYSICAL_OP_H_
