// Company-domain workload: the motivating scenario of the paper's Query 1 —
// employees, departments, plants, jobs, tasks. Shows path-expression
// optimization (Mat -> Join, reverse link traversal), existential
// subqueries, and explicit joins, each optimized and executed.
#include <cstdio>

#include "src/oodb.h"

using namespace oodb;

namespace {

void RunQuery(const PaperDb& db, ObjectStore* store, const char* title,
              const char* text) {
  std::printf("\n==== %s ====\n%s\n", title, text);
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  if (!logical.ok()) {
    std::printf("  simplify error: %s\n", logical.status().ToString().c_str());
    return;
  }
  Optimizer optimizer(&db.catalog);
  auto optimized = optimizer.Optimize(**logical, &ctx);
  if (!optimized.ok()) {
    std::printf("  optimize error: %s\n",
                optimized.status().ToString().c_str());
    return;
  }
  std::printf("plan (cost %.3f s):\n%s", optimized->cost.total(),
              PrintPlan(*optimized->plan, ctx).c_str());
  auto stats = ExecutePlan(*optimized->plan, store, &ctx);
  if (!stats.ok()) {
    std::printf("  execute error: %s\n", stats.status().ToString().c_str());
    return;
  }
  std::printf("-> %lld rows (simulated %.3f s)",
              static_cast<long long>(stats->rows), stats->sim_total_s());
  if (!stats->sample_rows.empty()) {
    std::printf(", e.g.");
    for (size_t i = 0; i < std::min<size_t>(2, stats->sample_rows.size()); ++i) {
      std::printf(" (");
      for (size_t j = 0; j < stats->sample_rows[i].size(); ++j) {
        std::printf("%s%s", j ? ", " : "",
                    stats->sample_rows[i][j].ToString().c_str());
      }
      std::printf(")");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog(/*scale=*/0.05);
  ObjectStore store(&db.catalog);
  auto data = GeneratePaperData(db, &store);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }

  RunQuery(db, &store, "Employees working in a Dallas plant (paper Query 1)",
           "SELECT e.name, e.job.name, e.dept.name "
           "FROM Employee e IN Employees "
           "WHERE e.dept.plant.location == \"Dallas\";");

  RunQuery(db, &store, "Senior employees on floor 3 (explicit join)",
           "SELECT e.name, d.name "
           "FROM Employee e IN Employees, Department d IN Department "
           "WHERE e.dept == d && d.floor == 3 && e.age >= 45;");

  RunQuery(db, &store, "Tasks with a team member named Fred (EXISTS)",
           "SELECT t.name FROM Task t IN Tasks "
           "WHERE t.time == 7 && EXISTS (SELECT m FROM Employee m IN "
           "t.team_members WHERE m.name == \"Fred\");");

  RunQuery(db, &store, "Task rosters via a set-valued path range",
           "SELECT t.name, m.name "
           "FROM Task t IN Tasks, Employee m IN t.team_members "
           "WHERE t.time == 3;");

  RunQuery(db, &store, "Well-paid employees by job (reverse link traversal)",
           "SELECT e.name, e.job.name FROM Employee e IN Employees "
           "WHERE e.job.name == \"Job7\" && e.salary >= 100000.0;");
  return 0;
}
