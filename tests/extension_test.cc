// Tests of the extension features demonstrating the framework's
// extensibility claims: warm-start assembly (paper Lesson 7) and the
// sort-order physical property with Sort enforcer + merge join.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

using testing::PlanContains;

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest() : db_(MakePaperCatalog()) {}
  PaperDb db_;
};

TEST_F(ExtensionTest, WarmStartImprovesPointerChasingPlans) {
  // Query 1 without join rules: the dept/job assemblies over 50000
  // employees can warm-start (their populations have extents); plants
  // cannot (no extent).
  OptimizerOptions base;
  base.disabled_rules = {kRuleJoinCommute, kRuleMatToJoin};
  QueryContext ctx1;
  OptimizedQuery plain = testing::MustOptimize(1, db_, &ctx1, base);

  OptimizerOptions warm = base;
  warm.enable_warm_start_assembly = true;
  QueryContext ctx2;
  OptimizedQuery warmed = testing::MustOptimize(1, db_, &ctx2, warm);

  EXPECT_LT(warmed.cost.total(), plain.cost.total());
  EXPECT_TRUE(PlanContains(*warmed.plan, ctx2, "[warm-start]"));
}

TEST_F(ExtensionTest, WarmStartNeverWorsensPaperQueries) {
  for (int n : {1, 2, 3, 4}) {
    QueryContext c1, c2;
    OptimizedQuery off = testing::MustOptimize(n, db_, &c1);
    OptimizerOptions opts;
    opts.enable_warm_start_assembly = true;
    OptimizedQuery on = testing::MustOptimize(n, db_, &c2, opts);
    EXPECT_LE(on.cost.total(), off.cost.total() + 1e-9) << "query " << n;
  }
}

TEST_F(ExtensionTest, MergeJoinNeverWorsensPaperQueries) {
  for (int n : {1, 2, 3, 4}) {
    QueryContext c1, c2;
    OptimizedQuery off = testing::MustOptimize(n, db_, &c1);
    OptimizerOptions opts;
    opts.enable_merge_join = true;
    OptimizedQuery on = testing::MustOptimize(n, db_, &c2, opts);
    EXPECT_LE(on.cost.total(), off.cost.total() + 1e-9) << "query " << n;
  }
}

TEST_F(ExtensionTest, SortEnforcerEnablesMergeJoinWhenHashDisabled) {
  // A value-based join (employee name == person name). With hash join and
  // pointer join disabled and merge join enabled, the only implementation
  // is MergeJoin over Sort-enforced inputs.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto logical = ParseAndSimplify(
      "SELECT e.name FROM Employee e IN Employees, Country n IN Country "
      "WHERE e.name == n.name;",
      &ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();

  OptimizerOptions opts;
  opts.enable_merge_join = true;
  opts.disabled_rules = {kImplHybridHashJoin, kImplPointerJoin};
  Optimizer opt(&db_.catalog, opts);
  auto r = opt.Optimize(**logical, &ctx);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(CountOps(*r->plan, PhysOpKind::kMergeJoin), 1);
  EXPECT_EQ(CountOps(*r->plan, PhysOpKind::kSort), 2);
}

TEST_F(ExtensionTest, WithoutMergeJoinValueJoinNeedsHash) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto logical = ParseAndSimplify(
      "SELECT e.name FROM Employee e IN Employees, Country n IN Country "
      "WHERE e.name == n.name;",
      &ctx);
  ASSERT_TRUE(logical.ok());
  OptimizerOptions opts;
  opts.disabled_rules = {kImplHybridHashJoin, kImplPointerJoin,
                         kImplNestedLoops};
  Optimizer opt(&db_.catalog, opts);
  // No join implementation remains: planning fails...
  EXPECT_FALSE(opt.Optimize(**logical, &ctx).ok());
  // ...until the merge-join extension supplies one.
  opts.enable_merge_join = true;
  Optimizer with_merge(&db_.catalog, opts);
  EXPECT_TRUE(with_merge.Optimize(**logical, &ctx).ok());
}

TEST_F(ExtensionTest, MergeJoinPlanExecutesCorrectly) {
  PaperDb db = MakePaperCatalog(0.02);
  ObjectStore store(&db.catalog);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db, &store, gen).ok());

  const char* text =
      "SELECT e.name, d.name FROM Employee e IN Employees, "
      "Department d IN Department WHERE e.dept == d && d.floor == 3;";

  auto run = [&](OptimizerOptions opts) {
    QueryContext ctx;
    ctx.catalog = &db.catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    EXPECT_TRUE(logical.ok());
    Optimizer opt(&db.catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    auto stats = ExecutePlan(*planned->plan, &store, &ctx);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows : -1;
  };

  int64_t hash_rows = run({});
  // Note: ref==self joins cannot be merge-joined (the key is an OID, which
  // Sort cannot order by attribute) — but value joins can. Use a value join.
  const char* value_join =
      "SELECT e.name FROM Employee e IN Employees, Country n IN Country "
      "WHERE e.name == n.name;";
  auto run2 = [&](OptimizerOptions opts) {
    QueryContext ctx;
    ctx.catalog = &db.catalog;
    auto logical = ParseAndSimplify(value_join, &ctx);
    EXPECT_TRUE(logical.ok());
    Optimizer opt(&db.catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    auto stats = ExecutePlan(*planned->plan, &store, &ctx);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows : -1;
  };
  OptimizerOptions merge_only;
  merge_only.enable_merge_join = true;
  merge_only.disabled_rules = {kImplHybridHashJoin, kImplPointerJoin};
  EXPECT_EQ(run2(merge_only), run2({}));
  EXPECT_GE(hash_rows, 0);
}

TEST_F(ExtensionTest, WarmStartExecutionMatchesPlain) {
  PaperDb db = MakePaperCatalog(0.02);
  ObjectStore store(&db.catalog);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db, &store, gen).ok());

  auto run = [&](bool warm) {
    QueryContext ctx;
    ctx.catalog = &db.catalog;
    auto logical = ParseAndSimplify(kQuery1Text, &ctx);
    EXPECT_TRUE(logical.ok());
    OptimizerOptions opts;
    opts.disabled_rules = {kRuleJoinCommute, kRuleMatToJoin};
    opts.enable_warm_start_assembly = warm;
    Optimizer opt(&db.catalog, opts);
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    auto stats = ExecutePlan(*planned->plan, &store, &ctx);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows : -1;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace oodb
