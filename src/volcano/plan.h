// Query evaluation plans: trees of physical operators with delivered
// physical properties and anticipated costs, as produced by the search
// engine and consumed by the execution engine.
#ifndef OODB_VOLCANO_PLAN_H_
#define OODB_VOLCANO_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/logical_props.h"
#include "src/cost/cost_model.h"
#include "src/physical/physical_op.h"

namespace oodb {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// One node of a physical plan.
struct PlanNode {
  PhysicalOp op;
  std::vector<PlanNodePtr> children;

  /// Logical properties of the implemented expression.
  LogicalProps logical;
  /// Physical properties this subtree delivers.
  PhysProps delivered;
  /// Cost of this operator alone / of the whole subtree.
  Cost local_cost;
  Cost total_cost;

  static PlanNodePtr Make(PhysicalOp op, std::vector<PlanNodePtr> children,
                          LogicalProps logical, PhysProps delivered,
                          Cost local_cost);
};

/// Renders a plan in the paper's figure style (root first, children
/// indented), optionally annotating each node with cost and cardinality.
std::string PrintPlan(const PlanNode& plan, const QueryContext& ctx,
                      bool with_costs = false);

/// Flattens a plan to a list of operator display strings (preorder), used by
/// tests asserting plan shapes.
std::vector<std::string> PlanOpStrings(const PlanNode& plan,
                                       const QueryContext& ctx);

/// Counts operators of `kind` in the plan.
int CountOps(const PlanNode& plan, PhysOpKind kind);

/// Rebinds the row limit of a cached plan to a new query's LIMIT value:
/// clones the root spine of limit-carrying operators (TopK, merging
/// Exchange, Alg-Project relaying a limited delivery) with `limit`
/// substituted into op.limit / delivered.limit wherever the old value was
/// set. Costs are left as the cache representative's, matching literal
/// parameterization semantics. Returns `plan` unchanged when it carries no
/// limit or `limit` equals the cached value.
PlanNodePtr RebindPlanLimit(PlanNodePtr plan, int64_t limit);

}  // namespace oodb

#endif  // OODB_VOLCANO_PLAN_H_
