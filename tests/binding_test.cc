#include <gtest/gtest.h>

#include "src/algebra/binding.h"

namespace oodb {
namespace {

TEST(BindingSetTest, EmptyByDefault) {
  BindingSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_FALSE(s.Contains(0));
}

TEST(BindingSetTest, AddRemoveContains) {
  BindingSet s;
  s.Add(3);
  s.Add(7);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(BindingSetTest, SetAlgebra) {
  BindingSet a = BindingSet::Of(1);
  a.Add(2);
  BindingSet b = BindingSet::Of(2);
  b.Add(3);
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersect(b).Count(), 1);
  EXPECT_TRUE(a.Intersect(b).Contains(2));
  EXPECT_EQ(a.Minus(b).Count(), 1);
  EXPECT_TRUE(a.Minus(b).Contains(1));
}

TEST(BindingSetTest, ContainsAllAndIntersects) {
  BindingSet a;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  BindingSet b;
  b.Add(1);
  b.Add(3);
  EXPECT_TRUE(a.ContainsAll(b));
  EXPECT_FALSE(b.ContainsAll(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(b.Intersects(BindingSet::Of(9)));
  EXPECT_TRUE(a.ContainsAll(BindingSet()));  // empty set is subset of all
}

TEST(BindingSetTest, ToVectorOrdered) {
  BindingSet s;
  s.Add(9);
  s.Add(0);
  s.Add(4);
  EXPECT_EQ(s.ToVector(), (std::vector<BindingId>{0, 4, 9}));
}

TEST(BindingSetTest, EqualityAndOrdering) {
  BindingSet a = BindingSet::Of(1);
  BindingSet b = BindingSet::Of(1);
  BindingSet c = BindingSet::Of(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c);
}

TEST(BindingSetTest, HighBits) {
  BindingSet s;
  s.Add(63);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.ToVector(), (std::vector<BindingId>{63}));
}

TEST(BindingTableTest, AddGet) {
  BindingTable t;
  BindingId c = t.AddGet("c", 2);
  EXPECT_EQ(c, 0);
  EXPECT_EQ(t.def(c).name, "c");
  EXPECT_EQ(t.def(c).type, 2);
  EXPECT_EQ(t.def(c).origin, BindingOrigin::kGet);
  EXPECT_FALSE(t.def(c).is_ref);
  EXPECT_EQ(t.size(), 1);
}

TEST(BindingTableTest, AddMatRecordsDerivation) {
  BindingTable t;
  BindingId c = t.AddGet("c", 2);
  BindingId m = t.AddMat("c.mayor", 0, c, 1);
  EXPECT_EQ(t.def(m).origin, BindingOrigin::kMat);
  EXPECT_EQ(t.def(m).parent, c);
  EXPECT_EQ(t.def(m).via_field, 1);
  EXPECT_FALSE(t.def(m).is_ref);
}

TEST(BindingTableTest, AddUnnestIsRef) {
  BindingTable t;
  BindingId task = t.AddGet("t", 5);
  BindingId m = t.AddUnnest("m", 3, task, 2);
  EXPECT_EQ(t.def(m).origin, BindingOrigin::kUnnest);
  EXPECT_TRUE(t.def(m).is_ref);
  EXPECT_EQ(t.def(m).parent, task);
}

TEST(BindingTableTest, ByName) {
  BindingTable t;
  t.AddGet("c", 2);
  BindingId m = t.AddMat("c.mayor", 0, 0, 1);
  auto r = t.ByName("c.mayor");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, m);
  EXPECT_FALSE(t.ByName("zzz").ok());
}

TEST(BindingTableTest, HasBounds) {
  BindingTable t;
  t.AddGet("c", 2);
  EXPECT_TRUE(t.has(0));
  EXPECT_FALSE(t.has(1));
  EXPECT_FALSE(t.has(-1));
}

}  // namespace
}  // namespace oodb
