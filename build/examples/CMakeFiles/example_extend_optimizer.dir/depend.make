# Empty dependencies file for example_extend_optimizer.
# This may be replaced when dependencies are built.
