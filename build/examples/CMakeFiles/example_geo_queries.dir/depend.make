# Empty dependencies file for example_geo_queries.
# This may be replaced when dependencies are built.
