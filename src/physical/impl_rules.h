// Implementation rules: the correspondence between logical algebra
// expressions and execution algorithms (paper §3 "Implementation Rules").
// Includes the multi-operator collapse-to-index-scan rule that folds a
// Select over a Mat chain over a Get into a single (path-)index scan.
#ifndef OODB_PHYSICAL_IMPL_RULES_H_
#define OODB_PHYSICAL_IMPL_RULES_H_

#include <memory>
#include <vector>

#include "src/volcano/rule.h"

namespace oodb {

/// Builds the full default implementation rule set. Extension rules
/// (merge join) are included but no-op unless enabled in the options.
std::vector<std::unique_ptr<ImplRule>> MakeDefaultImplRules();

}  // namespace oodb

#endif  // OODB_PHYSICAL_IMPL_RULES_H_
