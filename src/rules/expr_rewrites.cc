#include "src/rules/expr_rewrites.h"

#include <vector>

namespace oodb {

namespace {

ScalarExprPtr True() { return ScalarExpr::Const(Value::Int(1)); }
ScalarExprPtr False() { return ScalarExpr::Const(Value::Int(0)); }

bool IsConst(const ScalarExprPtr& e) {
  return e && e->kind() == ScalarExpr::Kind::kConst;
}

/// NOT over a comparison flips the operator.
CmpOp Negate(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

ScalarExprPtr Normalize(const ScalarExprPtr& e, bool negated);

/// Normalizes an AND/OR under optional negation, applying De Morgan,
/// flattening same-kind children, and folding constants.
ScalarExprPtr NormalizeConnective(const ScalarExpr& e, bool negated) {
  bool is_and = (e.kind() == ScalarExpr::Kind::kAnd) != negated;
  std::vector<ScalarExprPtr> parts;
  bool changed_kind_matters = false;
  (void)changed_kind_matters;
  for (const ScalarExprPtr& child : e.children()) {
    ScalarExprPtr c = Normalize(child, negated);
    if (IsConst(c)) {
      bool truth = c->value().i != 0;
      if (is_and && truth) continue;       // AND absorbs true
      if (!is_and && !truth) continue;     // OR absorbs false
      return is_and ? False() : True();    // zero element dominates
    }
    // Flatten same-kind nested connectives.
    if ((is_and && c->kind() == ScalarExpr::Kind::kAnd) ||
        (!is_and && c->kind() == ScalarExpr::Kind::kOr)) {
      for (const ScalarExprPtr& g : c->children()) parts.push_back(g);
    } else {
      parts.push_back(std::move(c));
    }
  }
  if (parts.empty()) return is_and ? True() : False();
  if (parts.size() == 1) return parts[0];
  return is_and ? ScalarExpr::And(std::move(parts))
                : ScalarExpr::Or(std::move(parts));
}

ScalarExprPtr Normalize(const ScalarExprPtr& e, bool negated) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kConst: {
      bool truth = e->value().kind == Value::Kind::kInt ? e->value().i != 0
                                                        : true;
      return (truth != negated) ? True() : False();
    }
    case ScalarExpr::Kind::kAttr:
    case ScalarExpr::Kind::kSelf:
      // A bare attribute in boolean position: leave it; wrap negation.
      return negated ? ScalarExpr::Not(e) : e;
    case ScalarExpr::Kind::kNot:
      return Normalize(e->children()[0], !negated);
    case ScalarExpr::Kind::kAnd:
    case ScalarExpr::Kind::kOr:
      return NormalizeConnective(*e, negated);
    case ScalarExpr::Kind::kCmp: {
      ScalarExprPtr l = e->children()[0];
      ScalarExprPtr r = e->children()[1];
      CmpOp op = e->cmp_op();
      // Canonical operand order: const on the right.
      if (IsConst(l) && !IsConst(r)) {
        std::swap(l, r);
        op = ReverseCmp(op);
      }
      if (negated) op = Negate(op);
      // Constant folding.
      if (IsConst(l) && IsConst(r)) {
        bool truth;
        if (op == CmpOp::kEq) {
          truth = l->value() == r->value();
        } else if (op == CmpOp::kNe) {
          truth = !(l->value() == r->value());
        } else {
          truth = EvalCmp(op, l->value().Compare(r->value()));
        }
        return truth ? True() : False();
      }
      if (l == e->children()[0] && r == e->children()[1] &&
          op == e->cmp_op()) {
        return e;  // already normal
      }
      return ScalarExpr::Cmp(op, std::move(l), std::move(r));
    }
  }
  return e;
}

}  // namespace

ScalarExprPtr NormalizeExpr(const ScalarExprPtr& expr) {
  if (!expr) return expr;
  return Normalize(expr, /*negated=*/false);
}

bool IsConstTrue(const ScalarExprPtr& expr) {
  return expr && expr->kind() == ScalarExpr::Kind::kConst &&
         expr->value().kind == Value::Kind::kInt && expr->value().i != 0;
}

bool IsConstFalse(const ScalarExprPtr& expr) {
  return expr && expr->kind() == ScalarExpr::Kind::kConst &&
         expr->value().kind == Value::Kind::kInt && expr->value().i == 0;
}

}  // namespace oodb
