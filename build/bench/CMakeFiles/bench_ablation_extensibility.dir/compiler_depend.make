# Empty compiler generated dependencies file for bench_ablation_extensibility.
# This may be replaced when dependencies are built.
