#include <gtest/gtest.h>

#include "src/catalog/paper_catalog.h"
#include "src/storage/object_store.h"

namespace oodb {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : db_(MakePaperCatalog(0.01)), store_(&db_.catalog) {}
  PaperDb db_;
  ObjectStore store_;
};

TEST_F(StorageTest, CreateAssignsSequentialOids) {
  Oid a = store_.Create(db_.person);
  Oid b = store_.Create(db_.person);
  EXPECT_EQ(b, a + 1);
  EXPECT_TRUE(store_.Exists(a));
  EXPECT_FALSE(store_.Exists(b + 1));
  EXPECT_EQ(store_.TypeOf(a), db_.person);
}

TEST_F(StorageTest, DensePackingOnPages) {
  // Person objects are 100 bytes: 40 fit on one 4096-byte page.
  std::vector<Oid> oids;
  for (int i = 0; i < 41; ++i) oids.push_back(store_.Create(db_.person));
  EXPECT_EQ(store_.PageOf(oids[0]), store_.PageOf(oids[39]));
  EXPECT_NE(store_.PageOf(oids[0]), store_.PageOf(oids[40]));
  EXPECT_EQ(store_.PageOf(oids[40]), store_.PageOf(oids[0]) + 1);
}

TEST_F(StorageTest, TypesGetSeparatePages) {
  Oid p = store_.Create(db_.person);
  Oid c = store_.Create(db_.city);
  Oid p2 = store_.Create(db_.person);
  EXPECT_NE(store_.PageOf(p), store_.PageOf(c));
  // A later person resumes the person type's current page.
  EXPECT_EQ(store_.PageOf(p), store_.PageOf(p2));
}

TEST_F(StorageTest, FieldValuesRoundTrip) {
  Oid p = store_.Create(db_.person);
  store_.SetValue(p, db_.person_name, Value::Str("Ada"));
  store_.SetValue(p, db_.person_age, Value::Int(36));
  Result<const ObjectData*> obj = store_.Read(p, /*charge_io=*/false);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->value(db_.person_name).s, "Ada");
  EXPECT_EQ((*obj)->value(db_.person_age).i, 36);
}

TEST_F(StorageTest, RefsAndRefSets) {
  Oid p = store_.Create(db_.person);
  Oid c = store_.Create(db_.city);
  store_.SetRef(c, db_.city_mayor, p);
  Result<const ObjectData*> city = store_.Read(c, false);
  ASSERT_TRUE(city.ok());
  EXPECT_EQ((*city)->ref(db_.city_mayor), p);

  Oid t = store_.Create(db_.task);
  Oid e1 = store_.Create(db_.employee);
  Oid e2 = store_.Create(db_.employee);
  store_.AddToRefSet(t, db_.task_team_members, e1);
  store_.AddToRefSet(t, db_.task_team_members, e2);
  Result<const ObjectData*> task = store_.Read(t, false);
  ASSERT_TRUE(task.ok());
  ASSERT_EQ((*task)->ref_sets.size(), 1u);
  EXPECT_EQ((*task)->ref_sets[0], (std::vector<Oid>{e1, e2}));
}

TEST_F(StorageTest, ExtentsTrackMembership) {
  Oid p = store_.Create(db_.person);
  auto extent = store_.CollectionMembers(CollectionId::Extent(db_.person));
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ((*extent)->size(), 1u);
  EXPECT_EQ((**extent)[0], p);
  // Plant has no extent.
  store_.Create(db_.plant);
  EXPECT_FALSE(store_.CollectionMembers(CollectionId::Extent(db_.plant)).ok());
}

TEST_F(StorageTest, NamedSets) {
  Oid c = store_.Create(db_.city);
  ASSERT_TRUE(store_.AddToSet("Cities", c).ok());
  auto members = store_.CollectionMembers(CollectionId::Set("Cities", db_.city));
  ASSERT_TRUE(members.ok());
  EXPECT_EQ((*members)->size(), 1u);
  EXPECT_FALSE(store_.AddToSet("NoSuchSet", c).ok());
}

TEST_F(StorageTest, ReadChargesBufferAndDisk) {
  Oid p = store_.Create(db_.person);
  store_.ResetSimulation();
  ASSERT_TRUE(store_.Read(p).ok());
  EXPECT_EQ(store_.buffer().misses(), 1);
  EXPECT_EQ(store_.disk().reads(), 1);
  EXPECT_GT(store_.clock().io_s, 0.0);
  // Second read of the same page: buffer hit, no disk I/O.
  ASSERT_TRUE(store_.Read(p).ok());
  EXPECT_EQ(store_.buffer().hits(), 1);
  EXPECT_EQ(store_.disk().reads(), 1);
}

TEST_F(StorageTest, IndexBuildAndLookup) {
  Oid p1 = store_.Create(db_.person);
  store_.SetValue(p1, db_.person_name, Value::Str("Joe"));
  Oid p2 = store_.Create(db_.person);
  store_.SetValue(p2, db_.person_name, Value::Str("Ann"));
  Oid c1 = store_.Create(db_.city);
  store_.SetRef(c1, db_.city_mayor, p1);
  Oid c2 = store_.Create(db_.city);
  store_.SetRef(c2, db_.city_mayor, p2);
  ASSERT_TRUE(store_.AddToSet("Cities", c1).ok());
  ASSERT_TRUE(store_.AddToSet("Cities", c2).ok());
  // Populate the other indexed collections so BuildIndexes succeeds.
  ASSERT_TRUE(store_.AddToSet("Tasks", store_.Create(db_.task)).ok());

  ASSERT_TRUE(store_.BuildIndexes().ok());
  auto idx = store_.FindIndex(kIdxCitiesMayorName);
  ASSERT_TRUE(idx.ok());
  // The path index resolves mayor.name to the *city* roots.
  EXPECT_EQ((*idx)->Lookup(Value::Str("Joe")), (std::vector<Oid>{c1}));
  EXPECT_EQ((*idx)->Lookup(Value::Str("Ann")), (std::vector<Oid>{c2}));
  EXPECT_TRUE((*idx)->Lookup(Value::Str("Zed")).empty());
}

TEST_F(StorageTest, IndexRangeScan) {
  for (int i = 0; i < 10; ++i) {
    Oid t = store_.Create(db_.task);
    store_.SetValue(t, db_.task_time, Value::Int(i));
    ASSERT_TRUE(store_.AddToSet("Tasks", t).ok());
  }
  ASSERT_TRUE(store_.AddToSet("Cities", store_.Create(db_.city)).ok());
  ASSERT_TRUE(store_.BuildIndexes().ok());
  auto idx = store_.FindIndex(kIdxTasksTime);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->Range(Value::Int(3), Value::Int(5)).size(), 3u);
  EXPECT_EQ((*idx)->num_keys(), 10);
  EXPECT_EQ((*idx)->num_entries(), 10);
}

TEST(DiskModelTest, SequentialVsRandomClassification) {
  CostModelOptions timing;
  SimClock clock;
  DiskModel disk(&timing, &clock);
  disk.Read(10);  // first read: random
  disk.Read(11);  // sequential
  disk.Read(11);  // re-read: sequential
  disk.Read(50);  // forward seek: random (discounted)
  disk.Read(5);   // backward: random (full)
  EXPECT_EQ(disk.seq_reads(), 2);
  EXPECT_EQ(disk.random_reads(), 3);
  EXPECT_EQ(disk.reads(), 5);
}

TEST(DiskModelTest, ShortForwardSeeksCheaperThanFullRandom) {
  CostModelOptions timing;
  SimClock near_clock, far_clock;
  {
    DiskModel disk(&timing, &near_clock);
    disk.Read(100);
    near_clock.Reset();
    disk.Read(102);  // distance 2
  }
  {
    DiskModel disk(&timing, &far_clock);
    disk.Read(100);
    far_clock.Reset();
    disk.Read(100000000);  // huge seek
  }
  EXPECT_LT(near_clock.io_s, far_clock.io_s);
  EXPECT_GT(near_clock.io_s, timing.seq_io_s - 1e-12);
}

TEST(BufferPoolTest, LruEviction) {
  CostModelOptions timing;
  SimClock clock;
  DiskModel disk(&timing, &clock);
  BufferPool pool(&disk, 2);
  ASSERT_TRUE(pool.Access(1).ok());
  ASSERT_TRUE(pool.Access(2).ok());
  ASSERT_TRUE(pool.Access(1).ok());  // 1 is now most recent
  ASSERT_TRUE(pool.Access(3).ok());  // evicts 2
  EXPECT_EQ(pool.misses(), 3);
  EXPECT_EQ(pool.hits(), 1);
  ASSERT_TRUE(pool.Access(2).ok());  // miss again
  EXPECT_EQ(pool.misses(), 4);
  ASSERT_TRUE(pool.Access(1).ok());  // capacity 2: after access(2)
                                     // resident = {2, 3}; 1 misses.
  EXPECT_EQ(pool.misses(), 5);
  EXPECT_EQ(pool.resident(), 2);
}

TEST(BufferPoolTest, ResetClears) {
  CostModelOptions timing;
  SimClock clock;
  DiskModel disk(&timing, &clock);
  BufferPool pool(&disk, 4);
  ASSERT_TRUE(pool.Access(1).ok());
  pool.Reset();
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 0);
  EXPECT_EQ(pool.resident(), 0);
}

}  // namespace
}  // namespace oodb
