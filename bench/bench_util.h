// Shared helpers for the benchmark/reproduction binaries.
#ifndef OODB_BENCH_BENCH_UTIL_H_
#define OODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/cost/selectivity.h"
#include "src/oodb.h"
#include "src/workloads/paper_queries.h"

namespace oodb {
namespace bench {

inline void Header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Optimizes paper query `n` under `opts`; aborts on failure (benchmarks
/// reproduce known-good configurations).
inline OptimizedQuery Optimize(int n, const PaperDb& db, QueryContext* ctx,
                               OptimizerOptions opts = {}) {
  auto logical = BuildPaperQuery(n, db, ctx);
  if (!logical.ok()) {
    std::fprintf(stderr, "build query %d: %s\n", n,
                 logical.status().ToString().c_str());
    std::abort();
  }
  Optimizer opt(&db.catalog, std::move(opts));
  auto r = opt.Optimize(**logical, ctx);
  if (!r.ok()) {
    std::fprintf(stderr, "optimize query %d: %s\n", n,
                 r.status().ToString().c_str());
    std::abort();
  }
  return *std::move(r);
}

/// Re-optimizes `runs` times and returns the best wall-clock seconds (the
/// paper's "Optim. Time" column measured on our hardware).
inline double OptimizeTime(int n, const PaperDb& db, OptimizerOptions opts,
                           int runs = 20) {
  double best = 1e30;
  for (int i = 0; i < runs; ++i) {
    QueryContext ctx;
    SearchStats stats;
    auto logical = BuildPaperQuery(n, db, &ctx);
    Optimizer opt(&db.catalog, opts);
    auto r = opt.Optimize(**logical, &ctx);
    if (r.ok() && r->stats.optimize_seconds < best) {
      best = r->stats.optimize_seconds;
    }
  }
  return best;
}

}  // namespace bench
}  // namespace oodb

#endif  // OODB_BENCH_BENCH_UTIL_H_
