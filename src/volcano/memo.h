// The memo: equivalence classes (groups) of logically equivalent
// expressions, shared across the whole search. Global common-subexpression
// factorization falls out of the hash-based duplicate detection — one of the
// features the paper notes Volcano provides "for free" (§2).
#ifndef OODB_VOLCANO_MEMO_H_
#define OODB_VOLCANO_MEMO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/algebra/logical_props.h"
#include "src/volcano/plan.h"

namespace oodb {

using GroupId = int32_t;
using MExprId = int32_t;
inline constexpr GroupId kInvalidGroup = -1;
inline constexpr MExprId kInvalidMExpr = -1;

/// A logical multi-expression: an operator whose children are groups.
struct LogicalMExpr {
  MExprId id = kInvalidMExpr;
  GroupId group = kInvalidGroup;
  LogicalOp op;
  std::vector<GroupId> children;
  /// Bitmask of transformation rules already fired on this m-expr.
  uint64_t applied_rules = 0;
};

/// Memoized result of optimizing a group under one required property vector.
struct Winner {
  PlanNodePtr plan;      ///< optimal plan, or null if none was found
  bool in_progress = false;  ///< cycle guard
  /// True when the search for this (group, properties) pair was not cut off
  /// by a branch-and-bound cost limit: `plan` (or its absence) is definitive.
  bool complete = true;
  /// When !complete and plan == null: no plan with cost <= lower_bound
  /// exists (the search was abandoned at that limit).
  double lower_bound = 0.0;
};

/// One equivalence class.
struct Group {
  GroupId id = kInvalidGroup;
  std::vector<MExprId> mexprs;
  LogicalProps props;
  /// Parent m-exprs that have this group as a child (for re-exploration when
  /// the group gains expressions).
  std::vector<MExprId> parents;
  /// Winner per required physical property vector.
  std::map<PhysProps, Winner> winners;
};

/// Expression fragments produced by transformation rules: operator trees
/// whose leaves may be references to existing groups.
struct RuleExpr;
using RuleExprPtr = std::shared_ptr<const RuleExpr>;
struct RuleExpr {
  bool is_group = false;
  GroupId group = kInvalidGroup;
  LogicalOp op;
  std::vector<RuleExprPtr> children;

  static RuleExprPtr GroupLeaf(GroupId g);
  static RuleExprPtr Op(LogicalOp op, std::vector<RuleExprPtr> children = {});
};

/// The memo. Supports insertion of standalone trees and of rule-produced
/// fragments, duplicate detection, and union-find group merging (merges can
/// only occur during the exploration phase, before any winners exist).
class Memo {
 public:
  explicit Memo(QueryContext* ctx) : ctx_(ctx) {}

  /// Inserts a standalone tree; returns its root group.
  Result<GroupId> InsertTree(const LogicalExpr& tree);

  /// Inserts a rule-produced fragment into group `target`. Returns the new
  /// m-expr id, or kInvalidMExpr if the root was already present (duplicate).
  Result<MExprId> InsertRuleExpr(const RuleExprPtr& expr, GroupId target);

  /// Union-find root of `g`.
  GroupId Find(GroupId g) const;

  const Group& group(GroupId g) const { return groups_[Find(g)]; }
  Group& mutable_group(GroupId g) { return groups_[Find(g)]; }
  const LogicalMExpr& mexpr(MExprId m) const { return mexprs_[m]; }
  LogicalMExpr& mutable_mexpr(MExprId m) { return mexprs_[m]; }

  /// Child group of `m` at `i`, canonicalized.
  GroupId ChildGroup(const LogicalMExpr& m, int i) const {
    return Find(m.children[i]);
  }

  int num_groups() const;        ///< live (representative) groups
  int num_mexprs() const { return static_cast<int>(mexprs_.size()); }

  /// Total groups ever created, including ones merged away by union-find.
  /// Raw iteration for the verifier; use Find() to test liveness.
  int num_raw_groups() const { return static_cast<int>(groups_.size()); }
  /// Group slot `g` without union-find canonicalization (merged-away slots
  /// have empty mexprs). Verifier use only; prefer group().
  const Group& raw_group(GroupId g) const { return groups_[g]; }

  QueryContext* ctx() { return ctx_; }
  const QueryContext* ctx() const { return ctx_; }

  /// Debug dump of all groups and expressions.
  std::string ToString() const;

 private:
  struct MExprKey {
    size_t op_hash;
    LogicalOp op;
    std::vector<GroupId> children;
  };
  struct KeyHash {
    size_t operator()(const MExprKey& k) const;
  };
  struct KeyEq {
    bool operator()(const MExprKey& a, const MExprKey& b) const;
  };

  /// Inserts op+children. If target == kInvalidGroup a fresh group is
  /// created unless the expression already exists (its group is reused).
  /// Returns {mexpr id or existing id, inserted?}.
  Result<std::pair<MExprId, bool>> Insert(LogicalOp op,
                                          std::vector<GroupId> children,
                                          GroupId target);

  Result<GroupId> InsertRec(const RuleExprPtr& expr);
  Result<GroupId> InsertTreeRec(const LogicalExpr& tree);

  /// Merges the groups of `a` and `b`; winners must be empty.
  Status Merge(GroupId a, GroupId b);

  Result<LogicalProps> DeriveProps(const LogicalOp& op,
                                   const std::vector<GroupId>& children) const;

  QueryContext* ctx_;
  std::vector<Group> groups_;
  std::vector<LogicalMExpr> mexprs_;
  mutable std::vector<GroupId> parent_link_;  // union-find
  std::unordered_map<MExprKey, MExprId, KeyHash, KeyEq> index_;
};

}  // namespace oodb

#endif  // OODB_VOLCANO_MEMO_H_
