#include "src/storage/datagen.h"

#include <string>

namespace oodb {

namespace {

int64_t SetCard(const PaperDb& db, const char* name) {
  Result<const CollectionInfo*> c = db.catalog.FindSet(name);
  return c.ok() ? (*c)->cardinality : 0;
}

int64_t ExtentCard(const PaperDb& db, TypeId type) {
  return db.catalog.TypeCardinality(type).value_or(0);
}

/// Class-based value assignment: object i of a population with D distinct
/// values gets class i mod D, so every value occurs floor/ceil(N/D) times —
/// matching the catalog's uniform-distribution assumption exactly.
std::string NameForClass(const char* prefix, int64_t cls,
                         const char* special_zero) {
  if (cls == 0 && special_zero != nullptr) return special_zero;
  return std::string(prefix) + std::to_string(cls);
}

}  // namespace

Result<PaperDataset> GeneratePaperData(const PaperDb& db, ObjectStore* store,
                                       GenOptions options) {
  Rng rng(options.seed);
  PaperDataset data;
  const Schema& schema = db.catalog.schema();

  // --- Persons. Name class 0 is "Joe". ---
  int64_t num_persons = ExtentCard(db, db.person);
  int64_t person_names =
      schema.type(db.person).field(db.person_name).distinct_values;
  for (int64_t i = 0; i < num_persons; ++i) {
    Oid o = store->Create(db.person);
    store->SetValue(o, db.person_name,
                    Value::Str(NameForClass("P", i % person_names, "Joe")));
    store->SetValue(o, db.person_age,
                    Value::Int(20 + static_cast<int64_t>(rng.Uniform(70))));
    data.persons.push_back(o);
  }

  // --- Countries. ---
  int64_t num_countries = ExtentCard(db, db.country);
  for (int64_t i = 0; i < num_countries; ++i) {
    Oid o = store->Create(db.country);
    store->SetValue(o, db.country_name,
                    Value::Str("Country" + std::to_string(i)));
    store->SetRef(o, db.country_president,
                  data.persons[rng.Uniform(data.persons.size())]);
    data.countries.push_back(o);
  }

  // --- Cities. Mayor of city i is a person whose name class is i mod D, so
  // exactly ceil(|Cities| / D) cities have a mayor named "Joe". ---
  int64_t num_cities = SetCard(db, "Cities");
  auto person_of_class = [&](int64_t cls) {
    int64_t copies = num_persons / person_names;
    if (copies <= 1) return data.persons[cls % num_persons];
    return data.persons[cls + person_names * static_cast<int64_t>(
                                                 rng.Uniform(copies))];
  };
  int64_t city_names = schema.type(db.city).field(db.city_name).distinct_values;
  for (int64_t i = 0; i < num_cities; ++i) {
    Oid o = store->Create(db.city);
    store->SetValue(o, db.city_name,
                    Value::Str(NameForClass("City", i % city_names, nullptr)));
    store->SetRef(o, db.city_mayor, person_of_class(i % person_names));
    store->SetRef(o, db.city_country,
                  data.countries[rng.Uniform(data.countries.size())]);
    store->SetValue(o, db.city_population,
                    Value::Int(10000 + static_cast<int64_t>(rng.Uniform(1000000))));
    OODB_RETURN_IF_ERROR(store->AddToSet("Cities", o));
    data.cities.push_back(o);
  }

  // --- Capitals (a distinct subtype population). ---
  int64_t num_capitals = SetCard(db, "Capitals");
  for (int64_t i = 0; i < num_capitals; ++i) {
    Oid o = store->Create(db.capital);
    store->SetValue(o, db.city_name, Value::Str("Capital" + std::to_string(i)));
    store->SetRef(o, db.city_mayor, person_of_class(i % person_names));
    store->SetRef(o, db.city_country, data.countries[i % num_countries]);
    store->SetValue(o, db.city_population,
                    Value::Int(100000 + static_cast<int64_t>(rng.Uniform(5000000))));
    OODB_RETURN_IF_ERROR(store->AddToSet("Capitals", o));
    data.capitals.push_back(o);
  }

  // --- Plants (no extent, no set: population unknown to the optimizer). ---
  for (int64_t i = 0; i < options.num_plants; ++i) {
    Oid o = store->Create(db.plant);
    store->SetValue(o, db.plant_name, Value::Str("Plant" + std::to_string(i)));
    bool dallas = rng.NextDouble() < options.dallas_fraction;
    store->SetValue(o, db.plant_location,
                    Value::Str(dallas ? "Dallas"
                                      : "Loc" + std::to_string(1 + rng.Uniform(49))));
    store->SetValue(o, db.plant_products, Value::Str("products..."));
    data.plants.push_back(o);
  }

  // --- Departments. ---
  int64_t num_depts = ExtentCard(db, db.department);
  for (int64_t i = 0; i < num_depts; ++i) {
    Oid o = store->Create(db.department);
    store->SetValue(o, db.dept_name, Value::Str("Dept" + std::to_string(i)));
    store->SetRef(o, db.dept_plant, data.plants[rng.Uniform(data.plants.size())]);
    store->SetValue(o, db.dept_floor,
                    Value::Int(1 + static_cast<int64_t>(rng.Uniform(10))));
    data.departments.push_back(o);
  }

  // --- Jobs. ---
  int64_t num_jobs = ExtentCard(db, db.job);
  for (int64_t i = 0; i < num_jobs; ++i) {
    Oid o = store->Create(db.job);
    store->SetValue(o, db.job_name, Value::Str("Job" + std::to_string(i)));
    data.jobs.push_back(o);
  }

  // --- Employees. Name class 0 is "Fred". The Employees set is the first
  // |set| employees (contiguous -> densely packed pages, as Table 1 assumes).
  int64_t num_employees = ExtentCard(db, db.employee);
  int64_t employees_set = SetCard(db, "Employees");
  int64_t emp_names = schema.type(db.employee).field(db.emp_name).distinct_values;
  for (int64_t i = 0; i < num_employees; ++i) {
    Oid o = store->Create(db.employee);
    store->SetValue(o, db.emp_name,
                    Value::Str(NameForClass("E", i % emp_names, "Fred")));
    store->SetValue(o, db.emp_age,
                    Value::Int(20 + static_cast<int64_t>(rng.Uniform(50))));
    store->SetValue(o, db.emp_salary,
                    Value::Double(30000.0 + rng.NextDouble() * 120000.0));
    store->SetValue(o, db.emp_last_raise,
                    Value::Int(static_cast<int64_t>(rng.Uniform(1500))));
    store->SetRef(o, db.emp_dept,
                  data.departments[rng.Uniform(data.departments.size())]);
    store->SetRef(o, db.emp_job, data.jobs[rng.Uniform(data.jobs.size())]);
    if (i < employees_set) {
      OODB_RETURN_IF_ERROR(store->AddToSet("Employees", o));
    }
    data.employees.push_back(o);
  }

  // --- Information. ---
  int64_t num_infos = ExtentCard(db, db.information);
  for (int64_t i = 0; i < num_infos; ++i) {
    Oid o = store->Create(db.information);
    store->SetValue(o, db.info_text, Value::Str("info..."));
    data.infos.push_back(o);
  }

  // --- Tasks. time class i mod D, value 1 + class; the Tasks set is the
  // first |set| tasks. ---
  int64_t num_tasks = ExtentCard(db, db.task);
  int64_t tasks_set = SetCard(db, "Tasks");
  int64_t times = schema.type(db.task).field(db.task_time).distinct_values;
  double team = schema.type(db.task).field(db.task_team_members).avg_set_card;
  for (int64_t i = 0; i < num_tasks; ++i) {
    Oid o = store->Create(db.task);
    store->SetValue(o, db.task_name, Value::Str("Task" + std::to_string(i)));
    store->SetValue(o, db.task_time, Value::Int(1 + (i % times)));
    int64_t members = static_cast<int64_t>(team);
    for (int64_t m = 0; m < members; ++m) {
      store->AddToRefSet(o, db.task_team_members,
                         data.employees[rng.Uniform(data.employees.size())]);
    }
    if (i < tasks_set) {
      OODB_RETURN_IF_ERROR(store->AddToSet("Tasks", o));
    }
    data.tasks.push_back(o);
  }

  OODB_RETURN_IF_ERROR(store->BuildIndexes());
  return data;
}

}  // namespace oodb
