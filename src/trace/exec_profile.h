// EXPLAIN ANALYZE support: per-operator runtime counters collected while a
// plan executes, merged across Exchange workers at join, and rendered as an
// annotated plan tree next to the optimizer's estimates.
//
// Collection model: when ExecOptions::analyze is on, every exec node built
// from a plan node is wrapped in a recording decorator keyed by the
// PlanNode's address. Each ExecProfile instance is written by exactly one
// thread — the consumer pipeline owns one, and every Exchange worker gets a
// private instance merged into the consumer's after the worker joins (the
// same discipline as the per-worker SimClocks) — so recording takes no
// locks and no atomics, and a dop>1 ANALYZE run is race-free by
// construction rather than by synchronization.
//
// Timing attribution: CPU seconds come from the recording thread's own
// clock (the store clock when serial, the worker-private clock inside an
// Exchange) and are always exact. I/O seconds, pages, and buffer hit/miss
// deltas live on store-shared state that Exchange workers mutate
// concurrently, so they are attributed per operator only on serial (dop=1)
// plans — `io_timed()` is false otherwise and the renderer reports those
// quantities at the query level only. All per-node counters are inclusive
// of the operator's subtree.
#ifndef OODB_TRACE_EXEC_PROFILE_H_
#define OODB_TRACE_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/volcano/plan.h"

namespace oodb {

/// Counters for one plan node (inclusive of its subtree).
struct OpProfile {
  int64_t rows = 0;     ///< tuples emitted by this operator (live rows)
  /// Physical rows in the emitted batches: equals `rows` for compact
  /// batches; exceeds it when the operator marked survivors in a selection
  /// vector (columnar filters). rows/phys_rows is the operator's selection
  /// density, rendered as "sel N%" when below 100%.
  int64_t phys_rows = 0;
  int64_t batches = 0;  ///< non-empty batches emitted
  double cpu_s = 0.0;   ///< simulated CPU charged while inside this subtree
  // Valid only when the owning profile is io_timed() (serial plans):
  double io_s = 0.0;         ///< simulated I/O seconds
  int64_t pages_read = 0;    ///< physical page reads (buffer misses)
  int64_t buffer_hits = 0;   ///< buffer-pool hits
  int64_t buffer_misses = 0; ///< buffer-pool misses

  // Order-property operators (zero elsewhere):
  /// Peak bounded-heap occupancy of a TopK — min(k, input rows); merged
  /// across Exchange workers by max, since each worker keeps its own heap.
  int64_t topk_heap = 0;
  /// Equal-prefix runs a partial Sort flushed (0 for a full sort). The
  /// prefix-sort saving is visible as many short runs instead of one
  /// input-sized sort.
  int64_t sort_runs = 0;
  /// Sorted per-partition streams a merging Exchange interleaved.
  int64_t merge_streams = 0;

  void MergeFrom(const OpProfile& other);
};

/// One Exchange worker's contribution, for DOP utilization reporting.
struct WorkerUtilization {
  int worker = 0;
  int64_t rows = 0;   ///< rows the worker pushed into the exchange queue
  double cpu_s = 0.0; ///< the worker's private-clock CPU seconds
};

/// The per-query collection of operator profiles. Written single-threaded
/// (see file comment); merged across workers after they join.
class ExecProfile {
 public:
  /// Returns this node's counters, creating them on first use. The pointer
  /// is stable across later registrations.
  OpProfile* Register(const PlanNode* node);

  /// Null when the node produced no exec operator of its own (a filter
  /// fused into a chain or into the scan below records under the chain's
  /// top node).
  const OpProfile* Find(const PlanNode* node) const;

  /// Whether per-node io/pages/buffer deltas were recorded (serial runs).
  bool io_timed() const { return io_timed_; }
  void set_io_timed(bool timed) { io_timed_ = timed; }

  /// Adds `other`'s counters node-by-node (worker merge at Exchange join).
  void MergeFrom(const ExecProfile& other);

  void AddWorker(const PlanNode* exchange, WorkerUtilization u);
  const std::vector<WorkerUtilization>* workers(const PlanNode* exchange) const;

  /// Recovery events observed while this profile's query executed: Exchange
  /// partitions re-executed after a retryable fault, and straggling
  /// partitions speculatively re-dispatched. Rendered on the ANALYZE
  /// summary line so a recovered run is visibly distinct from a clean one.
  void AddRecovery(int64_t retried, int64_t speculated) {
    partitions_retried_ += retried;
    partitions_speculated_ += speculated;
  }
  int64_t partitions_retried() const { return partitions_retried_; }
  int64_t partitions_speculated() const { return partitions_speculated_; }

  size_t num_ops() const { return ops_.size(); }

 private:
  std::unordered_map<const PlanNode*, OpProfile> ops_;
  std::unordered_map<const PlanNode*, std::vector<WorkerUtilization>> workers_;
  int64_t partitions_retried_ = 0;
  int64_t partitions_speculated_ = 0;
  bool io_timed_ = true;
};

/// Symmetric estimate/actual drift as a >= 1 factor: max/min after clamping
/// both sides up to one row, so "estimated 0.3, saw 0" reads as no drift
/// instead of a division artifact. Direction is reported separately (an
/// estimate above the actual is "over", below is "under").
double DriftRatio(double estimated, int64_t actual);

/// The worst per-operator cardinality drift across all profiled nodes of
/// `plan` (1.0 when nothing was profiled) — the ANALYZE diff the estimator
/// regression tests key on.
double MaxDriftRatio(const PlanNode& plan, const ExecProfile& profile);

/// Renders the plan tree with per-operator est/actual annotations:
///   Op ...   [est 21.3 -> act 30 rows (drift 1.41x under), batches 1,
///             cpu 0.00012s, io 0.32s, pages 160, buf 3820h/160m]
/// Nodes without their own exec operator are annotated "(fused)"; Exchange
/// nodes list per-worker rows/CPU utilization beneath.
std::string RenderAnalyzedPlan(const PlanNode& plan, const QueryContext& ctx,
                               const ExecProfile& profile);

}  // namespace oodb

#endif  // OODB_TRACE_EXEC_PROFILE_H_
