#include "src/catalog/catalog.h"

#include <algorithm>
#include <sstream>

namespace oodb {

uint64_t Catalog::NextStatsEpoch() {
  // Stride of 2^32 between instances: each catalog's bump range is disjoint
  // from every other's for the life of the process, which is what lets the
  // plan cache trust "same version" to mean "same statistics".
  static std::atomic<uint64_t> epoch{0};
  return epoch.fetch_add(uint64_t{1} << 32, std::memory_order_relaxed);
}

std::string CollectionId::Display(const Schema& schema) const {
  if (kind == Kind::kNamedSet) return name;
  return "extent(" + schema.type(type).name() + ")";
}

Status Catalog::AddSet(const std::string& name, TypeId elem_type,
                       int64_t cardinality) {
  if (!schema_.has_type(elem_type)) {
    return Status::InvalidArgument("AddSet: unknown element type");
  }
  for (const CollectionInfo& c : collections_) {
    if (c.id.kind == CollectionId::Kind::kNamedSet && c.id.name == name) {
      return Status::AlreadyExists("set '" + name + "' already registered");
    }
  }
  collections_.push_back({CollectionId::Set(name, elem_type), cardinality});
  BumpStatsVersion();
  return Status::OK();
}

Status Catalog::AddExtent(TypeId type, int64_t cardinality) {
  if (!schema_.has_type(type)) {
    return Status::InvalidArgument("AddExtent: unknown type");
  }
  if (HasExtent(type)) {
    return Status::AlreadyExists("extent for type '" + schema_.type(type).name() +
                                 "' already registered");
  }
  collections_.push_back({CollectionId::Extent(type), cardinality});
  BumpStatsVersion();
  return Status::OK();
}

Status Catalog::AddIndex(IndexInfo info) {
  if (info.path.empty()) {
    return Status::InvalidArgument("index path must be non-empty");
  }
  // Validate the path against the schema.
  TypeId cur = info.collection.type;
  for (size_t i = 0; i < info.path.size(); ++i) {
    if (!schema_.has_type(cur) || !schema_.type(cur).has_field(info.path[i])) {
      return Status::InvalidArgument("index '" + info.name + "': bad path step");
    }
    const FieldDef& f = schema_.type(cur).field(info.path[i]);
    bool last = (i + 1 == info.path.size());
    if (last) {
      if (f.kind == FieldKind::kRef || f.kind == FieldKind::kRefSet) {
        return Status::InvalidArgument("index '" + info.name +
                                       "': key field must be scalar");
      }
    } else {
      if (f.kind != FieldKind::kRef) {
        return Status::InvalidArgument("index '" + info.name +
                                       "': interior path steps must be refs");
      }
      cur = f.target_type;
    }
  }
  for (const IndexInfo& idx : indexes_) {
    if (idx.name == info.name) {
      return Status::AlreadyExists("index '" + info.name + "' already exists");
    }
  }
  indexes_.push_back(std::move(info));
  BumpStatsVersion();
  return Status::OK();
}

Result<const CollectionInfo*> Catalog::FindSet(const std::string& name) const {
  for (const CollectionInfo& c : collections_) {
    if (c.id.kind == CollectionId::Kind::kNamedSet && c.id.name == name) {
      return &c;
    }
  }
  return Status::NotFound("no set named '" + name + "'");
}

bool Catalog::HasExtent(TypeId type) const {
  for (const CollectionInfo& c : collections_) {
    if (c.id.kind == CollectionId::Kind::kExtent && c.id.type == type) {
      return true;
    }
  }
  return false;
}

Result<const CollectionInfo*> Catalog::FindCollection(
    const CollectionId& id) const {
  for (const CollectionInfo& c : collections_) {
    if (c.id == id) return &c;
  }
  return Status::NotFound("collection not found: " + id.Display(schema_));
}

std::optional<int64_t> Catalog::TypeCardinality(TypeId type) const {
  for (const CollectionInfo& c : collections_) {
    if (c.id.kind == CollectionId::Kind::kExtent && c.id.type == type) {
      return c.cardinality;
    }
  }
  return std::nullopt;
}

std::vector<const IndexInfo*> Catalog::IndexesOn(const CollectionId& coll) const {
  std::vector<const IndexInfo*> out;
  for (const IndexInfo& idx : indexes_) {
    if (idx.enabled && idx.collection == coll) out.push_back(&idx);
  }
  return out;
}

Result<IndexInfo*> Catalog::FindIndex(const std::string& name) {
  for (IndexInfo& idx : indexes_) {
    if (idx.name == name) return &idx;
  }
  return Status::NotFound("no index named '" + name + "'");
}

Result<const IndexInfo*> Catalog::FindIndex(const std::string& name) const {
  for (const IndexInfo& idx : indexes_) {
    if (idx.name == name) return &idx;
  }
  return Status::NotFound("no index named '" + name + "'");
}

Status Catalog::SetIndexEnabled(const std::string& name, bool enabled) {
  OODB_ASSIGN_OR_RETURN(IndexInfo * idx, FindIndex(name));
  if (idx->enabled != enabled) {
    idx->enabled = enabled;
    BumpStatsVersion();
  }
  return Status::OK();
}

Status Catalog::SetCardinality(const CollectionId& id, int64_t cardinality) {
  for (CollectionInfo& c : collections_) {
    if (c.id == id) {
      if (c.cardinality != cardinality) {
        c.cardinality = cardinality;
        BumpStatsVersion();
      }
      return Status::OK();
    }
  }
  return Status::NotFound("collection not found: " + id.Display(schema_));
}

int64_t Catalog::PagesFor(TypeId type, int64_t card, int64_t page_size) const {
  int64_t obj_size = schema_.type(type).object_size();
  int64_t per_page = std::max<int64_t>(1, page_size / std::max(1, (int)obj_size));
  return (card + per_page - 1) / per_page;
}

std::string Catalog::ToTableString() const {
  std::ostringstream os;
  os << "Type           Set Name    Set Card.  Obj.Size  Extent?  Extent Card.\n";
  for (TypeId t = 0; t < schema_.num_types(); ++t) {
    const TypeDef& td = schema_.type(t);
    std::string set_name = "-";
    int64_t set_card = -1;
    bool extent = false;
    int64_t extent_card = -1;
    for (const CollectionInfo& c : collections_) {
      if (c.id.type != t) continue;
      if (c.id.kind == CollectionId::Kind::kNamedSet) {
        set_name = c.id.name;
        set_card = c.cardinality;
      } else {
        extent = true;
        extent_card = c.cardinality;
      }
    }
    os << td.name();
    os << std::string(td.name().size() < 15 ? 15 - td.name().size() : 1, ' ');
    os << set_name << std::string(set_name.size() < 12 ? 12 - set_name.size() : 1, ' ');
    os << (set_card >= 0 ? std::to_string(set_card) : std::string("-"));
    os << "  " << td.object_size();
    os << "  " << (extent ? "Yes" : "No");
    os << "  " << (extent ? std::to_string(extent_card) : std::string("-"));
    os << "\n";
  }
  return os.str();
}

}  // namespace oodb
