// Recursive-descent parser for the textual ZQL[C++]-like syntax:
//
//   SELECT e.name, d.name
//   FROM Employee e IN Employees, Department d IN Departments
//   WHERE d.floor == 3 && e.age >= 32 && e.dept == d;
//
// Path components may carry empty parens mimicking ZQL[C++]'s accessor
// methods (`e.name()` is accepted as `e.name`). Existential subqueries:
// `EXISTS (SELECT m FROM Employee m IN t.team_members WHERE m.name == "Fred")`.
#ifndef OODB_QUERY_ZQL_PARSER_H_
#define OODB_QUERY_ZQL_PARSER_H_

#include "src/query/zql_ast.h"

namespace oodb {

/// Parses a complete query.
Result<ZqlQueryPtr> ParseZql(const std::string& input);

}  // namespace oodb

#endif  // OODB_QUERY_ZQL_PARSER_H_
