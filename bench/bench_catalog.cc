// E1 — Table 1 of the paper: the catalog information every experiment
// assumes. Prints the table plus the registered indexes and the cost-model
// constants in effect.
#include "bench/bench_util.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Table 1: Catalog Information (paper) — as encoded");
  std::printf("%s", db.catalog.ToTableString().c_str());

  bench::Header("Registered indexes");
  for (const IndexInfo& idx : db.catalog.indexes()) {
    std::string path;
    TypeId cur = idx.collection.type;
    for (size_t i = 0; i < idx.path.size(); ++i) {
      const FieldDef& f = db.catalog.schema().type(cur).field(idx.path[i]);
      if (i > 0) path += ".";
      path += f.name;
      if (f.kind == FieldKind::kRef) cur = f.target_type;
    }
    std::printf("  %-22s on %-18s path %-14s distinct keys %ld\n",
                idx.name.c_str(),
                idx.collection.Display(db.catalog.schema()).c_str(),
                path.c_str(), static_cast<long>(idx.distinct_keys));
  }

  bench::Header("Cost model constants (calibrated, see EXPERIMENTS.md)");
  CostModelOptions c;
  std::printf("  page size            %ld B\n", static_cast<long>(c.page_size));
  std::printf("  random I/O           %.3f s\n", c.random_io_s);
  std::printf("  sequential I/O       %.3f s\n", c.seq_io_s);
  std::printf("  assembly window      %d (discount floor %.2f)\n",
              c.assembly_window, c.assembly_window_discount_floor);
  std::printf("  default selectivity  %.0f %%\n", kDefaultSelectivity * 100);
  return 0;
}
