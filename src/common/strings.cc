#include "src/common/strings.h"

#include <cmath>
#include <cstdio>

namespace oodb {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string out = buf;
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

std::string Repeat(std::string_view s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace oodb
