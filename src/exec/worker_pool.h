// Process-wide pool of persistent worker threads for the Exchange operator.
//
// Spawning OS threads per query puts thread create/join (and first-touch
// stack faults) on the latency path of every parallel execution — a fixed
// cost that dwarfs the per-batch work for small and medium inputs. The pool
// keeps workers alive across queries: Exchange submits one task per
// partition and waits on its own completion count instead of joining
// threads.
//
// The pool grows lazily — a new thread is spawned only when a task is
// submitted and no worker is idle — so it converges on the peak concurrent
// demand (the largest DOP in flight) and never holds more. Pool threads may
// block inside tasks (producers blocking on a full batch queue is normal);
// that is safe because the blocked producer's consumer is never a pool task.
#ifndef OODB_EXEC_WORKER_POOL_H_
#define OODB_EXEC_WORKER_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace oodb {

class WorkerPool {
 public:
  /// The shared pool. Constructed on first use; joined at process exit
  /// (by which time every Exchange has already waited out its tasks).
  static WorkerPool& Instance();

  ~WorkerPool();

  /// Enqueues `fn` for execution on a pool thread. Never blocks beyond the
  /// queue lock; spawns a new thread if no worker is idle.
  void Submit(std::function<void()> fn);

 private:
  WorkerPool() = default;
  void Loop();

  Mutex mu_{lock_rank::kWorkerPool};
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
  size_t idle_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace oodb

#endif  // OODB_EXEC_WORKER_POOL_H_
