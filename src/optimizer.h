// Top-level facade: the Open OODB query optimizer. Wires the default rule
// sets (transformations, implementation rules, enforcers) into the Volcano
// search engine and optimizes logical algebra expressions into physical
// plans with anticipated costs.
#ifndef OODB_OPTIMIZER_H_
#define OODB_OPTIMIZER_H_

#include "src/volcano/search.h"

namespace oodb {

/// Result of one optimization.
struct OptimizedQuery {
  PlanNodePtr plan;
  Cost cost;          ///< anticipated execution cost of the plan
  SearchStats stats;  ///< search effort (Table 2's columns)
};

/// The query optimizer. Thread-compatible: one instance may optimize many
/// queries sequentially; options may be adjusted between optimizations.
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog, OptimizerOptions options = {})
      : catalog_(catalog), options_(std::move(options)) {}

  /// Optimizes `input` (a simplified logical algebra expression built
  /// against `ctx`, which must reference the same catalog). The root is
  /// optimized under `required` — empty by default; an ORDER BY clause
  /// arrives here as a required sort order.
  Result<OptimizedQuery> Optimize(const LogicalExpr& input, QueryContext* ctx,
                                  PhysProps required = {}) const;

  const OptimizerOptions& options() const { return options_; }
  OptimizerOptions& mutable_options() { return options_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
};

}  // namespace oodb

#endif  // OODB_OPTIMIZER_H_
