#include <gtest/gtest.h>

#include "src/catalog/paper_catalog.h"
#include "src/cost/cost_model.h"
#include "src/physical/algorithms.h"

namespace oodb {
namespace {

TEST(CostTest, TotalAndArithmetic) {
  Cost a{1.0, 2.0};
  Cost b{0.5, 0.25};
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
  Cost c = a + b;
  EXPECT_DOUBLE_EQ(c.io_s, 1.5);
  EXPECT_DOUBLE_EQ(c.cpu_s, 2.25);
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), c.total());
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(Cost::Io(1.0) < Cost::Infinite());
}

TEST(CostTest, ToStringMentionsComponents) {
  std::string s = Cost{1.5, 0.5}.ToString();
  EXPECT_NE(s.find("io"), std::string::npos);
  EXPECT_NE(s.find("cpu"), std::string::npos);
}

TEST(CostModelTest, SequentialCheaperThanRandom) {
  CostModel cm;
  EXPECT_LT(cm.SeqRead(100).total(), cm.RandomRead(100).total());
}

TEST(CostModelTest, AssemblyDiscountCurve) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.AssemblyDiscount(1), 1.0);
  EXPECT_LT(cm.AssemblyDiscount(8), 1.0);
  EXPECT_GT(cm.AssemblyDiscount(8), cm.AssemblyDiscount(32));
  // Fully realized by window 32 (the calibration point).
  EXPECT_DOUBLE_EQ(cm.AssemblyDiscount(32),
                   cm.opts().assembly_window_discount_floor);
  EXPECT_DOUBLE_EQ(cm.AssemblyDiscount(1024),
                   cm.opts().assembly_window_discount_floor);
}

TEST(CostModelTest, AssemblyBoundedByKnownPopulation) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  // Department population is 1000: assembling 50000 references faults at
  // most 1000 times.
  Cost bounded = cm.AssemblyIo(db.catalog, db.department, 50000, 32);
  Cost direct = cm.AssemblyIo(db.catalog, db.department, 1000, 32);
  EXPECT_DOUBLE_EQ(bounded.io_s, direct.io_s);
}

TEST(CostModelTest, AssemblyUnboundedForPlants) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  // Plant has no extent: every reference may fault (the paper's Query 1
  // blow-up).
  Cost c = cm.AssemblyIo(db.catalog, db.plant, 50000, 32);
  EXPECT_DOUBLE_EQ(
      c.io_s, 50000 * cm.opts().random_io_s * cm.AssemblyDiscount(32));
}

TEST(CostModelTest, YaoPageFaultEstimate) {
  PaperDb db = MakePaperCatalog();
  CostModelOptions opts;
  opts.yao_page_faults = true;
  CostModel yao(opts);
  CostModel simple;
  // 50000 refs into the 1000-object Department extent (98 pages): Yao
  // expects essentially every page touched but far fewer faults than the
  // 1000-object bound.
  Cost y = yao.AssemblyIo(db.catalog, db.department, 50000, 32);
  Cost s = simple.AssemblyIo(db.catalog, db.department, 50000, 32);
  EXPECT_LT(y.io_s, s.io_s);
  EXPECT_GT(y.io_s, 0.0);
  // Few refs into a large extent: Yao ~= one fault per ref, like the
  // simple model.
  Cost y2 = yao.AssemblyIo(db.catalog, db.person, 10, 32);
  Cost s2 = simple.AssemblyIo(db.catalog, db.person, 10, 32);
  EXPECT_NEAR(y2.io_s, s2.io_s, s2.io_s * 0.01);
  // Unknown populations (Plant) are unaffected by the formula.
  Cost yp = yao.AssemblyIo(db.catalog, db.plant, 500, 32);
  Cost sp = simple.AssemblyIo(db.catalog, db.plant, 500, 32);
  EXPECT_DOUBLE_EQ(yp.io_s, sp.io_s);
}

TEST(CostModelTest, WindowOneCostsFullRandom) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  Cost w1 = cm.AssemblyIo(db.catalog, db.plant, 1000, 1);
  EXPECT_DOUBLE_EQ(w1.io_s, 1000 * cm.opts().random_io_s);
}

TEST(CostModelTest, HashJoinOverflowOnlyBeyondMemory) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.HashJoinOverflowIo(1024.0, 1024.0).total(), 0.0);
  double big = cm.opts().memory_bytes * 2;
  EXPECT_GT(cm.HashJoinOverflowIo(big, big).total(), 0.0);
}

TEST(CostModelTest, PagesForMatchesCatalog) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.PagesFor(db.catalog, db.employee, 50000), 3125);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(db.catalog.PagesFor(db.employee, 50000, 4096)), 3125);
}

TEST(AlgorithmCostTest, FileScanScalesWithPagesAndTuples) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  const CollectionInfo* employees = *db.catalog.FindSet("Employees");
  const CollectionInfo* cities = *db.catalog.FindSet("Cities");
  EXPECT_GT(FileScanCost(cm, db.catalog, *employees).total(),
            FileScanCost(cm, db.catalog, *cities).total());
}

TEST(AlgorithmCostTest, ClusteredIndexScanCheaper) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  Cost unclustered = IndexScanCost(cm, 100, false, 0, db.catalog, db.city);
  Cost clustered = IndexScanCost(cm, 100, true, 0, db.catalog, db.city);
  EXPECT_LT(clustered.total(), unclustered.total());
}

TEST(AlgorithmCostTest, WarmStartBeatsFaultingForDenseAccess) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  BindingTable bindings;
  BindingId e = bindings.AddGet("e", db.employee);
  BindingId d = bindings.AddMat("e.dept", db.department, e, db.emp_dept);
  std::vector<MatStep> steps = {{e, db.emp_dept, d}};
  // 50000 references into a 1000-object extent: pre-scanning the extent
  // (paper Lesson 7) is far cheaper than 1000 discounted faults.
  Cost faulting = AssemblyCost(cm, db.catalog, bindings, 50000, steps, 0, false);
  Cost warm = AssemblyCost(cm, db.catalog, bindings, 50000, steps, 0, true);
  EXPECT_LT(warm.total(), faulting.total());
}

TEST(AlgorithmCostTest, PointerJoinWorseThanAssembly) {
  PaperDb db = MakePaperCatalog();
  CostModel cm;
  BindingTable bindings;
  BindingId e = bindings.AddGet("e", db.employee);
  BindingId d = bindings.AddMat("e.dept", db.department, e, db.emp_dept);
  std::vector<MatStep> steps = {{e, db.emp_dept, d}};
  Cost assembly = AssemblyCost(cm, db.catalog, bindings, 5000, steps, 0, false);
  Cost pointer = PointerJoinCost(cm, db.catalog, 5000, db.department);
  EXPECT_LT(assembly.total(), pointer.total());
}

TEST(AlgorithmCostTest, SortSpillsBeyondMemory) {
  CostModel cm;
  Cost in_memory = SortCost(cm, 1000, 100);
  EXPECT_DOUBLE_EQ(in_memory.io_s, 0.0);
  Cost spilled = SortCost(cm, 1000000, 100);
  EXPECT_GT(spilled.io_s, 0.0);
}

TEST(AlgorithmCostTest, MergeJoinLinear) {
  CostModel cm;
  EXPECT_LT(MergeJoinCost(cm, 100, 100).total(),
            HybridHashJoinCost(cm, 100, 100, 100, 100).total());
}

}  // namespace
}  // namespace oodb
