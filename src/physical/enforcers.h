// Property enforcers (paper §3/§4): the assembly operator as the enforcer
// of presence-in-memory — the mechanism behind the paper's Query 3 plan
// (index scan + assembly enforcer) — and the Sort enforcer for the
// sort-order extension property.
#ifndef OODB_PHYSICAL_ENFORCERS_H_
#define OODB_PHYSICAL_ENFORCERS_H_

#include <memory>
#include <vector>

#include "src/volcano/rule.h"

namespace oodb {

/// Builds the default enforcer set: assembly (present-in-memory) and sort.
std::vector<std::unique_ptr<Enforcer>> MakeDefaultEnforcers();

/// Computes the assembly steps needed to load `missing` on top of a scope
/// where their derivation sources may themselves need loading. Returns the
/// steps in dependency order and the bindings that must already be loaded
/// below (written to `below`). Shared with the baseline greedy planner.
std::vector<MatStep> PlanAssemblySteps(BindingSet missing,
                                       const QueryContext& ctx,
                                       BindingSet* below);

}  // namespace oodb

#endif  // OODB_PHYSICAL_ENFORCERS_H_
