#include "src/session.h"

namespace oodb {

Result<SessionResult> Session::Query(const std::string& zql) {
  SessionResult out;
  out.ctx.catalog = catalog_;
  SortSpec order;
  OODB_ASSIGN_OR_RETURN(out.logical, ParseAndSimplify(zql, &out.ctx, &order));
  PhysProps required;
  required.sort = order;
  Optimizer optimizer(catalog_, options_.optimizer);
  OODB_ASSIGN_OR_RETURN(
      out.optimized, optimizer.Optimize(*out.logical, &out.ctx, required));
  OODB_ASSIGN_OR_RETURN(
      out.exec,
      ExecutePlan(*out.optimized.plan, &store_, &out.ctx, options_.exec));
  return out;
}

Result<std::string> Session::Explain(const std::string& zql) {
  QueryContext ctx;
  ctx.catalog = catalog_;
  SortSpec order;
  OODB_ASSIGN_OR_RETURN(LogicalExprPtr logical,
                        ParseAndSimplify(zql, &ctx, &order));
  PhysProps required;
  required.sort = order;
  Optimizer optimizer(catalog_, options_.optimizer);
  OODB_ASSIGN_OR_RETURN(OptimizedQuery optimized,
                        optimizer.Optimize(*logical, &ctx, required));
  return PrintPlan(*optimized.plan, ctx, /*with_costs=*/true);
}

}  // namespace oodb
