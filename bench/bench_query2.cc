// E6-E7 — Query 2 (Figures 8 and 9): the collapse-to-index-scan
// implementation rule and the cost of losing it (or the index).
#include "bench/bench_util.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Query 2 (ZQL)");
  std::printf("%s\n", kQuery2Text);

  bench::Header("Query 2 after simplification");
  {
    QueryContext ctx;
    auto logical = BuildPaperQuery(2, db, &ctx);
    std::printf("%s", PrintLogicalTree(**logical, ctx).c_str());
  }

  double fast_cost, slow_cost;
  bench::Header("Figure 8: optimal plan (collapse-to-index-scan)");
  {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(2, db, &ctx);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    fast_cost = q.cost.total();
    std::printf("estimated execution %.3f s (paper: 0.08 s), optimization "
                "%.3f ms\n",
                fast_cost, bench::OptimizeTime(2, db, {}) * 1000.0);
  }

  bench::Header("Figure 9: plan w/o collapse-to-index-scan");
  {
    OptimizerOptions opts;
    opts.disabled_rules = {kImplIndexScan};
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(2, db, &ctx, opts);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    slow_cost = q.cost.total();
    std::printf("estimated execution %.1f s (paper: 119.6 s)\n", slow_cost);
  }

  bench::Header("Same plan when the path index does not exist");
  {
    (void)db.catalog.SetIndexEnabled(kIdxCitiesMayorName, false);
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(2, db, &ctx);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
    (void)db.catalog.SetIndexEnabled(kIdxCitiesMayorName, true);
  }

  std::printf("\nSlowdown without the rule: %.0fx (paper: ~1500x, \"about "
              "four orders of magnitude\")\n",
              slow_cost / fast_cost);
  return 0;
}
