// Session: the convenience facade bundling a catalog, an object store, and
// an optimizer into a queryable "database" — parse, simplify, optimize, and
// execute in one call. Optionally serves repeated queries from a plan cache
// (private or shared between sessions) keyed by canonical fingerprint and
// catalog statistics version.
#ifndef OODB_SESSION_H_
#define OODB_SESSION_H_

#include <memory>
#include <string>

#include "src/catalog/analyze.h"
#include "src/exec/executor.h"
#include "src/optimizer.h"
#include "src/optimizer/plan_cache.h"
#include "src/query/simplify.h"
#include "src/trace/card_feedback.h"

namespace oodb {

/// Query-level execution retry (Session::Options::retry). Inert by default
/// (one attempt, exactly the seed execution path). When armed, a retryable
/// execution failure (kWorkerFault / kStorageFault — see
/// IsRetryableExecFault) triggers re-execution with exponential backoff in
/// *simulated* time (cold_start resets the clock per attempt, so backoff is
/// tracked as a separate accumulated quantity) down a degradation ladder:
///   attempt 0: as configured (vectorized)
///   attempt 1: row engine (vectorize off)
///   attempt 2: serial (every Exchange skipped; no worker threads)
///   attempt 3+: greedy-baseline re-plan, executed serially
/// Each retry is charged to the governor's retry budget; a tripped budget
/// or a non-retryable failure ends the ladder with that typed Status.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = no retry (seed behavior).
  int max_attempts = 1;
  /// Base backoff in simulated seconds before the first retry; doubles per
  /// subsequent retry. Accumulated on SessionResult::retry_backoff_s.
  double backoff_s = 0.0;
  /// Walk the degradation ladder across attempts. False: every attempt
  /// re-runs the original configuration (pure retry).
  bool degrade = true;

  bool enabled() const { return max_attempts > 1; }
};

/// Drift-driven adaptation (Session::Options::adaptive). Inert by default:
/// every threshold 0 means no drift checks, no drift-based cache eviction,
/// and no auto-ANALYZE — exactly the seed behavior. Three layers, armed
/// independently:
///   - replan_drift_threshold: mid-query re-optimization. Pipeline-breaker
///     inputs (hash-join build, Sort/TopK input) abort with kPlanDrift when
///     actual rows drift past the estimate by this factor; the session
///     extracts CardFeedback from the partial profile, re-enters the memo
///     with observed cardinalities, and re-executes the corrected plan. The
///     re-plan rides the retry trail (SessionResult::attempts) and is
///     charged to the governor's retry budget.
///   - evict_drift_threshold: post-execution, the observed MaxDriftRatio is
///     recorded on the plan-cache entry; past the threshold the entry is
///     evicted so the next Prepare re-optimizes — retiring misestimated
///     plans even when no ANALYZE ever bumps the stats version.
///   - analyze_drift_threshold: past this drift, the session triggers a
///     rate-limited ANALYZE of the store (charged to the statement's
///     governor), bumping the stats version and invalidating *all* plans
///     costed under the stale statistics.
struct AdaptiveOptions {
  /// Mid-query re-plan trigger factor (0 = off). A pipeline-breaker input
  /// whose actual rows exceed the estimate by this factor (or undershoot it
  /// at EOS) aborts the suffix and re-plans with observed cardinalities.
  double replan_drift_threshold = 0.0;
  /// Mid-query re-plans allowed per statement. The re-executed plan runs
  /// with drift checks disarmed once the budget is spent, so a statement
  /// always terminates.
  int max_replans = 1;
  /// Post-execution drift past which the served plan-cache entry is evicted
  /// (0 = off).
  double evict_drift_threshold = 0.0;
  /// Post-execution drift past which an automatic ANALYZE refreshes catalog
  /// statistics (0 = off).
  double analyze_drift_threshold = 0.0;
  /// Rate limit for auto-ANALYZE: at least this many executed statements
  /// between runs (counted, not timed, for determinism).
  int analyze_cooldown = 8;
  /// Options for the triggered ANALYZE (its governor field is overwritten
  /// with the statement's governor).
  AnalyzeOptions analyze;

  /// Any post-execution layer armed (requires a profile even on Query).
  bool feedback_enabled() const {
    return evict_drift_threshold > 0.0 || analyze_drift_threshold > 0.0;
  }
  bool replan_enabled() const {
    return replan_drift_threshold > 0.0 && max_replans > 0;
  }
  bool enabled() const { return feedback_enabled() || replan_enabled(); }
};

/// One execution attempt's outcome in the Session retry trail: the ladder
/// step it ran at, its terminal status (OK on success), the fault/recovery
/// counters it observed, and the simulated backoff charged before the
/// *next* attempt (0 on the last). Rendered by EXPLAIN ANALYZE so a
/// recovered query's history is visible on the final profile.
struct ExecAttempt {
  int attempt = 0;
  std::string step;  ///< "vectorized" | "row" | "serial" | "greedy"
  Status status = Status::OK();
  int64_t faults_injected = 0;
  int64_t partitions_retried = 0;
  int64_t partitions_speculated = 0;
  double backoff_s = 0.0;
  /// This attempt ran a plan re-optimized from the previous attempt's
  /// observed cardinalities (mid-query re-planning).
  bool replanned = false;
  /// Simulated seconds this attempt consumed (partial on an aborted
  /// attempt) — the honest total-work accounting across re-plans.
  double sim_s = 0.0;
};

/// The result of Session::Query: the plan, its anticipated cost, and the
/// executed rows/statistics.
struct SessionResult {
  QueryContext ctx;  ///< bindings (needed to render plan/exprs)
  LogicalExprPtr logical;
  /// Physical properties the statement requires (ORDER BY sort, LIMIT row
  /// count). Kept so the retry ladder's greedy re-plan preserves them.
  PhysProps required;
  OptimizedQuery optimized;
  ExecStats exec;
  /// Execution attempt history (one entry per attempt; a single OK entry on
  /// the clean path). Empty when the statement was only prepared.
  std::vector<ExecAttempt> attempts;
  /// Total simulated backoff charged across retries.
  double retry_backoff_s = 0.0;
  /// Cardinality feedback the final plan was optimized with (null unless a
  /// mid-query re-plan happened). Owns the object ctx.feedback points at.
  std::shared_ptr<const CardFeedback> feedback;
  /// Mid-query re-optimizations performed for this statement.
  int replans = 0;
  /// Plan-cache key the statement was keyed under (valid when cache_keyed);
  /// Query records post-execution drift against it.
  PlanCacheKey cache_key;
  bool cache_keyed = false;
  /// Post-execution adaptation outcome (meaningful after Query /
  /// ExplainAnalyze when Options::adaptive is armed).
  double observed_drift = 1.0;
  bool drift_evicted = false;
  bool auto_analyzed = false;

  std::string PlanText(bool with_costs = false) const {
    return PrintPlan(*optimized.plan, ctx, with_costs);
  }
  const std::vector<std::vector<Value>>& rows() const {
    return exec.sample_rows;
  }
};

/// A queryable database session. Owns the store; the catalog is shared and
/// may be updated (Analyze, index toggles) between queries.
class Session {
 public:
  struct Options {
    OptimizerOptions optimizer;
    StoreOptions store;
    ExecOptions exec;
    /// Per-query resource limits (deadline, budgets, cancellation). The
    /// default is inert: no governor is constructed and every code path is
    /// identical to the ungoverned seed. When any limit is set, each
    /// Prepare/Query arms a fresh QueryGovernor spanning optimization and
    /// (for Query) execution; optimizer-side trips degrade to the greedy
    /// baseline planner when `governor.degrade_to_greedy` is true.
    GovernorOptions governor;
    /// Query-level execution retry and degradation ladder. Inert by
    /// default (single attempt).
    RetryPolicy retry;
    /// Drift-driven adaptation: mid-query re-planning, drift-based plan
    /// cache eviction, and auto-ANALYZE. Inert by default.
    AdaptiveOptions adaptive;
    /// A plan cache shared with other sessions over the *same catalog*
    /// (the throughput path for concurrent multi-session traffic). When
    /// null and optimizer.plan_cache_capacity > 0, the session creates a
    /// private cache of that capacity on first use.
    std::shared_ptr<PlanCache> plan_cache;

    Options() { exec.sample_limit = 1000; }  // keep whole result sets
  };

  explicit Session(Catalog* catalog, Options options = {})
      : catalog_(catalog), options_(std::move(options)),
        store_(catalog, options_.store) {}

  ObjectStore& store() { return store_; }
  Catalog& catalog() { return *catalog_; }
  Options& options() { return options_; }

  /// The cache this session consults, or null when caching is off.
  PlanCache* plan_cache();

  /// Parses, simplifies, and optimizes a ZQL query without executing it —
  /// serving the plan from the cache when possible (exec stats stay empty).
  Result<SessionResult> Prepare(const std::string& zql);

  /// Parses, simplifies, optimizes, and executes a ZQL query.
  Result<SessionResult> Query(const std::string& zql);

  /// Optimizes without executing; returns the rendered plan with costs,
  /// annotated with `plan: cached` and the cache counters when the plan
  /// cache served or recorded it.
  Result<std::string> Explain(const std::string& zql);

  /// EXPLAIN ANALYZE: optimizes *and executes* the query with per-operator
  /// runtime counters, then renders the plan annotated with estimated vs
  /// actual cardinality (drift ratio), batches, simulated CPU/I/O seconds,
  /// buffer traffic (serial plans only — see ExecProfile::io_timed), and
  /// per-worker utilization under Exchange. When execution fails mid-plan
  /// (governor trip, injected storage fault) the partial profile is still
  /// rendered, prefixed with an `exec: FAILED(...)` line.
  Result<std::string> ExplainAnalyze(const std::string& zql);

  /// Refreshes the catalog's statistics from the stored data (bumps the
  /// catalog stats_version, invalidating cached plans).
  Status Analyze(AnalyzeOptions options = {}) {
    return AnalyzeStore(store_, catalog_, options);
  }

 private:
  /// Runs the cost-based optimizer under the active governor; on an
  /// optimizer budget/deadline trip with degradation enabled, re-plans with
  /// the greedy baseline and marks the result degraded.
  Result<OptimizedQuery> RunOptimizer(const LogicalExpr& input,
                                      QueryContext* ctx,
                                      const PhysProps& required);

  /// The annotation lines shared by Explain and ExplainAnalyze (degraded /
  /// cached / verify / cache counters / governor / exec batch+dop).
  std::string ExplainHeader(const SessionResult& r);

  /// Executes `r`'s plan under options_.retry: re-attempts retryable
  /// failures down the degradation ladder (see RetryPolicy), recording the
  /// per-attempt trail on r->attempts. When `profile` is non-null each
  /// attempt records into a private ExecProfile and only the *final*
  /// attempt's profile is merged into `profile` (earlier attempts would
  /// double-count operators). A greedy-step success replaces r->optimized
  /// with the greedy plan (marked degraded) so the rendered plan is the one
  /// that actually produced the rows.
  Result<ExecStats> ExecuteWithRetry(SessionResult* r, ExecProfile* profile);

  /// Mid-query re-plan: extracts CardFeedback from the aborted attempt's
  /// partial profile and re-optimizes under it, replacing r->optimized.
  /// Feedback plans never enter the plan cache (RunOptimizer does not
  /// insert; only Prepare does). Fails when the profile yielded no usable
  /// feedback or the re-optimization itself failed; the caller then disarms
  /// drift checks and re-executes the original plan.
  Status ReplanWithFeedback(SessionResult* r, const ExecProfile& profile);

  /// Post-execution adaptation: records the observed MaxDriftRatio on the
  /// plan-cache entry (evicting past Options::adaptive.evict_drift_threshold)
  /// and triggers the rate-limited auto-ANALYZE past
  /// analyze_drift_threshold.
  void MaybeAdapt(SessionResult* r, const ExecProfile& profile);

  Catalog* catalog_;
  Options options_;
  ObjectStore store_;
  std::shared_ptr<PlanCache> own_cache_;
  /// Governor for the query currently being prepared/executed; rebuilt at
  /// each Prepare when options_.governor is enabled, null otherwise.
  std::unique_ptr<QueryGovernor> governor_;
  /// Statements executed since the last auto-ANALYZE (the deterministic
  /// cooldown clock). Seeded to the cooldown so the first trigger is
  /// immediate.
  int64_t executed_since_analyze_ = 1 << 20;
};

}  // namespace oodb

#endif  // OODB_SESSION_H_
