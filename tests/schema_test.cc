#include <gtest/gtest.h>

#include "src/catalog/schema.h"

namespace oodb {
namespace {

Schema TwoTypes(TypeId* person, TypeId* city) {
  Schema s;
  *person = s.AddType("Person", 100);
  *city = s.AddType("City", 200);
  FieldDef name;
  name.name = "name";
  name.kind = FieldKind::kString;
  s.mutable_type(*person).AddField(name);
  FieldDef mayor;
  mayor.name = "mayor";
  mayor.kind = FieldKind::kRef;
  mayor.target_type = *person;
  s.mutable_type(*city).AddField(mayor);
  return s;
}

TEST(SchemaTest, AddTypeAssignsSequentialIds) {
  Schema s;
  EXPECT_EQ(s.AddType("A", 10), 0);
  EXPECT_EQ(s.AddType("B", 20), 1);
  EXPECT_EQ(s.num_types(), 2);
  EXPECT_EQ(s.type(0).name(), "A");
  EXPECT_EQ(s.type(1).object_size(), 20);
}

TEST(SchemaTest, TypeByName) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  auto r = s.TypeByName("City");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, c);
  EXPECT_FALSE(s.TypeByName("Nope").ok());
}

TEST(SchemaTest, FieldLookup) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  auto f = s.type(p).FieldByName("name");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(s.type(p).field(*f).kind, FieldKind::kString);
  EXPECT_FALSE(s.type(p).FieldByName("zzz").ok());
}

TEST(SchemaTest, ResolveField) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  auto f = s.ResolveField(c, "mayor");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(s.type(c).field(*f).target_type, p);
}

TEST(SchemaTest, ResolveFieldBadType) {
  Schema s;
  EXPECT_FALSE(s.ResolveField(5, "x").ok());
}

TEST(SchemaTest, InheritCopiesFields) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  TypeId capital = s.AddType("Capital", 400);
  ASSERT_TRUE(s.InheritFields(capital, c).ok());
  auto f = s.type(capital).FieldByName("mayor");
  ASSERT_TRUE(f.ok());
  // Field ids are shared between super- and subtype.
  EXPECT_EQ(*f, *s.type(c).FieldByName("mayor"));
  EXPECT_EQ(s.type(capital).supertype(), c);
}

TEST(SchemaTest, InheritRequiresEmptySubtype) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  TypeId t = s.AddType("T", 10);
  FieldDef f;
  f.name = "x";
  s.mutable_type(t).AddField(f);
  EXPECT_FALSE(s.InheritFields(t, c).ok());
}

TEST(SchemaTest, IsSubtypeOf) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  TypeId capital = s.AddType("Capital", 400);
  ASSERT_TRUE(s.InheritFields(capital, c).ok());
  EXPECT_TRUE(s.IsSubtypeOf(capital, c));
  EXPECT_TRUE(s.IsSubtypeOf(c, c));
  EXPECT_FALSE(s.IsSubtypeOf(c, capital));
  EXPECT_FALSE(s.IsSubtypeOf(p, c));
}

TEST(SchemaTest, FieldKindNames) {
  EXPECT_STREQ(FieldKindName(FieldKind::kInt), "int");
  EXPECT_STREQ(FieldKindName(FieldKind::kDouble), "double");
  EXPECT_STREQ(FieldKindName(FieldKind::kString), "string");
  EXPECT_STREQ(FieldKindName(FieldKind::kRef), "ref");
  EXPECT_STREQ(FieldKindName(FieldKind::kRefSet), "set<ref>");
}

TEST(SchemaTest, HasField) {
  TypeId p, c;
  Schema s = TwoTypes(&p, &c);
  EXPECT_TRUE(s.type(p).has_field(0));
  EXPECT_FALSE(s.type(p).has_field(1));
  EXPECT_FALSE(s.type(p).has_field(-1));
}

}  // namespace
}  // namespace oodb
