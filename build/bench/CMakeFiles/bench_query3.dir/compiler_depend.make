# Empty compiler generated dependencies file for bench_query3.
# This may be replaced when dependencies are built.
