#include <gtest/gtest.h>

#include "src/catalog/paper_catalog.h"

namespace oodb {
namespace {

TEST(CatalogTest, AddSetAndLookup) {
  Catalog cat;
  TypeId t = cat.schema().AddType("T", 100);
  ASSERT_TRUE(cat.AddSet("S", t, 500).ok());
  auto s = cat.FindSet("S");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->cardinality, 500);
  EXPECT_EQ((*s)->id.type, t);
  EXPECT_FALSE(cat.FindSet("missing").ok());
}

TEST(CatalogTest, DuplicateSetRejected) {
  Catalog cat;
  TypeId t = cat.schema().AddType("T", 100);
  ASSERT_TRUE(cat.AddSet("S", t, 1).ok());
  EXPECT_EQ(cat.AddSet("S", t, 2).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ExtentAndTypeCardinality) {
  Catalog cat;
  TypeId t = cat.schema().AddType("T", 100);
  TypeId u = cat.schema().AddType("U", 100);
  ASSERT_TRUE(cat.AddExtent(t, 1000).ok());
  EXPECT_TRUE(cat.HasExtent(t));
  EXPECT_FALSE(cat.HasExtent(u));
  EXPECT_EQ(cat.TypeCardinality(t).value(), 1000);
  EXPECT_FALSE(cat.TypeCardinality(u).has_value());
  EXPECT_EQ(cat.AddExtent(t, 5).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, CollectionIdDisplay) {
  Catalog cat;
  TypeId t = cat.schema().AddType("Job", 250);
  EXPECT_EQ(CollectionId::Set("Jobs", t).Display(cat.schema()), "Jobs");
  EXPECT_EQ(CollectionId::Extent(t).Display(cat.schema()), "extent(Job)");
}

TEST(CatalogTest, IndexValidation) {
  Catalog cat;
  TypeId person = cat.schema().AddType("Person", 100);
  TypeId city = cat.schema().AddType("City", 200);
  FieldDef name;
  name.name = "name";
  name.kind = FieldKind::kString;
  FieldId person_name = cat.schema().mutable_type(person).AddField(name);
  FieldDef mayor;
  mayor.name = "mayor";
  mayor.kind = FieldKind::kRef;
  mayor.target_type = person;
  FieldId city_mayor = cat.schema().mutable_type(city).AddField(mayor);
  ASSERT_TRUE(cat.AddSet("Cities", city, 100).ok());

  IndexInfo good;
  good.name = "idx";
  good.collection = CollectionId::Set("Cities", city);
  good.path = {city_mayor, person_name};
  good.distinct_keys = 50;
  EXPECT_TRUE(cat.AddIndex(good).ok());

  IndexInfo empty_path = good;
  empty_path.name = "bad1";
  empty_path.path = {};
  EXPECT_FALSE(cat.AddIndex(empty_path).ok());

  IndexInfo key_is_ref = good;
  key_is_ref.name = "bad2";
  key_is_ref.path = {city_mayor};  // ends at a ref, not a scalar
  EXPECT_FALSE(cat.AddIndex(key_is_ref).ok());

  IndexInfo dup = good;
  EXPECT_EQ(cat.AddIndex(dup).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, IndexEnableDisable) {
  PaperDb db = MakePaperCatalog();
  CollectionId tasks = CollectionId::Set("Tasks", db.task);
  EXPECT_EQ(db.catalog.IndexesOn(tasks).size(), 1u);
  ASSERT_TRUE(db.catalog.SetIndexEnabled(kIdxTasksTime, false).ok());
  EXPECT_EQ(db.catalog.IndexesOn(tasks).size(), 0u);
  ASSERT_TRUE(db.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  EXPECT_EQ(db.catalog.IndexesOn(tasks).size(), 1u);
  EXPECT_FALSE(db.catalog.SetIndexEnabled("missing", true).ok());
}

TEST(CatalogTest, PagesForDensePacking) {
  Catalog cat;
  TypeId t = cat.schema().AddType("T", 250);
  // 4096 / 250 = 16 objects per page.
  EXPECT_EQ(cat.PagesFor(t, 16, 4096), 1);
  EXPECT_EQ(cat.PagesFor(t, 17, 4096), 2);
  EXPECT_EQ(cat.PagesFor(t, 50000, 4096), 3125);
}

TEST(CatalogTest, PagesForObjectLargerThanPage) {
  Catalog cat;
  TypeId t = cat.schema().AddType("Huge", 10000);
  EXPECT_EQ(cat.PagesFor(t, 5, 4096), 5);  // one object per page minimum
}

// --- The paper's Table 1 ---

TEST(PaperCatalogTest, Table1Cardinalities) {
  PaperDb db = MakePaperCatalog();
  EXPECT_EQ((*db.catalog.FindSet("Capitals"))->cardinality, 160);
  EXPECT_EQ((*db.catalog.FindSet("Cities"))->cardinality, 10000);
  EXPECT_EQ((*db.catalog.FindSet("Employees"))->cardinality, 50000);
  EXPECT_EQ(db.catalog.TypeCardinality(db.country).value(), 160);
  EXPECT_EQ(db.catalog.TypeCardinality(db.department).value(), 1000);
  EXPECT_EQ(db.catalog.TypeCardinality(db.employee).value(), 200000);
  EXPECT_EQ(db.catalog.TypeCardinality(db.information).value(), 1000);
  EXPECT_EQ(db.catalog.TypeCardinality(db.job).value(), 5000);
  EXPECT_EQ(db.catalog.TypeCardinality(db.person).value(), 100000);
}

TEST(PaperCatalogTest, Table1ObjectSizes) {
  PaperDb db = MakePaperCatalog();
  const Schema& s = db.catalog.schema();
  EXPECT_EQ(s.type(db.capital).object_size(), 400);
  EXPECT_EQ(s.type(db.city).object_size(), 200);
  EXPECT_EQ(s.type(db.country).object_size(), 300);
  EXPECT_EQ(s.type(db.department).object_size(), 400);
  EXPECT_EQ(s.type(db.employee).object_size(), 250);
  EXPECT_EQ(s.type(db.job).object_size(), 250);
  EXPECT_EQ(s.type(db.person).object_size(), 100);
  EXPECT_EQ(s.type(db.plant).object_size(), 1000);
}

TEST(PaperCatalogTest, PlantHasNoKnownCardinality) {
  PaperDb db = MakePaperCatalog();
  EXPECT_FALSE(db.catalog.HasExtent(db.plant));
  EXPECT_FALSE(db.catalog.TypeCardinality(db.plant).has_value());
}

TEST(PaperCatalogTest, CapitalInheritsCityFields) {
  PaperDb db = MakePaperCatalog();
  const Schema& s = db.catalog.schema();
  EXPECT_TRUE(s.IsSubtypeOf(db.capital, db.city));
  auto mayor = s.ResolveField(db.capital, "mayor");
  ASSERT_TRUE(mayor.ok());
  EXPECT_EQ(*mayor, db.city_mayor);
}

TEST(PaperCatalogTest, IndexesRegistered) {
  PaperDb db = MakePaperCatalog();
  auto idx = db.catalog.FindIndex(kIdxCitiesMayorName);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->path.size(), 2u);
  EXPECT_EQ((*idx)->distinct_keys, 5000);
  EXPECT_TRUE(db.catalog.FindIndex(kIdxTasksTime).ok());
  EXPECT_TRUE(db.catalog.FindIndex(kIdxEmployeesName).ok());
}

TEST(PaperCatalogTest, ScaledCatalogPreservesSelectivities) {
  PaperDb full = MakePaperCatalog(1.0);
  PaperDb tenth = MakePaperCatalog(0.1);
  // matches = card / distinct stays invariant under scaling.
  auto ratio = [](const PaperDb& db) {
    double card = (*db.catalog.FindSet("Cities"))->cardinality;
    double distinct = (*db.catalog.FindIndex(kIdxCitiesMayorName))->distinct_keys;
    return card / distinct;
  };
  EXPECT_NEAR(ratio(full), ratio(tenth), 0.01);
  EXPECT_EQ((*tenth.catalog.FindSet("Cities"))->cardinality, 1000);
}

TEST(PaperCatalogTest, TableStringMentionsEveryType) {
  PaperDb db = MakePaperCatalog();
  std::string table = db.catalog.ToTableString();
  for (const char* name : {"Person", "City", "Capital", "Country", "Plant",
                           "Department", "Job", "Employee", "Task"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace oodb
