// Adversarial stale-statistics workload: the drift-adaptation gate.
//
// The catalog's statistics for the OO7 atomic-part library are stale — they
// date from when the library was nearly empty (cardinality 1), while the
// store actually holds tens of thousands of parts, and the query's
// correlated x/y range predicates compound the misestimate. Under those
// statistics the static optimizer picks a plan that is catastrophic at the
// real cardinality (a tiny-outer join strategy re-scanning the inner side
// per row); the adaptive session executes the same initial plan, trips the
// drift check at the first pipeline breaker, aborts the suffix, re-plans
// with the observed cardinalities, and finishes on a sane plan.
//
// The claim under test (deterministic simulated seconds, not wall clock):
// end-to-end executed simulated time of the adaptive session — *including*
// the aborted attempt's sunk work — is >= 2x better than the static
// session's, with identical results.
//
// Results are written to BENCH_adaptive.json ({"adaptive": [{"mode": ...,
// "sim_s": ...}, ...], "speedup_adaptive": S, "replans": N}) for the
// regression gate in scripts/check_bench_regression.py.
#include <cstdio>
#include <memory>
#include <string>

#include "src/oodb.h"
#include "src/workloads/oo7.h"

namespace oodb {
namespace {

Oo7Options BenchConfig() {
  Oo7Options o;
  o.num_composite_parts = 200;
  o.atomic_per_composite = 60;  // 12000 atomic parts actually stored
  o.complex_per_module = 4;
  o.base_per_complex = 8;
  o.num_build_dates = 10;
  return o;
}

/// Join + order: the breaker (Sort input / hash-join build) gives the
/// adaptive session its abort point, and the join-strategy choice is what
/// the stale cardinality poisons.
constexpr const char* kAdversarial =
    "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
    "CompositePart p IN CompositeParts "
    "WHERE a.partOf == p && a.x > 100 && a.y < 900 && p.buildDate >= 2 "
    "ORDER BY a.id;";

struct RunResult {
  double sim_s = 0.0;
  int64_t rows = 0;
  int replans = 0;
  int attempts = 0;
};

/// Executes the adversarial query in a fresh session over its own store,
/// returning the session's *simulated-clock delta* across the whole
/// statement — every attempt's I/O and CPU, aborted work included.
bool RunMode(Oo7Db* db, const Oo7Options& o, const Session::Options& opts,
             RunResult* out) {
  Session session(&db->catalog, opts);
  Status populated = PopulateOo7(db, &session.store(), o);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate: %s\n", populated.ToString().c_str());
    return false;
  }
  const double sim_before =
      session.store().clock().io_s + session.store().clock().cpu_s;
  auto r = session.Query(kAdversarial);
  if (!r.ok()) {
    std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
    return false;
  }
  out->sim_s = session.store().clock().io_s + session.store().clock().cpu_s -
               sim_before;
  out->rows = r->exec.rows;
  out->replans = r->replans;
  out->attempts = static_cast<int>(r->attempts.size());
  return true;
}

int Main() {
  Oo7Options o = BenchConfig();
  std::unique_ptr<Oo7Db> db = MakeOo7Catalog(o);

  // Go stale: the atomic-part statistics predate the bulk load.
  CollectionId atomics = CollectionId::Set("AtomicParts", db->atomic_part);
  Status stale = db->catalog.SetCardinality(atomics, 1);
  if (!stale.ok()) {
    std::fprintf(stderr, "perturb: %s\n", stale.ToString().c_str());
    return 1;
  }

  Session::Options static_opts;  // the seed path: believes the catalog
  RunResult st;
  if (!RunMode(db.get(), o, static_opts, &st)) return 1;

  Session::Options adaptive_opts;
  adaptive_opts.adaptive.replan_drift_threshold = 4.0;
  RunResult ad;
  if (!RunMode(db.get(), o, adaptive_opts, &ad)) return 1;

  std::printf("adversarial stale-stats join (OO7, %d atomic parts, "
              "catalog says 1):\n",
              o.num_composite_parts * o.atomic_per_composite);
  std::printf("  static   : sim %10.3fs  rows %lld  attempts %d\n",
              st.sim_s, static_cast<long long>(st.rows), st.attempts);
  std::printf("  adaptive : sim %10.3fs  rows %lld  attempts %d  "
              "replans %d\n",
              ad.sim_s, static_cast<long long>(ad.rows), ad.attempts,
              ad.replans);
  double speedup = ad.sim_s > 0.0 ? st.sim_s / ad.sim_s : 0.0;
  std::printf("  speedup adaptive vs static (simulated): %.2fx\n", speedup);

  std::FILE* json = std::fopen("BENCH_adaptive.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_adaptive.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"workload\": \"oo7-stale-stats-join-orderby\",\n");
  std::fprintf(json, "  \"adaptive\": [\n");
  std::fprintf(json,
               "    {\"mode\": \"static\", \"sim_s\": %.6f, \"rows\": %lld},\n",
               st.sim_s, static_cast<long long>(st.rows));
  std::fprintf(json,
               "    {\"mode\": \"adaptive\", \"sim_s\": %.6f, "
               "\"rows\": %lld}\n",
               ad.sim_s, static_cast<long long>(ad.rows));
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_adaptive\": %.2f,\n", speedup);
  std::fprintf(json, "  \"replans\": %d\n}\n", ad.replans);
  std::fclose(json);
  std::printf("wrote BENCH_adaptive.json\n");

  // Gates: identical results, a real mid-query re-plan, and the 2x claim.
  if (ad.rows != st.rows) {
    std::fprintf(stderr, "FAIL: adaptive rows %lld != static rows %lld\n",
                 static_cast<long long>(ad.rows),
                 static_cast<long long>(st.rows));
    return 2;
  }
  if (ad.replans < 1) {
    std::fprintf(stderr, "FAIL: adaptive session never re-planned\n");
    return 2;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: adaptive speedup %.2fx < 2x\n", speedup);
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace oodb

int main() { return oodb::Main(); }
