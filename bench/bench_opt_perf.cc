// E12 — optimizer performance (google-benchmark): the paper's §1 goal that
// "moderately complex queries should be optimized on today's workstations
// in less than 1 sec". Measures full optimization (simplified input ->
// plan) for each paper query plus a wider 5-range join query, and the
// parse+simplify front end.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "src/oodb.h"
#include "src/workloads/paper_queries.h"

namespace oodb {
namespace {

const PaperDb& Db() {
  static PaperDb db = MakePaperCatalog();
  return db;
}

/// Asserts the paper's §1 performance goal on the measured wall clock
/// (SearchStats::optimize_seconds, steady_clock inside the search engine):
/// exceeding 1 sec fails the benchmark instead of relying on eyeballing.
void CheckUnderOneSecond(benchmark::State& state, double max_optimize_s) {
  state.counters["optimize_wall_s_max"] = max_optimize_s;
  if (max_optimize_s >= 1.0) {
    state.SkipWithError(("optimize wall clock " +
                         std::to_string(max_optimize_s) +
                         "s breaks the paper's <1 sec goal")
                            .c_str());
  }
}

void BM_OptimizePaperQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  double max_optimize_s = 0.0;
  for (auto _ : state) {
    QueryContext ctx;
    auto logical = BuildPaperQuery(n, Db(), &ctx);
    Optimizer opt(&Db().catalog);
    auto r = opt.Optimize(**logical, &ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    max_optimize_s = std::max(max_optimize_s, r->stats.optimize_seconds);
    benchmark::DoNotOptimize(r);
  }
  CheckUnderOneSecond(state, max_optimize_s);
}
BENCHMARK(BM_OptimizePaperQuery)->DenseRange(1, 4);

// A "moderately complex" query: three ranges, a set-valued path, and five
// predicates — a superset of every paper query's features.
constexpr const char* kComplexQuery =
    "SELECT e.name, d.name, t.name "
    "FROM Employee e IN Employees, Department d IN Department, "
    "     Task t IN Tasks, Employee m IN t.team_members "
    "WHERE e.dept == d && d.floor == 3 && e.age >= 32 && "
    "      t.time == 100 && m.name == e.name;";

void BM_OptimizeComplexQuery(benchmark::State& state) {
  double max_optimize_s = 0.0;
  for (auto _ : state) {
    QueryContext ctx;
    ctx.catalog = &Db().catalog;
    auto logical = ParseAndSimplify(kComplexQuery, &ctx);
    if (!logical.ok()) state.SkipWithError(logical.status().ToString().c_str());
    Optimizer opt(&Db().catalog);
    auto r = opt.Optimize(**logical, &ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    max_optimize_s = std::max(max_optimize_s, r->stats.optimize_seconds);
    benchmark::DoNotOptimize(r);
  }
  CheckUnderOneSecond(state, max_optimize_s);
}
BENCHMARK(BM_OptimizeComplexQuery);

void BM_ParseAndSimplify(benchmark::State& state) {
  for (auto _ : state) {
    QueryContext ctx;
    ctx.catalog = &Db().catalog;
    auto logical = ParseAndSimplify(kQuery1Text, &ctx);
    benchmark::DoNotOptimize(logical);
  }
}
BENCHMARK(BM_ParseAndSimplify);

void BM_GreedyPlanQuery4(benchmark::State& state) {
  for (auto _ : state) {
    QueryContext ctx;
    auto logical = BuildPaperQuery(4, Db(), &ctx);
    GreedyOptimizer greedy(&Db().catalog);
    auto r = greedy.Optimize(**logical, &ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyPlanQuery4);

// Exploration growth: join chains of increasing width (stress of the memo
// and the join reordering rules).
void BM_OptimizeJoinChain(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  std::string text = "SELECT e1.name FROM Employee e1 IN Employees";
  for (int i = 2; i <= width; ++i) {
    text += ", Employee e" + std::to_string(i) + " IN Employees";
  }
  text += " WHERE ";
  for (int i = 2; i <= width; ++i) {
    if (i > 2) text += " && ";
    text += "e1.name == e" + std::to_string(i) + ".name";
  }
  text += ";";
  for (auto _ : state) {
    QueryContext ctx;
    ctx.catalog = &Db().catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    if (!logical.ok()) state.SkipWithError(logical.status().ToString().c_str());
    Optimizer opt(&Db().catalog);
    auto r = opt.Optimize(**logical, &ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeJoinChain)->DenseRange(2, 5);

// Post-optimization static verification (memo + plan walks) is on by
// default in Debug builds; it must stay cheap enough to leave there. This
// benchmark optimizes the four paper queries with verification off and on,
// interleaved so clock drift hits both passes equally, and fails if the
// verified pass costs more than 5% extra optimize wall time.
void BM_VerifyOverhead(benchmark::State& state) {
  double verified_s = 0.0;
  double plain_s = 0.0;
  for (auto _ : state) {
    for (int pass = 0; pass < 2; ++pass) {
      OptimizerOptions opts;
      opts.verify_plans = pass == 1;
      for (int n = 1; n <= 4; ++n) {
        QueryContext ctx;
        auto logical = BuildPaperQuery(n, Db(), &ctx);
        Optimizer opt(&Db().catalog, opts);
        auto r = opt.Optimize(**logical, &ctx);
        if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
        (pass == 1 ? verified_s : plain_s) += r->stats.optimize_seconds;
      }
    }
  }
  double overhead = plain_s > 0.0 ? (verified_s - plain_s) / plain_s : 0.0;
  state.counters["verify_overhead_pct"] = 100.0 * overhead;
  // Only assert once enough optimize time accumulated for the ratio to be
  // signal rather than scheduler noise.
  if (plain_s > 0.05 && overhead > 0.05) {
    state.SkipWithError(("plan verification adds " +
                         std::to_string(100.0 * overhead) +
                         "% optimize-time overhead (budget: 5%)")
                            .c_str());
  }
}
BENCHMARK(BM_VerifyOverhead)->MinTime(0.2);

}  // namespace
}  // namespace oodb

BENCHMARK_MAIN();
