// Anticipated-cost formulas for every execution algorithm. Shared by the
// implementation rules, the enforcers, and the baseline (greedy) planner so
// that all planners cost plans identically.
#ifndef OODB_PHYSICAL_ALGORITHMS_H_
#define OODB_PHYSICAL_ALGORITHMS_H_

#include "src/algebra/logical_props.h"
#include "src/cost/cost_model.h"
#include "src/physical/physical_op.h"

namespace oodb {

/// Sequential scan of a collection: sequential page reads + per-tuple CPU.
Cost FileScanCost(const CostModel& cm, const Catalog& catalog,
                  const CollectionInfo& coll);

/// (Path-)index scan: B-tree descent, per-match leaf entries, per-match
/// random fetch of the (unclustered) root objects, and residual predicate
/// CPU over the fetched matches.
Cost IndexScanCost(const CostModel& cm, double matches, bool clustered,
                   double residual_conjuncts, const Catalog& catalog,
                   TypeId root_type);

/// Filter: predicate CPU over the input.
Cost FilterCost(const CostModel& cm, double in_card, double conjuncts);

/// Hybrid hash join: build + probe CPU, overflow I/O beyond memory.
Cost HybridHashJoinCost(const CostModel& cm, double build_card,
                        double build_bytes, double probe_card,
                        double probe_bytes);

/// Assembly of `steps` components over `in_card` input tuples. Fault counts
/// are bounded per component type when the catalog knows the population.
/// `warm_start` pre-scans extent-resident referenced populations
/// sequentially instead of faulting (paper Lesson 7 extension).
Cost AssemblyCost(const CostModel& cm, const Catalog& catalog,
                  const BindingTable& bindings, double in_card,
                  const std::vector<MatStep>& steps, int window,
                  bool warm_start);

/// Naive pointer join: per-left-tuple dereference with no elevator batching.
Cost PointerJoinCost(const CostModel& cm, const Catalog& catalog,
                     double left_card, TypeId target_type);

/// Output construction: per-tuple CPU + per-byte copy.
Cost AlgProjectCost(const CostModel& cm, double card, double out_bytes);

/// Set-valued field expansion: per-output-element CPU.
Cost AlgUnnestCost(const CostModel& cm, double out_card);

/// Hash-based set operations: build smaller side, probe larger.
Cost HashSetOpCost(const CostModel& cm, double left_card, double left_bytes,
                   double right_card, double right_bytes);

/// Sort enforcer: n log n CPU plus external-merge I/O beyond memory.
Cost SortCost(const CostModel& cm, double card, double bytes);

/// Partial sort: the input already arrives ordered by a key prefix with
/// `distinct_prefix` estimated distinct prefix values; only rows within a
/// run of equal prefix values are re-ordered (n log(n/runs) comparisons,
/// streaming run-at-a-time emission).
Cost PartialSortCost(const CostModel& cm, double card, double bytes,
                     double distinct_prefix);

/// Bounded-heap top-k over `card` input rows. `presorted` > 0 means the
/// input already arrives in the required order and the operator degenerates
/// to a streaming cutoff after k rows.
Cost TopKCost(const CostModel& cm, double card, int64_t k, double presorted);

/// Merge join over sorted inputs: linear CPU.
Cost MergeJoinCost(const CostModel& cm, double left_card, double right_card);

/// Nested-loops join: the cartesian-capable fallback. Buffers the left
/// input in memory (spilling beyond memory) and evaluates the predicate on
/// every pair.
Cost NestedLoopsCost(const CostModel& cm, double left_card, double left_bytes,
                     double right_card);

/// Per-batch iteration overhead of driving `card` rows through one
/// operator boundary at the configured exec_batch_size.
Cost BatchOverheadCpu(const CostModel& cm, double card);

/// Exchange at degree `dop`: worker startup/teardown, per-tuple queue flow,
/// and per-batch dispatch over the consumed stream.
Cost ExchangeCost(const CostModel& cm, double out_card, int dop);

/// Order-preserving merging Exchange: the plain Exchange terms plus a
/// loser-tree comparison per delivered row.
Cost MergeExchangeCost(const CostModel& cm, double out_card, int dop);

}  // namespace oodb

#endif  // OODB_PHYSICAL_ALGORITHMS_H_
