file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_perf.dir/bench_opt_perf.cc.o"
  "CMakeFiles/bench_opt_perf.dir/bench_opt_perf.cc.o.d"
  "bench_opt_perf"
  "bench_opt_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
