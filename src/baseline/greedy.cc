#include "src/baseline/greedy.h"

#include <algorithm>

#include "src/cost/selectivity.h"
#include "src/physical/algorithms.h"
#include "src/physical/enforcers.h"

namespace oodb {

namespace {

/// The flattened linear query.
struct ChainQuery {
  LogicalOp get;
  std::vector<LogicalOp> steps;  // Unnest / Mat in bottom-up order
  std::vector<ScalarExprPtr> conjuncts;
  std::vector<ScalarExprPtr> emit;
  bool has_project = false;
};

Result<ChainQuery> Flatten(const LogicalExpr& expr) {
  ChainQuery q;
  const LogicalExpr* cur = &expr;
  if (cur->op.kind == LogicalOpKind::kProject) {
    q.has_project = true;
    q.emit = cur->op.emit;
    cur = cur->children[0].get();
  }
  std::vector<LogicalOp> steps_top_down;
  while (cur->op.kind != LogicalOpKind::kGet) {
    switch (cur->op.kind) {
      case LogicalOpKind::kSelect: {
        for (const ScalarExprPtr& c :
             ScalarExpr::SplitConjuncts(cur->op.pred)) {
          q.conjuncts.push_back(c);
        }
        break;
      }
      case LogicalOpKind::kMat:
      case LogicalOpKind::kUnnest:
        steps_top_down.push_back(cur->op);
        break;
      default:
        return Status::Unimplemented(
            "greedy planner supports single-collection chain queries only");
    }
    cur = cur->children[0].get();
  }
  q.get = cur->op;
  q.steps.assign(steps_top_down.rbegin(), steps_top_down.rend());
  return q;
}

/// Returns the equality conjunct on `binding`.`field`, if any.
const ScalarExprPtr* FindEqConjunct(const std::vector<ScalarExprPtr>& conjuncts,
                                    BindingId binding, FieldId field) {
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() != ScalarExpr::Kind::kCmp || c->cmp_op() != CmpOp::kEq) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      const ScalarExprPtr& a = c->children()[i];
      const ScalarExprPtr& b = c->children()[1 - i];
      if (a->kind() == ScalarExpr::Kind::kAttr && a->binding() == binding &&
          a->field() == field && b->kind() == ScalarExpr::Kind::kConst) {
        return &c;
      }
    }
  }
  return nullptr;
}

void Erase(std::vector<ScalarExprPtr>* conjuncts, const ScalarExprPtr& c) {
  conjuncts->erase(std::find(conjuncts->begin(), conjuncts->end(), c));
}

}  // namespace

Result<OptimizedQuery> GreedyOptimizer::Optimize(const LogicalExpr& input,
                                                 QueryContext* ctx,
                                                 PhysProps required) const {
  OODB_RETURN_IF_ERROR(ValidateLogicalTree(input, *ctx).status());
  OODB_ASSIGN_OR_RETURN(ChainQuery q, Flatten(input));
  SelectivityEstimator sel(ctx);
  const Catalog& catalog = *catalog_;

  // --- Root access path: take the first enabled index whose (path-)key has
  // an equality conjunct, without comparing costs. ---
  OODB_ASSIGN_OR_RETURN(const CollectionInfo* coll,
                        catalog.FindCollection(q.get.coll));
  PlanNodePtr plan;
  LogicalProps props;
  props.scope = BindingSet::Of(q.get.binding);
  props.card = static_cast<double>(coll->cardinality);
  props.tuple_bytes = ctx->schema().type(q.get.coll.type).object_size();

  for (const IndexInfo* idx : catalog.IndexesOn(q.get.coll)) {
    // Only single-field indexes can be used before the mats run; path
    // indexes would need the exact mat chain, which greedy does not analyze.
    if (idx->path.size() != 1) continue;
    const ScalarExprPtr* key =
        FindEqConjunct(q.conjuncts, q.get.binding, idx->path[0]);
    if (key == nullptr) continue;
    PhysicalOp op;
    op.kind = PhysOpKind::kIndexScan;
    op.coll = q.get.coll;
    op.binding = q.get.binding;
    op.index_name = idx->name;
    op.index_pred = *key;
    double matches = props.card / std::max<double>(1.0, idx->distinct_keys);
    props.card = matches;
    Cost cost = IndexScanCost(cost_model_, matches, idx->clustered, 0.0,
                              catalog, q.get.coll.type);
    PhysProps delivered;
    delivered.in_memory = BindingSet::Of(q.get.binding);
    Erase(&q.conjuncts, *key);
    plan = PlanNode::Make(std::move(op), {}, props, delivered, cost);
    break;
  }
  if (!plan) {
    PhysicalOp op;
    op.kind = PhysOpKind::kFileScan;
    op.coll = q.get.coll;
    op.binding = q.get.binding;
    PhysProps delivered;
    delivered.in_memory = BindingSet::Of(q.get.binding);
    plan = PlanNode::Make(std::move(op), {}, props,
                          delivered, FileScanCost(cost_model_, catalog, *coll));
  }

  // --- Steps: unnest as encountered; for each Mat, use an index + hash join
  // when an index serves an equality on the target, else assembly. Apply
  // each remaining conjunct as a filter as soon as its bindings are loaded.
  auto apply_ready_filters = [&]() {
    while (true) {
      bool applied = false;
      for (const ScalarExprPtr& c : q.conjuncts) {
        BindingSet needs = LoadRequirements(c, *ctx);
        if (!plan->delivered.in_memory.ContainsAll(needs) ||
            !props.scope.ContainsAll(c->ReferencedBindings())) {
          continue;
        }
        PhysicalOp op;
        op.kind = PhysOpKind::kFilter;
        op.pred = c;
        props.card *= sel.Estimate(c);
        Cost cost = FilterCost(cost_model_, plan->logical.card, 1.0);
        plan = PlanNode::Make(std::move(op), {plan}, props, plan->delivered,
                              cost);
        Erase(&q.conjuncts, c);
        applied = true;
        break;
      }
      if (!applied) break;
    }
  };
  apply_ready_filters();

  for (const LogicalOp& step : q.steps) {
    if (step.kind == LogicalOpKind::kUnnest) {
      const BindingDef& src = ctx->bindings.def(step.source);
      const FieldDef& f = ctx->schema().type(src.type).field(step.field);
      PhysicalOp op;
      op.kind = PhysOpKind::kAlgUnnest;
      op.source = step.source;
      op.field = step.field;
      op.target = step.target;
      props.scope.Add(step.target);
      props.card *= f.avg_set_card > 0 ? f.avg_set_card : 1.0;
      props.tuple_bytes += 8.0;
      Cost cost = AlgUnnestCost(cost_model_, props.card);
      plan = PlanNode::Make(std::move(op), {plan}, props, plan->delivered, cost);
      continue;
    }

    // Mat step.
    TypeId target_type = ctx->bindings.def(step.target).type;
    props.scope.Add(step.target);
    props.tuple_bytes += ctx->schema().type(target_type).object_size();

    const IndexInfo* join_idx = nullptr;
    const ScalarExprPtr* key = nullptr;
    if (catalog.HasExtent(target_type)) {
      for (const IndexInfo* idx :
           catalog.IndexesOn(CollectionId::Extent(target_type))) {
        if (idx->path.size() != 1) continue;
        key = FindEqConjunct(q.conjuncts, step.target, idx->path[0]);
        if (key != nullptr) {
          join_idx = idx;
          break;
        }
      }
    }
    if (join_idx != nullptr) {
      // Index scan of the referenced population + hybrid hash join
      // (Figure 13's greedy shape). The index scan is the build side.
      double population =
          static_cast<double>(*catalog.TypeCardinality(target_type));
      double matches =
          population / std::max<double>(1.0, join_idx->distinct_keys);
      PhysicalOp scan;
      scan.kind = PhysOpKind::kIndexScan;
      scan.coll = CollectionId::Extent(target_type);
      scan.binding = step.target;
      scan.index_name = join_idx->name;
      scan.index_pred = *key;
      LogicalProps scan_props;
      scan_props.scope = BindingSet::Of(step.target);
      scan_props.card = matches;
      scan_props.tuple_bytes = ctx->schema().type(target_type).object_size();
      PhysProps scan_delivered;
      scan_delivered.in_memory = BindingSet::Of(step.target);
      PlanNodePtr scan_node = PlanNode::Make(
          std::move(scan), {}, scan_props, scan_delivered,
          IndexScanCost(cost_model_, matches, join_idx->clustered, 0.0,
                        catalog, target_type));

      PhysicalOp join;
      join.kind = PhysOpKind::kHybridHashJoin;
      join.pred =
          step.field == kInvalidField
              ? ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Self(step.target),
                                ScalarExpr::Self(step.source))
              : ScalarExpr::RefEq(step.source, step.field, step.target);
      props.card *= matches / population;
      PhysProps delivered = plan->delivered;
      delivered.in_memory.Add(step.target);
      Cost cost = HybridHashJoinCost(cost_model_, matches,
                                     scan_props.tuple_bytes,
                                     plan->logical.card, plan->logical.tuple_bytes);
      Erase(&q.conjuncts, *key);
      plan = PlanNode::Make(std::move(join), {scan_node, plan}, props,
                            delivered, cost);
    } else {
      PhysicalOp op;
      op.kind = PhysOpKind::kAssembly;
      op.mats = {MatStep{step.source, step.field, step.target}};
      PhysProps delivered = plan->delivered;
      delivered.in_memory.Add(step.target);
      Cost cost = AssemblyCost(cost_model_, catalog, ctx->bindings,
                               plan->logical.card, op.mats, /*window=*/0,
                               /*warm_start=*/false);
      plan = PlanNode::Make(std::move(op), {plan}, props, delivered, cost);
    }
    apply_ready_filters();
  }

  if (!q.conjuncts.empty()) {
    return Status::PlanError(
        "greedy planner could not place all predicates (unloaded components)");
  }

  // Enforce a required order / limit with one Sort (or bounded-heap TopK)
  // over the chain — below the root projection, where the key bindings are
  // still in scope. Greedy never considers order-aware access paths.
  auto add_order = [&]() -> Status {
    if (!required.sort.IsSorted() && required.limit <= 0) return Status::OK();
    for (const SortKey& k : required.sort.keys) {
      if (!props.scope.Contains(k.binding)) {
        return Status::PlanError(
            "greedy planner: ORDER BY key is out of the query scope");
      }
      if (!plan->delivered.in_memory.Contains(k.binding)) {
        return Status::PlanError(
            "greedy planner: ORDER BY key binding is not loaded");
      }
    }
    PhysicalOp op;
    op.kind = required.limit > 0 ? PhysOpKind::kTopK : PhysOpKind::kSort;
    op.sort = required.sort;
    op.limit = required.limit;
    PhysProps delivered = plan->delivered;
    delivered.sort = required.sort;
    delivered.limit = required.limit;
    Cost cost = required.limit > 0
                    ? TopKCost(cost_model_, props.card, required.limit,
                               required.sort.IsSorted() ? 0.0 : 1.0)
                    : SortCost(cost_model_, props.card, props.tuple_bytes);
    if (required.limit > 0) {
      props.card =
          std::min(props.card, static_cast<double>(required.limit));
    }
    plan = PlanNode::Make(std::move(op), {plan}, props, delivered, cost);
    return Status::OK();
  };

  if (q.has_project) {
    PhysicalOp op;
    op.kind = PhysOpKind::kAlgProject;
    op.emit = q.emit;
    BindingSet needs = LoadRequirements(q.emit, *ctx);
    for (const SortKey& k : required.sort.keys) needs.Add(k.binding);
    if (!plan->delivered.in_memory.ContainsAll(needs)) {
      // Load whatever the projection still needs with one final assembly.
      // Steps come from PlanAssemblySteps so sources precede their targets
      // and intermediate chain objects are loaded too, not just the read
      // ends (a step dereferencing an unloaded source faults at runtime).
      BindingSet to_load = needs.Minus(plan->delivered.in_memory);
      PhysicalOp assemble;
      assemble.kind = PhysOpKind::kAssembly;
      for (;;) {
        BindingSet need_below;
        assemble.mats = PlanAssemblySteps(to_load, *ctx, &need_below);
        if (assemble.mats.empty()) {
          return Status::PlanError(
              "greedy planner cannot assemble projection inputs");
        }
        BindingSet unmet = need_below.Minus(plan->delivered.in_memory);
        if (unmet.Empty()) break;
        to_load = to_load.Union(unmet);
      }
      PhysProps delivered = plan->delivered;
      for (const MatStep& s : assemble.mats) delivered.in_memory.Add(s.target);
      Cost cost = AssemblyCost(cost_model_, catalog, ctx->bindings,
                               plan->logical.card, assemble.mats, 0, false);
      plan = PlanNode::Make(std::move(assemble), {plan}, props, delivered,
                            cost);
    }
    OODB_RETURN_IF_ERROR(add_order());
    // The projection discards the chain scope: its output is the emit
    // expressions' bindings only, and it delivers at most what remains both
    // loaded below and loadable in that narrowed scope.
    LogicalProps out_props = props;
    out_props.scope = needs;
    for (const ScalarExprPtr& e : q.emit) {
      if (e != nullptr) {
        out_props.scope = out_props.scope.Union(e->ReferencedBindings());
      }
    }
    PhysProps out_delivered = plan->delivered;
    out_delivered.in_memory = plan->delivered.in_memory.Intersect(
        LoadableBindings(out_props.scope, *ctx));
    Cost cost = AlgProjectCost(cost_model_, props.card, props.tuple_bytes);
    plan = PlanNode::Make(std::move(op), {plan}, out_props, out_delivered,
                          cost);
  } else {
    OODB_RETURN_IF_ERROR(add_order());
  }

  OptimizedQuery out;
  out.plan = plan;
  out.cost = plan->total_cost;
  return out;
}

}  // namespace oodb
