#include <gtest/gtest.h>

#include "src/algebra/logical_op.h"
#include "src/catalog/paper_catalog.h"

namespace oodb {
namespace {

class LogicalOpTest : public ::testing::Test {
 protected:
  LogicalOpTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);
    n_ = ctx_.bindings.AddGet("n", db_.country);
  }

  LogicalExprPtr GetCities() {
    return LogicalExpr::Make(
        LogicalOp::Get(CollectionId::Set("Cities", db_.city), c_));
  }

  PaperDb db_;
  QueryContext ctx_;
  BindingId c_, m_, n_;
};

TEST_F(LogicalOpTest, Arity) {
  EXPECT_EQ(LogicalOp::Get(CollectionId::Set("Cities", db_.city), c_).Arity(), 0);
  EXPECT_EQ(LogicalOp::Select(ScalarExpr::Self(c_)).Arity(), 1);
  EXPECT_EQ(LogicalOp::Mat(c_, db_.city_mayor, m_).Arity(), 1);
  EXPECT_EQ(LogicalOp::Join(ScalarExpr::Self(c_)).Arity(), 2);
  EXPECT_EQ(LogicalOp::SetOp(LogicalOpKind::kUnion).Arity(), 2);
}

TEST_F(LogicalOpTest, EqualityAndHash) {
  LogicalOp a = LogicalOp::Mat(c_, db_.city_mayor, m_);
  LogicalOp b = LogicalOp::Mat(c_, db_.city_mayor, m_);
  LogicalOp d = LogicalOp::Mat(c_, db_.city_country, m_);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == d);
  EXPECT_EQ(a.Hash(), b.Hash());

  LogicalOp s1 = LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe"));
  LogicalOp s2 = LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe"));
  EXPECT_TRUE(s1 == s2);
  EXPECT_EQ(s1.Hash(), s2.Hash());
}

TEST_F(LogicalOpTest, GetValidatesCollectionAndType) {
  LogicalOp get = LogicalOp::Get(CollectionId::Set("Cities", db_.city), c_);
  EXPECT_TRUE(get.Validate(ctx_, {}).ok());

  LogicalOp wrong_type =
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), n_);
  EXPECT_FALSE(wrong_type.Validate(ctx_, {}).ok());

  LogicalOp missing = LogicalOp::Get(CollectionId::Set("Nope", db_.city), c_);
  EXPECT_FALSE(missing.Validate(ctx_, {}).ok());
}

TEST_F(LogicalOpTest, GetAllowsSubtypeCollections) {
  // Capitals is a set of Capital (subtype of City); binding declared as City.
  BindingId k = ctx_.bindings.AddGet("k", db_.city);
  LogicalOp get = LogicalOp::Get(CollectionId::Set("Capitals", db_.capital), k);
  EXPECT_TRUE(get.Validate(ctx_, {}).ok());
}

TEST_F(LogicalOpTest, SelectRequiresScope) {
  LogicalOp sel =
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe"));
  BindingSet with_m = BindingSet::Of(c_);
  with_m.Add(m_);
  EXPECT_TRUE(sel.Validate(ctx_, {with_m}).ok());
  EXPECT_FALSE(sel.Validate(ctx_, {BindingSet::Of(c_)}).ok());
}

TEST_F(LogicalOpTest, MatValidation) {
  LogicalOp mat = LogicalOp::Mat(c_, db_.city_mayor, m_);
  EXPECT_TRUE(mat.Validate(ctx_, {BindingSet::Of(c_)}).ok());
  // Source missing from scope.
  EXPECT_FALSE(mat.Validate(ctx_, {BindingSet::Of(n_)}).ok());
  // Target already in scope.
  BindingSet both = BindingSet::Of(c_);
  both.Add(m_);
  EXPECT_FALSE(mat.Validate(ctx_, {both}).ok());
  // Field is not a reference.
  LogicalOp bad = LogicalOp::Mat(c_, db_.city_name, m_);
  EXPECT_FALSE(bad.Validate(ctx_, {BindingSet::Of(c_)}).ok());
}

TEST_F(LogicalOpTest, MatRefRequiresRefBinding) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r =
      ctx_.bindings.AddUnnest("r", db_.employee, t, db_.task_team_members);
  BindingId e = ctx_.bindings.AddMat("e", db_.employee, r, kInvalidField);
  LogicalOp mat = LogicalOp::MatRef(r, e);
  BindingSet scope = BindingSet::Of(t);
  scope.Add(r);
  EXPECT_TRUE(mat.Validate(ctx_, {scope}).ok());
  // Materializing a non-ref binding without a field is invalid.
  LogicalOp bad = LogicalOp::MatRef(c_, e);
  EXPECT_FALSE(bad.Validate(ctx_, {BindingSet::Of(c_)}).ok());
}

TEST_F(LogicalOpTest, UnnestValidation) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r =
      ctx_.bindings.AddUnnest("r", db_.employee, t, db_.task_team_members);
  LogicalOp unnest = LogicalOp::Unnest(t, db_.task_team_members, r);
  EXPECT_TRUE(unnest.Validate(ctx_, {BindingSet::Of(t)}).ok());
  // Field is not set-valued.
  LogicalOp bad = LogicalOp::Unnest(t, db_.task_time, r);
  EXPECT_FALSE(bad.Validate(ctx_, {BindingSet::Of(t)}).ok());
}

TEST_F(LogicalOpTest, JoinScopesMustBeDisjoint) {
  LogicalOp join = LogicalOp::Join(ScalarExpr::RefEq(c_, db_.city_country, n_));
  EXPECT_TRUE(join.Validate(ctx_, {BindingSet::Of(c_), BindingSet::Of(n_)}).ok());
  EXPECT_FALSE(join.Validate(ctx_, {BindingSet::Of(c_), BindingSet::Of(c_)}).ok());
}

TEST_F(LogicalOpTest, SetOpRequiresIdenticalScopes) {
  LogicalOp u = LogicalOp::SetOp(LogicalOpKind::kUnion);
  EXPECT_TRUE(u.Validate(ctx_, {BindingSet::Of(c_), BindingSet::Of(c_)}).ok());
  EXPECT_FALSE(u.Validate(ctx_, {BindingSet::Of(c_), BindingSet::Of(n_)}).ok());
}

TEST_F(LogicalOpTest, OutputBindings) {
  LogicalOp get = LogicalOp::Get(CollectionId::Set("Cities", db_.city), c_);
  EXPECT_EQ(get.OutputBindings({}), BindingSet::Of(c_));

  LogicalOp mat = LogicalOp::Mat(c_, db_.city_mayor, m_);
  BindingSet out = mat.OutputBindings({BindingSet::Of(c_)});
  EXPECT_TRUE(out.Contains(c_));
  EXPECT_TRUE(out.Contains(m_));

  LogicalOp proj = LogicalOp::Project({ScalarExpr::Attr(m_, db_.person_age)});
  EXPECT_EQ(proj.OutputBindings({out}), BindingSet::Of(m_));

  LogicalOp join = LogicalOp::Join(ScalarExpr::Const(Value::Int(1)));
  EXPECT_EQ(join.OutputBindings({BindingSet::Of(c_), BindingSet::Of(n_)}).Count(),
            2);
}

TEST_F(LogicalOpTest, TreeScopeAndValidation) {
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      {LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_),
                         {GetCities()})});
  auto scope = ValidateLogicalTree(*tree, ctx_);
  ASSERT_TRUE(scope.ok());
  EXPECT_TRUE(scope->Contains(c_));
  EXPECT_TRUE(scope->Contains(m_));
  EXPECT_EQ(tree->Scope(), *scope);
}

TEST_F(LogicalOpTest, InvalidTreeRejected) {
  // Select references the mayor before it is materialized.
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      {GetCities()});
  EXPECT_FALSE(ValidateLogicalTree(*tree, ctx_).ok());
}

TEST_F(LogicalOpTest, PrintMatchesPaperStyle) {
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      {LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_),
                         {GetCities()})});
  std::string printed = PrintLogicalTree(*tree, ctx_);
  EXPECT_NE(printed.find("Select c.mayor.name == \"Joe\""), std::string::npos);
  EXPECT_NE(printed.find("Mat c.mayor"), std::string::npos);
  EXPECT_NE(printed.find("Get Cities: c"), std::string::npos);
}

TEST_F(LogicalOpTest, KindNames) {
  EXPECT_STREQ(LogicalOpKindName(LogicalOpKind::kGet), "Get");
  EXPECT_STREQ(LogicalOpKindName(LogicalOpKind::kMat), "Mat");
  EXPECT_STREQ(LogicalOpKindName(LogicalOpKind::kDifference), "Difference");
}

TEST_F(LogicalOpTest, WrongArityRejected) {
  LogicalOp sel = LogicalOp::Select(ScalarExpr::Self(c_));
  EXPECT_FALSE(sel.Validate(ctx_, {}).ok());
  EXPECT_FALSE(
      sel.Validate(ctx_, {BindingSet::Of(c_), BindingSet::Of(n_)}).ok());
}

}  // namespace
}  // namespace oodb
