// Deterministic storage-fault injection: seeded policies produce the same
// failing page/oid on every run, faults surface as clean per-query
// kStorageFault errors, and the session stays usable afterwards.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

constexpr const char* kScanQuery =
    "SELECT e.name FROM Employee e IN Employees;";
constexpr const char* kJoeQuery =
    "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";";

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : db_(MakePaperCatalog(0.02)) {}

  // Heap-allocated: ObjectStore wires internal pointers at construction and
  // must never be moved.
  std::unique_ptr<Session> MakeSession(Session::Options opts = {}) {
    auto s = std::make_unique<Session>(&db_.catalog, std::move(opts));
    GenOptions gen;
    gen.num_plants = 20;
    EXPECT_TRUE(GeneratePaperData(db_, &s->store(), gen).ok());
    return s;
  }

  static Session::Options WithPolicy(FaultPolicy policy) {
    Session::Options opts;
    opts.store.faults = std::move(policy);
    return opts;
  }

  PaperDb db_;
};

TEST_F(FaultInjectionTest, EveryNthPolicyFailsDeterministically) {
  FaultPolicy policy;
  policy.fail_every_nth_read = 7;
  std::unique_ptr<Session> s = MakeSession(WithPolicy(policy));
  auto r = s->Query(kScanQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kStorageFault) << r.status();
  EXPECT_NE(r.status().message().find("read #7"), std::string::npos)
      << r.status();
}

TEST_F(FaultInjectionTest, SameSeedSameFailingPage) {
  FaultPolicy policy;
  policy.seed = 42;
  policy.fail_probability = 0.02;
  std::unique_ptr<Session> a = MakeSession(WithPolicy(policy));
  std::unique_ptr<Session> b = MakeSession(WithPolicy(policy));
  auto ra = a->Query(kScanQuery);
  auto rb = b->Query(kScanQuery);
  ASSERT_FALSE(ra.ok());
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(ra.status().code(), StatusCode::kStorageFault);
  // Two independent stores, same seed: identical failing page and read #.
  EXPECT_EQ(ra.status().message(), rb.status().message());

  // Cold starts reset the injector, so a repeat replays the same fault.
  auto again = a->Query(kScanQuery);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), ra.status().message());
}

TEST_F(FaultInjectionTest, SameSeedSameFailureWithPlanCacheOn) {
  FaultPolicy policy;
  policy.seed = 42;
  policy.fail_probability = 0.02;
  Session::Options cached = WithPolicy(policy);
  cached.optimizer.plan_cache_capacity = 16;
  std::unique_ptr<Session> off = MakeSession(WithPolicy(policy));
  std::unique_ptr<Session> on = MakeSession(cached);

  auto r_off = off->Query(kScanQuery);
  auto r_cold = on->Query(kScanQuery);   // cache miss: optimize + execute
  auto r_warm = on->Query(kScanQuery);   // cache hit: execute only
  ASSERT_FALSE(r_off.ok());
  ASSERT_FALSE(r_cold.ok());
  ASSERT_FALSE(r_warm.ok());
  // Caching changes how the plan is obtained, never what the (seeded)
  // storage layer does: all three runs fail identically.
  EXPECT_EQ(r_off.status().message(), r_cold.status().message());
  EXPECT_EQ(r_cold.status().message(), r_warm.status().message());
}

TEST_F(FaultInjectionTest, OidPolicyFailsExactlyThatObject) {
  std::unique_ptr<Session> s = MakeSession();
  // Pick a real employee oid from the extent.
  auto members = s->store().CollectionMembers(
      CollectionId::Set("Employees", db_.employee));
  ASSERT_TRUE(members.ok());
  Oid victim = (**members)[3];
  FaultPolicy policy;
  policy.fail_oids = {victim};
  s->store().SetFaultPolicy(policy);

  auto r = s->Query(kScanQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kStorageFault);
  EXPECT_NE(
      r.status().message().find("oid " + std::to_string(victim)),
      std::string::npos)
      << r.status();
}

TEST_F(FaultInjectionTest, SessionSurvivesFaultsAndRecovers) {
  FaultPolicy policy;
  policy.fail_every_nth_read = 2;
  std::unique_ptr<Session> s = MakeSession(WithPolicy(policy));
  ASSERT_FALSE(s->Query(kScanQuery).ok());
  ASSERT_FALSE(s->Query(kJoeQuery).ok());
  // Clearing the policy at runtime rewires the storage layer; the same
  // session then serves queries normally.
  s->store().SetFaultPolicy(FaultPolicy{});
  auto r = s->Query(kJoeQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->exec.rows, 0);
}

TEST_F(FaultInjectionTest, UnchargedReadsAreImmune) {
  // The reference evaluator and catalog ANALYZE use uncharged reads, which
  // bypass the injector: statistics collection works on a faulty store.
  FaultPolicy policy;
  policy.fail_every_nth_read = 1;  // every charged read fails
  std::unique_ptr<Session> s = MakeSession(WithPolicy(policy));
  EXPECT_TRUE(s->Analyze().ok());
  ASSERT_FALSE(s->Query(kScanQuery).ok());
}

}  // namespace
}  // namespace oodb
