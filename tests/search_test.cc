// Search-engine and physical-property unit tests: winner memoization,
// property satisfaction, plan utilities, and operator rendering.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

// --- PhysProps ---

TEST(PhysPropsTest, SatisfiesIsSupersetOnMemory) {
  PhysProps have, need;
  have.in_memory.Add(1);
  have.in_memory.Add(2);
  need.in_memory.Add(1);
  EXPECT_TRUE(have.Satisfies(need));
  EXPECT_FALSE(need.Satisfies(have));
  EXPECT_TRUE(have.Satisfies(PhysProps{}));
}

TEST(PhysPropsTest, SortMustMatchExactly) {
  PhysProps have, need;
  have.sort = SortSpec{1, 2};
  EXPECT_TRUE(have.Satisfies(need));  // no sort required
  need.sort = SortSpec{1, 2};
  EXPECT_TRUE(have.Satisfies(need));
  need.sort = SortSpec{1, 3};
  EXPECT_FALSE(have.Satisfies(need));
  PhysProps unsorted;
  EXPECT_FALSE(unsorted.Satisfies(need));
}

TEST(PhysPropsTest, OrderingForWinnerMap) {
  PhysProps a, b;
  a.in_memory.Add(1);
  b.in_memory.Add(2);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  PhysProps c = a;
  c.sort = SortSpec{0, 0};
  EXPECT_TRUE(a < c || c < a);
}

class PropsFixture : public ::testing::Test {
 protected:
  PropsFixture() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);
    t_ = ctx_.bindings.AddGet("t", db_.task);
    r_ = ctx_.bindings.AddUnnest("r", db_.employee, t_, db_.task_team_members);
  }
  PaperDb db_;
  QueryContext ctx_;
  BindingId c_, m_, t_, r_;
};

TEST_F(PropsFixture, LoadRequirementsAttrVsSelf) {
  // Attr reads need the object loaded; Self (the OID) does not.
  ScalarExprPtr attr = ScalarExpr::Attr(m_, db_.person_name);
  EXPECT_TRUE(LoadRequirements(attr, ctx_).Contains(m_));
  ScalarExprPtr self = ScalarExpr::Self(m_);
  EXPECT_TRUE(LoadRequirements(self, ctx_).Empty());
  ScalarExprPtr cmp = ScalarExpr::RefEq(c_, db_.city_mayor, m_);
  BindingSet needs = LoadRequirements(cmp, ctx_);
  EXPECT_TRUE(needs.Contains(c_));
  EXPECT_FALSE(needs.Contains(m_));
}

TEST_F(PropsFixture, LoadableBindingsExcludesRefs) {
  BindingSet all;
  all.Add(c_);
  all.Add(r_);
  BindingSet loadable = LoadableBindings(all, ctx_);
  EXPECT_TRUE(loadable.Contains(c_));
  EXPECT_FALSE(loadable.Contains(r_));
}

TEST_F(PropsFixture, ToStringNamesBindings) {
  PhysProps p;
  p.in_memory.Add(c_);
  p.in_memory.Add(m_);
  std::string s = p.ToString(ctx_);
  EXPECT_NE(s.find("c"), std::string::npos);
  EXPECT_NE(s.find("c.mayor"), std::string::npos);
}

// --- Physical operator rendering ---

TEST_F(PropsFixture, PhysicalOpToStringAllKinds) {
  PhysicalOp scan;
  scan.kind = PhysOpKind::kFileScan;
  scan.coll = CollectionId::Set("Cities", db_.city);
  scan.binding = c_;
  EXPECT_EQ(scan.ToString(ctx_), "File Scan Cities: c");

  PhysicalOp idx;
  idx.kind = PhysOpKind::kIndexScan;
  idx.coll = scan.coll;
  idx.binding = c_;
  idx.index_name = kIdxCitiesMayorName;
  idx.index_pred = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  idx.pred = ScalarExpr::AttrCmpInt(c_, db_.city_population, CmpOp::kGe, 5);
  std::string s = idx.ToString(ctx_);
  EXPECT_NE(s.find("Index Scan Cities"), std::string::npos);
  EXPECT_NE(s.find("[residual"), std::string::npos);

  PhysicalOp assembly;
  assembly.kind = PhysOpKind::kAssembly;
  assembly.mats = {MatStep{c_, db_.city_mayor, m_}};
  assembly.window = 1;
  assembly.warm_start = true;
  s = assembly.ToString(ctx_);
  EXPECT_NE(s.find("Assembly c.mayor"), std::string::npos);
  EXPECT_NE(s.find("[window 1]"), std::string::npos);
  EXPECT_NE(s.find("[warm-start]"), std::string::npos);

  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec{c_, db_.city_name};
  EXPECT_EQ(sort.ToString(ctx_), "Sort c.name");
}

// --- Plan utilities ---

TEST_F(PropsFixture, PlanTotalsAndCounting) {
  PhysicalOp scan;
  scan.kind = PhysOpKind::kFileScan;
  scan.coll = CollectionId::Set("Cities", db_.city);
  scan.binding = c_;
  LogicalProps props;
  props.scope = BindingSet::Of(c_);
  props.card = 10;
  PlanNodePtr leaf =
      PlanNode::Make(scan, {}, props, PhysProps{}, Cost{1.0, 2.0});
  PhysicalOp filter;
  filter.kind = PhysOpKind::kFilter;
  filter.pred = ScalarExpr::AttrCmpInt(c_, db_.city_population, CmpOp::kGe, 5);
  PlanNodePtr root =
      PlanNode::Make(filter, {leaf}, props, PhysProps{}, Cost{0.5, 0.5});
  EXPECT_DOUBLE_EQ(root->total_cost.total(), 4.0);
  EXPECT_DOUBLE_EQ(root->local_cost.total(), 1.0);
  EXPECT_EQ(CountOps(*root, PhysOpKind::kFileScan), 1);
  EXPECT_EQ(CountOps(*root, PhysOpKind::kFilter), 1);
  EXPECT_EQ(CountOps(*root, PhysOpKind::kAssembly), 0);
  EXPECT_EQ(PlanOpStrings(*root, ctx_).size(), 2u);
  std::string printed = PrintPlan(*root, ctx_, true);
  EXPECT_NE(printed.find("[card 10"), std::string::npos);
}

// --- Search-engine behaviour ---

TEST(SearchEngineTest, WinnersAreMemoizedAcrossProperties) {
  // Query 3 optimizes the select group under {} and under {c, c.mayor};
  // both winners coexist in the memo (verified indirectly: two optimize
  // calls of the same query produce identical stats — deterministic reuse).
  PaperDb db = MakePaperCatalog();
  QueryContext c1, c2;
  OptimizedQuery a = testing::MustOptimize(3, db, &c1);
  OptimizedQuery b = testing::MustOptimize(3, db, &c2);
  EXPECT_EQ(a.stats.phys_alternatives, b.stats.phys_alternatives);
  EXPECT_EQ(a.stats.logical_mexprs, b.stats.logical_mexprs);
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
}

TEST(SearchEngineTest, DeterministicPlans) {
  PaperDb db = MakePaperCatalog();
  for (int n : {1, 2, 3, 4}) {
    QueryContext c1, c2;
    OptimizedQuery a = testing::MustOptimize(n, db, &c1);
    OptimizedQuery b = testing::MustOptimize(n, db, &c2);
    EXPECT_EQ(PlanOpStrings(*a.plan, c1), PlanOpStrings(*b.plan, c2));
  }
}

TEST(SearchEngineTest, StatsAccumulateAcrossPhases) {
  PaperDb db = MakePaperCatalog();
  QueryContext ctx;
  OptimizedQuery q = testing::MustOptimize(1, db, &ctx);
  EXPECT_GT(q.stats.enforcer_firings, 0);
  EXPECT_GE(q.stats.expressions(),
            q.stats.logical_mexprs + q.stats.phys_alternatives);
  EXPECT_GT(q.stats.optimize_seconds, 0.0);
}

}  // namespace
}  // namespace oodb
