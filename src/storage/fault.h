// Deterministic storage fault injection. A seeded FaultPolicy on
// StoreOptions makes BufferPool / ObjectStore reads fail with a typed
// kStorageFault Status — every Nth page access, with a per-access
// probability (SplitMix64-seeded, platform-independent), or on specific
// OIDs — so the executor's Result<> propagation path can be exercised
// end-to-end: an injected fault must surface as a clean per-query error at
// the Session boundary, never a crash or a silently truncated result. The
// injector is reset together with the simulation clock, so the same seed
// over the same access sequence fails the same page/OID on every run.
#ifndef OODB_STORAGE_FAULT_H_
#define OODB_STORAGE_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/status.h"
#include "src/storage/disk_model.h"
#include "src/storage/object.h"

namespace oodb {

/// Fault-injection configuration; inert by default.
struct FaultPolicy {
  /// Seed for the per-access probability draw (and any future randomized
  /// fault kinds). Two runs with the same seed and the same access sequence
  /// fail identically.
  uint64_t seed = 0;
  /// Fail every Nth charged page access (1 = every access). 0 disables.
  int64_t fail_every_nth_read = 0;
  /// Independent per-access failure probability in [0, 1). 0 disables.
  double fail_probability = 0.0;
  /// Charged reads of these OIDs fail (media error on the object's page).
  std::vector<Oid> fail_oids;

  bool enabled() const {
    return fail_every_nth_read > 0 || fail_probability > 0.0 ||
           !fail_oids.empty();
  }
};

/// Per-store injector state: a deterministic access counter plus the seeded
/// RNG. Reset() rewinds both so each cold-started query replays the same
/// fault sequence.
///
/// Thread safety: the access counter and RNG draw are serialized on a
/// mutex, so concurrent Exchange workers never corrupt the state. With one
/// reader the fault sequence is fully deterministic; with DOP > 1 the
/// *interleaving* of accesses is scheduling-dependent, so only OID-targeted
/// faults (order-independent) are deterministic across parallel runs.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPolicy& policy)
      : policy_(policy), rng_(policy.seed ^ 0x5eedfa017ull) {}

  /// Called on every charged buffer-pool access, before the LRU is touched.
  /// Thread-safe.
  Status OnPageAccess(PageId page);

  /// Called on every charged object read, before the page access.
  /// Thread-safe (reads only the immutable policy).
  Status OnObjectRead(Oid oid);

  void Reset() {
    MutexLock lock(mu_);
    accesses_ = 0;
    rng_ = Rng(policy_.seed ^ 0x5eedfa017ull);
  }

  /// Replaces the policy and rewinds the injector (the mutex member makes
  /// the injector non-assignable; this is the runtime-reconfiguration
  /// entry point). Must not race with in-flight accesses.
  void SetPolicy(const FaultPolicy& policy) {
    MutexLock lock(mu_);
    policy_ = policy;
    accesses_ = 0;
    rng_ = Rng(policy_.seed ^ 0x5eedfa017ull);
  }

  const FaultPolicy& policy() const { return policy_; }

 private:
  /// Written only by the configuration entry points (SetPolicy, which must
  /// not race in-flight accesses); read without the lock by policy() and
  /// OnObjectRead. Deliberately not GUARDED_BY — the guard is the
  /// configuration-time contract, not the mutex.
  FaultPolicy policy_;
  Mutex mu_{lock_rank::kStorageFault};  ///< guards accesses_ and rng_
  Rng rng_ GUARDED_BY(mu_);
  int64_t accesses_ GUARDED_BY(mu_) = 0;
};

}  // namespace oodb

#endif  // OODB_STORAGE_FAULT_H_
