// Static verifier over the optimizer's three IRs (LLVM/MLIR-style): logical
// expression trees (binding scoping + type discipline), the memo (group
// consistency, liveness, winner sanity), and physical plans (delivered
// properties actually justified by the operators below, enforcer placement,
// Exchange legality, cost bookkeeping). Nothing is executed; every check is
// a structural walk. Violations carry an operator path and a stable
// invariant id so tests can assert *which* rule a corruption broke.
#ifndef OODB_VERIFY_VERIFY_H_
#define OODB_VERIFY_VERIFY_H_

#include <string>
#include <vector>

#include "src/volcano/memo.h"

namespace oodb {

// Stable invariant identifiers. Diagnostic messages embed these in square
// brackets; the mutation self-tests (tests/verify_mutation_test.cc) assert
// them. Grouped by the IR the check walks.
namespace invariant {
// --- logical exprs (also reused for predicates/emit lists inside plans) ---
inline constexpr const char* kExprScope = "expr-out-of-scope";
inline constexpr const char* kExprBinding = "expr-unknown-binding";
inline constexpr const char* kExprField = "expr-unknown-field";
inline constexpr const char* kExprSetField = "expr-set-valued-field";
inline constexpr const char* kExprCmpType = "expr-cmp-type-mismatch";
inline constexpr const char* kExprBoolOperand = "expr-non-bool-operand";
inline constexpr const char* kExprPredBool = "expr-pred-not-bool";
inline constexpr const char* kExprShape = "expr-malformed";
inline constexpr const char* kLogicalOp = "logical-op-invalid";
// --- memo ---
inline constexpr const char* kMemoDanglingGroup = "memo-dangling-group";
inline constexpr const char* kMemoEmptyGroup = "memo-empty-group";
inline constexpr const char* kMemoMembership = "memo-group-membership";
inline constexpr const char* kMemoArity = "memo-arity";
inline constexpr const char* kMemoScopeDrift = "memo-scope-drift";
inline constexpr const char* kMemoCard = "memo-card-invalid";
inline constexpr const char* kMemoOpInvalid = "memo-op-invalid";
inline constexpr const char* kMemoWinnerInProgress = "memo-winner-in-progress";
inline constexpr const char* kMemoWinnerProps = "memo-winner-props-unsatisfied";
inline constexpr const char* kMemoWinnerCost = "memo-winner-cost";
// --- physical plans ---
inline constexpr const char* kPlanArity = "plan-arity";
inline constexpr const char* kPlanOpField = "plan-op-missing-field";
inline constexpr const char* kPlanScope = "plan-scope-composition";
inline constexpr const char* kPlanCostFinite = "plan-cost-not-finite";
inline constexpr const char* kPlanCostNegative = "plan-cost-negative";
inline constexpr const char* kPlanCostTotal = "plan-cost-total-mismatch";
inline constexpr const char* kPlanMemory = "plan-in-memory-not-delivered";
inline constexpr const char* kPlanMemoryScope = "plan-in-memory-not-loadable";
inline constexpr const char* kPlanLoad = "plan-load-requirement-unmet";
inline constexpr const char* kPlanSort = "plan-sort-not-established";
inline constexpr const char* kPlanMatStep = "plan-mat-step-derivation";
inline constexpr const char* kPlanMatSource = "plan-mat-source-unavailable";
inline constexpr const char* kPlanUnnest = "plan-unnest-derivation";
inline constexpr const char* kPlanScan = "plan-scan-invalid";
inline constexpr const char* kPlanIndex = "plan-index-mismatch";
inline constexpr const char* kPlanJoinOverlap = "plan-join-scope-overlap";
inline constexpr const char* kPlanHashJoinPred = "plan-hash-join-pred-shape";
inline constexpr const char* kPlanHashJoinOrientation =
    "plan-hash-join-orientation";
inline constexpr const char* kPlanSetOpScope = "plan-setop-scope-mismatch";
inline constexpr const char* kPlanExchange = "plan-exchange-illegal";
inline constexpr const char* kPlanFusion = "plan-fusion-conjunct-drift";
/// Row-limit discipline: a delivered limit must be produced by a TopK (or
/// merging Exchange) below and relayed only through 1:1 operators.
inline constexpr const char* kPlanTopK = "plan-limit-not-established";
}  // namespace invariant

/// One violated invariant: where (operator path from the root, e.g.
/// "AlgProject/Filter/0:HybridHashJoin"), which rule, and why.
struct VerifyViolation {
  std::string invariant;  ///< stable id from namespace invariant
  std::string path;       ///< operator path from the verified root
  std::string detail;     ///< human-readable specifics

  /// "[invariant] at path: detail".
  std::string ToString() const;
};

/// Accumulated violations of one verification walk.
class VerifyReport {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<VerifyViolation>& violations() const { return violations_; }

  void Add(const char* invariant_id, std::string path, std::string detail);
  /// True when some violation carries `invariant_id` (test helper).
  bool Has(const char* invariant_id) const;

  /// kPlanError carrying the first violation (and a count of the rest);
  /// OK when the report is clean.
  Status ToStatus() const;
  /// All violations, one per line.
  std::string ToString() const;

 private:
  std::vector<VerifyViolation> violations_;
};

/// Verifier knobs. Defaults suit the automatic post-optimization run.
struct VerifyOptions {
  /// Check cost bookkeeping (finite, non-negative local costs, total ==
  /// local + sum of child totals).
  bool check_costs = true;
  /// Relative tolerance for the total-cost recomputation (Exchange's
  /// speedup subtraction makes exact float equality unattainable).
  double cost_rel_tolerance = 1e-6;
  /// Stop collecting after this many violations (a corrupt IR tends to
  /// cascade; the first few diagnoses are the actionable ones).
  int max_violations = 32;
};

// --- Logical expression trees -------------------------------------------
// Binding scoping (every attribute/self reference resolves to an in-scope
// binding), Mat/Unnest catalog type discipline (via LogicalOp::Validate),
// and predicate/emit operand type agreement.
VerifyReport VerifyExprReport(const LogicalExpr& expr, const QueryContext& ctx);
Status VerifyExpr(const LogicalExpr& expr, const QueryContext& ctx);

// --- The memo ------------------------------------------------------------
// Group internal consistency (membership, arity, shared logical properties),
// no dangling group references, finite winner costs, winner plans satisfying
// their required-property keys.
VerifyReport VerifyMemoReport(const Memo& memo, const VerifyOptions& opts = {});
Status VerifyMemo(const Memo& memo, const VerifyOptions& opts = {});

// --- Physical plans ------------------------------------------------------
// Bottom-up proof that each node's delivered properties are justified:
// claimed in-memory bindings actually loaded below (scans, assembly steps,
// pointer joins), claimed sort orders established (Sort/IndexScan/MergeJoin)
// or passed through order-preserving operators, assembly/unnest steps
// consistent with the binding table's derivations, Exchange placement legal
// per the parallel.cc planting rules, and cost totals additive.
VerifyReport VerifyPlanReport(const PlanNode& plan, const QueryContext& ctx,
                              const VerifyOptions& opts = {});
Status VerifyPlan(const PlanNode& plan, const QueryContext& ctx,
                  const VerifyOptions& opts = {});

/// Scalar type lattice used by the expression checks. kUnknown poisons
/// nothing: checks are lenient where a prior violation already fired.
enum class ScalarType { kBool, kInt, kDouble, kString, kRef, kUnknown };
const char* ScalarTypeName(ScalarType t);

/// Checks one scalar expression against `scope`: every read in scope, field
/// accesses valid and scalar-kinded, comparison/boolean operand types agree.
/// Appends violations under `path`; returns the expression's type. Shared by
/// the expr and plan verifiers (and usable directly in tests).
ScalarType CheckScalarExpr(const ScalarExpr& expr, BindingSet scope,
                           const QueryContext& ctx, const std::string& path,
                           VerifyReport* report);

/// True for an integer constant expression: the planner's truthy-predicate
/// idiom (cross joins carry a constant `1`), accepted in boolean position.
bool IsTruthyConstant(const ScalarExpr& expr);

/// Exec-level filter-fusion check: the fused predicate must carry exactly
/// the conjuncts of the collapsed Filter chain (order-insensitive multiset
/// comparison). Used by the batch executor's filter-chain merge.
Status VerifyFusedConjuncts(const std::vector<ScalarExprPtr>& chain_preds,
                            const ScalarExprPtr& fused);

}  // namespace oodb

#endif  // OODB_VERIFY_VERIFY_H_
