#include "src/physical/phys_props.h"

#include "src/common/strings.h"

namespace oodb {

std::string PhysProps::ToString(const QueryContext& ctx) const {
  std::vector<std::string> parts;
  for (BindingId b : in_memory.ToVector()) {
    parts.push_back(ctx.bindings.def(b).name);
  }
  std::string out = "mem{" + Join(parts, ", ") + "}";
  if (sort.IsSorted()) {
    std::vector<std::string> rendered;
    for (const SortKey& k : sort.keys) {
      const BindingDef& b = ctx.bindings.def(k.binding);
      rendered.push_back(b.name + "." +
                         ctx.schema().type(b.type).field(k.field).name +
                         (k.desc ? " desc" : ""));
    }
    out += " sorted(" + Join(rendered, ", ") + ")";
  }
  if (limit > 0) out += " limit " + std::to_string(limit);
  return out;
}

BindingSet LoadableBindings(BindingSet s, const QueryContext& ctx) {
  BindingSet out;
  for (BindingId b : s.ToVector()) {
    if (!ctx.bindings.def(b).is_ref) out.Add(b);
  }
  return out;
}

namespace {
void CollectLoadRequirements(const ScalarExpr& e, const QueryContext& ctx,
                             BindingSet* out) {
  switch (e.kind()) {
    case ScalarExpr::Kind::kAttr:
      if (!ctx.bindings.def(e.binding()).is_ref) out->Add(e.binding());
      break;
    case ScalarExpr::Kind::kSelf:
    case ScalarExpr::Kind::kConst:
      break;
    default:
      for (const ScalarExprPtr& c : e.children()) {
        CollectLoadRequirements(*c, ctx, out);
      }
  }
}
}  // namespace

BindingSet LoadRequirements(const ScalarExprPtr& expr, const QueryContext& ctx) {
  BindingSet out;
  if (expr) CollectLoadRequirements(*expr, ctx, &out);
  return out;
}

BindingSet LoadRequirements(const std::vector<ScalarExprPtr>& exprs,
                            const QueryContext& ctx) {
  BindingSet out;
  for (const ScalarExprPtr& e : exprs) {
    out = out.Union(LoadRequirements(e, ctx));
  }
  return out;
}

}  // namespace oodb
