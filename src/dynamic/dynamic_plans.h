// Dynamic plan selection, the ObjectStore capability the paper compares
// against (§2): "the optimizer generates multiple execution strategies at
// compile time and makes a final plan selection at run-time based on the
// availability of indices", letting users add and drop indexes without
// recompiling applications. Here it is rebuilt *on top of* the cost-based
// optimizer: one truly optimal plan per index-availability configuration,
// selected at run time — cost-based where ObjectStore's was greedy.
#ifndef OODB_DYNAMIC_DYNAMIC_PLANS_H_
#define OODB_DYNAMIC_DYNAMIC_PLANS_H_

#include "src/optimizer.h"

namespace oodb {

/// One compiled strategy: the optimal plan when exactly `available` (a
/// subset of the relevant indexes) is enabled.
struct PlanVariant {
  std::vector<std::string> available;  ///< enabled relevant indexes, sorted
  PlanNodePtr plan;
  Cost cost;
};

/// A compiled query with one plan per index configuration.
class DynamicPlan {
 public:
  /// Compiles `input` once per subset of the catalog's indexes over
  /// collections the query touches. The catalog is temporarily mutated
  /// during compilation and restored before returning. At most
  /// `kMaxRelevantIndexes` indexes are considered.
  static constexpr int kMaxRelevantIndexes = 6;
  static Result<DynamicPlan> Compile(const LogicalExpr& input,
                                     QueryContext* ctx, Catalog* catalog,
                                     OptimizerOptions opts = {});

  /// Picks the variant matching the catalog's *currently* enabled indexes.
  Result<const PlanVariant*> Select(const Catalog& catalog) const;

  const std::vector<PlanVariant>& variants() const { return variants_; }
  const std::vector<std::string>& relevant_indexes() const {
    return relevant_;
  }

 private:
  std::vector<std::string> relevant_;
  std::vector<PlanVariant> variants_;  // indexed by availability bitmask
};

}  // namespace oodb

#endif  // OODB_DYNAMIC_DYNAMIC_PLANS_H_
