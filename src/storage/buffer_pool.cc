#include "src/storage/buffer_pool.h"

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Process-wide hit/miss totals across every pool instance (per-pool counts
/// live in hits()/misses()). Resolved once; counters are never deallocated.
struct BufferMetrics {
  Counter* hits;
  Counter* misses;

  static const BufferMetrics& Get() {
    static const BufferMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      BufferMetrics m;
      m.hits = r.counter("oodb_buffer_pool_hits_total",
                         "Page accesses served from the buffer pool.");
      m.misses = r.counter("oodb_buffer_pool_misses_total",
                           "Page accesses that went to the simulated disk.");
      return m;
    }();
    return m;
  }
};

}  // namespace

// One page touch with mu_ held: returns true on a hit, false on a miss
// (after faulting the page in). The disk read stays inside the critical
// section so that the miss, its arm movement, and the eviction are one
// atomic event — concurrent workers observe a consistent LRU and a
// serializable read sequence.
bool BufferPool::AccessLocked(PageId page) {
  auto it = index_.find(page);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  disk_->Read(page);
  if (static_cast<int64_t>(lru_.size()) < capacity_ || lru_.empty()) {
    lru_.push_front(page);
  } else {
    // At capacity every miss evicts: recycle the victim's node in place
    // (splice tail to head, overwrite) so steady-state churn through a
    // cold scan allocates nothing. Same eviction order as pop+push.
    index_.erase(lru_.back());
    lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
    lru_.front() = page;
  }
  index_[page] = lru_.begin();
  return false;
}

Status BufferPool::Access(PageId page) {
  if (faults_ != nullptr) OODB_RETURN_IF_ERROR(faults_->OnPageAccess(page));
  MutexLock lock(mu_);
  if (AccessLocked(page)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    BufferMetrics::Get().hits->Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    BufferMetrics::Get().misses->Increment();
  }
  return Status::OK();
}

Status BufferPool::AccessMany(const PageId* pages, size_t n) {
  if (n == 0) return Status::OK();
  int64_t hits = 0, misses = 0;
  Status status = Status::OK();
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      // Per-page fault check in sequence, as n Access() calls would do:
      // pages before the faulting one are already touched and charged.
      if (faults_ != nullptr) {
        status = faults_->OnPageAccess(pages[i]);
        if (!status.ok()) break;
      }
      if (AccessLocked(pages[i])) {
        ++hits;
      } else {
        ++misses;
      }
    }
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  misses_.fetch_add(misses, std::memory_order_relaxed);
  if (hits > 0) BufferMetrics::Get().hits->Increment(hits);
  if (misses > 0) BufferMetrics::Get().misses->Increment(misses);
  return status;
}

void BufferPool::Reset() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace oodb
