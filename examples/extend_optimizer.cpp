// The research-workbench face of the optimizer (paper §1 "Extensibility"):
// switch individual rules on and off, change the cost model, and enable
// extension algorithms/properties — watching how plans change, exactly the
// experimentation loop the paper performs in Section 4.
#include <cstdio>

#include "src/oodb.h"
#include "src/workloads/paper_queries.h"

using namespace oodb;

namespace {

void Plan(const PaperDb& db, const char* title, int query,
          OptimizerOptions opts) {
  std::printf("\n==== %s ====\n", title);
  QueryContext ctx;
  auto logical = BuildPaperQuery(query, db, &ctx);
  if (!logical.ok()) return;
  Optimizer optimizer(&db.catalog, std::move(opts));
  auto r = optimizer.Optimize(**logical, &ctx);
  if (!r.ok()) {
    std::printf("no plan: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%scost %.2f s | %d logical exprs, %d alternatives, %d groups\n",
              PrintPlan(*r->plan, ctx).c_str(), r->cost.total(),
              r->stats.logical_mexprs, r->stats.phys_alternatives,
              r->stats.groups);
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog();

  std::printf("Every rule is an object registered with the search engine;\n"
              "OptimizerOptions::disabled_rules switches them off by name —\n"
              "the mechanism behind all of the paper's ablations.\n");

  Plan(db, "Query 1, everything enabled", 1, {});

  {
    OptimizerOptions opts;
    opts.disabled_rules = {kRuleMatToJoin};
    Plan(db, "Query 1 without the Mat->Join rule (no set-matching plans)", 1,
         opts);
  }
  {
    OptimizerOptions opts;
    opts.disabled_rules = {kImplAssembly, kEnforcerAssembly};
    Plan(db, "Query 1 without assembly at all (joins must cover every link"
             " — impossible for extent-less Plant)", 1, opts);
  }
  {
    OptimizerOptions opts;
    opts.cost.random_io_s = 0.001;  // pretend we bought solid-state disks
    Plan(db, "Query 1 with 20x cheaper random I/O (pointer chasing wins "
             "ground)", 1, opts);
  }
  {
    OptimizerOptions opts;
    opts.enable_warm_start_assembly = true;
    opts.disabled_rules = {kRuleJoinCommute, kRuleMatToJoin};
    Plan(db, "Query 1, pointer-chasing config + warm-start assembly "
             "(paper Lesson 7)", 1, opts);
  }
  {
    OptimizerOptions opts;
    opts.enable_merge_join = true;
    opts.disabled_rules = {kImplHybridHashJoin, kImplPointerJoin};
    std::printf("\n==== Value join forced onto MergeJoin + Sort enforcer "
                "====\n");
    QueryContext ctx;
    ctx.catalog = &db.catalog;
    auto logical = ParseAndSimplify(
        "SELECT e.name FROM Employee e IN Employees, Country n IN Country "
        "WHERE e.name == n.name;",
        &ctx);
    Optimizer optimizer(&db.catalog, opts);
    auto r = optimizer.Optimize(**logical, &ctx);
    if (r.ok()) {
      std::printf("%scost %.2f s\n", PrintPlan(*r->plan, ctx).c_str(),
                  r->cost.total());
    }
  }
  {
    OptimizerOptions opts;
    opts.trace = false;  // set to true to stream rule firings to stderr
    Plan(db, "Query 3 (property-driven search; try opts.trace = true)", 3,
         opts);
  }
  return 0;
}
