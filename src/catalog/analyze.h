// ANALYZE: recompute catalog statistics from stored data. The paper calls
// its selectivity estimation "naive" and promises "a more accurate
// selectivity estimation method"; this closes that loop — collection
// cardinalities, per-field distinct counts, numeric [min, max] ranges,
// set-field fanouts, and index distinct-key counts are all measured from
// the actual population instead of assumed.
#ifndef OODB_CATALOG_ANALYZE_H_
#define OODB_CATALOG_ANALYZE_H_

#include "src/storage/object_store.h"

namespace oodb {

class QueryGovernor;

struct AnalyzeOptions {
  /// Update per-field distinct counts / ranges / fanouts.
  bool field_statistics = true;
  /// Update collection cardinalities.
  bool cardinalities = true;
  /// Update index distinct-key counts from the built indexes.
  bool index_statistics = true;
  /// When set, the full-store statistics scan is charged against this
  /// governor's row budget before any catalog mutation happens. Used by the
  /// session's drift-triggered auto-ANALYZE so background refresh work runs
  /// on the triggering query's budget instead of for free.
  QueryGovernor* governor = nullptr;
};

/// Scans `store` (without simulation accounting) and updates `catalog`'s
/// statistics in place. Field statistics for a type are computed over the
/// type's extent if it has one, else over all stored objects of the type.
Status AnalyzeStore(const ObjectStore& store, Catalog* catalog,
                    AnalyzeOptions options = {});

}  // namespace oodb

#endif  // OODB_CATALOG_ANALYZE_H_
