// Shared test helpers.
#ifndef OODB_TESTS_TEST_UTIL_H_
#define OODB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/oodb.h"
#include "src/query/zql_parser.h"
#include "src/workloads/paper_queries.h"

namespace oodb {
namespace testing {

#define ASSERT_OK(expr)                                   \
  do {                                                    \
    const auto& _res = (expr);                            \
    ASSERT_TRUE(StatusOf(_res).ok()) << StatusOf(_res);   \
  } while (0)

#define EXPECT_OK(expr)                                   \
  do {                                                    \
    const auto& _res = (expr);                            \
    EXPECT_TRUE(StatusOf(_res).ok()) << StatusOf(_res);   \
  } while (0)

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  static const Status kOk;
  return r.ok() ? kOk : r.status();
}

/// True if any plan operator's display string contains `needle`.
bool PlanContains(const PlanNode& plan, const QueryContext& ctx,
                  const std::string& needle);

/// Preorder operator kinds of a plan.
std::vector<PhysOpKind> PlanKinds(const PlanNode& plan);

/// Optimizes paper query `n` under `opts`; aborts the test on failure.
OptimizedQuery MustOptimize(int n, const PaperDb& db, QueryContext* ctx,
                            OptimizerOptions opts = {});

}  // namespace testing

/// Parses ZQL text, returning null (with a test failure) on error.
ZqlQueryPtr ParseZqlForTest(const std::string& text);

namespace testing {

}  // namespace testing
}  // namespace oodb

#endif  // OODB_TESTS_TEST_UTIL_H_
