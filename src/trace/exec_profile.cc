#include "src/trace/exec_profile.h"

#include <algorithm>
#include <sstream>

#include "src/common/strings.h"

namespace oodb {

void OpProfile::MergeFrom(const OpProfile& other) {
  rows += other.rows;
  phys_rows += other.phys_rows;
  batches += other.batches;
  cpu_s += other.cpu_s;
  io_s += other.io_s;
  pages_read += other.pages_read;
  buffer_hits += other.buffer_hits;
  buffer_misses += other.buffer_misses;
  // Worker-private TopK heaps are the same bounded size; max, not sum.
  topk_heap = std::max(topk_heap, other.topk_heap);
  sort_runs += other.sort_runs;
  merge_streams += other.merge_streams;
}

OpProfile* ExecProfile::Register(const PlanNode* node) {
  return &ops_[node];
}

const OpProfile* ExecProfile::Find(const PlanNode* node) const {
  auto it = ops_.find(node);
  return it == ops_.end() ? nullptr : &it->second;
}

void ExecProfile::MergeFrom(const ExecProfile& other) {
  for (const auto& [node, prof] : other.ops_) ops_[node].MergeFrom(prof);
  for (const auto& [node, ws] : other.workers_) {
    std::vector<WorkerUtilization>& mine = workers_[node];
    mine.insert(mine.end(), ws.begin(), ws.end());
  }
  partitions_retried_ += other.partitions_retried_;
  partitions_speculated_ += other.partitions_speculated_;
}

void ExecProfile::AddWorker(const PlanNode* exchange, WorkerUtilization u) {
  workers_[exchange].push_back(u);
}

const std::vector<WorkerUtilization>* ExecProfile::workers(
    const PlanNode* exchange) const {
  auto it = workers_.find(exchange);
  return it == workers_.end() ? nullptr : &it->second;
}

double DriftRatio(double estimated, int64_t actual) {
  double e = std::max(estimated, 1.0);
  double a = std::max(static_cast<double>(actual), 1.0);
  return std::max(e, a) / std::min(e, a);
}

double MaxDriftRatio(const PlanNode& plan, const ExecProfile& profile) {
  double worst = 1.0;
  if (const OpProfile* p = profile.Find(&plan)) {
    worst = DriftRatio(plan.logical.card, p->rows);
  }
  for (const PlanNodePtr& c : plan.children) {
    worst = std::max(worst, MaxDriftRatio(*c, profile));
  }
  return worst;
}

namespace {

void RenderRec(const PlanNode& node, const QueryContext& ctx,
               const ExecProfile& profile, int depth, std::ostringstream& os) {
  os << Repeat("    ", depth) << node.op.ToString(ctx) << "   [est "
     << FormatDouble(node.logical.card, 1);
  const OpProfile* p = profile.Find(&node);
  if (p == nullptr) {
    os << " (fused)]";
  } else {
    double drift = DriftRatio(node.logical.card, p->rows);
    const char* dir = node.logical.card > static_cast<double>(p->rows)
                          ? "over"
                          : node.logical.card < static_cast<double>(p->rows)
                                ? "under"
                                : "exact";
    os << " -> act " << p->rows << " rows (drift " << FormatDouble(drift, 2)
       << "x " << dir << ")";
    // Selection density: live rows over physical batch rows. Only shown
    // when a selection vector actually thinned the stream (columnar mode).
    if (p->phys_rows > p->rows) {
      os << ", sel "
         << FormatDouble(100.0 * static_cast<double>(p->rows) /
                             static_cast<double>(p->phys_rows),
                         1)
         << "%";
    }
    os << ", batches " << p->batches << ", cpu "
       << FormatDouble(p->cpu_s, 6) << "s";
    // Order-property counters, present only where they mean something:
    // heap occupancy on TopK, flushed runs on a partial Sort, interleaved
    // streams on a merging Exchange.
    if (p->topk_heap > 0) os << ", heap " << p->topk_heap;
    if (p->sort_runs > 0) os << ", runs " << p->sort_runs;
    if (p->merge_streams > 0) os << ", merge " << p->merge_streams;
    if (profile.io_timed()) {
      os << ", io " << FormatDouble(p->io_s, 6) << "s, pages "
         << p->pages_read << ", buf " << p->buffer_hits << "h/"
         << p->buffer_misses << "m";
    }
    os << "]";
  }
  os << "\n";
  if (const std::vector<WorkerUtilization>* ws = profile.workers(&node)) {
    double total_cpu = 0.0;
    for (const WorkerUtilization& w : *ws) total_cpu += w.cpu_s;
    for (const WorkerUtilization& w : *ws) {
      double share = total_cpu > 0.0 ? 100.0 * w.cpu_s / total_cpu : 0.0;
      os << Repeat("    ", depth) << "  worker " << w.worker << ": rows "
         << w.rows << ", cpu " << FormatDouble(w.cpu_s, 6) << "s ("
         << FormatDouble(share, 1) << "%)\n";
    }
  }
  for (const PlanNodePtr& c : node.children) {
    RenderRec(*c, ctx, profile, depth + 1, os);
  }
}

}  // namespace

std::string RenderAnalyzedPlan(const PlanNode& plan, const QueryContext& ctx,
                               const ExecProfile& profile) {
  std::ostringstream os;
  RenderRec(plan, ctx, profile, 0, os);
  // Recovery events are per query (not per operator): a recovered run is
  // visibly distinct from a clean one right in the ANALYZE output.
  if (profile.partitions_retried() > 0 || profile.partitions_speculated() > 0) {
    os << "recovery: partitions retried " << profile.partitions_retried()
       << ", speculated " << profile.partitions_speculated() << "\n";
  }
  return os.str();
}

}  // namespace oodb
