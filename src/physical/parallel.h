// The parallelization rule: a post-optimization, cost-controlled pass that
// plants Volcano Exchange operators into the winning serial plan. Volcano's
// two-phase view of parallelism — optimize the algebra serially, then
// decide where to cut the plan into threads — keeps the memo search
// unchanged (and the default max_dop = 1 keeps plans bit-for-bit identical
// to the seed); the pass compares the serial plan's anticipated response
// time against est(dop) for each candidate degree of parallelism, charging
// exchange startup and per-tuple flow costs, and wraps the pipeline root in
// an Exchange only when some dop > 1 wins.
#ifndef OODB_PHYSICAL_PARALLEL_H_
#define OODB_PHYSICAL_PARALLEL_H_

#include "src/cost/cost_model.h"
#include "src/volcano/plan.h"

namespace oodb {

/// The driver scan an Exchange above `plan` would partition: follows the
/// streaming side of each operator (the probe side of hash joins, the right
/// side of nested loops, the only child of unary operators) down to a file
/// or index scan. Null when the chain hits an order- or partition-sensitive
/// operator (sort, merge join, set ops, another exchange). Shared between
/// this planner pass and the Exchange executor, so the plant decision and
/// the per-worker partitioned scans agree on the same node.
const PlanNode* FindPartitionableScan(const PlanNode& plan);

/// Returns `plan` with an Exchange planted over its pipeline root when a
/// degree of parallelism in [2, max_dop] beats the serial plan's
/// anticipated CPU response time:
///
///   est(dop) = off-path CPU (replicated build sides, overlapped across
///              workers) + driver-chain CPU / dop + ExchangeCost(dop)
///
/// I/O is charged in full at every dop (one shared disk arm). Descends
/// through a root Sort enforcer (a sort consumes its whole input before
/// emitting, so an unordered Exchange below it is harmless); refuses to
/// break an ordered delivery that reaches the consumer. max_dop <= 1
/// returns the plan unchanged.
PlanNodePtr PlantExchanges(PlanNodePtr plan, const CostModel& cm,
                           int max_dop);

}  // namespace oodb

#endif  // OODB_PHYSICAL_PARALLEL_H_
