
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/binding.cc" "src/CMakeFiles/oodb.dir/algebra/binding.cc.o" "gcc" "src/CMakeFiles/oodb.dir/algebra/binding.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/oodb.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/oodb.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/logical_op.cc" "src/CMakeFiles/oodb.dir/algebra/logical_op.cc.o" "gcc" "src/CMakeFiles/oodb.dir/algebra/logical_op.cc.o.d"
  "/root/repo/src/algebra/logical_props.cc" "src/CMakeFiles/oodb.dir/algebra/logical_props.cc.o" "gcc" "src/CMakeFiles/oodb.dir/algebra/logical_props.cc.o.d"
  "/root/repo/src/baseline/greedy.cc" "src/CMakeFiles/oodb.dir/baseline/greedy.cc.o" "gcc" "src/CMakeFiles/oodb.dir/baseline/greedy.cc.o.d"
  "/root/repo/src/catalog/analyze.cc" "src/CMakeFiles/oodb.dir/catalog/analyze.cc.o" "gcc" "src/CMakeFiles/oodb.dir/catalog/analyze.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/oodb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/oodb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/paper_catalog.cc" "src/CMakeFiles/oodb.dir/catalog/paper_catalog.cc.o" "gcc" "src/CMakeFiles/oodb.dir/catalog/paper_catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/oodb.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/oodb.dir/catalog/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/oodb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/oodb.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/oodb.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/oodb.dir/common/strings.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/oodb.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/oodb.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/selectivity.cc" "src/CMakeFiles/oodb.dir/cost/selectivity.cc.o" "gcc" "src/CMakeFiles/oodb.dir/cost/selectivity.cc.o.d"
  "/root/repo/src/dynamic/dynamic_plans.cc" "src/CMakeFiles/oodb.dir/dynamic/dynamic_plans.cc.o" "gcc" "src/CMakeFiles/oodb.dir/dynamic/dynamic_plans.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/oodb.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/oodb.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/oodb.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/oodb.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/reference.cc" "src/CMakeFiles/oodb.dir/exec/reference.cc.o" "gcc" "src/CMakeFiles/oodb.dir/exec/reference.cc.o.d"
  "/root/repo/src/exec/tuple.cc" "src/CMakeFiles/oodb.dir/exec/tuple.cc.o" "gcc" "src/CMakeFiles/oodb.dir/exec/tuple.cc.o.d"
  "/root/repo/src/optimizer.cc" "src/CMakeFiles/oodb.dir/optimizer.cc.o" "gcc" "src/CMakeFiles/oodb.dir/optimizer.cc.o.d"
  "/root/repo/src/physical/algorithms.cc" "src/CMakeFiles/oodb.dir/physical/algorithms.cc.o" "gcc" "src/CMakeFiles/oodb.dir/physical/algorithms.cc.o.d"
  "/root/repo/src/physical/enforcers.cc" "src/CMakeFiles/oodb.dir/physical/enforcers.cc.o" "gcc" "src/CMakeFiles/oodb.dir/physical/enforcers.cc.o.d"
  "/root/repo/src/physical/impl_rules.cc" "src/CMakeFiles/oodb.dir/physical/impl_rules.cc.o" "gcc" "src/CMakeFiles/oodb.dir/physical/impl_rules.cc.o.d"
  "/root/repo/src/physical/phys_props.cc" "src/CMakeFiles/oodb.dir/physical/phys_props.cc.o" "gcc" "src/CMakeFiles/oodb.dir/physical/phys_props.cc.o.d"
  "/root/repo/src/physical/physical_op.cc" "src/CMakeFiles/oodb.dir/physical/physical_op.cc.o" "gcc" "src/CMakeFiles/oodb.dir/physical/physical_op.cc.o.d"
  "/root/repo/src/query/builder.cc" "src/CMakeFiles/oodb.dir/query/builder.cc.o" "gcc" "src/CMakeFiles/oodb.dir/query/builder.cc.o.d"
  "/root/repo/src/query/simplify.cc" "src/CMakeFiles/oodb.dir/query/simplify.cc.o" "gcc" "src/CMakeFiles/oodb.dir/query/simplify.cc.o.d"
  "/root/repo/src/query/zql_ast.cc" "src/CMakeFiles/oodb.dir/query/zql_ast.cc.o" "gcc" "src/CMakeFiles/oodb.dir/query/zql_ast.cc.o.d"
  "/root/repo/src/query/zql_lexer.cc" "src/CMakeFiles/oodb.dir/query/zql_lexer.cc.o" "gcc" "src/CMakeFiles/oodb.dir/query/zql_lexer.cc.o.d"
  "/root/repo/src/query/zql_parser.cc" "src/CMakeFiles/oodb.dir/query/zql_parser.cc.o" "gcc" "src/CMakeFiles/oodb.dir/query/zql_parser.cc.o.d"
  "/root/repo/src/rules/expr_rewrites.cc" "src/CMakeFiles/oodb.dir/rules/expr_rewrites.cc.o" "gcc" "src/CMakeFiles/oodb.dir/rules/expr_rewrites.cc.o.d"
  "/root/repo/src/rules/transformations.cc" "src/CMakeFiles/oodb.dir/rules/transformations.cc.o" "gcc" "src/CMakeFiles/oodb.dir/rules/transformations.cc.o.d"
  "/root/repo/src/session.cc" "src/CMakeFiles/oodb.dir/session.cc.o" "gcc" "src/CMakeFiles/oodb.dir/session.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/oodb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/oodb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/datagen.cc" "src/CMakeFiles/oodb.dir/storage/datagen.cc.o" "gcc" "src/CMakeFiles/oodb.dir/storage/datagen.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/CMakeFiles/oodb.dir/storage/disk_model.cc.o" "gcc" "src/CMakeFiles/oodb.dir/storage/disk_model.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/oodb.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/oodb.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/oodb.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/oodb.dir/storage/object_store.cc.o.d"
  "/root/repo/src/volcano/memo.cc" "src/CMakeFiles/oodb.dir/volcano/memo.cc.o" "gcc" "src/CMakeFiles/oodb.dir/volcano/memo.cc.o.d"
  "/root/repo/src/volcano/plan.cc" "src/CMakeFiles/oodb.dir/volcano/plan.cc.o" "gcc" "src/CMakeFiles/oodb.dir/volcano/plan.cc.o.d"
  "/root/repo/src/volcano/search.cc" "src/CMakeFiles/oodb.dir/volcano/search.cc.o" "gcc" "src/CMakeFiles/oodb.dir/volcano/search.cc.o.d"
  "/root/repo/src/workloads/oo7.cc" "src/CMakeFiles/oodb.dir/workloads/oo7.cc.o" "gcc" "src/CMakeFiles/oodb.dir/workloads/oo7.cc.o.d"
  "/root/repo/src/workloads/paper_queries.cc" "src/CMakeFiles/oodb.dir/workloads/paper_queries.cc.o" "gcc" "src/CMakeFiles/oodb.dir/workloads/paper_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
