#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

using testing::PlanContains;

class GreedyTest : public ::testing::Test {
 protected:
  GreedyTest() : db_(MakePaperCatalog()) {}

  OptimizedQuery Greedy(int n, QueryContext* ctx) {
    auto logical = BuildPaperQuery(n, db_, ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    GreedyOptimizer greedy(&db_.catalog);
    auto r = greedy.Optimize(**logical, ctx);
    EXPECT_TRUE(r.ok()) << r.status();
    return *std::move(r);
  }

  PaperDb db_;
};

TEST_F(GreedyTest, Query4WithBothIndexesMatchesFigure13) {
  QueryContext ctx;
  OptimizedQuery q = Greedy(4, &ctx);
  // Figure 13: both indexes used, joined by hybrid hash join.
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 2);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 1);
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Index Scan Tasks"));
  EXPECT_TRUE(PlanContains(*q.plan, ctx, "Index Scan extent(Employee)"));
}

TEST_F(GreedyTest, Query4GreedySlowerThanOptimalWithBothIndexes) {
  QueryContext gctx, octx;
  OptimizedQuery greedy = Greedy(4, &gctx);
  OptimizedQuery optimal = testing::MustOptimize(4, db_, &octx);
  // Paper Table 3: greedy 10.1 s vs optimal 1.73 s — "more than a factor
  // of 5".
  double ratio = greedy.cost.total() / optimal.cost.total();
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 15.0);
}

TEST_F(GreedyTest, Table3GreedyRowMatchesAllRulesExceptBoth) {
  auto run = [&](bool time_idx, bool name_idx, bool greedy) {
    EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, time_idx).ok());
    EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, name_idx).ok());
    QueryContext ctx;
    double cost;
    if (greedy) {
      cost = Greedy(4, &ctx).cost.total();
    } else {
      cost = testing::MustOptimize(4, db_, &ctx).cost.total();
    }
    return cost;
  };
  // With one or zero indexes the greedy strategy has no second index to
  // misuse: costs are in the same ballpark as cost-based optimization.
  EXPECT_NEAR(run(true, false, true), run(true, false, false),
              run(true, false, false) * 0.5);
  // With both indexes greedy is substantially worse.
  EXPECT_GT(run(true, true, true), run(true, true, false) * 3);
  EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  EXPECT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, true).ok());
}

TEST_F(GreedyTest, Query1FallsBackToPointerChasing) {
  QueryContext ctx;
  OptimizedQuery q = Greedy(1, &ctx);
  // No usable index for Query 1: greedy pointer-chases everything — the
  // same shape the cost-based optimizer produces only when join rules are
  // disabled (Figure 7).
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kHybridHashJoin), 0);
  EXPECT_GE(CountOps(*q.plan, PhysOpKind::kAssembly), 2);
  QueryContext octx;
  OptimizedQuery optimal = testing::MustOptimize(1, db_, &octx);
  EXPECT_GT(q.cost.total(), optimal.cost.total() * 3);
}

TEST_F(GreedyTest, Query2UsesPathlessIndexOnlyViaSimpleKey) {
  // The greedy planner only exploits single-field indexes at the root (it
  // does not analyze mat chains), so Query 2's path index goes unused.
  QueryContext ctx;
  OptimizedQuery q = Greedy(2, &ctx);
  EXPECT_EQ(CountOps(*q.plan, PhysOpKind::kIndexScan), 0);
  QueryContext octx;
  OptimizedQuery optimal = testing::MustOptimize(2, db_, &octx);
  EXPECT_GT(q.cost.total(), optimal.cost.total() * 100);
}

TEST_F(GreedyTest, GreedyNeverBeatsCostBased) {
  for (int n : {1, 2, 3, 4}) {
    QueryContext gctx, octx;
    OptimizedQuery greedy = Greedy(n, &gctx);
    OptimizedQuery optimal = testing::MustOptimize(n, db_, &octx);
    EXPECT_GE(greedy.cost.total(), optimal.cost.total() - 1e-9) << "query " << n;
  }
}

TEST_F(GreedyTest, RejectsJoinQueries) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  auto logical = ParseAndSimplify(
      "SELECT e.name, d.name "
      "FROM Employee e IN Employees, Department d IN Department "
      "WHERE e.dept == d",
      &ctx);
  ASSERT_TRUE(logical.ok());
  GreedyOptimizer greedy(&db_.catalog);
  EXPECT_FALSE(greedy.Optimize(**logical, &ctx).ok());
}

}  // namespace
}  // namespace oodb
