file(REMOVE_RECURSE
  "CMakeFiles/example_company_queries.dir/company_queries.cpp.o"
  "CMakeFiles/example_company_queries.dir/company_queries.cpp.o.d"
  "example_company_queries"
  "example_company_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_company_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
