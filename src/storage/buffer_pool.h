// A simple LRU buffer pool over the simulated disk.
#ifndef OODB_STORAGE_BUFFER_POOL_H_
#define OODB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/storage/disk_model.h"
#include "src/storage/fault.h"

namespace oodb {

/// LRU page cache: hits are free, misses hit the disk model and may evict.
/// With a fault injector attached, any access may fail with kStorageFault
/// before touching the LRU (the page is treated as unreadable media).
///
/// Thread safety: Access() may be called concurrently from Exchange worker
/// threads — the LRU structure is guarded by a mutex and the hit/miss
/// statistics are atomic (readable lock-free while workers run). Reset()
/// and set_fault_injector() are configuration calls and must not race with
/// in-flight accesses.
class BufferPool {
 public:
  BufferPool(DiskModel* disk, int64_t capacity_pages,
             FaultInjector* faults = nullptr)
      : disk_(disk), capacity_(capacity_pages), faults_(faults) {}

  /// Touches `page`, faulting it in if absent. Thread-safe.
  Status Access(PageId page);

  /// Touches `n` pages in order under one lock acquisition, with the same
  /// per-page hit/miss/eviction sequence as n Access() calls — the batched
  /// entry point for ReadMany's page runs (one lock and one statistics
  /// update per scan chunk instead of one per page run). Thread-safe.
  Status AccessMany(const PageId* pages, size_t n);

  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t resident() const {
    MutexLock lock(mu_);
    return static_cast<int64_t>(lru_.size());
  }
  int64_t capacity() const { return capacity_; }

  void Reset();

 private:
  bool AccessLocked(PageId page) REQUIRES(mu_);

  DiskModel* disk_;
  int64_t capacity_;
  FaultInjector* faults_;
  mutable Mutex mu_{
      lock_rank::kBufferPool};  ///< guards lru_ / index_ (and the miss read)
  std::list<PageId> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> index_
      GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace oodb

#endif  // OODB_STORAGE_BUFFER_POOL_H_
