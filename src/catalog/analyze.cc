#include "src/catalog/analyze.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/governor.h"

namespace oodb {

namespace {

struct FieldStats {
  std::set<std::string> distinct;
  int64_t min_value = 0;
  int64_t max_value = 0;
  bool any_int = false;
  double set_elements = 0;
  int64_t rows = 0;
};

}  // namespace

Status AnalyzeStore(const ObjectStore& store, Catalog* catalog,
                    AnalyzeOptions options) {
  const Schema& schema = catalog->schema();

  if (options.governor != nullptr) {
    // Charge the statistics scan before mutating anything: one row per
    // stored object. A governed query that triggers auto-ANALYZE pays for
    // the refresh; if the budget cannot cover it, the catalog is left
    // untouched and the caller sees the trip.
    OODB_RETURN_IF_ERROR(
        options.governor->ChargeRows(store.num_objects()));
  }

  // Bump *before* the first mutation, not only after the last one. The
  // field/index sections below write through the non-bumping schema()
  // accessor; with only the trailing bump, a concurrent Session::Prepare
  // that snapshotted the pre-ANALYZE version could cost a plan against
  // partially-updated statistics, cache it under that old version, and have
  // it served to every same-version lookup until the trailing bump finally
  // lands. Bumping first makes any such entry stale the instant ANALYZE
  // begins: it is dead on insertion and invalidated at first contact.
  catalog->BumpStatsVersion();

  if (options.cardinalities) {
    // Collection cardinalities are exact counts of the stored members.
    std::vector<CollectionInfo> collections = catalog->collections();
    for (const CollectionInfo& c : collections) {
      Result<const std::vector<Oid>*> members = store.CollectionMembers(c.id);
      if (!members.ok()) continue;  // not populated in this store
      OODB_RETURN_IF_ERROR(catalog->SetCardinality(
          c.id, static_cast<int64_t>((*members)->size())));
    }
  }

  if (options.field_statistics) {
    // One pass over every stored object, accumulating per (type, field).
    std::vector<std::vector<FieldStats>> stats(schema.num_types());
    for (TypeId t = 0; t < schema.num_types(); ++t) {
      stats[t].resize(schema.type(t).fields().size());
    }
    for (Oid oid = 0; oid < store.num_objects(); ++oid) {
      OODB_ASSIGN_OR_RETURN(const ObjectData* obj_ptr, store.Peek(oid));
      const ObjectData& obj = *obj_ptr;
      const TypeDef& td = schema.type(obj.type);
      int ref_set_slot = 0;
      for (FieldId f = 0; f < static_cast<FieldId>(td.fields().size()); ++f) {
        const FieldDef& def = td.field(f);
        FieldStats& fs = stats[obj.type][f];
        ++fs.rows;
        switch (def.kind) {
          case FieldKind::kInt: {
            int64_t v = obj.value(f).i;
            if (!fs.any_int || v < fs.min_value) fs.min_value = v;
            if (!fs.any_int || v > fs.max_value) fs.max_value = v;
            fs.any_int = true;
            fs.distinct.insert(std::to_string(v));
            break;
          }
          case FieldKind::kDouble:
          case FieldKind::kString:
            fs.distinct.insert(obj.value(f).ToString());
            break;
          case FieldKind::kRef:
            break;
          case FieldKind::kRefSet:
            fs.set_elements +=
                static_cast<double>(obj.ref_sets[ref_set_slot].size());
            ++ref_set_slot;
            break;
        }
      }
    }
    for (TypeId t = 0; t < schema.num_types(); ++t) {
      TypeDef& td = catalog->schema().mutable_type(t);
      for (FieldId f = 0; f < static_cast<FieldId>(td.fields().size()); ++f) {
        const FieldStats& fs = stats[t][f];
        if (fs.rows == 0) continue;
        FieldDef& def = td.mutable_field(f);
        switch (def.kind) {
          case FieldKind::kInt:
            def.distinct_values = static_cast<int64_t>(fs.distinct.size());
            def.min_value = fs.min_value;
            def.max_value = fs.max_value;
            break;
          case FieldKind::kDouble:
          case FieldKind::kString:
            def.distinct_values = static_cast<int64_t>(fs.distinct.size());
            break;
          case FieldKind::kRef:
            break;
          case FieldKind::kRefSet:
            def.avg_set_card =
                fs.set_elements / static_cast<double>(fs.rows);
            break;
        }
      }
    }
  }

  if (options.index_statistics) {
    for (const IndexInfo& info : catalog->indexes()) {
      Result<const StoredIndex*> idx = store.FindIndex(info.name);
      if (!idx.ok()) continue;  // not built in this store
      Result<IndexInfo*> mutable_info = catalog->FindIndex(info.name);
      if (mutable_info.ok()) {
        (*mutable_info)->distinct_keys = (*idx)->num_keys();
      }
    }
  }
  // Field and index statistics above mutate the catalog directly (not
  // through a bumping mutator); together with the leading bump this
  // brackets the whole mutation window, so a version snapshotted at any
  // point before or during ANALYZE differs from the final version and any
  // plan costed against in-flight statistics can never be served again.
  catalog->BumpStatsVersion();
  catalog->MarkStatsMeasured();
  return Status::OK();
}

}  // namespace oodb
