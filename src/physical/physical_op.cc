#include "src/physical/physical_op.h"

#include "src/common/strings.h"

namespace oodb {

const char* PhysOpKindName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kFileScan:
      return "File Scan";
    case PhysOpKind::kIndexScan:
      return "Index Scan";
    case PhysOpKind::kFilter:
      return "Filter";
    case PhysOpKind::kHybridHashJoin:
      return "Hybrid Hash Join";
    case PhysOpKind::kPointerJoin:
      return "Pointer Join";
    case PhysOpKind::kAssembly:
      return "Assembly";
    case PhysOpKind::kAlgProject:
      return "Alg-Project";
    case PhysOpKind::kAlgUnnest:
      return "Alg-Unnest";
    case PhysOpKind::kHashUnion:
      return "Hash Union";
    case PhysOpKind::kHashIntersect:
      return "Hash Intersect";
    case PhysOpKind::kHashDifference:
      return "Hash Difference";
    case PhysOpKind::kSort:
      return "Sort";
    case PhysOpKind::kTopK:
      return "TopK";
    case PhysOpKind::kMergeJoin:
      return "Merge Join";
    case PhysOpKind::kNestedLoops:
      return "Nested Loops";
    case PhysOpKind::kExchange:
      return "Exchange";
  }
  return "?";
}

std::string PhysicalOp::ToString(const QueryContext& ctx) const {
  const BindingTable& b = ctx.bindings;
  const Schema& s = ctx.schema();
  std::string name = PhysOpKindName(kind);
  switch (kind) {
    case PhysOpKind::kFileScan:
      return name + " " + coll.Display(s) + ": " + b.def(binding).name;
    case PhysOpKind::kIndexScan: {
      std::string out = name + " " + coll.Display(s) + ": " +
                        b.def(binding).name + ", " +
                        index_pred->ToString(b, s);
      if (pred) out += " [residual " + pred->ToString(b, s) + "]";
      return out;
    }
    case PhysOpKind::kFilter:
      return name + " " + pred->ToString(b, s);
    case PhysOpKind::kHybridHashJoin:
    case PhysOpKind::kPointerJoin:
    case PhysOpKind::kMergeJoin:
    case PhysOpKind::kNestedLoops:
      return name + " " + pred->ToString(b, s);
    case PhysOpKind::kAssembly: {
      std::vector<std::string> parts;
      for (const MatStep& m : mats) {
        if (m.field == kInvalidField) {
          parts.push_back(b.def(m.source).name + ": " + b.def(m.target).name);
        } else {
          parts.push_back(b.def(m.target).name);
        }
      }
      std::string out = name + " " + Join(parts, ", ");
      if (window == 1) out += " [window 1]";
      if (warm_start) out += " [warm-start]";
      return out;
    }
    case PhysOpKind::kAlgProject: {
      std::vector<std::string> parts;
      for (const ScalarExprPtr& e : emit) parts.push_back(e->ToString(b, s));
      return name + " " + Join(parts, ", ");
    }
    case PhysOpKind::kAlgUnnest:
      return name + " " + b.def(source).name + "." +
             s.type(b.def(source).type).field(field).name + ": " +
             b.def(target).name;
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
      return name;
    case PhysOpKind::kSort:
    case PhysOpKind::kTopK: {
      std::vector<std::string> parts;
      for (const SortKey& k : sort.keys) {
        const BindingDef& sb = b.def(k.binding);
        parts.push_back(sb.name + "." + s.type(sb.type).field(k.field).name +
                        (k.desc ? " desc" : ""));
      }
      std::string out = name + " " + Join(parts, ", ");
      if (limit > 0) out += " [limit " + std::to_string(limit) + "]";
      if (sort_prefix > 0) {
        out += " [presorted " + std::to_string(sort_prefix) + "]";
      }
      return out;
    }
    case PhysOpKind::kExchange: {
      std::string out = name + " [dop " + std::to_string(dop);
      if (partition_binding != kInvalidBinding) {
        out += ", partition " + b.def(partition_binding).name;
      }
      if (merge) out += ", merge";
      if (limit > 0) out += ", limit " + std::to_string(limit);
      return out + "]";
    }
  }
  return name;
}

}  // namespace oodb
