#!/usr/bin/env python3
"""Lint: no raw standard-library locking primitives outside the wrapper.

Every mutex in the engine must be an oodb::Mutex / oodb::SharedMutex (and
every scoped lock a MutexLock / UniqueLock / ReaderMutexLock /
WriterMutexLock, every condition variable an oodb::CondVar) so that (a) the
Clang Thread Safety capability annotations see every acquisition and (b) the
Debug-build lock-rank registry checks every acquisition against the global
order in src/common/mutex.h. A raw std primitive is invisible to both — one
unchecked lock re-opens the deadlock- and data-race surface the wrappers
closed — so this script rejects them repo-wide.

The only files allowed to name the std primitives are the wrapper itself
(src/common/mutex.h / .cc), which is their single point of encapsulation.

Usage: scripts/lint_locks.py [--root DIR]
Exit 0 = clean, 1 = violations (printed as file:line: message).
"""

import argparse
import pathlib
import re
import sys

# The banned surface, each name matched as a full token (a trailing \b plus
# a lookahead so `std::mutex` does not also flag e.g. a hypothetical
# `std::mutex_like` identifier).
BANNED = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_lock",
    "std::scoped_lock",
    "std::condition_variable",
    "std::condition_variable_any",
]

BANNED_RE = re.compile(
    "(" + "|".join(re.escape(n) for n in BANNED) + r")\b(?!_)"
)

# The wrapper encapsulates the std primitives; nothing else may name them.
ALLOWED = {"src/common/mutex.h", "src/common/mutex.cc"}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
            out.append("~")  # keep the token non-empty
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def check_file(path: pathlib.Path) -> list:
    text = strip_comments_and_strings(path.read_text())
    bad = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in BANNED_RE.finditer(line):
            bad.append((lineno, m.group(1)))
    return bad


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()
    root = pathlib.Path(args.root)

    violations = 0
    checked = 0
    scan_dirs = [root / "src", root / "tests", root / "bench"]
    for d in scan_dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.cc")) + sorted(d.rglob("*.h")):
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWED:
                continue
            checked += 1
            for lineno, name in check_file(path):
                print(f"{rel}:{lineno}: raw '{name}' — use the annotated "
                      f"wrappers in src/common/mutex.h (Mutex / MutexLock / "
                      f"UniqueLock / CondVar ...)")
                violations += 1

    if violations:
        print(f"lint_locks: {violations} raw locking primitive(s)",
              file=sys.stderr)
        return 1
    print(f"lint_locks: clean ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
