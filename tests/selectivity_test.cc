#include <gtest/gtest.h>

#include "src/catalog/paper_catalog.h"
#include "src/cost/selectivity.h"

namespace oodb {
namespace {

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);
    t_ = ctx_.bindings.AddGet("t", db_.task);
  }
  PaperDb db_;
  QueryContext ctx_;
  BindingId c_, m_, t_;
};

TEST_F(SelectivityTest, DefaultTenPercentWithoutIndex) {
  SelectivityEstimator sel(&ctx_);
  // No index assists city population equality.
  EXPECT_DOUBLE_EQ(
      sel.Estimate(ScalarExpr::AttrEqInt(c_, db_.city_population, 5)), 0.10);
}

TEST_F(SelectivityTest, IndexAssistedEquality) {
  SelectivityEstimator sel(&ctx_);
  EXPECT_DOUBLE_EQ(sel.Estimate(ScalarExpr::AttrEqInt(t_, db_.task_time, 100)),
                   1.0 / 600.0);
}

TEST_F(SelectivityTest, PathIndexAssistsViaMatChain) {
  SelectivityEstimator sel(&ctx_);
  EXPECT_DOUBLE_EQ(
      sel.Estimate(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      1.0 / 5000.0);
}

TEST_F(SelectivityTest, DisabledIndexFallsBackToDefault) {
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxCitiesMayorName, false).ok());
  SelectivityEstimator sel(&ctx_);
  EXPECT_DOUBLE_EQ(
      sel.Estimate(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")), 0.10);
}

TEST_F(SelectivityTest, RangeUsesMinMaxStats) {
  // task.time has [1, 600] range statistics: interpolate.
  SelectivityEstimator sel(&ctx_);
  EXPECT_NEAR(
      sel.Estimate(ScalarExpr::AttrCmpInt(t_, db_.task_time, CmpOp::kLt, 50)),
      49.0 / 599.0, 1e-9);
  EXPECT_NEAR(
      sel.Estimate(ScalarExpr::AttrCmpInt(t_, db_.task_time, CmpOp::kGe, 540)),
      1.0 - 539.0 / 599.0, 1e-9);
  // Out-of-range constants clamp (floor 0.001 keeps estimates non-zero).
  EXPECT_NEAR(
      sel.Estimate(ScalarExpr::AttrCmpInt(t_, db_.task_time, CmpOp::kLt, -5)),
      0.001, 1e-9);
}

TEST_F(SelectivityTest, RangeWithoutStatsIsOneThird) {
  // salary is a double field with no [min, max] statistics.
  SelectivityEstimator sel(&ctx_);
  BindingId e = ctx_.bindings.AddGet("e2", db_.employee);
  ScalarExprPtr pred = ScalarExpr::Cmp(
      CmpOp::kGe, ScalarExpr::Attr(e, db_.emp_salary),
      ScalarExpr::Const(Value::Double(50000.0)));
  EXPECT_DOUBLE_EQ(sel.Estimate(pred), 1.0 / 3.0);
}

TEST_F(SelectivityTest, NotEqual) {
  SelectivityEstimator sel(&ctx_);
  EXPECT_DOUBLE_EQ(
      sel.Estimate(ScalarExpr::AttrCmpInt(t_, db_.task_time, CmpOp::kNe, 50)),
      0.9);
}

TEST_F(SelectivityTest, ConjunctionMultiplies) {
  SelectivityEstimator sel(&ctx_);
  ScalarExprPtr e = ScalarExpr::And(
      {ScalarExpr::AttrEqInt(c_, db_.city_population, 5),
       ScalarExpr::AttrEqInt(c_, db_.city_population, 6)});
  EXPECT_NEAR(sel.Estimate(e), 0.01, 1e-12);
}

TEST_F(SelectivityTest, DisjunctionInclusionExclusion) {
  SelectivityEstimator sel(&ctx_);
  ScalarExprPtr e = ScalarExpr::Or(
      {ScalarExpr::AttrEqInt(c_, db_.city_population, 5),
       ScalarExpr::AttrEqInt(c_, db_.city_population, 6)});
  EXPECT_NEAR(sel.Estimate(e), 0.19, 1e-12);
}

TEST_F(SelectivityTest, NotComplement) {
  SelectivityEstimator sel(&ctx_);
  ScalarExprPtr e =
      ScalarExpr::Not(ScalarExpr::AttrEqInt(c_, db_.city_population, 5));
  EXPECT_NEAR(sel.Estimate(e), 0.9, 1e-12);
}

TEST_F(SelectivityTest, NullPredicateIsOne) {
  SelectivityEstimator sel(&ctx_);
  EXPECT_DOUBLE_EQ(sel.Estimate(nullptr), 1.0);
}

TEST_F(SelectivityTest, RefJoinSelectivityUsesPopulation) {
  SelectivityEstimator sel(&ctx_);
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  ScalarExprPtr pred = ScalarExpr::RefEq(e, db_.emp_dept, d);
  // Department extent has 1000 objects.
  EXPECT_DOUBLE_EQ(sel.JoinSelectivity(pred, 50000, 1000), 1.0 / 1000.0);
}

TEST_F(SelectivityTest, ValueJoinSelectivityUsesDistinct) {
  SelectivityEstimator sel(&ctx_);
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId p = ctx_.bindings.AddGet("p", db_.person);
  ScalarExprPtr pred =
      ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Attr(e, db_.emp_name),
                      ScalarExpr::Attr(p, db_.person_name));
  // 1 / max(distinct(emp.name)=475, distinct(person.name)=5000).
  EXPECT_DOUBLE_EQ(sel.JoinSelectivity(pred, 100, 100), 1.0 / 5000.0);
}

TEST_F(SelectivityTest, FindAssistingIndexExtentOnlyForMatRef) {
  // A Mat from a bare reference resolves against the type's population:
  // only the extent index on Employee.name applies.
  BindingId r =
      ctx_.bindings.AddUnnest("r", db_.employee, t_, db_.task_team_members);
  BindingId e = ctx_.bindings.AddMat("e", db_.employee, r, kInvalidField);
  SelectivityEstimator sel(&ctx_);
  const IndexInfo* idx = sel.FindAssistingIndex(e, db_.emp_name);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->name, kIdxEmployeesName);
  EXPECT_EQ(idx->collection.kind, CollectionId::Kind::kExtent);
}

TEST_F(SelectivityTest, FindAssistingIndexNoneForUnindexedField) {
  SelectivityEstimator sel(&ctx_);
  EXPECT_EQ(sel.FindAssistingIndex(c_, db_.city_population), nullptr);
  EXPECT_EQ(sel.FindAssistingIndex(c_, kInvalidField), nullptr);
}

}  // namespace
}  // namespace oodb
