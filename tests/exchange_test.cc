// Exchange / batch-execution parity suite (`ctest -L parallel`; CI repeats
// it under TSan). The correctness oracle is the reference evaluator: every
// randomized OO7 query must produce the identical result multiset
// tuple-at-a-time (batch 1), batched (batch 1024), and parallel (DOP 4),
// including under injected storage faults and governor trips — a worker
// failure must drain the whole pipeline and surface as one typed error,
// never a crash, a hang, or a silently short result.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "src/common/rng.h"
#include "src/exec/reference.h"
#include "src/physical/parallel.h"
#include "src/workloads/oo7.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

Oo7Options ParallelConfig() {
  Oo7Options o;
  o.complex_per_module = 3;
  o.base_per_complex = 5;
  o.components_per_base = 3;
  o.num_composite_parts = 25;
  o.atomic_per_composite = 8;
  o.num_build_dates = 10;
  o.num_doc_titles = 5;
  return o;
}

/// Randomized OO7 queries: scans, explicit joins, set-valued unnest chains,
/// path expressions over the documentation index, and ordered deliveries.
std::string RandomOo7Query(Rng& rng) {
  switch (rng.Uniform(8)) {
    case 0:
      return "SELECT a.id, a.x FROM AtomicPart a IN AtomicParts WHERE a.x > " +
             std::to_string(rng.UniformRange(0, 999)) + ";";
    case 1:
      return "SELECT a.id FROM AtomicPart a IN AtomicParts "
             "WHERE a.x > a.y && a.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) + ";";
    case 2:
      return "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
             "CompositePart p IN CompositeParts "
             "WHERE a.partOf == p && p.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) + ";";
    case 3:
      return kOo7QueryNewerComponents;
    case 4:
      return kOo7QueryTraversal;
    case 5:
      return Oo7QueryByDocTitle("Doc" +
                                std::to_string(rng.UniformRange(0, 4)));
    case 6:
      return "SELECT a.id, a.partOf.buildDate FROM AtomicPart a IN "
             "AtomicParts WHERE a.partOf.documentation.title == \"Doc" +
             std::to_string(rng.UniformRange(0, 4)) + "\";";
    default:
      return "SELECT b.id, b.buildDate FROM BaseAssembly b IN BaseAssemblies "
             "WHERE b.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) +
             " ORDER BY b.buildDate;";
  }
}

class ExchangeTest : public ::testing::TestWithParam<int> {
 protected:
  static Oo7Instance* instance_;

  static void SetUpTestSuite() {
    auto r = MakeOo7(ParallelConfig());
    ASSERT_TRUE(r.ok()) << r.status();
    instance_ = new Oo7Instance(std::move(r).value());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static Catalog& catalog() { return instance_->db->catalog; }
  static ObjectStore& store() { return *instance_->store; }

  struct Planned {
    QueryContext ctx;
    LogicalExprPtr logical;
    PlanNodePtr plan;
  };

  static Planned Plan(const std::string& text, int max_dop = 1) {
    Planned out;
    out.ctx.catalog = &catalog();
    SortSpec order;
    int64_t limit = 0;
    auto logical = ParseAndSimplify(text, &out.ctx, &order, &limit);
    EXPECT_TRUE(logical.ok()) << logical.status() << "\n" << text;
    out.logical = *logical;
    OptimizerOptions opts;
    opts.max_dop = max_dop;
    opts.verify_plans = true;
    PhysProps required;
    required.sort = order;
    required.limit = limit;
    Optimizer opt(&catalog(), std::move(opts));
    auto planned = opt.Optimize(*out.logical, &out.ctx, required);
    EXPECT_TRUE(planned.ok()) << planned.status() << "\n" << text;
    EXPECT_TRUE(planned->stats.verify_error.empty())
        << text << "\n" << planned->stats.verify_error;
    out.plan = planned->plan;
    return out;
  }

  static Result<ExecStats> Exec(Planned& p, int batch_size,
                                QueryGovernor* governor = nullptr,
                                int vectorize = -1) {
    ExecOptions eo;
    eo.sample_limit = 1 << 22;
    eo.batch_size = batch_size;
    eo.governor = governor;
    eo.vectorize = vectorize;
    return ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  }

  static std::vector<std::string> SortedRows(
      const std::vector<std::vector<Value>>& rows) {
    std::vector<std::string> out;
    for (const std::vector<Value>& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Result rows rendered in delivery order (no normalization): the oracle
  /// for ordered queries, where the *sequence* is the contract.
  static std::vector<std::string> RowSeq(
      const std::vector<std::vector<Value>>& rows) {
    std::vector<std::string> out;
    for (const std::vector<Value>& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  static int CountExchanges(const PlanNode& plan) {
    std::vector<PhysOpKind> kinds = testing::PlanKinds(plan);
    return static_cast<int>(
        std::count(kinds.begin(), kinds.end(), PhysOpKind::kExchange));
  }

  static const PlanNode* FindMergeExchange(const PlanNode& node) {
    if (node.op.kind == PhysOpKind::kExchange && node.op.merge) return &node;
    for (const PlanNodePtr& c : node.children) {
      if (const PlanNode* f = FindMergeExchange(*c)) return f;
    }
    return nullptr;
  }

  static int MaxDopOf(const PlanNode& node) {
    int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
    for (const PlanNodePtr& c : node.children) {
      dop = std::max(dop, MaxDopOf(*c));
    }
    return dop;
  }
};

Oo7Instance* ExchangeTest::instance_ = nullptr;

TEST_F(ExchangeTest, DefaultPlansStaySerial) {
  Planned p = Plan(kOo7QueryTraversal);  // max_dop defaults to 1
  EXPECT_EQ(CountExchanges(*p.plan), 0);
}

TEST_F(ExchangeTest, PlantsExchangeWhenProfitable) {
  Planned p = Plan("SELECT a.id FROM AtomicPart a IN AtomicParts "
                   "WHERE a.x > a.y;",
                   /*max_dop=*/4);
  ASSERT_EQ(CountExchanges(*p.plan), 1) << PrintPlan(*p.plan, p.ctx);
  int dop = MaxDopOf(*p.plan);
  EXPECT_GE(dop, 2);
  EXPECT_LE(dop, 4);

  auto stats = Exec(p, /*batch_size=*/0);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->dop, dop);
  EXPECT_GT(stats->batch_size, 1);

  auto reference = EvaluateReference(*p.logical, &store(), p.ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(SortedRows(stats->sample_rows), SortedRows(reference->rows));
}

TEST_F(ExchangeTest, OrderedDeliveryStaysCorrectUnderParallelism) {
  // An ordered root parallelizes only via the merging Exchange (workers
  // sort their contiguous slices, the consumer merges) — or stays serial;
  // either way the delivered order survives.
  Planned p = Plan("SELECT a.id, a.x FROM AtomicPart a IN AtomicParts "
                   "WHERE a.x > 100 ORDER BY a.x;",
                   /*max_dop=*/4);
  auto stats = Exec(p, /*batch_size=*/0);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (size_t i = 1; i < stats->sample_rows.size(); ++i) {
    EXPECT_LE(stats->sample_rows[i - 1][1].i, stats->sample_rows[i][1].i);
  }
  auto reference = EvaluateReference(*p.logical, &store(), p.ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(SortedRows(stats->sample_rows), SortedRows(reference->rows));
}

TEST_P(ExchangeTest, BatchAndDopConfigurationsMatchReference) {
  Rng rng(0xec4a + static_cast<uint64_t>(GetParam()) * 6151);
  std::string text = RandomOo7Query(rng);
  SCOPED_TRACE(text);

  Planned serial = Plan(text, /*max_dop=*/1);
  Planned par = Plan(text, /*max_dop=*/4);

  auto reference = EvaluateReference(*serial.logical, &store(), serial.ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::vector<std::string> expect = SortedRows(reference->rows);

  struct Config {
    Planned* planned;
    int batch;
    int vectorize;
    const char* label;
  } configs[] = {
      {&serial, 1, -1, "serial batch=1 (tuple-at-a-time era)"},
      {&serial, 1024, 0, "serial batch=1024 row engine"},
      {&serial, 1024, 1, "serial batch=1024 vectorized"},
      {&par, 64, 0, "dop=4 batch=64 row engine"},
      {&par, 64, 1, "dop=4 batch=64 vectorized"},
      {&par, 1024, 0, "dop=4 batch=1024 row engine"},
      {&par, 1024, 1, "dop=4 batch=1024 vectorized"},
  };
  // Vectorization is a wall-clock-only change: for a fixed plan and batch
  // size, the columnar engine must deliver the row engine's exact result
  // multiset AND its exact simulated accounting. Remember the row-engine
  // stats per (plan, batch) and hold the vectorized run to them.
  //
  // One carve-out: simulated I/O *seconds* are only exact for serial
  // plans. The disk model has a single shared arm, and concurrent workers
  // contend for it exactly as real spindles do — which page read counts as
  // sequential vs a seek depends on how the OS interleaves the worker
  // threads, so two dop>1 runs of the same plan legitimately charge
  // slightly different io_s under load. CPU (private per-worker clocks
  // over fixed slices) and pages read (each page faults once in the cold
  // shared pool) stay deterministic at any dop and are held exact.
  struct Baseline {
    bool set = false;
    ExecStats stats;
  };
  std::map<std::pair<Planned*, int>, Baseline> row_runs;
  for (Config& c : configs) {
    SCOPED_TRACE(c.label);
    auto stats = Exec(*c.planned, c.batch, nullptr, c.vectorize);
    ASSERT_TRUE(stats.ok()) << stats.status() << "\nplan:\n"
                            << PrintPlan(*c.planned->plan, c.planned->ctx);
    EXPECT_EQ(stats->rows, static_cast<int64_t>(reference->rows.size()));
    EXPECT_EQ(SortedRows(stats->sample_rows), expect)
        << "plan:\n" << PrintPlan(*c.planned->plan, c.planned->ctx);
    Baseline& base = row_runs[{c.planned, c.batch}];
    if (c.vectorize == 0) {
      base.set = true;
      base.stats = *stats;
    } else if (c.vectorize == 1 && base.set) {
      EXPECT_DOUBLE_EQ(stats->sim_cpu_s, base.stats.sim_cpu_s)
          << "vectorization changed simulated CPU accounting";
      if (c.planned == &serial) {
        EXPECT_DOUBLE_EQ(stats->sim_io_s, base.stats.sim_io_s)
            << "vectorization changed simulated I/O accounting";
      }
      EXPECT_EQ(stats->pages_read, base.stats.pages_read);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeTest, ::testing::Range(0, 40));

TEST_F(ExchangeTest, MergeExchangeReproducesStableSortExactly) {
  // Non-unique key, so tie order is the contract: a merging Exchange over
  // contiguous partitions, ties broken toward the lower partition index,
  // must reproduce the serial stable sort's exact row sequence.
  const std::string text =
      "SELECT a.buildDate, a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.x >= 0 ORDER BY a.buildDate;";
  Planned serial = Plan(text, /*max_dop=*/1);
  Planned par = Plan(text, /*max_dop=*/4);
  ASSERT_NE(FindMergeExchange(*par.plan), nullptr)
      << PrintPlan(*par.plan, par.ctx);

  auto base = Exec(serial, /*batch_size=*/1024, nullptr, /*vectorize=*/0);
  ASSERT_TRUE(base.ok()) << base.status();
  std::vector<std::string> expect = RowSeq(base->sample_rows);
  ASSERT_GT(expect.size(), 4u);

  for (int vectorize : {0, 1}) {
    for (int batch : {16, 1024}) {
      SCOPED_TRACE(std::string("vectorize=") + std::to_string(vectorize) +
                   " batch=" + std::to_string(batch));
      auto stats = Exec(par, batch, nullptr, vectorize);
      ASSERT_TRUE(stats.ok()) << stats.status();
      EXPECT_EQ(RowSeq(stats->sample_rows), expect)
          << "plan:\n" << PrintPlan(*par.plan, par.ctx);
    }
  }
}

TEST_F(ExchangeTest, TopKUnderDopMatchesSerialPrefix) {
  // ORDER BY ... LIMIT under parallelism: workers top-k their slices, the
  // merging Exchange truncates at the global bound — the delivered prefix
  // must equal the serial bounded-heap's exactly, row for row.
  const std::string text =
      "SELECT a.x, a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.x >= 0 ORDER BY a.x, a.id LIMIT 10;";
  Planned serial = Plan(text, /*max_dop=*/1);
  Planned par = Plan(text, /*max_dop=*/4);
  ASSERT_EQ(CountOps(*serial.plan, PhysOpKind::kTopK), 1)
      << PrintPlan(*serial.plan, serial.ctx);

  auto base = Exec(serial, /*batch_size=*/1024, nullptr, /*vectorize=*/0);
  ASSERT_TRUE(base.ok()) << base.status();
  std::vector<std::string> expect = RowSeq(base->sample_rows);
  ASSERT_EQ(expect.size(), 10u);

  for (int vectorize : {0, 1}) {
    for (int batch : {16, 1024}) {
      SCOPED_TRACE(std::string("vectorize=") + std::to_string(vectorize) +
                   " batch=" + std::to_string(batch));
      auto stats = Exec(par, batch, nullptr, vectorize);
      ASSERT_TRUE(stats.ok()) << stats.status();
      EXPECT_EQ(RowSeq(stats->sample_rows), expect)
          << "plan:\n" << PrintPlan(*par.plan, par.ctx);
    }
  }
}

TEST_F(ExchangeTest, TopKFastPathsMatchOracle) {
  // exec.topk == false switches TopKExec to buffer-all / stable-sort /
  // truncate. The bounded heap (unsorted input) and the streaming first-k
  // cutoff must both be row-for-row identical to that oracle.
  const std::string heap_q =
      "SELECT a.x, a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.x >= 0 ORDER BY a.x, a.id LIMIT 25;";
  Planned p = Plan(heap_q, /*max_dop=*/1);
  ASSERT_EQ(CountOps(*p.plan, PhysOpKind::kTopK), 1)
      << PrintPlan(*p.plan, p.ctx);

  ExecOptions fast;
  fast.sample_limit = 1 << 22;
  fast.batch_size = 1024;
  fast.vectorize = 0;
  ExecOptions oracle = fast;
  oracle.topk = false;
  auto rf = ExecutePlan(*p.plan, &store(), &p.ctx, fast);
  auto ro = ExecutePlan(*p.plan, &store(), &p.ctx, oracle);
  ASSERT_TRUE(rf.ok()) << rf.status();
  ASSERT_TRUE(ro.ok()) << ro.status();
  ASSERT_EQ(rf->rows, 25);
  EXPECT_EQ(RowSeq(rf->sample_rows), RowSeq(ro->sample_rows));

  // Columnar pre-screen variant of the heap path against the same oracle.
  ExecOptions vec = fast;
  vec.vectorize = 1;
  auto rv = ExecutePlan(*p.plan, &store(), &p.ctx, vec);
  ASSERT_TRUE(rv.ok()) << rv.status();
  EXPECT_EQ(RowSeq(rv->sample_rows), RowSeq(ro->sample_rows));
}

/// A randomized ordered (optionally limited) single-scan query whose ORDER
/// BY keys are its leading select columns, so the expected sequence can be
/// computed from the reference rows by a stable sort.
struct OrderedQuery {
  std::string text;
  std::vector<std::pair<size_t, bool>> keys;  // select-column index, desc
  int64_t limit = 0;
};

OrderedQuery RandomOrderedQuery(Rng& rng) {
  const char* fields[] = {"buildDate", "x", "y"};
  OrderedQuery q;
  bool used[3] = {false, false, false};
  size_t nkeys = 1 + rng.Uniform(2);
  std::string sel, order;
  for (size_t i = 0; i < nkeys; ++i) {
    size_t f;
    do {
      f = rng.Uniform(3);
    } while (used[f]);
    used[f] = true;
    bool desc = rng.Uniform(2) == 1;
    if (i > 0) {
      sel += ", ";
      order += ", ";
    }
    sel += std::string("a.") + fields[f];
    order += std::string("a.") + fields[f] + (desc ? " DESC" : "");
    q.keys.push_back({i, desc});
  }
  // Half the time the order is made total by a trailing unique key; the
  // other half leaves ties, exercising merge/top-k stability.
  if (rng.Uniform(2) == 0) {
    sel += ", a.id";
    order += ", a.id";
    q.keys.push_back({nkeys, false});
  } else {
    sel += ", a.id";
  }
  q.text = "SELECT " + sel +
           " FROM AtomicPart a IN AtomicParts WHERE a.x >= " +
           std::to_string(rng.UniformRange(0, 800)) + " ORDER BY " + order;
  if (rng.Uniform(2) == 0) {
    q.limit = 1 + static_cast<int64_t>(rng.Uniform(40));
    q.text += " LIMIT " + std::to_string(q.limit);
  }
  q.text += ";";
  return q;
}

TEST_P(ExchangeTest, OrderedLimitSweepMatchesReferenceSequence) {
  Rng rng(0x0dd1 + static_cast<uint64_t>(GetParam()) * 9973);
  OrderedQuery q = RandomOrderedQuery(rng);
  SCOPED_TRACE(q.text);

  Planned serial = Plan(q.text, /*max_dop=*/1);
  Planned par = Plan(q.text, /*max_dop=*/4);

  // Expected sequence: the reference multiset, stable-sorted on the query's
  // keys (reference rows arrive in scan order, the same tie order the
  // engine's stable operators see), truncated at the limit.
  auto reference = EvaluateReference(*serial.logical, &store(), serial.ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::vector<std::vector<Value>> rows = reference->rows;
  std::stable_sort(rows.begin(), rows.end(),
                   [&q](const std::vector<Value>& a,
                        const std::vector<Value>& b) {
                     for (const auto& [col, desc] : q.keys) {
                       int c = a[col].Compare(b[col]);
                       if (c != 0) return desc ? c > 0 : c < 0;
                     }
                     return false;
                   });
  if (q.limit > 0 && static_cast<int64_t>(rows.size()) > q.limit) {
    rows.resize(static_cast<size_t>(q.limit));
  }
  std::vector<std::string> expect = RowSeq(rows);

  struct Config {
    Planned* planned;
    int batch;
    int vectorize;
    const char* label;
  } configs[] = {
      {&serial, 1024, 0, "serial row engine"},
      {&serial, 1024, 1, "serial vectorized"},
      {&par, 64, 0, "dop=4 batch=64 row engine"},
      {&par, 64, 1, "dop=4 batch=64 vectorized"},
      {&par, 1024, 0, "dop=4 batch=1024 row engine"},
      {&par, 1024, 1, "dop=4 batch=1024 vectorized"},
  };
  for (Config& c : configs) {
    SCOPED_TRACE(c.label);
    auto stats = Exec(*c.planned, c.batch, nullptr, c.vectorize);
    ASSERT_TRUE(stats.ok()) << stats.status() << "\nplan:\n"
                            << PrintPlan(*c.planned->plan, c.planned->ctx);
    EXPECT_EQ(RowSeq(stats->sample_rows), expect)
        << "plan:\n" << PrintPlan(*c.planned->plan, c.planned->ctx);
  }
}

TEST_F(ExchangeTest, SelectionCrossingExchangePartitionsStaysExact) {
  // The filter reads an Assembly-loaded binding, so it cannot fuse into the
  // scan: under vectorization FilterExec marks survivors with a selection
  // vector, and each worker's batch is physically compacted only at the
  // Exchange push. Three selectivities stress that boundary — dense
  // survivors, sparse survivors, and an all-rows-dead batch stream — at a
  // batch size small enough that selections straddle many pushes and at the
  // default size.
  const char* queries[] = {
      "SELECT a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.partOf.buildDate >= 2;",
      "SELECT a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.partOf.buildDate >= 9;",
      "SELECT a.id FROM AtomicPart a IN AtomicParts "
      "WHERE a.partOf.buildDate >= 99;",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    Planned par = Plan(text, /*max_dop=*/4);
    ASSERT_GE(CountExchanges(*par.plan), 1) << PrintPlan(*par.plan, par.ctx);
    auto reference = EvaluateReference(*par.logical, &store(), par.ctx);
    ASSERT_TRUE(reference.ok()) << reference.status();
    for (int batch : {16, 1024}) {
      SCOPED_TRACE(batch);
      auto row = Exec(par, batch, nullptr, /*vectorize=*/0);
      auto vec = Exec(par, batch, nullptr, /*vectorize=*/1);
      ASSERT_TRUE(row.ok()) << row.status();
      ASSERT_TRUE(vec.ok()) << vec.status();
      EXPECT_EQ(vec->rows, static_cast<int64_t>(reference->rows.size()));
      EXPECT_EQ(SortedRows(vec->sample_rows), SortedRows(reference->rows))
          << "plan:\n" << PrintPlan(*par.plan, par.ctx);
      EXPECT_EQ(row->rows, vec->rows);
      EXPECT_DOUBLE_EQ(row->sim_cpu_s, vec->sim_cpu_s);
      EXPECT_DOUBLE_EQ(row->sim_io_s, vec->sim_io_s);
      EXPECT_EQ(row->pages_read, vec->pages_read);
    }
  }
}

TEST_F(ExchangeTest, OidFaultParityAcrossDop) {
  // OID-targeted faults are order-independent, so serial and parallel runs
  // must agree exactly: both fail with kStorageFault (a worker trip drains
  // the pipeline), and removing the policy restores identical results.
  const std::string text =
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;";
  Planned serial = Plan(text, /*max_dop=*/1);
  Planned par = Plan(text, /*max_dop=*/4);
  ASSERT_GE(CountExchanges(*par.plan), 1);

  FaultPolicy faults;
  faults.fail_oids = {instance_->db->atomic_parts[7]};
  store().SetFaultPolicy(faults);

  auto serial_stats = Exec(serial, 1024);
  auto par_stats = Exec(par, 1024);
  store().SetFaultPolicy(FaultPolicy{});

  ASSERT_FALSE(serial_stats.ok());
  ASSERT_FALSE(par_stats.ok());
  EXPECT_EQ(serial_stats.status().code(), StatusCode::kStorageFault);
  EXPECT_EQ(par_stats.status().code(), StatusCode::kStorageFault);

  // Clean runs after the policy reset agree again.
  auto clean_serial = Exec(serial, 1024);
  auto clean_par = Exec(par, 1024);
  ASSERT_TRUE(clean_serial.ok()) << clean_serial.status();
  ASSERT_TRUE(clean_par.ok()) << clean_par.status();
  EXPECT_EQ(SortedRows(clean_serial->sample_rows),
            SortedRows(clean_par->sample_rows));
}

TEST_F(ExchangeTest, RandomFaultsYieldTypedOutcomesUnderDop) {
  // Probabilistic faults are not order-deterministic with DOP > 1; the
  // contract is weaker but still strict: either a clean reference-identical
  // result or a typed storage fault — never a crash or a short read.
  const std::string text = kOo7QueryNewerComponents;
  Planned par = Plan(text, /*max_dop=*/4);
  auto reference = EvaluateReference(*par.logical, &store(), par.ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (int trial = 0; trial < 10; ++trial) {
    FaultPolicy faults;
    faults.seed = 0xfee1 + static_cast<uint64_t>(trial);
    faults.fail_probability = 0.02;
    store().SetFaultPolicy(faults);
    auto stats = Exec(par, 1024);
    store().SetFaultPolicy(FaultPolicy{});
    if (stats.ok()) {
      EXPECT_EQ(SortedRows(stats->sample_rows), SortedRows(reference->rows));
    } else {
      EXPECT_EQ(stats.status().code(), StatusCode::kStorageFault)
          << stats.status();
    }
  }
}

TEST_F(ExchangeTest, GovernorRowBudgetTripsUnderDop) {
  Planned par = Plan(
      "SELECT a.id, a.x FROM AtomicPart a IN AtomicParts WHERE a.x >= 0;",
      /*max_dop=*/4);
  ASSERT_GE(CountExchanges(*par.plan), 1);

  GovernorOptions gov;
  gov.max_exec_rows = 10;
  QueryGovernor governor(gov);
  auto stats = Exec(par, 64, &governor);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kBudgetExhausted)
      << stats.status();
  EXPECT_GE(governor.stats().budget_trips, 1);
}

TEST_F(ExchangeTest, CrossThreadCancellationDuringExchange) {
  Planned par = Plan(kOo7QueryTraversal, /*max_dop=*/4);

  // Pre-cancelled: the run must observe the token and fail typed.
  {
    GovernorOptions gov;
    gov.cancel = std::make_shared<CancelToken>();
    gov.cancel->RequestCancel();
    QueryGovernor governor(gov);
    auto stats = Exec(par, 64, &governor);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kCancelled) << stats.status();
  }

  // Cancelled from another thread mid-flight: either the query finished
  // first (OK) or it observed the cancellation — both are legal; crashes,
  // hangs, and untyped errors are not. Exercises the cross-thread trip
  // path under TSan.
  {
    GovernorOptions gov;
    gov.cancel = std::make_shared<CancelToken>();
    QueryGovernor governor(gov);
    std::thread canceller([token = gov.cancel] { token->RequestCancel(); });
    auto stats = Exec(par, 64, &governor);
    canceller.join();
    if (!stats.ok()) {
      EXPECT_EQ(stats.status().code(), StatusCode::kCancelled)
          << stats.status();
    }
  }
}

TEST_F(ExchangeTest, WorkerClockMergeChargesLogicalWorkOnce) {
  // The accounting identity behind the worker-clock merge: a dop=k run of a
  // scan+filter+project pipeline does exactly the serial per-row work, plus
  // k worker startups and one flow charge per tuple crossing the Exchange.
  // A double-charge anywhere (a worker billing shared work already billed
  // on another clock) breaks the equality.
  const std::string text =
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;";
  Planned serial = Plan(text, /*max_dop=*/1);
  Planned par = Plan(text, /*max_dop=*/4);
  ASSERT_GE(CountExchanges(*par.plan), 1);
  int dop = MaxDopOf(*par.plan);

  auto s = Exec(serial, 1024);
  auto p = Exec(par, 1024);
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(s->rows, p->rows);

  // Every logical page is read (and missed) exactly once regardless of dop:
  // workers share the buffer pool, and the store fits without evictions.
  EXPECT_EQ(s->pages_read, p->pages_read);

  double expected =
      s->sim_cpu_s +
      static_cast<double>(dop) * store().timing().exchange_startup_s +
      static_cast<double>(s->rows) * store().timing().exchange_flow_tuple_s;
  EXPECT_NEAR(p->sim_cpu_s, expected, 1e-9)
      << "parallel CPU deviates from serial + exchange overhead: a worker "
         "is double- or under-charging shared work";
}

TEST_F(ExchangeTest, PartitionedIndexScanChargesLeavesOnce) {
  // Regression: IndexScanExec::Open used to charge leaf traversal for the
  // *full* match count from every worker, billing the same logical index
  // read k times once the private worker clocks merged. Each worker must
  // charge only its [pos, end) slice — disjoint slices sum to the serial
  // leaf charge, and only the per-worker root probe is legitimately
  // repeated.
  Planned p;
  p.ctx.catalog = &catalog();
  const std::string text =
      "SELECT b.id FROM BaseAssembly b IN BaseAssemblies "
      "WHERE b.buildDate >= 3;";
  auto logical = ParseAndSimplify(text, &p.ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();
  p.logical = *logical;
  OptimizerOptions opts;
  opts.disabled_rules = {kImplFileScan};  // force the index path
  opts.verify_plans = true;
  Optimizer opt(&catalog(), std::move(opts));
  auto planned = opt.Optimize(*p.logical, &p.ctx);
  ASSERT_TRUE(planned.ok()) << planned.status();
  p.plan = planned->plan;
  ASSERT_EQ(CountOps(*p.plan, PhysOpKind::kIndexScan), 1)
      << PrintPlan(*p.plan, p.ctx);
  const PlanNode* driver = FindPartitionableScan(*p.plan);
  ASSERT_NE(driver, nullptr);
  ASSERT_EQ(driver->op.kind, PhysOpKind::kIndexScan);

  // Drains the whole plan under `env`, charging CPU to a private clock.
  auto drain = [&](int w, int k) -> double {
    SimClock clock;
    ExecEnv env;
    env.store = &store();
    env.ctx = &p.ctx;
    env.batch_size = 64;
    env.cpu_clock = &clock;
    if (k > 1) {
      env.partition_node = driver;
      env.partition_index = w;
      env.partition_count = k;
    }
    auto node = BuildExecNode(env, *p.plan);
    EXPECT_TRUE(node.ok()) << node.status();
    EXPECT_TRUE((*node)->Open().ok());
    TupleBatch batch(p.ctx.bindings.size(), 64);
    while (true) {
      auto n = (*node)->Next(&batch);
      EXPECT_TRUE(n.ok()) << n.status();
      if (!n.ok() || *n == 0) break;
    }
    (*node)->Close();
    return clock.cpu_s;
  };

  store().ResetSimulation();
  double serial_cpu = drain(0, 1);
  constexpr int kWorkers = 4;
  double partitioned_cpu = 0.0;
  store().ResetSimulation();
  for (int w = 0; w < kWorkers; ++w) partitioned_cpu += drain(w, kWorkers);

  // Serial leaf charge once, plus the (kWorkers - 1) extra root probes.
  EXPECT_NEAR(partitioned_cpu,
              serial_cpu + (kWorkers - 1) * store().timing().index_probe_s,
              1e-12)
      << "partitioned index scans bill shared leaf traversal per worker";
}

TEST_F(ExchangeTest, ExplainAnnotatesBatchAndDop) {
  std::unique_ptr<Oo7Db> db = MakeOo7Catalog(ParallelConfig());
  const std::string text =
      "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;";

  Session::Options serial_opts;
  Session serial(&db->catalog, serial_opts);
  auto serial_explain = serial.Explain(text);
  ASSERT_TRUE(serial_explain.ok()) << serial_explain.status();
  EXPECT_EQ(serial_explain->find("exec:"), std::string::npos);
  EXPECT_EQ(serial_explain->find("Exchange"), std::string::npos);

  Session::Options par_opts;
  par_opts.optimizer.max_dop = 4;
  Session par(&db->catalog, par_opts);
  auto par_explain = par.Explain(text);
  ASSERT_TRUE(par_explain.ok()) << par_explain.status();
  EXPECT_NE(par_explain->find("exec: batch=1024 dop="), std::string::npos)
      << *par_explain;
  EXPECT_NE(par_explain->find("Exchange"), std::string::npos) << *par_explain;
}

}  // namespace
}  // namespace oodb
