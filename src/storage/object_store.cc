#include "src/storage/object_store.h"

#include <algorithm>
#include <cassert>

namespace oodb {

ObjectStore::ObjectStore(const Catalog* catalog, StoreOptions options)
    : catalog_(catalog),
      options_(options),
      disk_(&options_.timing, &clock_),
      faults_(options_.faults),
      buffer_(&disk_, options_.buffer_pages,
              options_.faults.enabled() ? &faults_ : nullptr) {
  placement_.resize(catalog_->schema().num_types());
  extents_.resize(catalog_->schema().num_types());
}

void ObjectStore::InvalidateColumns() {
  MutexLock lock(columns_mu_);
  columns_.clear();
}

const ColumnProjection* ObjectStore::Projection(TypeId type, FieldId field) {
  if (!catalog_->schema().has_type(type)) return nullptr;
  const TypeDef& td = catalog_->schema().type(type);
  if (field < 0 || field >= static_cast<FieldId>(td.fields().size())) {
    return nullptr;
  }
  FieldKind kind = td.field(field).kind;
  if (kind == FieldKind::kString || kind == FieldKind::kRefSet) return nullptr;

  MutexLock lock(columns_mu_);
  auto key = std::make_pair(type, field);
  auto it = columns_.find(key);
  if (it != columns_.end()) return it->second.get();

  auto proj = std::make_unique<ColumnProjection>();
  proj->is_real = kind == FieldKind::kDouble;
  size_t n = objects_.size();
  if (proj->is_real) {
    proj->reals.assign(n, 0.0);
  } else {
    proj->ints.assign(n, 0);
  }
  Value::Kind want =
      proj->is_real ? Value::Kind::kDouble : Value::Kind::kInt;
  for (size_t i = 0; i < n; ++i) {
    const ObjectData& obj = objects_[i];
    if (obj.type != type) continue;
    const Value& v = obj.values[field];
    if (v.kind != want) {
      proj->homogeneous = false;
      continue;
    }
    if (proj->is_real) {
      proj->reals[i] = v.d;
    } else {
      proj->ints[i] = v.i;
    }
  }
  const ColumnProjection* out = proj.get();
  columns_.emplace(key, std::move(proj));
  return out;
}

Oid ObjectStore::Create(TypeId type) {
  assert(catalog_->schema().has_type(type));
  const TypeDef& td = catalog_->schema().type(type);
  TypePlacement& place = placement_[type];
  int64_t size = td.object_size();
  if (place.current_page == kInvalidPage ||
      place.bytes_on_current + size > options_.timing.page_size) {
    place.current_page = next_page_++;
    if (place.first_page == kInvalidPage) place.first_page = place.current_page;
    place.bytes_on_current = 0;
  }
  place.bytes_on_current += size;

  Oid oid = static_cast<Oid>(objects_.size());
  ObjectData obj;
  obj.oid = oid;
  obj.type = type;
  obj.values.resize(td.fields().size());
  int ref_sets = 0;
  for (const FieldDef& f : td.fields()) {
    if (f.kind == FieldKind::kRefSet) ++ref_sets;
  }
  obj.ref_sets.resize(ref_sets);
  objects_.push_back(std::move(obj));
  object_page_.push_back(place.current_page);
  if (catalog_->HasExtent(type)) extents_[type].push_back(oid);
  InvalidateColumns();
  return oid;
}

void ObjectStore::SetValue(Oid oid, FieldId field, Value v) {
  assert(Exists(oid));
  objects_[oid].values[field] = std::move(v);
  InvalidateColumns();
}

void ObjectStore::SetRef(Oid oid, FieldId field, Oid target) {
  assert(Exists(oid));
  objects_[oid].values[field] = Value::Int(target);
  InvalidateColumns();
}

void ObjectStore::AddToRefSet(Oid oid, FieldId field, Oid target) {
  assert(Exists(oid));
  ObjectData& obj = objects_[oid];
  const TypeDef& td = catalog_->schema().type(obj.type);
  int slot = 0;
  for (FieldId f = 0; f < field; ++f) {
    if (td.field(f).kind == FieldKind::kRefSet) ++slot;
  }
  assert(td.field(field).kind == FieldKind::kRefSet);
  obj.ref_sets[slot].push_back(target);
  // Record the set's cardinality hint in values[field] for generic reads.
  obj.values[field] = Value::Int(static_cast<int64_t>(obj.ref_sets[slot].size()));
  InvalidateColumns();
}

Status ObjectStore::AddToSet(const std::string& set_name, Oid oid) {
  OODB_RETURN_IF_ERROR(catalog_->FindSet(set_name).status());
  sets_[set_name].push_back(oid);
  return Status::OK();
}

Result<const ObjectData*> ObjectStore::Read(Oid oid, bool charge_io) {
  if (!Exists(oid)) {
    return Status::InvalidArgument("read of invalid oid " +
                                   std::to_string(oid));
  }
  if (charge_io) {
    if (options_.faults.enabled()) {
      OODB_RETURN_IF_ERROR(faults_.OnObjectRead(oid));
    }
    OODB_RETURN_IF_ERROR(buffer_.Access(object_page_[oid]));
  }
  return &objects_[oid];
}

Status ObjectStore::ReadMany(const Oid* oids, size_t n,
                             const ObjectData** out) {
  if (options_.faults.enabled()) {
    // Faulted reads keep per-object access granularity so the injector's
    // deterministic access counter advances exactly as in n Read() calls.
    for (size_t i = 0; i < n; ++i) {
      OODB_ASSIGN_OR_RETURN(out[i], Read(oids[i]));
    }
    return Status::OK();
  }
  // One charged access covers the whole run of objects on a page; the run
  // pages are batched through AccessMany so the pool lock and statistics
  // are touched once per group of runs instead of once per run. Charges
  // are flushed before reporting a bad OID, so the pages read ahead of the
  // failure are accounted exactly as per-run Access() calls would.
  constexpr size_t kMaxRuns = 64;
  PageId run_pages[kMaxRuns];
  size_t runs = 0;
  size_t i = 0;
  while (i < n) {
    Oid oid = oids[i];
    if (!Exists(oid)) {
      OODB_RETURN_IF_ERROR(buffer_.AccessMany(run_pages, runs));
      return Status::InvalidArgument("read of invalid oid " +
                                     std::to_string(oid));
    }
    PageId page = object_page_[oid];
    run_pages[runs++] = page;
    out[i] = &objects_[oid];
    for (++i; i < n; ++i) {
      Oid next = oids[i];
      if (!Exists(next) || object_page_[next] != page) break;
      out[i] = &objects_[next];
    }
    if (runs == kMaxRuns) {
      OODB_RETURN_IF_ERROR(buffer_.AccessMany(run_pages, runs));
      runs = 0;
    }
  }
  return buffer_.AccessMany(run_pages, runs);
}

PageId ObjectStore::PageOf(Oid oid) const { return object_page_[oid]; }

Result<const std::vector<Oid>*> ObjectStore::CollectionMembers(
    const CollectionId& id) const {
  if (id.kind == CollectionId::Kind::kExtent) {
    if (!catalog_->HasExtent(id.type)) {
      return Status::NotFound("type has no extent");
    }
    return &extents_[id.type];
  }
  auto it = sets_.find(id.name);
  if (it == sets_.end()) return Status::NotFound("set not populated: " + id.name);
  return &it->second;
}

Status ObjectStore::BuildIndexes() {
  indexes_.clear();
  indexes_.reserve(catalog_->indexes().size());
  for (const IndexInfo& info : catalog_->indexes()) {
    StoredIndex idx(&info);
    OODB_ASSIGN_OR_RETURN(const std::vector<Oid>* members,
                          CollectionMembers(info.collection));
    for (Oid root : *members) {
      // Dereference the path without charging I/O (index construction is
      // not part of query execution).
      Oid cur = root;
      bool ok = true;
      for (size_t i = 0; i + 1 < info.path.size(); ++i) {
        Oid next = objects_[cur].ref(info.path[i]);
        if (next == kInvalidOid || !Exists(next)) {
          ok = false;
          break;
        }
        cur = next;
      }
      if (!ok) continue;
      idx.Insert(objects_[cur].value(info.path.back()), root);
    }
    indexes_.push_back(std::move(idx));
  }
  return Status::OK();
}

Result<const StoredIndex*> ObjectStore::FindIndex(const std::string& name) const {
  for (const StoredIndex& idx : indexes_) {
    if (idx.info().name == name) return &idx;
  }
  return Status::NotFound("index not built: " + name);
}

void ObjectStore::ResetSimulation() {
  clock_.Reset();
  disk_.Reset();
  buffer_.Reset();
  faults_.Reset();
}

void ObjectStore::SetFaultPolicy(FaultPolicy policy) {
  options_.faults = std::move(policy);
  faults_.SetPolicy(options_.faults);
  buffer_.set_fault_injector(options_.faults.enabled() ? &faults_ : nullptr);
}

}  // namespace oodb
