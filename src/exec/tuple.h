// Runtime tuples: one slot per binding, each holding a reference (OID) and,
// when the component is *present in memory*, a pointer to the loaded object.
// The gap between "slot has a ref" and "slot has a loaded object" is the
// physical present-in-memory property at runtime; expression evaluation
// fails loudly if a plan tries to read a field of an unloaded component,
// which makes execution an end-to-end check of the optimizer's property
// machinery.
#ifndef OODB_EXEC_TUPLE_H_
#define OODB_EXEC_TUPLE_H_

#include <vector>

#include "src/algebra/expr.h"
#include "src/algebra/logical_op.h"
#include "src/storage/object.h"

namespace oodb {

struct Slot {
  Oid ref = kInvalidOid;
  const ObjectData* obj = nullptr;

  bool present() const { return ref != kInvalidOid; }
  bool loaded() const { return obj != nullptr; }
};

struct Tuple {
  std::vector<Slot> slots;

  explicit Tuple(int num_bindings = 0) : slots(num_bindings) {}
  Slot& slot(BindingId b) { return slots[b]; }
  const Slot& slot(BindingId b) const { return slots[b]; }

  /// Merges the occupied slots of `other` into this tuple.
  void MergeFrom(const Tuple& other);
};

/// Evaluates a scalar expression against a tuple. Booleans are encoded as
/// Value::Int(0/1). Returns Internal if an attribute's component is not
/// loaded (a plan/property bug).
Result<Value> EvalExpr(const ScalarExpr& expr, const Tuple& tuple,
                       const QueryContext& ctx);

/// Evaluates a predicate to a boolean.
Result<bool> EvalPredicate(const ScalarExprPtr& pred, const Tuple& tuple,
                           const QueryContext& ctx);

}  // namespace oodb

#endif  // OODB_EXEC_TUPLE_H_
