// Process-wide recycling pool of TupleBatch arenas.
//
// A TupleBatch arena is width × capacity Slots — tens of kilobytes at the
// default batch size — and constructing one value-initializes every slot.
// Operators recycle their own arenas across Next() calls, but arenas that
// cross a query boundary (Exchange stream batches, the executor's drain
// batch) used to be freshly allocated per execution, putting an
// allocate+clear storm on the latency path of short queries. The pool keeps
// retired arenas alive across executions: Take() returns a matching-shape
// arena if one is pooled (AppendRow clears rows on use, so stale contents
// are harmless), and Return() parks an arena instead of freeing it.
#ifndef OODB_EXEC_BATCH_POOL_H_
#define OODB_EXEC_BATCH_POOL_H_

#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/exec/tuple.h"

namespace oodb {

class BatchPool {
 public:
  /// The shared pool (thread-safe; Exchange workers hit it concurrently).
  static BatchPool& Instance();

  /// Returns a pooled arena of exactly (width, capacity), else a fresh one.
  TupleBatch Take(int width, size_t capacity);

  /// Parks `batch` for reuse. Over-capacity returns are simply freed.
  void Return(TupleBatch&& batch);

 private:
  /// Bounds pool memory; at the default shape this is a few megabytes.
  static constexpr size_t kMaxPooled = 64;

  Mutex mu_{lock_rank::kBatchPool};
  std::vector<TupleBatch> pool_ GUARDED_BY(mu_);
};

}  // namespace oodb

#endif  // OODB_EXEC_BATCH_POOL_H_
